// bem_capacitance -- the boundary-element application the paper's
// conclusion motivates (and its companion paper [17] develops): solve a
// single-layer integral equation with a hierarchical matrix-vector product.
//
// Physical setup: a unit conducting sphere held at potential 1. Collocation
// with point "panels" on the surface gives the dense system
//     (d I + G) sigma = 1,  G_ij = 1/|x_i - x_j|,
// whose solution integrates to the sphere's capacitance C = 4 pi eps0 R
// (= 1 in Gaussian units with R = 1). Every CG iteration uses the O(n log
// n) treecode apply instead of the O(n^2) dense product.
//
// Run:  ./bem_capacitance [--n 3000] [--alpha 0.5] [--degree 4]
#include <cmath>
#include <cstdio>
#include <random>

#include "bem/hmatvec.hpp"
#include "harness/cli.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(argc, argv,
                   "BEM capacitance: hierarchical matrix-vector CG solve "
                   "on a unit sphere.",
                   {{"n", "N", "number of surface panels [3000]"},
                    {"alpha", "A", "opening criterion [0.5]"},
                    {"degree", "K", "multipole degree [4]"}});
  const auto n = static_cast<std::size_t>(cli.get("n", 3000));
  const double alpha = cli.get("alpha", 0.5);
  const auto degree = static_cast<unsigned>(cli.get("degree", 4));

  // Quasi-uniform points on the unit sphere (Fibonacci spiral).
  std::vector<geom::Vec<3>> pts(n);
  const double golden = M_PI * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double z = 1.0 - 2.0 * (double(i) + 0.5) / double(n);
    const double r = std::sqrt(1.0 - z * z);
    const double phi = golden * double(i);
    pts[i] = {{r * std::cos(phi), r * std::sin(phi), z}};
  }

  // Panel self-term: each point represents a patch of area 4 pi / n; the
  // single-layer self-integral of a flat disc of equal area is
  // 2 sqrt(pi * area) (standard collocation regularization).
  const double patch_area = 4.0 * M_PI / double(n);
  const double self_term = 2.0 * std::sqrt(M_PI * patch_area) / patch_area;

  bem::MatVecOptions opts{.alpha = alpha, .degree = degree};
  opts.diagonal = self_term;
  bem::HierarchicalKernelMatrix A(pts, bem::KernelKind::kLaplace, opts);

  // Right-hand side: boundary potential 1 everywhere, scaled by 1/patch
  // area to convert the weight vector into a surface density.
  std::vector<double> b(n, 1.0 / patch_area);

  std::printf("Solving (dI + G) sigma = 1 on %zu panels "
              "(alpha=%.2f, degree=%u, d=%.2f)\n",
              n, alpha, degree, self_term);
  const auto res = A.solve_cg(b, 1e-8, 400);
  std::printf("CG: %d iterations, relative residual %.2e (%s)\n",
              res.iterations, res.relative_residual,
              res.converged ? "converged" : "NOT converged");

  // Total induced charge approximates the capacitance of the unit sphere.
  double q = 0.0;
  for (double s : res.x) q += s;
  q *= patch_area;
  std::printf("Total charge (capacitance estimate): %.4f  [exact: 1.0000]\n",
              q);
  std::printf("Relative error: %.2e\n", std::abs(q - 1.0));
  return 0;
}
