// cluster_formation -- cold collapse of a clumpy cloud, demonstrating why
// *dynamic* load balancing matters: as condensations form and deepen, a
// static decomposition degrades while SPDA's Morton reassignment tracks the
// shifting work distribution step by step.
//
// The same initial conditions are evolved twice -- once with SPSA (static
// assignment) and once with SPDA (dynamic assignment) -- and the per-step
// load imbalance and modeled iteration times are printed side by side.
//
// Run:  ./cluster_formation [--n 8000] [--p 16] [--steps 12]
#include <cstdio>
#include <vector>

#include "harness/cli.hpp"
#include "model/distributions.hpp"
#include "obs/capture.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(
      argc, argv,
      "Cluster formation: cold collapse under SPSA vs SPDA load balancing.",
      {{"n", "N", "total number of particles [8000]"},
       {"p", "P", "virtual ranks [16]"},
       {"steps", "S", "time steps to evolve [12]"},
       {"dt", "T", "leapfrog time step [0.5]"}});
  obs::Capture cap(cli);
  const auto n = static_cast<std::size_t>(cli.get("n", 8000));
  const int p = cli.get("p", 16);
  const int steps = cli.get("steps", 12);

  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  model::Rng rng(11);
  // Cold clumpy cloud with condensed cores: the core clusters carry orders
  // of magnitude more load than the halo clusters, so a static scatter
  // decomposition is unlucky somewhere almost surely, while gravity keeps
  // steepening the clumps step over step.
  model::ParticleSet<3> global;
  const geom::Vec<3> centers[3] = {
      {{30, 35, 60}}, {{65, 55, 40}}, {{50, 70, 65}}};
  for (int b = 0; b < 3; ++b) {
    const auto blob = model::gaussian_core_halo<3>(
        n / 3, rng, centers[b], 5.0, /*core_fraction=*/0.5,
        /*core_shrink=*/2.5);
    for (std::size_t i = 0; i < blob.size(); ++i) global.append_from(blob, i);
  }
  for (std::size_t i = 0; i < global.size(); ++i) {
    global.id[i] = i;
    global.vel[i] = {};
  }

  std::printf("Cold collapse of a 3-cloud condensed field, %zu particles, %d ranks\n",
              global.size(), p);

  struct Series {
    std::vector<double> imbalance, step_time;
  };
  Series series[2];

  for (int which = 0; which < 2; ++which) {
    const auto scheme =
        which == 0 ? par::Scheme::kSPSA : par::Scheme::kSPDA;
    mp::RunOptions ropts;
    ropts.trace = cap.tracer();
    const auto rep = mp::run_spmd(p, mp::MachineModel::ncube2(), ropts,
                                  [&](mp::Communicator& comm) {
      sim::ParallelNbody<3>::Options opts;
      opts.step = {.scheme = scheme,
                   .clusters_per_axis = 16,
                   .alpha = 0.67,
                   .kind = tree::FieldKind::kBoth,
                   .softening = 0.1};
      opts.dt = cli.get("dt", 0.5);
      opts.rebalance_every = 1;
      sim::ParallelNbody<3> nbody(comm, domain, global, opts);
      for (int s = 0; s < steps; ++s) {
        const double t0 = comm.all_reduce_max(comm.vtime());
        nbody.evolve(1);
        const double t1 = comm.all_reduce_max(comm.vtime());
        const auto& last = nbody.last_step();
        const auto max_load = comm.all_reduce_max(last.local_load);
        const auto sum_load =
            comm.all_reduce_sum(static_cast<long long>(last.local_load));
        if (comm.rank() == 0) {
          series[which].imbalance.push_back(
              sum_load > 0 ? double(max_load) / (double(sum_load) / p)
                           : 1.0);
          series[which].step_time.push_back(t1 - t0);
        }
      }
    });
    cap.note_report(rep);
  }

  std::printf("\n%5s | %10s %10s | %10s %10s\n", "step", "SPSA imb",
              "SPSA time", "SPDA imb", "SPDA time");
  double spsa_total = 0.0, spda_total = 0.0;
  for (int s = 0; s < steps; ++s) {
    std::printf("%5d | %10.2f %10.2f | %10.2f %10.2f\n", s,
                series[0].imbalance[s], series[0].step_time[s],
                series[1].imbalance[s], series[1].step_time[s]);
    spsa_total += series[0].step_time[s];
    spda_total += series[1].step_time[s];
  }
  std::printf("\nTotal modeled time: SPSA %.1f s, SPDA %.1f s (%.0f%% %s)\n",
              spsa_total, spda_total,
              100.0 * std::abs(spsa_total - spda_total) / spsa_total,
              spda_total < spsa_total ? "saved by dynamic assignment"
                                      : "overhead in this regime");
  cap.write();
  return 0;
}
