// scaling_study -- the paper's concluding observation, made runnable: "the
// relative computation to communication speeds are more favorable in many
// current machines ... our formulations will yield even better performance
// on these machines."
//
// Runs the same DPDA iteration over three machine models -- the 1994
// nCUBE2, the 1994 CM5 and a present-day commodity cluster -- sweeping the
// processor count, and prints modeled runtime, speed-up and efficiency for
// each.
//
// Run:  ./scaling_study [--n 20000] [--alpha 0.67] [--degree 2]
#include <chrono>
#include <cstdio>

#include "bench/emit.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "obs/capture.hpp"
#include "parallel/formulations.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(
      argc, argv,
      "Scaling study: the same DPDA iteration across three machine models.",
      {{"n", "N", "number of particles [20000]"},
       {"alpha", "A", "opening criterion [0.67]"},
       {"degree", "K", "multipole degree [2]"},
       {"seed", "S", "random seed [3]"},
       {"bench-json", "[PATH]",
        "write the bh.bench.v1 registry (default BENCH_scaling_study.json)"}});
  obs::Capture cap(cli);
  const auto n = static_cast<std::size_t>(cli.get("n", 20000));
  const double alpha = cli.get("alpha", 0.67);
  const auto degree = static_cast<unsigned>(cli.get("degree", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", 3L));
  bench::Emit emit(cli, "scaling_study", 1.0, seed);

  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  model::Rng rng(seed);
  const auto global = model::plummer<3>(n, rng, 6.0, domain.center());

  std::printf("DPDA scaling study: %zu particles, alpha=%.2f, degree=%u\n\n",
              n, alpha, degree);

  harness::Table table({"machine", "p", "time (s)", "speedup",
                        "efficiency"});
  for (const auto& machine :
       {mp::MachineModel::ncube2(), mp::MachineModel::cm5(),
        mp::MachineModel::cluster()}) {
    for (int p : {1, 4, 16, 64, 256}) {
      double iter = 0.0;
      std::uint64_t flops = 0;
      const auto wall0 = std::chrono::steady_clock::now();
      mp::RunOptions ropts;
      ropts.trace = cap.tracer();
      const auto rep = mp::run_spmd(p, machine, ropts,
                                    [&](mp::Communicator& comm) {
        par::ParallelSimulation<3> sim(
            comm, domain,
            {.scheme = par::Scheme::kDPDA,
             .alpha = alpha,
             .degree = degree,
             .kind = tree::FieldKind::kPotential});
        sim.distribute(global);
        sim.step();  // warmup
        sim.rebalance();
        const double t0 = comm.all_reduce_max(comm.vtime());
        const auto f0 = comm.stats().flops;
        sim.step();
        const double t1 = comm.all_reduce_max(comm.vtime());
        const auto df = comm.all_reduce_sum(
            static_cast<long long>(comm.stats().flops - f0));
        if (comm.rank() == 0) {
          iter = t1 - t0;
          flops = static_cast<std::uint64_t>(df);
        }
      });
      cap.note_report(rep);
      const double serial = machine.flops(flops);
      // Registry record by hand: this example times a bare run_spmd, not a
      // bench::run_parallel_iteration.
      bench::BenchSample s;
      s.scenario.name = machine.name + " p=" + std::to_string(p);
      s.scenario.scheme = "DPDA";
      s.scenario.instance = "plummer";
      s.scenario.n = n;
      s.scenario.procs = p;
      s.scenario.alpha = alpha;
      s.scenario.degree = degree;
      s.scenario.machine = machine.name;
      s.iter_time = iter;
      s.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
      s.speedup = iter > 0.0 ? serial / iter : 0.0;
      s.efficiency = iter > 0.0 ? serial / (p * iter) : 0.0;
      s.flops = flops;
      const auto idle = rep.idle();
      s.idle_max = idle.max;
      s.idle_mean = idle.mean;
      emit.record(std::move(s));
      table.row({machine.name, std::to_string(p),
                 harness::Table::num(iter, 3),
                 harness::Table::num(serial / iter, 2),
                 harness::Table::num(serial / (p * iter), 2)});
    }
  }
  table.print();
  std::printf(
      "\nNote how the same algorithm, same decomposition and same traffic "
      "yield higher efficiency as t_flop/t_w improves -- the paper's "
      "closing claim.\n");
  cap.write();
  emit.write();
  return 0;
}
