// galaxy_collision -- the workload the paper's introduction motivates: an
// astrophysical simulation of interacting self-gravitating systems, run on
// the *parallel* treecode.
//
// Two Plummer "galaxies" are set on a collision course and evolved with the
// DPDA (costzones) formulation on a virtual message-passing machine. The
// example prints per-step diagnostics (energy, load balance, shipped work)
// and optionally dumps particle snapshots to CSV for plotting.
//
// Run:  ./galaxy_collision [--n 6000] [--p 8] [--steps 30] [--snapshots]
#include <cstdio>
#include <fstream>

#include "harness/cli.hpp"
#include "model/distributions.hpp"
#include "obs/capture.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(
      argc, argv,
      "Galaxy collision: two Plummer spheres on the DPDA parallel treecode.",
      {{"n", "N", "total number of particles [6000]"},
       {"p", "P", "virtual ranks [8]"},
       {"steps", "S", "time steps to evolve [30]"},
       {"dt", "T", "leapfrog time step [0.25]"},
       {"snapshots", "", "dump per-step particle positions to CSV"}});
  obs::Capture cap(cli);
  const auto n = static_cast<std::size_t>(cli.get("n", 6000));
  const int p = cli.get("p", 8);
  const int steps = cli.get("steps", 30);
  const bool snapshots = cli.get("snapshots", false);

  // Two Plummer spheres, offset and approaching each other.
  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  model::Rng rng(7);
  auto galaxy_a = model::plummer<3>(n / 2, rng, 2.0, {{38, 45, 50}});
  auto galaxy_b = model::plummer<3>(n - n / 2, rng, 2.0, {{62, 55, 50}});
  const geom::Vec<3> vrel{{0.12, 0.02, 0.0}};
  for (auto& v : galaxy_a.vel) v += vrel;
  for (auto& v : galaxy_b.vel) v -= vrel;
  model::ParticleSet<3> global = galaxy_a;
  for (std::size_t i = 0; i < galaxy_b.size(); ++i)
    global.append_from(galaxy_b, i);
  for (std::size_t i = 0; i < global.size(); ++i) global.id[i] = i;

  std::printf("Two %zu-particle Plummer galaxies on %d virtual ranks "
              "(DPDA costzones)\n\n",
              global.size(), p);

  mp::RunOptions ropts;
  ropts.trace = cap.tracer();
  auto rep = mp::run_spmd(p, mp::MachineModel::cm5(), ropts,
                          [&](mp::Communicator& comm) {
    sim::ParallelNbody<3>::Options opts;
    opts.step = {.scheme = par::Scheme::kDPDA,
                 .alpha = 0.6,
                 .kind = tree::FieldKind::kBoth,
                 .softening = 0.05};
    opts.dt = cli.get("dt", 0.25);
    opts.rebalance_every = 2;
    sim::ParallelNbody<3> nbody(comm, domain, global, opts);

    const auto e0 = nbody.energies();
    if (comm.rank() == 0)
      std::printf("%5s %12s %12s %12s %10s %10s\n", "step", "kinetic",
                  "potential", "total", "imbalance", "shipped");
    for (int s = 0; s < steps; ++s) {
      nbody.evolve(1);
      const auto e = nbody.energies();
      const auto& last = nbody.last_step();
      const auto max_load = comm.all_reduce_max(last.local_load);
      const auto sum_load =
          comm.all_reduce_sum(static_cast<long long>(last.local_load));
      const auto shipped = comm.all_reduce_sum(
          static_cast<long long>(last.force.items_shipped));
      if (comm.rank() == 0) {
        const double imb =
            sum_load > 0 ? double(max_load) / (double(sum_load) / p) : 1.0;
        std::printf("%5d %12.5f %12.5f %12.5f %10.2f %10lld\n", s,
                    e.kinetic, e.potential, e.total(), imb, shipped);
      }
      if (snapshots) {
        // Every rank appends its particles; rank order via a token ring
        // keeps the file coherent.
        const std::string path =
            "collision_step" + std::to_string(s) + ".csv";
        if (comm.rank() == 0) {
          std::ofstream f(path);
          f << "x,y,z,galaxy\n";
        }
        comm.barrier();
        for (int r = 0; r < comm.size(); ++r) {
          if (r == comm.rank()) {
            std::ofstream f(path, std::ios::app);
            const auto& lp = nbody.local_particles();
            for (std::size_t i = 0; i < lp.size(); ++i)
              f << lp.pos[i][0] << ',' << lp.pos[i][1] << ','
                << lp.pos[i][2] << ','
                << (lp.id[i] < global.size() / 2 ? 'A' : 'B') << '\n';
          }
          comm.barrier();
        }
      }
    }
    const auto e1 = nbody.energies();
    if (comm.rank() == 0)
      std::printf("\nEnergy drift over %d steps: %.2e (relative)\n", steps,
                  std::abs(e1.total() - e0.total()) /
                      std::abs(e0.total()));
  });

  std::printf("Modeled CM5 time for the whole run: %.2f s; force phase %.2f "
              "s; %.1f MB shipped point-to-point\n",
              rep.parallel_time(), rep.phase_time(par::kPhaseForce),
              double(rep.total_ptp_bytes()) / 1e6);
  if (snapshots)
    std::printf("Snapshots written to collision_step*.csv\n");
  cap.note_report(rep);
  cap.write();
  return 0;
}
