// quickstart -- a tour of the serial public API in ~80 lines:
//  1. generate an initial condition (a Plummer sphere),
//  2. build a Barnes-Hut tree and compute forces with the alpha-MAC,
//  3. check the approximation against direct summation,
//  4. integrate a few leapfrog steps and watch energy conservation.
//
// Run:  ./quickstart [--n 4000] [--alpha 0.67] [--steps 20]
#include <cstdio>

#include "harness/cli.hpp"
#include "model/distributions.hpp"
#include "sim/simulation.hpp"
#include "tree/bhtree.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(argc, argv,
                   "Quickstart: serial Barnes-Hut tour (tree build, "
                   "accuracy check, leapfrog integration).",
                   {{"n", "N", "number of particles [4000]"},
                    {"alpha", "A", "opening criterion [0.67]"},
                    {"steps", "S", "leapfrog steps to integrate [20]"}});
  const auto n = static_cast<std::size_t>(cli.get("n", 4000));
  const double alpha = cli.get("alpha", 0.67);
  const int steps = cli.get("steps", 20);

  // 1. Initial condition: a virialized Plummer sphere, total mass 1.
  model::Rng rng(42);
  auto particles = model::plummer<3>(n, rng);
  std::printf("Generated %zu-particle Plummer sphere (mass %.3f)\n",
              particles.size(), particles.total_mass());

  // 2. Tree + forces. build_tree runs the upward (center-of-mass) pass;
  //    compute_fields traverses with the Barnes-Hut acceptance criterion.
  auto tree = tree::build_tree(particles, particles.bounding_cube(),
                               {.leaf_capacity = 8});
  const auto work = tree::compute_fields(
      tree, particles,
      {.alpha = alpha, .softening = 0.01, .kind = tree::FieldKind::kBoth,
       .use_expansions = false});
  std::printf("Tree: %zu nodes; traversal: %llu MACs, %llu interactions, "
              "%llu direct pairs (%.2f per particle)\n",
              tree.size(),
              static_cast<unsigned long long>(work.mac_evals),
              static_cast<unsigned long long>(work.interactions),
              static_cast<unsigned long long>(work.direct_pairs),
              double(work.interactions + work.direct_pairs) / double(n));

  // 3. Accuracy check against O(n^2) direct summation.
  auto exact = particles;
  exact.zero_accumulators();
  tree::direct_sum(exact, tree::FieldKind::kPotential, 0.01);
  const double err =
      tree::fractional_error(particles.potential, exact.potential);
  std::printf("Fractional potential error at alpha=%.2f: %.2e "
              "(direct sum is ~%.0fx more work)\n",
              alpha, err,
              double(n) * double(n - 1) /
                  double(work.interactions + work.direct_pairs));

  // 4. Time integration: kick-drift-kick leapfrog.
  sim::SerialSimulation<3> simulation(std::move(particles),
                                      {.alpha = alpha, .softening = 0.01});
  const auto e0 = simulation.energies();
  std::printf("\n%6s %14s %14s %14s\n", "step", "kinetic", "potential",
              "total");
  for (int s = 0; s <= steps; ++s) {
    if (s > 0) simulation.step(1e-3);
    if (s % 5 == 0) {
      const auto e = simulation.energies();
      std::printf("%6d %14.6f %14.6f %14.6f\n", s, e.kinetic, e.potential,
                  e.total());
    }
  }
  const auto e1 = simulation.energies();
  std::printf("\nRelative energy drift after %d steps: %.2e\n", steps,
              std::abs(e1.total() - e0.total()) / std::abs(e0.total()));
  return 0;
}
