// trend.hpp -- cross-run trend analytics over bh.bench.v1 registries.
//
// The per-run perf gate (scripts/bench_diff.py, CI perf-smoke) compares one
// candidate against one committed baseline with a ~10% tolerance, so a
// sequence of 4%-per-PR regressions sails through every gate while the
// benchmark quietly loses half its performance. bh_trend closes that hole:
// it ingests any number of registries (committed baselines, CI artifacts,
// local runs), lines them up as run columns keyed by git SHA, and
//
//  * renders a self-contained single-file HTML dashboard (inline JS/CSS, no
//    external dependencies -- it must open from a CI artifact tarball)
//    plotting iter_time, wall percentiles, efficiency, memory, and the
//    fitted p log p overhead coefficients per scenario family across runs;
//  * optionally gates (--gate-trend): fails when a metric degraded
//    monotonically over the last K runs by more than a cumulative
//    percentage, the exact pattern per-run diffs cannot see.
//
// Run-column rules: registries are ingested in the order given. A registry
// joins the most recent run column with the same git_sha unless one of its
// scenario keys is already present there (e.g. two candidate runs of the
// same bench at one SHA); collisions open a new column. Scenario key is
// "<bench>/<scenario name>", so same-named scenarios from different bench
// binaries never alias.
//
// Wall-scheme rows (micro_kernels, and bh.prof.v1 profiler regions ingested
// as "prof/<region>" scenarios) are rendered in a dedicated wall-clock panel
// -- never on an axis shared with modeled virtual time -- and excluded from
// modeled-overhead fitting and from trend gating: wall times move with the
// host, and CI runners are not a controlled machine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/json_parse.hpp"

namespace bh::trend {

/// One run column of the dashboard: every registry merged under one git SHA
/// occurrence. `id` is the SHA plus a "#k" suffix when the same SHA opens
/// several columns.
struct RunColumn {
  std::string id;
  std::string git_sha;
  std::vector<std::string> sources;  ///< labels of the merged registries
};

/// One scenario's metric trajectories. Every vector is parallel to
/// TrendData::runs; NaN marks runs the scenario was absent from.
struct ScenarioSeries {
  std::string key;  ///< "<bench>/<name>"
  std::string scheme, instance, machine;
  int procs = 0;
  std::uint64_t n = 0;
  std::vector<double> iter_time;
  std::vector<double> wall_p50;
  std::vector<double> wall_p95;
  /// Fraction of the run's total wall clock spent in this region; set only
  /// for profiler rows ("prof/<region>"), NaN everywhere else.
  std::vector<double> wall_share;
  /// NaN for wall-scheme rows (no modeled efficiency / overhead).
  std::vector<double> efficiency;
  std::vector<double> overhead;
  std::vector<double> peak_rss;     ///< bytes; NaN in pre-schema registries
  std::vector<double> alloc_count;  ///< NaN in pre-schema registries
  std::map<std::string, std::vector<double>> phases;
};

/// Fitted-overhead trajectory of one scenario family (obs::analyze
/// fit_family per run column). Entries are "" / NaN for runs where the
/// family has no points.
struct FamilyTrend {
  std::string family;
  std::vector<std::string> chosen;
  std::vector<double> coeff;
  std::vector<double> r2;
};

struct TrendData {
  std::vector<RunColumn> runs;
  std::vector<ScenarioSeries> scenarios;  ///< sorted by key
  std::vector<FamilyTrend> families;      ///< sorted by family
};

/// Build the trend model from (label, document) pairs, in the order given.
/// Labels are file paths in the CLI; anything unique works. bh.bench.v1
/// registries contribute "<bench>/<name>" scenarios; bh.prof.v1 profiles
/// contribute wall-scheme "prof/<region>" scenarios whose iter_time is the
/// region's wall seconds and whose wall_share is its fraction of the run.
/// Throws obs::JsonError on any other schema.
TrendData ingest(
    const std::vector<std::pair<std::string, const obs::Json*>>& docs);

struct GateConfig {
  int window = 3;        ///< trailing runs that must all degrade
  double cum_pct = 5.0;  ///< cumulative first->last increase to fail on
  double floor = 1e-4;   ///< ignore metrics below this (seconds; jitter)
};

/// One monotone degradation caught by the trend gate.
struct TrendViolation {
  std::string scenario;  ///< ScenarioSeries::key
  std::string metric;    ///< "iter_time" or "phase <name>"
  std::vector<double> window;  ///< the offending trailing values
  double cum_pct = 0.0;        ///< first->last increase in percent
};

/// The --gate-trend check: a violation is a metric whose last `window` runs
/// are all present, strictly increasing, start at or above `floor`, and
/// rise by more than `cum_pct` percent first->last. Wall-scheme scenarios
/// are skipped (host-dependent). Empty result = gate passes.
std::vector<TrendViolation> gate_trend(const TrendData& td,
                                       const GateConfig& cfg = {});

/// Canonical "bh.trend.v1" JSON of the model -- the document embedded in
/// the dashboard and the golden-test surface. NaN serializes as null.
std::string data_json(const TrendData& td);

/// The self-contained dashboard: one HTML file, inline CSS + JS + data,
/// no network fetches. Open it anywhere.
std::string render_html(const TrendData& td);

}  // namespace bh::trend
