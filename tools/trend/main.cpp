// bh_trend -- cross-run trend dashboard + trend gate over bh.bench.v1
// registries and bh.prof.v1 profiles (profiler regions appear as
// "prof/<region>" wall-clock rows). See trend.hpp for the model; typical
// uses:
//
//   bh_trend BENCH_table1.json weekly/*.json            # -> trend.html
//   bh_trend --out docs/trend.html run1.json run2.json prof.json
//   bh_trend --gate-trend --window 3 --gate-pct 5 r*.json
//
// Registries are ordered oldest-to-newest as given on the command line.
// Exit codes: 0 ok, 1 trend-gate violation, 2 usage or input error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"
#include "trend/trend.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bh_trend [options] REGISTRY.json [REGISTRY.json ...]\n"
      "  registries: bh.bench.v1 benches and/or bh.prof.v1 profiles\n"
      "  --out PATH       dashboard output path (default trend.html)\n"
      "  --no-html        skip the dashboard (gate only)\n"
      "  --gate-trend     fail (exit 1) on monotone k-run degradation\n"
      "  --window K       trailing runs the gate examines (default 3)\n"
      "  --gate-pct PCT   cumulative increase that fails the gate "
      "(default 5)\n"
      "  --floor SEC      ignore metrics below this baseline (default "
      "1e-4)\n"
      "registries are ordered oldest-to-newest as given.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "trend.html";
  bool want_html = true;
  bool gate = false;
  bh::trend::GateConfig cfg;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bh_trend: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") {
      out_path = next("--out");
    } else if (a == "--no-html") {
      want_html = false;
    } else if (a == "--gate-trend") {
      gate = true;
    } else if (a == "--window") {
      cfg.window = std::atoi(next("--window"));
    } else if (a == "--gate-pct") {
      cfg.cum_pct = std::atof(next("--gate-pct"));
    } else if (a == "--floor") {
      cfg.floor = std::atof(next("--floor"));
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bh_trend: unknown flag %s\n", a.c_str());
      return usage();
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) return usage();

  std::vector<bh::obs::Json> docs;
  docs.reserve(paths.size());
  std::vector<std::pair<std::string, const bh::obs::Json*>> refs;
  try {
    for (const auto& p : paths) docs.push_back(bh::obs::Json::parse_file(p));
    for (std::size_t i = 0; i < paths.size(); ++i)
      refs.emplace_back(paths[i], &docs[i]);
    const bh::trend::TrendData td = bh::trend::ingest(refs);
    std::printf("bh_trend: %zu registr%s -> %zu run%s, %zu scenario%s, "
                "%zu famil%s\n",
                paths.size(), paths.size() == 1 ? "y" : "ies",
                td.runs.size(), td.runs.size() == 1 ? "" : "s",
                td.scenarios.size(), td.scenarios.size() == 1 ? "" : "s",
                td.families.size(), td.families.size() == 1 ? "y" : "ies");

    if (want_html) {
      std::ofstream os(out_path);
      if (!os) {
        std::fprintf(stderr, "bh_trend: cannot open %s\n", out_path.c_str());
        return 2;
      }
      os << bh::trend::render_html(td);
      std::printf("bh_trend: dashboard written to %s\n", out_path.c_str());
    }

    if (gate) {
      const auto violations = bh::trend::gate_trend(td, cfg);
      if (!violations.empty()) {
        std::printf("bh_trend: TREND GATE FAILED -- %zu monotone "
                    "degradation%s over the last %d runs (> %.1f%% "
                    "cumulative):\n",
                    violations.size(), violations.size() == 1 ? "" : "s",
                    cfg.window, cfg.cum_pct);
        for (const auto& v : violations) {
          std::printf("  %s %s: ", v.scenario.c_str(), v.metric.c_str());
          for (std::size_t j = 0; j < v.window.size(); ++j)
            std::printf("%s%.6g", j ? " -> " : "", v.window[j]);
          std::printf("  (+%.1f%%)\n", v.cum_pct);
        }
        return 1;
      }
      std::printf("bh_trend: trend gate passed (window %d, %.1f%%)\n",
                  cfg.window, cfg.cum_pct);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bh_trend: %s\n", e.what());
    return 2;
  }
  return 0;
}
