#include "trend/trend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.hpp"

namespace bh::trend {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool finite(double v) { return std::isfinite(v); }

/// One scenario row of one registry, before the run columns are lined up.
struct Sample {
  std::string scheme, instance, machine, name;
  int procs = 0;
  std::uint64_t n = 0;
  double iter_time = kNaN;
  double wall_p50 = kNaN;
  double wall_p95 = kNaN;
  double wall_share = kNaN;
  double efficiency = kNaN;
  double overhead = kNaN;
  double peak_rss = kNaN;
  double alloc_count = kNaN;
  std::map<std::string, double> phases;
};

Sample read_sample(const obs::Json& s) {
  Sample out;
  out.name = s.get("name").string_or("(unnamed)");
  out.scheme = s.get("scheme").string_or("?");
  out.instance = s.get("instance").string_or("?");
  out.machine = s.get("machine").string_or("?");
  out.procs = static_cast<int>(s.get("procs").number_or(0.0));
  out.n = static_cast<std::uint64_t>(s.get("n").number_or(0.0));
  out.iter_time = s.get("iter_time").number_or(kNaN);
  out.wall_p50 = s.get("wall_p50").number_or(kNaN);
  out.wall_p95 = s.get("wall_p95").number_or(kNaN);
  // Pre-schema registries lack the rss/alloc keys; NaN means "not recorded"
  // and the dashboard simply breaks the line there.
  out.peak_rss = s.get("peak_rss_bytes").number_or(kNaN);
  out.alloc_count = s.get("alloc_count").number_or(kNaN);
  if (out.scheme != "wall") {
    out.efficiency = s.get("efficiency").number_or(kNaN);
    if (finite(out.iter_time) && finite(out.efficiency))
      out.overhead = out.procs * out.iter_time * (1.0 - out.efficiency);
  }
  if (s.get("phases").is_object())
    for (const auto& [k, v] : s.at("phases").object())
      out.phases[k] = v.number_or(kNaN);
  return out;
}

/// bh.prof.v1 profiler regions as wall-scheme scenarios, keyed
/// "prof/<region>". iter_time carries the region's wall seconds so the
/// existing series machinery plots it; wall_share is the region's fraction
/// of the run's total wall clock, the host-independent-ish quantity worth
/// eyeballing across runs.
std::map<std::string, Sample> read_prof(const obs::Json& doc) {
  std::map<std::string, Sample> out;
  const double total = doc.get("wall_s").number_or(kNaN);
  for (const obs::Json& reg : doc.at("regions").array()) {
    Sample s;
    s.name = reg.get("name").string_or("(unnamed)");
    s.scheme = "wall";
    s.instance = "prof";
    s.machine = "host";
    s.procs = static_cast<int>(reg.get("threads").number_or(0.0));
    s.iter_time = reg.get("wall_s").number_or(kNaN);
    if (finite(s.iter_time) && finite(total) && total > 0.0)
      s.wall_share = s.iter_time / total;
    s.alloc_count = reg.get("allocs").number_or(kNaN);
    out.emplace("prof/" + s.name, std::move(s));
  }
  return out;
}

}  // namespace

TrendData ingest(
    const std::vector<std::pair<std::string, const obs::Json*>>& docs) {
  TrendData td;
  std::vector<std::map<std::string, Sample>> run_samples;

  for (const auto& [label, doc] : docs) {
    const std::string schema = doc->get("schema").string_or("");
    const std::string sha = doc->get("git_sha").string_or("unknown");

    std::map<std::string, Sample> fresh;
    if (schema == "bh.bench.v1") {
      const std::string bench = doc->get("bench").string_or("?");
      for (const obs::Json& s : doc->at("scenarios").array())
        fresh.emplace(bench + "/" + s.get("name").string_or("(unnamed)"),
                      read_sample(s));
    } else if (schema == "bh.prof.v1") {
      fresh = read_prof(*doc);
    } else {
      throw obs::JsonError("trend: " + label +
                           " is not a bh.bench.v1 or bh.prof.v1 document");
    }

    // Join the most recent column with this SHA, unless one of our keys is
    // already there (a re-run of the same bench at one SHA is a new run).
    int target = -1;
    for (int i = static_cast<int>(td.runs.size()) - 1; i >= 0; --i) {
      if (td.runs[i].git_sha != sha) continue;
      bool collides = false;
      for (const auto& [key, sample] : fresh)
        if (run_samples[i].count(key)) {
          collides = true;
          break;
        }
      if (!collides) target = i;
      break;
    }
    if (target < 0) {
      std::size_t nth = 0;
      for (const auto& r : td.runs)
        if (r.git_sha == sha) ++nth;
      RunColumn col;
      col.git_sha = sha;
      col.id = sha.substr(0, 10);
      if (nth > 0) col.id += "#" + std::to_string(nth + 1);
      td.runs.push_back(std::move(col));
      run_samples.emplace_back();
      target = static_cast<int>(td.runs.size()) - 1;
    }
    td.runs[target].sources.push_back(label);
    for (auto& [key, sample] : fresh)
      run_samples[target].emplace(key, std::move(sample));
  }

  const std::size_t nruns = td.runs.size();

  // Scenario series: union of keys, NaN where a run misses the scenario.
  std::map<std::string, ScenarioSeries> series;
  for (std::size_t i = 0; i < nruns; ++i) {
    for (const auto& [key, s] : run_samples[i]) {
      auto [it, inserted] = series.try_emplace(key);
      ScenarioSeries& sc = it->second;
      if (inserted) {
        sc.key = key;
        sc.scheme = s.scheme;
        sc.instance = s.instance;
        sc.machine = s.machine;
        sc.procs = s.procs;
        sc.n = s.n;
        for (auto* v : {&sc.iter_time, &sc.wall_p50, &sc.wall_p95,
                        &sc.wall_share, &sc.efficiency, &sc.overhead,
                        &sc.peak_rss, &sc.alloc_count})
          v->assign(nruns, kNaN);
      }
      sc.iter_time[i] = s.iter_time;
      sc.wall_p50[i] = s.wall_p50;
      sc.wall_p95[i] = s.wall_p95;
      sc.wall_share[i] = s.wall_share;
      sc.efficiency[i] = s.efficiency;
      sc.overhead[i] = s.overhead;
      sc.peak_rss[i] = s.peak_rss;
      sc.alloc_count[i] = s.alloc_count;
      for (const auto& [ph, v] : s.phases) {
        auto [pit, pin] = sc.phases.try_emplace(ph);
        if (pin) pit->second.assign(nruns, kNaN);
        pit->second[i] = v;
      }
    }
  }
  td.scenarios.reserve(series.size());
  for (auto& [key, sc] : series) td.scenarios.push_back(std::move(sc));

  // Per-run family fits over the modeled (non-wall) rows.
  std::map<std::string, FamilyTrend> fams;
  for (std::size_t i = 0; i < nruns; ++i) {
    std::map<std::string, std::vector<obs::analyze::OverheadPoint>> pts;
    for (const auto& [key, s] : run_samples[i]) {
      if (s.scheme == "wall" || s.procs <= 0 || !finite(s.overhead)) continue;
      obs::analyze::OverheadPoint pt;
      pt.scenario = s.name;
      pt.procs = s.procs;
      pt.n = s.n;
      pt.iter_time = s.iter_time;
      pt.efficiency = s.efficiency;
      pt.overhead = s.overhead;
      pts[s.instance + " " + s.scheme].push_back(std::move(pt));
    }
    for (auto& [family, fpts] : pts) {
      auto fit = obs::analyze::fit_family(family, std::move(fpts));
      auto [it, inserted] = fams.try_emplace(family);
      FamilyTrend& ft = it->second;
      if (inserted) {
        ft.family = family;
        ft.chosen.assign(nruns, "");
        ft.coeff.assign(nruns, kNaN);
        ft.r2.assign(nruns, kNaN);
      }
      ft.chosen[i] = fit.chosen;
      ft.coeff[i] = fit.chosen_coeff;
      ft.r2[i] = fit.chosen_r2;
    }
  }
  td.families.reserve(fams.size());
  for (auto& [family, ft] : fams) td.families.push_back(std::move(ft));

  return td;
}

std::vector<TrendViolation> gate_trend(const TrendData& td,
                                       const GateConfig& cfg) {
  std::vector<TrendViolation> out;
  const int k = cfg.window;
  if (k < 2 || static_cast<int>(td.runs.size()) < k) return out;

  auto check = [&](const ScenarioSeries& sc, const std::string& metric,
                   const std::vector<double>& v) {
    std::vector<double> w(v.end() - k, v.end());
    for (double x : w)
      if (!finite(x)) return;
    if (w.front() < cfg.floor) return;
    for (int i = 1; i < k; ++i)
      if (!(w[i] > w[i - 1])) return;
    const double pct = 100.0 * (w.back() - w.front()) / w.front();
    if (pct <= cfg.cum_pct) return;
    out.push_back({sc.key, metric, std::move(w), pct});
  };

  for (const auto& sc : td.scenarios) {
    if (sc.scheme == "wall") continue;  // host-dependent; trajectory only
    check(sc, "iter_time", sc.iter_time);
    for (const auto& [ph, v] : sc.phases) check(sc, "phase " + ph, v);
  }
  std::sort(out.begin(), out.end(),
            [](const TrendViolation& a, const TrendViolation& b) {
              return a.cum_pct > b.cum_pct;
            });
  return out;
}

namespace {

void write_series(std::ostream& os, const char* key,
                  const std::vector<double>& v) {
  os << "\"" << key << "\": [";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? ", " : "") << obs::json_num(v[i]);
  os << "]";
}

}  // namespace

std::string data_json(const TrendData& td) {
  using obs::json_escape;
  using obs::json_num;
  std::ostringstream os;
  os << "{\n\"schema\": \"bh.trend.v1\",\n\"runs\": [\n";
  for (std::size_t i = 0; i < td.runs.size(); ++i) {
    const auto& r = td.runs[i];
    os << "{\"id\": \"" << json_escape(r.id) << "\", \"git_sha\": \""
       << json_escape(r.git_sha) << "\", \"sources\": [";
    for (std::size_t j = 0; j < r.sources.size(); ++j)
      os << (j ? ", " : "") << "\"" << json_escape(r.sources[j]) << "\"";
    os << "]}" << (i + 1 < td.runs.size() ? "," : "") << "\n";
  }
  os << "],\n\"scenarios\": [\n";
  for (std::size_t i = 0; i < td.scenarios.size(); ++i) {
    const auto& s = td.scenarios[i];
    os << "{\"key\": \"" << json_escape(s.key) << "\", \"scheme\": \""
       << json_escape(s.scheme) << "\", \"instance\": \""
       << json_escape(s.instance) << "\", \"machine\": \""
       << json_escape(s.machine) << "\", \"procs\": " << s.procs
       << ", \"n\": " << s.n << ",\n ";
    write_series(os, "iter_time", s.iter_time);
    os << ",\n ";
    write_series(os, "wall_p50", s.wall_p50);
    os << ",\n ";
    write_series(os, "wall_p95", s.wall_p95);
    os << ",\n ";
    write_series(os, "wall_share", s.wall_share);
    os << ",\n ";
    write_series(os, "efficiency", s.efficiency);
    os << ",\n ";
    write_series(os, "overhead", s.overhead);
    os << ",\n ";
    write_series(os, "peak_rss_bytes", s.peak_rss);
    os << ",\n ";
    write_series(os, "alloc_count", s.alloc_count);
    os << ",\n \"phases\": {";
    bool first = true;
    for (const auto& [ph, v] : s.phases) {
      if (!first) os << ", ";
      first = false;
      write_series(os, ph.c_str(), v);
    }
    os << "}}" << (i + 1 < td.scenarios.size() ? "," : "") << "\n";
  }
  os << "],\n\"families\": [\n";
  for (std::size_t i = 0; i < td.families.size(); ++i) {
    const auto& f = td.families[i];
    os << "{\"family\": \"" << json_escape(f.family) << "\", \"chosen\": [";
    for (std::size_t j = 0; j < f.chosen.size(); ++j)
      os << (j ? ", " : "") << "\"" << json_escape(f.chosen[j]) << "\"";
    os << "],\n ";
    write_series(os, "coeff", f.coeff);
    os << ",\n ";
    write_series(os, "r2", f.r2);
    os << "}" << (i + 1 < td.families.size() ? "," : "") << "\n";
  }
  os << "]\n}\n";
  return os.str();
}

namespace {

// The dashboard shell. The data document is injected into the
// application/json script tag between kHtmlHead and kHtmlTail; everything
// else is static. Palette: categorical slots s1 (blue), s2 (orange),
// s3 (aqua), separately stepped for light and dark surfaces; text always
// wears text tokens, never series color.
constexpr const char* kHtmlHead = R"__bh__(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>bh trend</title>
<style>
:root {
  --surface: #ffffff; --card: #f6f7f9; --text: #1f2328; --muted: #667085;
  --grid: #e4e7ec; --border: #d8dce3;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #0e1117; --card: #161b22; --text: #e6edf3; --muted: #8b949e;
    --grid: #272d36; --border: #30363d;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
html { background: var(--surface); }
body { margin: 0 auto; max-width: 1160px; padding: 18px 22px 40px;
       color: var(--text);
       font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 26px 0 10px; }
h3 { font-size: 14px; margin: 0 0 2px; }
.sub { color: var(--muted); margin: 0 0 8px; font-size: 12.5px; }
.runs { display: flex; flex-wrap: wrap; gap: 6px; margin: 10px 0 4px; }
.chip { background: var(--card); border: 1px solid var(--border);
        border-radius: 999px; padding: 2px 10px; font-size: 12px; }
.chip .chip-src { color: var(--muted); }
.card { background: var(--card); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 14px; margin: 0 0 12px; }
.chart-row { display: flex; flex-wrap: wrap; gap: 10px; }
figure.chart { margin: 0; width: 330px; }
figure.chart figcaption { font-size: 12px; color: var(--muted);
                          margin: 2px 0 2px 4px; }
svg { display: block; width: 100%; height: auto; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--border); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 9px; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.s1 { stroke: var(--s1); } .line.s2 { stroke: var(--s2); }
.line.s3 { stroke: var(--s3); }
.dot { stroke: var(--surface); stroke-width: 2; }
.dot.s1 { fill: var(--s1); } .dot.s2 { fill: var(--s2); }
.dot.s3 { fill: var(--s3); }
.dot:hover { r: 6; }
.legend { display: flex; gap: 12px; margin: 2px 0 0 4px; font-size: 12px;
          color: var(--muted); }
.legend-item { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.swatch.s1 { background: var(--s1); } .swatch.s2 { background: var(--s2); }
.swatch.s3 { background: var(--s3); }
details { margin-top: 24px; }
summary { cursor: pointer; color: var(--muted); }
table { border-collapse: collapse; margin-top: 10px; font-size: 12.5px; }
th, td { border: 1px solid var(--border); padding: 3px 9px; text-align: right; }
th { color: var(--muted); font-weight: 500; }
td.name, th.name { text-align: left; }
</style>
</head>
<body>
<header>
  <h1>bh trend</h1>
  <p class="sub" id="headline"></p>
  <div class="runs" id="runs"></div>
</header>
<h2>Fitted overhead (isoefficiency model)</h2>
<p class="sub">Per scenario family: least-squares T<sub>o</sub> coefficient of
the chosen form (p&nbsp;log&nbsp;p / p / p&sup2;) and its R&sup2;, one point
per run. A drifting coefficient means the overhead curve itself is moving.</p>
<div id="families"></div>
<h2>Scenarios (modeled virtual time)</h2>
<div id="scenarios"></div>
<h2>Wall clock (host)</h2>
<p class="sub">Host-measured series live in their own panel: wall seconds
move with the CI runner, so they never share an axis (or a gate) with the
modeled virtual-time charts above. Cards: micro_kernels wall rows, profiler
per-region wall time and run share (bh.prof.v1), and the harness wall
percentiles of the modeled scenarios.</p>
<div id="wall"></div>
<details>
  <summary>Data table (iter_time per run)</summary>
  <div style="overflow-x: auto"><table id="datatable"></table></div>
</details>
<script type="application/json" id="trend-data">
)__bh__";

constexpr const char* kHtmlTail = R"__bh__(</script>
<script>
(function () {
  'use strict';
  const data = JSON.parse(document.getElementById('trend-data').textContent);
  const runIds = data.runs.map(r => r.id);
  const NS = 'http://www.w3.org/2000/svg';
  function el(tag, cls, parent, text) {
    const e = document.createElement(tag);
    if (cls) e.className = cls;
    if (text !== undefined) e.textContent = text;
    if (parent) parent.appendChild(e);
    return e;
  }
  function svgel(tag, attrs, parent) {
    const e = document.createElementNS(NS, tag);
    for (const k in attrs) e.setAttribute(k, attrs[k]);
    if (parent) parent.appendChild(e);
    return e;
  }
  function fin(v) { return v !== null && isFinite(v); }
  function fmt(v) {
    if (!fin(v)) return '–';
    const a = Math.abs(v);
    if (a >= 1e9) return +(v / 1e9).toPrecision(3) + 'G';
    if (a >= 1e6) return +(v / 1e6).toPrecision(3) + 'M';
    if (a >= 1e3) return +(v / 1e3).toPrecision(3) + 'k';
    if (a >= 1 || a === 0) return String(+v.toPrecision(3));
    if (a >= 1e-3) return +(v * 1e3).toPrecision(3) + 'm';
    if (a >= 1e-6) return +(v * 1e6).toPrecision(3) + 'µ';
    return +(v * 1e9).toPrecision(3) + 'n';
  }
  function chart(parent, title, series, unit) {
    const card = el('figure', 'chart', parent);
    el('figcaption', 'chart-title', card, title);
    const W = 330, H = 168, L = 46, R = 12, T = 10, B = 22;
    const svg = svgel('svg', { viewBox: '0 0 ' + W + ' ' + H, role: 'img' }, card);
    let max = 0;
    series.forEach(s => s.values.forEach(v => { if (fin(v) && v > max) max = v; }));
    if (max <= 0) max = 1;
    max *= 1.08;
    const n = runIds.length;
    const x = i => n > 1 ? L + i * (W - L - R) / (n - 1) : (L + W - R) / 2;
    const y = v => H - B - (v / max) * (H - T - B);
    for (let g = 1; g <= 3; g++) {
      const gv = max * g / 3, gy = y(gv);
      svgel('line', { x1: L, x2: W - R, y1: gy, y2: gy, 'class': 'grid' }, svg);
      const t = svgel('text', { x: L - 5, y: gy + 3, 'class': 'tick',
                                'text-anchor': 'end' }, svg);
      t.textContent = fmt(gv);
    }
    svgel('line', { x1: L, x2: W - R, y1: H - B, y2: H - B, 'class': 'axis' }, svg);
    const step = Math.max(1, Math.ceil(n / 6));
    runIds.forEach((id, i) => {
      if (i % step !== 0 && i !== n - 1) return;
      const t = svgel('text', { x: x(i), y: H - B + 12, 'class': 'tick',
                                'text-anchor': 'middle' }, svg);
      t.textContent = id.slice(0, 7);
    });
    series.forEach(s => {
      let seg = [];
      const flush = () => {
        if (seg.length > 1)
          svgel('polyline', { points: seg.join(' '), 'class': 'line s' + s.slot }, svg);
        seg = [];
      };
      s.values.forEach((v, i) => { fin(v) ? seg.push(x(i) + ',' + y(v)) : flush(); });
      flush();
      s.values.forEach((v, i) => {
        if (!fin(v)) return;
        const c = svgel('circle', { cx: x(i), cy: y(v), r: 4,
                                    'class': 'dot s' + s.slot }, svg);
        svgel('title', {}, c).textContent =
            runIds[i] + ' · ' + s.name + ': ' + fmt(v) + (unit || '');
      });
    });
    if (series.length >= 2) {
      const leg = el('div', 'legend', card);
      series.forEach(s => {
        const it = el('span', 'legend-item', leg);
        el('span', 'swatch s' + s.slot, it);
        el('span', '', it, s.name);
      });
    }
  }

  document.getElementById('headline').textContent =
      data.runs.length + ' run' + (data.runs.length === 1 ? '' : 's') +
      ' · ' + data.scenarios.length + ' scenario' +
      (data.scenarios.length === 1 ? '' : 's') + ' · bh.trend.v1';
  const chips = document.getElementById('runs');
  data.runs.forEach(r => {
    const c = el('span', 'chip', chips);
    el('strong', '', c, r.id);
    el('span', 'chip-src', c, ' · ' + r.sources.join(', '));
  });

  const famSec = document.getElementById('families');
  if (!data.families.length)
    el('p', 'sub', famSec, 'no modeled scenarios — nothing to fit.');
  data.families.forEach(f => {
    const card = el('div', 'card', famSec);
    el('h3', '', card, f.family);
    const chosen = f.chosen
        .map((c, i) => c ? runIds[i] + ': ' + c + ' (R²=' +
                           (fin(f.r2[i]) ? f.r2[i].toFixed(3) : '–') + ')'
                         : null)
        .filter(Boolean).join(' · ');
    el('p', 'sub', card, chosen);
    const row = el('div', 'chart-row', card);
    chart(row, 'chosen-form coefficient (s)',
          [{ name: 'coeff', slot: 1, values: f.coeff }], ' s');
    chart(row, 'fit R²', [{ name: 'R²', slot: 3, values: f.r2 }], '');
  });

  // Two panels, one unit system each: modeled virtual-time scenarios under
  // #scenarios, every host-measured series (wall-scheme rows and the
  // modeled scenarios' harness wall percentiles) under #wall.
  const scSec = document.getElementById('scenarios');
  const wallSec = document.getElementById('wall');
  let modeled = 0, wallCards = 0;
  data.scenarios.forEach(s => {
    if (s.scheme === 'wall') {
      const card = el('div', 'card', wallSec);
      wallCards++;
      el('h3', '', card, s.key);
      el('p', 'sub', card, s.scheme + ' · ' + s.instance + ' · n=' +
                           s.n + ' · p=' + s.procs + ' · ' + s.machine);
      const row = el('div', 'chart-row', card);
      chart(row, s.instance === 'prof' ? 'region wall time (s)'
                                       : 'seconds per iteration (wall)',
            [{ name: 'wall', slot: 1, values: s.iter_time }], ' s');
      if (s.wall_share.some(fin))
        chart(row, 'share of run wall clock',
              [{ name: 'share', slot: 2, values: s.wall_share }], '');
      if (s.peak_rss_bytes.some(fin))
        chart(row, 'peak RSS (bytes)',
              [{ name: 'peak RSS', slot: 2, values: s.peak_rss_bytes }], 'B');
      return;
    }
    modeled++;
    const card = el('div', 'card', scSec);
    el('h3', '', card, s.key);
    el('p', 'sub', card, s.scheme + ' · ' + s.instance + ' · n=' +
                         s.n + ' · p=' + s.procs + ' · ' + s.machine);
    const row = el('div', 'chart-row', card);
    chart(row, 'iter_time (modeled s)',
          [{ name: 'iter_time', slot: 1, values: s.iter_time }], ' s');
    if (s.efficiency.some(fin))
      chart(row, 'efficiency',
            [{ name: 'efficiency', slot: 3, values: s.efficiency }], '');
    if (s.peak_rss_bytes.some(fin))
      chart(row, 'peak RSS (bytes)',
            [{ name: 'peak RSS', slot: 2, values: s.peak_rss_bytes }], 'B');
    if (s.wall_p50.some(fin)) {
      const wcard = el('div', 'card', wallSec);
      wallCards++;
      el('h3', '', wcard, s.key + ' — harness wall');
      el('p', 'sub', wcard, 'wall percentiles of the modeled run above');
      chart(el('div', 'chart-row', wcard), 'harness wall time (s)',
            [{ name: 'p50', slot: 1, values: s.wall_p50 },
             { name: 'p95', slot: 2, values: s.wall_p95 }], ' s');
    }
  });
  if (!modeled)
    el('p', 'sub', scSec, 'no modeled scenarios ingested.');
  if (!wallCards)
    el('p', 'sub', wallSec, 'no wall-clock rows ingested.');

  const tbl = document.getElementById('datatable');
  const hr = el('tr', '', el('thead', '', tbl));
  el('th', 'name', hr, 'scenario');
  runIds.forEach(id => el('th', '', hr, id));
  const tb = el('tbody', '', tbl);
  data.scenarios.forEach(s => {
    const tr = el('tr', '', tb);
    el('td', 'name', tr, s.key);
    s.iter_time.forEach(v => el('td', '', tr, fmt(v)));
  });
})();
</script>
</body>
</html>
)__bh__";

}  // namespace

std::string render_html(const TrendData& td) {
  std::string data = data_json(td);
  // A "</script>" inside a string value would end the data block early;
  // "<\/" is the same JSON text, so escape every "</".
  std::string safe;
  safe.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == '<' && i + 1 < data.size() && data[i + 1] == '/')
      safe += "<\\/", ++i;
    else
      safe += data[i];
  }
  std::string out = kHtmlHead;
  out += safe;
  out += kHtmlTail;
  return out;
}

}  // namespace bh::trend
