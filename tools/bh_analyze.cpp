// bh_analyze -- offline analysis of the repo's observability exports.
//
//   bh_analyze report FILE [--top K]
//       FILE is any of our four JSON exports, sniffed by schema:
//        * bh.bench.v1   (--bench-json)  -> per-scenario phase/efficiency
//          table with idle attribution and the per-phase critical rank;
//        * bh.metrics.v1 (--metrics)     -> per-rank summary, phase
//          imbalance, idle split, top-K communication hot pairs;
//        * bh.prof.v1    (--profile)     -> wall-clock region table
//          (hardware counters or software fallback), roofline
//          classification against calibrated peaks, hottest stacks;
//        * Chrome trace  (--trace)       -> replayed through the analyzer:
//          virtual-time critical path across ranks, collective wait/cost
//          attribution, per-phase time on the path.
//
//   bh_analyze diff A B [--gate PCT] [--floor SEC]
//       Compare two documents of the same schema, sniffed from A:
//        * bh.bench.v1 -> scenario-by-scenario % deltas per phase (modeled
//          virtual seconds; the CI perf gate, see scripts/bench_diff.py for
//          the dependency-free equivalent);
//        * bh.prof.v1  -> region-by-region wall/flop-rate deltas (host-
//          measured seconds -- gate generously, these jitter).
//       With --gate, exit 1 when any phase/region with baseline time >=
//       --floor (default 1e-6 seconds) regressed by more than PCT percent.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/json_parse.hpp"
#include "obs/trace.hpp"

namespace {

using bh::obs::Json;
using bh::obs::JsonError;
namespace an = bh::obs::analyze;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s report FILE [--top K]\n"
               "       %s diff A B [--gate PCT] [--floor SEC]\n",
               prog, prog);
  return 2;
}

// ---- bh.bench.v1 -----------------------------------------------------------

void report_bench(const Json& doc) {
  std::printf("bench: %s  (git %s, seed %llu, scale %g)\n",
              doc.get("bench").string_or("?").c_str(),
              doc.get("git_sha").string_or("?").c_str(),
              static_cast<unsigned long long>(
                  doc.get("seed").number_or(0.0)),
              doc.get("scale").number_or(1.0));
  for (const Json& s : doc.at("scenarios").array()) {
    const double iter = s.get("iter_time").number_or(0.0);
    std::printf("\n%s\n", s.get("name").string_or("(unnamed)").c_str());
    std::printf(
        "  %s/%s  n=%.0f  p=%.0f  machine=%s\n",
        s.get("scheme").string_or("?").c_str(),
        s.get("instance").string_or("?").c_str(), s.get("n").number_or(0.0),
        s.get("procs").number_or(0.0),
        s.get("machine").string_or("?").c_str());
    std::printf(
        "  iter_time %.6g s   speedup %.3g   efficiency %.3f   load "
        "imbalance %.3f\n",
        iter, s.get("speedup").number_or(0.0),
        s.get("efficiency").number_or(0.0),
        s.get("load_imbalance").number_or(1.0));

    // Per-phase critical rank, keyed by phase name.
    std::map<std::string, std::pair<int, double>> crit;
    if (s.has("critical_path"))
      for (const Json& cp : s.at("critical_path").array())
        crit[cp.get("phase").string_or("")] = {
            static_cast<int>(cp.get("rank").number_or(-1.0)),
            cp.get("vtime").number_or(0.0)};

    if (s.has("phases")) {
      std::printf("  %-28s %12s %7s %9s %s\n", "phase", "time [s]", "share",
                  "balance", "critical rank");
      for (const auto& [phase, v] : s.at("phases").object()) {
        const double t = v.number();
        std::printf("  %-28s %12.6g %6.1f%% ", phase.c_str(), t,
                    iter > 0.0 ? 100.0 * t / iter : 0.0);
        const Json& bal = s.get("phase_balance").get(phase);
        if (bal.type() == Json::Type::kNumber)
          std::printf("%9.3f", bal.number());
        else
          std::printf("%9s", "-");
        auto it = crit.find(phase);
        if (it != crit.end())
          std::printf("   r%d (%.6g s)", it->second.first, it->second.second);
        std::printf("\n");
      }
    }
    const Json& idle = s.get("idle");
    if (idle.type() == Json::Type::kObject)
      std::printf(
          "  idle: max %.6g s  mean %.6g s  max/mean %.3f  (collective + "
          "recv wait)\n",
          idle.get("max").number_or(0.0), idle.get("mean").number_or(0.0),
          idle.get("max_over_mean").number_or(1.0));

    // Data-shipping node-cache efficiency (DESIGN.md section 14).
    const double fetches = s.get("fetch_requests").number_or(0.0);
    if (fetches > 0.0) {
      const double fetched = s.get("nodes_fetched").number_or(0.0);
      std::printf(
          "  node cache: %.0f fetches (%.0f coalesced away), %.0f nodes "
          "(%.1f/fetch, %.0f prefetched), %.0f hits, %.0f suspends, "
          "ptp stall %.6g s\n",
          fetches, s.get("cache_coalesced").number_or(0.0), fetched,
          fetched / fetches, s.get("cache_prefetched").number_or(0.0),
          s.get("cache_hits").number_or(0.0),
          s.get("cache_suspends").number_or(0.0),
          s.get("stall_vtime").number_or(0.0));
    }
  }

  // Isoefficiency model fits (paper Section 5): per scenario family, the
  // least-squares overhead form and its quality.
  const auto fits = an::fit_overheads(doc);
  if (!fits.empty()) {
    std::printf("\nisoefficiency fits (T_o = p * iter_time * (1 - eff)):\n");
    for (const auto& fit : fits) {
      std::printf("  %s  (%zu point%s)\n", fit.family.c_str(),
                  fit.points.size(), fit.points.size() == 1 ? "" : "s");
      for (const auto& pt : fit.points)
        std::printf("    p=%-4d n=%-9llu T_p=%-10.6g eff=%-6.3f T_o=%.6g\n",
                    pt.procs, static_cast<unsigned long long>(pt.n),
                    pt.iter_time, pt.efficiency, pt.overhead);
      for (const auto& form : fit.forms)
        std::printf("    T_o ~ %.6g * %-7s  R^2=%.4f  sse=%.3g%s\n",
                    form.coeff, form.name.c_str(), form.r2, form.sse,
                    form.name == fit.chosen ? "  <- chosen" : "");
      for (const auto& dev : fit.deviations)
        std::printf("    DEVIATION %s\n", dev.c_str());
    }
  }
}

// ---- bh.metrics.v1 ---------------------------------------------------------

void report_metrics(const Json& doc, int top_k) {
  const int nprocs = static_cast<int>(doc.get("nprocs").number_or(0.0));
  std::printf("bh.metrics.v1: %d ranks, parallel time %.6g s\n", nprocs,
              doc.get("parallel_time").number_or(0.0));
  std::printf("total flops %.0f, ptp bytes %.0f, collective bytes %.0f\n",
              doc.get("total_flops").number_or(0.0),
              doc.get("total_ptp_bytes").number_or(0.0),
              doc.get("total_collective_bytes").number_or(0.0));

  if (doc.has("ranks")) {
    std::printf("\n%5s %12s %12s %12s %12s\n", "rank", "vtime [s]",
                "coll_wait", "coll_cost", "recv_wait");
    for (const Json& r : doc.at("ranks").array())
      std::printf("%5.0f %12.6g %12.6g %12.6g %12.6g\n",
                  r.get("rank").number_or(-1.0),
                  r.get("vtime").number_or(0.0),
                  r.get("coll_wait").number_or(0.0),
                  r.get("coll_cost").number_or(0.0),
                  r.get("recv_wait").number_or(0.0));
  }

  // Engine event counters, summed over ranks (e.g. the data-shipping node
  // cache's dataship.* family).
  if (doc.has("ranks")) {
    std::map<std::string, double> counters;
    for (const Json& r : doc.at("ranks").array())
      if (r.has("counters"))
        for (const auto& [k, v] : r.at("counters").object())
          counters[k] += v.number_or(0.0);
    if (!counters.empty()) {
      std::printf("\nengine counters (sum over ranks):\n");
      for (const auto& [k, v] : counters)
        std::printf("  %-28s %.0f\n", k.c_str(), v);
    }
  }

  const Json& idle = doc.get("idle");
  if (idle.type() == Json::Type::kObject)
    std::printf("\nidle: max %.6g s  mean %.6g s  max/mean %.3f\n",
                idle.get("max").number_or(0.0),
                idle.get("mean").number_or(0.0),
                idle.get("max_over_mean").number_or(1.0));

  const Json& imb = doc.get("imbalance");
  if (imb.type() == Json::Type::kObject && imb.has("phases")) {
    std::printf("\nphase balance (max rank time / mean rank time):\n");
    for (const auto& [phase, v] : imb.at("phases").object())
      std::printf("  %-28s %.3f\n", phase.c_str(),
                  v.get("max_over_mean").number_or(1.0));
  }

  if (doc.has("comm_matrix")) {
    struct Pair {
      int src, dst;
      double bytes;
    };
    std::vector<Pair> pairs;
    int src = 0;
    for (const Json& row : doc.at("comm_matrix").array()) {
      int dst = 0;
      for (const Json& cell : row.array()) {
        if (cell.number() > 0.0)
          pairs.push_back({src, dst, cell.number()});
        ++dst;
      }
      ++src;
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.bytes > b.bytes; });
    std::printf("\ntop %d point-to-point pairs by bytes:\n", top_k);
    for (int i = 0; i < top_k && i < static_cast<int>(pairs.size()); ++i)
      std::printf("  r%d -> r%d  %.0f bytes\n", pairs[i].src, pairs[i].dst,
                  pairs[i].bytes);
    if (pairs.empty()) std::printf("  (no point-to-point traffic)\n");
  }
}

// ---- Chrome trace ----------------------------------------------------------

void report_trace(const Json& doc, int top_k) {
  bh::obs::Tracer tracer;
  an::trace_from_json(doc, tracer);
  const an::TraceAnalysis a = an::analyze_trace(tracer);

  std::printf("trace: %d ranks, span %.6g virtual seconds%s\n", a.nprocs,
              a.span,
              a.aligned ? "" : "  (collectives not aligned across ranks; "
                               "cross-rank attribution disabled)");

  std::printf("\n%5s %12s %12s %12s %8s %8s %8s %8s\n", "rank", "vtime [s]",
              "coll_wait", "coll_cost", "stalls", "serves", "sends", "recvs");
  for (int r = 0; r < a.nprocs; ++r) {
    const auto& ra = a.ranks[static_cast<std::size_t>(r)];
    std::printf("%5d %12.6g %12.6g %12.6g %8llu %8llu %8llu %8llu\n", r,
                ra.final_vt, ra.coll_wait, ra.coll_cost,
                static_cast<unsigned long long>(ra.stall_events),
                static_cast<unsigned long long>(ra.serve_events),
                static_cast<unsigned long long>(ra.sends),
                static_cast<unsigned long long>(ra.recvs));
  }

  if (a.aligned && !a.critical_path.empty()) {
    std::printf("\ncritical path (%zu segments, %.6g flops, peak density "
                "%.6g flop/s):\n",
                a.critical_path.size(), a.path_flops, a.peak_density);
    for (const auto& seg : a.critical_path)
      std::printf("  [%.6g, %.6g] r%-3d %-32s %.6g s  %-7s %10.6g flop/s\n",
                  seg.t0, seg.t1, seg.rank, seg.label.c_str(), seg.len(),
                  an::seg_kind_name(seg.kind), seg.density());
    std::printf("\ncritical path by activity:\n");
    double total = 0.0;
    for (const auto& [label, t] : a.critical_by_label) total += t;
    for (const auto& [label, t] : a.critical_by_label)
      std::printf("  %-32s %12.6g s  %5.1f%%\n", label.c_str(), t,
                  total > 0.0 ? 100.0 * t / total : 0.0);
    std::printf("\ncritical path by flop-density class:\n");
    for (const auto& [kind, t] : a.critical_by_kind)
      std::printf("  %-32s %12.6g s  %5.1f%%\n", kind.c_str(), t,
                  total > 0.0 ? 100.0 * t / total : 0.0);
    if (!a.stall_stretches.empty()) {
      std::printf("\nwidest stall stretches on the path:\n");
      int shown = 0;
      for (const auto& st : a.stall_stretches) {
        if (++shown > top_k) break;
        std::printf("  [%.6g, %.6g] r%-3d %.6g s\n", st.t0, st.t1, st.rank,
                    st.len());
      }
    }
  }
}

// ---- bh.prof.v1 ------------------------------------------------------------

/// Wall-clock profile report: per-region table (exclusive wall, hardware
/// counters or the software fallback, annotated flops/bytes) plus the
/// roofline classification against the in-process calibrated peaks and the
/// hottest sampled stacks.
void report_prof(const Json& doc, int top_k) {
  const std::string counters = doc.get("counters").string_or("?");
  const double wall = doc.get("wall_s").number_or(0.0);
  const double peak_f = doc.get("machine").get("peak_flops_per_s")
                            .number_or(0.0);
  const double peak_b = doc.get("machine").get("peak_bytes_per_s")
                            .number_or(0.0);
  const double ridge = peak_b > 0.0 ? peak_f / peak_b : 0.0;
  std::printf("bh.prof.v1: %.6g s wall, counters: %s  (git %s)\n", wall,
              counters.c_str(), doc.get("git_sha").string_or("?").c_str());
  std::printf("machine peaks: %.3g flop/s, %.3g B/s  (ridge AI %.3g)\n",
              peak_f, peak_b, ridge);

  struct Row {
    std::string name;
    double wall = 0.0;
    const Json* j = nullptr;
  };
  std::vector<Row> rows;
  double total_wall = 0.0;
  for (const Json& r : doc.at("regions").array()) {
    Row row;
    row.name = r.get("name").string_or("?");
    row.wall = r.get("wall_s").number_or(0.0);
    row.j = &r;
    total_wall += row.wall;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.wall > b.wall; });

  std::printf("\n%-18s %6s %6s %10s %6s %11s %11s %8s %8s %s\n", "region",
              "calls", "thr", "wall [s]", "share", "cycles", "llc_miss",
              "GF/s", "AI", "bound");
  for (const auto& row : rows) {
    const Json& r = *row.j;
    const double flops = r.get("flops").number_or(0.0);
    std::printf("%-18s %6.0f %6.0f %10.4g %5.1f%% %11.4g %11.4g %8.3g "
                "%8.3g %s\n",
                row.name.c_str(), r.get("calls").number_or(0.0),
                r.get("threads").number_or(0.0), row.wall,
                total_wall > 0.0 ? 100.0 * row.wall / total_wall : 0.0,
                r.get("cycles").number_or(0.0),
                r.get("llc_misses").number_or(0.0),
                row.wall > 0.0 ? flops / row.wall / 1e9 : 0.0,
                r.get("arith_intensity").number_or(0.0),
                r.get("bound").string_or("n/a").c_str());
  }

  // Roofline: attainable = min(peak_flops, AI * peak_bw), achieved from
  // measured wall. Only regions with both annotations have a point.
  std::printf("\nroofline (regions with flop+byte annotations):\n");
  for (const auto& row : rows) {
    const Json& r = *row.j;
    const double flops = r.get("flops").number_or(0.0);
    const double ai = r.get("arith_intensity").number_or(0.0);
    if (flops <= 0.0 || ai <= 0.0 || row.wall <= 0.0) continue;
    const double attainable =
        peak_f > 0.0 ? std::min(peak_f, ai * peak_b) : 0.0;
    const double achieved = flops / row.wall;
    std::printf("  %-18s AI %8.3g  achieved %8.3g flop/s  attainable "
                "%8.3g  (%5.1f%% of roof, %s-bound)\n",
                row.name.c_str(), ai, achieved, attainable,
                attainable > 0.0 ? 100.0 * achieved / attainable : 0.0,
                r.get("bound").string_or("?").c_str());
  }

  const Json& samples = doc.get("samples");
  std::printf("\nsampler: %.0f samples (%.0f dropped)\n",
              samples.get("count").number_or(0.0),
              samples.get("dropped").number_or(0.0));
  if (doc.has("folded")) {
    struct Stack {
      std::string s;
      double count;
    };
    std::vector<Stack> stacks;
    for (const Json& f : doc.at("folded").array()) {
      const std::string line = f.string_or("");
      const auto sp = line.rfind(' ');
      if (sp == std::string::npos) continue;
      stacks.push_back({line.substr(0, sp), std::stod(line.substr(sp + 1))});
    }
    std::sort(stacks.begin(), stacks.end(),
              [](const Stack& a, const Stack& b) { return a.count > b.count; });
    for (std::size_t i = 0;
         i < stacks.size() && i < static_cast<std::size_t>(top_k); ++i)
      std::printf("  %8.0f  %s\n", stacks[i].count, stacks[i].s.c_str());
  }
}

int cmd_report(const std::string& path, int top_k) {
  const Json doc = Json::parse_file(path);
  const std::string schema = doc.get("schema").string_or("");
  if (schema == "bh.bench.v1") {
    report_bench(doc);
  } else if (schema == "bh.metrics.v1") {
    report_metrics(doc, top_k);
  } else if (schema == "bh.prof.v1") {
    report_prof(doc, top_k);
  } else if (doc.has("traceEvents")) {
    report_trace(doc, top_k);
  } else {
    std::fprintf(stderr,
                 "%s: not a bh.bench.v1 / bh.metrics.v1 / bh.prof.v1 / "
                 "Chrome-trace document\n",
                 path.c_str());
    return 2;
  }
  return 0;
}

int cmd_diff_prof(const Json& a, const Json& b, double gate, double floor) {
  const an::ProfDiff d = an::diff_prof(a, b);
  std::printf("wall: A %.6g s   B %.6g s\n\n", d.wall_a, d.wall_b);
  std::printf("%-24s %12s %12s %9s %10s %10s\n", "region", "A [s]", "B [s]",
              "delta", "A GF/s", "B GF/s");
  for (const auto& rd : d.regions)
    std::printf("%-24s %12.6g %12.6g %+8.2f%% %10.3g %10.3g\n",
                rd.name.c_str(), rd.wall_a, rd.wall_b, rd.pct(),
                rd.rate_a() / 1e9, rd.rate_b() / 1e9);
  for (const auto& name : d.only_a)
    std::printf("only in A: %s\n", name.c_str());
  for (const auto& name : d.only_b)
    std::printf("only in B: %s\n", name.c_str());

  const auto [pct, where] = an::worst_prof_regression(d, floor);
  if (pct > 0.0)
    std::printf("\nworst regression: +%.2f%% (%s)\n", pct, where.c_str());
  else
    std::printf("\nno regressions\n");
  if (gate > 0.0 && pct > gate) {
    std::fprintf(stderr, "FAIL: regression %.2f%% exceeds gate %.2f%%\n", pct,
                 gate);
    return 1;
  }
  return 0;
}

int cmd_diff(const std::string& pa, const std::string& pb, double gate,
             double floor) {
  const Json a = Json::parse_file(pa);
  const Json b = Json::parse_file(pb);
  if (a.get("schema").string_or("") == "bh.prof.v1")
    return cmd_diff_prof(a, b, gate, floor);
  const an::BenchDiff d = an::diff_bench(a, b);

  for (const auto& sd : d.scenarios) {
    std::printf("%s\n", sd.name.c_str());
    std::printf("  %-28s %12s %12s %9s\n", "phase", "A [s]", "B [s]",
                "delta");
    for (const auto& pd : sd.phases)
      std::printf("  %-28s %12.6g %12.6g %+8.2f%%\n", pd.phase.c_str(), pd.a,
                  pd.b, pd.pct());
  }
  for (const auto& name : d.only_a)
    std::printf("only in A: %s\n", name.c_str());
  for (const auto& name : d.only_b)
    std::printf("only in B: %s\n", name.c_str());

  const auto [pct, where] = an::worst_regression(d, floor);
  if (pct > 0.0)
    std::printf("\nworst regression: +%.2f%% (%s)\n", pct, where.c_str());
  else
    std::printf("\nno regressions\n");
  if (gate > 0.0 && pct > gate) {
    std::fprintf(stderr, "FAIL: regression %.2f%% exceeds gate %.2f%%\n", pct,
                 gate);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];

  std::vector<std::string> pos;
  double gate = 0.0, floor = 1e-6;
  int top_k = 5;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--gate")
      gate = std::atof(val("--gate"));
    else if (a == "--floor")
      floor = std::atof(val("--floor"));
    else if (a == "--top")
      top_k = std::atoi(val("--top"));
    else if (a.rfind("--", 0) == 0)
      return usage(argv[0]);
    else
      pos.push_back(a);
  }

  try {
    if (cmd == "report" && pos.size() == 1) return cmd_report(pos[0], top_k);
    if (cmd == "diff" && pos.size() == 2)
      return cmd_diff(pos[0], pos[1], gate, floor);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  return usage(argv[0]);
}
