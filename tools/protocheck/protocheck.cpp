#include "protocheck/protocheck.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace bh::protocheck {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse `bh-protocheck: allow(rule, rule)` out of one comment's text and
/// record the rules (trimmed, lowercased as written) against `line`.
void scan_comment_for_allows(const std::string& text, int line,
                             std::map<int, std::set<std::string>>& allows) {
  const auto mark = text.find("bh-protocheck:");
  if (mark == std::string::npos) return;
  const auto open = text.find("allow(", mark);
  if (open == std::string::npos) return;
  const auto close = text.find(')', open);
  if (close == std::string::npos) return;
  std::string inner = text.substr(open + 6, close - open - 6);
  std::string cur;
  auto flush = [&] {
    // trim
    const auto b = cur.find_first_not_of(" \t");
    const auto e = cur.find_last_not_of(" \t");
    if (b != std::string::npos) allows[line].insert(cur.substr(b, e - b + 1));
    cur.clear();
  };
  for (char c : inner) {
    if (c == ',')
      flush();
    else
      cur += c;
  }
  flush();
}

}  // namespace

LexedFile lex(std::string path, const std::string& src) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](TokKind k, std::string text) {
    out.tokens.push_back(Token{k, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment (suppressions live here).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_comment_for_allows(src.substr(start, i - start), line, out.allows);
      continue;
    }
    // Block comment; a suppression inside one anchors at its closing line.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      scan_comment_for_allows(src.substr(start, i - start), line, out.allows);
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const auto end = src.find(closer, j);
      const std::size_t stop = (end == std::string::npos)
                                   ? n
                                   : end + closer.size();
      push(TokKind::kString, src.substr(i, stop - i));
      for (std::size_t k = i; k < stop; ++k)
        if (src[k] == '\n') ++line;
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n)
          i += 2;
        else
          ++i;
      }
      i = (i < n) ? i + 1 : n;
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           src.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, src.substr(start, i - start));
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      push(TokKind::kIdent, src.substr(start, i - start));
      continue;
    }
    // Punctuation. A handful of two-char operators are kept whole because
    // the analysis keys on them (`->` member access, `==`/`!=` comparisons,
    // `::` qualification); everything else is one char so `>>` closes two
    // template scopes.
    if (i + 1 < n) {
      const std::string two = src.substr(i, 2);
      if (two == "::" || two == "->" || two == "==" || two == "!=" ||
          two == "<=" || two == ">=" || two == "&&" || two == "||") {
        push(TokKind::kPunct, two);
        i += 2;
        continue;
      }
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

// -- registry ----------------------------------------------------------------

const RegistryTag* Registry::by_const(const std::string& name) const {
  for (const auto& t : tags)
    if (t.const_name == name) return &t;
  return nullptr;
}

Registry parse_registry(const std::string& path, const std::string& source) {
  const LexedFile f = lex(path, source);
  const auto& t = f.tokens;
  const std::size_t n = t.size();
  auto fail = [&](int line, const std::string& what) {
    throw std::runtime_error(path + ":" + std::to_string(line) + ": " + what);
  };

  std::map<std::string, int> int_consts;
  Registry reg;

  auto is_tok = [&](std::size_t i, const char* s) {
    return i < n && t[i].text == s;
  };

  for (std::size_t i = 0; i < n; ++i) {
    // constexpr int IDENT = NUMBER ;
    if (is_tok(i, "constexpr") && is_tok(i + 1, "int") &&
        i + 5 < n && t[i + 2].kind == TokKind::kIdent && is_tok(i + 3, "=") &&
        t[i + 4].kind == TokKind::kNumber && is_tok(i + 5, ";")) {
      int_consts[t[i + 2].text] = std::stoi(t[i + 4].text);
      continue;
    }
    // constexpr const char * IDENT = STRING ;
    if (is_tok(i, "constexpr") && is_tok(i + 1, "const") &&
        is_tok(i + 2, "char") && is_tok(i + 3, "*") && i + 7 < n &&
        t[i + 4].kind == TokKind::kIdent && is_tok(i + 5, "=") &&
        t[i + 6].kind == TokKind::kString && is_tok(i + 7, ";")) {
      reg.phases.push_back(t[i + 4].text);
      continue;
    }
    // TagSpec kTags [ ] = { { row } , { row } , ... } ;
    if (t[i].text == "kTags" && is_tok(i + 1, "[") && is_tok(i + 2, "]") &&
        is_tok(i + 3, "=") && is_tok(i + 4, "{")) {
      std::size_t j = i + 5;
      while (j < n && t[j].text != "}") {
        if (t[j].text != "{") fail(t[j].line, "kTags: expected '{' row");
        // { CONST , "wire" , "payload" , Dir :: kDir }
        if (j + 9 >= n || t[j + 1].kind != TokKind::kIdent ||
            !is_tok(j + 2, ",") || t[j + 3].kind != TokKind::kString ||
            !is_tok(j + 4, ",") || t[j + 5].kind != TokKind::kString ||
            !is_tok(j + 6, ",") || !is_tok(j + 7, "Dir") ||
            !is_tok(j + 8, "::") || t[j + 9].kind != TokKind::kIdent ||
            !is_tok(j + 10, "}"))
          fail(t[j].line,
               "kTags: malformed row (expected {CONST, \"wire\", "
               "\"payload\", Dir::kX})");
        RegistryTag row;
        row.const_name = t[j + 1].text;
        const auto it = int_consts.find(row.const_name);
        if (it == int_consts.end())
          fail(t[j + 1].line, "kTags: first column '" + row.const_name +
                                  "' is not a declared constexpr int");
        row.tag = it->second;
        auto unquote = [](const std::string& s) {
          return s.size() >= 2 ? s.substr(1, s.size() - 2) : s;
        };
        row.wire_name = unquote(t[j + 3].text);
        row.payload = unquote(t[j + 5].text);
        row.dir = t[j + 9].text;
        reg.tags.push_back(std::move(row));
        j += 11;
        if (is_tok(j, ",")) ++j;
      }
      i = j;
      continue;
    }
  }

  if (reg.tags.empty())
    fail(1, "no kTags table found (is this really mp/protocol.hpp?)");
  const auto sf = int_consts.find("kScratchTagFirst");
  const auto sl = int_consts.find("kScratchTagLast");
  if (sf != int_consts.end() && sl != int_consts.end()) {
    reg.scratch_first = sf->second;
    reg.scratch_last = sl->second;
  }
  return reg;
}

// -- analysis ----------------------------------------------------------------

namespace {

const std::set<std::string> kSendLike = {
    "send", "send_value", "send_bytes", "send_stamped", "send_bytes_stamped"};
const std::set<std::string> kByteSends = {"send_bytes", "send_bytes_stamped"};
const std::set<std::string> kRecvLike = {"recv_any", "try_recv",
                                         "try_recv_ordered", "next"};
const std::set<std::string> kCollectives = {
    "barrier",        "all_gather",     "all_gatherv",
    "all_to_all",     "all_reduce",     "all_reduce_sum",
    "all_reduce_max", "all_reduce_min", "exclusive_scan_sum",
    "bcast",          "broadcast",      "allreduce",
    "alltoall"};

struct Evidence {
  std::string file;
  int line = 0;
};

struct Analyzer {
  const Registry& reg;
  Report report;
  std::map<std::string, Evidence> first_send;  // const_name -> site
  std::map<std::string, Evidence> first_recv;

  explicit Analyzer(const Registry& r) : reg(r) {}

  const LexedFile* cur = nullptr;

  bool allowed(int line, const std::string& rule) const {
    for (int l : {line, line - 1}) {
      const auto it = cur->allows.find(l);
      if (it == cur->allows.end()) continue;
      if (it->second.count(rule) || it->second.count("all")) return true;
    }
    return false;
  }

  void emit(const std::string& rule, int line, std::string msg) {
    if (allowed(line, rule)) {
      ++report.suppressed;
      return;
    }
    report.findings.push_back(Finding{rule, cur->path, line, std::move(msg)});
  }

  /// The registry constant named inside a token range, if any.
  const RegistryTag* tag_const_in(const std::vector<Token>& t, std::size_t b,
                                  std::size_t e) const {
    for (std::size_t k = b; k < e; ++k)
      if (t[k].kind == TokKind::kIdent)
        if (const auto* r = reg.by_const(t[k].text)) return r;
    return nullptr;
  }

  /// Split a call's arguments: `open` indexes the '('. Returns [begin, end)
  /// token ranges of each top-level argument, and sets `close` to the index
  /// of the matching ')'. Nesting is tracked for ()/[]/{} (not <>).
  static std::vector<std::pair<std::size_t, std::size_t>> split_args(
      const std::vector<Token>& t, std::size_t open, std::size_t& close) {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int depth = 0;
    std::size_t arg_begin = open + 1;
    std::size_t k = open;
    for (; k < t.size(); ++k) {
      const std::string& s = t[k].text;
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        --depth;
        if (depth == 0) break;
      } else if (s == "," && depth == 1) {
        args.emplace_back(arg_begin, k);
        arg_begin = k + 1;
      }
    }
    close = k;
    // k == open + 1 is a zero-arg call; k == arg_begin after a comma is a
    // trailing comma -- neither adds an argument.
    if (k < t.size() && k > arg_begin) args.emplace_back(arg_begin, k);
    return args;
  }

  /// Base name of the first top-level template argument starting at the '<'
  /// at index `open`; sets `close` to the matching '>'. "std::uint64_t" ->
  /// "uint64_t", "ShipItem<D>" -> "ShipItem". Empty when not a template
  /// argument list (e.g. a comparison).
  static std::string template_base(const std::vector<Token>& t,
                                   std::size_t open, std::size_t& close) {
    int depth = 0;
    std::string base;
    for (std::size_t k = open; k < t.size(); ++k) {
      const std::string& s = t[k].text;
      if (s == "<") {
        ++depth;
      } else if (s == ">") {
        --depth;
        if (depth == 0) {
          close = k;
          return base;
        }
      } else if (s == "(" || s == ")" || s == ";" || s == "{") {
        break;  // not a template argument list after all
      } else if (depth == 1) {
        if (t[k].kind == TokKind::kIdent) base = t[k].text;
        if (s == ",") break;  // only the first argument matters
      }
    }
    close = open;
    return {};
  }

  /// True when the call at token index `i` (the callee identifier) is a
  /// member-function *definition or declaration*, not a call: the token
  /// before the (possibly `Class::`-qualified) name is itself an identifier
  /// -- a return type.
  static bool looks_like_definition(const std::vector<Token>& t,
                                    std::size_t i) {
    std::size_t j = i;
    while (j >= 2 && t[j - 1].text == "::" &&
           t[j - 2].kind == TokKind::kIdent)
      j -= 2;
    if (j == 0) return false;
    const Token& prev = t[j - 1];
    if (prev.kind != TokKind::kIdent) return false;
    return prev.text != "return" && prev.text != "co_return";
  }

  void analyze_file(const LexedFile& f) {
    cur = &f;
    ++report.files_scanned;
    const auto& t = f.tokens;
    const std::size_t n = t.size();

    // Rank-conditional scope tracking for divergent-collective.
    int brace_depth = 0;
    std::vector<int> rank_scopes;     // brace depths of marked `{` scopes
    bool rank_stmt = false;           // brace-less rank-conditional statement
    bool pending_rank_brace = false;  // next `{` opens a marked scope
    bool last_close_was_rank = false;

    // phase-balance stack: (line, arg text).
    std::vector<std::pair<int, std::string>> phase_stack;

    auto in_rank_cond = [&] { return !rank_scopes.empty() || rank_stmt; };

    for (std::size_t i = 0; i < n; ++i) {
      const Token& tok = t[i];

      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "{") {
          ++brace_depth;
          if (pending_rank_brace) {
            rank_scopes.push_back(brace_depth);
            pending_rank_brace = false;
          }
          last_close_was_rank = false;
        } else if (tok.text == "}") {
          if (!rank_scopes.empty() && rank_scopes.back() == brace_depth) {
            rank_scopes.pop_back();
            last_close_was_rank = true;
          } else {
            last_close_was_rank = false;
          }
          --brace_depth;
        } else if (tok.text == ";") {
          if (rank_stmt) {
            rank_stmt = false;
            last_close_was_rank = true;
          } else {
            last_close_was_rank = false;
          }
        }
        continue;
      }

      if (tok.kind != TokKind::kIdent) {
        last_close_was_rank = false;
        continue;
      }

      // `if (... rank ...)`: mark the branch. An `else` chained to a marked
      // branch is marked too (the other half of the divergence).
      if (tok.text == "if" || (tok.text == "else" && last_close_was_rank)) {
        bool ranky = tok.text == "else";
        std::size_t after = i + 1;
        if (tok.text == "else" && after < n && t[after].text == "if")
          ++after;  // `else if` -- fall through to condition scan
        if (after < n && t[after].text == "(") {
          std::size_t close = after;
          int depth = 0;
          for (std::size_t k = after; k < n; ++k) {
            if (t[k].text == "(") ++depth;
            if (t[k].text == ")" && --depth == 0) {
              close = k;
              break;
            }
          }
          if (tok.text == "if" || t[i + 1].text == "if") {
            ranky = ranky ||
                    [&] {
                      for (std::size_t k = after + 1; k < close; ++k)
                        if (t[k].kind == TokKind::kIdent &&
                            (t[k].text == "rank" || t[k].text == "rank_"))
                          return true;
                      return false;
                    }();
            after = close + 1;
          }
        }
        last_close_was_rank = false;
        if (ranky) {
          if (after < n && t[after].text == "{")
            pending_rank_brace = true;
          else
            rank_stmt = true;
        }
        continue;
      }
      last_close_was_rank = false;

      // Resolve the call shape: IDENT ( ... )  or  IDENT < T > ( ... ).
      std::size_t open = i + 1;
      std::string tmpl_base;
      if (open < n && t[open].text == "<" &&
          (kSendLike.count(tok.text) || kRecvLike.count(tok.text))) {
        std::size_t angle_close = open;
        tmpl_base = template_base(t, open, angle_close);
        if (tmpl_base.empty()) continue;
        open = angle_close + 1;
      }
      if (open >= n || t[open].text != "(") continue;

      if (tok.text == "phase_begin" || tok.text == "phase_end") {
        if (looks_like_definition(t, i)) continue;
        std::size_t close = open;
        const auto args = split_args(t, open, close);
        std::string arg0;
        if (!args.empty())
          for (std::size_t k = args[0].first; k < args[0].second; ++k)
            arg0 += t[k].text;
        if (tok.text == "phase_begin") {
          phase_stack.emplace_back(tok.line, arg0);
        } else if (phase_stack.empty()) {
          emit("phase-balance", tok.line,
               "phase_end(" + arg0 + ") without a matching phase_begin");
        } else {
          const auto top = phase_stack.back();
          phase_stack.pop_back();
          if (top.second != arg0)
            emit("phase-balance", tok.line,
                 "phase_end(" + arg0 + ") crosses phase_begin(" + top.second +
                     ") opened at line " + std::to_string(top.first));
        }
        continue;
      }

      if (kCollectives.count(tok.text)) {
        // Machine-model *cost* calls (s.machine.barrier(p)) are not
        // communication; look a few tokens back for the model object.
        bool is_cost_model = false;
        for (std::size_t back = 1; back <= 4 && back <= i; ++back)
          if (t[i - back].text == "machine") is_cost_model = true;
        if (!is_cost_model && in_rank_cond())
          emit("divergent-collective", tok.line,
               "collective " + tok.text +
                   "() inside a rank-conditional branch: every rank must "
                   "reach every collective, or no rank may");
        continue;
      }

      const bool is_send = kSendLike.count(tok.text) > 0;
      const bool is_recv = kRecvLike.count(tok.text) > 0;
      if (!is_send && !is_recv) continue;

      std::size_t close = open;
      const auto args = split_args(t, open, close);
      if (args.size() < 2) continue;  // no tag argument present
      const auto [tb, te] = args[1];

      // raw-tag: the tag argument is a bare integer literal.
      if (te == tb + 1 && t[tb].kind == TokKind::kNumber) {
        emit("raw-tag", t[tb].line,
             "raw integer tag " + t[tb].text + " at " + tok.text +
                 "() call site; use a registry constant from "
                 "mp/protocol.hpp");
        continue;
      }

      const RegistryTag* rt = tag_const_in(t, tb, te);
      if (!rt) continue;

      if (is_send) {
        first_send.emplace(rt->const_name, Evidence{cur->path, tok.line});
        if (!tmpl_base.empty() && rt->payload != "bytes" &&
            tmpl_base != rt->payload)
          emit("payload-mismatch", tok.line,
               "tag " + rt->const_name + " is declared with payload '" +
                   rt->payload + "' but this " + tok.text + "<" + tmpl_base +
                   ">() site ships '" + tmpl_base + "'");
        if (kByteSends.count(tok.text) && rt->payload != "bytes")
          emit("payload-mismatch", tok.line,
               "tag " + rt->const_name + " is declared with payload '" +
                   rt->payload + "' but " + tok.text +
                   "() ships an untyped byte stream (declare the payload "
                   "as \"bytes\" or use a typed send)");
      } else {
        first_recv.emplace(rt->const_name, Evidence{cur->path, tok.line});
      }
    }

    for (const auto& [line, arg] : phase_stack)
      emit("phase-balance", line,
           "phase_begin(" + arg + ") without a matching phase_end in this "
           "file");

    // Recv evidence also comes from dispatching on a received message's
    // tag: `m->tag == kTagX` / `m.tag != kTagX` / `case kTagX:`.
    for (std::size_t i = 0; i < n; ++i) {
      if (t[i].kind == TokKind::kPunct &&
          (t[i].text == "==" || t[i].text == "!=")) {
        const std::size_t lb = (i >= 5) ? i - 5 : 0;
        const std::size_t re = std::min(n, i + 6);
        auto has_tag_member = [&](std::size_t b, std::size_t e) {
          for (std::size_t k = b; k < e; ++k)
            if (t[k].text == "tag" && k > 0 &&
                (t[k - 1].text == "." || t[k - 1].text == "->"))
              return true;
          return false;
        };
        const RegistryTag* rt = tag_const_in(t, lb, re);
        if (rt && (has_tag_member(lb, i) || has_tag_member(i + 1, re)))
          first_recv.emplace(rt->const_name, Evidence{cur->path, t[i].line});
      } else if (t[i].text == "case" && t[i].kind == TokKind::kIdent) {
        const RegistryTag* rt = tag_const_in(t, i + 1, std::min(n, i + 5));
        if (rt)
          first_recv.emplace(rt->const_name, Evidence{cur->path, t[i].line});
      }
    }
    cur = nullptr;
  }

  /// Cross-file pass: every registered tag with one-sided evidence.
  void finish(const std::vector<LexedFile>& files) {
    for (const auto& rt : reg.tags) {
      const auto s = first_send.find(rt.const_name);
      const auto r = first_recv.find(rt.const_name);
      if ((s == first_send.end()) == (r == first_recv.end())) continue;
      const Evidence& site =
          (s != first_send.end()) ? s->second : r->second;
      const char* what = (s != first_send.end())
                             ? "sent here but never received"
                             : "received here but never sent";
      // Re-bind `cur` to the anchoring file so suppressions apply.
      for (const auto& f : files)
        if (f.path == site.file) cur = &f;
      if (!cur) continue;
      emit("unmatched-tag", site.line,
           "tag " + rt.const_name + " (" + std::to_string(rt.tag) + ", '" +
               rt.wire_name + "') is " + what +
               " in the scanned sources");
      cur = nullptr;
    }
  }
};

}  // namespace

Report analyze(const Registry& reg, const std::vector<LexedFile>& files) {
  Analyzer a(reg);
  for (const auto& f : files) a.analyze_file(f);
  a.finish(files);
  std::sort(a.report.findings.begin(), a.report.findings.end(),
            [](const Finding& x, const Finding& y) {
              return std::tie(x.file, x.line, x.rule) <
                     std::tie(y.file, y.line, y.rule);
            });
  return a.report;
}

// -- output ------------------------------------------------------------------

std::string format_human(const Report& r) {
  std::ostringstream os;
  for (const auto& f : r.findings)
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  os << "bh_protocheck: " << r.findings.size() << " finding"
     << (r.findings.size() == 1 ? "" : "s") << " (" << r.suppressed
     << " suppressed) across " << r.files_scanned << " file"
     << (r.files_scanned == 1 ? "" : "s") << "\n";
  return os.str();
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string format_json(const Report& r) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"bh.protocheck.v1\",\n  \"files_scanned\": "
     << r.files_scanned << ",\n  \"suppressed\": " << r.suppressed
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const auto& f = r.findings[i];
    os << (i ? "," : "") << "\n    {\"rule\": \"" << json_escape(f.rule)
       << "\", \"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  os << (r.findings.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const std::set<std::string> exts = {".cpp", ".cc", ".cxx",
                                      ".hpp", ".h",  ".hh"};
  std::vector<std::string> out;
  for (const auto& p : paths) {
    if (fs::is_regular_file(p)) {
      out.push_back(p);
      continue;
    }
    if (!fs::is_directory(p))
      throw std::runtime_error("bh_protocheck: no such file or directory: " +
                               p);
    for (const auto& e : fs::recursive_directory_iterator(p))
      if (e.is_regular_file() && exts.count(e.path().extension().string()))
        out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bh::protocheck
