// protocheck.hpp -- static SPMD protocol checker for the bh message layer.
//
// A dependency-free lexical analyzer (no libclang; the toolchain is gcc-only)
// that parses the central protocol registry (src/mp/protocol.hpp) and scans
// C++ sources for violations of the messaging discipline:
//
//   raw-tag              an integer literal in the tag position of a
//                        send*/recv* call site (tags must be registry
//                        constants)
//   unmatched-tag        a registered tag with send evidence but no recv
//                        evidence across the scanned set, or vice versa
//                        (tags with no evidence at all are not findings --
//                        Dir::kReserved rows stay quiet)
//   payload-mismatch     a typed send site (explicit template argument)
//                        whose element type disagrees with the registry's
//                        payload column for that tag ("bytes" rows exempt)
//   divergent-collective a collective call (barrier/all_reduce/all_gather/
//                        all_to_all/exclusive_scan_sum/...) lexically inside
//                        a rank-conditional branch -- the classic SPMD
//                        deadlock (machine-model cost calls excluded)
//   phase-balance        phase_begin without a matching phase_end in the
//                        same file (or a crossed begin/end pair, or a bare
//                        phase_end)
//
// Suppression: `// bh-protocheck: allow(<rule>)` on the finding's line or
// the line directly above silences that rule there; allow(all) silences
// every rule. Suppressions are lexical, like the checker.
//
// The analysis is intentionally lexical, not semantic: it understands
// comments, strings, numbers, identifiers and nesting, but not types or
// control flow. The registry's layout contract (flat literal table, one
// entry per line, constants in the first column) is what makes that enough.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace bh::protocheck {

// -- lexer -------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> rule names allowed there via `// bh-protocheck: allow(...)`.
  std::map<int, std::set<std::string>> allows;
};

/// Tokenize one translation unit. Comments and whitespace are dropped
/// (suppression comments are recorded in `allows` first); string and char
/// literals become single tokens; pp-directives are skipped line-wise.
LexedFile lex(std::string path, const std::string& source);

// -- registry ----------------------------------------------------------------

struct RegistryTag {
  int tag = 0;
  std::string const_name;  ///< e.g. "kTagFetch"
  std::string wire_name;   ///< e.g. "dataship.fetch"
  std::string payload;     ///< element-type base name, or "bytes"
  std::string dir;         ///< "kRequest" / "kReply" / "kOneWay" / "kReserved"
};

struct Registry {
  std::vector<RegistryTag> tags;
  std::vector<std::string> phases;  ///< kPhase* constant names
  int scratch_first = 0;
  int scratch_last = -1;  ///< empty range when last < first

  const RegistryTag* by_const(const std::string& name) const;
};

/// Parse the registry header (mp/protocol.hpp). Throws std::runtime_error
/// with a diagnostic when the layout contract is broken (no kTags table, a
/// malformed row, a first column that is not a declared constant).
Registry parse_registry(const std::string& path, const std::string& source);

// -- analysis ----------------------------------------------------------------

struct Finding {
  std::string rule;  ///< one of the five rule names above
  std::string file;
  int line = 0;
  std::string message;
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings silenced by allow comments
};

/// Run all rules over the lexed files against the registry. Findings are
/// ordered by (file, line, rule). Per-site rules anchor at the call site;
/// unmatched-tag anchors at the first piece of one-sided evidence.
Report analyze(const Registry& reg, const std::vector<LexedFile>& files);

// -- output ------------------------------------------------------------------

/// Human-readable report ("file:line: [rule] message" lines + a summary).
std::string format_human(const Report& r);

/// Machine-readable findings, schema "bh.protocheck.v1".
std::string format_json(const Report& r);

/// Recursively collect C++ sources (.cpp/.cc/.cxx/.hpp/.h/.hh) under each
/// path (a path naming a regular file is taken as-is). Sorted, deduplicated.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

}  // namespace bh::protocheck
