// bh_protocheck -- CLI for the static SPMD protocol checker.
//
//   bh_protocheck --registry src/mp/protocol.hpp [--json out.json] PATH...
//
// Scans every C++ source under the given paths against the protocol
// registry and prints a human report; --json additionally writes the
// findings as machine-readable JSON (schema bh.protocheck.v1) for CI
// artifacts. Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "protocheck/protocheck.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("bh_protocheck: cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int usage(std::ostream& os) {
  os << "usage: bh_protocheck --registry <protocol.hpp> [--json <out.json>] "
        "<path>...\n"
        "  Statically checks send/recv/collective/phase call sites against\n"
        "  the central message-protocol registry. Paths may be files or\n"
        "  directories (scanned recursively for C++ sources).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string registry_path;
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--registry" && i + 1 < argc) {
      registry_path = argv[++i];
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "bh_protocheck: unknown option " << a << "\n";
      return usage(std::cerr);
    } else {
      paths.push_back(a);
    }
  }
  if (registry_path.empty() || paths.empty()) return usage(std::cerr);

  try {
    const auto reg = bh::protocheck::parse_registry(registry_path,
                                                    slurp(registry_path));
    std::vector<bh::protocheck::LexedFile> files;
    for (const auto& p : bh::protocheck::collect_sources(paths))
      files.push_back(bh::protocheck::lex(p, slurp(p)));
    const auto report = bh::protocheck::analyze(reg, files);

    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out)
        throw std::runtime_error("bh_protocheck: cannot write " + json_path);
      out << bh::protocheck::format_json(report);
    }
    std::cout << bh::protocheck::format_human(report);
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
