// table1_spsa_spda -- regenerates Table 1: "Runtimes (in seconds) of the
// SPSA and SPDA schemes for various problems using monopoles" on the
// modeled nCUBE2, p in {16, 64, 256}.
//
// Expected shape (paper): runtimes fall consistently with p for both
// schemes (x3.6 from 64 to 256 for the largest problem), and SPDA beats
// SPSA everywhere because its Morton reassignment removes the residual
// load imbalance of the static scatter.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv, "Table 1: SPSA vs SPDA runtimes (monopole, modeled nCUBE2).",
      {{"clusters", "M", "clusters per axis for the static grid [16]"}});
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table1", scale, seed);
  bench::banner("Table 1: SPSA vs SPDA runtimes, monopole, nCUBE2", scale);

  const std::vector<std::string> instances = {"g_160535", "g_326214",
                                              "g_657499", "g_1192768"};
  const std::vector<int> procs = {16, 64, 256};

  harness::Table table({"problem", "F", "scheme", "p=16", "p=64", "p=256"});
  for (const auto& name : instances) {
    const auto global = model::make_instance(name, scale, seed);
    double alpha = 0.0;
    for (const auto& s : model::paper_instances())
      if (s.name == name) alpha = s.alpha;

    std::uint64_t F = 0;
    for (auto scheme : {par::Scheme::kSPSA, par::Scheme::kSPDA}) {
      std::vector<std::string> row{
          name, "",
          scheme == par::Scheme::kSPSA ? "SPSA" : "SPDA"};
      for (int p : procs) {
        bench::RunConfig cfg;
        bench::apply_traversal_flags(cli, cfg);
        cfg.scheme = scheme;
        cfg.nprocs = p;
        cfg.clusters_per_axis = cli.get("clusters", 16);
        cfg.alpha = alpha;
        cfg.kind = tree::FieldKind::kForce;
        cfg.seed = seed;
        cfg.tracer = cap.tracer();
        const auto out = bench::run_parallel_iteration(global, cfg);
        cap.note_report(out.report);
        emit.record(bench::make_sample(
            name + " " + bench::scheme_name(scheme) + " p=" + std::to_string(p),
            name, global.size(), cfg, out));
        row.push_back(harness::Table::num(out.iter_time, 2));
        F = out.interactions;
      }
      table.row(std::move(row));
    }
    // Annotate the number of force computations (the paper's F column).
    table.row({name, harness::Table::sci(double(F), 1), "(F)", "", "", ""});
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: SPDA <= SPSA per cell; runtime decreases "
      "with p.\n");
  cap.write();
  emit.write();
  return 0;
}
