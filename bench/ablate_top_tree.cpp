// ablate_top_tree -- Section 3.1.1 vs 3.1.2: replicated (every processor
// redundantly recomputes the top of the tree after the branch broadcast)
// vs non-replicated construction (designated processors compute parents
// once; the result is broadcast).
//
// Expected shape: the difference is confined to the tree-merging phase and
// is small either way ("some redundant computation but ... relatively small
// overhead") -- which is why the paper defaults to the simpler replicated
// scheme for dynamic partitions.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Ablation (Sec 3.1): replicated vs non-replicated top-tree merge.");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli, 0.1);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "ablate_top_tree", scale, seed);
  bench::banner(
      "Ablation (Sec 3.1): replicated vs non-replicated top tree, nCUBE2",
      scale);

  const auto global = model::make_instance("g_326214", scale, seed);
  harness::Table table({"p", "clusters", "top tree", "merge time",
                        "iteration time"});
  for (int p : {16, 64}) {
    for (unsigned m : {8u, 16u}) {
      for (bool replicated : {true, false}) {
        bench::RunConfig cfg;
        bench::apply_traversal_flags(cli, cfg);
        cfg.scheme = par::Scheme::kSPSA;  // static: both variants legal
        cfg.nprocs = p;
        cfg.clusters_per_axis = m;
        cfg.alpha = 1.0;
        cfg.kind = tree::FieldKind::kForce;
        cfg.replicate_top = replicated;
        cfg.seed = seed;
        cfg.tracer = cap.tracer();
        const auto out = bench::run_parallel_iteration(global, cfg);
        cap.note_report(out.report);
        emit.record(bench::make_sample(
            std::string("g_326214 p=") + std::to_string(p) + " r=" +
                std::to_string(m) + "^3 " +
                (replicated ? "replicated" : "non-replicated"),
            "g_326214", global.size(), cfg, out));
        table.row({std::to_string(p), std::to_string(m) + "^3",
                   replicated ? "replicated" : "non-replicated",
                   harness::Table::num(out.t_tree_merge, 4),
                   harness::Table::num(out.iter_time, 2)});
      }
    }
  }
  table.print();
  std::printf(
      "\nShape check: merge-phase differences stay far below the force "
      "phase either way.\n");
  cap.write();
  emit.write();
  return 0;
}
