// table2_clusters -- regenerates Table 2: "Runtimes for different numbers
// of clusters for the two parallel formulations".
//
// The paper's grids are quoted as 16x16 .. 64x64 subdomains of a 2-D
// decomposition; our decomposition is 3-D (m^3 octree-aligned clusters), so
// the sweep is over m in {4, 8, 16} (r = 64, 512, 4096). Expected shape:
// SPDA improves steadily with more clusters; SPSA improves and then
// degrades once per-cluster communication overheads dominate (the paper
// sees this at p=16 between 32^2 and 64^2).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 2: runtime vs number of clusters (SPSA/SPDA, modeled nCUBE2).");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table2", scale, seed);
  bench::banner("Table 2: runtime vs number of clusters, nCUBE2", scale);

  struct Case {
    const char* name;
    int p;
  };
  const std::vector<Case> cases = {
      {"g_28131", 16}, {"g_160535", 16}, {"g_160535", 64},
      {"g_326214", 64}, {"g_326214", 256}, {"g_657499", 256}};
  const std::vector<unsigned> grids = {4, 8, 16};

  harness::Table table({"p", "problem", "scheme", "r=4^3", "r=8^3",
                        "r=16^3"});
  for (const auto& cs : cases) {
    const auto global = model::make_instance(cs.name, scale, seed);
    double alpha = 0.0;
    for (const auto& s : model::paper_instances())
      if (s.name == cs.name) alpha = s.alpha;
    for (auto scheme : {par::Scheme::kSPSA, par::Scheme::kSPDA}) {
      std::vector<std::string> row{
          std::to_string(cs.p), cs.name,
          scheme == par::Scheme::kSPSA ? "SPSA" : "SPDA"};
      for (unsigned m : grids) {
        bench::RunConfig cfg;
        bench::apply_traversal_flags(cli, cfg);
        cfg.scheme = scheme;
        cfg.nprocs = cs.p;
        cfg.clusters_per_axis = m;
        cfg.alpha = alpha;
        cfg.kind = tree::FieldKind::kForce;
        cfg.seed = seed;
        cfg.tracer = cap.tracer();
        const auto out = bench::run_parallel_iteration(global, cfg);
        cap.note_report(out.report);
        emit.record(bench::make_sample(
            std::string(cs.name) + " " + bench::scheme_name(scheme) +
                " p=" + std::to_string(cs.p) + " r=" + std::to_string(m) + "^3",
            cs.name, global.size(), cfg, out));
        row.push_back(harness::Table::num(out.iter_time, 2));
      }
      table.row(std::move(row));
    }
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: SPDA monotonically improves with r; SPSA "
      "gains flatten or reverse at large r.\n");
  cap.write();
  emit.write();
  return 0;
}
