// table5_dpda -- regenerates Table 5: "Runtimes, efficiency, and
// computation rates of the CM5 for different problems for p = 64 and 256"
// (DPDA load balancing, gravitational potentials, degree-4 multipoles,
// alpha = 0.67).
//
// Expected shape (paper): efficiencies of 0.76-0.89 at p=64 falling to
// 0.47-0.74 at p=256, improving with problem size; >3.3x relative speed-up
// from 64 to 256 processors for the larger instances.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 5: DPDA runtimes and efficiency (degree-4 multipoles, CM5).");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table5", scale, seed);
  bench::banner(
      "Table 5: DPDA runtimes and efficiency, degree-4 multipoles, CM5",
      scale);

  const std::vector<std::string> instances = {"p_63192", "g_160535",
                                              "g_326214", "p_353992"};
  harness::Table table({"problem", "p=64 time", "p=64 eff", "p=256 time",
                        "p=256 eff", "Mflop/s (p=256)"});
  harness::Table ds_table({"problem", "cache", "fetches", "nodes", "coalesced",
                           "stall [s]", "force time"});
  for (const auto& name : instances) {
    const auto global = model::make_instance(name, scale, seed);
    std::vector<std::string> row{name};
    double rate = 0.0;
    for (int p : {64, 256}) {
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      cfg.scheme = par::Scheme::kDPDA;
      cfg.nprocs = p;
      cfg.alpha = 0.67;
      cfg.degree = 4;
      cfg.kind = tree::FieldKind::kPotential;
      cfg.machine = mp::MachineModel::cm5();
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      const auto out = bench::run_parallel_iteration(global, cfg);
      cap.note_report(out.report);
      emit.record(bench::make_sample(name + " DPDA p=" + std::to_string(p),
                                     name, global.size(), cfg, out));
      row.push_back(harness::Table::num(out.iter_time, 2));
      row.push_back(harness::Table::num(out.efficiency(cfg.machine, p), 2));
      rate = double(out.flops) / out.iter_time / 1e6;
    }
    row.push_back(harness::Table::num(rate, 0));
    table.row(std::move(row));

    // The data-shipping comparator on the same instance at p=64: blocking
    // one-node RPC (sync oracle) vs the async pack-and-coalesce cache
    // (DESIGN.md section 14).
    for (const auto mode : {par::NodeCacheMode::kSync,
                            par::NodeCacheMode::kAsync}) {
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      bench::apply_cache_flags(cli, cfg);
      cfg.scheme = par::Scheme::kDPDA;
      cfg.nprocs = 64;
      cfg.alpha = 0.67;
      cfg.degree = 4;
      cfg.kind = tree::FieldKind::kPotential;
      cfg.machine = mp::MachineModel::cm5();
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      cfg.node_cache = mode;
      const bool async = mode == par::NodeCacheMode::kAsync;
      const auto out = bench::run_dataship_iteration(global, cfg);
      cap.note_report(out.report);
      emit.record(bench::make_sample(
          name + (async ? " DS-async p=64" : " DS-sync p=64"), name,
          global.size(), cfg, out));
      ds_table.row({name, async ? "async" : "sync",
                    std::to_string(out.fetch_requests),
                    std::to_string(out.nodes_fetched),
                    std::to_string(out.cache_coalesced),
                    harness::Table::num(out.stall_vtime, 4),
                    harness::Table::num(out.iter_time, 3)});
    }
  }
  table.print();
  std::printf("\nData-shipping comparator, p=64 (sync RPC vs async cache):\n");
  ds_table.print();
  std::printf(
      "\nShape checks vs paper: efficiency grows with problem size, drops "
      "with p; relative 64->256 speed-up > 3 for the big instances.\n");
  cap.write();
  emit.write();
  return 0;
}
