// ablate_bin_size -- Section 3.2's batching design: "we typically collect
// 100 particles before communicating them ... selected so that the
// interprocessor communication latency ... can be amortized over several
// particles", with at most one outstanding bin per source-destination pair.
//
// Sweeps the bin size and reports modeled force-phase time, bins sent and
// flow-control stalls. Expected shape: tiny bins pay start-up latency per
// few particles (slow); huge bins stall on the one-outstanding-bin rule and
// delay remote work; ~100 sits in the flat basin.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv, "Ablation (Sec 3.2): function-shipping bin size sweep.",
      {{"p", "N", "number of processors [16]"}});
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli, 0.1);
  const auto cli_seed = bench::bench_seed(cli);
  const auto seed = cli_seed ? cli_seed : 777;
  bench::Emit emit(cli, "ablate_bin_size", scale, seed);
  bench::banner("Ablation (Sec 3.2): bin size sweep, nCUBE2", scale);

  model::Rng rng(seed);
  const auto global = model::uniform_box<3>(
      static_cast<std::size_t>(80000 * scale), rng, bench::kDomain);

  harness::Table table({"bin size", "force time", "bins sent", "stalls",
                        "items shipped"});
  for (int bin : {5, 20, 100, 400, 2000}) {
    bench::RunConfig cfg;
    bench::apply_traversal_flags(cli, cfg);
    cfg.scheme = par::Scheme::kSPDA;
    cfg.nprocs = cli.get("p", 16);
    cfg.clusters_per_axis = 8;
    cfg.alpha = 0.67;
    cfg.kind = tree::FieldKind::kForce;
    cfg.bin_size = bin;
    cfg.seed = seed;
    cfg.tracer = cap.tracer();
    const auto out = bench::run_parallel_iteration(global, cfg);
    cap.note_report(out.report);
    emit.record(bench::make_sample("uniform bin=" + std::to_string(bin),
                                   "uniform", global.size(), cfg, out));
    table.row({std::to_string(bin), harness::Table::num(out.t_force, 3),
               std::to_string(out.bins_sent), std::to_string(out.stalls),
               std::to_string(out.items_shipped)});
  }
  table.print();
  std::printf(
      "\nShape check: small bins send many messages (latency-bound); the "
      "paper's ~100 sits in the flat basin.\n");
  cap.write();
  emit.write();
  return 0;
}
