// ablate_branch_lookup -- Section 4.2.3's branch addressing claim: "We
// implement two schemes for locating branch nodes ... a hash table ... a
// sorted table of keys ... we did not see a significant difference in the
// performance of these two schemes", because each lookup amortizes over an
// entire subtree interaction.
//
// Microbenchmarks both directory kinds (wall time per lookup and probe
// counts) and then shows the end-to-end force-phase time with each, which
// is where the difference disappears.
#include <chrono>
#include <random>

#include "common.hpp"
#include "parallel/branch.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Ablation (Sec 4.2.3): branch directory, hash vs sorted table.",
      {{"p", "N", "number of processors [16]"}});
  obs::Capture cap(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "ablate_branch_lookup", bench::bench_scale(cli, 0.1),
                   seed);
  bench::banner("Ablation (Sec 4.2.3): branch directory, hash vs sorted",
                1.0);

  // --- microbenchmark: raw lookup cost ------------------------------------
  std::mt19937_64 rng(99);
  std::vector<geom::NodeKey<3>> keys;
  for (int i = 0; i < 4096; ++i) {
    geom::NodeKey<3> k{};
    for (int d = 0; d < 4; ++d) k = k.child(rng() % 8);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  harness::Table micro({"directory", "lookups", "probes/lookup",
                        "ns/lookup"});
  for (auto kind : {par::LookupKind::kHash, par::LookupKind::kSortedTable}) {
    par::BranchDirectory<3> dir(kind);
    for (std::size_t i = 0; i < keys.size(); ++i)
      dir.insert(keys[i], static_cast<std::int32_t>(i));
    dir.seal();
    const int rounds = 2000;
    std::uint64_t probes = 0;
    std::int64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r)
      for (const auto& k : keys) sink += dir.find(k, &probes);
    asm volatile("" : : "r"(sink) : "memory");
    const auto dt = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    const double n = double(rounds) * keys.size();
    micro.row({kind == par::LookupKind::kHash ? "hash" : "sorted",
               harness::Table::num(n, 0),
               harness::Table::num(double(probes) / n, 2),
               harness::Table::num(dt / n, 1)});
  }
  micro.print();

  // --- end-to-end: force phase with each directory -------------------------
  const double scale = bench::bench_scale(cli, 0.1);
  const auto global = model::make_instance("g_160535", scale, seed);
  harness::Table e2e({"directory", "iteration time"});
  for (auto kind : {par::LookupKind::kHash, par::LookupKind::kSortedTable}) {
    bench::RunConfig cfg;
    bench::apply_traversal_flags(cli, cfg);
    cfg.scheme = par::Scheme::kSPDA;
    cfg.nprocs = cli.get("p", 16);
    cfg.clusters_per_axis = 8;
    cfg.alpha = 0.67;
    cfg.kind = tree::FieldKind::kForce;
    cfg.branch_lookup = kind;
    cfg.seed = seed;
    cfg.tracer = cap.tracer();
    const auto out = bench::run_parallel_iteration(global, cfg);
    cap.note_report(out.report);
    emit.record(bench::make_sample(
        std::string("g_160535 lookup=") +
            (kind == par::LookupKind::kHash ? "hash" : "sorted"),
        "g_160535", global.size(), cfg, out));
    e2e.row({kind == par::LookupKind::kHash ? "hash" : "sorted",
             harness::Table::num(out.iter_time, 3)});
  }
  std::printf("\n");
  e2e.print();
  std::printf(
      "\nShape check (paper): per-lookup costs differ, end-to-end times do "
      "not -- each lookup is amortized over a whole-subtree interaction.\n");
  cap.write();
  emit.write();
  return 0;
}
