// fig8_plummer -- regenerates Figure 8: "Sample plummer distribution of
// 5000 particles". Emits the particle positions as fig8_plummer.csv
// (x,y,z) for plotting and prints the radial mass profile against the
// analytic Plummer law M(<r)/M = r^3 / (r^2 + a^2)^{3/2} as a built-in
// check that the generated sample is the distribution the paper shows.
//
// Also runs one load-balanced SPDA iteration over the sample (--procs
// ranks) so a single small binary exercises every phase of the parallel
// formulation -- which makes it the canonical demo for --trace/--metrics:
//
//   fig8_plummer --procs 16 --trace out.json --metrics metrics.json
//
// yields a Chrome-trace timeline with one track per rank covering local
// tree construction, tree merging, the all-to-all broadcast, force
// computation and load balancing, plus a metrics file with the full
// rank x rank communication matrix and per-phase imbalance statistics.
#include <cmath>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(
      argc, argv,
      "Fig 8: sample Plummer distribution, plus one traced SPDA iteration "
      "over it.",
      {{"n", "N", "number of particles to sample [5000]"},
       {"full", "", "paper-scale instance (n = 1,200,000) for the smoke job"},
       {"seed", "S", "random seed [8080]"},
       {"procs", "P", "ranks for the parallel iteration [16]"},
       {"traversal", "MODE", "force traversal: blocked (default) or walker"},
       {"leaf-size", "N",
        "leaf bucket / blocked block-width cap (default 8)"},
       {"node-cache", "MODE",
        "data-ship remote-node cache: async (default) or sync"},
       {"pack-depth", "N", "subtree-pack depth below a missed node (default 3)"},
       {"prefetch-depth", "N",
        "top-tree prefetch depth per remote owner (default 2, 0 disables)"},
       {"bench-json", "[PATH]",
        "write the bh.bench.v1 registry (default BENCH_fig8.json)"}});
  obs::Capture cap(cli);
  const auto n = static_cast<std::size_t>(
      cli.get("n", cli.get("full", false) ? 1200000 : 5000));
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", 8080L));
  bench::Emit emit(cli, "fig8", 1.0, seed);
  bench::banner("Fig 8: sample Plummer distribution", 1.0);

  model::Rng rng(seed);
  const auto ps = model::plummer<3>(n, rng, 1.0);

  harness::Table csv({"x", "y", "z"});
  for (const auto& p : ps.pos)
    csv.row({harness::Table::num(p[0], 5), harness::Table::num(p[1], 5),
             harness::Table::num(p[2], 5)});
  csv.write_csv("fig8_plummer.csv");

  harness::Table profile(
      {"r", "measured M(<r)", "analytic M(<r)", "rel err"});
  std::vector<double> radii(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    radii[i] = geom::norm(ps.pos[i]);
  std::sort(radii.begin(), radii.end());
  for (double r : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto inside = static_cast<double>(
        std::lower_bound(radii.begin(), radii.end(), r) - radii.begin());
    const double measured = inside / double(ps.size());
    const double analytic =
        r * r * r / std::pow(r * r + 1.0, 1.5);
    profile.row({harness::Table::num(r, 2),
                 harness::Table::num(measured, 4),
                 harness::Table::num(analytic, 4),
                 harness::Table::num(
                     std::abs(measured - analytic) /
                         std::max(analytic, 1e-12), 3)});
  }
  profile.print();
  std::printf("\n%zu particle positions written to fig8_plummer.csv.\n",
              ps.size());

  // ---- one traced parallel iteration over the sample ----------------------
  bench::RunConfig cfg;
  cfg.scheme = par::Scheme::kSPDA;
  cfg.nprocs = cli.get("procs", 16);
  cfg.clusters_per_axis = 8;
  cfg.alpha = 0.67;
  cfg.kind = tree::FieldKind::kForce;
  cfg.seed = seed;
  bench::apply_traversal_flags(cli, cfg);
  cfg.tracer = cap.tracer();
  const auto out = bench::run_parallel_iteration(ps, cfg);
  cap.note_report(out.report);
  emit.record(bench::make_sample(
      "plummer SPDA p=" + std::to_string(cfg.nprocs), "plummer", ps.size(),
      cfg, out));

  std::printf("\nOne SPDA iteration on %d ranks (modeled nCUBE2 time):\n",
              cfg.nprocs);
  harness::Table phases({"phase", "max time over ranks", "max/mean"});
  struct Row {
    const char* name;
    double t;
  };
  for (const Row& r : {Row{par::kPhaseLocalBuild, out.t_local_build},
                       Row{par::kPhaseTreeMerge, out.t_tree_merge},
                       Row{par::kPhaseBroadcast, out.t_broadcast},
                       Row{par::kPhaseForce, out.t_force},
                       Row{par::kPhaseLoadBalance, out.t_load_balance}})
    phases.row({r.name, harness::Table::num(r.t, 4),
                harness::Table::num(
                    out.report.phase_imbalance(r.name).max_over_mean(), 3)});
  phases.row({"total", harness::Table::num(out.iter_time, 4),
              harness::Table::num(
                  out.report.imbalance().max_over_mean(), 3)});
  phases.print();

  // ---- the data-shipping comparator over the same sample -------------------
  // DPDA decomposition, then one data-shipping force phase per cache mode:
  // the blocking one-node RPC (sync oracle) vs the async pack-and-coalesce
  // cache (DESIGN.md section 14). Fields agree bit-for-bit; the fetch and
  // stall columns are the point of the comparison.
  std::printf("\nData-shipping force phase on %d ranks (DPDA):\n",
              cfg.nprocs);
  harness::Table ds({"cache", "fetches", "nodes", "coalesced", "prefetched",
                     "stall [s]", "force time"});
  for (const auto mode : {par::NodeCacheMode::kSync,
                          par::NodeCacheMode::kAsync}) {
    bench::RunConfig dcfg;
    dcfg.scheme = par::Scheme::kDPDA;
    dcfg.nprocs = cfg.nprocs;
    dcfg.clusters_per_axis = 8;
    dcfg.alpha = 0.67;
    dcfg.kind = tree::FieldKind::kForce;
    dcfg.seed = seed;
    bench::apply_traversal_flags(cli, dcfg);
    bench::apply_cache_flags(cli, dcfg);
    dcfg.tracer = cap.tracer();
    dcfg.node_cache = mode;
    const bool async = mode == par::NodeCacheMode::kAsync;
    const auto dout = bench::run_dataship_iteration(ps, dcfg);
    cap.note_report(dout.report);
    emit.record(bench::make_sample(
        std::string("plummer DS-") + (async ? "async" : "sync") +
            " p=" + std::to_string(dcfg.nprocs),
        "plummer", ps.size(), dcfg, dout));
    ds.row({async ? "async" : "sync", std::to_string(dout.fetch_requests),
            std::to_string(dout.nodes_fetched),
            std::to_string(dout.cache_coalesced),
            std::to_string(dout.cache_prefetched),
            harness::Table::num(dout.stall_vtime, 4),
            harness::Table::num(dout.iter_time, 4)});
  }
  ds.print();
  cap.write();
  emit.write();
  return 0;
}
