// fig8_plummer -- regenerates Figure 8: "Sample plummer distribution of
// 5000 particles". Emits the particle positions as fig8_plummer.csv
// (x,y,z) for plotting and prints the radial mass profile against the
// analytic Plummer law M(<r)/M = r^3 / (r^2 + a^2)^{3/2} as a built-in
// check that the generated sample is the distribution the paper shows.
#include <cmath>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  harness::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get("n", 5000));
  bench::banner("Fig 8: sample Plummer distribution", 1.0);

  model::Rng rng(cli.get("seed", 8080L));
  const auto ps = model::plummer<3>(n, rng, 1.0);

  harness::Table csv({"x", "y", "z"});
  for (const auto& p : ps.pos)
    csv.row({harness::Table::num(p[0], 5), harness::Table::num(p[1], 5),
             harness::Table::num(p[2], 5)});
  csv.write_csv("fig8_plummer.csv");

  harness::Table profile(
      {"r", "measured M(<r)", "analytic M(<r)", "rel err"});
  std::vector<double> radii(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    radii[i] = geom::norm(ps.pos[i]);
  std::sort(radii.begin(), radii.end());
  for (double r : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto inside = static_cast<double>(
        std::lower_bound(radii.begin(), radii.end(), r) - radii.begin());
    const double measured = inside / double(ps.size());
    const double analytic =
        r * r * r / std::pow(r * r + 1.0, 1.5);
    profile.row({harness::Table::num(r, 2),
                 harness::Table::num(measured, 4),
                 harness::Table::num(analytic, 4),
                 harness::Table::num(
                     std::abs(measured - analytic) /
                         std::max(analytic, 1e-12), 3)});
  }
  profile.print();
  std::printf("\n%zu particle positions written to fig8_plummer.csv.\n",
              ps.size());
  return 0;
}
