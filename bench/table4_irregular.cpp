// table4_irregular -- regenerates Table 4: "Speed-up results for four
// problems with varying degrees of irregularities" (s_1g_a/b, s_10g_a/b,
// 25,130 particles each, alpha = 0.67, SPDA with two cluster-grid sizes).
//
// Expected shape (paper): the tight single Gaussian (s_1g_a) saturates at
// small p under the coarse grid and is pushed back by the finer grid;
// more blobs and lower variance (s_10g_b) give near-linear speedups; the
// finer grid never hurts at large p.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 4: speed-up vs distribution irregularity (SPDA, nCUBE2).");
  obs::Capture cap(cli);
  // Table 4's instances are small (25k); run them at full count by default.
  const double scale = cli.get("full", false) ? 1.0 : cli.get("scale", 1.0);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table4", scale, seed);
  bench::banner("Table 4: speed-up vs irregularity (SPDA), nCUBE2", scale);

  // The paper's grids are 128^2 / 256^2 on its 2-D decomposition; the 3-D
  // octree-aligned equivalents sweep m in {16, 32} (r = 4096, 32768).
  const std::vector<unsigned> grids = {16, 32};
  const std::vector<int> procs = {4, 16, 64};

  harness::Table table(
      {"problem", "F", "clusters", "p=4", "p=16", "p=64"});
  for (const auto& name : {"s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b"}) {
    const auto global = model::make_instance(name, scale, seed);
    for (unsigned m : grids) {
      std::vector<std::string> row{name, "", std::to_string(m) + "^3"};
      std::uint64_t F = 0;
      for (int p : procs) {
        bench::RunConfig cfg;
        bench::apply_traversal_flags(cli, cfg);
        cfg.scheme = par::Scheme::kSPDA;
        cfg.nprocs = p;
        cfg.clusters_per_axis = m;
        cfg.alpha = 0.67;
        cfg.kind = tree::FieldKind::kForce;
        cfg.warmup_steps = 2;  // give the reassignment time to settle
        cfg.seed = seed;
        cfg.tracer = cap.tracer();
        const auto out = bench::run_parallel_iteration(global, cfg);
        cap.note_report(out.report);
        emit.record(bench::make_sample(
            std::string(name) + " r=" + std::to_string(m) +
                "^3 p=" + std::to_string(p),
            name, global.size(), cfg, out));
        row.push_back(harness::Table::num(out.speedup(cfg.machine), 2));
        F = out.interactions;
      }
      row[1] = harness::Table::sci(double(F), 1);
      table.row(std::move(row));
    }
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: speed-up saturates for s_1g_a on the coarse "
      "grid; finer grid and more blobs push the saturation point back.\n");
  cap.write();
  emit.write();
  return 0;
}
