// table7_alpha -- regenerates Table 7: "Runtimes, efficiency, and
// fractional percentage errors for different values of alpha"
// (alpha in {0.67, 0.80, 1.0}, degree 4, DPDA on the modeled CM5).
//
// Expected shape (paper): larger alpha -> faster and less accurate
// (p_63192: 21.9s/2.1% at 0.67 -> 14.9s/4.9% at 1.0); efficiency often
// *rises* with alpha at p=64 because more interactions become near-field
// local work, then drops at p=256 once the shrunken problem is too small.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 7: opening-criterion (alpha) sweep (runtime, efficiency, "
      "error).");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table7", scale, seed);
  bench::banner("Table 7: alpha sweep (runtime, efficiency, error), CM5",
                scale);

  struct Case {
    const char* name;
    int p;
  };
  const std::vector<Case> cases = {
      {"p_63192", 64}, {"g_160535", 64}, {"g_326214", 64}, {"p_353992", 256}};
  const std::vector<double> alphas = {0.67, 0.80, 1.0};

  harness::Table table({"problem", "p", "alpha", "time", "efficiency",
                        "error %"});
  for (const auto& cs : cases) {
    auto global = model::make_instance(cs.name, scale, seed);
    model::ParticleSet<3> exact = global;
    tree::direct_sum(exact, tree::FieldKind::kPotential);

    for (double alpha : alphas) {
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      cfg.scheme = par::Scheme::kDPDA;
      cfg.nprocs = cs.p;
      cfg.alpha = alpha;
      cfg.degree = 4;
      cfg.kind = tree::FieldKind::kPotential;
      cfg.machine = mp::MachineModel::cm5();
      cfg.want_potentials = true;
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      const auto out = bench::run_parallel_iteration(global, cfg);
      cap.note_report(out.report);
      emit.record(bench::make_sample(
          std::string(cs.name) + " alpha=" + harness::Table::num(alpha, 2) +
              " p=" + std::to_string(cs.p),
          cs.name, global.size(), cfg, out));
      const double err =
          100.0 * tree::fractional_error(out.potentials, exact.potential);
      table.row({cs.name, std::to_string(cs.p),
                 harness::Table::num(alpha, 2),
                 harness::Table::num(out.iter_time, 2),
                 harness::Table::num(out.efficiency(cfg.machine, cs.p), 2),
                 harness::Table::num(err, 4)});
    }
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: runtime falls and error grows with alpha.\n");
  cap.write();
  emit.write();
  return 0;
}
