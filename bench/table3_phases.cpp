// table3_phases -- regenerates Table 3: "Time taken by various phases of
// the parallel formulations for the SPSA and SPDA schemes for problems
// g_1192768 and g_326214 for p = 256".
//
// Expected shape (paper): force computation dominates by 1-2 orders of
// magnitude; local tree construction is negligible; tree merging costs
// more for SPDA (unequal cluster counts); broadcast comparable for both;
// SPSA spends zero time in load balancing.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 3: per-phase time breakdown and load balance (SPSA/SPDA).",
      {{"p", "N", "number of processors [256]"},
       {"clusters", "M", "clusters per axis for the static grid [16]"}});
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table3", scale, seed);
  bench::banner("Table 3: phase breakdown at p=256, nCUBE2", scale);

  const int p = cli.get("p", 256);
  harness::Table table({"phase", "g_1192768/SPSA", "g_1192768/SPDA",
                        "g_326214/SPSA", "g_326214/SPDA"});

  std::vector<bench::RunOutcome> outs;
  for (const auto& name : {"g_1192768", "g_326214"}) {
    const auto global = model::make_instance(name, scale, seed);
    for (auto scheme : {par::Scheme::kSPSA, par::Scheme::kSPDA}) {
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      cfg.scheme = scheme;
      cfg.nprocs = p;
      cfg.clusters_per_axis = cli.get("clusters", 16);
      cfg.alpha = 1.0;  // paper uses alpha = 1.0 for these instances
      cfg.kind = tree::FieldKind::kForce;
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      outs.push_back(bench::run_parallel_iteration(global, cfg));
      cap.note_report(outs.back().report);
      emit.record(bench::make_sample(
          std::string(name) + " " + bench::scheme_name(scheme) +
              " p=" + std::to_string(p),
          name, global.size(), cfg, outs.back()));
    }
  }

  auto row = [&](const char* phase, auto proj) {
    std::vector<std::string> r{phase};
    for (const auto& o : outs) r.push_back(harness::Table::num(proj(o), 3));
    table.row(std::move(r));
  };
  row("local tree construction",
      [](const bench::RunOutcome& o) { return o.t_local_build; });
  row("tree merging",
      [](const bench::RunOutcome& o) { return o.t_tree_merge; });
  row("all-to-all broadcast",
      [](const bench::RunOutcome& o) { return o.t_broadcast; });
  row("force computation + traversal",
      [](const bench::RunOutcome& o) { return o.t_force; });
  row("load balancing",
      [](const bench::RunOutcome& o) { return o.t_load_balance; });
  row("total", [](const bench::RunOutcome& o) { return o.iter_time; });
  table.print();

  // Load balance per phase (max/mean over ranks), as in the paper's Table 3
  // discussion: the force phase should sit near 1.0 after SPDA's Morton
  // reassignment, while the raw static scatter leaves SPSA more skewed.
  harness::Table balance({"phase (max/mean over ranks)", "g_1192768/SPSA",
                          "g_1192768/SPDA", "g_326214/SPSA",
                          "g_326214/SPDA"});
  for (const char* phase :
       {par::kPhaseLocalBuild, par::kPhaseTreeMerge, par::kPhaseBroadcast,
        par::kPhaseForce, par::kPhaseLoadBalance}) {
    std::vector<std::string> r{phase};
    for (const auto& o : outs)
      r.push_back(harness::Table::num(
          o.report.phase_imbalance(phase).max_over_mean(), 3));
    balance.row(std::move(r));
  }
  std::printf("\n");
  balance.print();
  std::printf(
      "\nShape checks vs paper: force dominates; SPSA LB = 0; SPDA merge > "
      "SPSA merge; SPDA force balance closer to 1.0 than SPSA.\n");
  cap.write();
  emit.write();
  return 0;
}
