// micro_kernels -- google-benchmark microbenchmarks of the library's hot
// kernels: Morton/Hilbert encoding, tree construction, serial traversal,
// multipole evaluation by degree, branch-directory lookup, and the
// message-passing collectives. These are the wall-clock complements to the
// virtual-time table benches.
//
// With --bench-json[=PATH] the results also land in a bh.bench.v1 registry
// (default BENCH_micro.json) under the "wall" scheme tag: iter_time is host
// seconds per iteration, machine is "host". Wall rows gate only in the
// dedicated median-of-3 wall job (scripts/bench_diff.py --gate-wall); the
// ordinary per-run perf diff lists them informationally. They also feed
// bh_trend's cross-run wall panel. With --profile[=PATH] a bh.prof.v1
// wall-clock profile of the whole benchmark run (regions, hardware
// counters, roofline; see obs/prof) is written too, default prof.json.
// Every other flag passes through to google-benchmark unchanged.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "emit.hpp"
#include "obs/memstat.hpp"
#include "obs/prof/prof.hpp"

#include "geom/hilbert.hpp"
#include "geom/morton.hpp"
#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "multipole/expansion.hpp"
#include "multipole/kernels.hpp"
#include "parallel/branch.hpp"
#include "tree/bhtree.hpp"

namespace {

using namespace bh;

void BM_MortonEncode3D(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::array<std::uint64_t, 3> g{rng() & 0x1fffff, rng() & 0x1fffff,
                                 rng() & 0x1fffff};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::morton_encode<3>(g));
    g[0] = (g[0] + 0x9e37) & 0x1fffff;
  }
}
BENCHMARK(BM_MortonEncode3D);

void BM_HilbertIndex3D(benchmark::State& state) {
  std::uint32_t x = 123, y = 456, z = 789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::hilbert_index_3d(x, y, z, 16));
    x = (x + 7) & 0xffff;
  }
}
BENCHMARK(BM_HilbertIndex3D);

void BM_TreeBuild(benchmark::State& state) {
  model::Rng rng(2);
  const auto ps =
      model::plummer<3>(static_cast<std::size_t>(state.range(0)), rng);
  const auto box = ps.bounding_cube();
  for (auto _ : state) {
    auto t = tree::build_tree(ps, box, {.leaf_capacity = 8});
    benchmark::DoNotOptimize(t.nodes.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerialTraversal(benchmark::State& state) {
  model::Rng rng(3);
  auto ps =
      model::plummer<3>(static_cast<std::size_t>(state.range(0)), rng);
  auto t = tree::build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 8});
  for (auto _ : state) {
    ps.zero_accumulators();
    auto w = tree::compute_fields(
        t, ps, {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                .use_expansions = false});
    benchmark::DoNotOptimize(w.interactions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerialTraversal)->Arg(1000)->Arg(10000);

// Whole force evaluation, walker (arg1=0) vs blocked (arg1=1), over the
// same tree. The n=100000 pair is the CI acceptance row: blocked must be
// at least 2x faster than walker there.
void BM_ForceEval(benchmark::State& state) {
  const auto mode = state.range(1) == 0 ? tree::TraversalMode::kWalker
                                        : tree::TraversalMode::kBlocked;
  model::Rng rng(7);
  auto ps =
      model::plummer<3>(static_cast<std::size_t>(state.range(0)), rng);
  auto t = tree::build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 8});
  for (auto _ : state) {
    ps.zero_accumulators();
    auto w = tree::compute_fields(
        t, ps, {.alpha = 0.67, .softening = 1e-3,
                .kind = tree::FieldKind::kForce, .use_expansions = false,
                .mode = mode});
    benchmark::DoNotOptimize(w.interactions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(mode == tree::TraversalMode::kWalker ? "walker" : "blocked");
}
BENCHMARK(BM_ForceEval)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

// P2P batch kernel in isolation: one full-width target block against a
// stream of `n` SoA source slots (one interaction-list direct entry).
void BM_P2PBlock(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::array<std::vector<double>, 3> pos;
  std::vector<double> mass(n, 1.0 / n);
  std::vector<std::uint64_t> id(n);
  for (auto& ax : pos) ax.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (auto& ax : pos) ax[i] = u(rng);
    id[i] = i;
  }
  const multipole::SourceView<3> sv{
      {pos[0].data(), pos[1].data(), pos[2].data()}, mass.data(), id.data()};
  multipole::TargetBlock<3> blk;
  blk.reset(multipole::kBlockWidth);
  for (std::size_t l = 0; l < multipole::kBlockWidth; ++l)
    blk.set_lane(l, {{u(rng), u(rng), u(rng)}}, (1ull << 32) + l);
  std::array<std::uint64_t, multipole::kBlockWidth> pairs{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multipole::p2p_block(blk, sv, 0, n, blk.full_mask(), 1e-3, pairs));
  }
  state.SetItemsProcessed(state.iterations() * n * multipole::kBlockWidth);
}
BENCHMARK(BM_P2PBlock)->Arg(64)->Arg(512);

// Monopole M2P against a whole approx list: `len` node monopoles applied
// to every lane of one target block.
void BM_M2PList(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  multipole::TargetBlock<3> blk;
  blk.reset(multipole::kBlockWidth);
  for (std::size_t l = 0; l < multipole::kBlockWidth; ++l)
    blk.set_lane(l, {{u(rng), u(rng), u(rng)}}, l);
  std::vector<geom::Vec<3>> com(len);
  std::vector<double> mass(len, 1.0);
  for (auto& c : com) c = {{4.0 + u(rng), 4.0 + u(rng), u(rng)}};
  for (auto _ : state) {
    for (std::size_t i = 0; i < len; ++i)
      multipole::m2p_monopole_block(blk, com[i], mass[i], blk.full_mask(),
                                    1e-3);
    benchmark::DoNotOptimize(blk.potential[0]);
  }
  state.SetItemsProcessed(state.iterations() * len * multipole::kBlockWidth);
}
BENCHMARK(BM_M2PList)->Arg(64)->Arg(512);

void BM_MultipoleEvaluate(benchmark::State& state) {
  const auto degree = static_cast<unsigned>(state.range(0));
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(-0.5, 0.5);
  multipole::Expansion3 e(degree, {});
  for (int i = 0; i < 50; ++i)
    e.add_particle({{u(rng), u(rng), u(rng)}}, 0.02);
  geom::Vec<3> t{{3.0, 2.0, 2.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluate(t));
    t[0] += 1e-9;
  }
}
BENCHMARK(BM_MultipoleEvaluate)->Arg(0)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_MultipoleP2M(benchmark::State& state) {
  const auto degree = static_cast<unsigned>(state.range(0));
  geom::Vec<3> p{{0.3, -0.2, 0.1}};
  for (auto _ : state) {
    multipole::Expansion3 e(degree, {});
    e.add_particle(p, 1.0);
    benchmark::DoNotOptimize(e.total_mass());
  }
}
BENCHMARK(BM_MultipoleP2M)->Arg(2)->Arg(4)->Arg(8);

void BM_BranchLookup(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? par::LookupKind::kHash
                                        : par::LookupKind::kSortedTable;
  std::mt19937_64 rng(5);
  par::BranchDirectory<3> dir(kind);
  std::vector<geom::NodeKey<3>> keys;
  for (int i = 0; i < 1024; ++i) {
    geom::NodeKey<3> k{};
    for (int d = 0; d < 5; ++d) k = k.child(rng() % 8);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i)
    dir.insert(keys[i], static_cast<std::int32_t>(i));
  dir.seal();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.find(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_BranchLookup)->Arg(0)->Arg(1);

void BM_AllGather(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto rep = mp::run_spmd(p, mp::MachineModel::ideal(),
                            [](mp::Communicator& c) {
                              benchmark::DoNotOptimize(
                                  c.all_gather(c.rank()));
                            });
    benchmark::DoNotOptimize(rep.ranks.size());
  }
}
BENCHMARK(BM_AllGather)->Arg(4)->Arg(16)->Arg(64);

void BM_DirectSum(benchmark::State& state) {
  model::Rng rng(6);
  auto ps =
      model::plummer<3>(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    ps.zero_accumulators();
    auto w = tree::direct_sum(ps, tree::FieldKind::kPotential);
    benchmark::DoNotOptimize(w.direct_pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_DirectSum)->Arg(500)->Arg(2000);

/// Console reporter that additionally captures per-iteration real time of
/// every plain (non-aggregate) run for the bh.bench.v1 registry.
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double seconds_per_iter = 0.0;
    std::uint64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::uint64_t>(run.iterations);
      if (run.iterations > 0)
        row.seconds_per_iter =
            run.real_accumulated_time / static_cast<double>(run.iterations);
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --bench-json and --profile (ours) before google-benchmark
  // sees the argv.
  bool want_json = false;
  std::string json_path;
  std::string prof_path;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bench-json") {
      want_json = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
        json_path = argv[++i];
    } else if (a.rfind("--bench-json=", 0) == 0) {
      want_json = true;
      json_path = a.substr(std::string("--bench-json=").size());
    } else if (a == "--profile") {
      prof_path = "prof.json";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
        prof_path = argv[++i];
    } else if (a.rfind("--profile=", 0) == 0) {
      prof_path = a.substr(std::string("--profile=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;

  if (!prof_path.empty()) bh::obs::prof::enable();
  RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!prof_path.empty()) {
    bh::obs::prof::disable();
    const auto rep = bh::obs::prof::snapshot();
    {
      std::ofstream os(prof_path);
      bh::obs::prof::write_prof_json(os, rep);
    }
    {
      std::ofstream os(prof_path + ".folded");
      os << bh::obs::prof::folded_text(rep);
    }
    std::printf("profile written to %s (+%s.folded): %zu regions, "
                "counters: %s\n",
                prof_path.c_str(), prof_path.c_str(), rep.regions.size(),
                rep.counters.c_str());
  }

  if (want_json) {
    bh::bench::Emit emit("micro", 1.0, 0, json_path);
    for (const auto& row : reporter.rows()) {
      bh::bench::BenchSample s;
      s.scenario.name = row.name;
      s.scenario.scheme = "wall";
      s.scenario.instance = "host";
      s.scenario.procs = 1;
      s.scenario.machine = "host";
      s.iter_time = row.seconds_per_iter;  // host seconds, not modeled
      s.wall_s = row.seconds_per_iter;
      s.wall_p50 = row.seconds_per_iter;
      s.wall_p95 = row.seconds_per_iter;
      s.interactions = row.iterations;
      s.peak_rss_bytes = bh::obs::memstat::peak_rss_bytes();
      emit.record(std::move(s));
    }
    emit.write();
  }
  return 0;
}
