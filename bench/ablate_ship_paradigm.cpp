// ablate_ship_paradigm -- the paper's central design argument (Sections
// 4.2.1-4.2.2): function shipping vs data shipping.
//
// Runs the two force engines on identical distributed trees and reports
// point-to-point communication volume and modeled force-phase time as the
// multipole degree grows. Expected shape: function-shipping volume is flat
// in k (coordinates only); data-shipping volume grows ~k^2 (the multipole
// series rides along with every fetched node), so the efficiency gap widens
// with accuracy.
#include "common.hpp"
#include "parallel/dataship.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Ablation (Sec 4.2): function shipping vs data shipping volume/time.",
      {{"p", "N", "number of processors [16]"}});
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli, 0.1);
  const auto cli_seed = bench::bench_seed(cli);
  const auto seed = cli_seed ? cli_seed : 4242;
  bench::Emit emit(cli, "ablate_ship_paradigm", scale, seed);
  bench::banner(
      "Ablation (Sec 4.2): function shipping vs data shipping, CM5", scale);

  model::Rng rng(seed);
  const auto global = model::uniform_box<3>(
      static_cast<std::size_t>(60000 * scale), rng, bench::kDomain);
  const int p = cli.get("p", 16);

  harness::Table table({"degree", "FS bytes", "DS bytes", "DS/FS",
                        "FS time", "DS time"});
  for (unsigned degree : {0u, 2u, 4u, 6u}) {
    std::uint64_t fs_bytes = 0, ds_bytes = 0;
    double fs_time = 0.0, ds_time = 0.0;

    for (int which = 0; which < 2; ++which) {
      const auto wall0 = std::chrono::steady_clock::now();
      mp::RunOptions ropts;
      ropts.trace = cap.tracer();
      auto rep = mp::run_spmd(
          p, mp::MachineModel::cm5(), ropts, [&](mp::Communicator& c) {
            par::StepOptions so{.scheme = par::Scheme::kSPDA,
                                .clusters_per_axis = 8,
                                .alpha = 0.67,
                                .degree = degree,
                                .kind = tree::FieldKind::kPotential};
            par::ParallelSimulation<3> sim(c, bench::kDomain, so);
            sim.distribute(global);
            sim.step();  // warmup + build (function shipping)
            sim.rebalance();
            if (which == 0) {
              const auto b0 = c.stats().bytes_sent;
              const double t0 = c.all_reduce_max(c.vtime());
              sim.step();
              const double t1 = c.all_reduce_max(c.vtime());
              const auto db = c.all_reduce_sum(
                  static_cast<long long>(c.stats().bytes_sent - b0));
              if (c.rank() == 0) {
                fs_time = t1 - t0;
                fs_bytes = static_cast<std::uint64_t>(db);
              }
            } else {
              sim.step();  // rebuild the tree on the balanced decomposition
              auto& dt = const_cast<par::DistTree<3>&>(sim.dist_tree());
              dt.particles.zero_accumulators();
              const auto b0 = c.stats().bytes_sent;
              const double t0 = c.all_reduce_max(c.vtime());
              par::compute_forces_dataship<3>(
                  c, dt,
                  {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                   .done_counter = 1});
              const double t1 = c.all_reduce_max(c.vtime());
              const auto db = c.all_reduce_sum(
                  static_cast<long long>(c.stats().bytes_sent - b0));
              if (c.rank() == 0) {
                ds_time = t1 - t0;
                ds_bytes = static_cast<std::uint64_t>(db);
              }
            }
          });
      cap.note_report(rep);
      // This bench bypasses run_parallel_iteration (it times the force
      // engines directly), so build its registry record by hand.
      bench::BenchSample s;
      s.scenario.name = std::string("uniform ") +
                        (which == 0 ? "FS" : "DS") +
                        " k=" + std::to_string(degree);
      s.scenario.scheme = "SPDA";
      s.scenario.instance = "uniform";
      s.scenario.n = global.size();
      s.scenario.procs = p;
      s.scenario.alpha = 0.67;
      s.scenario.degree = degree;
      s.scenario.machine = "cm5";
      s.iter_time = which == 0 ? fs_time : ds_time;
      s.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
      s.ptp_bytes = which == 0 ? fs_bytes : ds_bytes;
      s.phases[par::kPhaseForce] = s.iter_time;
      const auto idle = rep.idle();
      s.idle_max = idle.max;
      s.idle_mean = idle.mean;
      emit.record(std::move(s));
    }
    table.row({std::to_string(degree), std::to_string(fs_bytes),
               std::to_string(ds_bytes),
               harness::Table::num(
                   fs_bytes ? double(ds_bytes) / double(fs_bytes) : 0.0, 2),
               harness::Table::num(fs_time, 3),
               harness::Table::num(ds_time, 3)});
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: FS bytes flat in degree; DS bytes grow with "
      "degree; DS/FS ratio widens.\n");
  cap.write();
  emit.write();
  return 0;
}
