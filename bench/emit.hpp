// emit.hpp -- the "bh.bench.v1" benchmark registry.
//
// Every bench binary (and examples/scaling_study) registers the scenarios it
// ran -- scheme, instance, N, P, alpha, degree, machine model -- together
// with the modeled results, and writes them as one canonical JSON document:
//
//   table1 --bench-json               -> BENCH_table1.json (repo root)
//   table1 --bench-json=out/t1.json   -> out/t1.json
//
// The document is the unit of performance tracking: committed BENCH_*.json
// files are baselines, fresh runs are candidates, and scripts/bench_diff.py
// (or `bh_analyze diff`) compares the two phase-by-phase. CI's perf-smoke
// job fails on regressions; see EXPERIMENTS.md for the bench -> paper-table
// -> BENCH file mapping.
//
// Schema (stable; extend by adding keys, never by renaming):
//   { "schema": "bh.bench.v1", "bench": ..., "git_sha": ..., "seed": ...,
//     "scale": ..., "scenarios": [ { "name": ..., <scenario keys>,
//     "iter_time": ..., "peak_rss_bytes": ..., "alloc_count": ...,
//     "phases": {...}, "phase_balance": {...},
//     "idle": {...}, "critical_path": [...] }, ... ] }
//
// The micro_kernels bench participates under the "wall" scheme tag: its
// rows are google-benchmark wall-clock timings (iter_time is host seconds
// per iteration, not modeled time), so they are never gated by the per-run
// perf-smoke diff -- they exist for bh_trend's cross-run trajectory and a
// future wall-clock gate. scripts/bench_diff.py skips "wall" rows when
// gating. peak_rss_bytes and alloc counters are host-dependent like
// wall_s: informational, never gated, excluded from determinism diffs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness/cli.hpp"
#include "mp/runtime.hpp"
#include "obs/json.hpp"
#include "parallel/dtree.hpp"
#include "parallel/formulations.hpp"

#ifndef BH_GIT_SHA
#define BH_GIT_SHA "unknown"
#endif

namespace bh::bench {

struct RunConfig;   // common.hpp
struct RunOutcome;  // common.hpp

inline const char* scheme_name(par::Scheme s) {
  switch (s) {
    case par::Scheme::kSPSA: return "SPSA";
    case par::Scheme::kSPDA: return "SPDA";
    case par::Scheme::kDPDA: return "DPDA";
  }
  return "?";
}

/// What was run: the experimental knobs that identify a scenario. `name`
/// must be unique within one bench binary and stable across runs -- it is
/// the join key for baseline comparison.
struct Scenario {
  std::string name;
  std::string scheme;    ///< "SPSA"/"SPDA"/"DPDA"
  std::string instance;  ///< distribution ("uniform", "plummer", ...)
  std::uint64_t n = 0;   ///< particle count actually run (post --scale)
  int procs = 0;
  double alpha = 0.0;
  unsigned degree = 0;   ///< multipole degree (0 = monopole)
  std::string machine;   ///< MachineModel::name
};

/// One scenario's results. Modeled (virtual) seconds throughout, except
/// wall_s which is the host wall-clock cost of producing them.
struct BenchSample {
  Scenario scenario;
  double iter_time = 0.0;
  double wall_s = 0.0;
  /// Percentiles of the harness's per-step wall times (warmups + timed
  /// iteration). Host-machine dependent, like wall_s: cost-of-producing
  /// metadata, never gated on and excluded from determinism diffs.
  double wall_p50 = 0.0;
  double wall_p95 = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  double load_imbalance = 1.0;
  std::uint64_t flops = 0;
  std::uint64_t serial_flops = 0;
  std::uint64_t interactions = 0;
  std::uint64_t items_shipped = 0;
  std::uint64_t stalls = 0;
  std::uint64_t ptp_bytes = 0;
  std::uint64_t coll_bytes = 0;
  /// Data-shipping node-cache metrics (DESIGN.md section 14); all zero for
  /// function-shipping scenarios. Summed over ranks, modeled and
  /// deterministic like flops.
  std::uint64_t fetch_requests = 0;
  std::uint64_t nodes_fetched = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_prefetched = 0;
  std::uint64_t cache_suspends = 0;
  /// Modeled virtual seconds ranks spent blocked on point-to-point
  /// arrivals during the timed phase (recv_wait delta summed over ranks) --
  /// the stall time the async cache is built to shrink.
  double stall_vtime = 0.0;
  /// Memory axis: process peak RSS and per-rank-thread heap allocation
  /// counts (sum and worst rank). Host-dependent metadata like wall_s;
  /// never gated on and excluded from determinism diffs.
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_max = 0;
  /// Timed-iteration virtual seconds per phase (max over ranks); the keys
  /// scripts/bench_diff.py gates on.
  std::map<std::string, double> phases;
  /// max/mean rank time per phase over the whole run (warmup included).
  std::map<std::string, double> phase_balance;
  /// Idle virtual seconds per rank (collective wait + recv wait): max,
  /// mean, and the gating max/mean ratio.
  double idle_max = 0.0;
  double idle_mean = 0.0;
  /// Per-phase critical rank: which rank's virtual time gates each phase.
  struct CriticalPhase {
    std::string phase;
    int rank = -1;
    double vtime = 0.0;
  };
  std::vector<CriticalPhase> critical_path;
};

/// Registry + writer. Construct once per bench main; record() every
/// scenario; write() at the end. Inert unless --bench-json was passed, so
/// plain table-printing runs pay nothing.
class Emit {
 public:
  /// `bench` is the registry name ("table1", "fig8", ...); `scale` and
  /// `seed` go into the header so a baseline records how it was produced.
  Emit(const harness::Cli& cli, std::string bench, double scale,
       std::uint64_t seed)
      : bench_(std::move(bench)), scale_(scale), seed_(seed) {
    if (!cli.has("bench-json")) return;
    const std::string v = cli.get("bench-json", std::string());
    path_ = (v.empty() || v == "1") ? "BENCH_" + bench_ + ".json" : v;
  }

  /// Direct-path constructor for binaries that do not use harness::Cli
  /// (micro_kernels owns its argv jointly with google-benchmark). An empty
  /// path resolves to BENCH_<bench>.json.
  Emit(std::string bench, double scale, std::uint64_t seed, std::string path)
      : bench_(std::move(bench)), scale_(scale), seed_(seed) {
    path_ = (path.empty() || path == "1") ? "BENCH_" + bench_ + ".json"
                                          : std::move(path);
  }

  bool enabled() const { return !path_.empty(); }

  void record(BenchSample s) {
    if (enabled()) samples_.push_back(std::move(s));
  }

  /// Write BENCH_<bench>.json; no-op when --bench-json was not requested.
  void write() const {
    if (!enabled()) return;
    std::ofstream os(path_);
    if (!os) throw std::runtime_error("cannot open " + path_);
    using obs::json_escape;
    using obs::json_num;
    os << "{\n\"schema\": \"bh.bench.v1\",\n";
    os << "\"bench\": \"" << json_escape(bench_) << "\",\n";
    os << "\"git_sha\": \"" << json_escape(BH_GIT_SHA) << "\",\n";
    os << "\"seed\": " << seed_ << ",\n";
    os << "\"scale\": " << json_num(scale_) << ",\n";
    os << "\"scenarios\": [\n";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      const auto& s = samples_[i];
      const auto& sc = s.scenario;
      os << "{\"name\": \"" << json_escape(sc.name) << "\",\n";
      os << " \"scheme\": \"" << json_escape(sc.scheme) << "\", "
         << "\"instance\": \"" << json_escape(sc.instance) << "\", "
         << "\"n\": " << sc.n << ", \"procs\": " << sc.procs
         << ", \"alpha\": " << json_num(sc.alpha)
         << ", \"degree\": " << sc.degree << ", \"machine\": \""
         << json_escape(sc.machine) << "\",\n";
      os << " \"iter_time\": " << json_num(s.iter_time)
         << ", \"wall_s\": " << json_num(s.wall_s)
         << ", \"wall_p50\": " << json_num(s.wall_p50)
         << ", \"wall_p95\": " << json_num(s.wall_p95)
         << ", \"speedup\": " << json_num(s.speedup)
         << ", \"efficiency\": " << json_num(s.efficiency)
         << ", \"load_imbalance\": " << json_num(s.load_imbalance) << ",\n";
      os << " \"flops\": " << s.flops
         << ", \"serial_flops\": " << s.serial_flops
         << ", \"interactions\": " << s.interactions
         << ", \"items_shipped\": " << s.items_shipped
         << ", \"stalls\": " << s.stalls << ", \"ptp_bytes\": " << s.ptp_bytes
         << ", \"coll_bytes\": " << s.coll_bytes << ",\n";
      os << " \"fetch_requests\": " << s.fetch_requests
         << ", \"nodes_fetched\": " << s.nodes_fetched
         << ", \"cache_hits\": " << s.cache_hits
         << ", \"cache_coalesced\": " << s.cache_coalesced
         << ", \"cache_prefetched\": " << s.cache_prefetched
         << ", \"cache_suspends\": " << s.cache_suspends
         << ", \"stall_vtime\": " << json_num(s.stall_vtime) << ",\n";
      os << " \"peak_rss_bytes\": " << s.peak_rss_bytes
         << ", \"alloc_count\": " << s.alloc_count
         << ", \"alloc_max\": " << s.alloc_max << ",\n";
      write_map(os, "phases", s.phases);
      os << ",\n";
      write_map(os, "phase_balance", s.phase_balance);
      os << ",\n";
      os << " \"idle\": {\"max\": " << json_num(s.idle_max)
         << ", \"mean\": " << json_num(s.idle_mean) << ", \"max_over_mean\": "
         << json_num(s.idle_mean > 0.0 ? s.idle_max / s.idle_mean : 1.0)
         << "},\n";
      os << " \"critical_path\": [";
      for (std::size_t k = 0; k < s.critical_path.size(); ++k) {
        const auto& cp = s.critical_path[k];
        os << (k ? ", " : "") << "{\"phase\": \"" << json_escape(cp.phase)
           << "\", \"rank\": " << cp.rank << ", \"vtime\": "
           << json_num(cp.vtime) << "}";
      }
      os << "]}" << (i + 1 < samples_.size() ? "," : "") << "\n";
    }
    os << "]\n}\n";
    std::printf("bench registry written to %s (%zu scenario%s)\n",
                path_.c_str(), samples_.size(),
                samples_.size() == 1 ? "" : "s");
  }

 private:
  static void write_map(std::ostream& os, const char* key,
                        const std::map<std::string, double>& m) {
    os << " \"" << key << "\": {";
    bool first = true;
    for (const auto& [k, v] : m) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << obs::json_escape(k) << "\": " << obs::json_num(v);
    }
    os << "}";
  }

  std::string bench_;
  double scale_ = 1.0;
  std::uint64_t seed_ = 0;
  std::string path_;
  std::vector<BenchSample> samples_;
};

}  // namespace bh::bench
