// table6_degree -- regenerates Table 6 and Figure 9: "Runtimes, efficiency,
// and fractional percentage errors for different degree polynomials"
// (k in {3, 4, 5}, alpha = 0.67, DPDA on the modeled CM5) and emits the
// Fig. 9 series (error and runtime vs degree) as fig9.csv.
//
// Expected shape (paper): runtime grows ~k^2; fractional error roughly
// halves per degree (4.6% -> 2.1% -> 0.9% for p_63192); parallel
// efficiency *increases* with degree because communication is constant
// while computation grows -- the signature advantage of function shipping.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Table 6 / Fig 9: multipole-degree sweep (runtime, efficiency, "
      "error).");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "table6", scale, seed);
  bench::banner(
      "Table 6 / Fig 9: degree sweep (runtime, efficiency, error), CM5",
      scale);

  struct Case {
    const char* name;
    int p;
  };
  const std::vector<Case> cases = {
      {"p_63192", 64}, {"g_160535", 64}, {"g_326214", 64}, {"p_353992", 256}};
  const std::vector<unsigned> degrees = {3, 4, 5};

  harness::Table table({"problem", "p", "degree", "time", "efficiency",
                        "error %"});
  harness::Table fig9({"problem", "degree", "error_pct", "runtime_s"});
  for (const auto& cs : cases) {
    auto global = model::make_instance(cs.name, scale, seed);
    // Exact potentials for the error column (the paper's fractional error
    // || x_k - x || / || x ||, Section 5.2.2).
    model::ParticleSet<3> exact = global;
    tree::direct_sum(exact, tree::FieldKind::kPotential);

    for (unsigned k : degrees) {
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      cfg.scheme = par::Scheme::kDPDA;
      cfg.nprocs = cs.p;
      cfg.alpha = 0.67;
      cfg.degree = k;
      cfg.kind = tree::FieldKind::kPotential;
      cfg.machine = mp::MachineModel::cm5();
      cfg.want_potentials = true;
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      const auto out = bench::run_parallel_iteration(global, cfg);
      cap.note_report(out.report);
      emit.record(bench::make_sample(
          std::string(cs.name) + " k=" + std::to_string(k) +
              " p=" + std::to_string(cs.p),
          cs.name, global.size(), cfg, out));
      const double err =
          100.0 * tree::fractional_error(out.potentials, exact.potential);
      table.row({cs.name, std::to_string(cs.p), std::to_string(k),
                 harness::Table::num(out.iter_time, 2),
                 harness::Table::num(out.efficiency(cfg.machine, cs.p), 2),
                 harness::Table::num(err, 4)});
      fig9.row({cs.name, std::to_string(k), harness::Table::num(err, 4),
                harness::Table::num(out.iter_time, 4)});
    }
  }
  table.print();
  fig9.write_csv("fig9.csv");
  std::printf(
      "\nFig. 9 series written to fig9.csv.\n"
      "Shape checks vs paper: error falls ~2x per degree; runtime grows "
      "~k^2; efficiency increases with degree.\n");
  cap.write();
  emit.write();
  return 0;
}
