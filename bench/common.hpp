// common.hpp -- shared machinery for the table-regeneration benches.
//
// Every bench binary reproduces one table or figure from the paper's
// Section 5. The methodology mirrors the paper's:
//  * runs are warmed up ("we allow the simulation to run a few time-steps
//    before timing an iteration") and a single iteration is timed,
//    including one load-balance cycle;
//  * serial time is projected from counted interactions x the per-
//    interaction flop cost (Section 5.2.1), because the big instances do
//    not fit on one node -- efficiencies follow from that projection;
//  * default particle counts are scaled down (--scale, default 0.05) so a
//    full table regenerates in seconds on a laptop core; pass --full for
//    paper-scale counts.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "emit.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "obs/capture.hpp"
#include "obs/memstat.hpp"
#include "parallel/dataship.hpp"
#include "parallel/formulations.hpp"
#include "tree/bhtree.hpp"

namespace bh::bench {

inline const geom::Box<3> kDomain{{{0.0, 0.0, 0.0}}, 100.0};

struct RunConfig {
  par::Scheme scheme = par::Scheme::kSPDA;
  int nprocs = 16;
  unsigned clusters_per_axis = 16;
  double alpha = 0.67;
  unsigned degree = 0;
  tree::FieldKind kind = tree::FieldKind::kForce;
  mp::MachineModel machine = mp::MachineModel::ncube2();
  int warmup_steps = 1;
  int bin_size = 100;
  /// Force-phase working-set cap (<= 0 = engine default of 4 * bin_size);
  /// see ForceOptions::bin_hard_cap.
  int bin_hard_cap = 0;
  par::CurveKind curve = par::CurveKind::kMorton;
  bool replicate_top = true;
  /// Also gather the per-particle potentials (for error columns).
  bool want_potentials = false;
  par::LookupKind branch_lookup = par::LookupKind::kHash;
  /// Instance RNG seed (0 = the distribution's default); recorded in the
  /// bh.bench.v1 header so baselines are reproducible.
  std::uint64_t seed = 0;
  /// Force-phase traversal: blocked sort-then-interact pipeline (default)
  /// or the per-particle walker oracle (--traversal=walker).
  tree::TraversalMode traversal = tree::TraversalMode::kBlocked;
  /// Leaf bucket size / blocked block-width cap (StepOptions::leaf_capacity).
  unsigned leaf_size = 8;
  /// Data-shipping remote-node cache mode (--node-cache async|sync) and its
  /// pack/prefetch depths; only read by run_dataship_iteration.
  par::NodeCacheMode node_cache = par::NodeCacheMode::kAsync;
  int pack_depth = 3;
  int prefetch_depth = 2;
  /// Event recorder for --trace (null = untraced; see obs::Capture).
  obs::Tracer* tracer = nullptr;
};

/// Outcome of one timed, load-balanced iteration.
struct RunOutcome {
  double iter_time = 0.0;   ///< modeled seconds: LB cycle + tree + force
  double wall_s = 0.0;      ///< host wall-clock seconds for the whole run
  /// Host wall-clock seconds of each step() the harness ran (warmup steps
  /// followed by the timed iteration), measured on rank 0. Percentiles of
  /// these feed the registry's wall_p50/wall_p95 keys.
  std::vector<double> wall_samples;
  double t_local_build = 0.0;
  double t_tree_merge = 0.0;
  double t_broadcast = 0.0;
  double t_force = 0.0;
  double t_load_balance = 0.0;
  std::uint64_t flops = 0;        ///< total flops of the timed iteration
  std::uint64_t serial_flops = 0; ///< serial-equivalent force-phase flops
  std::uint64_t interactions = 0; ///< force interactions (the paper's F)
  std::uint64_t items_shipped = 0;
  std::uint64_t bins_sent = 0;
  std::uint64_t stalls = 0;
  std::uint64_t ptp_bytes = 0;
  std::uint64_t coll_bytes = 0;
  /// Data-shipping node-cache counters (run_dataship_iteration only; zero
  /// for function-shipping runs). Summed over ranks.
  std::uint64_t fetch_requests = 0;
  std::uint64_t nodes_fetched = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_prefetched = 0;
  std::uint64_t cache_suspends = 0;
  /// Modeled recv-wait virtual seconds of the timed phase, summed over
  /// ranks (the stall time the async cache shrinks).
  double stall_vtime = 0.0;
  /// Process peak resident set in bytes after the run (obs/memstat.hpp).
  /// Host-dependent, like wall_s: recorded for the memory axis of the scale
  /// claims, never gated on, excluded from determinism diffs.
  std::uint64_t peak_rss_bytes = 0;
  /// Heap allocations summed over rank threads during the whole run
  /// (warmup included); `alloc_max` is the worst single rank's count.
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_max = 0;
  double load_imbalance = 1.0;    ///< max rank load / mean rank load
  std::vector<double> potentials; ///< by particle id (when requested)
  /// Full per-rank statistics of the run (warmup included): phase vtimes,
  /// comm matrix, imbalance helpers. Feed to obs::Capture::note_report.
  mp::RunReport report;

  /// Projected serial time (the paper's extrapolated force-rate method):
  /// the force-phase work only, summed over ranks -- replicated top-tree
  /// computation is parallel *overhead*, not serial work, and must not
  /// inflate the numerator.
  double serial_time(const mp::MachineModel& m) const {
    return m.flops(serial_flops);
  }
  double efficiency(const mp::MachineModel& m, int p) const {
    return iter_time > 0.0 ? serial_time(m) / (p * iter_time) : 1.0;
  }
  double speedup(const mp::MachineModel& m) const {
    return iter_time > 0.0 ? serial_time(m) / iter_time : 1.0;
  }
};

/// Run warmup steps (+rebalance), then time one iteration: for SPSA just a
/// step (balance is implicit), otherwise rebalance + step.
inline RunOutcome run_parallel_iteration(const model::ParticleSet<3>& global,
                                         const RunConfig& cfg) {
  RunOutcome out;
  std::mutex mu;
  const auto wall0 = std::chrono::steady_clock::now();

  mp::RunOptions ropts;
  ropts.trace = cfg.tracer;
  auto rep = mp::run_spmd(cfg.nprocs, cfg.machine, ropts,
                          [&](mp::Communicator& c) {
    par::StepOptions so;
    so.scheme = cfg.scheme;
    so.clusters_per_axis = cfg.clusters_per_axis;
    so.curve = cfg.curve;
    so.alpha = cfg.alpha;
    so.degree = cfg.degree;
    so.kind = cfg.kind;
    so.bin_size = cfg.bin_size;
    so.bin_hard_cap = cfg.bin_hard_cap;
    so.replicate_top = cfg.replicate_top;
    so.branch_lookup = cfg.branch_lookup;
    so.leaf_capacity = cfg.leaf_size;
    so.traversal = cfg.traversal;

    par::ParallelSimulation<3> sim(c, kDomain, so);
    sim.distribute(global);
    // Rank 0 wall-times every step (collective, so one rank's bracket spans
    // the whole fleet's step) for the registry's wall percentiles.
    auto timed_step = [&] {
      if (c.rank() != 0) return sim.step();
      const auto s0 = std::chrono::steady_clock::now();
      auto r = sim.step();
      const double dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - s0)
                            .count();
      std::lock_guard<std::mutex> lk(mu);
      out.wall_samples.push_back(dt);
      return r;
    };
    for (int w = 0; w < cfg.warmup_steps; ++w) {
      timed_step();
      sim.rebalance();
    }

    // ---- timed iteration -------------------------------------------------
    const double t0 = c.all_reduce_max(c.vtime());
    const auto phases0 = c.stats().phase_vtime;
    const auto flops0 = c.stats().flops;
    const auto ptp0 = c.stats().bytes_sent;
    const auto coll0 = c.stats().collective_bytes;

    if (cfg.scheme != par::Scheme::kSPSA) sim.rebalance();
    const auto res = timed_step();

    const double t1 = c.all_reduce_max(c.vtime());
    auto delta = [&](const char* name) {
      auto it = c.stats().phase_vtime.find(name);
      const double now = it == c.stats().phase_vtime.end() ? 0.0 : it->second;
      auto it0 = phases0.find(name);
      const double before = it0 == phases0.end() ? 0.0 : it0->second;
      return c.all_reduce_max(now - before);
    };
    const double d_build = delta(par::kPhaseLocalBuild);
    const double d_merge = delta(par::kPhaseTreeMerge);
    const double d_bcast = delta(par::kPhaseBroadcast);
    const double d_force = delta(par::kPhaseForce);
    const double d_lb = delta(par::kPhaseLoadBalance);

    const auto flops = c.all_reduce_sum(
        static_cast<long long>(c.stats().flops - flops0));
    model::WorkCounter force_work = res.force.local_work;
    force_work += res.force.shipped_work;
    force_work.degree = cfg.degree;
    const auto sflops =
        c.all_reduce_sum(static_cast<long long>(force_work.flops()));
    const auto inter = c.all_reduce_sum(static_cast<long long>(
        res.force.local_work.interactions + res.force.local_work.direct_pairs +
        res.force.shipped_work.interactions +
        res.force.shipped_work.direct_pairs));
    const auto shipped =
        c.all_reduce_sum(static_cast<long long>(res.force.items_shipped));
    const auto bins =
        c.all_reduce_sum(static_cast<long long>(res.force.bins_sent));
    const auto stalls =
        c.all_reduce_sum(static_cast<long long>(res.force.stalls));
    const auto ptp = c.all_reduce_sum(
        static_cast<long long>(c.stats().bytes_sent - ptp0));
    const auto coll = c.all_reduce_sum(
        static_cast<long long>(c.stats().collective_bytes - coll0));
    const auto load_max = c.all_reduce_max(res.local_load);
    const auto load_sum =
        c.all_reduce_sum(static_cast<long long>(res.local_load));

    std::vector<double> pots;
    if (cfg.want_potentials) pots = sim.gather_potentials();

    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out.iter_time = t1 - t0;
      out.t_local_build = d_build;
      out.t_tree_merge = d_merge;
      out.t_broadcast = d_bcast;
      out.t_force = d_force;
      out.t_load_balance = d_lb;
      out.flops = static_cast<std::uint64_t>(flops);
      out.serial_flops = static_cast<std::uint64_t>(sflops);
      out.interactions = static_cast<std::uint64_t>(inter);
      out.items_shipped = static_cast<std::uint64_t>(shipped);
      out.bins_sent = static_cast<std::uint64_t>(bins);
      out.stalls = static_cast<std::uint64_t>(stalls);
      out.ptp_bytes = static_cast<std::uint64_t>(ptp);
      out.coll_bytes = static_cast<std::uint64_t>(coll);
      out.load_imbalance =
          load_sum > 0 ? static_cast<double>(load_max) /
                             (static_cast<double>(load_sum) / cfg.nprocs)
                       : 1.0;
      out.potentials = std::move(pots);
    }
  });
  out.report = std::move(rep);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall0)
                   .count();
  out.peak_rss_bytes = obs::memstat::peak_rss_bytes();
  for (const auto& r : out.report.ranks) {
    out.alloc_count += r.allocs;
    out.alloc_max = std::max(out.alloc_max, r.allocs);
  }
  return out;
}

/// Warm up with function-shipping steps (building and balancing the
/// distributed tree exactly like run_parallel_iteration), then time one
/// *data-shipping* force phase over the balanced tree. The outcome's
/// iter_time covers the force phase only; the cache counters and the
/// modeled stall time come from DataShipResult and the recv_wait delta.
inline RunOutcome run_dataship_iteration(const model::ParticleSet<3>& global,
                                         const RunConfig& cfg) {
  RunOutcome out;
  std::mutex mu;
  const auto wall0 = std::chrono::steady_clock::now();

  mp::RunOptions ropts;
  ropts.trace = cfg.tracer;
  auto rep = mp::run_spmd(cfg.nprocs, cfg.machine, ropts,
                          [&](mp::Communicator& c) {
    par::StepOptions so;
    so.scheme = cfg.scheme;
    so.clusters_per_axis = cfg.clusters_per_axis;
    so.curve = cfg.curve;
    so.alpha = cfg.alpha;
    so.degree = cfg.degree;
    so.kind = cfg.kind;
    so.bin_size = cfg.bin_size;
    so.bin_hard_cap = cfg.bin_hard_cap;
    so.replicate_top = cfg.replicate_top;
    so.branch_lookup = cfg.branch_lookup;
    so.leaf_capacity = cfg.leaf_size;
    so.traversal = cfg.traversal;

    par::ParallelSimulation<3> sim(c, kDomain, so);
    sim.distribute(global);
    for (int w = 0; w < cfg.warmup_steps; ++w) {
      sim.step();
      sim.rebalance();
    }
    sim.step();  // rebuild the tree on the balanced decomposition
    auto& dt = const_cast<par::DistTree<3>&>(sim.dist_tree());
    dt.particles.zero_accumulators();

    par::ForceOptions fo;
    fo.alpha = cfg.alpha;
    fo.kind = cfg.kind;
    fo.done_counter = 1;
    fo.node_cache = cfg.node_cache;
    fo.pack_depth = cfg.pack_depth;
    fo.prefetch_depth = cfg.prefetch_depth;

    const auto flops0 = c.stats().flops;
    const auto ptp0 = c.stats().bytes_sent;
    const auto coll0 = c.stats().collective_bytes;
    const double rw0 = c.stats().recv_wait;
    const double t0 = c.all_reduce_max(c.vtime());
    const auto s0 = std::chrono::steady_clock::now();

    const auto res = par::compute_forces_dataship<3>(c, dt, fo);

    const double t1 = c.all_reduce_max(c.vtime());
    const double step_wall = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - s0)
                                 .count();
    auto sum = [&](std::uint64_t v) {
      return static_cast<std::uint64_t>(
          c.all_reduce_sum(static_cast<long long>(v)));
    };
    const auto flops = sum(c.stats().flops - flops0);
    model::WorkCounter force_work = res.work;
    force_work.degree = cfg.degree;
    const auto sflops = sum(force_work.flops());
    const auto inter =
        sum(res.work.interactions + res.work.direct_pairs);
    const auto ptp = sum(c.stats().bytes_sent - ptp0);
    const auto coll = sum(c.stats().collective_bytes - coll0);
    const double stall = c.all_reduce_sum(c.stats().recv_wait - rw0);
    const auto fetches = sum(res.fetch_requests);
    const auto fetched = sum(res.nodes_fetched);
    const auto hits = sum(res.cache_hits);
    const auto coalesced = sum(res.coalesced);
    const auto prefetched = sum(res.prefetched_nodes);
    const auto suspends = sum(res.suspends);
    const auto work_max =
        c.all_reduce_max(static_cast<long long>(force_work.flops()));
    const auto work_sum = sum(force_work.flops());

    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out.iter_time = t1 - t0;
      out.t_force = t1 - t0;
      out.wall_samples.push_back(step_wall);
      out.flops = flops;
      out.serial_flops = sflops;
      out.interactions = inter;
      out.ptp_bytes = ptp;
      out.coll_bytes = coll;
      out.stall_vtime = stall;
      out.fetch_requests = fetches;
      out.nodes_fetched = fetched;
      out.cache_hits = hits;
      out.cache_coalesced = coalesced;
      out.cache_prefetched = prefetched;
      out.cache_suspends = suspends;
      out.load_imbalance =
          work_sum > 0 ? static_cast<double>(work_max) /
                             (static_cast<double>(work_sum) / cfg.nprocs)
                       : 1.0;
    }
  });
  out.report = std::move(rep);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall0)
                   .count();
  out.peak_rss_bytes = obs::memstat::peak_rss_bytes();
  for (const auto& r : out.report.ranks) {
    out.alloc_count += r.allocs;
    out.alloc_max = std::max(out.alloc_max, r.allocs);
  }
  return out;
}

/// Nearest-rank percentile of a sample set (q in [0, 1]); 0 when empty.
inline double wall_percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(q * (xs.size() - 1) + 0.5);
  return xs[idx < xs.size() ? idx : xs.size() - 1];
}

/// Build the bh.bench.v1 record for one (config, outcome) pair. `name` is
/// the stable scenario join key; `instance` and `n` describe the particle
/// set actually run.
inline BenchSample make_sample(std::string name, std::string instance,
                               std::uint64_t n, const RunConfig& cfg,
                               const RunOutcome& out) {
  BenchSample s;
  s.scenario.name = std::move(name);
  s.scenario.scheme = scheme_name(cfg.scheme);
  s.scenario.instance = std::move(instance);
  s.scenario.n = n;
  s.scenario.procs = cfg.nprocs;
  s.scenario.alpha = cfg.alpha;
  s.scenario.degree = cfg.degree;
  s.scenario.machine = cfg.machine.name;
  s.iter_time = out.iter_time;
  s.wall_s = out.wall_s;
  s.wall_p50 = wall_percentile(out.wall_samples, 0.50);
  s.wall_p95 = wall_percentile(out.wall_samples, 0.95);
  s.speedup = out.speedup(cfg.machine);
  s.efficiency = out.efficiency(cfg.machine, cfg.nprocs);
  s.load_imbalance = out.load_imbalance;
  s.flops = out.flops;
  s.serial_flops = out.serial_flops;
  s.interactions = out.interactions;
  s.items_shipped = out.items_shipped;
  s.stalls = out.stalls;
  s.ptp_bytes = out.ptp_bytes;
  s.coll_bytes = out.coll_bytes;
  s.fetch_requests = out.fetch_requests;
  s.nodes_fetched = out.nodes_fetched;
  s.cache_hits = out.cache_hits;
  s.cache_coalesced = out.cache_coalesced;
  s.cache_prefetched = out.cache_prefetched;
  s.cache_suspends = out.cache_suspends;
  s.stall_vtime = out.stall_vtime;
  s.peak_rss_bytes = out.peak_rss_bytes;
  s.alloc_count = out.alloc_count;
  s.alloc_max = out.alloc_max;

  const std::pair<const char*, double> timed[] = {
      {par::kPhaseLocalBuild, out.t_local_build},
      {par::kPhaseTreeMerge, out.t_tree_merge},
      {par::kPhaseBroadcast, out.t_broadcast},
      {par::kPhaseForce, out.t_force},
      {par::kPhaseLoadBalance, out.t_load_balance},
  };
  for (const auto& [phase, t] : timed)
    if (t > 0.0) s.phases[phase] = t;

  // Whole-run balance and critical ranks from the per-rank report.
  for (const auto& phase : out.report.phase_names()) {
    s.phase_balance[phase] = out.report.phase_imbalance(phase).max_over_mean();
    BenchSample::CriticalPhase cp;
    cp.phase = phase;
    for (std::size_t r = 0; r < out.report.ranks.size(); ++r) {
      const auto& pv = out.report.ranks[r].phase_vtime;
      auto it = pv.find(phase);
      const double t = it == pv.end() ? 0.0 : it->second;
      if (cp.rank < 0 || t > cp.vtime) {
        cp.rank = static_cast<int>(r);
        cp.vtime = t;
      }
    }
    s.critical_path.push_back(std::move(cp));
  }
  const auto idle = out.report.idle();
  s.idle_max = idle.max;
  s.idle_mean = idle.mean;
  return s;
}

/// Construct the Cli for a bench binary: the given flags plus the
/// bench-wide --scale/--full pair (and Cli's own built-ins).
inline harness::Cli bench_cli(int argc, char** argv, std::string about,
                              std::vector<harness::Flag> flags = {}) {
  flags.push_back(
      {"scale", "X", "fraction of the paper's particle counts to run"});
  flags.push_back({"full", "", "run at the paper's full particle counts"});
  flags.push_back({"seed", "N", "instance RNG seed (0 = default)"});
  flags.push_back({"traversal", "MODE",
                   "force traversal: blocked (default) or walker"});
  flags.push_back(
      {"leaf-size", "N", "leaf bucket / blocked block-width cap (default 8)"});
  flags.push_back({"node-cache", "MODE",
                   "data-ship remote-node cache: async (default) or sync"});
  flags.push_back({"pack-depth", "N",
                   "subtree-pack depth below a missed node (default 3)"});
  flags.push_back({"prefetch-depth", "N",
                   "top-tree prefetch depth per remote owner (default 2, "
                   "0 disables)"});
  flags.push_back({"bench-json", "[PATH]",
                   "write the bh.bench.v1 registry (default BENCH_<name>.json)"});
  return harness::Cli(argc, argv, std::move(about), std::move(flags));
}

/// Parse a --traversal value ("walker" / "blocked"); exits 2 on anything
/// else so a typo cannot silently bench the wrong pipeline.
inline tree::TraversalMode parse_traversal(const std::string& s) {
  if (s == "walker") return tree::TraversalMode::kWalker;
  if (s == "blocked") return tree::TraversalMode::kBlocked;
  std::fprintf(stderr, "unknown --traversal '%s' (walker|blocked)\n",
               s.c_str());
  std::exit(2);
}

/// Apply the bench-wide traversal flags to a RunConfig.
inline void apply_traversal_flags(const harness::Cli& cli, RunConfig& cfg) {
  cfg.traversal = parse_traversal(
      cli.get("traversal", std::string("blocked")));
  const long ls = cli.get("leaf-size", 8L);
  cfg.leaf_size = ls > 0 ? static_cast<unsigned>(ls) : 8u;
}

/// Parse a --node-cache value ("async" / "sync"); exits 2 on anything else
/// so a typo cannot silently bench the wrong cache.
inline par::NodeCacheMode parse_node_cache(const std::string& s) {
  if (s == "async") return par::NodeCacheMode::kAsync;
  if (s == "sync") return par::NodeCacheMode::kSync;
  std::fprintf(stderr, "unknown --node-cache '%s' (async|sync)\n", s.c_str());
  std::exit(2);
}

/// Apply the bench-wide node-cache flags to a RunConfig.
inline void apply_cache_flags(const harness::Cli& cli, RunConfig& cfg) {
  cfg.node_cache = parse_node_cache(
      cli.get("node-cache", std::string("async")));
  const long pd = cli.get("pack-depth", 3L);
  cfg.pack_depth = pd > 0 ? static_cast<int>(pd) : 1;
  const long fd = cli.get("prefetch-depth", 2L);
  cfg.prefetch_depth = fd > 0 ? static_cast<int>(fd) : 0;
}

/// Instance seed from the command line (0 = distribution default).
inline std::uint64_t bench_seed(const harness::Cli& cli) {
  return static_cast<std::uint64_t>(cli.get("seed", 0L));
}

/// Bench-wide scale factor from the command line (default 1/20th of the
/// paper's particle counts; --full restores them).
inline double bench_scale(const harness::Cli& cli, double def = 0.05) {
  if (cli.get("full", false)) return 1.0;
  return cli.get("scale", def);
}

/// Pretty banner shared by all bench mains.
inline void banner(const std::string& what, double scale) {
  std::printf("== %s ==\n", what.c_str());
  std::printf(
      "(particle counts scaled by %.3g of the paper's; pass --full for "
      "paper scale)\n\n",
      scale);
}

}  // namespace bh::bench
