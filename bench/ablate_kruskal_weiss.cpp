// ablate_kruskal_weiss -- Section 4.1's cluster-count analysis.
//
// Kruskal & Weiss: with r independent tasks on p processors, completion is
// T ~ (r/p) mu + sigma sqrt(2 (r/p) log p), so load imbalance shrinks once
// r >= p log p. We measure the SPDA load imbalance of an irregular
// distribution as r grows for several p, and print the r >= p log p
// threshold next to each row.
#include <cmath>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bh;
  auto cli = bench::bench_cli(
      argc, argv,
      "Ablation (Sec 4.1): Kruskal-Weiss cluster count vs load imbalance.");
  obs::Capture cap(cli);
  const double scale = bench::bench_scale(cli, 0.2);
  const auto seed = bench::bench_seed(cli);
  bench::Emit emit(cli, "ablate_kruskal_weiss", scale, seed);
  bench::banner("Ablation (Sec 4.1): cluster count vs load imbalance",
                scale);

  const auto global = model::make_instance("s_10g_a", scale, seed);
  harness::Table table({"p", "r (clusters)", "r/(p log p)", "imbalance",
                        "iter time"});
  for (int p : {8, 16, 64}) {
    for (unsigned m : {2u, 4u, 8u, 16u}) {
      const double r = std::pow(double(m), 3);
      if (r < p) continue;  // fewer clusters than processors: degenerate
      bench::RunConfig cfg;
      bench::apply_traversal_flags(cli, cfg);
      cfg.scheme = par::Scheme::kSPDA;
      cfg.nprocs = p;
      cfg.clusters_per_axis = m;
      cfg.alpha = 0.67;
      cfg.kind = tree::FieldKind::kForce;
      cfg.warmup_steps = 2;
      cfg.seed = seed;
      cfg.tracer = cap.tracer();
      const auto out = bench::run_parallel_iteration(global, cfg);
      cap.note_report(out.report);
      emit.record(bench::make_sample("s_10g_a p=" + std::to_string(p) +
                                         " r=" + std::to_string(m) + "^3",
                                     "s_10g_a", global.size(), cfg, out));
      const double plogp = p * std::log2(double(p));
      table.row({std::to_string(p), harness::Table::num(r, 0),
                 harness::Table::num(r / plogp, 2),
                 harness::Table::num(out.load_imbalance, 2),
                 harness::Table::num(out.iter_time, 2)});
    }
  }
  table.print();
  std::printf(
      "\nShape check: imbalance approaches 1 once r/(p log p) >~ 1, "
      "matching the Theta(log p) clusters-per-processor rule.\n");
  cap.write();
  emit.write();
  return 0;
}
