// Tests for obs/prof: scoped region accounting (exclusive attribution,
// nesting, multi-thread merge), the forced software counter backend that CI
// containers rely on when perf_event_open is denied, the bh.prof.v1 JSON
// document, and the sampling profiler's folded-stack export.
//
// BH_PROF_COUNTERS=software is pinned before main() so every case in this
// binary exercises the perf-denied fallback path deterministically -- the
// same degradation a locked-down CI runner produces -- regardless of
// whether the kernel would have granted hardware counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/prof/prof.hpp"

namespace bh {
namespace {

namespace prof = obs::prof;

// Runs at static-init time, before any prof::enable() can resolve the
// counter backend.
const bool kForceSoftwareBackend = [] {
  ::setenv("BH_PROF_COUNTERS", "software", 1);
  return true;
}();

/// Busy-spin (not sleep: the sampler's timer runs on process CPU time).
void spin_for_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile double x = 1.0;
  while (std::chrono::steady_clock::now() < until) x = x * 1.0000001 + 1e-9;
}

const prof::RegionReport* find_region(const prof::Report& r,
                                      const std::string& name) {
  for (const auto& reg : r.regions)
    if (reg.name == name) return &reg;
  return nullptr;
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::disable();
    prof::reset();
  }
  void TearDown() override {
    prof::disable();
    prof::reset();
  }
};

TEST_F(ProfTest, DisabledRegionsAndCountsAreNoops) {
  ASSERT_FALSE(prof::enabled());
  {
    BH_PROF_REGION("noop.region");
    prof::count_flops(1000);
    prof::count_bytes(1000);
  }
  const auto rep = prof::snapshot();
  EXPECT_EQ(find_region(rep, "noop.region"), nullptr);
  for (const auto& reg : rep.regions) EXPECT_EQ(reg.flops, 0u);
}

TEST_F(ProfTest, ForcedSoftwareBackendStillMeasuresWall) {
  prof::enable({.sampler = false});
  {
    BH_PROF_REGION("sw.region");
    spin_for_ms(2);
  }
  prof::disable();
  const auto rep = prof::snapshot();
  EXPECT_EQ(rep.counters, "software");
  EXPECT_GT(rep.wall_s, 0.0);
  const auto* reg = find_region(rep, "sw.region");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->calls, 1u);
  EXPECT_EQ(reg->threads, 1u);
  EXPECT_GT(reg->wall_s, 0.0);
  // The software fallback has no PMU access; cycle counts stay zero.
  EXPECT_EQ(reg->cycles, 0u);
  EXPECT_EQ(reg->instructions, 0u);
}

TEST_F(ProfTest, FlopsAttributeToTheInnermostOpenRegion) {
  prof::enable({.sampler = false});
  {
    BH_PROF_REGION("outer");
    prof::count_flops(5);
    prof::count_bytes(100);
    {
      BH_PROF_REGION("inner");
      prof::count_flops(7);
      prof::count_bytes(200);
    }
    prof::count_flops(11);
  }
  prof::disable();
  const auto rep = prof::snapshot();
  const auto* outer = find_region(rep, "outer");
  const auto* inner = find_region(rep, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->flops, 16u);  // 5 + 11, not the inner 7
  EXPECT_EQ(inner->flops, 7u);
  EXPECT_EQ(outer->bytes, 100u);
  EXPECT_EQ(inner->bytes, 200u);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(inner->calls, 1u);
}

TEST_F(ProfTest, CountsOutsideAnyRegionLandInUntracked) {
  prof::enable({.sampler = false});
  prof::count_flops(42);
  prof::disable();
  const auto rep = prof::snapshot();
  const auto* untracked = find_region(rep, "(untracked)");
  ASSERT_NE(untracked, nullptr);
  EXPECT_EQ(untracked->flops, 42u);
}

TEST_F(ProfTest, RegionsMergeAcrossThreads) {
  prof::enable({.sampler = false});
  auto worker = [] {
    BH_PROF_REGION("mt.region");
    prof::count_flops(10);
    spin_for_ms(1);
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  prof::disable();
  const auto rep = prof::snapshot();
  const auto* reg = find_region(rep, "mt.region");
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->calls, 2u);
  EXPECT_EQ(reg->threads, 2u);
  EXPECT_EQ(reg->flops, 20u);
  EXPECT_GT(reg->wall_s, 0.0);
}

TEST_F(ProfTest, ProfJsonIsValidAndStructured) {
  prof::enable({.sampler = false});
  {
    BH_PROF_REGION("json.region");
    prof::count_flops(1000);
    prof::count_bytes(500);
    prof::testing::record_sample();
  }
  prof::disable();
  const auto rep = prof::snapshot();
  std::ostringstream os;
  prof::write_prof_json(os, rep);

  const obs::Json doc = obs::Json::parse(os.str());
  EXPECT_EQ(doc.at("schema").str(), "bh.prof.v1");
  EXPECT_EQ(doc.at("counters").str(), "software");
  EXPECT_GT(doc.at("wall_s").number(), 0.0);
  EXPECT_GT(doc.at("machine").at("peak_flops_per_s").number(), 0.0);
  EXPECT_GT(doc.at("machine").at("peak_bytes_per_s").number(), 0.0);
  EXPECT_EQ(doc.at("samples").at("count").number(), 1.0);

  bool found = false;
  for (const obs::Json& reg : doc.at("regions").array()) {
    if (reg.at("name").str() != "json.region") continue;
    found = true;
    EXPECT_EQ(reg.at("flops").number(), 1000.0);
    EXPECT_EQ(reg.at("bytes").number(), 500.0);
    EXPECT_DOUBLE_EQ(reg.at("arith_intensity").number(), 2.0);
    EXPECT_GT(reg.at("wall_s").number(), 0.0);
    EXPECT_TRUE(reg.at("bound").str() == "memory" ||
                reg.at("bound").str() == "compute");
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(doc.at("folded").array().empty());
}

TEST_F(ProfTest, FoldedStacksFromRecordedSamples) {
  prof::enable({.sampler = false});
  {
    BH_PROF_REGION("fold.outer");
    {
      BH_PROF_REGION("fold.inner");
      prof::testing::record_sample();
      prof::testing::record_sample();
    }
    prof::testing::record_sample();
  }
  prof::disable();
  const auto rep = prof::snapshot();
  EXPECT_EQ(rep.samples, 3u);
  EXPECT_EQ(rep.samples_dropped, 0u);

  std::uint64_t nested = 0, outer_only = 0;
  for (const auto& [stack, count] : rep.folded) {
    if (stack == "fold.outer;fold.inner") nested = count;
    if (stack == "fold.outer") outer_only = count;
  }
  EXPECT_EQ(nested, 2u);
  EXPECT_EQ(outer_only, 1u);

  const std::string folded = prof::folded_text(rep);
  EXPECT_NE(folded.find("fold.outer;fold.inner 2"), std::string::npos);
  const std::string events = prof::chrome_sample_events(rep);
  EXPECT_NE(events.find("fold.inner"), std::string::npos);
}

TEST_F(ProfTest, LiveSamplerCapturesBusySpin) {
  prof::enable({.sampler = true, .sample_interval_s = 1e-4});
  // The timer runs on process CPU time, so spin (never sleep) until the
  // ring has something; bounded so a starved CI runner fails loudly rather
  // than hanging.
  std::uint64_t samples = 0;
  for (int i = 0; i < 100 && samples == 0; ++i) {
    BH_PROF_REGION("samp.region");
    spin_for_ms(20);
    samples = prof::snapshot().samples;  // live view
  }
  prof::disable();
  EXPECT_GT(samples, 0u);
}

TEST_F(ProfTest, SamplerEnvKnobOverridesOptions) {
  ::setenv("BH_PROF_SAMPLER", "off", 1);
  prof::enable({.sampler = true, .sample_interval_s = 1e-4});
  {
    BH_PROF_REGION("knob.region");
    spin_for_ms(20);
  }
  prof::disable();
  ::unsetenv("BH_PROF_SAMPLER");
  // At 10 kHz of CPU time, 20 ms of spin would have produced samples if
  // the knob had not suppressed the timer.
  EXPECT_EQ(prof::snapshot().samples, 0u);
}

// Regression: SIGPROF landing on a thread that has never touched prof TLS
// must not allocate. The original TLS slot had a destructor, so the
// handler's first read on such a thread went through the lazy-init
// wrapper, whose __cxa_thread_atexit registration mallocs -- and a signal
// interrupting malloc re-entered the arena lock and wedged the process
// (seen as a whole-bench futex pileup in profiled SPMD runs). Hammer
// exactly that window: fresh threads doing allocator + condvar work with
// no regions at all, under a fast CPU-time sampler. The old code
// deadlocks here; the fix reads a trivial thread_local.
TEST_F(ProfTest, SamplerSurvivesThreadChurnAndMalloc) {
  prof::enable({.sampler = true, .sample_interval_s = 1e-4});
  for (int round = 0; round < 20; ++round) {
    std::vector<std::thread> pool;
    for (int t = 0; t < 8; ++t) {
      pool.emplace_back([] {
        volatile double burn = 1.0;
        for (int i = 0; i < 200; ++i) {
          std::vector<double> v(256, 1.0);  // allocator traffic, no regions
          for (double x : v) burn = burn * 1.0000001 + x * 1e-12;
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  prof::disable();
  SUCCEED();  // completing at all is the assertion
}

TEST_F(ProfTest, ResetClearsAccumulatedState) {
  prof::enable({.sampler = false});
  {
    BH_PROF_REGION("reset.region");
    prof::count_flops(9);
    prof::testing::record_sample();
  }
  prof::disable();
  prof::reset();
  const auto rep = prof::snapshot();
  EXPECT_EQ(find_region(rep, "reset.region"), nullptr);
  EXPECT_EQ(rep.samples, 0u);
  EXPECT_TRUE(rep.folded.empty());
}

TEST_F(ProfTest, MachinePeaksArePositiveAndStable) {
  const auto& p1 = prof::machine_peaks();
  EXPECT_GT(p1.flops_per_s, 0.0);
  EXPECT_GT(p1.bytes_per_s, 0.0);
  // Calibrated once per process; a second call must return the same values.
  const auto& p2 = prof::machine_peaks();
  EXPECT_EQ(p1.flops_per_s, p2.flops_per_s);
  EXPECT_EQ(p1.bytes_per_s, p2.bytes_per_s);
}

}  // namespace
}  // namespace bh
