// Unit tests for the multipole machinery: Legendre recurrences, solid
// harmonics, P2M/M2M/M2P, gradient identities and convergence in degree.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "multipole/expansion.hpp"
#include "multipole/legendre.hpp"

namespace bh::multipole {
namespace {

using geom::Vec;

TEST(Legendre, LowOrderClosedForms) {
  LegendreTable P(4);
  for (double x : {-0.9, -0.3, 0.0, 0.5, 0.99}) {
    P.evaluate(x);
    const double s = std::sqrt(1 - x * x);
    EXPECT_NEAR(P(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(P(1, 0), x, 1e-14);
    EXPECT_NEAR(P(1, 1), -s, 1e-14);  // Condon-Shortley phase
    EXPECT_NEAR(P(2, 0), 0.5 * (3 * x * x - 1), 1e-14);
    EXPECT_NEAR(P(2, 1), -3 * x * s, 1e-13);
    EXPECT_NEAR(P(2, 2), 3 * (1 - x * x), 1e-13);
    EXPECT_NEAR(P(3, 0), 0.5 * (5 * x * x * x - 3 * x), 1e-13);
    EXPECT_NEAR(P(4, 0), (35 * x * x * x * x - 30 * x * x + 3) / 8, 1e-13);
  }
}

TEST(Legendre, BoundaryArguments) {
  LegendreTable P(6);
  P.evaluate(1.0);
  for (unsigned l = 0; l <= 6; ++l) {
    EXPECT_NEAR(P(l, 0), 1.0, 1e-14);  // P_l(1) = 1
    for (unsigned m = 1; m <= l; ++m) EXPECT_NEAR(P(l, m), 0.0, 1e-14);
  }
  P.evaluate(-1.0);
  for (unsigned l = 0; l <= 6; ++l)
    EXPECT_NEAR(P(l, 0), l % 2 ? -1.0 : 1.0, 1e-14);
}

TEST(PointKernel, NewtonianValues3D) {
  const Vec<3> target{{0, 0, 0}}, source{{3, 4, 0}};
  const auto f = point_kernel<3>(target, source, 2.0);
  EXPECT_NEAR(f.potential, -2.0 / 5.0, 1e-15);
  // acc = m d / r^3, attractive toward the source.
  EXPECT_NEAR(f.acc[0], 2.0 * 3.0 / 125.0, 1e-15);
  EXPECT_NEAR(f.acc[1], 2.0 * 4.0 / 125.0, 1e-15);
  EXPECT_NEAR(f.acc[2], 0.0, 1e-15);
}

TEST(PointKernel, SofteningBoundsForce) {
  const Vec<3> t{{0, 0, 0}}, s{{1e-8, 0, 0}};
  const auto f = point_kernel<3>(t, s, 1.0, 0.1);
  EXPECT_LT(std::abs(f.acc[0]), 1.0 / (0.1 * 0.1));
}

TEST(PointKernel, LogarithmicValues2D) {
  const Vec<2> target{{0, 0}}, source{{0, 2}};
  const auto f = point_kernel<2>(target, source, 3.0);
  EXPECT_NEAR(f.potential, 3.0 * std::log(2.0), 1e-15);
  EXPECT_NEAR(f.acc[1], 3.0 * 2.0 / 4.0, 1e-15);
}

TEST(Harmonics, AdditionTheoremReconstructsInverseDistance) {
  // sum_{l,m} R_l^m(a) I_l^m(b) ~= 1/|b - a| for |b| >> |a|.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec<3> a{{0.1 * u(rng), 0.1 * u(rng), 0.1 * u(rng)}};
    const Vec<3> b{{3 + u(rng), 3 + u(rng), 3 + u(rng)}};
    const unsigned deg = 10;
    const Coeffs R = regular_harmonics(a, deg);
    const Coeffs I = irregular_harmonics(b, deg);
    double sum = 0.0;
    for (unsigned l = 0; l <= deg; ++l) {
      sum += (R(l, 0) * I(l, 0)).real();
      for (unsigned m = 1; m <= l; ++m)
        sum += 2.0 * (R(l, m) * I(l, m)).real();
    }
    const double exact = 1.0 / geom::norm(b - a);
    EXPECT_NEAR(sum, exact, 1e-9 * exact);
  }
}

/// Random cluster + external evaluation point fixture.
struct Cluster {
  std::vector<Vec<3>> pos;
  std::vector<double> mass;
  Vec<3> center{};

  static Cluster make(std::mt19937_64& rng, int n, double radius) {
    std::uniform_real_distribution<double> u(-radius, radius);
    std::uniform_real_distribution<double> um(0.1, 1.0);
    Cluster c;
    for (int i = 0; i < n; ++i) {
      c.pos.push_back({{u(rng), u(rng), u(rng)}});
      c.mass.push_back(um(rng));
    }
    return c;
  }

  FieldSample<3> direct(const Vec<3>& t) const {
    FieldSample<3> f;
    for (std::size_t i = 0; i < pos.size(); ++i)
      f += point_kernel<3>(t, pos[i], mass[i]);
    return f;
  }
};

TEST(Expansion3, PotentialConvergesWithDegree) {
  std::mt19937_64 rng(11);
  const Cluster c = Cluster::make(rng, 40, 0.5);
  const Vec<3> t{{2.5, 1.5, -2.0}};
  const double exact = c.direct(t).potential;
  double prev_err = 1e30;
  for (unsigned deg : {1u, 2u, 4u, 6u, 8u}) {
    Expansion3 e(deg, c.center);
    for (std::size_t i = 0; i < c.pos.size(); ++i)
      e.add_particle(c.pos[i], c.mass[i]);
    const double err = std::abs(e.evaluate_potential(t) - exact);
    // Monotone decay until the round-off floor (~1e-8 relative) is reached.
    EXPECT_LT(err, std::max(prev_err * 1.2, 1e-7 * std::abs(exact)))
        << "degree " << deg;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-7 * std::abs(exact));
}

TEST(Expansion3, MonopoleMatchesCenterOfMassKernel) {
  std::mt19937_64 rng(12);
  const Cluster c = Cluster::make(rng, 10, 0.3);
  Expansion3 e(0, c.center);
  double M = 0.0;
  Vec<3> com{};
  for (std::size_t i = 0; i < c.pos.size(); ++i) {
    e.add_particle(c.pos[i], c.mass[i]);
    M += c.mass[i];
    com += c.mass[i] * c.pos[i];
  }
  com /= M;
  EXPECT_NEAR(e.total_mass(), M, 1e-12);
  const Vec<3> t{{4, 4, 4}};
  // Degree-0 expansion about the geometric center equals a point mass at
  // the center (not the COM) -- they agree only to monopole order.
  const double pot0 = e.evaluate_potential(t);
  const double potc = point_kernel<3>(t, c.center, M).potential;
  EXPECT_NEAR(pot0, potc, 1e-12);
}

TEST(Expansion3, EvaluateGradientMatchesFiniteDifference) {
  std::mt19937_64 rng(13);
  const Cluster c = Cluster::make(rng, 25, 0.4);
  for (unsigned deg : {0u, 1u, 2u, 3u, 5u}) {
    Expansion3 e(deg, c.center);
    for (std::size_t i = 0; i < c.pos.size(); ++i)
      e.add_particle(c.pos[i], c.mass[i]);
    const Vec<3> t{{1.8, -2.2, 2.4}};
    const auto f = e.evaluate(t);
    EXPECT_NEAR(f.potential, e.evaluate_potential(t), 1e-12);
    const double h = 1e-6;
    for (int a = 0; a < 3; ++a) {
      Vec<3> tp = t, tm = t;
      tp[a] += h;
      tm[a] -= h;
      const double grad =
          (e.evaluate_potential(tp) - e.evaluate_potential(tm)) / (2 * h);
      // acc = -grad(potential)
      EXPECT_NEAR(f.acc[a], -grad, 1e-5 * (1.0 + std::abs(grad)))
          << "degree " << deg << " axis " << a;
    }
  }
}

TEST(Expansion3, AccelerationApproachesDirectSum) {
  std::mt19937_64 rng(14);
  const Cluster c = Cluster::make(rng, 30, 0.4);
  const Vec<3> t{{3.0, -2.0, 1.0}};
  const auto exact = c.direct(t);
  Expansion3 e(8, c.center);
  for (std::size_t i = 0; i < c.pos.size(); ++i)
    e.add_particle(c.pos[i], c.mass[i]);
  const auto f = e.evaluate(t);
  for (int a = 0; a < 3; ++a)
    EXPECT_NEAR(f.acc[a], exact.acc[a], 1e-6 * geom::norm(exact.acc));
}

TEST(Expansion3, TranslationPreservesField) {
  // Build expansions about two child centers, translate both into a parent
  // expansion, and compare with a direct P2M about the parent center.
  std::mt19937_64 rng(15);
  std::uniform_real_distribution<double> u(-0.3, 0.3);
  std::uniform_real_distribution<double> um(0.1, 1.0);
  const Vec<3> c1{{-0.5, -0.5, -0.5}}, c2{{0.5, 0.5, 0.5}}, cp{{0, 0, 0}};
  const unsigned deg = 6;
  Expansion3 e1(deg, c1), e2(deg, c2), parent(deg, cp), ref(deg, cp);
  for (int i = 0; i < 30; ++i) {
    const Vec<3> p1 = c1 + Vec<3>{{u(rng), u(rng), u(rng)}};
    const Vec<3> p2 = c2 + Vec<3>{{u(rng), u(rng), u(rng)}};
    const double m1 = um(rng), m2 = um(rng);
    e1.add_particle(p1, m1);
    e2.add_particle(p2, m2);
    ref.add_particle(p1, m1);
    ref.add_particle(p2, m2);
  }
  parent.add_translated(e1);
  parent.add_translated(e2);
  // Coefficients must match the directly-built parent expansion exactly
  // (M2M is algebraically exact for l <= degree).
  for (unsigned l = 0; l <= deg; ++l)
    for (unsigned m = 0; m <= l; ++m) {
      EXPECT_NEAR(parent.coeffs()(l, m).real(), ref.coeffs()(l, m).real(),
                  1e-10)
          << l << "," << m;
      EXPECT_NEAR(parent.coeffs()(l, m).imag(), ref.coeffs()(l, m).imag(),
                  1e-10)
          << l << "," << m;
    }
  const Vec<3> t{{4, -3, 5}};
  EXPECT_NEAR(parent.evaluate_potential(t), ref.evaluate_potential(t), 1e-12);
}

TEST(Expansion2, PotentialConvergesWithDegree) {
  std::mt19937_64 rng(16);
  std::uniform_real_distribution<double> u(-0.5, 0.5);
  std::uniform_real_distribution<double> um(0.1, 1.0);
  std::vector<Vec<2>> pos;
  std::vector<double> mass;
  for (int i = 0; i < 30; ++i) {
    pos.push_back({{u(rng), u(rng)}});
    mass.push_back(um(rng));
  }
  const Vec<2> t{{3.0, -2.5}};
  double exact = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i)
    exact += point_kernel<2>(t, pos[i], mass[i]).potential;
  double prev = 1e30;
  for (unsigned deg : {1u, 2u, 4u, 8u}) {
    Expansion2 e(deg, {});
    for (std::size_t i = 0; i < pos.size(); ++i)
      e.add_particle(pos[i], mass[i]);
    const double err = std::abs(e.evaluate_potential(t) - exact);
    EXPECT_LT(err, prev * 1.2);
    prev = err;
  }
  EXPECT_LT(prev, 1e-8 * std::abs(exact));
}

TEST(Expansion2, GradientMatchesFiniteDifference) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(-0.4, 0.4);
  Expansion2 e(6, {});
  for (int i = 0; i < 20; ++i) e.add_particle({{u(rng), u(rng)}}, 0.5);
  const Vec<2> t{{2.0, 1.5}};
  const auto f = e.evaluate(t);
  const double h = 1e-6;
  for (int a = 0; a < 2; ++a) {
    Vec<2> tp = t, tm = t;
    tp[a] += h;
    tm[a] -= h;
    const double grad =
        (e.evaluate(tp).potential - e.evaluate(tm).potential) / (2 * h);
    EXPECT_NEAR(f.acc[a], -grad, 1e-6 * (1.0 + std::abs(grad)));
  }
}

TEST(Expansion2, TranslationPreservesField) {
  std::mt19937_64 rng(18);
  std::uniform_real_distribution<double> u(-0.2, 0.2);
  const Vec<2> c1{{-0.4, 0.1}}, cp{{0, 0}};
  Expansion2 e1(8, c1), parent(8, cp), ref(8, cp);
  for (int i = 0; i < 25; ++i) {
    const Vec<2> p = c1 + Vec<2>{{u(rng), u(rng)}};
    e1.add_particle(p, 0.3);
    ref.add_particle(p, 0.3);
  }
  parent.add_translated(e1);
  const Vec<2> t{{3.5, -2.0}};
  EXPECT_NEAR(parent.evaluate_potential(t), ref.evaluate_potential(t),
              1e-10 * std::abs(ref.evaluate_potential(t)));
}

TEST(Coeffs, NegativeOrderSymmetry) {
  const Vec<3> v{{0.3, -0.7, 0.2}};
  const Coeffs R = regular_harmonics(v, 4);
  for (unsigned l = 0; l <= 4; ++l)
    for (int m = 1; m <= static_cast<int>(l); ++m) {
      const cplx neg = R.get(l, -m);
      const cplx expect =
          (m % 2 ? -1.0 : 1.0) * std::conj(R.get(l, m));
      EXPECT_NEAR(neg.real(), expect.real(), 1e-14);
      EXPECT_NEAR(neg.imag(), expect.imag(), 1e-14);
    }
}

class DegreeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DegreeSweep, RealCoefficientCountMatchesPaperCommunicationModel) {
  // Section 4.2.1: a degree-k series in 3-D has O(k^2) coefficients; the
  // payload a data-shipping scheme must move grows quadratically while
  // function shipping ships 3 doubles regardless.
  const unsigned k = GetParam();
  Expansion3 e(k, {});
  EXPECT_EQ(e.real_coefficient_count(), std::size_t(k + 1) * (k + 2));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 8u));

}  // namespace
}  // namespace bh::multipole
