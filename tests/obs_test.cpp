// Tests for the observability layer: per-rank event recording semantics
// (ordering, collective pairing, flop batching, multi-run concatenation),
// the comm-matrix accounting in RunReport, zero overhead when tracing is
// off, and that both JSON exports are syntactically valid JSON.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string_view>

#include "mp/runtime.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bh {
namespace {

// Minimal recursive-descent JSON syntax checker (RFC 8259 subset strict
// enough for our exports): accepts exactly one value with no trailing
// garbage. No DOM is built -- the tests only need "would a real parser
// accept this".
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (eat(']')) return true;
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!digits()) return false;
    if (eat('.') && !digits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }
  bool lit(std::string_view l) {
    if (s_.substr(pos_, l.size()) != l) return false;
    pos_ += l.size();
    return true;
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// A small traced workload touching every event source: a phase, a ring of
// point-to-point messages, flops and two collectives.
mp::RunReport traced_ring(obs::Tracer& tr, int p) {
  mp::RunOptions opts;
  opts.trace = &tr;
  return mp::run_spmd(p, mp::MachineModel::ncube2(), opts,
                      [](mp::Communicator& c) {
    c.phase_begin("ring");
    const int dst = (c.rank() + 1) % c.size();
    const int src = (c.rank() + c.size() - 1) % c.size();
    c.send_value(dst, /*tag=*/3, c.rank());
    auto m = c.recv_any(src, 3);
    EXPECT_EQ(mp::Communicator::unpack<int>(m)[0], src);
    c.advance_flops(5000);
    c.all_reduce_max(c.vtime());
    c.phase_end("ring");
    c.barrier();
  });
}

TEST(Tracer, NullWhenTracingOff) {
  mp::run_spmd(2, mp::MachineModel::ideal(), [](mp::Communicator& c) {
    EXPECT_EQ(c.tracer(), nullptr);
    c.barrier();
  });
}

TEST(Tracer, PerRankEventTimesAreMonotone) {
  obs::Tracer tr;
  traced_ring(tr, 4);
  ASSERT_EQ(tr.nprocs(), 4);
  EXPECT_FALSE(tr.empty());
  for (int r = 0; r < 4; ++r) {
    const auto& ev = tr.rank(r).events();
    ASSERT_FALSE(ev.empty());
    for (std::size_t i = 1; i < ev.size(); ++i) {
      EXPECT_GE(ev[i].vtime, ev[i - 1].vtime)
          << "rank " << r << " event " << i;
      EXPECT_GE(ev[i].wtime, ev[i - 1].wtime)
          << "rank " << r << " event " << i;
    }
  }
}

TEST(Tracer, RecordsSendRecvWithPeerTagBytes) {
  obs::Tracer tr;
  traced_ring(tr, 4);
  for (int r = 0; r < 4; ++r) {
    const auto& ev = tr.rank(r).events();
    int sends = 0, recvs = 0;
    for (const auto& e : ev) {
      if (e.kind == obs::EventKind::kSend) {
        ++sends;
        EXPECT_EQ(e.peer, (r + 1) % 4);
        EXPECT_EQ(e.tag, 3);
        EXPECT_EQ(e.value, sizeof(int));
      }
      if (e.kind == obs::EventKind::kRecv) {
        ++recvs;
        EXPECT_EQ(e.peer, (r + 3) % 4);
        EXPECT_EQ(e.tag, 3);
      }
    }
    EXPECT_EQ(sends, 1);
    EXPECT_EQ(recvs, 1);
  }
}

TEST(Tracer, CollectiveBeginEndPairPerRank) {
  obs::Tracer tr;
  traced_ring(tr, 4);
  for (int r = 0; r < 4; ++r) {
    int depth = 0, pairs = 0;
    for (const auto& e : tr.rank(r).events()) {
      if (e.kind == obs::EventKind::kCollBegin) {
        ++depth;
        EXPECT_EQ(depth, 1) << "collectives must not nest";
      }
      if (e.kind == obs::EventKind::kCollEnd) {
        ASSERT_GT(depth, 0) << "end without begin on rank " << r;
        --depth;
        ++pairs;
      }
    }
    EXPECT_EQ(depth, 0) << "unclosed collective on rank " << r;
    EXPECT_EQ(pairs, 2);  // all_reduce_max + barrier
  }
}

TEST(Tracer, PhaseBeginEndCarriesName) {
  obs::Tracer tr;
  traced_ring(tr, 2);
  const auto& rt = tr.rank(0);
  bool begin = false, end = false;
  for (const auto& e : rt.events()) {
    if (e.kind == obs::EventKind::kPhaseBegin && rt.name(e.name) == "ring")
      begin = true;
    if (e.kind == obs::EventKind::kPhaseEnd && rt.name(e.name) == "ring")
      end = true;
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(end);
}

TEST(Tracer, FlopBatchingCoalescesAndKeepsTotals) {
  obs::Tracer tr(1);
  auto& rt = tr.rank(0);
  rt.set_flop_batch(100);
  rt.flops(60, 1.0);
  EXPECT_TRUE(rt.events().empty());  // below batch: nothing emitted
  EXPECT_EQ(rt.flops_recorded(), 60u);
  rt.flops(60, 2.0);  // crosses the batch -> one cumulative counter event
  ASSERT_EQ(rt.events().size(), 1u);
  EXPECT_EQ(rt.events()[0].kind, obs::EventKind::kFlops);
  EXPECT_EQ(rt.events()[0].value, 120u);
  rt.flops(10, 3.0);
  EXPECT_EQ(rt.flops_recorded(), 130u);
  rt.flush(4.0);
  EXPECT_EQ(rt.events().back().value, 130u);
}

TEST(Tracer, MultiRunTimelinesConcatenate) {
  obs::Tracer tr;
  traced_ring(tr, 2);
  double max1 = 0.0;
  std::size_t n1[2];
  for (int r = 0; r < 2; ++r) {
    for (const auto& e : tr.rank(r).events()) max1 = std::max(max1, e.vtime);
    n1[r] = tr.rank(r).events().size();
    EXPECT_GT(n1[r], 0u);
  }
  traced_ring(tr, 2);
  for (int r = 0; r < 2; ++r) {
    const auto& ev = tr.rank(r).events();
    ASSERT_GT(ev.size(), n1[r]);
    // Everything recorded by the second run sits past the first run's end.
    for (std::size_t i = n1[r]; i < ev.size(); ++i)
      EXPECT_GE(ev[i].vtime, max1) << "rank " << r << " event " << i;
  }
}

TEST(Tracer, TagNameRegistryIsShared) {
  obs::Tracer tr(2);
  tr.rank(0).name_tag(100, "funcship.request");
  tr.rank(1).name_tag(101, "funcship.reply");
  EXPECT_EQ(tr.tag_name(100), "funcship.request");
  EXPECT_EQ(tr.tag_name(101), "funcship.reply");
  EXPECT_EQ(tr.tag_name(999), "");
}

TEST(Tracer, ChromeTraceExportIsValidJson) {
  obs::Tracer tr;
  traced_ring(tr, 4);
  const std::string js = tr.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(js).valid()) << js.substr(0, 400);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(js.find("\"ring\""), std::string::npos);
}

TEST(CommMatrix, UniformAllToAllIsSymmetric) {
  mp::RunOptions opts;
  const auto rep = mp::run_spmd(4, mp::MachineModel::ideal(), opts,
                                [](mp::Communicator& c) {
    std::vector<std::vector<int>> out(
        static_cast<std::size_t>(c.size()), std::vector<int>{1, 2, 3});
    const auto in = c.all_to_all(out);
    EXPECT_EQ(in.size(), 4u);
  });
  const auto m = rep.comm_matrix();
  ASSERT_EQ(m.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(m[i].size(), 4u);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m[i][j], 3 * sizeof(int));
      EXPECT_EQ(m[i][j], m[j][i]);
    }
  }
}

TEST(CommMatrix, PointToPointCountsPerDestination) {
  const auto rep = mp::run_spmd(3, mp::MachineModel::ideal(),
                                [](mp::Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 1.0);  // 8 bytes to rank 1
      c.send_value(2, 1, 1.0);
      c.send_value(2, 1, 2.0);  // 16 bytes to rank 2
    }
    c.barrier();
    if (c.rank() != 0)
      while (c.try_recv(0, 1)) {
      }
  });
  const auto m = rep.comm_matrix();
  EXPECT_EQ(m[0][0], 0u);
  EXPECT_EQ(m[0][1], sizeof(double));
  EXPECT_EQ(m[0][2], 2 * sizeof(double));
  EXPECT_EQ(m[1][0], 0u);
}

TEST(Metrics, ExportIsValidJsonWithMatrixAndImbalance) {
  obs::Tracer tr;
  const auto rep = traced_ring(tr, 4);
  const std::string js = obs::metrics_json(rep);
  EXPECT_TRUE(JsonChecker(js).valid()) << js.substr(0, 400);
  EXPECT_NE(js.find("\"bh.metrics.v1\""), std::string::npos);
  EXPECT_NE(js.find("\"comm_matrix\""), std::string::npos);
  EXPECT_NE(js.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(js.find("\"ring\""), std::string::npos);

  std::ostringstream os;
  obs::write_metrics_json(os, rep);
  EXPECT_EQ(os.str(), js);
}

TEST(JsonNum, RoundTripsExactly) {
  // Shortest representation that strtod's back to the same bits; the
  // classic %.15g loss case is 0.1 + 0.2.
  for (double v : {0.1, 0.1 + 0.2, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                   -2.2250738585072014e-308, 0.0, -5.5, 123456789.0}) {
    const std::string s = obs::json_num(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    EXPECT_TRUE(JsonChecker(s).valid()) << s;
  }
  // Values %.15g already represents exactly stay short.
  EXPECT_EQ(obs::json_num(0.5), "0.5");
  EXPECT_EQ(obs::json_num(2.0), "2");
}

TEST(JsonNum, NonFiniteBecomesNull) {
  EXPECT_EQ(obs::json_num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_num(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_num(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_TRUE(JsonChecker("null").valid());
}

TEST(RunReport, UnknownPhaseImbalanceIsNeutral) {
  mp::RunReport rep;
  rep.ranks.resize(3);
  rep.ranks[0].phase_vtime["force computation"] = 1.0;
  const auto im = rep.phase_imbalance("no such phase");
  EXPECT_DOUBLE_EQ(im.max, 0.0);
  EXPECT_DOUBLE_EQ(im.mean, 0.0);
  EXPECT_DOUBLE_EQ(im.max_over_mean(), 1.0);
}

TEST(RunReport, SingleRankIsPerfectlyBalanced) {
  mp::RunReport rep;
  rep.ranks.resize(1);
  rep.ranks[0].vtime = 7.5;
  rep.ranks[0].phase_vtime["ring"] = 7.5;
  EXPECT_DOUBLE_EQ(rep.imbalance().max_over_mean(), 1.0);
  EXPECT_DOUBLE_EQ(rep.phase_imbalance("ring").max_over_mean(), 1.0);
  const auto m = rep.comm_matrix();
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0][0], 0u);
}

TEST(RunReport, SilentRankYieldsAllZeroMatrixRow) {
  mp::RunReport rep;
  rep.ranks.resize(3);
  // Rank 0 sent to rank 2 only; ranks 1 and 2 never sent (bytes_to stays
  // empty, shorter than p -- the matrix must zero-fill, not crash).
  rep.ranks[0].bytes_to = {0, 0, 64};
  const auto m = rep.comm_matrix();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0][2], 64u);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(m[1][d], 0u);
    EXPECT_EQ(m[2][d], 0u);
  }
}

TEST(RunReport, IdleAggregatesCollAndRecvWait) {
  mp::RunReport rep;
  rep.ranks.resize(2);
  rep.ranks[0].coll_wait = 1.0;
  rep.ranks[0].recv_wait = 0.5;
  rep.ranks[1].coll_wait = 0.25;
  const auto idle = rep.idle();
  EXPECT_DOUBLE_EQ(idle.max, 1.5);
  EXPECT_DOUBLE_EQ(idle.mean, 0.875);
}

TEST(Metrics, ImbalanceStatisticsMatchDefinition) {
  const mp::Imbalance im = mp::Imbalance::over({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(im.max, 3.0);
  EXPECT_DOUBLE_EQ(im.mean, 2.0);
  EXPECT_NEAR(im.stddev, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(im.max_over_mean(), 1.5);
  EXPECT_DOUBLE_EQ(mp::Imbalance{}.max_over_mean(), 1.0);
}

}  // namespace
}  // namespace bh
