// blocked_test.cpp -- parallel walker-vs-blocked parity for the sort-then-
// interact force pipeline (DESIGN.md section 13).
//
// The blocked traversal must be a pure wall-clock optimization: under the
// function-shipping engine it has to replay the walker's virtual-time
// schedule bit for bit -- same work counters, same shipping traffic, same
// per-rank virtual clocks, same phase breakdown -- with fields agreeing to
// rounding (its SoA batch kernels sum interaction lists in a different
// order). Each scheme is exercised because they stress different traversal
// paths: SPSA/SPDA ship across a static grid, DPDA walks costzones branch
// nodes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "parallel/formulations.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {
namespace {

using model::ParticleSet;
using model::Rng;

const geom::Box<3> kDomain{{{0, 0, 0}}, 100.0};

struct ParRun {
  mp::RunReport report;
  std::vector<double> potentials;
  std::vector<StepResult<3>> steps;  // per rank
};

struct ParCase {
  Scheme scheme;
  int nprocs;
  unsigned degree;
};

ParRun run_scheme(const ParticleSet<3>& global, const ParCase& pc,
                  tree::TraversalMode mode) {
  ParRun out;
  out.steps.resize(static_cast<std::size_t>(pc.nprocs));
  out.report = mp::run_spmd(
      pc.nprocs, mp::MachineModel::ncube2(), [&](mp::Communicator& c) {
        ParallelSimulation<3> sim(c, kDomain,
                                  {.scheme = pc.scheme,
                                   .clusters_per_axis = 4,
                                   .alpha = 0.67,
                                   .degree = pc.degree,
                                   .leaf_capacity = 4,
                                   .kind = tree::FieldKind::kBoth,
                                   .traversal = mode});
        sim.distribute(global);
        out.steps[static_cast<std::size_t>(c.rank())] = sim.step();
        const auto pots = sim.gather_potentials();  // collective
        if (c.rank() == 0) out.potentials = pots;
      });
  return out;
}

class BlockedParallelParity : public ::testing::TestWithParam<ParCase> {};

TEST_P(BlockedParallelParity, ReplaysWalkerScheduleExactly) {
  const auto pc = GetParam();
  Rng rng(31);
  const auto global =
      model::gaussian_mixture<3>(800, rng, 4, kDomain, 3.0);

  const auto walker = run_scheme(global, pc, tree::TraversalMode::kWalker);
  const auto blocked = run_scheme(global, pc, tree::TraversalMode::kBlocked);

  ASSERT_EQ(walker.report.ranks.size(), blocked.report.ranks.size());
  for (std::size_t r = 0; r < walker.report.ranks.size(); ++r) {
    const auto& rw = walker.report.ranks[r];
    const auto& rb = blocked.report.ranks[r];
    // Virtual clocks are derived purely from modeled work and message
    // traffic, both of which the blocked pipeline must reproduce exactly.
    EXPECT_EQ(rw.vtime, rb.vtime) << "rank " << r;
    EXPECT_EQ(rw.phase_vtime, rb.phase_vtime) << "rank " << r;

    const auto& sw = walker.steps[r];
    const auto& sb = blocked.steps[r];
    EXPECT_EQ(sw.force.local_work.mac_evals, sb.force.local_work.mac_evals);
    EXPECT_EQ(sw.force.local_work.interactions,
              sb.force.local_work.interactions);
    EXPECT_EQ(sw.force.local_work.direct_pairs,
              sb.force.local_work.direct_pairs);
    EXPECT_EQ(sw.force.shipped_work.mac_evals,
              sb.force.shipped_work.mac_evals);
    EXPECT_EQ(sw.force.shipped_work.interactions,
              sb.force.shipped_work.interactions);
    EXPECT_EQ(sw.force.shipped_work.direct_pairs,
              sb.force.shipped_work.direct_pairs);
    EXPECT_EQ(sw.force.items_shipped, sb.force.items_shipped);
    EXPECT_EQ(sw.force.items_served, sb.force.items_served);
    EXPECT_EQ(sw.force.bins_sent, sb.force.bins_sent);
    EXPECT_EQ(sw.local_load, sb.local_load);
  }

  ASSERT_EQ(walker.potentials.size(), blocked.potentials.size());
  for (std::size_t i = 0; i < walker.potentials.size(); ++i)
    ASSERT_NEAR(blocked.potentials[i], walker.potentials[i],
                1e-12 * std::max(1.0, std::abs(walker.potentials[i])))
        << "particle " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BlockedParallelParity,
    ::testing::Values(ParCase{Scheme::kSPSA, 4, 0},
                      ParCase{Scheme::kSPDA, 4, 0},
                      ParCase{Scheme::kSPDA, 3, 2},
                      ParCase{Scheme::kDPDA, 4, 0},
                      ParCase{Scheme::kDPDA, 8, 0}));

TEST(BlockedParallelParity, BlockedRunsAreDeterministic) {
  // Two identical blocked runs must agree bit for bit on everything the
  // modeled registry records -- virtual clocks, phase breakdown, work and
  // shipping traffic -- which is what the determinism CI job byte-diffs.
  // (Field low bits can vary run to run in EITHER traversal mode: remote
  // contributions accumulate in message-arrival order, and real-thread
  // scheduling breaks virtual-time ties. Fields are compared to rounding.)
  Rng rng(47);
  const auto global =
      model::gaussian_mixture<3>(600, rng, 3, kDomain, 3.0);
  const ParCase pc{Scheme::kDPDA, 4, 0};
  const auto a = run_scheme(global, pc, tree::TraversalMode::kBlocked);
  const auto b = run_scheme(global, pc, tree::TraversalMode::kBlocked);
  for (std::size_t r = 0; r < a.report.ranks.size(); ++r) {
    EXPECT_EQ(a.report.ranks[r].vtime, b.report.ranks[r].vtime);
    EXPECT_EQ(a.report.ranks[r].phase_vtime, b.report.ranks[r].phase_vtime);
    const auto& fa = a.steps[r].force;
    const auto& fb = b.steps[r].force;
    EXPECT_EQ(fa.local_work.flops(), fb.local_work.flops());
    EXPECT_EQ(fa.shipped_work.flops(), fb.shipped_work.flops());
    EXPECT_EQ(fa.items_shipped, fb.items_shipped);
    EXPECT_EQ(fa.items_served, fb.items_served);
    EXPECT_EQ(fa.bins_sent, fb.bins_sent);
  }
  ASSERT_EQ(a.potentials.size(), b.potentials.size());
  for (std::size_t i = 0; i < a.potentials.size(); ++i)
    ASSERT_NEAR(a.potentials[i], b.potentials[i],
                1e-12 * std::max(1.0, std::abs(a.potentials[i])))
        << "particle " << i;
}

}  // namespace
}  // namespace bh::par
