// Tests for the harness flag parser: declared-flag enforcement (unknown
// flags exit 2, --help exits 0), the three accepted flag forms, positional
// arguments and the built-in --trace/--metrics/--help declarations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.hpp"

namespace bh::harness {
namespace {

/// argv helper: keeps the strings alive for the duration of one Cli parse.
struct Argv {
  explicit Argv(std::vector<std::string> a) : args(std::move(a)) {
    for (auto& s : args) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> args;
  std::vector<char*> ptrs;
};

TEST(Cli, ParsesAllThreeFlagForms) {
  // A bare word after a flag is that flag's value, so the positional
  // argument comes first and the boolean flag last.
  Argv a({"prog", "input.csv", "--n", "42", "--alpha=0.5", "--verbose"});
  Cli cli(a.argc(), a.argv(), "test binary",
          {{"n", "N", "count"},
           {"alpha", "A", "opening criterion"},
           {"verbose", "", "print more"}});
  EXPECT_EQ(cli.get("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.get("verbose", false));
  EXPECT_FALSE(cli.get("quiet", false));
  EXPECT_EQ(cli.get("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
}

TEST(Cli, BuiltInObservabilityFlagsAlwaysAccepted) {
  Argv a({"prog", "--trace", "out.json", "--metrics=metrics.json"});
  Cli cli(a.argc(), a.argv(), "", {});
  EXPECT_EQ(cli.get("trace", std::string()), "out.json");
  EXPECT_EQ(cli.get("metrics", std::string()), "metrics.json");
}

TEST(Cli, DescribeListsDeclaredAndBuiltInFlags) {
  Argv a({"prog"});
  Cli cli(a.argc(), a.argv(), "does a thing",
          {{"n", "N", "particle count"}});
  const std::string d = cli.describe("prog");
  EXPECT_NE(d.find("usage: prog"), std::string::npos);
  EXPECT_NE(d.find("does a thing"), std::string::npos);
  EXPECT_NE(d.find("--n N"), std::string::npos);
  EXPECT_NE(d.find("particle count"), std::string::npos);
  EXPECT_NE(d.find("--trace PATH"), std::string::npos);
  EXPECT_NE(d.find("--metrics PATH"), std::string::npos);
  EXPECT_NE(d.find("--help"), std::string::npos);
}

TEST(Cli, NodeCacheFlagsParseInAllForms) {
  // The data-ship cache flags as declared by bench_cli / fig8_plummer:
  // string mode plus two integer depths, in both --flag value and
  // --flag=value forms, with async/3/2 as the documented defaults.
  Argv a({"prog", "--node-cache", "sync", "--pack-depth=4",
          "--prefetch-depth", "0"});
  Cli cli(a.argc(), a.argv(), "",
          {{"node-cache", "MODE",
            "data-ship remote-node cache: async (default) or sync"},
           {"pack-depth", "N", "subtree-pack depth below a missed node"},
           {"prefetch-depth", "N", "top-tree prefetch depth per owner"}});
  EXPECT_EQ(cli.get("node-cache", std::string("async")), "sync");
  EXPECT_EQ(cli.get("pack-depth", 3), 4);
  EXPECT_EQ(cli.get("prefetch-depth", 2), 0);

  Argv d({"prog"});
  Cli defaults(d.argc(), d.argv(), "",
               {{"node-cache", "MODE", "cache mode"},
                {"pack-depth", "N", "pack depth"},
                {"prefetch-depth", "N", "prefetch depth"}});
  EXPECT_EQ(defaults.get("node-cache", std::string("async")), "async");
  EXPECT_EQ(defaults.get("pack-depth", 3), 3);
  EXPECT_EQ(defaults.get("prefetch-depth", 2), 2);
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, UnknownFlagExitsWithCode2) {
  Argv a({"prog", "--procss", "16"});
  EXPECT_EXIT(Cli(a.argc(), a.argv(), "", {{"procs", "P", "ranks"}}),
              ::testing::ExitedWithCode(2), "unknown flag --procss");
}

TEST(CliDeathTest, UnknownBooleanFlagAlsoRejected) {
  Argv a({"prog", "--bogus"});
  EXPECT_EXIT(Cli(a.argc(), a.argv(), "", {}),
              ::testing::ExitedWithCode(2), "unknown flag --bogus");
}

TEST(CliDeathTest, HelpExitsWithCodeZero) {
  Argv a({"prog", "--help"});
  // Help goes to stdout (stderr stays empty, hence the empty matcher).
  EXPECT_EXIT(Cli(a.argc(), a.argv(), "about", {{"n", "N", "count"}}),
              ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, HelpWinsOverUnknownFlags) {
  Argv a({"prog", "--definitely-not-a-flag", "--help"});
  EXPECT_EXIT(Cli(a.argc(), a.argv(), "", {}),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace bh::harness
