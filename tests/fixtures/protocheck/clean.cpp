// Fixture: zero findings. Registry constants at every tag position, a
// typed send matching the declared payload, recv evidence for everything
// sent, collectives reached by all ranks, balanced phases. Never compiled;
// scanned by bh_protocheck in protocheck_test.
namespace proto {
inline constexpr int kTagFuncRequest = 100;
}

struct ShipItem {
  double pos[3];
};

struct Message {
  int tag;
};

struct Comm {
  int rank() const;
  void barrier();
  void phase_begin(const char* name);
  void phase_end(const char* name);
  template <typename T>
  void send_stamped(int dst, int tag, const T* items, double stamp);
  Message recv_any(int src, int tag);
};

void fixture_clean(Comm& c, const ShipItem* items) {
  c.phase_begin("force computation");
  c.send_stamped<ShipItem>(1, proto::kTagFuncRequest, items, 0.0);
  Message m = c.recv_any(0, proto::kTagFuncRequest);
  if (c.rank() == 0) {
    // rank-conditional work is fine as long as it contains no collective
    int local = m.tag;
    (void)local;
  }
  c.barrier();
  c.phase_end("force computation");
}
