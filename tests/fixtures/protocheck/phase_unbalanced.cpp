// Fixture: trips exactly [phase-balance]. A phase_begin never closed by
// phase_end in the same file. Never compiled; scanned by bh_protocheck in
// protocheck_test.
struct Comm {
  void phase_begin(const char* name);
  void phase_end(const char* name);
};

void fixture_phase(Comm& c) {
  c.phase_begin("force computation");  // seeded violation: never ended
}
