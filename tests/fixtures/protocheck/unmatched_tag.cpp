// Fixture: trips exactly [unmatched-tag]. kTagFetch is sent but no
// scanned code ever receives it (no recv site, no tag dispatch).
// Never compiled; scanned by bh_protocheck in protocheck_test.
namespace proto {
inline constexpr int kTagFetch = 110;
}

struct Comm {
  void send_value(int dst, int tag, unsigned long long key);
};

void fixture_unmatched(Comm& c) {
  c.send_value(1, proto::kTagFetch, 0ull);  // seeded violation: no receiver
}
