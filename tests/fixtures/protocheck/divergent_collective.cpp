// Fixture: trips exactly [divergent-collective]. A barrier lexically
// inside a rank-conditional branch -- ranks that skip the branch never
// reach the rendezvous. Never compiled; scanned by bh_protocheck in
// protocheck_test.
struct Comm {
  int rank() const;
  void barrier();
};

void fixture_divergent(Comm& c) {
  if (c.rank() == 0) {
    c.barrier();  // seeded violation: only rank 0 reaches this
  }
}
