// Fixture: trips exactly [payload-mismatch]. kTagFuncRequest is declared
// in the registry with payload 'ShipItem', but this typed send ships
// doubles. The dispatch below supplies recv evidence so unmatched-tag
// stays quiet. Never compiled; scanned by bh_protocheck in protocheck_test.
namespace proto {
inline constexpr int kTagFuncRequest = 100;
}

struct Message {
  int tag;
};

struct Comm {
  template <typename T>
  void send_stamped(int dst, int tag, const T* items, double stamp);
  Message recv_any();
};

void fixture_payload(Comm& c, const double* xs) {
  // seeded violation: registry payload for this tag is 'ShipItem'
  c.send_stamped<double>(2, proto::kTagFuncRequest, xs, 0.0);
  Message m = c.recv_any();
  if (m.tag == proto::kTagFuncRequest) {
    // handle
  }
}
