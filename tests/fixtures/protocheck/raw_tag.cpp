// Fixture: trips exactly [raw-tag]. A bare integer literal in the tag
// position of a send call site -- the tag must be a registry constant.
// Never compiled; scanned by bh_protocheck in protocheck_test.
struct Comm {
  void send_value(int dst, int tag, int v);
};

void fixture_raw_tag(Comm& c) {
  c.send_value(1, 7, 42);  // seeded violation: literal tag 7
}
