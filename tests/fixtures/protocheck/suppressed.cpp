// Fixture: one seeded violation of every rule, each silenced by a
// `bh-protocheck: allow(...)` comment on the same or preceding line.
// Expected: zero findings, six suppressions (both sends are also
// unmatched). Never compiled; scanned by bh_protocheck in protocheck_test.
namespace proto {
inline constexpr int kTagFetch = 110;
inline constexpr int kTagFuncRequest = 100;
}

struct Comm {
  int rank() const;
  void barrier();
  void phase_begin(const char* name);
  void send_value(int dst, int tag, int v);
  template <typename T>
  void send_stamped(int dst, int tag, const T* items, double stamp);
};

void fixture_suppressed(Comm& c, const double* xs) {
  // bh-protocheck: allow(raw-tag)
  c.send_value(1, 7, 0);

  // bh-protocheck: allow(unmatched-tag)
  c.send_value(1, proto::kTagFetch, 0);

  // bh-protocheck: allow(payload-mismatch, unmatched-tag)
  c.send_stamped<double>(2, proto::kTagFuncRequest, xs, 0.0);

  if (c.rank() == 0) {
    c.barrier();  // bh-protocheck: allow(divergent-collective)
  }

  c.phase_begin("force computation");  // bh-protocheck: allow(phase-balance)
}
