// Accuracy regression tests pinned to the paper's evaluation trends
// (Tables 6-7 / Fig. 9), including the expansion-divergence guard: a
// COM-centered expansion may not be evaluated inside its cluster radius
// even when the alpha-MAC accepts the node.
#include <gtest/gtest.h>

#include "model/distributions.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {
namespace {

using model::ParticleSet;
using model::Rng;

double sweep_error(const ParticleSet<3>& base,
                   const std::vector<double>& exact, unsigned degree,
                   double alpha) {
  ParticleSet<3> ps = base;
  auto t = build_tree(ps, {{{0, 0, 0}}, 100.0},
                      {.leaf_capacity = 8, .degree = degree});
  compute_fields(t, ps,
                 {.alpha = alpha, .kind = FieldKind::kPotential,
                  .use_expansions = degree > 0});
  return fractional_error(ps.potential, exact);
}

class DegreeMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(DegreeMonotonicity, ErrorFallsMonotonicallyThroughDegreeSix) {
  // Regression for the COM-expansion divergence bug: without the rmax
  // guard, errors *rose* again at degree >= 5.
  const double alpha = GetParam();
  const auto base = model::make_instance("p_63192", 0.03);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev = 1e9;
  for (unsigned degree : {2u, 3u, 4u, 5u, 6u}) {
    const double err = sweep_error(base, exact.potential, degree, alpha);
    EXPECT_LT(err, prev * 1.05) << "degree " << degree << " alpha " << alpha;
    prev = err;
  }
  // Final accuracy scales with alpha (alpha = 1 accepts wider nodes whose
  // degree-6 truncation is coarser).
  EXPECT_LT(prev, alpha < 0.9 ? 5e-5 : 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DegreeMonotonicity,
                         ::testing::Values(0.5, 0.67, 0.8, 1.0));

TEST(RmaxInvariant, EveryParticleInsideItsAncestorsRadius) {
  Rng rng(61);
  auto ps = model::plummer<3>(2000, rng);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 4});
  // For every node, every particle under it lies within rmax of the COM.
  for (const auto& n : t.nodes) {
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
      const auto pi = t.perm[s];
      ASSERT_LE(geom::norm(ps.pos[pi] - n.com), n.rmax * (1.0 + 1e-12));
    }
  }
}

TEST(RmaxInvariant, ChildRadiiNestedInParent) {
  Rng rng(62);
  auto ps = model::gaussian_mixture<3>(1500, rng, 3, {{{0, 0, 0}}, 100.0},
                                       2.0);
  auto t = build_tree(ps, {{{0, 0, 0}}, 100.0}, {.leaf_capacity = 2});
  for (const auto& n : t.nodes) {
    if (n.is_leaf) continue;
    for (auto c : n.child) {
      if (c == kNullNode || t.nodes[c].count == 0) continue;
      ASSERT_LE(geom::norm(t.nodes[c].com - n.com) + t.nodes[c].rmax,
                n.rmax * (1.0 + 1e-12));
    }
  }
}

TEST(AlphaSweep, ErrorGrowsAndWorkShrinksAtDegreeFour) {
  // Table 7's two monotone trends, at the paper's degree.
  const auto base = model::make_instance("p_63192", 0.03);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev_err = 0.0;
  std::uint64_t prev_work = ~0ull;
  for (double alpha : {0.67, 0.80, 1.0}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, {{{0, 0, 0}}, 100.0},
                        {.leaf_capacity = 8, .degree = 4});
    const auto w = compute_fields(
        t, ps, {.alpha = alpha, .kind = FieldKind::kPotential});
    const double err = fractional_error(ps.potential, exact.potential);
    EXPECT_GE(err, prev_err) << alpha;
    EXPECT_LE(w.interactions + w.direct_pairs, prev_work) << alpha;
    prev_err = err;
    prev_work = w.interactions + w.direct_pairs;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(FlopModel, RuntimeGrowsQuadraticallyWithDegree) {
  // Fig. 9's runtime curve comes straight from the paper's 13 + 16 k^2
  // interaction cost; verify the modeled flops follow it for a fixed
  // interaction set.
  const auto base = model::make_instance("p_63192", 0.02);
  std::vector<std::uint64_t> flops;
  for (unsigned degree : {3u, 4u, 5u}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, {{{0, 0, 0}}, 100.0},
                        {.leaf_capacity = 8, .degree = degree});
    auto w = compute_fields(
        t, ps, {.alpha = 0.67, .kind = FieldKind::kPotential});
    w.degree = degree;
    flops.push_back(w.flops());
  }
  // Ratios should track (13 + 16k^2): 269 : 413 for k=4:5 etc. Within 25%
  // (interaction sets differ slightly through the rmax guard).
  const double r45 = double(flops[2]) / double(flops[1]);
  const double expect45 = (13.0 + 16 * 25) / (13.0 + 16 * 16);
  EXPECT_NEAR(r45, expect45, 0.25 * expect45);
}

}  // namespace
}  // namespace bh::tree
