// Tests for the shared deterministic ship layer (src/parallel/ship/):
// BinSet's sealed-bin flow control and reentrancy contract, Termination's
// monotone vote, Progress's rank-ordered drain and order-independent
// service accounting, and the end product -- bit-identical virtual time for
// the shipping engines across reruns.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "model/distributions.hpp"
#include "mp/machine.hpp"
#include "mp/runtime.hpp"
#include "parallel/dataship.hpp"
#include "parallel/formulations.hpp"
#include "parallel/ship/binset.hpp"
#include "parallel/ship/progress.hpp"
#include "parallel/ship/termination.hpp"

namespace bh::par {
namespace {

const geom::Box<3> kDomain{{{0, 0, 0}}, 100.0};

model::ParticleSet<3> mixture(std::size_t n, std::uint64_t seed = 31) {
  model::Rng rng(seed);
  return model::gaussian_mixture<3>(n, rng, 4, kDomain, 3.0);
}

// ---------------------------------------------------------------------------
// BinSet
// ---------------------------------------------------------------------------

using IntBins = ship::BinSet<int>;

TEST(BinSetT, SealsAtBinSizeAndDefaultsHardCap) {
  IntBins bins(2, 3);
  EXPECT_EQ(bins.bin_size(), 3);
  EXPECT_EQ(bins.hard_cap(), ship::kDefaultHardCapBins * 3);
  IntBins capped(2, 3, 7);
  EXPECT_EQ(capped.hard_cap(), 7);

  EXPECT_EQ(bins.push(1, 10, 1.0), IntBins::Event::kNone);
  EXPECT_EQ(bins.push(1, 11, 2.0), IntBins::Event::kNone);
  EXPECT_EQ(bins.push(1, 12, 3.0), IntBins::Event::kSealed);
  const auto* r = bins.ready(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->items.size(), 3u);
  EXPECT_DOUBLE_EQ(r->seal_vtime, 3.0);  // clock at the sealing push
}

TEST(BinSetT, DeferredBinShipsExactlyOnceAfterAck) {
  // Regression for the PR-1 empty-bin bug: a bin sealed while its
  // predecessor is outstanding must ship exactly once when the ack lands,
  // and an empty bin must never become shippable.
  IntBins bins(4, 2);
  bins.push(2, 1, 1.0);
  bins.push(2, 2, 1.0);
  auto first = bins.take_ready(2);
  EXPECT_EQ(first.items.size(), 2u);
  EXPECT_TRUE(bins.outstanding(2));

  // Second bin seals while the first is unacknowledged: deferred.
  bins.push(2, 3, 2.0);
  bins.push(2, 4, 2.0);
  EXPECT_EQ(bins.ready(2), nullptr);  // flow control holds it

  // The ack releases it -- once.
  EXPECT_TRUE(bins.ack(2, 5.0));
  ASSERT_NE(bins.ready(2), nullptr);
  auto second = bins.take_ready(2);
  EXPECT_EQ(second.items.size(), 2u);
  EXPECT_TRUE(bins.outstanding(2));
  EXPECT_EQ(bins.ready(2), nullptr);  // nothing left to double-ship

  // Acking with nothing sealed reports no deferred work, and sealing an
  // empty open bin is a no-op (the empty-ship hole).
  EXPECT_FALSE(bins.ack(2, 6.0));
  EXPECT_FALSE(bins.seal_open(2, 7.0));
  EXPECT_TRUE(bins.idle(2));
}

TEST(BinSetT, ShipStampIgnoresPhysicalAckTiming) {
  // The stamp is max(seal vtime, last ack arrival) regardless of whether
  // the ack was recorded before or after the bin sealed.
  auto stamp_with = [](bool ack_first) {
    IntBins bins(2, 2);
    bins.push(0, 1, 1.0);
    bins.push(0, 2, 1.5);
    (void)bins.take_ready(0);
    if (ack_first) {
      bins.ack(0, 9.0);
      bins.push(0, 3, 2.0);
      bins.push(0, 4, 2.5);
    } else {
      bins.push(0, 3, 2.0);
      bins.push(0, 4, 2.5);
      bins.ack(0, 9.0);
    }
    return bins.ship_stamp(0);
  };
  EXPECT_DOUBLE_EQ(stamp_with(true), stamp_with(false));
  EXPECT_DOUBLE_EQ(stamp_with(true), 9.0);  // ack-bound, not seal-bound
}

TEST(BinSetT, StallAtHardCapAndBufferAccounting) {
  IntBins bins(2, 2, 4);
  EXPECT_EQ(bins.push(1, 1, 0.0), IntBins::Event::kNone);
  EXPECT_EQ(bins.push(1, 2, 0.0), IntBins::Event::kSealed);
  (void)bins.take_ready(1);  // first bin in flight; buffer is empty again
  EXPECT_EQ(bins.buffered(1), 0);
  EXPECT_EQ(bins.push(1, 3, 0.0), IntBins::Event::kNone);
  EXPECT_EQ(bins.push(1, 4, 0.0), IntBins::Event::kSealed);  // 2 buffered
  EXPECT_EQ(bins.push(1, 5, 0.0), IntBins::Event::kNone);
  // Sealing the second deferred bin hits the 4-item working-set bound.
  EXPECT_EQ(bins.push(1, 6, 0.0), IntBins::Event::kStall);
  EXPECT_EQ(bins.buffered(1), 4);
}

// ---------------------------------------------------------------------------
// Termination
// ---------------------------------------------------------------------------

TEST(TerminationT, VoteIsMonotoneAcrossConsecutivePhases) {
  // Two back-to-back phases reuse one counter; the count observed by any
  // rank during a phase never decreases (monotone vote), and finish()
  // resets it for the next phase on every rank.
  mp::run_spmd(4, mp::MachineModel::ideal(), [](mp::Communicator& c) {
    for (int phase = 0; phase < 2; ++phase) {
      auto& done = c.shared_counter(3);
      EXPECT_EQ(done.load(), 0) << "phase " << phase;  // finish() reset it
      c.barrier();  // all ranks observe the reset before anyone votes
      long long last_seen = 0;
      ship::Termination term(c, 3);
      term.vote_and_drain([&] {
        const long long now = done.load();
        EXPECT_GE(now, last_seen);  // never decrements mid-phase
        last_seen = now;
        return false;  // no mail in this protocol-only test
      });
      EXPECT_EQ(done.load(), c.size());
      term.finish();
    }
  });
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

TEST(ProgressT, DrainsInRankThenTagOrderUnderAdversarialArrival) {
  // Senders post their mail in deliberately scrambled physical order (high
  // ranks first, high tags first, staggered by sleeps); once everything is
  // queued, the ordered drain must pop lowest (src, tag) first and FIFO
  // within each pair.
  mp::run_spmd(4, mp::MachineModel::ideal(), [](mp::Communicator& c) {
    constexpr int kTagA = 7, kTagB = 9;
    if (c.rank() != 0) {
      // Rank 3 sends immediately, rank 1 last -- reverse of drain order.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(3 * (3 - c.rank())));
      for (int i = 0; i < 2; ++i) c.send_value(0, kTagB, 100 * c.rank() + i);
      for (int i = 0; i < 2; ++i) c.send_value(0, kTagA, 100 * c.rank() + i);
    }
    c.barrier();  // all twelve messages are queued at rank 0 past this

    if (c.rank() == 0) {
      ship::Progress progress(c);
      std::vector<std::pair<int, int>> order;
      std::vector<int> payloads;
      while (auto m = progress.next()) {
        order.emplace_back(m->src, m->tag);
        payloads.push_back(mp::Communicator::unpack<int>(*m)[0]);
      }
      ASSERT_EQ(order.size(), 12u);
      for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(order[i - 1], order[i]) << "at " << i;  // (src, tag) order
      const std::vector<int> want{100, 101, 100, 101, 200, 201,
                                  200, 201, 300, 301, 300, 301};
      EXPECT_EQ(payloads, want);  // FIFO within each (src, tag) pair
    }
    c.barrier();
  });
}

TEST(ProgressT, ServiceAccountingIsOrderIndependent) {
  // Serving the same per-source request sequences in different global
  // interleaves must produce bit-identical reply stamps and an identical
  // folded clock.
  struct Req {
    int src;
    double arrival;
    std::uint64_t flops;
  };
  const std::vector<Req> a{{1, 1e-4, 500}, {2, 2e-4, 300},
                           {1, 4e-4, 200}, {2, 5e-4, 100}};
  const std::vector<Req> b{{2, 2e-4, 300}, {2, 5e-4, 100},
                           {1, 1e-4, 500}, {1, 4e-4, 200}};

  auto run = [](const std::vector<Req>& reqs) {
    std::vector<double> stamps;
    double clock = 0.0;
    mp::run_spmd(3, mp::MachineModel::ncube2(), [&](mp::Communicator& c) {
      if (c.rank() != 0) return;
      ship::Progress progress(c);
      for (const auto& r : reqs)
        stamps.push_back(progress.serve(r.src, r.arrival, r.flops));
      progress.fold();
      clock = c.vtime();
    });
    // Per-source stamp sequences, independent of the interleave.
    std::map<int, std::vector<double>> by_src;
    for (std::size_t i = 0; i < reqs.size(); ++i)
      by_src[reqs[i].src].push_back(stamps[i]);
    return std::pair{by_src, clock};
  };

  const auto [stamps_a, clock_a] = run(a);
  const auto [stamps_b, clock_b] = run(b);
  EXPECT_EQ(stamps_a, stamps_b);  // bitwise: lanes fold per source
  EXPECT_EQ(clock_a, clock_b);    // bitwise: integer-count fold
  EXPECT_GT(clock_a, 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end determinism of the engines
// ---------------------------------------------------------------------------

/// One SPDA step on a costful machine; returns every rank's force-phase
/// virtual time plus the engine's stall count (the two quantities the old
/// engines computed nondeterministically).
std::pair<std::vector<double>, std::uint64_t> spda_force_times(int bin_size) {
  const auto global = mixture(2000);
  std::vector<double> vt(8, 0.0);
  std::uint64_t stalls = 0;
  std::mutex mu;
  mp::run_spmd(8, mp::MachineModel::ncube2(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .bin_size = bin_size});
    sim.distribute(global);
    const auto res = sim.step();
    const auto it = c.stats().phase_vtime.find(kPhaseForce);
    ASSERT_NE(it, c.stats().phase_vtime.end());
    std::lock_guard<std::mutex> lk(mu);
    vt[static_cast<std::size_t>(c.rank())] = it->second;
    stalls += res.force.stalls;
  });
  return {vt, stalls};
}

TEST(ShipDeterminism, FuncshipVirtualTimeBitIdenticalAcrossRuns) {
  // A small bin size maximizes messaging (seals, deferred bins, stalls);
  // every rank's modeled force time must still be bit-identical between
  // two runs that differ only in thread scheduling.
  const auto [vt1, stalls1] = spda_force_times(/*bin_size=*/8);
  const auto [vt2, stalls2] = spda_force_times(/*bin_size=*/8);
  for (std::size_t r = 0; r < vt1.size(); ++r)
    EXPECT_EQ(vt1[r], vt2[r]) << "rank " << r;  // exact, not NEAR
  EXPECT_EQ(stalls1, stalls2);
  EXPECT_GT(vt1[0], 0.0);
}

TEST(ShipDeterminism, DatashipVirtualTimeBitIdenticalAcrossRuns) {
  const auto global = mixture(1500, /*seed=*/77);
  auto run = [&] {
    std::vector<double> vt(6, 0.0);
    std::mutex mu;
    mp::run_spmd(6, mp::MachineModel::ncube2(), [&](mp::Communicator& c) {
      ParallelSimulation<3> sim(c, kDomain,
                                {.scheme = Scheme::kSPDA,
                                 .clusters_per_axis = 4});
      sim.distribute(global);
      sim.step();
      auto& dt = const_cast<DistTree<3>&>(sim.dist_tree());
      dt.particles.zero_accumulators();
      c.phase_begin("dataship");
      compute_forces_dataship<3>(
          c, dt, {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                  .done_counter = 1});
      c.phase_end("dataship");
      const auto it = c.stats().phase_vtime.find("dataship");
      ASSERT_NE(it, c.stats().phase_vtime.end());
      std::lock_guard<std::mutex> lk(mu);
      vt[static_cast<std::size_t>(c.rank())] = it->second;
    });
    return vt;
  };
  const auto vt1 = run();
  const auto vt2 = run();
  for (std::size_t r = 0; r < vt1.size(); ++r)
    EXPECT_EQ(vt1[r], vt2[r]) << "rank " << r;
  EXPECT_GT(vt1[0], 0.0);
}

}  // namespace
}  // namespace bh::par
