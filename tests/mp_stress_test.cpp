// Stress and ordering tests for the message-passing runtime: heavy
// point-to-point traffic, repeated collectives on one rendezvous board,
// per-pair FIFO ordering, and mixed tag workloads like the force phase's.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "mp/machine.hpp"
#include "mp/runtime.hpp"

namespace bh::mp {
namespace {

TEST(MpStress, PerPairFifoOrdering) {
  // Messages between one (src, dst, tag) pair must arrive in send order.
  run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
    constexpr int kN = 500;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send_value(1, 3, i);
    } else {
      for (int i = 0; i < kN; ++i) {
        auto m = c.recv_any(0, 3);
        ASSERT_EQ(Communicator::unpack<int>(m)[0], i);
      }
    }
  });
}

TEST(MpStress, ManyToOneStorm) {
  // Every rank floods rank 0; totals must balance exactly.
  const int p = 8;
  run_spmd(p, MachineModel::ideal(), [p](Communicator& c) {
    constexpr int kPer = 200;
    if (c.rank() == 0) {
      long long sum = 0;
      for (int i = 0; i < kPer * (p - 1); ++i) {
        auto m = c.recv_any();
        sum += Communicator::unpack<long long>(m)[0];
      }
      // Each rank r sends kPer copies of r.
      long long expect = 0;
      for (int r = 1; r < p; ++r) expect += 1ll * r * kPer;
      EXPECT_EQ(sum, expect);
    } else {
      for (int i = 0; i < kPer; ++i)
        c.send_value<long long>(0, 1, c.rank());
    }
  });
}

TEST(MpStress, RepeatedCollectivesReuseBoard) {
  // Hundreds of back-to-back collectives of varying kinds and sizes must
  // not corrupt the rendezvous board's generations.
  run_spmd(6, MachineModel::cm5(), [](Communicator& c) {
    std::mt19937_64 rng(100 + c.rank());
    for (int round = 0; round < 150; ++round) {
      const int what = round % 4;
      switch (what) {
        case 0: {
          const auto all = c.all_gather(round * 10 + c.rank());
          for (int r = 0; r < c.size(); ++r)
            ASSERT_EQ(all[r], round * 10 + r);
          break;
        }
        case 1: {
          ASSERT_EQ(c.all_reduce_sum(1), c.size());
          break;
        }
        case 2: {
          // Variable-size contribution: rank r sends (round + r) % 5 items.
          std::vector<int> mine((round + c.rank()) % 5, c.rank());
          const auto all = c.all_gatherv<int>(mine);
          for (int r = 0; r < c.size(); ++r)
            ASSERT_EQ(all[r].size(),
                      static_cast<std::size_t>((round + r) % 5));
          break;
        }
        default:
          c.barrier();
      }
    }
  });
}

TEST(MpStress, PersonalizedLargePayloads) {
  run_spmd(4, MachineModel::ncube2(), [](Communicator& c) {
    std::vector<std::vector<double>> out(c.size());
    for (int d = 0; d < c.size(); ++d)
      out[d].assign(1000 + 100 * d, double(c.rank() * 10 + d));
    const auto in = c.all_to_all(out);
    for (int s = 0; s < c.size(); ++s) {
      ASSERT_EQ(in[s].size(), 1000u + 100u * static_cast<unsigned>(c.rank()));
      for (double v : in[s]) ASSERT_EQ(v, double(s * 10 + c.rank()));
    }
  });
}

TEST(MpStress, InterleavedTagsDrainIndependently) {
  // The force phase interleaves request and reply tags; draining one tag
  // must not disturb queued messages of the other.
  run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
    constexpr int kN = 100;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        c.send_value(1, 100, i);        // "requests"
        c.send_value(1, 101, 1000 + i); // "replies"
      }
    } else {
      // Drain all replies first, then all requests.
      for (int i = 0; i < kN; ++i) {
        auto m = c.recv_any(0, 101);
        ASSERT_EQ(Communicator::unpack<int>(m)[0], 1000 + i);
      }
      for (int i = 0; i < kN; ++i) {
        auto m = c.recv_any(0, 100);
        ASSERT_EQ(Communicator::unpack<int>(m)[0], i);
      }
    }
  });
}

TEST(MpStress, NotBeforeStampsRespectFloor) {
  run_spmd(2, MachineModel::ncube2(), [](Communicator& c) {
    if (c.rank() == 0) {
      const double future = 123.0;
      const int v = 7;
      c.send<int>(1, 0, std::span<const int>(&v, 1), future);
    } else {
      auto m = c.recv_any(0, 0);
      // Arrival must be at least the floor plus transit.
      EXPECT_GE(c.vtime(), 123.0);
      (void)m;
    }
  });
}

TEST(MpStress, SharedCountersResetBetweenPhases) {
  run_spmd(4, MachineModel::ideal(), [](Communicator& c) {
    for (int phase = 0; phase < 5; ++phase) {
      auto& cnt = c.shared_counter(2);
      cnt.fetch_add(1);
      while (cnt.load() < c.size()) std::this_thread::yield();
      c.barrier();
      cnt.store(0);
      c.barrier();
      // Reaching kSize again next phase proves the reset took effect; a
      // direct assert here would race with a fast rank's next increment.
    }
  });
}

TEST(MpStress, HypercubeHopsChargeLatency) {
  // On the hypercube model, rank 0 -> rank 3 is two hops; 0 -> 1 is one.
  const auto m = MachineModel::ncube2();
  double t_far = 0.0, t_near = 0.0;
  run_spmd(4, m, [&](Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(3, 0, 1);
      c.send_value(1, 0, 1);
    } else if (c.rank() == 3) {
      (void)c.recv_any(0, 0);
      t_far = c.vtime();
    } else if (c.rank() == 1) {
      (void)c.recv_any(0, 0);
      t_near = c.vtime();
    }
  });
  // Rank 0 sends far first, near second, paying t_s sender overhead
  // between them: t_far = t_s + (t_s + 4 t_w + 2 t_h) and
  // t_near = 2 t_s + (t_s + 4 t_w + t_h), so the gap is t_h - t_s.
  EXPECT_NEAR(t_far - t_near, m.t_h - m.t_s, 1e-12);
}

}  // namespace
}  // namespace bh::mp
