// Tests for the particle model and the workload generators that regenerate
// the paper's experimental instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/distributions.hpp"
#include "model/flops.hpp"
#include "model/particle.hpp"

namespace bh::model {
namespace {

TEST(ParticleSet, BasicOperations) {
  ParticleSet<3> s;
  EXPECT_TRUE(s.empty());
  s.push_back({{1, 2, 3}}, {{0, 0, 1}}, 2.0, 7);
  s.push_back({{4, 5, 6}}, {}, 3.0, 8);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.total_mass(), 5.0);
  ParticleSet<3> t;
  t.append_from(s, 1);
  EXPECT_EQ(t.id[0], 8u);
  EXPECT_DOUBLE_EQ(t.mass[0], 3.0);
  s.acc[0] = {{1, 1, 1}};
  s.potential[0] = 9.0;
  s.zero_accumulators();
  EXPECT_EQ(s.acc[0], (geom::Vec<3>{}));
  EXPECT_EQ(s.potential[0], 0.0);
}

TEST(ParticleSet, RecordRoundTrip) {
  ParticleSet<3> s;
  s.push_back({{1, 2, 3}}, {{4, 5, 6}}, 2.5, 42);
  const auto r = record_of(s, 0);
  ParticleSet<3> t;
  push_record(t, r);
  EXPECT_EQ(t.pos[0], s.pos[0]);
  EXPECT_EQ(t.vel[0], s.vel[0]);
  EXPECT_EQ(t.mass[0], s.mass[0]);
  EXPECT_EQ(t.id[0], 42u);
}

TEST(Plummer, MassNormalizedAndCentered) {
  Rng rng(1);
  const auto s = plummer<3>(20000, rng, 1.0, {{50, 50, 50}});
  EXPECT_EQ(s.size(), 20000u);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-9);
  geom::Vec<3> mean{};
  for (const auto& p : s.pos) mean += p;
  mean /= double(s.size());
  for (int a = 0; a < 3; ++a) EXPECT_NEAR(mean[a], 50.0, 0.5);
}

TEST(Plummer, HalfMassRadiusMatchesProfile) {
  // Plummer half-mass radius = a / sqrt(2^{2/3} - 1) ~ 1.3048 a.
  Rng rng(2);
  const auto s = plummer<3>(40000, rng, 1.0);
  std::vector<double> r(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) r[i] = geom::norm(s.pos[i]);
  std::nth_element(r.begin(), r.begin() + r.size() / 2, r.end());
  const double rh = r[r.size() / 2];
  EXPECT_NEAR(rh, 1.3048, 0.05);
}

TEST(Plummer, VelocitiesBelowEscape) {
  Rng rng(3);
  const auto s = plummer<3>(5000, rng, 1.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double r = geom::norm(s.pos[i]);
    const double vesc = std::sqrt(2.0) * std::pow(r * r + 1.0, -0.25);
    ASSERT_LE(geom::norm(s.vel[i]), vesc * (1 + 1e-9));
  }
}

TEST(Gaussian, BlobSpreadMatchesSigma) {
  Rng rng(4);
  const auto s = gaussian_blob<3>(30000, rng, {{10, 10, 10}}, 2.0);
  double var = 0.0;
  for (const auto& p : s.pos) var += geom::norm2(p - geom::Vec<3>{{10, 10, 10}});
  var /= (3.0 * double(s.size()));
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Gaussian, MixtureSplitsEvenly) {
  Rng rng(5);
  const auto s = gaussian_mixture<3>(10000, rng, 10, {{{0, 0, 0}}, 100.0},
                                     0.5);
  EXPECT_EQ(s.size(), 10000u);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-9);
}

TEST(Uniform, StaysInDomain) {
  Rng rng(6);
  const geom::Box<3> box{{{-5, -5, -5}}, 10.0};
  const auto s = uniform_box<3>(5000, rng, box);
  for (const auto& p : s.pos) ASSERT_TRUE(box.contains(p));
}

TEST(Instances, CatalogueCoversEveryTable) {
  const auto& cat = paper_instances();
  auto has = [&](const char* n) {
    return std::any_of(cat.begin(), cat.end(),
                       [&](const auto& s) { return s.name == n; });
  };
  // Table 1-3 instances.
  EXPECT_TRUE(has("g_160535"));
  EXPECT_TRUE(has("g_326214"));
  EXPECT_TRUE(has("g_657499"));
  EXPECT_TRUE(has("g_1192768"));
  EXPECT_TRUE(has("g_28131"));
  // Table 5-7 instances.
  EXPECT_TRUE(has("p_63192"));
  EXPECT_TRUE(has("p_353992"));
  // Table 4 irregularity instances.
  EXPECT_TRUE(has("s_1g_a"));
  EXPECT_TRUE(has("s_1g_b"));
  EXPECT_TRUE(has("s_10g_a"));
  EXPECT_TRUE(has("s_10g_b"));
}

TEST(Instances, ScaledCountsAndDeterminism) {
  const auto a = make_instance("s_10g_a", 0.1);
  EXPECT_EQ(a.size(), 2513u);
  const auto b = make_instance("s_10g_a", 0.1);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.pos[i], b.pos[i]);
}

TEST(Instances, IrregularityOrdering) {
  // s_1g_a (one tight Gaussian) must be more concentrated than s_10g_b
  // (ten wide Gaussians): compare the fraction of particles inside the
  // densest 2x2x2 cell.
  auto concentration = [](const ParticleSet<3>& s) {
    // Fraction of particles within 1.0 of the mean of the largest blob --
    // approximate via median position distance.
    geom::Vec<3> mean{};
    for (const auto& p : s.pos) mean += p;
    mean /= double(s.size());
    std::size_t close = 0;
    for (const auto& p : s.pos)
      if (geom::norm(p - mean) < 2.0) ++close;
    return double(close) / double(s.size());
  };
  const auto tight = make_instance("s_1g_a", 0.2);
  const auto loose = make_instance("s_10g_b", 0.2);
  EXPECT_GT(concentration(tight), concentration(loose));
}

TEST(Instances, UnknownNameThrows) {
  EXPECT_THROW(make_instance("g_nonexistent"), std::out_of_range);
}

TEST(Flops, PaperOperationCounts) {
  // Section 5.2.1's exact numbers.
  EXPECT_EQ(kMacFlops, 14u);
  EXPECT_EQ(interaction_flops(0), 13u);
  EXPECT_EQ(interaction_flops(4), 13u + 16u * 16u);
  EXPECT_EQ(interaction_flops(6), 13u + 36u * 16u);
  WorkCounter w{.mac_evals = 2, .interactions = 3, .direct_pairs = 5,
                .degree = 4};
  EXPECT_EQ(w.flops(), 2 * 14 + 3 * (13 + 256) + 5 * 13u);
  WorkCounter w2{.mac_evals = 1, .interactions = 1, .direct_pairs = 0,
                 .degree = 0};
  w += w2;
  EXPECT_EQ(w.mac_evals, 3u);
  EXPECT_EQ(w.interactions, 4u);
}

}  // namespace
}  // namespace bh::model
