// trace_race_test.cpp -- race-detector coverage for obs::Tracer.
//
// The tracer's thread contract (obs/trace.hpp): each RankTracer is
// single-writer from its own rank thread with no synchronization, while the
// tag-name registry on the owning Tracer is shared and mutex-protected.
// These tests exist to put that contract under tsan (the tsan preset / CI
// job runs them): many rank threads appending to their private buffers
// while all of them hammer name_tag()/tag_name() concurrently, and a full
// traced + validated run_spmd where every rank registers the protocol
// registry's tag names at once.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mp/protocol.hpp"
#include "mp/runtime.hpp"
#include "obs/trace.hpp"

namespace {

using namespace bh;

TEST(TraceRace, RankWritersAndSharedTagRegistry) {
  constexpr int kRanks = 8;
  constexpr int kIters = 2000;
  obs::Tracer tracer(kRanks);

  std::vector<std::thread> threads;
  threads.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&tracer, r] {
      auto& rt = tracer.rank(r);
      for (int i = 0; i < kIters; ++i) {
        const double vt = i * 1e-6;
        rt.phase_begin("stress", vt);
        rt.send((r + 1) % kRanks, i % 64, 64, vt);
        rt.recv((r + 1) % kRanks, i % 64, 64, vt);
        rt.flops(1000, vt);
        rt.instant("tick", static_cast<std::uint64_t>(i), vt);
        // The shared registry: concurrent writes of the same keys from
        // every rank thread, interleaved with reads.
        rt.name_tag(i % 16, "tag." + std::to_string(i % 16));
        (void)tracer.tag_name((i + 8) % 16);
        rt.phase_end("stress", vt);
      }
      rt.flush(kIters * 1e-6);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(tracer.empty());
  for (int r = 0; r < kRanks; ++r)
    EXPECT_FALSE(tracer.rank(r).events().empty());
  EXPECT_EQ(tracer.tag_name(3), "tag.3");
}

TEST(TraceRace, TracedValidatedRunWithConcurrentTagNaming) {
  obs::Tracer tracer;
  mp::RunOptions opts;
  opts.validate = true;
  opts.trace = &tracer;
  constexpr int kScratch = 11;  // scratch-range tag (mp/protocol.hpp)

  for (int run = 0; run < 3; ++run) {
    mp::run_spmd(
        4, mp::MachineModel::ideal(), opts, [&](mp::Communicator& c) {
          // Every rank registers the whole protocol registry at once --
          // the exact pattern the funcship/dataship engine constructors
          // use, and the write-write contention tsan must vet.
          mp::proto::name_all_tags(*c.tracer());
          c.phase_begin("stress phase");
          const int dst = (c.rank() + 1) % c.size();
          for (int i = 0; i < 50; ++i) {
            c.send_value(dst, kScratch, i);
            (void)c.recv_any(mp::kAnySource, kScratch);
            c.advance_flops(10);
          }
          c.barrier();
          c.phase_end("stress phase");
        });
  }

  EXPECT_FALSE(tracer.empty());
  EXPECT_EQ(tracer.tag_name(mp::proto::kTagFetch), "dataship.fetch");
  EXPECT_NE(tracer.chrome_trace_json().find("stress phase"),
            std::string::npos);
}

}  // namespace
