// Tests for the message-passing runtime: point-to-point semantics,
// collectives vs. naive references, virtual-time causality and the machine
// cost model.
#include <gtest/gtest.h>

#include <numeric>

#include "mp/machine.hpp"
#include "mp/runtime.hpp"

namespace bh::mp {
namespace {

TEST(Machine, CostFormulas) {
  const auto m = MachineModel::ncube2();
  EXPECT_GT(m.ptp(100), m.t_s);
  EXPECT_DOUBLE_EQ(m.ptp(100, 3),
                   m.t_s + 100 * m.t_w + 3 * m.t_h);
  // Costs grow with p and payload.
  EXPECT_GT(m.all_to_all_broadcast(64, 100),
            m.all_to_all_broadcast(16, 100));
  EXPECT_GT(m.all_to_all_personalized(16, 1000),
            m.all_to_all_personalized(16, 10));
  EXPECT_GT(m.all_reduce(256, 8), 0.0);
  // Ideal machine costs nothing.
  const auto z = MachineModel::ideal();
  EXPECT_EQ(z.ptp(1 << 20), 0.0);
  EXPECT_EQ(z.all_to_all_broadcast(256, 1 << 20), 0.0);
}

TEST(Machine, Cm5ControlNetworkFastReductions) {
  const auto m = MachineModel::cm5();
  EXPECT_LT(m.all_reduce(256, 8), m.all_to_all_broadcast(256, 8));
  EXPECT_DOUBLE_EQ(m.barrier(256), m.t_sync);
}

TEST(Runtime, PointToPointDelivers) {
  run_spmd(4, MachineModel::ideal(), [](Communicator& c) {
    // Ring: send rank to the right, receive from the left.
    const int dst = (c.rank() + 1) % c.size();
    const int src = (c.rank() + c.size() - 1) % c.size();
    c.send_value(dst, /*tag=*/7, c.rank());
    auto m = c.recv_any(src, 7);
    auto v = Communicator::unpack<int>(m);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], src);
  });
}

TEST(Runtime, TagAndSourceMatching) {
  run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(1, /*tag=*/1, 111);
      c.send_value(1, /*tag=*/2, 222);
    } else {
      // Receive tag 2 first even though tag 1 was sent first.
      auto m2 = c.recv_any(0, 2);
      auto m1 = c.recv_any(0, 1);
      EXPECT_EQ(Communicator::unpack<int>(m2)[0], 222);
      EXPECT_EQ(Communicator::unpack<int>(m1)[0], 111);
    }
  });
}

TEST(Runtime, TryRecvNonBlocking) {
  run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.try_recv(1, 5).has_value());
      c.barrier();
      // After the barrier the message must be queued.
      auto m = c.try_recv(1, 5);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(Communicator::unpack<double>(*m)[0], 2.5);
    } else {
      c.send_value(0, 5, 2.5);
      c.barrier();
    }
  });
}

TEST(Runtime, AllGatherMatchesReference) {
  auto rep = run_spmd(8, MachineModel::ideal(), [](Communicator& c) {
    auto all = c.all_gather(c.rank() * 10);
    ASSERT_EQ(all.size(), 8u);
    for (int r = 0; r < 8; ++r) EXPECT_EQ(all[r], r * 10);
  });
  EXPECT_EQ(rep.ranks.size(), 8u);
}

TEST(Runtime, AllGathervVariableLengths) {
  run_spmd(5, MachineModel::ideal(), [](Communicator& c) {
    // Rank r contributes r items [r, r, ...].
    std::vector<int> mine(c.rank(), c.rank());
    auto all = c.all_gatherv<int>(mine);
    for (int r = 0; r < 5; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r));
      for (int v : all[r]) EXPECT_EQ(v, r);
    }
  });
}

TEST(Runtime, AllToAllPersonalized) {
  run_spmd(6, MachineModel::ideal(), [](Communicator& c) {
    // Rank s sends {s*100 + d} to rank d.
    std::vector<std::vector<int>> out(c.size());
    for (int d = 0; d < c.size(); ++d) out[d] = {c.rank() * 100 + d};
    auto in = c.all_to_all(out);
    for (int s = 0; s < c.size(); ++s) {
      ASSERT_EQ(in[s].size(), 1u);
      EXPECT_EQ(in[s][0], s * 100 + c.rank());
    }
  });
}

TEST(Runtime, AllReduceDeterministicSum) {
  run_spmd(7, MachineModel::ideal(), [](Communicator& c) {
    const double sum = c.all_reduce_sum(double(c.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 28.0);
    const int mx = c.all_reduce_max(c.rank() * 3);
    EXPECT_EQ(mx, 18);
    const int mn = c.all_reduce_min(c.rank() - 2);
    EXPECT_EQ(mn, -2);
  });
}

TEST(Runtime, ExclusiveScan) {
  run_spmd(6, MachineModel::ideal(), [](Communicator& c) {
    const long v = c.exclusive_scan_sum(long(c.rank() + 1));
    // 0, 1, 3, 6, 10, 15
    EXPECT_EQ(v, long(c.rank()) * (c.rank() + 1) / 2);
  });
}

TEST(Runtime, VirtualTimeAdvancesWithFlops) {
  auto rep = run_spmd(2, MachineModel::ncube2(), [](Communicator& c) {
    c.advance_flops(1'000'000);
  });
  const double expect = MachineModel::ncube2().t_flop * 1e6;
  for (const auto& r : rep.ranks) EXPECT_DOUBLE_EQ(r.vtime, expect);
  EXPECT_EQ(rep.total_flops(), 2'000'000u);
}

TEST(Runtime, VirtualTimeCausality) {
  // Receiver's clock is at least sender's clock + message cost.
  auto rep = run_spmd(2, MachineModel::ncube2(), [](Communicator& c) {
    if (c.rank() == 0) {
      c.advance_flops(500'000);  // 1.25 s of compute on nCUBE2
      c.send_value(1, 0, 42);
    } else {
      (void)c.recv_any(0, 0);
    }
  });
  const auto m = MachineModel::ncube2();
  const double send_clock = m.t_flop * 500'000 + m.t_s;
  EXPECT_GE(rep.ranks[1].vtime, send_clock + m.ptp(4, 1) - 1e-12);
  EXPECT_DOUBLE_EQ(rep.parallel_time(), rep.ranks[1].vtime);
}

TEST(Runtime, CollectiveSynchronizesClocks) {
  auto rep = run_spmd(4, MachineModel::ncube2(), [](Communicator& c) {
    c.advance_flops(std::uint64_t(c.rank()) * 100'000);
    c.barrier();
    EXPECT_DOUBLE_EQ(
        c.vtime(),
        MachineModel::ncube2().t_flop * 300'000 +
            MachineModel::ncube2().barrier(4));
  });
  (void)rep;
}

TEST(Runtime, PhaseAccounting) {
  auto rep = run_spmd(3, MachineModel::ncube2(), [](Communicator& c) {
    c.phase_begin("force");
    c.advance_flops(200'000);
    c.phase_end("force");
    c.phase_begin("idle");
    c.phase_end("idle");
  });
  const double expect = MachineModel::ncube2().t_flop * 200'000;
  EXPECT_DOUBLE_EQ(rep.phase_time("force"), expect);
  EXPECT_DOUBLE_EQ(rep.phase_time("idle"), 0.0);
  EXPECT_DOUBLE_EQ(rep.phase_time("missing"), 0.0);
}

TEST(Runtime, StatsCountBytes) {
  auto rep = run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<double> payload(100, 1.0);
      c.send<double>(1, 0, payload);
    } else {
      (void)c.recv_any();
    }
  });
  EXPECT_EQ(rep.ranks[0].bytes_sent, 800u);
  EXPECT_EQ(rep.ranks[0].messages_sent, 1u);
  EXPECT_EQ(rep.ranks[1].bytes_sent, 0u);
}

TEST(Runtime, SharedCountersCoordinate) {
  run_spmd(8, MachineModel::ideal(), [](Communicator& c) {
    c.shared_counter(0).fetch_add(1);
    // Spin (bounded) until everyone has incremented -- the monotone
    // "done" vote used by the force phase.
    while (c.shared_counter(0).load() < 8) std::this_thread::yield();
    EXPECT_EQ(c.shared_counter(0).load(), 8);
  });
}

TEST(Runtime, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      run_spmd(4, MachineModel::ideal(),
               [](Communicator& c) {
                 if (c.rank() == 2) throw std::runtime_error("boom");
                 // Peers block in a collective; the abort must wake them.
                 c.barrier();
                 c.barrier();
               }),
      std::runtime_error);
}

TEST(Runtime, ManyRanksSmoke) {
  // 64 ranks on one core: exercises oversubscribed scheduling.
  auto rep = run_spmd(64, MachineModel::cm5(), [](Communicator& c) {
    auto all = c.all_gather(c.rank());
    long long sum = std::accumulate(all.begin(), all.end(), 0ll);
    EXPECT_EQ(sum, 64ll * 63 / 2);
    c.barrier();
  });
  EXPECT_EQ(rep.ranks.size(), 64u);
  EXPECT_GT(rep.parallel_time(), 0.0);
}

class CollectiveCostLaw : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveCostLaw, GatherCostMatchesFormula) {
  const int p = GetParam();
  const auto m = MachineModel::ncube2();
  auto rep = run_spmd(p, m, [](Communicator& c) {
    std::vector<std::byte> unused;
    (void)c.all_gather(c.rank());
  });
  EXPECT_NEAR(rep.parallel_time(), m.all_to_all_broadcast(p, sizeof(int)),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, CollectiveCostLaw,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace bh::mp
