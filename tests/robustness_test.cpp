// Robustness and invariance tests across the parallel stack: protocol
// parameters must not change physics; degenerate decompositions must not
// break; 2-D runs must work end to end; top-tree construction variants must
// agree bit-for-bit.
#include <gtest/gtest.h>

#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "parallel/formulations.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {
namespace {

using model::ParticleSet;
using model::Rng;

const geom::Box<3> kDomain{{{0, 0, 0}}, 100.0};

ParticleSet<3> mixture(std::size_t n, std::uint64_t seed = 51) {
  Rng rng(seed);
  return model::gaussian_mixture<3>(n, rng, 4, kDomain, 3.0);
}

std::vector<double> run_potentials(const ParticleSet<3>& global, int p,
                                   const StepOptions& so) {
  std::vector<double> out;
  mp::run_spmd(p, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain, so);
    sim.distribute(global);
    sim.step();
    auto pots = sim.gather_potentials();
    if (c.rank() == 0) out = std::move(pots);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Protocol parameters must not change results.
// ---------------------------------------------------------------------------

class BinSizeInvariance : public ::testing::TestWithParam<int> {};

TEST_P(BinSizeInvariance, PotentialsIdenticalForAnyBinSize) {
  const auto global = mixture(900);
  StepOptions base{.scheme = Scheme::kSPDA,
                   .clusters_per_axis = 4,
                   .alpha = 0.67,
                   .kind = tree::FieldKind::kPotential,
                   .bin_size = 100};
  const auto ref = run_potentials(global, 4, base);
  StepOptions alt = base;
  alt.bin_size = GetParam();
  const auto got = run_potentials(global, 4, alt);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    // Identical interactions; only reply arrival order can differ, and each
    // particle's remote contributions are summed per reply item, so the
    // result is exactly reproducible up to addition order of disjoint sets.
    ASSERT_NEAR(got[i], ref[i], 1e-12 * std::abs(ref[i]));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinSizeInvariance,
                         ::testing::Values(1, 7, 33, 1000));

TEST(LookupInvariance, HashAndSortedDirectoriesAgree) {
  const auto global = mixture(700);
  StepOptions base{.scheme = Scheme::kSPDA,
                   .clusters_per_axis = 4,
                   .alpha = 0.67,
                   .kind = tree::FieldKind::kPotential};
  base.branch_lookup = LookupKind::kHash;
  const auto a = run_potentials(global, 4, base);
  base.branch_lookup = LookupKind::kSortedTable;
  const auto b = run_potentials(global, 4, base);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(TopTreeInvariance, ReplicatedAndNonReplicatedAgree) {
  const auto global = mixture(700);
  StepOptions base{.scheme = Scheme::kSPSA,
                   .clusters_per_axis = 4,
                   .alpha = 0.67,
                   .kind = tree::FieldKind::kPotential};
  base.replicate_top = true;
  const auto a = run_potentials(global, 4, base);
  base.replicate_top = false;
  const auto b = run_potentials(global, 4, base);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(CurveInvariance, MortonAndHilbertBothCorrect) {
  const auto global = mixture(800);
  ParticleSet<3> exact = global;
  tree::direct_sum(exact, tree::FieldKind::kPotential);
  for (auto curve : {CurveKind::kMorton, CurveKind::kHilbert}) {
    StepOptions so{.scheme = Scheme::kSPDA,
                   .clusters_per_axis = 4,
                   .curve = curve,
                   .alpha = 1e-9,
                   .kind = tree::FieldKind::kPotential};
    const auto pots = run_potentials(global, 4, so);
    for (std::size_t i = 0; i < pots.size(); ++i)
      ASSERT_NEAR(pots[i], exact.potential[i],
                  1e-9 * std::abs(exact.potential[i]));
  }
}

// ---------------------------------------------------------------------------
// Degenerate decompositions.
// ---------------------------------------------------------------------------

TEST(Degenerate, MoreRanksThanParticles) {
  ParticleSet<3> tiny;
  Rng rng(5);
  auto t = model::uniform_box<3>(5, rng, kDomain);
  mp::run_spmd(8, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kDPDA,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(t);
    EXPECT_NO_THROW(sim.step());
    EXPECT_NO_THROW(sim.rebalance());
    EXPECT_NO_THROW(sim.step());
    const auto n =
        c.all_reduce_sum(static_cast<long long>(sim.particles().size()));
    EXPECT_EQ(n, 5);
  });
}

TEST(Degenerate, AllParticlesCoincident) {
  ParticleSet<3> ps;
  for (int i = 0; i < 20; ++i)
    ps.push_back({{50.0, 50.0, 50.0}}, {}, 1.0, i);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential,
                               .softening = 0.1});
    sim.distribute(ps);
    EXPECT_NO_THROW(sim.step());
  });
}

TEST(Degenerate, EmptyGlobalSet) {
  ParticleSet<3> none;
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPSA,
                               .clusters_per_axis = 4,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(none);
    EXPECT_NO_THROW(sim.step());
    EXPECT_EQ(sim.particles().size(), 0u);
  });
}

TEST(Degenerate, SingleCluster) {
  // r == p == 1 and r < p both collapse to one branch.
  const auto global = mixture(300);
  for (int p : {1, 4}) {
    mp::run_spmd(p, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
      ParallelSimulation<3> sim(c, kDomain,
                                {.scheme = Scheme::kSPSA,
                                 .clusters_per_axis = 1,
                                 .alpha = 0.67,
                                 .kind = tree::FieldKind::kPotential});
      sim.distribute(global);
      EXPECT_NO_THROW(sim.step());
      const auto n =
          c.all_reduce_sum(static_cast<long long>(sim.particles().size()));
      EXPECT_EQ(n, static_cast<long long>(global.size()));
    });
  }
}

// ---------------------------------------------------------------------------
// 2-D end-to-end (the paper develops its schemes in 2-D).
// ---------------------------------------------------------------------------

TEST(TwoDim, ParallelMatchesDirect2D) {
  Rng rng(31);
  const geom::Box<2> domain{{{0, 0}}, 50.0};
  auto global = model::uniform_box<2>(400, rng, domain);
  ParticleSet<2> exact = global;
  tree::direct_sum(exact, tree::FieldKind::kPotential);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<2> sim(c, domain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .alpha = 1e-9,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    const auto pots = sim.gather_potentials();
    ASSERT_EQ(pots.size(), global.size());
    for (std::size_t i = 0; i < pots.size(); ++i)
      ASSERT_NEAR(pots[i], exact.potential[i],
                  1e-9 * std::max(1.0, std::abs(exact.potential[i])));
  });
}

TEST(TwoDim, DpdaCostzones2D) {
  Rng rng(32);
  const geom::Box<2> domain{{{0, 0}}, 50.0};
  auto global = model::gaussian_mixture<2>(1000, rng, 3, domain, 2.0);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<2> sim(c, domain,
                              {.scheme = Scheme::kDPDA,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    EXPECT_NO_THROW(sim.rebalance());
    EXPECT_NO_THROW(sim.step());
    const auto n =
        c.all_reduce_sum(static_cast<long long>(sim.particles().size()));
    EXPECT_EQ(n, static_cast<long long>(global.size()));
  });
}

}  // namespace
}  // namespace bh::par
