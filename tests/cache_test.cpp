// Tests for the async remote-node cache (DESIGN.md section 14): the
// subtree-pack wire format's edge cases, request coalescing under
// adversarial reply shapes, suspend/resume with interleaved peer service,
// bit-identical sync/async field parity, double-run determinism of the
// async engine, and structured protocol aborts.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "mp/validate.hpp"
#include "parallel/cache/node_cache.hpp"
#include "parallel/dataship.hpp"
#include "parallel/formulations.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {
namespace {

using cache::NodeCache;
using model::ParticleSet;
using model::Rng;

const geom::Box<3> kDomain{{{0, 0, 0}}, 100.0};

ParticleSet<3> uniform(std::size_t n, std::uint64_t seed = 43) {
  Rng rng(seed);
  return model::uniform_box<3>(n, rng, kDomain);
}

// ---- pack wire format ------------------------------------------------------

TEST(CachePack, UnboundedPackReproducesEveryNode) {
  const auto ps = uniform(500, 7);
  const auto tree =
      tree::build_tree<3>(ps, kDomain, {.leaf_capacity = 8, .degree = 3});
  const std::uint64_t root_key = tree.nodes[0].key.v;
  const std::int32_t root_ni = 0;
  mp::ByteWriter w;
  const auto packed = cache::pack_subtrees<3>(
      tree, ps, std::span(&root_key, 1), std::span(&root_ni, 1),
      {.depth = 64, .max_nodes = 1u << 20}, w);
  EXPECT_EQ(packed, tree.nodes.size());

  NodeCache<3> nc;
  const auto a = nc.absorb(w.bytes(), /*src=*/2, tree.root_box, tree.degree);
  EXPECT_EQ(a.records, tree.nodes.size());
  EXPECT_EQ(a.resolved, 0u);  // nothing was pending
  for (const auto& n : tree.nodes) {
    auto* c = nc.find(n.key.v);
    ASSERT_NE(c, nullptr) << "key " << n.key.v;
    EXPECT_EQ(c->mass, n.mass);
    EXPECT_EQ(c->com, n.com);
    EXPECT_EQ(c->rmax, n.rmax);
    EXPECT_EQ(c->count, n.count);
    EXPECT_EQ(c->is_leaf, n.is_leaf);
    EXPECT_EQ(c->owner, 2);
    EXPECT_EQ(c->box.edge, n.box.edge);
    // An unbounded pack has no frontier: every entry is expandable.
    EXPECT_TRUE(c->children_fetched);
    std::uint8_t mask = 0;
    for (unsigned d = 0; d < 8; ++d)
      if (n.child[d] != tree::kNullNode) mask |= 1u << d;
    EXPECT_EQ(c->child_mask, mask);
    EXPECT_EQ(c->leaf_particles.size(), n.is_leaf ? n.count : 0u);
  }
}

TEST(CachePack, LeafOnlyRootPacksParticles) {
  // The whole subtree is one leaf: the pack is a single leaf record whose
  // particle payload substitutes for children.
  const auto ps = uniform(3, 11);
  const auto tree = tree::build_tree<3>(ps, kDomain, {.leaf_capacity = 8});
  ASSERT_TRUE(tree.nodes[0].is_leaf);
  const std::uint64_t root_key = tree.nodes[0].key.v;
  const std::int32_t root_ni = 0;
  mp::ByteWriter w;
  const auto packed = cache::pack_subtrees<3>(
      tree, ps, std::span(&root_key, 1), std::span(&root_ni, 1), {}, w);
  EXPECT_EQ(packed, 1u);

  NodeCache<3> nc;
  nc.absorb(w.bytes(), 0, tree.root_box, tree.degree);
  auto* c = nc.find(root_key);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_leaf);
  EXPECT_TRUE(c->children_fetched);
  EXPECT_EQ(c->leaf_particles.size(), 3u);
}

TEST(CachePack, EmptyOctantsAreSkipped) {
  // All particles in one corner: the root has exactly one child octant and
  // the pack must carry no records (and no mask bits) for the empty seven.
  Rng rng(13);
  auto ps = model::uniform_box<3>(
      64, rng, geom::Box<3>{{{0, 0, 0}}, 10.0});  // corner of kDomain
  const auto tree = tree::build_tree<3>(ps, kDomain, {.leaf_capacity = 2});
  std::uint8_t root_mask = 0;
  for (unsigned d = 0; d < 8; ++d)
    if (tree.nodes[0].child[d] != tree::kNullNode) root_mask |= 1u << d;
  ASSERT_EQ(std::popcount(root_mask), 1);

  const std::uint64_t root_key = tree.nodes[0].key.v;
  const std::int32_t root_ni = 0;
  mp::ByteWriter w;
  cache::pack_subtrees<3>(tree, ps, std::span(&root_key, 1),
                          std::span(&root_ni, 1), {.depth = 1}, w);
  NodeCache<3> nc;
  const auto a = nc.absorb(w.bytes(), 0, tree.root_box, tree.degree);
  EXPECT_EQ(a.records, 2u);  // root + its single child
  EXPECT_EQ(nc.find(root_key)->child_mask, root_mask);
}

TEST(CachePack, DepthBoundLeavesExpandableFrontier) {
  const auto ps = uniform(2000, 17);
  const auto tree = tree::build_tree<3>(ps, kDomain, {.leaf_capacity = 4});
  ASSERT_FALSE(tree.nodes[0].is_leaf);
  const std::uint64_t root_key = tree.nodes[0].key.v;
  const std::int32_t root_ni = 0;
  mp::ByteWriter w;
  cache::pack_subtrees<3>(tree, ps, std::span(&root_key, 1),
                          std::span(&root_ni, 1), {.depth = 1}, w);
  NodeCache<3> nc;
  nc.absorb(w.bytes(), 0, tree.root_box, tree.degree);
  // The requested root's children are always packed...
  EXPECT_TRUE(nc.find(root_key)->children_fetched);
  // ...but at least one depth-1 internal child is a frontier node: present,
  // not expandable, a later request re-roots at it.
  bool frontier = false;
  const geom::NodeKey<3> rk{root_key};
  for (unsigned d = 0; d < 8; ++d) {
    if (!(nc.find(root_key)->child_mask & (1u << d))) continue;
    auto* c = nc.find(rk.child(d).v);
    ASSERT_NE(c, nullptr);
    if (!c->is_leaf && !c->children_fetched) frontier = true;
  }
  EXPECT_TRUE(frontier);
}

// ---- coalescing / suspend-resume bookkeeping -------------------------------

TEST(CacheCoalescing, OneInFlightFetchPerKey) {
  NodeCache<3> nc;
  EXPECT_TRUE(nc.request(42, 0));    // first requester sends
  EXPECT_FALSE(nc.request(42, 1));   // coalesced
  EXPECT_FALSE(nc.request(42, 5));   // coalesced
  EXPECT_TRUE(nc.request(7, 2));
  EXPECT_EQ(nc.pending_count(), 2u);

  // Adversarial reply: one pack echoes both roots (overlapping-pack shape)
  // and carries zero records. Resolution must come out in ascending key
  // order with FIFO waiter lists, regardless of echo order.
  mp::ByteWriter w;
  const std::uint64_t roots[] = {42, 7};
  w.put_span<std::uint64_t>(roots);
  w.put(std::uint64_t(0));
  const auto a = nc.absorb(w.bytes(), 0, kDomain, 0);
  EXPECT_EQ(a.resolved, 2u);
  EXPECT_FALSE(nc.has_pending());

  const auto resolved = nc.take_resolved();
  ASSERT_EQ(resolved.size(), 2u);
  auto it = resolved.begin();
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, std::vector<std::uint32_t>{2});
  ++it;
  EXPECT_EQ(it->first, 42u);
  EXPECT_EQ(it->second, (std::vector<std::uint32_t>{0, 1, 5}));
  EXPECT_TRUE(nc.take_resolved().empty());  // handed over exactly once
}

TEST(CacheCoalescing, TruncatedPackThrows) {
  NodeCache<3> nc;
  mp::ByteWriter w;
  w.put(std::uint64_t(3));  // claims three root keys, provides none
  EXPECT_THROW(nc.absorb(w.bytes(), 0, kDomain, 0), std::out_of_range);
}

// ---- sync/async engine parity ----------------------------------------------

/// Gather every particle's potential by id (deterministic order).
std::vector<double> gather_by_id(mp::Communicator& c, const DistTree<3>& dt,
                                 std::size_t n) {
  struct IdPot {
    std::uint64_t id;
    double pot;
  };
  std::vector<IdPot> mine(dt.particles.size());
  for (std::size_t i = 0; i < dt.particles.size(); ++i)
    mine[i] = {dt.particles.id[i], dt.particles.potential[i]};
  std::vector<double> out(n, 0.0);
  for (const auto& v : c.all_gatherv<IdPot>(mine))
    for (const auto& ip : v) out.at(ip.id) = ip.pot;
  return out;
}

/// Run one data-shipping force phase over a freshly built SPDA tree and
/// return (potentials by id, summed result).
struct ModeRun {
  std::vector<double> pots;
  DataShipResult<3> sums;
};

ModeRun run_mode(const ParticleSet<3>& global, unsigned degree,
                 const ForceOptions& fo, int procs = 4,
                 Scheme scheme = Scheme::kSPDA) {
  ModeRun out;
  std::mutex mu;
  mp::run_spmd(procs, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    StepOptions so{.scheme = scheme,
                   .clusters_per_axis = 4,
                   .alpha = 0.67,
                   .degree = degree,
                   .kind = tree::FieldKind::kPotential};
    ParallelSimulation<3> sim(c, kDomain, so);
    sim.distribute(global);
    sim.step();
    auto& dt = const_cast<DistTree<3>&>(sim.dist_tree());
    dt.particles.zero_accumulators();
    const auto r = compute_forces_dataship<3>(c, dt, fo);
    auto sum = [&](std::uint64_t v) {
      return static_cast<std::uint64_t>(
          c.all_reduce_sum(static_cast<long long>(v)));
    };
    DataShipResult<3> s;
    s.work.mac_evals = sum(r.work.mac_evals);
    s.work.interactions = sum(r.work.interactions);
    s.work.direct_pairs = sum(r.work.direct_pairs);
    s.nodes_fetched = sum(r.nodes_fetched);
    s.fetch_requests = sum(r.fetch_requests);
    s.cache_hits = sum(r.cache_hits);
    s.hash_probes = sum(r.hash_probes);
    s.coalesced = sum(r.coalesced);
    s.prefetched_nodes = sum(r.prefetched_nodes);
    s.suspends = sum(r.suspends);
    s.resumes = sum(r.resumes);
    auto pots = gather_by_id(c, dt, global.size());
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out.pots = std::move(pots);
      out.sums = s;
    }
  });
  return out;
}

TEST(DataShipAsync, FieldsBitIdenticalToSyncOracle) {
  const auto global = uniform(2500, 19);
  for (unsigned degree : {0u, 3u}) {
    ForceOptions sync_fo{.alpha = 0.67,
                         .kind = tree::FieldKind::kPotential,
                         .done_counter = 1};
    sync_fo.node_cache = NodeCacheMode::kSync;
    ForceOptions async_fo = sync_fo;
    async_fo.node_cache = NodeCacheMode::kAsync;

    const auto s = run_mode(global, degree, sync_fo);
    const auto a = run_mode(global, degree, async_fo);

    // Identical per-particle accumulation order: fields agree to the bit.
    ASSERT_EQ(s.pots.size(), a.pots.size());
    for (std::size_t i = 0; i < s.pots.size(); ++i)
      ASSERT_EQ(s.pots[i], a.pots[i]) << "degree " << degree << " id " << i;

    // The traversal work is the same work: counters agree exactly.
    EXPECT_EQ(s.sums.work.mac_evals, a.sums.work.mac_evals);
    EXPECT_EQ(s.sums.work.interactions, a.sums.work.interactions);
    EXPECT_EQ(s.sums.work.direct_pairs, a.sums.work.direct_pairs);
    EXPECT_EQ(s.sums.hash_probes, a.sums.hash_probes);
    // Packs ship whole subtrees, so async moves at least as many records
    // over fewer, bigger messages.
    EXPECT_GE(a.sums.nodes_fetched, s.sums.nodes_fetched);

    // The async cache must actually change the protocol: far fewer
    // requests (packs + prefetch + coalescing), sync counters zero.
    EXPECT_LT(a.sums.fetch_requests, s.sums.fetch_requests / 2);
    EXPECT_EQ(s.sums.coalesced, 0u);
    EXPECT_EQ(s.sums.suspends, 0u);
    EXPECT_GT(a.sums.prefetched_nodes, 0u);
  }
}

TEST(DataShipAsync, WorkCountersMatchSyncOnClusteredDpda) {
  // Plummer + DPDA is the configuration that surfaces leaf-turned branch
  // roots (a rank's whole subtree is one small leaf) with *coalesced*
  // waiters on them: the revisit bookkeeping must count once per fetch,
  // not once per waiter, or mac_evals -- and with them flops and virtual
  // time -- drift between the modes.
  Rng rng(8080);
  const auto global = model::plummer<3>(2000, rng, 1.0);
  ForceOptions sync_fo{.alpha = 0.67,
                       .kind = tree::FieldKind::kForce,
                       .done_counter = 1};
  sync_fo.node_cache = NodeCacheMode::kSync;
  ForceOptions async_fo = sync_fo;
  async_fo.node_cache = NodeCacheMode::kAsync;

  const auto s = run_mode(global, 0, sync_fo, 8, Scheme::kDPDA);
  const auto a = run_mode(global, 0, async_fo, 8, Scheme::kDPDA);

  EXPECT_EQ(s.sums.work.mac_evals, a.sums.work.mac_evals);
  EXPECT_EQ(s.sums.work.interactions, a.sums.work.interactions);
  EXPECT_EQ(s.sums.work.direct_pairs, a.sums.work.direct_pairs);
  ASSERT_EQ(s.pots.size(), a.pots.size());
}

TEST(DataShipAsync, SuspendResumeUnderAdversarialArrival) {
  // Prefetch off and the shallowest legal packs: every remote descent
  // suspends, coalesces, and resumes while peers keep being served -- the
  // continuation path under maximal pressure. Fields must still match the
  // blocking oracle bit for bit.
  const auto global = uniform(3000, 23);
  ForceOptions sync_fo{.alpha = 0.67,
                       .kind = tree::FieldKind::kPotential,
                       .done_counter = 1};
  sync_fo.node_cache = NodeCacheMode::kSync;
  ForceOptions async_fo = sync_fo;
  async_fo.node_cache = NodeCacheMode::kAsync;
  async_fo.pack_depth = 1;
  async_fo.prefetch_depth = 0;

  const auto s = run_mode(global, 0, sync_fo, 8);
  const auto a = run_mode(global, 0, async_fo, 8);

  ASSERT_EQ(s.pots.size(), a.pots.size());
  for (std::size_t i = 0; i < s.pots.size(); ++i)
    ASSERT_EQ(s.pots[i], a.pots[i]) << "id " << i;
  EXPECT_GT(a.sums.suspends, 0u);
  EXPECT_EQ(a.sums.suspends, a.sums.resumes);
  EXPECT_GT(a.sums.coalesced, 0u);
  EXPECT_EQ(a.sums.prefetched_nodes, 0u);
  // With depth-1 packs and no prefetch, both modes fetch each unique node
  // exactly once: coalescing replaces what sync would have turned into
  // blocking cache hits, never into extra sends.
  EXPECT_EQ(a.sums.fetch_requests, s.sums.fetch_requests);
}

// ---- determinism ------------------------------------------------------------

TEST(DataShipAsync, VirtualTimeAndCountersBitIdenticalAcrossRuns) {
  const auto global = uniform(2000, 29);
  auto once = [&] {
    struct RankState {
      double vtime;
      std::map<std::string, std::uint64_t> counters;
    };
    std::vector<RankState> st(8);
    std::mutex mu;
    mp::run_spmd(8, mp::MachineModel::cm5(), [&](mp::Communicator& c) {
      StepOptions so{.scheme = Scheme::kSPDA,
                     .clusters_per_axis = 4,
                     .alpha = 0.67,
                     .degree = 2,
                     .kind = tree::FieldKind::kPotential};
      ParallelSimulation<3> sim(c, kDomain, so);
      sim.distribute(global);
      sim.step();
      auto& dt = const_cast<DistTree<3>&>(sim.dist_tree());
      dt.particles.zero_accumulators();
      compute_forces_dataship<3>(c, dt,
                                 {.alpha = 0.67,
                                  .kind = tree::FieldKind::kPotential,
                                  .done_counter = 1});
      std::lock_guard<std::mutex> lk(mu);
      st[static_cast<std::size_t>(c.rank())] = {c.vtime(),
                                                c.stats().counters};
    });
    return st;
  };
  const auto a = once();
  const auto b = once();
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].vtime, b[r].vtime) << "rank " << r;
    EXPECT_EQ(a[r].counters, b[r].counters) << "rank " << r;
  }
}

// ---- structured aborts ------------------------------------------------------

TEST(ProtocolAbort, PropagatesReasonToEveryRank) {
  try {
    mp::run_spmd(2, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
      if (c.rank() == 0)
        c.protocol_abort("cache test abort");
      c.barrier();
    });
    FAIL() << "expected ProtocolError";
  } catch (const mp::ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("cache test abort"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace bh::par
