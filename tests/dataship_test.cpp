// Tests for the data-shipping comparator: agreement with function shipping
// on identical trees, cache behaviour, and the paper's Section 4.2
// communication-volume claims.
#include <gtest/gtest.h>

#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "parallel/dataship.hpp"
#include "parallel/formulations.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {
namespace {

using model::ParticleSet;
using model::Rng;

const geom::Box<3> kDomain{{{0, 0, 0}}, 100.0};

ParticleSet<3> mixture(std::size_t n, std::uint64_t seed = 41) {
  Rng rng(seed);
  return model::gaussian_mixture<3>(n, rng, 4, kDomain, 3.0);
}

/// Uniform fill: every cluster boundary has near-field neighbours, so the
/// fetch protocol (and bins) see real traffic.
ParticleSet<3> uniform(std::size_t n, std::uint64_t seed = 43) {
  Rng rng(seed);
  return model::uniform_box<3>(n, rng, kDomain);
}

/// Build a distributed tree directly (without the driver) on each rank.
template <typename F>
void with_dist_tree(mp::Communicator& c, const ParticleSet<3>& global,
                    unsigned degree, F&& f) {
  ParallelSimulation<3> sim(c, kDomain,
                            {.scheme = Scheme::kSPDA,
                             .clusters_per_axis = 4,
                             .alpha = 0.67,
                             .degree = degree,
                             .kind = tree::FieldKind::kPotential});
  sim.distribute(global);
  // Build the tree but run our own force engines on it.
  f(sim);
}

TEST(DataShip, MatchesFunctionShippingExactly) {
  // Same spliced tree, same MAC: the two paradigms must compute the same
  // set of interactions; only floating-point accumulation order differs.
  const auto global = mixture(1200);
  for (unsigned degree : {0u, 3u}) {
    mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
      StepOptions so{.scheme = Scheme::kSPDA,
                     .clusters_per_axis = 4,
                     .alpha = 0.67,
                     .degree = degree,
                     .kind = tree::FieldKind::kPotential};
      ParallelSimulation<3> sim(c, kDomain, so);
      sim.distribute(global);
      sim.step();  // function shipping
      const auto fs = sim.gather_potentials();

      // Re-run the force phase on a fresh tree with the data-ship engine.
      ParallelSimulation<3> sim2(c, kDomain, so);
      sim2.distribute(global);
      sim2.step();  // builds dtree_ (and fills via funcship; zero after)
      auto& dt = const_cast<DistTree<3>&>(sim2.dist_tree());
      dt.particles.zero_accumulators();
      ForceOptions fo{.alpha = 0.67,
                      .kind = tree::FieldKind::kPotential,
                      .done_counter = 1};
      const auto r = compute_forces_dataship<3>(c, dt, fo);
      // Collect data-ship potentials by id.
      std::vector<double> ds(global.size(), 0.0);
      struct IdPot {
        std::uint64_t id;
        double pot;
      };
      std::vector<IdPot> mine(dt.particles.size());
      for (std::size_t i = 0; i < dt.particles.size(); ++i)
        mine[i] = {dt.particles.id[i], dt.particles.potential[i]};
      for (const auto& v : c.all_gatherv<IdPot>(mine))
        for (const auto& ip : v) ds.at(ip.id) = ip.pot;

      for (std::size_t i = 0; i < ds.size(); ++i)
        ASSERT_NEAR(ds[i], fs[i], 1e-9 * std::abs(fs[i]))
            << "degree " << degree << " particle " << i;
      (void)r;
    });
  }
}

TEST(DataShip, CacheAmortizesFetches) {
  const auto global = uniform(3000);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    StepOptions so{.scheme = Scheme::kSPDA,
                   .clusters_per_axis = 4,
                   .alpha = 0.67,
                   .kind = tree::FieldKind::kPotential};
    ParallelSimulation<3> sim(c, kDomain, so);
    sim.distribute(global);
    sim.step();
    auto& dt = const_cast<DistTree<3>&>(sim.dist_tree());
    dt.particles.zero_accumulators();
    const auto r = compute_forces_dataship<3>(
        c, dt, {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                .done_counter = 1});
    const auto hits = c.all_reduce_sum(static_cast<long long>(r.cache_hits));
    const auto fetches =
        c.all_reduce_sum(static_cast<long long>(r.fetch_requests));
    if (c.size() > 1 && fetches > 0) {
      // Many particles traverse the same remote nodes: reuse must dominate.
      EXPECT_GT(hits, fetches);
    }
  });
}

TEST(DataShip, CommunicationVolumeGrowsWithDegree) {
  // Section 4.2.1/4.2.2: data-shipping volume grows as O(k^2) with the
  // multipole degree; function-shipping volume does not change at all.
  const auto global = uniform(2000);
  std::uint64_t ds_bytes_k0 = 0, ds_bytes_k5 = 0;
  std::uint64_t fs_bytes_k0 = 0, fs_bytes_k5 = 0;
  for (unsigned degree : {0u, 5u}) {
    // Function shipping.
    auto rep_fs =
        mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
          StepOptions so{.scheme = Scheme::kSPDA,
                         .clusters_per_axis = 4,
                         .alpha = 0.67,
                         .degree = degree,
                         .kind = tree::FieldKind::kPotential};
          ParallelSimulation<3> sim(c, kDomain, so);
          sim.distribute(global);
          sim.step();
        });
    // Data shipping on the identical tree.
    auto rep_ds =
        mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
          StepOptions so{.scheme = Scheme::kSPDA,
                         .clusters_per_axis = 4,
                         .alpha = 0.67,
                         .degree = degree,
                         .kind = tree::FieldKind::kPotential};
          ParallelSimulation<3> sim(c, kDomain, so);
          sim.distribute(global);
          sim.step();
          auto& dt = const_cast<DistTree<3>&>(sim.dist_tree());
          dt.particles.zero_accumulators();
          compute_forces_dataship<3>(
              c, dt, {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                      .done_counter = 1});
        });
    // Isolate the force-phase point-to-point traffic: function shipping is
    // the only ptp user in rep_fs; in rep_ds both engines ran, so subtract
    // the function-shipping share.
    if (degree == 0) {
      fs_bytes_k0 = rep_fs.total_ptp_bytes();
      ds_bytes_k0 = rep_ds.total_ptp_bytes() - rep_fs.total_ptp_bytes();
    } else {
      fs_bytes_k5 = rep_fs.total_ptp_bytes();
      ds_bytes_k5 = rep_ds.total_ptp_bytes() - rep_fs.total_ptp_bytes();
    }
  }
  // Function shipping: identical traffic regardless of degree (same MAC
  // decisions, same shipped coordinates).
  EXPECT_EQ(fs_bytes_k0, fs_bytes_k5);
  // Data shipping: the multipole payload makes degree 5 much heavier.
  EXPECT_GT(ds_bytes_k5, ds_bytes_k0 + ds_bytes_k0 / 2);
}

}  // namespace
}  // namespace bh::par
