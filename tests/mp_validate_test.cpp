// Tests for the SPMD protocol validator (mp/validate.hpp) and the always-on
// protocol errors of the runtime: collective consistency across ranks,
// deadlock detection instead of hangs, message-leak and phase-balance
// checks at rank exit, and abort propagation out of blocked ranks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "mp/machine.hpp"
#include "mp/protocol.hpp"
#include "mp/runtime.hpp"
#include "mp/validate.hpp"

namespace bh::mp {
namespace {

RunOptions validated(double watchdog = 2.0) {
  return RunOptions{.validate = true, .watchdog_seconds = watchdog};
}

/// Run `body` expecting a ProtocolError; returns its message.
std::string protocol_error_of(int nprocs, const RunOptions& opts,
                              const std::function<void(Communicator&)>& body) {
  try {
    run_spmd(nprocs, MachineModel::ideal(), opts, body);
  } catch (const ProtocolError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ProtocolError, but the run completed";
  return {};
}

TEST(Validate, CleanRunPasses) {
  // Mixed point-to-point, collective, phase and counter traffic must sail
  // through the validator without a diagnostic.
  run_spmd(4, MachineModel::cm5(), validated(), [](Communicator& c) {
    c.phase_begin("exchange");
    const int dst = (c.rank() + 1) % c.size();
    const int src = (c.rank() + c.size() - 1) % c.size();
    c.send_value(dst, /*tag=*/3, c.rank());
    auto m = c.recv_any(src, 3);
    EXPECT_EQ(Communicator::unpack<int>(m)[0], src);
    c.barrier();
    auto all = c.all_gather(c.rank());
    EXPECT_EQ(static_cast<int>(all.size()), c.size());
    EXPECT_EQ(c.all_reduce_sum(1), c.size());
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    auto gv = c.all_gatherv<int>(mine);
    EXPECT_EQ(static_cast<int>(gv[3].size()), 3);
    c.shared_counter(0).fetch_add(1);
    c.phase_end("exchange");
  });
}

TEST(Validate, CollectiveKindMismatchNamesDivergentRank) {
  const auto msg = protocol_error_of(4, validated(), [](Communicator& c) {
    if (c.rank() == 2)
      c.all_reduce_sum(1);
    else
      c.all_gather(c.rank());
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all_reduce"), std::string::npos) << msg;
  EXPECT_NE(msg.find("all_gather"), std::string::npos) << msg;
  EXPECT_NE(msg.find("divergent rank(s): 2"), std::string::npos) << msg;
}

TEST(Validate, CollectiveElementSizeMismatchNamesRank) {
  const auto msg = protocol_error_of(3, validated(), [](Communicator& c) {
    if (c.rank() == 1)
      c.all_gather(static_cast<double>(c.rank()));  // elem = 8
    else
      c.all_gather(c.rank());  // elem = 4
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("divergent rank(s): 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("elem=8"), std::string::npos) << msg;
}

TEST(Validate, RecvDeadlockDetectedInsteadOfHanging) {
  // Both ranks wait for a message the other never sends. Without the
  // watchdog this test would hang forever.
  const auto msg =
      protocol_error_of(2, validated(0.3), [](Communicator& c) {
        c.phase_begin("stuck");
        const int peer = 1 - c.rank();
        (void)c.recv_any(peer, /*tag=*/9);
        c.phase_end("stuck");
      });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in recv(src="), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("last_phase=stuck"), std::string::npos) << msg;
}

TEST(Validate, RankSkippingCollectiveDeadlockDetected) {
  // Rank 0 returns early; everyone else sits in a barrier it will never
  // join. The watchdog must flag the blocked ranks rather than hang.
  const auto msg =
      protocol_error_of(3, validated(0.3), [](Communicator& c) {
        if (c.rank() == 0) return;
        c.barrier();
      });
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocked in collective"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0: finished"), std::string::npos) << msg;
}

TEST(Validate, UnconsumedMessageAtExitNamesRankAndTag) {
  const auto msg = protocol_error_of(2, validated(), [](Communicator& c) {
    if (c.rank() == 0) c.send_value(1, /*tag=*/42, 7);
    c.barrier();  // the message is in rank 1's mailbox by now
  });
  EXPECT_NE(msg.find("rank 1 exited dirty"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unconsumed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(src=0, tag=42)"), std::string::npos) << msg;
}

TEST(Validate, DanglingPhaseBeginReported) {
  const auto msg = protocol_error_of(2, validated(), [](Communicator& c) {
    if (c.rank() == 1) c.phase_begin("forces");
    c.barrier();
  });
  EXPECT_NE(msg.find("rank 1 exited dirty"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dangling phase_begin"), std::string::npos) << msg;
  EXPECT_NE(msg.find("forces"), std::string::npos) << msg;
}

// -- always-on protocol errors (no validator needed) ------------------------

TEST(Validate, PhaseEndWithoutBeginThrowsAlways) {
  EXPECT_THROW(run_spmd(1, MachineModel::ideal(),
                        [](Communicator& c) { c.phase_end("oops"); }),
               ProtocolError);
}

TEST(Validate, SendToOutOfRangeRankThrowsAlways) {
  try {
    run_spmd(2, MachineModel::ideal(), [](Communicator& c) {
      if (c.rank() == 0) c.send_value(5, /*tag=*/0, 1);
      // No barrier: rank 1 just returns; rank 0 throws.
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 5"), std::string::npos) << msg;
  }
}

TEST(Validate, SharedCounterOutOfRangeThrowsAlways) {
  EXPECT_THROW(
      run_spmd(1, MachineModel::ideal(),
               [](Communicator& c) { c.shared_counter(kSharedCounters); }),
      std::out_of_range);
}

// -- abort propagation -------------------------------------------------------

TEST(Validate, ThrowMidRecvUnblocksPeersWithAbortError) {
  // Rank 0 dies; rank 1 is parked in recv_any with an empty mailbox and
  // must be woken with the peer-failure error, not left hanging. The
  // thrower's own exception is the one reported by run_spmd.
  std::atomic<bool> peer_saw_abort{false};
  try {
    run_spmd(2, MachineModel::ideal(), [&](Communicator& c) {
      if (c.rank() == 0) throw std::runtime_error("boom");
      try {
        (void)c.recv_any(0, /*tag=*/1);
      } catch (const std::exception& e) {
        if (std::string(e.what()).find("aborted by a peer rank failure") !=
            std::string::npos)
          peer_saw_abort = true;
        throw;
      }
    });
    FAIL() << "expected the rank exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(peer_saw_abort.load());
}

TEST(Validate, ThrowMidCollectiveUnblocksPeers) {
  try {
    run_spmd(4, MachineModel::ideal(), [](Communicator& c) {
      if (c.rank() == 3) throw std::runtime_error("rank 3 failed");
      c.barrier();  // ranks 0-2 block here until the abort wakes them
    });
    FAIL() << "expected the rank exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 3 failed");
  }
}

TEST(Validate, ThrowMidPersonalizedUnblocksPeers) {
  try {
    run_spmd(3, MachineModel::ideal(), [](Communicator& c) {
      if (c.rank() == 2) throw std::runtime_error("dead");
      std::vector<std::vector<int>> outbox(
          static_cast<std::size_t>(c.size()));
      (void)c.all_to_all(outbox);
    });
    FAIL() << "expected the rank exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "dead");
  }
}

TEST(Validate, DeadlockDiagnosisReachesAllBlockedRanks) {
  // When the watchdog aborts a deadlocked run, every blocked rank must
  // rethrow the full diagnostic (not a generic abort), so the failure is
  // actionable no matter which rank's exception wins the race.
  int protocol_errors = 0;
  try {
    run_spmd(2, MachineModel::ideal(), validated(0.3), [](Communicator& c) {
      (void)c.recv_any(1 - c.rank(), /*tag=*/5);
    });
  } catch (const ProtocolError& e) {
    ++protocol_errors;
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
  EXPECT_EQ(protocol_errors, 1);
}

TEST(Validate, UndeclaredTagRejected) {
  // The tag-registry check: a send whose tag is neither a registered
  // protocol tag nor inside the scratch range must fail fast, naming the
  // registry header.
  const auto msg = protocol_error_of(2, validated(), [](Communicator& c) {
    if (c.rank() == 0) c.send_value(1, /*tag=*/9999, 7);
    c.barrier();
  });
  EXPECT_NE(msg.find("tag 9999"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not declared in mp/protocol.hpp"), std::string::npos)
      << msg;
}

TEST(Validate, DeclaredProtocolTagAccepted) {
  // Registered tags pass the registry check (scratch tags are exercised by
  // every other test in this file).
  run_spmd(2, MachineModel::ideal(), validated(), [](Communicator& c) {
    if (c.rank() == 0) {
      c.send_value(1, proto::kTagFetch, std::uint64_t{42});
    } else {
      auto m = c.recv_any(0, proto::kTagFetch);
      EXPECT_EQ(Communicator::unpack<std::uint64_t>(m)[0], 42u);
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace bh::mp
