// Tests for tools/trend: registry ingestion into run columns (the git-SHA
// keying and merge rules), the cross-run trend gate that catches monotone
// degradation per-run diffs cannot see, and the bh.trend.v1 JSON -> HTML
// dashboard path on fixture registries.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"
#include "trend/trend.hpp"

namespace bh {
namespace {

using obs::Json;
using obs::JsonError;

/// A minimal bh.bench.v1 document with one scenario.
std::string reg(const std::string& sha, const std::string& bench,
                const std::string& name, double iter_time,
                double phase_force, const std::string& scheme = "SPSA") {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      R"({"schema": "bh.bench.v1", "bench": "%s", "git_sha": "%s",
          "scenarios": [
            {"name": "%s", "scheme": "%s", "instance": "uniform",
             "machine": "ncube2", "n": 1000, "procs": 8,
             "iter_time": %.17g, "efficiency": 0.5,
             "peak_rss_bytes": 1048576, "alloc_count": 42,
             "phases": {"force computation": %.17g}}
          ]})",
      bench.c_str(), sha.c_str(), name.c_str(), scheme.c_str(), iter_time,
      phase_force);
  return buf;
}

/// A minimal bh.prof.v1 profile with one region.
std::string prof_reg(const std::string& sha, double region_wall,
                     double total_wall) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      R"({"schema": "bh.prof.v1", "git_sha": "%s", "counters": "software",
          "wall_s": %.17g,
          "machine": {"peak_flops_per_s": 1e9, "peak_bytes_per_s": 1e10},
          "samples": {"count": 3, "dropped": 0},
          "regions": [
            {"name": "tree.build", "flops": 100, "bytes": 400,
             "arith_intensity": 0.25,
             "calls": 2, "threads": 1, "wall_s": %.17g, "cycles": 0,
             "instructions": 0, "llc_misses": 0, "branch_misses": 0,
             "allocs": 7, "flops_per_s": 1e6, "bound": "memory"}
          ],
          "folded": ["tree.build 3"]})",
      sha.c_str(), total_wall, region_wall);
  return buf;
}

trend::TrendData ingest_strings(const std::vector<std::string>& texts) {
  std::vector<Json> docs;
  docs.reserve(texts.size());
  for (const auto& t : texts) docs.push_back(Json::parse(t));
  std::vector<std::pair<std::string, const Json*>> refs;
  for (std::size_t i = 0; i < docs.size(); ++i)
    refs.emplace_back("reg" + std::to_string(i) + ".json", &docs[i]);
  return trend::ingest(refs);
}

// ---- ingestion: run columns and the merge rule ------------------------------

TEST(TrendIngest, DistinctShasOpenDistinctRunColumns) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("bbb", "t1", "s", 11.0, 9.0)});
  ASSERT_EQ(td.runs.size(), 2u);
  EXPECT_EQ(td.runs[0].git_sha, "aaa");
  EXPECT_EQ(td.runs[1].git_sha, "bbb");
  ASSERT_EQ(td.scenarios.size(), 1u);
  const auto& sc = td.scenarios[0];
  EXPECT_EQ(sc.key, "t1/s");
  ASSERT_EQ(sc.iter_time.size(), 2u);
  EXPECT_DOUBLE_EQ(sc.iter_time[0], 10.0);
  EXPECT_DOUBLE_EQ(sc.iter_time[1], 11.0);
  EXPECT_DOUBLE_EQ(sc.phases.at("force computation")[1], 9.0);
  EXPECT_DOUBLE_EQ(sc.peak_rss[0], 1048576.0);
  EXPECT_DOUBLE_EQ(sc.alloc_count[0], 42.0);
}

TEST(TrendIngest, SameShaDifferentBenchesMergeIntoOneRun) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("aaa", "t2", "s", 3.0, 2.0)});
  ASSERT_EQ(td.runs.size(), 1u);
  EXPECT_EQ(td.runs[0].sources.size(), 2u);
  // Same scenario name, different bench -> different keys, no alias.
  ASSERT_EQ(td.scenarios.size(), 2u);
  EXPECT_EQ(td.scenarios[0].key, "t1/s");
  EXPECT_EQ(td.scenarios[1].key, "t2/s");
}

TEST(TrendIngest, SameShaSameScenarioOpensANewColumn) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("aaa", "t1", "s", 12.0, 9.0)});
  ASSERT_EQ(td.runs.size(), 2u);
  EXPECT_EQ(td.runs[0].id, "aaa");
  EXPECT_EQ(td.runs[1].id, "aaa#2");
  const auto& sc = td.scenarios[0];
  EXPECT_DOUBLE_EQ(sc.iter_time[0], 10.0);
  EXPECT_DOUBLE_EQ(sc.iter_time[1], 12.0);
}

TEST(TrendIngest, MissingScenarioIsNaNNotZero) {
  const auto td =
      ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                      reg("bbb", "t1", "other", 1.0, 0.5)});
  ASSERT_EQ(td.scenarios.size(), 2u);
  const auto& s = td.scenarios[1];  // "t1/s" sorts after "t1/other"
  EXPECT_EQ(s.key, "t1/s");
  EXPECT_DOUBLE_EQ(s.iter_time[0], 10.0);
  EXPECT_TRUE(std::isnan(s.iter_time[1]));
  EXPECT_TRUE(std::isnan(s.phases.at("force computation")[1]));
}

TEST(TrendIngest, FamilyFitsTrackEachRun) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("bbb", "t1", "s", 11.0, 9.0)});
  ASSERT_EQ(td.families.size(), 1u);
  const auto& f = td.families[0];
  EXPECT_EQ(f.family, "uniform SPSA");
  ASSERT_EQ(f.coeff.size(), 2u);
  // Single point per run: overhead = 8 * iter * 0.5, f(p)=8*3=24.
  EXPECT_NEAR(f.coeff[0], 8.0 * 10.0 * 0.5 / 24.0, 1e-9);
  EXPECT_NEAR(f.coeff[1], 8.0 * 11.0 * 0.5 / 24.0, 1e-9);
  EXPECT_EQ(f.chosen[0], "p log p");
}

TEST(TrendIngest, RejectsNonBenchDocuments) {
  EXPECT_THROW(ingest_strings({R"({"schema": "bh.metrics.v1"})"}),
               JsonError);
}

// ---- ingestion: bh.prof.v1 profiles -----------------------------------------

TEST(TrendIngest, ProfRegionsBecomeWallScenarios) {
  const auto td = ingest_strings({prof_reg("aaa", 0.25, 1.0),
                                  prof_reg("bbb", 0.50, 1.0)});
  ASSERT_EQ(td.runs.size(), 2u);
  ASSERT_EQ(td.scenarios.size(), 1u);
  const auto& sc = td.scenarios[0];
  EXPECT_EQ(sc.key, "prof/tree.build");
  EXPECT_EQ(sc.scheme, "wall");
  EXPECT_EQ(sc.instance, "prof");
  EXPECT_EQ(sc.machine, "host");
  EXPECT_DOUBLE_EQ(sc.iter_time[0], 0.25);  // region wall seconds
  EXPECT_DOUBLE_EQ(sc.wall_share[0], 0.25);
  EXPECT_DOUBLE_EQ(sc.wall_share[1], 0.50);
  EXPECT_DOUBLE_EQ(sc.alloc_count[0], 7.0);
  // Wall rows never enter the overhead fits.
  EXPECT_TRUE(td.families.empty());
}

TEST(TrendIngest, ProfAndBenchAtOneShaShareARunColumn) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  prof_reg("aaa", 0.25, 1.0)});
  ASSERT_EQ(td.runs.size(), 1u);
  EXPECT_EQ(td.runs[0].sources.size(), 2u);
  ASSERT_EQ(td.scenarios.size(), 2u);  // prof/tree.build + t1/s
  EXPECT_EQ(td.scenarios[0].key, "prof/tree.build");
  EXPECT_EQ(td.scenarios[1].key, "t1/s");
}

TEST(TrendGate, ProfRegionsNeverGate) {
  // Region wall doubling every run is a wall-scheme trajectory: plotted,
  // never gated.
  const auto td = ingest_strings({prof_reg("r1", 0.1, 1.0),
                                  prof_reg("r2", 0.2, 1.0),
                                  prof_reg("r3", 0.4, 1.0)});
  EXPECT_TRUE(trend::gate_trend(td).empty());
}

// ---- trend gate -------------------------------------------------------------

TEST(TrendGate, MonotoneThreeRunDegradationFails) {
  // 10 -> 10.5 -> 11: each step is under a 10% per-run gate, but the
  // cumulative +10% over 3 runs must trip the trend gate at 5%.
  const auto td = ingest_strings({reg("r1", "t1", "s", 10.0, 8.0),
                                  reg("r2", "t1", "s", 10.5, 8.4),
                                  reg("r3", "t1", "s", 11.0, 8.8)});
  const auto violations = trend::gate_trend(td);
  ASSERT_EQ(violations.size(), 2u);  // iter_time + the phase, both +10%
  bool iter_flagged = false, phase_flagged = false;
  for (const auto& v : violations) {
    EXPECT_EQ(v.scenario, "t1/s");
    ASSERT_EQ(v.window.size(), 3u);
    EXPECT_NEAR(v.cum_pct, 10.0, 1e-9);
    if (v.metric == "iter_time") iter_flagged = true;
    if (v.metric == "phase force computation") phase_flagged = true;
  }
  EXPECT_TRUE(iter_flagged);
  EXPECT_TRUE(phase_flagged);
}

TEST(TrendGate, NonMonotoneSequencePasses) {
  const auto td = ingest_strings({reg("r1", "t1", "s", 10.0, 8.0),
                                  reg("r2", "t1", "s", 11.0, 8.0),
                                  reg("r3", "t1", "s", 10.9, 8.0)});
  EXPECT_TRUE(trend::gate_trend(td).empty());
}

TEST(TrendGate, SmallCumulativeDriftPasses) {
  const auto td = ingest_strings({reg("r1", "t1", "s", 10.0, 8.0),
                                  reg("r2", "t1", "s", 10.1, 8.0),
                                  reg("r3", "t1", "s", 10.3, 8.0)});
  EXPECT_TRUE(trend::gate_trend(td).empty());  // +3% < 5%
}

TEST(TrendGate, FewerRunsThanWindowPasses) {
  const auto td = ingest_strings({reg("r1", "t1", "s", 10.0, 8.0),
                                  reg("r2", "t1", "s", 20.0, 16.0)});
  EXPECT_TRUE(trend::gate_trend(td).empty());
}

TEST(TrendGate, FloorSuppressesTinyMetrics) {
  const auto td = ingest_strings({reg("r1", "t1", "s", 1e-6, 1e-7),
                                  reg("r2", "t1", "s", 2e-6, 2e-7),
                                  reg("r3", "t1", "s", 4e-6, 4e-7)});
  EXPECT_TRUE(trend::gate_trend(td).empty());
}

TEST(TrendGate, WallSchemeNeverGates) {
  const auto td =
      ingest_strings({reg("r1", "m", "BM_X", 1.0, 0.0, "wall"),
                      reg("r2", "m", "BM_X", 2.0, 0.0, "wall"),
                      reg("r3", "m", "BM_X", 4.0, 0.0, "wall")});
  EXPECT_TRUE(trend::gate_trend(td).empty());
}

TEST(TrendGate, WindowConfigTakesEffect) {
  // Only the last two runs degrade; a window of 2 catches it, the default
  // window of 3 does not (run 1 -> 2 improved).
  const auto td = ingest_strings({reg("r1", "t1", "s", 12.0, 8.0),
                                  reg("r2", "t1", "s", 10.0, 8.0),
                                  reg("r3", "t1", "s", 11.0, 8.0)});
  EXPECT_TRUE(trend::gate_trend(td).empty());
  trend::GateConfig cfg;
  cfg.window = 2;
  const auto violations = trend::gate_trend(td, cfg);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].metric, "iter_time");
  EXPECT_NEAR(violations[0].cum_pct, 10.0, 1e-9);
}

// ---- bh.trend.v1 JSON and the dashboard ------------------------------------

TEST(TrendJson, DataDocumentRoundTripsThroughTheParser) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("bbb", "t1", "s", 11.0, 9.0)});
  const Json doc = Json::parse(trend::data_json(td));
  EXPECT_EQ(doc.at("schema").str(), "bh.trend.v1");
  ASSERT_EQ(doc.at("runs").array().size(), 2u);
  EXPECT_EQ(doc.at("runs").array()[0].at("git_sha").str(), "aaa");
  ASSERT_EQ(doc.at("scenarios").array().size(), 1u);
  const Json& sc = doc.at("scenarios").array()[0];
  EXPECT_EQ(sc.at("key").str(), "t1/s");
  ASSERT_EQ(sc.at("iter_time").array().size(), 2u);
  EXPECT_DOUBLE_EQ(sc.at("iter_time").array()[1].number(), 11.0);
  EXPECT_DOUBLE_EQ(
      sc.at("phases").at("force computation").array()[0].number(), 8.0);
  ASSERT_EQ(doc.at("families").array().size(), 1u);
  EXPECT_EQ(doc.at("families").array()[0].at("chosen").array()[0].str(),
            "p log p");
}

TEST(TrendJson, WallShareSeriesRoundTrips) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  prof_reg("aaa", 0.25, 1.0)});
  const Json doc = Json::parse(trend::data_json(td));
  const Json& prof = doc.at("scenarios").array()[0];
  EXPECT_EQ(prof.at("key").str(), "prof/tree.build");
  EXPECT_DOUBLE_EQ(prof.at("wall_share").array()[0].number(), 0.25);
  const Json& bench = doc.at("scenarios").array()[1];
  EXPECT_TRUE(bench.at("wall_share").array()[0].is_null());
}

TEST(TrendJson, AbsentRunsSerializeAsNull) {
  const auto td =
      ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                      reg("bbb", "t1", "other", 1.0, 0.5)});
  const Json doc = Json::parse(trend::data_json(td));
  const Json& sc = doc.at("scenarios").array()[1];  // "t1/s"
  EXPECT_EQ(sc.at("key").str(), "t1/s");
  EXPECT_TRUE(sc.at("iter_time").array()[1].is_null());
}

TEST(TrendHtml, DashboardIsSelfContainedAndEmbedsTheData) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  reg("bbb", "t1", "s", 11.0, 9.0)});
  const std::string html = trend::render_html(td);

  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("id=\"trend-data\""), std::string::npos);
  EXPECT_NE(html.find("bh.trend.v1"), std::string::npos);
  EXPECT_NE(html.find("t1/s"), std::string::npos);  // scenario key
  EXPECT_NE(html.find("\"aaa\""), std::string::npos);  // run sha in data
  // Self-contained: nothing that fetches over the network. (The SVG
  // namespace constant in the inline JS is the only URL-shaped string.)
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  EXPECT_EQ(html.find("fetch("), std::string::npos);
  EXPECT_EQ(html.find("XMLHttpRequest"), std::string::npos);
  // Dark mode and the hover layer are part of the shell.
  EXPECT_NE(html.find("prefers-color-scheme"), std::string::npos);
  EXPECT_NE(html.find("title"), std::string::npos);
}

TEST(TrendHtml, WallClockRowsGetTheirOwnPanel) {
  const auto td = ingest_strings({reg("aaa", "t1", "s", 10.0, 8.0),
                                  prof_reg("aaa", 0.25, 1.0)});
  const std::string html = trend::render_html(td);
  // The shell carries a dedicated host-wall panel, and the prof scenario
  // rides in the embedded data for it.
  EXPECT_NE(html.find("id=\"wall\""), std::string::npos);
  EXPECT_NE(html.find("Wall clock (host)"), std::string::npos);
  EXPECT_NE(html.find("prof/tree.build"), std::string::npos);
  EXPECT_NE(html.find("wall_share"), std::string::npos);
}

TEST(TrendHtml, ScriptCloseInsideDataCannotBreakTheDocument) {
  // A hostile scenario name containing </script> must not terminate the
  // embedded data block early.
  const auto td = ingest_strings(
      {reg("aaa", "t1", "x</script><b>y", 10.0, 8.0)});
  const std::string html = trend::render_html(td);
  EXPECT_EQ(html.find("x</script>"), std::string::npos);
  EXPECT_NE(html.find("x<\\/script>"), std::string::npos);
}

}  // namespace
}  // namespace bh
