// Tests for the byte-stream wire format used by the data-shipping node
// fetch protocol.
#include <gtest/gtest.h>

#include "mp/wire.hpp"

namespace bh::mp {
namespace {

TEST(Wire, ScalarRoundTrip) {
  ByteWriter w;
  w.put<int>(42);
  w.put<double>(3.25);
  w.put<std::uint8_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<int>(), 42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.done());
}

TEST(Wire, SpanRoundTrip) {
  ByteWriter w;
  std::vector<double> xs = {1.0, 2.0, 3.0};
  w.put_span<double>(xs);
  std::vector<int> empty;
  w.put_span<int>(empty);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<double>(), xs);
  EXPECT_TRUE(r.get_vector<int>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Wire, MixedStructsAndSpans) {
  struct Rec {
    int a;
    double b;
    bool operator==(const Rec&) const = default;
  };
  ByteWriter w;
  w.put(Rec{1, 2.5});
  w.put_span<Rec>(std::vector<Rec>{{3, 4.5}, {5, 6.5}});
  w.put<std::uint64_t>(99);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<Rec>(), (Rec{1, 2.5}));
  const auto v = r.get_vector<Rec>();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], (Rec{5, 6.5}));
  EXPECT_EQ(r.get<std::uint64_t>(), 99u);
}

TEST(Wire, TruncatedScalarThrows) {
  ByteWriter w;
  w.put<int>(5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get<double>(), std::out_of_range);
}

TEST(Wire, TruncatedVectorThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(1000);  // length prefix promising too much
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<double>(), std::out_of_range);
}

TEST(Wire, DoneTracksPosition) {
  ByteWriter w;
  w.put<int>(1);
  w.put<int>(2);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.done());
  r.get<int>();
  EXPECT_FALSE(r.done());
  r.get<int>();
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace bh::mp
