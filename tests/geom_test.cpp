// Unit tests for the geometry substrate: vectors, boxes, Morton keys,
// node keys, Gray-code mappings and Hilbert indices.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "geom/aabb.hpp"
#include "geom/gray.hpp"
#include "geom/hilbert.hpp"
#include "geom/morton.hpp"
#include "geom/vec.hpp"

namespace bh::geom {
namespace {

TEST(Vec, Arithmetic) {
  Vec3 a{{1.0, 2.0, 3.0}}, b{{4.0, 5.0, 6.0}};
  EXPECT_EQ((a + b), (Vec3{{5.0, 7.0, 9.0}}));
  EXPECT_EQ((b - a), (Vec3{{3.0, 3.0, 3.0}}));
  EXPECT_EQ((2.0 * a), (Vec3{{2.0, 4.0, 6.0}}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(a), 14.0);
  EXPECT_DOUBLE_EQ(norm(Vec3{{3.0, 4.0, 0.0}}), 5.0);
}

TEST(Vec, CrossProduct) {
  Vec3 x{{1, 0, 0}}, y{{0, 1, 0}}, z{{0, 0, 1}};
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
}

TEST(Vec, MinMax) {
  Vec3 a{{1, 5, 3}}, b{{2, 4, 3}};
  EXPECT_EQ(cmin(a, b), (Vec3{{1, 4, 3}}));
  EXPECT_EQ(cmax(a, b), (Vec3{{2, 5, 3}}));
}

TEST(Box, OctantsPartitionTheBox) {
  Box3 b{{{0, 0, 0}}, 8.0};
  // Every sampled point lies in exactly one child, the one octant_of names.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 8.0);
  for (int i = 0; i < 500; ++i) {
    Vec3 p{{u(rng), u(rng), u(rng)}};
    ASSERT_TRUE(b.contains(p));
    int containing = 0;
    for (unsigned q = 0; q < 8; ++q) {
      if (b.child(q).contains(p)) {
        ++containing;
        EXPECT_EQ(q, b.octant_of(p));
      }
    }
    EXPECT_EQ(containing, 1);
  }
}

TEST(Box, ChildGeometry) {
  Box3 b{{{0, 0, 0}}, 2.0};
  EXPECT_EQ(b.child(0).lo, (Vec3{{0, 0, 0}}));
  EXPECT_EQ(b.child(1).lo, (Vec3{{1, 0, 0}}));  // bit 0 = axis 0
  EXPECT_EQ(b.child(2).lo, (Vec3{{0, 1, 0}}));
  EXPECT_EQ(b.child(4).lo, (Vec3{{0, 0, 1}}));
  EXPECT_DOUBLE_EQ(b.child(7).edge, 1.0);
  EXPECT_EQ(b.child(7).lo, (Vec3{{1, 1, 1}}));
}

TEST(Box, BoundingCubeContainsAll) {
  std::mt19937_64 rng(13);
  std::normal_distribution<double> g(0.0, 10.0);
  std::vector<Vec3> pts(1000);
  for (auto& p : pts) p = Vec3{{g(rng), g(rng), g(rng)}};
  const Box3 b = bounding_cube<3, double>(pts);
  for (const auto& p : pts) EXPECT_TRUE(b.contains(p));
}

TEST(Box, BoundingCubeDegenerate) {
  std::vector<Vec3> one{Vec3{{5, 5, 5}}};
  const Box3 b = bounding_cube<3, double>(one);
  EXPECT_TRUE(b.contains(one[0]));
  EXPECT_GT(b.edge, 0.0);
  const Box3 empty = bounding_cube<3, double>(std::vector<Vec3>{});
  EXPECT_GT(empty.edge, 0.0);
}

TEST(Morton, RoundTrip3D) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::array<std::uint64_t, 3> g{rng() & 0x1fffff, rng() & 0x1fffff,
                                   rng() & 0x1fffff};
    EXPECT_EQ(morton_decode<3>(morton_encode<3>(g)), g);
  }
}

TEST(Morton, RoundTrip2D) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 2000; ++i) {
    std::array<std::uint64_t, 2> g{rng() & 0xffffffff, rng() & 0xffffffff};
    EXPECT_EQ(morton_decode<2>(morton_encode<2>(g)), g);
  }
}

TEST(Morton, OrderMatchesOctantDigits) {
  // The top D bits of a full-depth Morton key are the root octant index.
  Box3 root{{{0, 0, 0}}, 1.0};
  for (unsigned q = 0; q < 8; ++q) {
    const Vec3 c = root.child(q).center();
    const std::uint64_t key = morton_key(c, root, morton_max_level<3>);
    EXPECT_EQ(key >> (3 * (morton_max_level<3> - 1)), q);
  }
}

TEST(NodeKey, ChildParentRoundTrip) {
  NodeKey<3> root{};
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.level(), 0u);
  auto k = root.child(5).child(0).child(7);
  EXPECT_EQ(k.level(), 3u);
  EXPECT_EQ(k.parent().parent().parent(), root);
  EXPECT_TRUE(root.ancestor_of(k));
  EXPECT_TRUE(root.child(5).ancestor_of(k));
  EXPECT_FALSE(root.child(4).ancestor_of(k));
  EXPECT_FALSE(k.ancestor_of(root));
}

TEST(NodeKey, DistinctAcrossLevels) {
  // Keys of different boxes never collide even across depths.
  std::set<std::uint64_t> seen;
  NodeKey<3> root{};
  seen.insert(root.v);
  for (unsigned a = 0; a < 8; ++a) {
    ASSERT_TRUE(seen.insert(root.child(a).v).second);
    for (unsigned b = 0; b < 8; ++b)
      ASSERT_TRUE(seen.insert(root.child(a).child(b).v).second);
  }
}

TEST(NodeKey, BoxOfKeyInvertsNodeKeyOf) {
  Box3 root{{{-3, -3, -3}}, 6.0};
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (int i = 0; i < 200; ++i) {
    Vec3 p{{u(rng), u(rng), u(rng)}};
    for (unsigned level : {1u, 3u, 6u}) {
      const auto key = node_key_of(p, root, level);
      const Box3 b = box_of_key(key, root);
      EXPECT_TRUE(b.contains(p)) << "level " << level;
      EXPECT_NEAR(b.edge, root.edge / double(1u << level), 1e-12);
    }
  }
}

TEST(Gray, Involution) {
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(gray_inverse(gray(i, 8), 8), i);
  }
}

TEST(Gray, AdjacentCodesDifferInOneBit) {
  for (std::uint32_t i = 0; i + 1 < 64; ++i) {
    const std::uint32_t d = gray(i, 6) ^ gray(i + 1, 6);
    EXPECT_EQ(d & (d - 1), 0u);  // power of two: exactly one bit
    EXPECT_NE(d, 0u);
  }
}

TEST(Gray, ClusterMapCoversAllProcessors) {
  // 8x8x8 clusters on 64 processors: every processor gets exactly
  // 512/64 = 8 clusters.
  GrayClusterMap<3> map(8, 64);
  EXPECT_EQ(map.total_procs(), 64u);
  std::vector<int> cnt(64, 0);
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z) {
        const unsigned pr = map.proc_of({x, y, z});
        ASSERT_LT(pr, 64u);
        ++cnt[pr];
      }
  for (int c : cnt) EXPECT_EQ(c, 8);
}

TEST(Gray, AdjacentClustersOnAdjacentProcessors) {
  // The point of the Gray mapping: +-1 in a grid axis is one hypercube hop
  // (when the clusters map to distinct processors).
  GrayClusterMap<2> map(8, 16);  // 4 procs per axis, 2 bits each
  for (std::uint32_t x = 0; x + 1 < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y) {
      const unsigned a = map.proc_of({x, y});
      const unsigned b = map.proc_of({x + 1, y});
      if (a != b) {
        EXPECT_EQ(hypercube_hops(a, b), 1u) << x << "," << y;
      }
    }
}

TEST(Hilbert, Bijective2D) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 16; ++x)
    for (std::uint32_t y = 0; y < 16; ++y)
      ASSERT_TRUE(seen.insert(hilbert_index_2d(x, y, 4)).second);
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(Hilbert, Bijective3D) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z)
        ASSERT_TRUE(seen.insert(hilbert_index_3d(x, y, z, 3)).second);
  EXPECT_EQ(seen.size(), 512u);
  EXPECT_EQ(*seen.rbegin(), 511u);
}

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbors2D) {
  // The defining continuity property of the Hilbert curve.
  const unsigned order = 5, n = 1u << order;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_index(n * n);
  for (std::uint32_t x = 0; x < n; ++x)
    for (std::uint32_t y = 0; y < n; ++y)
      by_index[hilbert_index_2d(x, y, order)] = {x, y};
  for (std::size_t i = 0; i + 1 < by_index.size(); ++i) {
    const auto [x0, y0] = by_index[i];
    const auto [x1, y1] = by_index[i + 1];
    const unsigned manhattan =
        (x0 > x1 ? x0 - x1 : x1 - x0) + (y0 > y1 ? y0 - y1 : y1 - y0);
    ASSERT_EQ(manhattan, 1u) << "discontinuity at index " << i;
  }
}

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbors3D) {
  const unsigned order = 3, n = 1u << order;
  std::vector<std::array<std::uint32_t, 3>> by_index(n * n * n);
  for (std::uint32_t x = 0; x < n; ++x)
    for (std::uint32_t y = 0; y < n; ++y)
      for (std::uint32_t z = 0; z < n; ++z)
        by_index[hilbert_index_3d(x, y, z, order)] = {x, y, z};
  for (std::size_t i = 0; i + 1 < by_index.size(); ++i) {
    unsigned manhattan = 0;
    for (int a = 0; a < 3; ++a) {
      const auto u = by_index[i][a], v = by_index[i + 1][a];
      manhattan += u > v ? u - v : v - u;
    }
    ASSERT_EQ(manhattan, 1u) << "discontinuity at index " << i;
  }
}

}  // namespace
}  // namespace bh::geom
