// protocheck_test.cpp -- the static protocol checker against the real
// registry, the seeded-violation fixtures, and the real source tree.
//
// Every fixture under tests/fixtures/protocheck/ must trip *exactly* its
// intended rule when scanned in isolation; suppression comments must
// silence it; and the shipped src/ tree must scan clean -- the same gate
// the CI static-analysis job enforces.
#include "protocheck/protocheck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pc = bh::protocheck;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

pc::Registry real_registry() {
  const std::string path = BH_PROTOCHECK_REGISTRY;
  return pc::parse_registry(path, slurp(path));
}

/// Scan one fixture file in isolation against the real registry.
pc::Report run_fixture(const std::string& name) {
  const std::string path =
      std::string(BH_PROTOCHECK_FIXTURE_DIR) + "/" + name;
  std::vector<pc::LexedFile> files;
  files.push_back(pc::lex(path, slurp(path)));
  return pc::analyze(real_registry(), files);
}

std::string dump(const pc::Report& r) { return pc::format_human(r); }

}  // namespace

TEST(ProtocheckRegistry, ParsesRealHeader) {
  const auto reg = real_registry();
  ASSERT_GE(reg.tags.size(), 5u);
  const auto* fetch = reg.by_const("kTagFetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->tag, 110);
  EXPECT_EQ(fetch->wire_name, "dataship.fetch");
  EXPECT_EQ(fetch->payload, "uint64_t");
  EXPECT_EQ(fetch->dir, "kRequest");
  const auto* req = reg.by_const("kTagFuncRequest");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->payload, "ShipItem");
  EXPECT_EQ(reg.scratch_first, 0);
  EXPECT_EQ(reg.scratch_last, 63);
  EXPECT_GE(reg.phases.size(), 5u);
}

TEST(ProtocheckRegistry, RejectsHeaderWithoutTable) {
  EXPECT_THROW(pc::parse_registry("x.hpp", "inline constexpr int kA = 1;"),
               std::runtime_error);
}

TEST(ProtocheckRegistry, RejectsRowWithUndeclaredConstant) {
  const std::string bad =
      "struct TagSpec { int t; const char* n; const char* p; int d; };\n"
      "enum class Dir { kRequest };\n"
      "inline constexpr TagSpec kTags[] = {\n"
      "    {kNotDeclared, \"x\", \"y\", Dir::kRequest},\n"
      "};\n";
  EXPECT_THROW(pc::parse_registry("x.hpp", bad), std::runtime_error);
}

// -- one fixture per rule ----------------------------------------------------

struct FixtureCase {
  const char* file;
  const char* rule;
};

class ProtocheckFixture : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(ProtocheckFixture, TripsExactlyItsRule) {
  const auto& p = GetParam();
  const auto r = run_fixture(p.file);
  ASSERT_EQ(r.findings.size(), 1u) << dump(r);
  EXPECT_EQ(r.findings[0].rule, p.rule) << dump(r);
  EXPECT_GT(r.findings[0].line, 0);
  EXPECT_EQ(r.suppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, ProtocheckFixture,
    ::testing::Values(FixtureCase{"raw_tag.cpp", "raw-tag"},
                      FixtureCase{"unmatched_tag.cpp", "unmatched-tag"},
                      FixtureCase{"payload_mismatch.cpp", "payload-mismatch"},
                      FixtureCase{"divergent_collective.cpp",
                                  "divergent-collective"},
                      FixtureCase{"phase_unbalanced.cpp", "phase-balance"}),
    [](const auto& info) {
      std::string n = info.param.rule;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(ProtocheckSuppression, AllowCommentsSilenceEveryRule) {
  const auto r = run_fixture("suppressed.cpp");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
  // One violation per rule, plus both sends are also one-sided.
  EXPECT_EQ(r.suppressed, 6u);
}

TEST(ProtocheckSuppression, CleanFixtureHasNoFindingsAndNoSuppressions) {
  const auto r = run_fixture("clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
  EXPECT_EQ(r.suppressed, 0u);
}

// -- the real tree -----------------------------------------------------------

TEST(ProtocheckRealTree, SrcScansClean) {
  const auto sources = pc::collect_sources({BH_PROTOCHECK_SRC_DIR});
  ASSERT_GT(sources.size(), 20u);
  std::vector<pc::LexedFile> files;
  for (const auto& s : sources) files.push_back(pc::lex(s, slurp(s)));
  const auto r = pc::analyze(real_registry(), files);
  EXPECT_TRUE(r.findings.empty()) << dump(r);
}

// -- output formats ----------------------------------------------------------

TEST(ProtocheckOutput, JsonCarriesSchemaAndFindings) {
  const auto r = run_fixture("raw_tag.cpp");
  const auto j = pc::format_json(r);
  EXPECT_NE(j.find("\"schema\": \"bh.protocheck.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"rule\": \"raw-tag\""), std::string::npos);
  EXPECT_NE(j.find("raw_tag.cpp"), std::string::npos);
}

TEST(ProtocheckOutput, JsonEscapesSpecials) {
  pc::Report r;
  r.findings.push_back(pc::Finding{"raw-tag", "a\"b.cpp", 1, "x\\y\nz"});
  const auto j = pc::format_json(r);
  EXPECT_NE(j.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(j.find("x\\\\y\\nz"), std::string::npos);
}

TEST(ProtocheckOutput, HumanReportNamesRuleAndSite) {
  const auto r = run_fixture("divergent_collective.cpp");
  const auto h = pc::format_human(r);
  EXPECT_NE(h.find("[divergent-collective]"), std::string::npos);
  EXPECT_NE(h.find("divergent_collective.cpp:"), std::string::npos);
}

// -- lexer corner cases ------------------------------------------------------

TEST(ProtocheckLexer, CommentsStringsAndPreprocessorAreInert) {
  const std::string src =
      "#include <thing> // send_value(0, 7, 0)\n"
      "// c.send_value(0, 7, 0);\n"
      "/* c.send_value(0, 7, 0); */\n"
      "const char* s = \"send_value(0, 7, 0)\";\n";
  std::vector<pc::LexedFile> files{pc::lex("inert.cpp", src)};
  const auto r = pc::analyze(real_registry(), files);
  EXPECT_TRUE(r.findings.empty()) << dump(r);
}

TEST(ProtocheckLexer, AllowListParsesMultipleRules) {
  const auto f = pc::lex("a.cpp",
                         "// bh-protocheck: allow(raw-tag, phase-balance)\n");
  ASSERT_EQ(f.allows.size(), 1u);
  const auto& rules = f.allows.begin()->second;
  EXPECT_TRUE(rules.count("raw-tag"));
  EXPECT_TRUE(rules.count("phase-balance"));
}
