// Tests for the hierarchical kernel matrix-vector product (the paper's
// boundary-element application, Section 6 / companion paper [17]).
#include <gtest/gtest.h>

#include <random>

#include "bem/hmatvec.hpp"

namespace bh::bem {
namespace {

std::vector<Vec<3>> sphere_points(std::size_t n, std::uint64_t seed = 9) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<Vec<3>> pts(n);
  for (auto& p : pts) {
    Vec<3> v{{g(rng), g(rng), g(rng)}};
    p = v / geom::norm(v);
  }
  return pts;
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed = 10) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);  // signed!
  std::vector<double> w(n);
  for (auto& x : w) x = u(rng);
  return w;
}

double rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / std::max(den, 1e-300));
}

TEST(HMatVec, LaplaceMatchesDenseForSignedWeights) {
  const auto pts = sphere_points(800);
  const auto w = random_weights(pts.size());
  MatVecOptions opts{.alpha = 0.4, .degree = 4};
  HierarchicalKernelMatrix A(pts, KernelKind::kLaplace, opts);
  const auto fast = A.apply(w);
  const auto dense = dense_matvec(pts, w, KernelKind::kLaplace, opts);
  EXPECT_LT(rel_err(fast, dense), 1e-4);
}

TEST(HMatVec, AccuracyImprovesWithDegree) {
  const auto pts = sphere_points(600, 11);
  const auto w = random_weights(pts.size(), 12);
  const auto dense = dense_matvec(pts, w, KernelKind::kLaplace, {});
  double prev = 1e9;
  for (unsigned degree : {0u, 2u, 4u}) {
    MatVecOptions opts{.alpha = 0.6, .degree = degree};
    HierarchicalKernelMatrix A(pts, KernelKind::kLaplace, opts);
    const double err = rel_err(A.apply(w), dense);
    EXPECT_LT(err, prev * 1.2) << "degree " << degree;
    prev = err;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(HMatVec, YukawaMatchesDense) {
  // Monopole clustering with *signed* weights is the coarse regime (node
  // sums can cancel); accuracy is MAC-order, improving as alpha shrinks.
  const auto pts = sphere_points(500, 13);
  const auto w = random_weights(pts.size(), 14);
  double prev = 1e9;
  for (double alpha : {0.5, 0.3, 0.15}) {
    MatVecOptions opts{.alpha = alpha};
    opts.yukawa_kappa = 0.8;
    HierarchicalKernelMatrix A(pts, KernelKind::kYukawa, opts);
    const auto fast = A.apply(w);
    const auto dense = dense_matvec(pts, w, KernelKind::kYukawa, opts);
    const double err = rel_err(fast, dense);
    EXPECT_LT(err, prev * 1.1) << alpha;
    prev = err;
  }
  EXPECT_LT(prev, 5e-3);
}

TEST(HMatVec, DiagonalTermApplied) {
  const auto pts = sphere_points(50, 15);
  std::vector<double> w(pts.size(), 1.0);
  MatVecOptions with{.alpha = 0.3, .degree = 2};
  with.diagonal = 10.0;
  MatVecOptions without = with;
  without.diagonal = 0.0;
  HierarchicalKernelMatrix A(pts, KernelKind::kLaplace, with);
  HierarchicalKernelMatrix B(pts, KernelKind::kLaplace, without);
  const auto ya = A.apply(w);
  const auto yb = B.apply(w);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(ya[i], yb[i] + 10.0, 1e-9);
}

TEST(HMatVec, LinearityInWeights) {
  const auto pts = sphere_points(300, 16);
  const auto w1 = random_weights(pts.size(), 17);
  const auto w2 = random_weights(pts.size(), 18);
  HierarchicalKernelMatrix A(pts, KernelKind::kLaplace,
                             {.alpha = 0.5, .degree = 3});
  std::vector<double> wsum(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    wsum[i] = 2.0 * w1[i] - 0.5 * w2[i];
  const auto y1 = A.apply(w1);
  const auto y2 = A.apply(w2);
  const auto ys = A.apply(wsum);
  // Exact linearity (fixed tree geometry): only rounding separates them.
  for (std::size_t i = 0; i < pts.size(); ++i)
    ASSERT_NEAR(ys[i], 2.0 * y1[i] - 0.5 * y2[i],
                1e-10 * (1.0 + std::abs(ys[i])));
}

TEST(HMatVec, CgSolvesCollocationSystem) {
  // Well-posed single-layer collocation: quasi-uniform panels (Fibonacci
  // sphere -- random points can be arbitrarily close, which makes the
  // zero-diagonal kernel matrix indefinite) plus the standard panel
  // self-term on the diagonal.
  const std::size_t n = 400;
  std::vector<Vec<3>> pts(n);
  const double golden = M_PI * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double z = 1.0 - 2.0 * (double(i) + 0.5) / double(n);
    const double r = std::sqrt(1.0 - z * z);
    pts[i] = {{r * std::cos(golden * double(i)),
               r * std::sin(golden * double(i)), z}};
  }
  const double patch = 4.0 * M_PI / double(n);
  MatVecOptions opts{.alpha = 0.4, .degree = 3};
  opts.diagonal = 2.0 * std::sqrt(M_PI * patch) / patch;
  HierarchicalKernelMatrix A(pts, KernelKind::kLaplace, opts);

  // Manufactured solution.
  const auto x_true = random_weights(n, 20);
  const auto b = A.apply(x_true);
  const auto res = A.solve_cg(b, 1e-9, 300);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.relative_residual, 1e-8);
  EXPECT_LT(rel_err(res.x, x_true), 1e-6);
  EXPECT_GT(res.iterations, 0);
}

TEST(HMatVec, RejectsEmptyPointSet) {
  EXPECT_THROW(
      HierarchicalKernelMatrix({}, KernelKind::kLaplace, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace bh::bem
