// Unit and property tests for the serial Barnes-Hut tree: structural
// invariants, upward-pass identities, MAC traversal accuracy trends
// (alpha and degree), box collapsing and the direct-sum reference.
#include <gtest/gtest.h>

#include <random>

#include "model/distributions.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {
namespace {

using model::ParticleSet;
using model::Rng;

ParticleSet<3> make_plummer(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  return model::plummer<3>(n, rng);
}

// ---------------------------------------------------------------------------
// Structural invariants, parameterized over leaf capacity and distribution.
// ---------------------------------------------------------------------------

struct TreeParam {
  unsigned leaf_capacity;
  bool collapse;
  const char* dist;  // "plummer" | "uniform" | "mixture"
};

class TreeInvariants : public ::testing::TestWithParam<TreeParam> {
 protected:
  ParticleSet<3> make(std::size_t n) const {
    Rng rng(99);
    const auto& p = GetParam();
    if (std::string(p.dist) == "uniform")
      return model::uniform_box<3>(n, rng, {{{0, 0, 0}}, 50.0});
    if (std::string(p.dist) == "mixture")
      return model::gaussian_mixture<3>(n, rng, 5, {{{0, 0, 0}}, 100.0}, 1.0);
    return model::plummer<3>(n, rng);
  }
};

TEST_P(TreeInvariants, LeavesPartitionParticles) {
  const auto ps = make(3000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  // Every particle slot covered by exactly one leaf; leaf ranges disjoint.
  std::vector<int> covered(ps.size(), 0);
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
      ++covered[s];
  }
  for (int c : covered) ASSERT_EQ(c, 1);
  // perm is a permutation.
  std::vector<int> seen(ps.size(), 0);
  for (auto i : t.perm) ++seen[i];
  for (int c : seen) ASSERT_EQ(c, 1);
}

TEST_P(TreeInvariants, ParticlesInsideTheirLeafBoxes) {
  const auto ps = make(2000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
      ASSERT_TRUE(n.box.contains(ps.pos[t.perm[s]]));
  }
}

TEST_P(TreeInvariants, MassAndComConsistent) {
  const auto ps = make(2500);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  EXPECT_NEAR(t.root().mass, ps.total_mass(), 1e-9);
  // Root COM equals direct mass-weighted mean.
  geom::Vec<3> com{};
  for (std::size_t i = 0; i < ps.size(); ++i) com += ps.mass[i] * ps.pos[i];
  com /= ps.total_mass();
  for (int a = 0; a < 3; ++a) EXPECT_NEAR(t.root().com[a], com[a], 1e-9);
  // Internal node mass = sum of children.
  for (const auto& n : t.nodes) {
    if (n.is_leaf) continue;
    double m = 0.0;
    for (auto c : n.child)
      if (c != kNullNode) m += t.nodes[c].mass;
    ASSERT_NEAR(n.mass, m, 1e-12);
  }
}

TEST_P(TreeInvariants, LeafCountsRespectCapacity) {
  const auto ps = make(4000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  const unsigned max_level = geom::morton_max_level<3>;
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    // A leaf may exceed capacity only at the maximum refinement level
    // (coincident-particle clamp).
    if (n.count > p.leaf_capacity) {
      EXPECT_EQ(n.key.level(), max_level);
    }
  }
}

TEST_P(TreeInvariants, FindLocatesEveryNodeByKey) {
  const auto ps = make(1500);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  for (std::size_t i = 0; i < t.nodes.size(); ++i)
    ASSERT_EQ(t.find(t.nodes[i].key), static_cast<std::int32_t>(i));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeInvariants,
    ::testing::Values(TreeParam{1, false, "plummer"},
                      TreeParam{2, false, "plummer"},
                      TreeParam{8, false, "plummer"},
                      TreeParam{1, true, "plummer"},
                      TreeParam{4, true, "mixture"},
                      TreeParam{1, false, "uniform"},
                      TreeParam{16, true, "uniform"}));

// ---------------------------------------------------------------------------
// Degenerate and adversarial inputs.
// ---------------------------------------------------------------------------

TEST(TreeEdgeCases, EmptySet) {
  ParticleSet<3> ps;
  auto t = build_tree(ps, {{{0, 0, 0}}, 1.0}, {});
  EXPECT_EQ(t.nodes.size(), 1u);
  EXPECT_TRUE(t.root().is_leaf);
  EXPECT_EQ(t.root().count, 0u);
}

TEST(TreeEdgeCases, SingleParticle) {
  ParticleSet<3> ps;
  ps.push_back({{1, 2, 3}}, {}, 5.0, 0);
  auto t = build_tree(ps, ps.bounding_cube(), {});
  EXPECT_TRUE(t.root().is_leaf);
  EXPECT_DOUBLE_EQ(t.root().mass, 5.0);
}

TEST(TreeEdgeCases, CoincidentParticlesTerminate) {
  // The paper notes the naive tree is unbounded for arbitrarily close
  // pairs; the level clamp must keep construction finite.
  ParticleSet<3> ps;
  for (int i = 0; i < 10; ++i) ps.push_back({{1.0, 1.0, 1.0}}, {}, 1.0, i);
  ps.push_back({{1.0 + 1e-15, 1.0, 1.0}}, {}, 1.0, 10);
  auto t = build_tree(ps, {{{0, 0, 0}}, 2.0}, {.leaf_capacity = 1});
  EXPECT_LE(t.nodes.size(), 400u);
  EXPECT_NEAR(t.root().mass, 11.0, 1e-12);
}

TEST(TreeEdgeCases, CollapseShrinksDegenerateTree) {
  // Two tight pairs far apart: collapsing skips the long single-child
  // chains the paper's Section 2 describes.
  ParticleSet<3> ps;
  ps.push_back({{1e-7, 0, 0}}, {}, 1.0, 0);
  ps.push_back({{2e-7, 0, 0}}, {}, 1.0, 1);
  ps.push_back({{100 - 1e-7, 100, 100}}, {}, 1.0, 2);
  ps.push_back({{100 - 2e-7, 100, 100}}, {}, 1.0, 3);
  const geom::Box<3> box{{{0, 0, 0}}, 128.0};
  auto plain = build_tree(ps, box, {.leaf_capacity = 1, .collapse = false});
  auto collapsed = build_tree(ps, box, {.leaf_capacity = 1, .collapse = true});
  EXPECT_LT(collapsed.nodes.size(), plain.nodes.size() / 2);
}

// ---------------------------------------------------------------------------
// Traversal accuracy.
// ---------------------------------------------------------------------------

TEST(Traversal, MatchesDirectSumForTinyAlpha) {
  // alpha -> 0 rejects every internal node: traversal degenerates to exact
  // direct summation.
  auto ps = make_plummer(300);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
  TraversalOptions opts{.alpha = 1e-9, .kind = FieldKind::kBoth};
  compute_fields(t, ps, opts);
  ParticleSet<3> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kBoth);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(ps.potential[i], ref.potential[i],
                1e-10 * std::abs(ref.potential[i]));
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(ps.acc[i][a], ref.acc[i][a], 1e-9);
  }
}

TEST(Traversal, ErrorGrowsWithAlpha) {
  // Table 7 trend: larger alpha -> cheaper and less accurate.
  auto base = make_plummer(2000);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev_err = 0.0;
  std::uint64_t prev_work = ~0ull;
  for (double alpha : {0.3, 0.67, 1.0}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
    auto w = compute_fields(
        t, ps, {.alpha = alpha, .kind = FieldKind::kPotential,
                .use_expansions = false});
    const double err = fractional_error(ps.potential, exact.potential);
    EXPECT_GE(err, prev_err);
    const std::uint64_t work = w.interactions + w.direct_pairs;
    EXPECT_LT(work, prev_work);
    prev_err = err;
    prev_work = work;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(Traversal, ErrorShrinksWithDegree) {
  // Table 6 / Fig. 9 trend: higher multipole degree -> lower error.
  auto base = make_plummer(1500);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev_err = 1e9;
  for (unsigned degree : {0u, 2u, 3u, 4u, 5u}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, ps.bounding_cube(),
                        {.leaf_capacity = 4, .degree = degree});
    compute_fields(t, ps,
                   {.alpha = 0.8, .kind = FieldKind::kPotential,
                    .use_expansions = degree > 0});
    const double err = fractional_error(ps.potential, exact.potential);
    EXPECT_LT(err, prev_err) << "degree " << degree;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
}

TEST(Traversal, ForceMatchesDirectAtModestAlpha) {
  auto ps = make_plummer(800);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  compute_fields(t, ps, {.alpha = 0.5, .kind = FieldKind::kForce,
                         .use_expansions = false});
  ParticleSet<3> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kForce);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    num += geom::norm2(ps.acc[i] - ref.acc[i]);
    den += geom::norm2(ref.acc[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);  // ~2% RMS force error at 0.5
}

TEST(Traversal, WorkCountersAreConsistent) {
  auto ps = make_plummer(4000);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
  auto w = compute_fields(t, ps, {.alpha = 0.67,
                                  .kind = FieldKind::kPotential,
                                  .use_expansions = false});
  EXPECT_GT(w.mac_evals, 0u);
  EXPECT_GT(w.interactions, 0u);
  // Every accepted interaction followed a MAC test.
  EXPECT_GE(w.mac_evals, w.interactions);
  // O(n log n) regime: far fewer interactions than n^2.
  EXPECT_LT(w.interactions + w.direct_pairs,
            std::uint64_t(ps.size()) * ps.size() / 4);
  EXPECT_GT(w.flops(), 0u);
}

TEST(Traversal, LoadRecordingCountsInteractions) {
  // Section 3.3: "each node in the tree keeps track of the number of
  // particles it interacts with" -- the sum of node loads must equal the
  // total interaction count.
  auto ps = make_plummer(600);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  auto w = compute_fields(t, ps, {.alpha = 0.67,
                                  .kind = FieldKind::kPotential,
                                  .use_expansions = false,
                                  .record_load = true});
  std::uint64_t total_load = 0;
  for (const auto& n : t.nodes) total_load += n.load;
  EXPECT_EQ(total_load, w.interactions + w.direct_pairs);
  t.reset_loads();
  for (const auto& n : t.nodes) EXPECT_EQ(n.load, 0u);
}

TEST(Traversal, SubtreeEvaluationDecomposes) {
  // Field(root) == sum of Field(child) for a detached evaluation point:
  // the identity function shipping relies on (a shipped particle interacts
  // with entire remote subtrees).
  auto ps = make_plummer(500);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 4});
  const geom::Vec<3> target{{50, 50, 50}};
  TraversalOptions opts{.alpha = 0.67, .kind = FieldKind::kBoth,
                        .use_expansions = false};
  const auto whole =
      evaluate_subtree(t, ps, 0, target, kNoSelf, opts).field;
  multipole::FieldSample<3> sum;
  // Children of the root must not be accepted wholesale for this check to
  // be interesting; use exact traversal (alpha -> 0) on both sides.
  TraversalOptions exact_opts = opts;
  exact_opts.alpha = 1e-9;
  multipole::FieldSample<3> whole_exact =
      evaluate_subtree(t, ps, 0, target, kNoSelf, exact_opts).field;
  for (auto c : t.root().child) {
    if (c == kNullNode) continue;
    sum += evaluate_subtree(t, ps, c, target, kNoSelf, exact_opts).field;
  }
  EXPECT_NEAR(sum.potential, whole_exact.potential, 1e-12);
  (void)whole;
}

TEST(Traversal, TwoDimensionalTreeWorks) {
  Rng rng(7);
  auto ps = model::uniform_box<2>(500, rng, {{{0, 0}}, 10.0});
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  compute_fields(t, ps, {.alpha = 1e-9, .kind = FieldKind::kPotential,
                         .use_expansions = false});
  ParticleSet<2> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kPotential);
  for (std::size_t i = 0; i < ps.size(); ++i)
    ASSERT_NEAR(ps.potential[i], ref.potential[i],
                1e-9 * std::max(1.0, std::abs(ref.potential[i])));
}

TEST(FractionalError, Definition) {
  EXPECT_DOUBLE_EQ(fractional_error({1, 2}, {1, 2}), 0.0);
  EXPECT_NEAR(fractional_error({1.1, 2.2}, {1, 2}),
              0.1 * std::sqrt(5.0) / std::sqrt(5.0), 1e-12);
}

}  // namespace
}  // namespace bh::tree
