// Unit and property tests for the serial Barnes-Hut tree: structural
// invariants, upward-pass identities, MAC traversal accuracy trends
// (alpha and degree), box collapsing and the direct-sum reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "model/distributions.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {
namespace {

using model::ParticleSet;
using model::Rng;

ParticleSet<3> make_plummer(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  return model::plummer<3>(n, rng);
}

// ---------------------------------------------------------------------------
// Structural invariants, parameterized over leaf capacity and distribution.
// ---------------------------------------------------------------------------

struct TreeParam {
  unsigned leaf_capacity;
  bool collapse;
  const char* dist;  // "plummer" | "uniform" | "mixture"
};

class TreeInvariants : public ::testing::TestWithParam<TreeParam> {
 protected:
  ParticleSet<3> make(std::size_t n) const {
    Rng rng(99);
    const auto& p = GetParam();
    if (std::string(p.dist) == "uniform")
      return model::uniform_box<3>(n, rng, {{{0, 0, 0}}, 50.0});
    if (std::string(p.dist) == "mixture")
      return model::gaussian_mixture<3>(n, rng, 5, {{{0, 0, 0}}, 100.0}, 1.0);
    return model::plummer<3>(n, rng);
  }
};

TEST_P(TreeInvariants, LeavesPartitionParticles) {
  const auto ps = make(3000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  // Every particle slot covered by exactly one leaf; leaf ranges disjoint.
  std::vector<int> covered(ps.size(), 0);
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
      ++covered[s];
  }
  for (int c : covered) ASSERT_EQ(c, 1);
  // perm is a permutation.
  std::vector<int> seen(ps.size(), 0);
  for (auto i : t.perm) ++seen[i];
  for (int c : seen) ASSERT_EQ(c, 1);
}

TEST_P(TreeInvariants, ParticlesInsideTheirLeafBoxes) {
  const auto ps = make(2000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
      ASSERT_TRUE(n.box.contains(ps.pos[t.perm[s]]));
  }
}

TEST_P(TreeInvariants, MassAndComConsistent) {
  const auto ps = make(2500);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  EXPECT_NEAR(t.root().mass, ps.total_mass(), 1e-9);
  // Root COM equals direct mass-weighted mean.
  geom::Vec<3> com{};
  for (std::size_t i = 0; i < ps.size(); ++i) com += ps.mass[i] * ps.pos[i];
  com /= ps.total_mass();
  for (int a = 0; a < 3; ++a) EXPECT_NEAR(t.root().com[a], com[a], 1e-9);
  // Internal node mass = sum of children.
  for (const auto& n : t.nodes) {
    if (n.is_leaf) continue;
    double m = 0.0;
    for (auto c : n.child)
      if (c != kNullNode) m += t.nodes[c].mass;
    ASSERT_NEAR(n.mass, m, 1e-12);
  }
}

TEST_P(TreeInvariants, LeafCountsRespectCapacity) {
  const auto ps = make(4000);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  const unsigned max_level = geom::morton_max_level<3>;
  for (const auto& n : t.nodes) {
    if (!n.is_leaf) continue;
    // A leaf may exceed capacity only at the maximum refinement level
    // (coincident-particle clamp).
    if (n.count > p.leaf_capacity) {
      EXPECT_EQ(n.key.level(), max_level);
    }
  }
}

TEST_P(TreeInvariants, FindLocatesEveryNodeByKey) {
  const auto ps = make(1500);
  const auto& p = GetParam();
  auto t = build_tree(ps, ps.bounding_cube(),
                      {.leaf_capacity = p.leaf_capacity, .max_level = 0,
                       .degree = 0, .collapse = p.collapse});
  for (std::size_t i = 0; i < t.nodes.size(); ++i)
    ASSERT_EQ(t.find(t.nodes[i].key), static_cast<std::int32_t>(i));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeInvariants,
    ::testing::Values(TreeParam{1, false, "plummer"},
                      TreeParam{2, false, "plummer"},
                      TreeParam{8, false, "plummer"},
                      TreeParam{1, true, "plummer"},
                      TreeParam{4, true, "mixture"},
                      TreeParam{1, false, "uniform"},
                      TreeParam{16, true, "uniform"}));

// ---------------------------------------------------------------------------
// Degenerate and adversarial inputs.
// ---------------------------------------------------------------------------

TEST(TreeEdgeCases, EmptySet) {
  ParticleSet<3> ps;
  auto t = build_tree(ps, {{{0, 0, 0}}, 1.0}, {});
  EXPECT_EQ(t.nodes.size(), 1u);
  EXPECT_TRUE(t.root().is_leaf);
  EXPECT_EQ(t.root().count, 0u);
}

TEST(TreeEdgeCases, SingleParticle) {
  ParticleSet<3> ps;
  ps.push_back({{1, 2, 3}}, {}, 5.0, 0);
  auto t = build_tree(ps, ps.bounding_cube(), {});
  EXPECT_TRUE(t.root().is_leaf);
  EXPECT_DOUBLE_EQ(t.root().mass, 5.0);
}

TEST(TreeEdgeCases, CoincidentParticlesTerminate) {
  // The paper notes the naive tree is unbounded for arbitrarily close
  // pairs; the level clamp must keep construction finite.
  ParticleSet<3> ps;
  for (int i = 0; i < 10; ++i) ps.push_back({{1.0, 1.0, 1.0}}, {}, 1.0, i);
  ps.push_back({{1.0 + 1e-15, 1.0, 1.0}}, {}, 1.0, 10);
  auto t = build_tree(ps, {{{0, 0, 0}}, 2.0}, {.leaf_capacity = 1});
  EXPECT_LE(t.nodes.size(), 400u);
  EXPECT_NEAR(t.root().mass, 11.0, 1e-12);
}

TEST(TreeEdgeCases, CollapseShrinksDegenerateTree) {
  // Two tight pairs far apart: collapsing skips the long single-child
  // chains the paper's Section 2 describes.
  ParticleSet<3> ps;
  ps.push_back({{1e-7, 0, 0}}, {}, 1.0, 0);
  ps.push_back({{2e-7, 0, 0}}, {}, 1.0, 1);
  ps.push_back({{100 - 1e-7, 100, 100}}, {}, 1.0, 2);
  ps.push_back({{100 - 2e-7, 100, 100}}, {}, 1.0, 3);
  const geom::Box<3> box{{{0, 0, 0}}, 128.0};
  auto plain = build_tree(ps, box, {.leaf_capacity = 1, .collapse = false});
  auto collapsed = build_tree(ps, box, {.leaf_capacity = 1, .collapse = true});
  EXPECT_LT(collapsed.nodes.size(), plain.nodes.size() / 2);
}

// ---------------------------------------------------------------------------
// Traversal accuracy.
// ---------------------------------------------------------------------------

TEST(Traversal, MatchesDirectSumForTinyAlpha) {
  // alpha -> 0 rejects every internal node: traversal degenerates to exact
  // direct summation.
  auto ps = make_plummer(300);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
  TraversalOptions opts{.alpha = 1e-9, .kind = FieldKind::kBoth};
  compute_fields(t, ps, opts);
  ParticleSet<3> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kBoth);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(ps.potential[i], ref.potential[i],
                1e-10 * std::abs(ref.potential[i]));
    for (int a = 0; a < 3; ++a)
      EXPECT_NEAR(ps.acc[i][a], ref.acc[i][a], 1e-9);
  }
}

TEST(Traversal, ErrorGrowsWithAlpha) {
  // Table 7 trend: larger alpha -> cheaper and less accurate.
  auto base = make_plummer(2000);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev_err = 0.0;
  std::uint64_t prev_work = ~0ull;
  for (double alpha : {0.3, 0.67, 1.0}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
    auto w = compute_fields(
        t, ps, {.alpha = alpha, .kind = FieldKind::kPotential,
                .use_expansions = false});
    const double err = fractional_error(ps.potential, exact.potential);
    EXPECT_GE(err, prev_err);
    const std::uint64_t work = w.interactions + w.direct_pairs;
    EXPECT_LT(work, prev_work);
    prev_err = err;
    prev_work = work;
  }
  EXPECT_GT(prev_err, 0.0);
}

TEST(Traversal, ErrorShrinksWithDegree) {
  // Table 6 / Fig. 9 trend: higher multipole degree -> lower error.
  auto base = make_plummer(1500);
  ParticleSet<3> exact = base;
  direct_sum(exact, FieldKind::kPotential);

  double prev_err = 1e9;
  for (unsigned degree : {0u, 2u, 3u, 4u, 5u}) {
    ParticleSet<3> ps = base;
    auto t = build_tree(ps, ps.bounding_cube(),
                        {.leaf_capacity = 4, .degree = degree});
    compute_fields(t, ps,
                   {.alpha = 0.8, .kind = FieldKind::kPotential,
                    .use_expansions = degree > 0});
    const double err = fractional_error(ps.potential, exact.potential);
    EXPECT_LT(err, prev_err) << "degree " << degree;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
}

TEST(Traversal, ForceMatchesDirectAtModestAlpha) {
  auto ps = make_plummer(800);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  compute_fields(t, ps, {.alpha = 0.5, .kind = FieldKind::kForce,
                         .use_expansions = false});
  ParticleSet<3> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kForce);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    num += geom::norm2(ps.acc[i] - ref.acc[i]);
    den += geom::norm2(ref.acc[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);  // ~2% RMS force error at 0.5
}

TEST(Traversal, WorkCountersAreConsistent) {
  auto ps = make_plummer(4000);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 1});
  auto w = compute_fields(t, ps, {.alpha = 0.67,
                                  .kind = FieldKind::kPotential,
                                  .use_expansions = false});
  EXPECT_GT(w.mac_evals, 0u);
  EXPECT_GT(w.interactions, 0u);
  // Every accepted interaction followed a MAC test.
  EXPECT_GE(w.mac_evals, w.interactions);
  // O(n log n) regime: far fewer interactions than n^2.
  EXPECT_LT(w.interactions + w.direct_pairs,
            std::uint64_t(ps.size()) * ps.size() / 4);
  EXPECT_GT(w.flops(), 0u);
}

TEST(Traversal, LoadRecordingCountsInteractions) {
  // Section 3.3: "each node in the tree keeps track of the number of
  // particles it interacts with" -- the sum of node loads must equal the
  // total interaction count.
  auto ps = make_plummer(600);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  auto w = compute_fields(t, ps, {.alpha = 0.67,
                                  .kind = FieldKind::kPotential,
                                  .use_expansions = false,
                                  .record_load = true});
  std::uint64_t total_load = 0;
  for (const auto& n : t.nodes) total_load += n.load;
  EXPECT_EQ(total_load, w.interactions + w.direct_pairs);
  t.reset_loads();
  for (const auto& n : t.nodes) EXPECT_EQ(n.load, 0u);
}

TEST(Traversal, SubtreeEvaluationDecomposes) {
  // Field(root) == sum of Field(child) for a detached evaluation point:
  // the identity function shipping relies on (a shipped particle interacts
  // with entire remote subtrees).
  auto ps = make_plummer(500);
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 4});
  const geom::Vec<3> target{{50, 50, 50}};
  TraversalOptions opts{.alpha = 0.67, .kind = FieldKind::kBoth,
                        .use_expansions = false};
  const auto whole =
      evaluate_subtree(t, ps, 0, target, kNoSelf, opts).field;
  multipole::FieldSample<3> sum;
  // Children of the root must not be accepted wholesale for this check to
  // be interesting; use exact traversal (alpha -> 0) on both sides.
  TraversalOptions exact_opts = opts;
  exact_opts.alpha = 1e-9;
  multipole::FieldSample<3> whole_exact =
      evaluate_subtree(t, ps, 0, target, kNoSelf, exact_opts).field;
  for (auto c : t.root().child) {
    if (c == kNullNode) continue;
    sum += evaluate_subtree(t, ps, c, target, kNoSelf, exact_opts).field;
  }
  EXPECT_NEAR(sum.potential, whole_exact.potential, 1e-12);
  (void)whole;
}

TEST(Traversal, TwoDimensionalTreeWorks) {
  Rng rng(7);
  auto ps = model::uniform_box<2>(500, rng, {{{0, 0}}, 10.0});
  auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 2});
  compute_fields(t, ps, {.alpha = 1e-9, .kind = FieldKind::kPotential,
                         .use_expansions = false});
  ParticleSet<2> ref = ps;
  ref.zero_accumulators();
  direct_sum(ref, FieldKind::kPotential);
  for (std::size_t i = 0; i < ps.size(); ++i)
    ASSERT_NEAR(ps.potential[i], ref.potential[i],
                1e-9 * std::max(1.0, std::abs(ref.potential[i])));
}

// ---------------------------------------------------------------------------
// Radix (sort-then-emit) construction vs. a recursive reference.
// ---------------------------------------------------------------------------

// Canonical description of one node, independent of emission order.
struct NodeDesc {
  unsigned level;
  std::uint32_t count;
  bool leaf;
  std::vector<std::uint32_t> ids;  // original particle indices, sorted
  bool operator==(const NodeDesc&) const = default;
};

unsigned digit_at3(std::uint64_t key, unsigned level, unsigned max_level) {
  return static_cast<unsigned>((key >> (3 * (max_level - 1 - level))) & 7u);
}

// Textbook recursive splitter: subdivide any over-full box, recursing into
// non-empty octants in Morton-digit order. Emits DFS preorder.
void ref_build(const std::vector<std::uint64_t>& keys,
               const std::vector<std::uint32_t>& idx, unsigned level,
               unsigned leaf_capacity, unsigned max_level,
               std::vector<NodeDesc>& out) {
  NodeDesc d;
  d.level = level;
  d.count = static_cast<std::uint32_t>(idx.size());
  d.ids = idx;
  std::sort(d.ids.begin(), d.ids.end());
  d.leaf = idx.size() <= leaf_capacity || level >= max_level;
  const bool is_leaf = d.leaf;
  out.push_back(std::move(d));
  if (is_leaf) return;
  std::array<std::vector<std::uint32_t>, 8> part;
  for (auto i : idx) part[digit_at3(keys[i], level, max_level)].push_back(i);
  for (const auto& p : part)
    if (!p.empty())
      ref_build(keys, p, level + 1, leaf_capacity, max_level, out);
}

void dfs_describe(const BhTree<3>& t, std::int32_t ni,
                  std::vector<NodeDesc>& out) {
  const auto& n = t.nodes[static_cast<std::size_t>(ni)];
  NodeDesc d;
  d.level = n.key.level();
  d.count = n.count;
  d.leaf = n.is_leaf;
  d.ids.assign(t.perm.begin() + n.first,
               t.perm.begin() + n.first + n.count);
  std::sort(d.ids.begin(), d.ids.end());
  out.push_back(std::move(d));
  if (n.is_leaf) return;
  for (auto c : n.child)
    if (c != kNullNode) dfs_describe(t, c, out);
}

TEST(RadixBuild, MatchesRecursiveReference) {
  // The sort-then-emit builder must produce exactly the tree the recursive
  // definition does: same nodes, same levels, same particle sets, children
  // in Morton-digit order.
  for (unsigned lc : {1u, 4u, 8u}) {
    auto ps = make_plummer(2000, 11);
    const auto box = ps.bounding_cube();
    auto t = build_tree(ps, box, {.leaf_capacity = lc});
    const unsigned max_level = geom::morton_max_level<3>;
    std::vector<std::uint64_t> keys(ps.size());
    std::vector<std::uint32_t> idx(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      keys[i] = geom::morton_key(ps.pos[i], box, max_level);
      idx[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<NodeDesc> ref, got;
    ref_build(keys, idx, 0, lc, max_level, ref);
    dfs_describe(t, 0, got);
    ASSERT_EQ(ref.size(), got.size()) << "leaf_capacity " << lc;
    ASSERT_EQ(ref.size(), t.nodes.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].level, got[i].level) << "node " << i;
      EXPECT_EQ(ref[i].count, got[i].count) << "node " << i;
      EXPECT_EQ(ref[i].leaf, got[i].leaf) << "node " << i;
      ASSERT_EQ(ref[i].ids, got[i].ids) << "node " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked sort-then-interact pipeline vs. the per-particle walker.
// ---------------------------------------------------------------------------

TEST(BlockedTraversal, SerialParityWithWalker) {
  // Both traversals apply the identical alpha-MAC per evaluation point, so
  // work counters (and hence flops / virtual time) must match EXACTLY;
  // fields agree to rounding (the blocked pipeline sums its interaction
  // lists in a different order).
  struct Case {
    unsigned lc;
    unsigned degree;
    double alpha;
  };
  for (const auto& c : {Case{1, 0, 0.67}, Case{4, 0, 0.3}, Case{8, 0, 1.0},
                        Case{4, 3, 0.67}}) {
    const auto base = make_plummer(1200, 5);
    auto run = [&](TraversalMode mode, ParticleSet<3>& ps,
                   std::vector<std::uint64_t>& loads) {
      ps = base;
      auto t = build_tree(ps, ps.bounding_cube(),
                          {.leaf_capacity = c.lc, .degree = c.degree});
      auto w = compute_fields(
          t, ps,
          {.alpha = c.alpha, .softening = 1e-3, .kind = FieldKind::kBoth,
           .use_expansions = c.degree > 0, .record_load = true,
           .mode = mode});
      loads.clear();
      for (const auto& n : t.nodes) loads.push_back(n.load);
      return w;
    };
    ParticleSet<3> pw, pb;
    std::vector<std::uint64_t> lw, lb;
    const auto ww = run(TraversalMode::kWalker, pw, lw);
    const auto wb = run(TraversalMode::kBlocked, pb, lb);
    EXPECT_EQ(ww.mac_evals, wb.mac_evals);
    EXPECT_EQ(ww.interactions, wb.interactions);
    EXPECT_EQ(ww.direct_pairs, wb.direct_pairs);
    EXPECT_EQ(ww.flops(), wb.flops());
    ASSERT_EQ(lw, lb);  // per-node loads drive balancing: exact
    for (std::size_t i = 0; i < pw.size(); ++i) {
      ASSERT_NEAR(pb.potential[i], pw.potential[i],
                  1e-12 * std::max(1.0, std::abs(pw.potential[i])))
          << "particle " << i;
      for (int a = 0; a < 3; ++a)
        ASSERT_NEAR(pb.acc[i][a], pw.acc[i][a],
                    1e-11 * (1.0 + geom::norm(pw.acc[i])))
            << "particle " << i << " axis " << a;
    }
  }
}

TEST(BlockedTraversal, SerialParity2D) {
  Rng rng(13);
  const auto base = model::uniform_box<2>(900, rng, {{{0, 0}}, 10.0});
  auto run = [&](TraversalMode mode, ParticleSet<2>& ps) {
    ps = base;
    auto t = build_tree(ps, ps.bounding_cube(), {.leaf_capacity = 4});
    return compute_fields(t, ps,
                          {.alpha = 0.67, .kind = FieldKind::kBoth,
                           .use_expansions = false, .mode = mode});
  };
  ParticleSet<2> pw, pb;
  const auto ww = run(TraversalMode::kWalker, pw);
  const auto wb = run(TraversalMode::kBlocked, pb);
  EXPECT_EQ(ww.mac_evals, wb.mac_evals);
  EXPECT_EQ(ww.interactions, wb.interactions);
  EXPECT_EQ(ww.direct_pairs, wb.direct_pairs);
  for (std::size_t i = 0; i < pw.size(); ++i)
    ASSERT_NEAR(pb.potential[i], pw.potential[i],
                1e-12 * std::max(1.0, std::abs(pw.potential[i])));
}

TEST(FractionalError, Definition) {
  EXPECT_DOUBLE_EQ(fractional_error({1, 2}, {1, 2}), 0.0);
  EXPECT_NEAR(fractional_error({1.1, 2.2}, {1, 2}),
              0.1 * std::sqrt(5.0) / std::sqrt(5.0), 1e-12);
}

}  // namespace
}  // namespace bh::tree
