// Integration tests for the parallel formulations: decomposition
// machinery, distributed tree construction, function-shipping force phase
// and the SPSA/SPDA/DPDA drivers -- checked against serial Barnes-Hut and
// direct summation.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "model/distributions.hpp"
#include "mp/runtime.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/dtree.hpp"
#include "parallel/formulations.hpp"
#include "parallel/funcship.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {
namespace {

using geom::Box;
using geom::NodeKey;
using model::ParticleSet;
using model::Rng;

const Box<3> kDomain{{{0, 0, 0}}, 100.0};

ParticleSet<3> mixture(std::size_t n, unsigned blobs = 4,
                       std::uint64_t seed = 31) {
  Rng rng(seed);
  return model::gaussian_mixture<3>(n, rng, blobs, kDomain, 3.0);
}

// ---------------------------------------------------------------------------
// Decomposition
// ---------------------------------------------------------------------------

TEST(ClusterGridT, IndexingRoundTrip) {
  ClusterGrid<3> g(kDomain, 8);
  EXPECT_EQ(g.count(), 512u);
  EXPECT_EQ(g.level(), 3u);
  for (std::size_t c = 0; c < g.count(); ++c) {
    const auto box = g.box_of(c);
    EXPECT_EQ(g.cluster_of(box.center()), c);
    // Key reconstructs the same box.
    const auto kb = geom::box_of_key(g.key_of(c), kDomain);
    EXPECT_EQ(kb, box);
  }
}

TEST(ClusterGridT, RejectsNonPowerOfTwo) {
  EXPECT_THROW(ClusterGrid<3>(kDomain, 3), std::invalid_argument);
}

TEST(ClusterGridT, MortonAndHilbertAreBijections) {
  ClusterGrid<2> g({{{0, 0}}, 10.0}, 8);
  std::set<std::uint64_t> m, h;
  for (std::size_t c = 0; c < g.count(); ++c) {
    m.insert(g.morton_of(c));
    h.insert(g.hilbert_of(c));
  }
  EXPECT_EQ(m.size(), g.count());
  EXPECT_EQ(h.size(), g.count());
}

TEST(BalancedCuts, EqualLoads) {
  std::vector<std::uint64_t> loads(16, 10);
  const auto cut = balanced_cuts(loads, 4);
  EXPECT_EQ(cut, (std::vector<std::size_t>{0, 4, 8, 12, 16}));
}

TEST(BalancedCuts, SkewedLoads) {
  // One heavy cluster: it gets a processor nearly to itself.
  std::vector<std::uint64_t> loads(16, 1);
  loads[0] = 100;
  const auto cut = balanced_cuts(loads, 4);
  EXPECT_EQ(cut[0], 0u);
  EXPECT_EQ(cut[1], 1u);  // first zone = just the heavy cluster
  EXPECT_EQ(cut[4], 16u);
}

TEST(BalancedCuts, ZeroLoadFallsBackToEqualCounts) {
  std::vector<std::uint64_t> loads(12, 0);
  const auto cut = balanced_cuts(loads, 3);
  EXPECT_EQ(cut, (std::vector<std::size_t>{0, 4, 8, 12}));
}

TEST(Assignment, SpsaCoversAllRanksEvenly) {
  ClusterGrid<3> g(kDomain, 8);
  const auto owner = spsa_assignment(g, 64);
  std::vector<int> cnt(64, 0);
  for (int o : owner) ++cnt[o];
  for (int c : cnt) EXPECT_EQ(c, 8);
}

TEST(Assignment, SpdaBalancesSkewedLoads) {
  ClusterGrid<3> g(kDomain, 4);
  std::vector<std::uint64_t> loads(g.count(), 1);
  // Pile load onto one corner (an irregular distribution).
  for (std::size_t c = 0; c < g.count(); ++c)
    if (g.coord_of(c)[0] == 0 && g.coord_of(c)[1] == 0) loads[c] = 200;
  const auto spsa = spsa_assignment(g, 8);
  const auto spda = spda_assignment(g, loads, 8);
  EXPECT_LT(imbalance(loads, spda, 8), imbalance(loads, spsa, 8));
  // A single cluster holding ~2x the ideal share bounds what contiguous
  // cuts can achieve (the indivisible-cluster limit the paper's Table 4
  // works around by increasing r).
  EXPECT_LT(imbalance(loads, spda, 8), 2.0);
}

TEST(Assignment, SpdaRunsAreContiguousInMorton) {
  ClusterGrid<2> g({{{0, 0}}, 10.0}, 8);
  std::vector<std::uint64_t> loads(g.count(), 1);
  const auto owner = spda_assignment(g, loads, 4);
  // Sort clusters by Morton number; owners must be non-decreasing.
  std::vector<std::size_t> order(g.count());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return g.morton_of(a) < g.morton_of(b);
  });
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_LE(owner[order[i]], owner[order[i + 1]]);
}

TEST(CoverKeys, CoversExactRange) {
  // Cover cells [5, 22] at level 2 granularity of a 2-D domain (16 cells
  // per side at level 2? use max level arithmetic).
  const unsigned L = geom::morton_max_level<2>;
  const std::uint64_t base = std::uint64_t(1) << (2 * L);
  const std::uint64_t lo = 5, hi = 22;
  const auto keys = cover_keys<2>(NodeKey<2>{base | lo}, NodeKey<2>{base | hi});
  // Keys must tile [5, 22] disjointly.
  std::uint64_t covered = 0;
  std::uint64_t expect_next = lo;
  for (const auto& k : keys) {
    const unsigned lev = k.level();
    const std::uint64_t path = k.v & ((std::uint64_t(1) << (2 * lev)) - 1);
    const std::uint64_t first = path << (2 * (L - lev));
    const std::uint64_t cnt = std::uint64_t(1) << (2 * (L - lev));
    EXPECT_EQ(first, expect_next);
    expect_next = first + cnt;
    covered += cnt;
  }
  EXPECT_EQ(covered, hi - lo + 1);
  EXPECT_EQ(expect_next, hi + 1);
}

TEST(CoverKeys, FullDomainIsOneKey) {
  const unsigned L = geom::morton_max_level<3>;
  const std::uint64_t base = std::uint64_t(1) << (3 * L);
  const auto keys =
      cover_keys<3>(NodeKey<3>{base | 0}, NodeKey<3>{base | (base - 1)});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys[0].is_root());
}

TEST(CoverKeys, EmptyRange) {
  const unsigned L = geom::morton_max_level<3>;
  const std::uint64_t base = std::uint64_t(1) << (3 * L);
  EXPECT_TRUE(cover_keys<3>(NodeKey<3>{base | 7}, NodeKey<3>{base | 3}).empty());
}

// ---------------------------------------------------------------------------
// Branch machinery
// ---------------------------------------------------------------------------

TEST(BranchPack, ExpansionRoundTrip3D) {
  Rng rng(5);
  std::uniform_real_distribution<double> u(-0.4, 0.4);
  const geom::Vec<3> center{{1, 2, 3}};
  multipole::Expansion3 e(4, center);
  for (int i = 0; i < 20; ++i)
    e.add_particle(center + geom::Vec<3>{{u(rng), u(rng), u(rng)}}, 0.3);
  std::vector<double> buf(expansion_stride<3>(4));
  pack_expansion<3>(e, buf.data());
  const auto e2 = unpack_expansion<3>(buf.data(), 4, center, e.total_mass());
  const geom::Vec<3> t{{8, -3, 6}};
  EXPECT_DOUBLE_EQ(e2.evaluate_potential(t), e.evaluate_potential(t));
}

TEST(BranchPack, ExpansionRoundTrip2D) {
  Rng rng(6);
  std::uniform_real_distribution<double> u(-0.4, 0.4);
  const geom::Vec<2> center{{1, 2}};
  multipole::Expansion2 e(5, center);
  for (int i = 0; i < 20; ++i)
    e.add_particle(center + geom::Vec<2>{{u(rng), u(rng)}}, 0.3);
  std::vector<double> buf(expansion_stride<2>(5));
  pack_expansion<2>(e, buf.data());
  const auto e2 = unpack_expansion<2>(buf.data(), 5, center, e.total_mass());
  const geom::Vec<2> t{{8, -3}};
  EXPECT_DOUBLE_EQ(e2.evaluate_potential(t), e.evaluate_potential(t));
}

class DirectoryKinds : public ::testing::TestWithParam<LookupKind> {};

TEST_P(DirectoryKinds, FindsAllAndOnlyInsertedKeys) {
  BranchDirectory<3> dir(GetParam());
  Rng rng(9);
  std::vector<NodeKey<3>> keys;
  NodeKey<3> k{};
  for (int i = 0; i < 300; ++i) {
    k = NodeKey<3>{};
    const int depth = 1 + static_cast<int>(rng() % 15);
    for (int d = 0; d < depth; ++d) k = k.child(rng() % 8);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i)
    dir.insert(keys[i], static_cast<std::int32_t>(i));
  dir.seal();
  std::uint64_t probes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(dir.find(keys[i], &probes), static_cast<std::int32_t>(i));
  EXPECT_GT(probes, 0u);
  EXPECT_EQ(dir.find(NodeKey<3>{}.child(0).child(1).child(2).child(3)
                         .child(4).child(5).child(6).child(7).child(0)
                         .child(1).child(2).child(3).child(4).child(5)
                         .child(6).child(7).child(0).child(1)),
            -1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DirectoryKinds,
                         ::testing::Values(LookupKind::kHash,
                                           LookupKind::kSortedTable));

// ---------------------------------------------------------------------------
// Distributed tree construction
// ---------------------------------------------------------------------------

TEST(DistTreeT, GlobalMassAndComAgree) {
  const auto global = mixture(4000);
  const double total_mass = global.total_mass();
  geom::Vec<3> com{};
  for (std::size_t i = 0; i < global.size(); ++i)
    com += global.mass[i] * global.pos[i];
  com /= total_mass;

  for (int p : {1, 2, 4, 8}) {
    mp::run_spmd(p, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
      ParallelSimulation<3> sim(c, kDomain,
                                {.scheme = Scheme::kSPSA,
                                 .clusters_per_axis = 4});
      sim.distribute(global);
      sim.step();
      const auto& dt = sim.dist_tree();
      EXPECT_NEAR(dt.tree.root().mass, total_mass, 1e-9);
      for (int a = 0; a < 3; ++a)
        EXPECT_NEAR(dt.tree.root().com[a], com[a], 1e-8);
      EXPECT_EQ(dt.tree.root().count, global.size());
    });
  }
}

TEST(DistTreeT, BranchesTileAndAreConsistent) {
  const auto global = mixture(2000);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4});
    sim.distribute(global);
    sim.step();
    const auto& dt = sim.dist_tree();
    // All 64 clusters appear as branches, each with exactly one owner.
    EXPECT_EQ(dt.branches.size(), 64u);
    std::uint32_t count = 0;
    double mass = 0;
    for (std::size_t b = 0; b < dt.branches.size(); ++b) {
      count += dt.branches[b].count;
      mass += dt.branches[b].mass;
      EXPECT_GE(dt.branches[b].owner, 0);
      EXPECT_LT(dt.branches[b].owner, 4);
      // Every branch key resolves to a node of the spliced tree.
      const auto ni = dt.branch_node[b];
      ASSERT_NE(ni, tree::kNullNode);
      EXPECT_EQ(dt.tree.nodes[ni].key.v, dt.branches[b].key);
      EXPECT_EQ(dt.tree.nodes[ni].is_remote, !dt.is_mine(b));
    }
    EXPECT_EQ(count, global.size());
    EXPECT_NEAR(mass, global.total_mass(), 1e-9);
  });
}

TEST(DistTreeT, LocalParticlesPreserved) {
  const auto global = mixture(1000);
  mp::run_spmd(3, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPSA,
                               .clusters_per_axis = 4});
    sim.distribute(global);
    const std::size_t before = sim.particles().size();
    const auto total = c.all_reduce_sum(static_cast<long long>(before));
    EXPECT_EQ(total, static_cast<long long>(global.size()));
    sim.step();
    EXPECT_EQ(sim.particles().size(), before);  // step must not move them
  });
}

// ---------------------------------------------------------------------------
// Parallel force computation vs. serial references
// ---------------------------------------------------------------------------

struct SchemeParam {
  Scheme scheme;
  int nprocs;
  unsigned degree;
};

class SchemeCorrectness : public ::testing::TestWithParam<SchemeParam> {};

TEST_P(SchemeCorrectness, ExactModeMatchesDirectSum) {
  // alpha -> 0: every formulation degenerates to exact summation; results
  // must match the O(n^2) reference to floating-point tolerance regardless
  // of scheme or processor count.
  const auto [scheme, nprocs, degree] = GetParam();
  const auto global = mixture(600);
  ParticleSet<3> exact = global;
  tree::direct_sum(exact, tree::FieldKind::kPotential);

  mp::run_spmd(nprocs, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = scheme,
                               .clusters_per_axis = 4,
                               .alpha = 1e-9,
                               .degree = degree,
                               .leaf_capacity = 2,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    const auto pots = sim.gather_potentials();
    ASSERT_EQ(pots.size(), global.size());
    for (std::size_t i = 0; i < pots.size(); ++i)
      ASSERT_NEAR(pots[i], exact.potential[i],
                  1e-9 * std::abs(exact.potential[i]))
          << "particle " << i;
  });
}

TEST_P(SchemeCorrectness, ApproximateModeMatchesSerialAccuracy) {
  // At working alpha the parallel result must be as accurate as the serial
  // treecode (the tree shapes differ slightly, so compare error levels,
  // not values).
  const auto [scheme, nprocs, degree] = GetParam();
  const auto global = mixture(1500);
  ParticleSet<3> exact = global;
  tree::direct_sum(exact, tree::FieldKind::kPotential);

  ParticleSet<3> serial = global;
  auto st = tree::build_tree(serial, kDomain,
                             {.leaf_capacity = 4, .degree = degree});
  tree::compute_fields(st, serial,
                       {.alpha = 0.67, .kind = tree::FieldKind::kPotential,
                        .use_expansions = degree > 0});
  const double serial_err =
      tree::fractional_error(serial.potential, exact.potential);

  mp::run_spmd(nprocs, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = scheme,
                               .clusters_per_axis = 4,
                               .alpha = 0.67,
                               .degree = degree,
                               .leaf_capacity = 4,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    const auto pots = sim.gather_potentials();
    const double par_err = tree::fractional_error(pots, exact.potential);
    EXPECT_LT(par_err, std::max(2.0 * serial_err, 1e-12));
    EXPECT_GT(par_err, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeCorrectness,
    ::testing::Values(SchemeParam{Scheme::kSPSA, 1, 0},
                      SchemeParam{Scheme::kSPSA, 4, 0},
                      SchemeParam{Scheme::kSPSA, 8, 0},
                      SchemeParam{Scheme::kSPDA, 2, 0},
                      SchemeParam{Scheme::kSPDA, 4, 0},
                      SchemeParam{Scheme::kSPDA, 4, 3},
                      SchemeParam{Scheme::kDPDA, 1, 0},
                      SchemeParam{Scheme::kDPDA, 4, 0},
                      SchemeParam{Scheme::kDPDA, 8, 0},
                      SchemeParam{Scheme::kDPDA, 4, 4}));

TEST(ForceParallel, AccelerationsMatchDirect) {
  const auto global = mixture(500);
  ParticleSet<3> exact = global;
  tree::direct_sum(exact, tree::FieldKind::kForce);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .alpha = 1e-9,
                               .kind = tree::FieldKind::kBoth});
    sim.distribute(global);
    sim.step();
    const auto accs = sim.gather_accelerations();
    for (std::size_t i = 0; i < accs.size(); ++i)
      for (int a = 0; a < 3; ++a)
        ASSERT_NEAR(accs[i][a], exact.acc[i][a],
                    1e-8 * (1.0 + geom::norm(exact.acc[i])));
  });
}

// ---------------------------------------------------------------------------
// Load balancing dynamics
// ---------------------------------------------------------------------------

TEST(LoadBalance, SpdaRebalanceReducesImbalance) {
  // Strongly clustered input: the equal-count bootstrap is imbalanced in
  // *load*; one measured step + rebalance must improve it.
  // The blob must span several clusters: contiguous cluster reassignment
  // cannot split a single indivisible cluster (Section 5.1.1's motivation
  // for very large r on extreme distributions).
  Rng rng(77);
  auto global = model::gaussian_mixture<3>(4000, rng, 1, kDomain, 6.0);
  mp::run_spmd(8, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    // 16^3 clusters: fine enough that no single cluster dominates (the
    // paper's own recipe for irregular inputs, Section 5.1.1).
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 16,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    const auto r1 = sim.step();
    const auto load1 = c.all_gather(r1.local_load);
    sim.rebalance();
    const auto r2 = sim.step();
    const auto load2 = c.all_gather(r2.local_load);

    auto imb = [&](const std::vector<std::uint64_t>& v) {
      const double sum = std::accumulate(v.begin(), v.end(), 0.0);
      const double mx = *std::max_element(v.begin(), v.end());
      return mx / (sum / static_cast<double>(v.size()));
    };
    EXPECT_LT(imb(load2), imb(load1));
    EXPECT_LT(imb(load2), 1.5);
    // Mass conservation across the exchange.
    const double m = c.all_reduce_sum(sim.particles().total_mass());
    EXPECT_NEAR(m, global.total_mass(), 1e-9);
  });
}

TEST(LoadBalance, DpdaRebalanceReducesImbalance) {
  Rng rng(78);
  auto global = model::gaussian_mixture<3>(4000, rng, 2, kDomain, 0.5);
  mp::run_spmd(8, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kDPDA,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    const auto r1 = sim.step();
    sim.rebalance();
    const auto r2 = sim.step();
    const auto load1 = c.all_gather(r1.local_load);
    const auto load2 = c.all_gather(r2.local_load);
    auto imb = [&](const std::vector<std::uint64_t>& v) {
      const double sum = std::accumulate(v.begin(), v.end(), 0.0);
      const double mx = *std::max_element(v.begin(), v.end());
      return mx / (sum / static_cast<double>(v.size()));
    };
    EXPECT_LE(imb(load2), imb(load1) * 1.05);
    EXPECT_LT(imb(load2), 1.6);
    // Every particle still accounted for.
    const auto n = c.all_reduce_sum(
        static_cast<long long>(sim.particles().size()));
    EXPECT_EQ(n, static_cast<long long>(global.size()));
  });
}

TEST(LoadBalance, ResultsUnchangedAfterRebalance) {
  // Redistribution must not change the physics: potentials after rebalance
  // equal potentials before (same alpha, same global particle set).
  const auto global = mixture(800);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kDPDA,
                               .alpha = 1e-9,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    const auto before = sim.gather_potentials();
    sim.rebalance();
    sim.step();
    const auto after = sim.gather_potentials();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i)
      ASSERT_NEAR(before[i], after[i], 1e-9 * std::abs(before[i]));
  });
}

// ---------------------------------------------------------------------------
// Function-shipping mechanics
// ---------------------------------------------------------------------------

TEST(FuncShip, BinsAreBoundedByBinSize) {
  const auto global = mixture(2000);
  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential,
                               .bin_size = 25});
    sim.distribute(global);
    const auto r = sim.step();
    if (r.force.items_shipped > 0) {
      // Every bin carries at most 4x bin_size items (deferred bins may grow
      // to the hard memory cap while their predecessor is outstanding).
      EXPECT_GE(r.force.bins_sent,
                (r.force.items_shipped + 99) / 100);
    }
    // Conservation: total shipped == total served.
    const auto shipped = c.all_reduce_sum(
        static_cast<long long>(r.force.items_shipped));
    const auto served = c.all_reduce_sum(
        static_cast<long long>(r.force.items_served));
    EXPECT_EQ(shipped, served);
  });
}

TEST(FuncShip, SingleRankShipsNothing) {
  const auto global = mixture(500);
  mp::run_spmd(1, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPSA,
                               .clusters_per_axis = 4,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    const auto r = sim.step();
    EXPECT_EQ(r.force.items_shipped, 0u);
    EXPECT_EQ(r.force.bins_sent, 0u);
  });
}

TEST(FuncShip, PhaseTimesRecorded) {
  const auto global = mixture(1000);
  auto rep = mp::run_spmd(4, mp::MachineModel::ncube2(),
                          [&](mp::Communicator& c) {
    ParallelSimulation<3> sim(c, kDomain,
                              {.scheme = Scheme::kSPDA,
                               .clusters_per_axis = 4,
                               .alpha = 0.67,
                               .kind = tree::FieldKind::kPotential});
    sim.distribute(global);
    sim.step();
    sim.rebalance();
  });
  EXPECT_GT(rep.phase_time(kPhaseForce), 0.0);
  EXPECT_GT(rep.phase_time(kPhaseLocalBuild), 0.0);
  EXPECT_GT(rep.phase_time(kPhaseBroadcast), 0.0);
  EXPECT_GE(rep.phase_time(kPhaseLoadBalance), 0.0);
  // Force phase dominates, as in Table 3.
  EXPECT_GT(rep.phase_time(kPhaseForce),
            rep.phase_time(kPhaseLocalBuild));
  EXPECT_GT(rep.parallel_time(), 0.0);
}

}  // namespace
}  // namespace bh::par
