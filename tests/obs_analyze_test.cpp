// Tests for the analysis side of the observability layer: the JSON document
// parser, the virtual-time critical path and collective wait/cost
// attribution over hand-constructed traces (where every number is known in
// closed form), the Chrome-trace round trip, the runtime's idle accounting,
// and the bh.bench.v1 diff used by the CI perf gate.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "mp/runtime.hpp"
#include "obs/analyze.hpp"
#include "obs/json_parse.hpp"
#include "obs/trace.hpp"

namespace bh {
namespace {

namespace an = obs::analyze;
using obs::Json;
using obs::JsonError;

// ---- Json parser -----------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").boolean());
  EXPECT_FALSE(Json::parse("false").boolean());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").number(), -1250.0);
  EXPECT_EQ(Json::parse("\"hi\"").str(), "hi");
}

TEST(JsonParse, EscapesAndUnicode) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\n\t")").str(), "a\"b\\c\n\t");
  EXPECT_EQ(Json::parse(R"("A")").str(), "A");
  EXPECT_EQ(Json::parse(R"("é")").str(), "\xc3\xa9");  // e-acute, UTF-8
}

TEST(JsonParse, NestedStructure) {
  const Json doc = Json::parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": true}, "e": 3.5})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("a").array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").array()[1].number(), 2.0);
  EXPECT_TRUE(doc.at("a").array()[2].at("b").is_null());
  EXPECT_TRUE(doc.at("c").at("d").boolean());
  EXPECT_TRUE(doc.has("e"));
  EXPECT_FALSE(doc.has("zzz"));
}

TEST(JsonParse, NullSafeAccessors) {
  const Json doc = Json::parse(R"({"x": 4})");
  EXPECT_DOUBLE_EQ(doc.get("x").number_or(0.0), 4.0);
  EXPECT_DOUBLE_EQ(doc.get("missing").number_or(-1.0), -1.0);
  EXPECT_EQ(doc.get("missing").get("deeper").string_or("d"), "d");
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("12").str(), JsonError);  // type mismatch
  EXPECT_THROW(Json::parse("{}").at("k"), JsonError);
}

// ---- hand-constructed traces: every number known in closed form ------------

// Two ranks, one collective. Rank 0 computes in phase "A" until t=10 and
// enters; rank 1 finishes "A" at t=4 and waits. The board releases both at
// t=12: rank 1 waited 10-4=6 s, the modeled cost is 12-10=2 s for both.
void one_collective(obs::Tracer& tr) {
  tr.begin_run(2);
  auto& r0 = tr.rank(0);
  r0.phase_begin("A", 0.0);
  r0.phase_end("A", 10.0);
  r0.coll_begin("barrier", 0, 10.0);
  r0.coll_end(12.0);
  auto& r1 = tr.rank(1);
  r1.phase_begin("A", 0.0);
  r1.phase_end("A", 4.0);
  r1.coll_begin("barrier", 0, 4.0);
  r1.coll_end(12.0);
}

TEST(AnalyzeTrace, CollectiveWaitAndCostAttribution) {
  obs::Tracer tr;
  one_collective(tr);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  ASSERT_EQ(a.nprocs, 2);
  EXPECT_TRUE(a.aligned);
  EXPECT_DOUBLE_EQ(a.span, 12.0);
  EXPECT_DOUBLE_EQ(a.ranks[0].coll_wait, 0.0);  // rank 0 gates
  EXPECT_DOUBLE_EQ(a.ranks[0].coll_cost, 2.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].coll_wait, 6.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].coll_cost, 2.0);
  EXPECT_DOUBLE_EQ(a.ranks[0].phase_vtime.at("A"), 10.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].phase_vtime.at("A"), 4.0);
}

TEST(AnalyzeTrace, CriticalPathStaysOnGatingRank) {
  obs::Tracer tr;
  one_collective(tr);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  ASSERT_EQ(a.critical_path.size(), 2u);
  EXPECT_EQ(a.critical_path[0].rank, 0);
  EXPECT_EQ(a.critical_path[0].label, "A");
  EXPECT_DOUBLE_EQ(a.critical_path[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(a.critical_path[0].t1, 10.0);
  EXPECT_EQ(a.critical_path[1].rank, 0);
  EXPECT_EQ(a.critical_path[1].label, "collective barrier");
  EXPECT_DOUBLE_EQ(a.critical_path[1].t0, 10.0);
  EXPECT_DOUBLE_EQ(a.critical_path[1].t1, 12.0);
  EXPECT_DOUBLE_EQ(a.critical_by_label.at("A"), 10.0);
  EXPECT_DOUBLE_EQ(a.critical_by_label.at("collective barrier"), 2.0);
}

// Two collectives with alternating gates: the path must jump ranks.
//   rank 0: A [0,2], coll1 enter 2, out 5; B [5,9], coll2 enter 9, out 10
//   rank 1: A [0,4], coll1 enter 4, out 5; C [5,6], coll2 enter 6, out 10
// coll1 gated by rank 1 at t=4 (cost 1), coll2 gated by rank 0 at t=9
// (cost 1). Expected path: r1 A [0,4] -> coll [4,5] -> r0 B [5,9] ->
// coll [9,10]; lengths sum to the span (10).
void alternating_gates(obs::Tracer& tr) {
  tr.begin_run(2);
  auto& r0 = tr.rank(0);
  r0.phase_begin("A", 0.0);
  r0.phase_end("A", 2.0);
  r0.coll_begin("all_reduce", 8, 2.0);
  r0.coll_end(5.0);
  r0.phase_begin("B", 5.0);
  r0.phase_end("B", 9.0);
  r0.coll_begin("barrier", 0, 9.0);
  r0.coll_end(10.0);
  auto& r1 = tr.rank(1);
  r1.phase_begin("A", 0.0);
  r1.phase_end("A", 4.0);
  r1.coll_begin("all_reduce", 8, 4.0);
  r1.coll_end(5.0);
  r1.phase_begin("C", 5.0);
  r1.phase_end("C", 6.0);
  r1.coll_begin("barrier", 0, 6.0);
  r1.coll_end(10.0);
}

TEST(AnalyzeTrace, CriticalPathJumpsToGatingRank) {
  obs::Tracer tr;
  alternating_gates(tr);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  EXPECT_DOUBLE_EQ(a.span, 10.0);
  ASSERT_EQ(a.critical_path.size(), 4u);

  EXPECT_EQ(a.critical_path[0].rank, 1);
  EXPECT_EQ(a.critical_path[0].label, "A");
  EXPECT_DOUBLE_EQ(a.critical_path[0].t1, 4.0);

  EXPECT_EQ(a.critical_path[1].label, "collective all_reduce");
  EXPECT_DOUBLE_EQ(a.critical_path[1].t0, 4.0);
  EXPECT_DOUBLE_EQ(a.critical_path[1].t1, 5.0);

  EXPECT_EQ(a.critical_path[2].rank, 0);
  EXPECT_EQ(a.critical_path[2].label, "B");
  EXPECT_DOUBLE_EQ(a.critical_path[2].t0, 5.0);
  EXPECT_DOUBLE_EQ(a.critical_path[2].t1, 9.0);

  EXPECT_EQ(a.critical_path[3].label, "collective barrier");
  EXPECT_DOUBLE_EQ(a.critical_path[3].t1, 10.0);

  // Segment lengths cover the whole span with no gaps.
  double sum = 0.0;
  for (const auto& s : a.critical_path) sum += s.len();
  EXPECT_NEAR(sum, a.span, 1e-12);

  // Wait attribution mirrors the gates: rank 0 waited 2 s at coll1, rank 1
  // waited 3 s at coll2.
  EXPECT_DOUBLE_EQ(a.ranks[0].coll_wait, 2.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].coll_wait, 3.0);
  EXPECT_DOUBLE_EQ(a.ranks[0].coll_cost, 2.0);  // 1 s at each collective
  EXPECT_DOUBLE_EQ(a.ranks[1].coll_cost, 2.0);
}

TEST(AnalyzeTrace, UntrackedTimeAndInstantCounters) {
  obs::Tracer tr(1);
  auto& r0 = tr.rank(0);
  r0.phase_begin("A", 1.0);  // [0,1) is outside any phase
  r0.instant("funcship.stall", 7, 1.5);
  r0.instant("funcship.serve", 30, 2.0);
  r0.instant("dataship.serve", 12, 2.5);
  r0.phase_end("A", 3.0);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  EXPECT_DOUBLE_EQ(a.span, 3.0);
  EXPECT_EQ(a.ranks[0].stall_events, 1u);
  EXPECT_EQ(a.ranks[0].stall_items, 7u);
  EXPECT_EQ(a.ranks[0].serve_events, 2u);
  EXPECT_EQ(a.ranks[0].serve_items, 42u);
  // No collectives: path is rank 0's own timeline, split at the phase edge.
  ASSERT_EQ(a.critical_path.size(), 2u);
  EXPECT_EQ(a.critical_path[0].label, "(untracked)");
  EXPECT_DOUBLE_EQ(a.critical_path[0].t1, 1.0);
  EXPECT_EQ(a.critical_path[1].label, "A");
}

TEST(AnalyzeTrace, MisalignedTraceDisablesCrossRankAttribution) {
  obs::Tracer tr(2);
  tr.rank(0).coll_begin("barrier", 0, 1.0);
  tr.rank(0).coll_end(2.0);
  // rank 1 recorded no collective: counts differ -> not aligned.
  tr.rank(1).phase_begin("A", 0.0);
  tr.rank(1).phase_end("A", 3.0);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  EXPECT_FALSE(a.aligned);
  // Degenerate path: the slowest rank's own timeline, no cross-rank jumps.
  ASSERT_FALSE(a.critical_path.empty());
  for (const auto& seg : a.critical_path) EXPECT_EQ(seg.rank, 1);
  EXPECT_DOUBLE_EQ(a.ranks[0].coll_wait, 0.0);
}

// ---- Chrome-trace round trip ----------------------------------------------

TEST(AnalyzeTrace, ChromeTraceRoundTripPreservesAnalysis) {
  obs::Tracer tr;
  alternating_gates(tr);
  const an::TraceAnalysis before = an::analyze_trace(tr);

  const Json doc = Json::parse(tr.chrome_trace_json());
  obs::Tracer replayed;
  an::trace_from_json(doc, replayed);
  const an::TraceAnalysis after = an::analyze_trace(replayed);

  EXPECT_EQ(after.nprocs, before.nprocs);
  EXPECT_TRUE(after.aligned);
  EXPECT_NEAR(after.span, before.span, 1e-9);
  ASSERT_EQ(after.critical_path.size(), before.critical_path.size());
  for (std::size_t i = 0; i < before.critical_path.size(); ++i) {
    EXPECT_EQ(after.critical_path[i].rank, before.critical_path[i].rank);
    EXPECT_EQ(after.critical_path[i].label, before.critical_path[i].label);
    EXPECT_NEAR(after.critical_path[i].len(), before.critical_path[i].len(),
                1e-9);
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(after.ranks[r].coll_wait, before.ranks[r].coll_wait, 1e-9);
    EXPECT_NEAR(after.ranks[r].coll_cost, before.ranks[r].coll_cost, 1e-9);
  }
}

TEST(AnalyzeTrace, RoundTripOfRealRunKeepsPerRankCounters) {
  obs::Tracer tr;
  mp::RunOptions opts;
  opts.trace = &tr;
  mp::run_spmd(3, mp::MachineModel::ncube2(), opts, [](mp::Communicator& c) {
    c.phase_begin("work");
    const int dst = (c.rank() + 1) % c.size();
    c.send_value(dst, 5, c.rank());
    (void)c.recv_any();
    c.advance_flops(1000);
    c.phase_end("work");
    c.barrier();
  });
  const an::TraceAnalysis before = an::analyze_trace(tr);

  obs::Tracer replayed;
  an::trace_from_json(Json::parse(tr.chrome_trace_json()), replayed);
  const an::TraceAnalysis after = an::analyze_trace(replayed);

  ASSERT_EQ(after.nprocs, 3);
  EXPECT_NEAR(after.span, before.span, 1e-9);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(after.ranks[r].sends, before.ranks[r].sends);
    EXPECT_EQ(after.ranks[r].recvs, before.ranks[r].recvs);
    EXPECT_NEAR(after.ranks[r].phase_vtime.at("work"),
                before.ranks[r].phase_vtime.at("work"), 1e-9);
  }
}

// ---- runtime idle accounting ----------------------------------------------

TEST(RuntimeIdle, SlowRankChargesWaitToTheOthers) {
  // Rank 1 works 1 virtual second longer before the barrier: every other
  // rank's coll_wait must grow by ~1 s; rank 1 itself waits ~0.
  const auto rep = mp::run_spmd(3, mp::MachineModel::ideal(),
                                [](mp::Communicator& c) {
    if (c.rank() == 1) c.advance_seconds(1.0);
    c.barrier();
  });
  EXPECT_NEAR(rep.ranks[0].coll_wait, 1.0, 1e-9);
  EXPECT_NEAR(rep.ranks[1].coll_wait, 0.0, 1e-9);
  EXPECT_NEAR(rep.ranks[2].coll_wait, 1.0, 1e-9);
  const auto idle = rep.idle();
  EXPECT_NEAR(idle.max, 1.0, 1e-9);
}

TEST(RuntimeIdle, RecvWaitCountsClockJumpToArrival) {
  const auto rep = mp::run_spmd(2, mp::MachineModel::ideal(),
                                [](mp::Communicator& c) {
    if (c.rank() == 0) {
      c.advance_seconds(2.0);  // send late
      c.send_value(1, 9, 1.0);
    } else {
      (void)c.recv_any(0, 9);  // blocks from t=0 until the message lands
    }
    c.barrier();
  });
  EXPECT_NEAR(rep.ranks[0].recv_wait, 0.0, 1e-9);
  EXPECT_GE(rep.ranks[1].recv_wait, 2.0 - 1e-9);
}

// ---- bh.bench.v1 diff ------------------------------------------------------

const char* kBenchA = R"({
  "schema": "bh.bench.v1", "bench": "t", "git_sha": "x", "seed": 1,
  "scale": 0.05,
  "scenarios": [
    {"name": "s1", "iter_time": 10.0,
     "phases": {"force computation": 8.0, "tree merging": 2.0}},
    {"name": "gone", "iter_time": 1.0, "phases": {}}
  ]})";

const char* kBenchB = R"({
  "schema": "bh.bench.v1", "bench": "t", "git_sha": "y", "seed": 1,
  "scale": 0.05,
  "scenarios": [
    {"name": "s1", "iter_time": 10.5,
     "phases": {"force computation": 9.6, "tree merging": 0.0000005}},
    {"name": "new", "iter_time": 2.0, "phases": {}}
  ]})";

TEST(DiffBench, IdenticalRunsShowZeroDelta) {
  const Json a = Json::parse(kBenchA);
  const an::BenchDiff d = an::diff_bench(a, a);
  ASSERT_EQ(d.scenarios.size(), 2u);
  EXPECT_TRUE(d.only_a.empty());
  EXPECT_TRUE(d.only_b.empty());
  for (const auto& sd : d.scenarios)
    for (const auto& pd : sd.phases) EXPECT_DOUBLE_EQ(pd.pct(), 0.0);
  const auto [pct, where] = an::worst_regression(d, 1e-4);
  EXPECT_DOUBLE_EQ(pct, 0.0);
  EXPECT_EQ(where, "");
}

TEST(DiffBench, ReportsRegressionsAndScenarioChurn) {
  const an::BenchDiff d =
      an::diff_bench(Json::parse(kBenchA), Json::parse(kBenchB));
  ASSERT_EQ(d.scenarios.size(), 1u);
  const auto& sd = d.scenarios[0];
  EXPECT_EQ(sd.name, "s1");
  ASSERT_EQ(sd.phases.size(), 3u);  // iter_time + 2 phases
  EXPECT_EQ(sd.phases[0].phase, "iter_time");
  EXPECT_NEAR(sd.phases[0].pct(), 5.0, 1e-9);
  ASSERT_EQ(d.only_a.size(), 1u);
  EXPECT_EQ(d.only_a[0], "gone");
  ASSERT_EQ(d.only_b.size(), 1u);
  EXPECT_EQ(d.only_b[0], "new");

  // force computation regressed 20%; tree merging "improved" to ~0 and must
  // not mask it. Worst regression = the force phase.
  const auto [pct, where] = an::worst_regression(d, 1e-4);
  EXPECT_NEAR(pct, 20.0, 1e-9);
  EXPECT_EQ(where, "s1: force computation");
}

TEST(DiffBench, FloorSuppressesTinyPhaseJitter) {
  // Same documents, but a floor above the tree-merging baseline (2 s) would
  // also hide the force regression only if set absurdly high; a floor of
  // 9 s leaves just iter_time (10 s) eligible.
  const an::BenchDiff d =
      an::diff_bench(Json::parse(kBenchA), Json::parse(kBenchB));
  const auto [pct, where] = an::worst_regression(d, 9.0);
  EXPECT_NEAR(pct, 5.0, 1e-9);
  EXPECT_EQ(where, "s1: iter_time");
}

// ---------------------------------------------------------------------------
// bh.prof.v1 diff (wall-clock profiles)
// ---------------------------------------------------------------------------

const char* kProfA = R"({
  "schema": "bh.prof.v1", "git_sha": "x", "counters": "software",
  "wall_s": 2.0,
  "regions": [
    {"name": "tree.traverse", "wall_s": 1.2, "flops": 2400000000.0},
    {"name": "kernel.p2p", "wall_s": 0.4, "flops": 1600000000.0},
    {"name": "tree.build", "wall_s": 0.0000004, "flops": 0}
  ]})";

const char* kProfB = R"({
  "schema": "bh.prof.v1", "git_sha": "y", "counters": "software",
  "wall_s": 2.1,
  "regions": [
    {"name": "tree.traverse", "wall_s": 1.5, "flops": 2400000000.0},
    {"name": "kernel.p2p", "wall_s": 0.36, "flops": 1600000000.0},
    {"name": "tree.build", "wall_s": 0.0000006, "flops": 0},
    {"name": "kernel.m2p", "wall_s": 0.2, "flops": 0}
  ]})";

TEST(DiffProf, IdenticalProfilesShowZeroDelta) {
  const Json a = Json::parse(kProfA);
  const an::ProfDiff d = an::diff_prof(a, a);
  ASSERT_EQ(d.regions.size(), 3u);
  EXPECT_TRUE(d.only_a.empty());
  EXPECT_TRUE(d.only_b.empty());
  for (const auto& rd : d.regions) EXPECT_DOUBLE_EQ(rd.pct(), 0.0);
  const auto [pct, where] = an::worst_prof_regression(d, 1e-4);
  EXPECT_DOUBLE_EQ(pct, 0.0);
  EXPECT_EQ(where, "");
}

TEST(DiffProf, ReportsWallRegressionsAndRegionChurn) {
  const an::ProfDiff d =
      an::diff_prof(Json::parse(kProfA), Json::parse(kProfB));
  EXPECT_DOUBLE_EQ(d.wall_a, 2.0);
  EXPECT_DOUBLE_EQ(d.wall_b, 2.1);
  ASSERT_EQ(d.regions.size(), 3u);
  EXPECT_EQ(d.regions[0].name, "tree.traverse");
  EXPECT_NEAR(d.regions[0].pct(), 25.0, 1e-9);
  // Achieved flop rate: annotated flops over each run's wall.
  EXPECT_NEAR(d.regions[0].rate_a(), 2.0e9, 1e-3);
  EXPECT_NEAR(d.regions[0].rate_b(), 1.6e9, 1e-3);
  EXPECT_LT(d.regions[1].pct(), 0.0);  // kernel.p2p improved
  EXPECT_TRUE(d.only_a.empty());
  ASSERT_EQ(d.only_b.size(), 1u);
  EXPECT_EQ(d.only_b[0], "kernel.m2p");

  // tree.build "regressed" 50% but sits below any sane floor; the gate must
  // flag the traverse regression instead.
  const auto [pct, where] = an::worst_prof_regression(d, 1e-4);
  EXPECT_NEAR(pct, 25.0, 1e-9);
  EXPECT_EQ(where, "tree.traverse");
}

TEST(DiffProf, FloorSuppressesSubMillisecondJitter) {
  const an::ProfDiff d =
      an::diff_prof(Json::parse(kProfA), Json::parse(kProfB));
  // Floor above every region's A wall: nothing eligible, nothing flagged.
  const auto [pct, where] = an::worst_prof_regression(d, 10.0);
  EXPECT_DOUBLE_EQ(pct, 0.0);
  EXPECT_EQ(where, "");
}

TEST(DiffProf, RejectsWrongSchema) {
  const Json bench = Json::parse(kBenchA);
  const Json prof = Json::parse(kProfA);
  EXPECT_THROW(an::diff_prof(bench, bench), JsonError);
  EXPECT_THROW(an::diff_prof(prof, bench), JsonError);
}

TEST(DiffBench, RejectsWrongSchema) {
  const Json bad = Json::parse(R"({"schema": "bh.metrics.v1"})");
  EXPECT_THROW(an::diff_bench(bad, bad), JsonError);
  obs::Tracer tr;
  EXPECT_THROW(an::trace_from_json(bad, tr), JsonError);
}

// ---- flop-density critical-path attribution --------------------------------

// Rank 0 gates everything: phase A [0,10] with four unit flop batches of
// 250 at t=1..4 (so [0,4] is dense and [4,10] is rank-0 idle-on-the-path),
// then a barrier [10,12] gated by rank 0. Every number is closed-form.
void dense_then_idle(obs::Tracer& tr) {
  tr.begin_run(2);
  auto& r0 = tr.rank(0);
  r0.set_flop_batch(1);  // emit every batch immediately
  r0.phase_begin("A", 0.0);
  for (int i = 1; i <= 4; ++i) r0.flops(250, static_cast<double>(i));
  r0.phase_end("A", 10.0);
  r0.coll_begin("barrier", 0, 10.0);
  r0.coll_end(12.0);
  auto& r1 = tr.rank(1);
  r1.phase_begin("A", 0.0);
  r1.phase_end("A", 1.0);
  r1.coll_begin("barrier", 0, 1.0);
  r1.coll_end(12.0);
}

TEST(FlopDensity, SegmentsSplitAtFlopBatchesAndClassify) {
  obs::Tracer tr;
  dense_then_idle(tr);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  ASSERT_TRUE(a.aligned);
  EXPECT_DOUBLE_EQ(a.span, 12.0);

  // Path: A split at t=1,2,3,4 (5 pieces) + the collective = 6 segments.
  ASSERT_EQ(a.critical_path.size(), 6u);
  for (int i = 0; i < 4; ++i) {
    const auto& seg = a.critical_path[static_cast<std::size_t>(i)];
    EXPECT_EQ(seg.label, "A");
    EXPECT_DOUBLE_EQ(seg.t0, i);
    EXPECT_DOUBLE_EQ(seg.t1, i + 1.0);
    EXPECT_DOUBLE_EQ(seg.flops, 250.0);
    EXPECT_DOUBLE_EQ(seg.density(), 250.0);
    EXPECT_EQ(seg.kind, an::SegKind::kCompute);
  }
  const auto& idle = a.critical_path[4];
  EXPECT_DOUBLE_EQ(idle.t0, 4.0);
  EXPECT_DOUBLE_EQ(idle.t1, 10.0);
  EXPECT_DOUBLE_EQ(idle.flops, 0.0);
  EXPECT_EQ(idle.kind, an::SegKind::kStall);
  const auto& coll = a.critical_path[5];
  EXPECT_EQ(coll.label, "collective barrier");
  EXPECT_EQ(coll.kind, an::SegKind::kComm);

  EXPECT_DOUBLE_EQ(a.path_flops, 1000.0);
  EXPECT_DOUBLE_EQ(a.peak_density, 250.0);
  EXPECT_DOUBLE_EQ(a.critical_by_kind.at("compute"), 4.0);
  EXPECT_DOUBLE_EQ(a.critical_by_kind.at("stall"), 6.0);
  EXPECT_DOUBLE_EQ(a.critical_by_kind.at("comm"), 2.0);

  ASSERT_EQ(a.stall_stretches.size(), 1u);
  EXPECT_EQ(a.stall_stretches[0].rank, 0);
  EXPECT_DOUBLE_EQ(a.stall_stretches[0].t0, 4.0);
  EXPECT_DOUBLE_EQ(a.stall_stretches[0].t1, 10.0);
  EXPECT_DOUBLE_EQ(a.stall_stretches[0].len(), 6.0);
}

TEST(FlopDensity, NoFlopEventsMeansEverythingComputeBound) {
  // Without flop batches the analyzer cannot tell dense from idle; it must
  // not invent stalls.
  obs::Tracer tr;
  one_collective(tr);
  const an::TraceAnalysis a = an::analyze_trace(tr);
  EXPECT_DOUBLE_EQ(a.critical_by_kind.at("compute"), 10.0);
  EXPECT_DOUBLE_EQ(a.critical_by_kind.at("comm"), 2.0);
  EXPECT_EQ(a.critical_by_kind.count("stall"), 0u);
  EXPECT_TRUE(a.stall_stretches.empty());
  EXPECT_DOUBLE_EQ(a.path_flops, 0.0);
}

TEST(FlopDensity, SurvivesChromeTraceRoundTrip) {
  obs::Tracer tr;
  dense_then_idle(tr);
  const an::TraceAnalysis before = an::analyze_trace(tr);
  obs::Tracer replayed;
  an::trace_from_json(Json::parse(tr.chrome_trace_json()), replayed);
  const an::TraceAnalysis after = an::analyze_trace(replayed);
  ASSERT_EQ(after.critical_path.size(), before.critical_path.size());
  EXPECT_NEAR(after.path_flops, before.path_flops, 1e-9);
  EXPECT_NEAR(after.critical_by_kind.at("stall"),
              before.critical_by_kind.at("stall"), 1e-9);
  ASSERT_EQ(after.stall_stretches.size(), 1u);
  EXPECT_NEAR(after.stall_stretches[0].len(), 6.0, 1e-9);
}

// ---- isoefficiency fitting -------------------------------------------------

// A registry whose overheads follow T_o = c * p log2 p exactly. With
// efficiency = 0, T_o = p * iter_time, so iter_time = c * log2 p.
std::string plogp_registry(double c, double noise4, double noise16,
                           double noise64) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      R"({"schema": "bh.bench.v1", "bench": "t", "scenarios": [
        {"name": "u p=4",  "scheme": "SPSA", "instance": "uniform",
         "n": 100, "procs": 4,  "iter_time": %.17g, "efficiency": 0.0},
        {"name": "u p=16", "scheme": "SPSA", "instance": "uniform",
         "n": 100, "procs": 16, "iter_time": %.17g, "efficiency": 0.0},
        {"name": "u p=64", "scheme": "SPSA", "instance": "uniform",
         "n": 100, "procs": 64, "iter_time": %.17g, "efficiency": 0.0}
      ]})",
      c * 2.0 * noise4, c * 4.0 * noise16, c * 6.0 * noise64);
  return buf;
}

TEST(FitOverheads, ExactPLogPRecoversCoefficient) {
  const auto fits =
      an::fit_overheads(Json::parse(plogp_registry(2.0, 1.0, 1.0, 1.0)));
  ASSERT_EQ(fits.size(), 1u);
  const auto& fit = fits[0];
  EXPECT_EQ(fit.family, "uniform SPSA");
  ASSERT_EQ(fit.points.size(), 3u);
  EXPECT_EQ(fit.points[0].procs, 4);    // sorted ascending in p
  EXPECT_EQ(fit.points[2].procs, 64);
  EXPECT_DOUBLE_EQ(fit.points[2].overhead, 2.0 * 64.0 * 6.0);
  EXPECT_EQ(fit.chosen, "p log p");
  EXPECT_NEAR(fit.chosen_coeff, 2.0, 1e-9);
  EXPECT_NEAR(fit.chosen_r2, 1.0, 1e-12);
  EXPECT_TRUE(fit.deviations.empty());
  ASSERT_EQ(fit.forms.size(), 3u);  // p log p, p, p^2 all reported
  EXPECT_EQ(fit.forms[1].name, "p");
  EXPECT_EQ(fit.forms[2].name, "p^2");
  EXPECT_LT(fit.forms[0].sse, fit.forms[1].sse);
  EXPECT_LT(fit.forms[0].sse, fit.forms[2].sse);
}

TEST(FitOverheads, NoisyPLogPStillChosen) {
  const auto fits =
      an::fit_overheads(Json::parse(plogp_registry(2.0, 1.08, 0.93, 1.04)));
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].chosen, "p log p");
  EXPECT_GT(fits[0].chosen_r2, 0.9);
  EXPECT_NEAR(fits[0].chosen_coeff, 2.0, 0.3);
}

TEST(FitOverheads, AdversarialQuadraticBeatsThePrior) {
  // T_o = p^2 exactly: iter_time = p with efficiency 0. The 5% analytic
  // prior must not rescue p log p here.
  const Json doc = Json::parse(
      R"({"schema": "bh.bench.v1", "bench": "t", "scenarios": [
        {"name": "q4",  "scheme": "SPDA", "instance": "plummer",
         "n": 10, "procs": 4,  "iter_time": 4.0,  "efficiency": 0.0},
        {"name": "q16", "scheme": "SPDA", "instance": "plummer",
         "n": 10, "procs": 16, "iter_time": 16.0, "efficiency": 0.0},
        {"name": "q64", "scheme": "SPDA", "instance": "plummer",
         "n": 10, "procs": 64, "iter_time": 64.0, "efficiency": 0.0}
      ]})");
  const auto fits = an::fit_overheads(doc);
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].chosen, "p^2");
  EXPECT_NEAR(fits[0].chosen_coeff, 1.0, 1e-9);
  EXPECT_NEAR(fits[0].chosen_r2, 1.0, 1e-12);
}

TEST(FitOverheads, SinglePointTiesBreakToThePaperForm) {
  // One point: every one-parameter form fits exactly; the analytic prior
  // picks the paper's p log p (this is how the fig8 family reports).
  std::vector<an::OverheadPoint> pts(1);
  pts[0].scenario = "only";
  pts[0].procs = 8;
  pts[0].iter_time = 10.0;
  pts[0].efficiency = 0.5;
  pts[0].overhead = 8 * 10.0 * 0.5;
  const an::FamilyFit fit = an::fit_family("solo", pts);
  EXPECT_EQ(fit.chosen, "p log p");
  EXPECT_NEAR(fit.chosen_coeff, 40.0 / (8.0 * 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(fit.chosen_r2, 1.0);  // degenerate: exact -> 1
}

TEST(FitOverheads, DeviationsFlagOutliers) {
  // 8% noise on one point exceeds a 5% tolerance.
  const auto fits = an::fit_overheads(
      Json::parse(plogp_registry(2.0, 1.08, 1.0, 1.0)), 5.0);
  ASSERT_EQ(fits.size(), 1u);
  ASSERT_FALSE(fits[0].deviations.empty());
  EXPECT_NE(fits[0].deviations[0].find("u p=4"), std::string::npos);
}

TEST(FitOverheads, WallSchemeRowsAreSkipped) {
  const Json doc = Json::parse(
      R"({"schema": "bh.bench.v1", "bench": "micro", "scenarios": [
        {"name": "BM_TreeBuild/1000", "scheme": "wall", "instance": "host",
         "n": 0, "procs": 1, "iter_time": 1e-5, "efficiency": 0.0}
      ]})");
  EXPECT_TRUE(an::fit_overheads(doc).empty());
}

TEST(FitOverheads, RejectsWrongSchema) {
  EXPECT_THROW(an::fit_overheads(Json::parse(R"({"schema": "nope"})")),
               JsonError);
}

}  // namespace
}  // namespace bh
