// Tests for the integrator and the multi-step drivers: symplectic basics,
// energy behaviour, serial-vs-parallel trajectory agreement, and particle
// migration across ownership boundaries during evolution.
#include <gtest/gtest.h>

#include <cmath>

#include "model/distributions.hpp"
#include "sim/simulation.hpp"

namespace bh::sim {
namespace {

using model::ParticleSet;
using model::Rng;

TEST(Integrator, KickDrift) {
  ParticleSet<3> ps;
  ps.push_back({{0, 0, 0}}, {{1, 0, 0}}, 2.0, 0);
  ps.acc[0] = {{0, 2, 0}};
  kick(ps, 0.5);
  EXPECT_EQ(ps.vel[0], (geom::Vec<3>{{1, 1, 0}}));
  drift(ps, 2.0);
  EXPECT_EQ(ps.pos[0], (geom::Vec<3>{{2, 2, 0}}));
}

TEST(Integrator, EnergiesOfKnownState) {
  ParticleSet<3> ps;
  ps.push_back({{0, 0, 0}}, {{3, 0, 0}}, 2.0, 0);
  ps.potential[0] = -4.0;
  const auto e = measure_energies(ps);
  EXPECT_DOUBLE_EQ(e.kinetic, 9.0);
  EXPECT_DOUBLE_EQ(e.potential, -4.0);
  EXPECT_DOUBLE_EQ(e.total(), 5.0);
  EXPECT_EQ(e.momentum, (geom::Vec<3>{{6, 0, 0}}));
}

TEST(TwoBody, CircularOrbitIsStable) {
  // Two equal masses m = 0.5 at distance 1: circular orbit with
  // v = sqrt(G M_other / (2 r_half))... set up from the analytic solution:
  // each orbits the COM at r = 0.5 with v^2 = G m_other * 0.5 / (1)^2 * ...
  // Simpler: mutual force F = m1 m2 / d^2 = 0.25; centripetal m v^2 / 0.5.
  // => v = sqrt(0.25 * 0.5 / 0.5) = 0.5.
  ParticleSet<3> ps;
  ps.push_back({{-0.5, 0, 0}}, {{0, -0.5, 0}}, 0.5, 0);
  ps.push_back({{0.5, 0, 0}}, {{0, 0.5, 0}}, 0.5, 1);
  SerialSimulation<3> sim(ps, {.alpha = 0.1, .softening = 0.0});
  const double e0 = sim.energies().total();
  const double period = 2.0 * M_PI * 0.5 / 0.5;  // 2 pi r / v
  const int nsteps = 2000;
  for (int i = 0; i < nsteps; ++i) sim.step(period / nsteps);
  // After one period the separation is ~1 again and energy is conserved.
  const auto& p = sim.particles();
  EXPECT_NEAR(geom::norm(p.pos[0] - p.pos[1]), 1.0, 0.02);
  EXPECT_NEAR(sim.energies().total(), e0, 1e-4 * std::abs(e0));
}

TEST(SerialSim, EnergyDriftBoundedForPlummer) {
  Rng rng(21);
  auto ps = model::plummer<3>(300, rng);
  SerialSimulation<3> sim(std::move(ps), {.alpha = 0.5, .softening = 0.02});
  const double e0 = sim.energies().total();
  ASSERT_LT(e0, 0.0);  // bound system
  for (int i = 0; i < 50; ++i) sim.step(1e-3);
  const double e1 = sim.energies().total();
  EXPECT_NEAR(e1, e0, 0.05 * std::abs(e0));
  EXPECT_NEAR(sim.time(), 0.05, 1e-12);
}

TEST(SerialSim, MomentumNearlyConserved) {
  Rng rng(22);
  auto ps = model::plummer<3>(200, rng);
  // Zero out net momentum first.
  geom::Vec<3> pm{};
  for (std::size_t i = 0; i < ps.size(); ++i) pm += ps.mass[i] * ps.vel[i];
  for (std::size_t i = 0; i < ps.size(); ++i)
    ps.vel[i] -= pm / ps.total_mass();
  SerialSimulation<3> sim(std::move(ps), {.alpha = 0.3, .softening = 0.02});
  for (int i = 0; i < 30; ++i) sim.step(1e-3);
  // alpha-approximation breaks exact pairwise symmetry; momentum stays
  // small compared to the typical |m v| scale.
  EXPECT_LT(geom::norm(sim.energies().momentum), 2e-3);
}

TEST(ParallelNbody, MatchesSerialTrajectoryInExactMode) {
  Rng rng(23);
  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  auto global = model::gaussian_mixture<3>(300, rng, 3, domain, 3.0);

  SerialSimulation<3> serial(global, {.alpha = 1e-9, .softening = 0.01,
                                      .domain = domain});
  for (int i = 0; i < 5; ++i) serial.step(1e-3);

  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelNbody<3>::Options opts;
    opts.step = {.scheme = par::Scheme::kDPDA,
                 .alpha = 1e-9,
                 .softening = 0.01};
    opts.dt = 1e-3;
    ParallelNbody<3> par(c, domain, global, opts);
    par.evolve(5);
    EXPECT_EQ(par.total_particles(), global.size());
    // Gather final positions by id via potentials? compare positions:
    // collect local particles and compare against serial by id.
    const auto& lp = par.local_particles();
    for (std::size_t i = 0; i < lp.size(); ++i) {
      const auto id = lp.id[i];
      for (int a = 0; a < 3; ++a)
        ASSERT_NEAR(lp.pos[i][a], serial.particles().pos[id][a],
                    1e-7 * (1.0 + std::abs(serial.particles().pos[id][a])))
            << "particle " << id;
    }
  });
}

TEST(ParallelNbody, EnergyConservedAcrossSchemes) {
  Rng rng(24);
  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  auto global = model::gaussian_mixture<3>(400, rng, 2, domain, 2.0);
  for (auto scheme :
       {par::Scheme::kSPSA, par::Scheme::kSPDA, par::Scheme::kDPDA}) {
    mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
      ParallelNbody<3>::Options opts;
      opts.step = {.scheme = scheme,
                   .clusters_per_axis = 4,
                   .alpha = 0.4,
                   .softening = 0.05};
      opts.dt = 5e-4;
      opts.rebalance_every = 2;
      ParallelNbody<3> par(c, domain, global, opts);
      const double e0 = par.energies().total();
      par.evolve(6);
      const double e1 = par.energies().total();
      EXPECT_NEAR(e1, e0, 0.05 * std::abs(e0))
          << "scheme " << static_cast<int>(scheme);
      EXPECT_EQ(par.total_particles(), global.size());
    });
  }
}

TEST(ParallelNbody, MigrationKeepsOwnershipInvariant) {
  // Fast-moving particles cross cluster boundaries every step; migrate()
  // must keep every particle inside an owned subdomain (step() throws
  // otherwise).
  Rng rng(25);
  const geom::Box<3> domain{{{0, 0, 0}}, 100.0};
  auto global = model::uniform_box<3>(300, rng, domain);
  std::uniform_real_distribution<double> uv(-40.0, 40.0);
  for (auto& v : global.vel) v = {{uv(rng), uv(rng), uv(rng)}};

  mp::run_spmd(4, mp::MachineModel::ideal(), [&](mp::Communicator& c) {
    ParallelNbody<3>::Options opts;
    opts.step = {.scheme = par::Scheme::kSPSA,
                 .clusters_per_axis = 4,
                 .alpha = 0.67,
                 .softening = 0.05};
    opts.dt = 0.05;  // huge steps: guaranteed boundary crossings
    ParallelNbody<3> par(c, domain, global, opts);
    EXPECT_NO_THROW(par.evolve(4));
    EXPECT_EQ(par.total_particles(), global.size());
  });
}

}  // namespace
}  // namespace bh::sim
