// legendre.hpp -- associated Legendre function tables.
//
// The paper (Section 5.2) expands the gravitational potential "as a series
// using Legendre's polynomials" [Greengard, ref 7]. These recurrences are the
// numerical workhorse under the solid-harmonic expansions in expansion.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace bh::multipole {

/// Triangular table of associated Legendre values P_l^m(x) for
/// 0 <= m <= l <= degree, with the Condon-Shortley phase (-1)^m.
///
/// Storage is row-major triangular: entry(l, m) at index l*(l+1)/2 + m.
class LegendreTable {
 public:
  explicit LegendreTable(unsigned degree = 0)
      : degree_(degree), p_((degree + 1) * (degree + 2) / 2) {}

  /// Re-target the table to a new degree (no-op when unchanged); contents
  /// become undefined until the next evaluate().
  void resize(unsigned degree) {
    if (degree == degree_) return;
    degree_ = degree;
    p_.resize((degree + 1) * (degree + 2) / 2);
  }

  /// Fill the table for argument x in [-1, 1] using the standard stable
  /// recurrences:
  ///   P_m^m   = (-1)^m (2m-1)!! (1-x^2)^{m/2}
  ///   P_{m+1}^m = x (2m+1) P_m^m
  ///   (l-m) P_l^m = x (2l-1) P_{l-1}^m - (l+m-1) P_{l-2}^m
  void evaluate(double x) {
    assert(x >= -1.0 - 1e-12 && x <= 1.0 + 1e-12);
    const double s = std::sqrt(std::max(0.0, 1.0 - x * x));  // sin(theta)
    at(0, 0) = 1.0;
    for (unsigned m = 1; m <= degree_; ++m)
      at(m, m) = at(m - 1, m - 1) * (-(2.0 * m - 1.0)) * s;
    for (unsigned m = 0; m + 1 <= degree_; ++m)
      at(m + 1, m) = x * (2.0 * m + 1.0) * at(m, m);
    for (unsigned m = 0; m <= degree_; ++m)
      for (unsigned l = m + 2; l <= degree_; ++l)
        at(l, m) = (x * (2.0 * l - 1.0) * at(l - 1, m) -
                    (l + m - 1.0) * at(l - 2, m)) /
                   static_cast<double>(l - m);
  }

  double operator()(unsigned l, unsigned m) const {
    assert(m <= l && l <= degree_);
    return p_[l * (l + 1) / 2 + m];
  }

  unsigned degree() const { return degree_; }

 private:
  double& at(unsigned l, unsigned m) { return p_[l * (l + 1) / 2 + m]; }

  unsigned degree_;
  std::vector<double> p_;
};

/// Factorial as double (exact for n <= 22, ample for practical degrees).
inline double factorial(unsigned n) {
  double f = 1.0;
  for (unsigned i = 2; i <= n; ++i) f *= i;
  return f;
}

}  // namespace bh::multipole
