#include "multipole/expansion.hpp"

#include <cmath>

namespace bh::multipole {

namespace {

/// Spherical decomposition of a Cartesian vector: (r, cos th, e^{i phi}).
struct Spherical {
  double r;
  double cos_theta;
  cplx eiphi;  ///< e^{i phi}; (1,0) when the vector lies on the z axis
};

Spherical to_spherical(const Vec<3>& v) {
  const double rho2 = v[0] * v[0] + v[1] * v[1];
  const double r = std::sqrt(rho2 + v[2] * v[2]);
  Spherical s;
  s.r = r;
  s.cos_theta = r > 0.0 ? v[2] / r : 1.0;
  const double rho = std::sqrt(rho2);
  s.eiphi = rho > 0.0 ? cplx(v[0] / rho, v[1] / rho) : cplx(1.0, 0.0);
  return s;
}

}  // namespace

namespace {

/// Practical ceiling on expansion degrees (factorials stay exact in double
/// up to 22!; stack scratch below sizes to this).
constexpr unsigned kMaxDegree = 21;

/// Reusable per-thread Legendre table for the allocation-free paths.
LegendreTable& tls_legendre(unsigned degree) {
  assert(degree <= kMaxDegree && "expansion degree beyond supported range");
  thread_local LegendreTable P(kMaxDegree);  // capacity reserved up front
  P.resize(degree);
  return P;
}

}  // namespace

void regular_harmonics_into(const Vec<3>& v, unsigned degree, Coeffs& out) {
  if (out.degree() != degree) out.reset(degree);
  const Spherical s = to_spherical(v);
  LegendreTable& P = tls_legendre(degree);
  P.evaluate(s.cos_theta);
  // r^l and e^{-i m phi} built incrementally on the stack.
  double rl[kMaxDegree + 2];
  cplx em[kMaxDegree + 2];
  rl[0] = 1.0;
  em[0] = cplx(1.0, 0.0);
  const cplx conj_eiphi = std::conj(s.eiphi);
  for (unsigned l = 1; l <= degree; ++l) rl[l] = rl[l - 1] * s.r;
  for (unsigned m = 1; m <= degree; ++m) em[m] = em[m - 1] * conj_eiphi;
  for (unsigned l = 0; l <= degree; ++l)
    for (unsigned m = 0; m <= l; ++m)
      out(l, m) = rl[l] * P(l, m) / factorial(l + m) * em[m];
}

void irregular_harmonics_into(const Vec<3>& v, unsigned degree, Coeffs& out) {
  if (out.degree() != degree) out.reset(degree);
  const Spherical s = to_spherical(v);
  LegendreTable& P = tls_legendre(degree);
  P.evaluate(s.cos_theta);
  const double rinv = 1.0 / s.r;
  double rl[kMaxDegree + 2];
  cplx em[kMaxDegree + 2];
  rl[0] = rinv;  // r^-(l+1)
  em[0] = cplx(1.0, 0.0);
  for (unsigned l = 1; l <= degree; ++l) rl[l] = rl[l - 1] * rinv;
  for (unsigned m = 1; m <= degree; ++m) em[m] = em[m - 1] * s.eiphi;
  for (unsigned l = 0; l <= degree; ++l)
    for (unsigned m = 0; m <= l; ++m)
      out(l, m) = rl[l] * P(l, m) * factorial(l - m) * em[m];
}

Coeffs regular_harmonics(const Vec<3>& v, unsigned degree) {
  Coeffs R(degree);
  regular_harmonics_into(v, degree, R);
  return R;
}

Coeffs irregular_harmonics(const Vec<3>& v, unsigned degree) {
  Coeffs I(degree);
  irregular_harmonics_into(v, degree, I);
  return I;
}

void Expansion3::add_particle(const Vec<3>& pos, double mass) {
  thread_local Coeffs R;
  regular_harmonics_into(pos - center_, m_.degree(), R);
  for (unsigned l = 0; l <= m_.degree(); ++l)
    for (unsigned m = 0; m <= l; ++m) m_(l, m) += mass * R(l, m);
}

void Expansion3::add_translated(const Expansion3& child) {
  // M2M via the regular-harmonic convolution identity
  //   R_l^m(a + t) = sum_{j<=l, |k|<=j} R_j^k(t) R_{l-j}^{m-k}(a),
  // so M'_l^m = sum_{j,k} R_j^k(t) M_{l-j}^{m-k}, t = child center - center.
  const unsigned deg = m_.degree();
  const Coeffs R = regular_harmonics(child.center_ - center_, deg);
  const Coeffs& Mc = child.m_;
  const unsigned cdeg = Mc.degree();
  for (unsigned l = 0; l <= deg; ++l) {
    for (unsigned m = 0; m <= l; ++m) {
      cplx acc{};
      for (unsigned j = 0; j <= l; ++j) {
        const unsigned lj = l - j;
        if (lj > cdeg) continue;
        const int mi = static_cast<int>(m);
        for (int k = -static_cast<int>(j); k <= static_cast<int>(j); ++k) {
          const int mk = mi - k;
          if (mk < -static_cast<int>(lj) || mk > static_cast<int>(lj))
            continue;
          acc += R.get(j, k) * Mc.get(lj, mk);
        }
      }
      m_(l, m) += acc;
    }
  }
}

FieldSample<3> Expansion3::evaluate(const Vec<3>& target) const {
  // Gradient identities need irregular harmonics one degree higher.
  const unsigned deg = m_.degree();
  thread_local Coeffs I;
  irregular_harmonics_into(target - center_, deg + 1, I);
  FieldSample<3> f;
  cplx pot{};
  cplx gx{}, gy{}, gz{};
  for (unsigned l = 0; l <= deg; ++l) {
    for (unsigned m = 0; m <= l; ++m) {
      const cplx M = m_(l, m);
      const int mi = static_cast<int>(m);
      const cplx dIx =
          0.5 * (I.get(l + 1, mi + 1) - I.get(l + 1, mi - 1));
      const cplx dIy =
          cplx(0.0, -0.5) * (I.get(l + 1, mi + 1) + I.get(l + 1, mi - 1));
      const cplx dIz = -I.get(l + 1, mi);
      // m > 0 terms appear twice (m and -m) and the pair sums to twice the
      // real part; fold the factor into the weight.
      const double w = (m == 0) ? 1.0 : 2.0;
      if (m == 0) {
        pot += M * I.get(l, 0);
        gx += M * dIx;
        gy += M * dIy;
        gz += M * dIz;
      } else {
        pot += w * cplx((M * I.get(l, mi)).real(), 0.0);
        gx += w * cplx((M * dIx).real(), 0.0);
        gy += w * cplx((M * dIy).real(), 0.0);
        gz += w * cplx((M * dIz).real(), 0.0);
      }
    }
  }
  // Phi = -sum M I; acc = -grad Phi = +sum M grad I.
  f.potential = -pot.real();
  f.acc = {{gx.real(), gy.real(), gz.real()}};
  return f;
}

double Expansion3::evaluate_potential(const Vec<3>& target) const {
  const unsigned deg = m_.degree();
  thread_local Coeffs I;
  irregular_harmonics_into(target - center_, deg, I);
  double pot = 0.0;
  for (unsigned l = 0; l <= deg; ++l) {
    pot += (m_(l, 0) * I(l, 0)).real();
    for (unsigned m = 1; m <= l; ++m)
      pot += 2.0 * (m_(l, m) * I(l, m)).real();
  }
  return -pot;
}

void Expansion2::add_particle(const Vec<2>& pos, double mass) {
  const cplx w(pos[0] - center_[0], pos[1] - center_[1]);
  q_ += mass;
  cplx wk = w;
  for (std::size_t k = 1; k < a_.size(); ++k) {
    a_[k] += mass * wk / static_cast<double>(k);
    wk *= w;
  }
}

void Expansion2::add_translated(const Expansion2& child) {
  // 2-D multipole shift (Greengard's Lemma 2.3 adapted to this sign
  // convention). With w_old = w_new - t, t = child center - this center:
  //   log(w - t)  = log w - sum_l (t^l / l) w^-l
  //   (w - t)^-k  = sum_{l>=k} C(l-1, k-1) t^{l-k} w^-l
  // so, for Phi = Re[Q log w - sum_l b_l w^-l]:
  //   b_l = +Q t^l / l + sum_{k=1}^{l} a_k C(l-1, k-1) t^{l-k}.
  const cplx t(child.center_[0] - center_[0],
               child.center_[1] - center_[1]);
  q_ += child.q_;
  const std::size_t K = a_.size();
  // Binomial table up to K.
  std::vector<std::vector<double>> C(K, std::vector<double>(K, 0.0));
  for (std::size_t i = 0; i < K; ++i) {
    C[i][0] = 1.0;
    for (std::size_t j = 1; j <= i; ++j)
      C[i][j] = C[i - 1][j - 1] + (j <= i - 1 ? C[i - 1][j] : 0.0);
  }
  std::vector<cplx> tp(K + 1, cplx(1.0, 0.0));
  for (std::size_t i = 1; i <= K; ++i) tp[i] = tp[i - 1] * t;
  for (std::size_t l = 1; l < K; ++l) {
    cplx b = child.q_ * tp[l] / static_cast<double>(l);
    for (std::size_t k = 1; k <= l && k < child.a_.size(); ++k)
      b += child.a_[k] * C[l - 1][k - 1] * tp[l - k];
    a_[l] += b;
  }
}

FieldSample<2> Expansion2::evaluate(const Vec<2>& target) const {
  const cplx w(target[0] - center_[0], target[1] - center_[1]);
  // f(w) = Q log w - sum a_k w^-k ; Phi = Re f.
  // f'(w) = Q / w + sum k a_k w^-(k+1).
  const cplx winv = 1.0 / w;
  cplx f = q_ * std::log(w);
  cplx fp = q_ * winv;
  cplx wik = winv;
  for (std::size_t k = 1; k < a_.size(); ++k) {
    f -= a_[k] * wik;
    fp += static_cast<double>(k) * a_[k] * wik * winv;
    wik *= winv;
  }
  FieldSample<2> s;
  s.potential = f.real();
  // Phi = Re f(w): dPhi/dx = Re f', dPhi/dy = -Im f'; acc = -grad Phi.
  s.acc = {{-fp.real(), fp.imag()}};
  return s;
}

}  // namespace bh::multipole
