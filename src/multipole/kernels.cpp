// kernels.cpp -- SoA batch kernel implementations (see kernels.hpp).
//
// The inner loops are written axis-outer / lane-inner over the fixed
// kBlockWidth lanes so every memory access is contiguous and the
// vectorizer can keep whole SoA rows in vector registers (sqrt and div
// vectorize under -fno-math-errno and stay IEEE-exact). Masking is a 0/1
// weight folded into the source mass instead of a branch. Guards follow
// the scalar point kernel's semantics exactly: a zero separation (with
// zero softening) contributes nothing, and an excluded or inactive lane
// contributes nothing, but an r2 > 0 pair is *counted* whenever the ids
// differ.
#include "multipole/kernels.hpp"

#include <bit>
#include <cmath>

namespace bh::multipole {

namespace {

/// Accumulate one weighted point mass onto every lane of `blk`.
/// `w[l]` is the 0/1 inclusion weight of lane l. Per lane this matches
/// point_kernel term for term: Phi = -m/r (3-D) or (m/2) log r^2 (2-D),
/// acc = m d / r^3 (3-D) or m d / r^2 (2-D), d = source - target, with
/// r^2 accumulated as eps^2 + dx^2 + dy^2 + ... in axis order.
template <std::size_t D>
inline void accumulate_row(TargetBlock<D>& blk, const double* sp, double sm,
                           double eps2, const double* w) {
  double d[D][kBlockWidth];
  double r2[kBlockWidth];
#pragma omp simd
  for (std::size_t l = 0; l < kBlockWidth; ++l) r2[l] = eps2;
  for (std::size_t a = 0; a < D; ++a) {
    const double spa = sp[a];
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l) {
      d[a][l] = spa - blk.pos[a][l];
      r2[l] += d[a][l] * d[a][l];
    }
  }
  // The r2 == 0 guard is arithmetic, not a select: GCC treats even an
  // if-convertible ternary as control flow and refuses to vectorize the
  // loop, while `w * nz` (w is 0 or 1) and `r2 + (1 - nz)` (r2 when
  // positive, exactly 1.0 when r2 == 0; squares are never negative) are
  // bit-identical to the selects and keep the loop branch-free.
  double s[kBlockWidth];
  if constexpr (D == 3) {
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l) {
      const double nz = static_cast<double>(r2[l] > 0.0);
      const double wf = w[l] * nz;
      const double rr = r2[l] + (1.0 - nz);  // keep 1/sqrt finite
      const double rinv = 1.0 / std::sqrt(rr);
      const double wp = wf * sm * rinv;
      blk.potential[l] -= wp;
      s[l] = wp * rinv * rinv;
    }
  } else {
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l) {
      const double nz = static_cast<double>(r2[l] > 0.0);
      const double wf = w[l] * nz;
      const double rr = r2[l] + (1.0 - nz);
      blk.potential[l] += wf * 0.5 * sm * std::log(rr);
      s[l] = wf * sm / rr;
    }
  }
  for (std::size_t a = 0; a < D; ++a)
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l)
      blk.acc[a][l] += s[l] * d[a][l];
}

}  // namespace

template <std::size_t D>
std::uint64_t p2p_block(TargetBlock<D>& blk, const SourceView<D>& src,
                        std::uint32_t first, std::uint32_t count,
                        LaneMask mask, double eps,
                        std::array<std::uint64_t, kBlockWidth>& lane_pairs) {
  const double eps2 = eps * eps;
  std::array<std::uint64_t, kBlockWidth> pairs{};
  for (std::uint32_t j = first; j < first + count; ++j) {
    double sp[D];
    for (std::size_t a = 0; a < D; ++a) sp[a] = src.pos[a][j];
    const std::uint64_t sid = src.id[j];
    double w[kBlockWidth];
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l) {
      const std::uint64_t counted =
          (static_cast<std::uint64_t>(mask) >> l) & 1u &
          static_cast<std::uint64_t>(sid != blk.id[l]);
      pairs[l] += counted;
      w[l] = static_cast<double>(counted);
    }
    accumulate_row<D>(blk, sp, src.mass[j], eps2, w);
  }
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < kBlockWidth; ++l) {
    lane_pairs[l] += pairs[l];
    total += pairs[l];
  }
  return total;
}

template <std::size_t D>
void m2p_monopole_block(TargetBlock<D>& blk, const Vec<D>& com, double mass,
                        LaneMask mask, double eps) {
  const double eps2 = eps * eps;
  double sp[D];
  for (std::size_t a = 0; a < D; ++a) sp[a] = com[a];
  double w[kBlockWidth];
  for (std::size_t l = 0; l < kBlockWidth; ++l)
    w[l] = ((mask >> l) & 1u) != 0 ? 1.0 : 0.0;
  accumulate_row<D>(blk, sp, mass, eps2, w);
}

template <std::size_t D>
void m2p_expansion_block(TargetBlock<D>& blk, const Expansion<D>& e,
                         LaneMask mask, bool potential_only) {
  for (std::size_t l = 0; l < kBlockWidth; ++l) {
    if (((mask >> l) & 1u) == 0) continue;
    Vec<D> t;
    for (std::size_t a = 0; a < D; ++a) t[a] = blk.pos[a][l];
    if (potential_only) {
      blk.potential[l] += e.evaluate_potential(t);
    } else {
      const auto f = e.evaluate(t);
      blk.potential[l] += f.potential;
      for (std::size_t a = 0; a < D; ++a) blk.acc[a][l] += f.acc[a];
    }
  }
}

template <std::size_t D>
std::uint64_t m2p_monopole_list(TargetBlock<D>& blk,
                                const ApproxItem<D>* items,
                                std::size_t n_items, double eps) {
  const double eps2 = eps * eps;
  std::uint64_t inter = 0;
  for (std::size_t i = 0; i < n_items; ++i) {
    const ApproxItem<D>& it = items[i];
    double sp[D];
    for (std::size_t a = 0; a < D; ++a) sp[a] = it.com[a];
    double w[kBlockWidth];
#pragma omp simd
    for (std::size_t l = 0; l < kBlockWidth; ++l)
      w[l] = static_cast<double>((static_cast<std::uint64_t>(it.mask) >> l) &
                                 1u);
    accumulate_row<D>(blk, sp, it.mass, eps2, w);
    inter += static_cast<std::uint64_t>(std::popcount(it.mask));
  }
  return inter;
}

template <std::size_t D>
std::uint64_t p2p_list(TargetBlock<D>& blk, const SourceView<D>& src,
                       const DirectItem* items, std::size_t n_items,
                       double eps,
                       std::array<std::uint64_t, kBlockWidth>& lane_pairs) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_items; ++i) {
    const DirectItem& it = items[i];
    total += p2p_block<D>(blk, src, it.first, it.count, it.mask, eps,
                          lane_pairs);
  }
  return total;
}

#define BH_INSTANTIATE(D)                                                    \
  template std::uint64_t p2p_block<D>(                                       \
      TargetBlock<D>&, const SourceView<D>&, std::uint32_t, std::uint32_t,   \
      LaneMask, double, std::array<std::uint64_t, kBlockWidth>&);            \
  template void m2p_monopole_block<D>(TargetBlock<D>&, const Vec<D>&,        \
                                      double, LaneMask, double);             \
  template void m2p_expansion_block<D>(TargetBlock<D>&, const Expansion<D>&, \
                                       LaneMask, bool);                      \
  template std::uint64_t m2p_monopole_list<D>(                               \
      TargetBlock<D>&, const ApproxItem<D>*, std::size_t, double);           \
  template std::uint64_t p2p_list<D>(                                        \
      TargetBlock<D>&, const SourceView<D>&, const DirectItem*,              \
      std::size_t, double, std::array<std::uint64_t, kBlockWidth>&);

BH_INSTANTIATE(2)
BH_INSTANTIATE(3)
#undef BH_INSTANTIATE

}  // namespace bh::multipole
