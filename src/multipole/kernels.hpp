// kernels.hpp -- SoA batch kernels for the blocked sort-then-interact
// force pipeline (DESIGN.md section 13).
//
// The blocked traversal (tree/traverse.cpp) groups up to kBlockWidth
// evaluation points that share a tree leaf into one TargetBlock and builds
// per-block interaction lists; these kernels then evaluate one whole list
// entry against every lane of the block at once. Laying the lanes out as
// structure-of-arrays lets the compiler vectorize the per-lane arithmetic,
// and amortizes each source load (a leaf particle, a node monopole, or an
// expansion's coefficient table) over all lanes instead of re-reading it
// per particle as the recursive walker does.
//
// Divergent MAC decisions are handled with lane masks: an entry carries the
// subset of lanes it applies to, and masked-out lanes are neutralized with
// a 0/1 arithmetic weight rather than a branch, so the inner loops stay
// branch-free over the lanes. Pair counting uses the id-exclusion weight
// only -- the walker counts a coincident *distinct* pair even though the
// point kernel contributes zero field for it -- so modeled work stays
// exactly identical between the two traversals.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "geom/vec.hpp"
#include "multipole/expansion.hpp"

namespace bh::multipole {

using geom::Vec;

/// Lanes per target block. Eight doubles fill one cache line per SoA row
/// and map onto 2..4 SIMD vectors at SSE2..AVX-512 widths.
inline constexpr std::size_t kBlockWidth = 8;

/// All lane masks are dense bitsets over [0, kBlockWidth).
using LaneMask = std::uint8_t;
inline constexpr LaneMask lane_bit(std::size_t lane) {
  return static_cast<LaneMask>(1u << lane);
}

/// One block of evaluation points in structure-of-arrays layout: positions
/// and self-exclusion ids in, potential / acceleration accumulators out.
/// Lanes beyond `width` are zero-filled and excluded from every mask.
template <std::size_t D>
struct TargetBlock {
  std::array<std::array<double, kBlockWidth>, D> pos{};  ///< pos[axis][lane]
  std::array<std::uint64_t, kBlockWidth> id{};
  std::array<double, kBlockWidth> potential{};
  std::array<std::array<double, kBlockWidth>, D> acc{};  ///< acc[axis][lane]
  std::size_t width = 0;

  void reset(std::size_t w) {
    width = w;
    for (auto& row : pos) row.fill(0.0);
    id.fill(0);
    potential.fill(0.0);
    for (auto& row : acc) row.fill(0.0);
  }

  void set_lane(std::size_t lane, const Vec<D>& p, std::uint64_t pid) {
    for (std::size_t a = 0; a < D; ++a) pos[a][lane] = p[a];
    id[lane] = pid;
  }

  FieldSample<D> field(std::size_t lane) const {
    FieldSample<D> f;
    f.potential = potential[lane];
    for (std::size_t a = 0; a < D; ++a) f.acc[a] = acc[a][lane];
    return f;
  }

  LaneMask full_mask() const {
    return static_cast<LaneMask>((1u << width) - 1u);
  }
};

/// Slot-ordered SoA view of the source particles (gathered once per tree
/// from the Morton permutation; see tree::SlotSources). `pos[a][slot]` is
/// axis `a` of the particle in permuted slot `slot`.
template <std::size_t D>
struct SourceView {
  std::array<const double*, D> pos{};
  const double* mass = nullptr;
  const std::uint64_t* id = nullptr;
};

/// Approx-list entry. The monopole payload (com, mass) is captured while
/// the node is hot in cache during the list-building pass, so the
/// evaluation pass streams a compact contiguous array instead of
/// re-fetching scattered Node records; `node` indexes the expansion
/// (degree-k path) and identifies the node for load recording.
template <std::size_t D>
struct ApproxItem {
  Vec<D> com;
  double mass;
  std::int32_t node;
  LaneMask mask;
};

/// Direct-list entry: the leaf's slot range, plus the node index for load
/// recording.
struct DirectItem {
  std::uint32_t first;
  std::uint32_t count;
  std::int32_t node;
  LaneMask mask;
};

/// P2P batch kernel: accumulate the Plummer-softened point-mass fields of
/// source slots [first, first+count) onto every lane of `blk` selected by
/// `mask`. Per-lane pair counts (id exclusion only, see header comment) are
/// added to `lane_pairs`; the return value is the entry's total pair count
/// across lanes (what the walker charges to the leaf's load counter).
template <std::size_t D>
std::uint64_t p2p_block(TargetBlock<D>& blk, const SourceView<D>& src,
                        std::uint32_t first, std::uint32_t count,
                        LaneMask mask, double eps,
                        std::array<std::uint64_t, kBlockWidth>& lane_pairs);

/// Monopole M2P: one node's point-mass field onto the masked lanes (the
/// degree-0 approximation used by the Section 5.1 force experiments).
template <std::size_t D>
void m2p_monopole_block(TargetBlock<D>& blk, const Vec<D>& com, double mass,
                        LaneMask mask, double eps);

/// Degree-k M2P: evaluate one expansion on every masked lane. The win over
/// the per-particle walker is coefficient-table locality: the expansion is
/// read once and applied to the whole block.
template <std::size_t D>
void m2p_expansion_block(TargetBlock<D>& blk, const Expansion<D>& e,
                         LaneMask mask, bool potential_only);

/// Whole-list monopole M2P: apply every approx item to the block in list
/// order. Keeping the entry loop inside the kernel translation unit lets
/// the per-entry lane arithmetic inline into one streaming pass over the
/// contiguous item array. Returns the total lane-interaction count
/// (popcounts of the item masks).
template <std::size_t D>
std::uint64_t m2p_monopole_list(TargetBlock<D>& blk,
                                const ApproxItem<D>* items,
                                std::size_t n_items, double eps);

/// Whole-list P2P: apply every direct item in list order; same rationale as
/// m2p_monopole_list. Adds per-lane pair counts to `lane_pairs` and returns
/// the total pair count.
template <std::size_t D>
std::uint64_t p2p_list(TargetBlock<D>& blk, const SourceView<D>& src,
                       const DirectItem* items, std::size_t n_items,
                       double eps,
                       std::array<std::uint64_t, kBlockWidth>& lane_pairs);

}  // namespace bh::multipole
