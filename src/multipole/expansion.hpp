// expansion.hpp -- degree-k multipole expansions of the gravitational field.
//
// Conventions (3-D): with regular / irregular solid harmonics
//   R_l^m(r) = r^l  P_l^m(cos th) e^{-i m phi} / (l+m)!
//   I_l^m(r) = r^-(l+1) P_l^m(cos th) e^{+i m phi} * (l-m)!
// the addition theorem gives, for |r| > |r'|,
//   1/|r - r'| = sum_{l,m} R_l^m(r') I_l^m(r).
// A cluster's multipole about center c is M_l^m = sum_j m_j R_l^m(r_j - c),
// and the potential of the cluster at an external point is
//   Phi(r) = - sum_{l,m} M_l^m I_l^m(r - c)          (G = 1).
// Truncating at l <= k gives the paper's "degree-k polynomial" treecode
// (Section 5.2); k = 0 is the monopole used by the force experiments
// (Section 5.1).
//
// Accelerations come from the gradient identities of the irregular
// harmonics (verified against finite differences in the test suite):
//   dI_l^m/dx =  1/2 (I_{l+1}^{m+1} - I_{l+1}^{m-1})
//   dI_l^m/dy = -i/2 (I_{l+1}^{m+1} + I_{l+1}^{m-1})
//   dI_l^m/dz = -I_{l+1}^m
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec.hpp"
#include "multipole/legendre.hpp"

namespace bh::multipole {

using geom::Vec;
using cplx = std::complex<double>;

/// Result of evaluating a field: potential and acceleration at a point.
template <std::size_t D>
struct FieldSample {
  double potential = 0.0;
  Vec<D> acc{};

  FieldSample& operator+=(const FieldSample& o) {
    potential += o.potential;
    acc += o.acc;
    return *this;
  }
};

/// Exact point-mass (monopole) kernel with Plummer softening eps:
/// Phi = -m / sqrt(|d|^2 + eps^2), acc = m d / (|d|^2 + eps^2)^{3/2},
/// d = source - target.
template <std::size_t D>
FieldSample<D> point_kernel(const Vec<D>& target, const Vec<D>& source,
                            double mass, double eps = 0.0);

/// Triangular complex coefficient store for 0 <= m <= l <= degree; negative
/// m is implied by the real-source symmetry A_l^{-m} = (-1)^m conj(A_l^m).
class Coeffs {
 public:
  Coeffs() : Coeffs(0) {}
  explicit Coeffs(unsigned degree)
      : degree_(degree), c_((degree + 1) * (degree + 2) / 2) {}

  /// Re-target to a new degree; coefficients are zeroed.
  void reset(unsigned degree) {
    degree_ = degree;
    c_.assign((degree + 1) * std::size_t(degree + 2) / 2, cplx{});
  }

  cplx& operator()(unsigned l, unsigned m) { return c_[idx(l, m)]; }
  const cplx& operator()(unsigned l, unsigned m) const {
    return c_[idx(l, m)];
  }

  /// Value for any m in [-l, l] using the conjugation symmetry.
  cplx get(unsigned l, int m) const {
    if (m >= 0) return c_[idx(l, static_cast<unsigned>(m))];
    const cplx v = c_[idx(l, static_cast<unsigned>(-m))];
    return (-m) % 2 ? -std::conj(v) : std::conj(v);
  }

  unsigned degree() const { return degree_; }
  std::size_t size() const { return c_.size(); }
  std::span<const cplx> raw() const { return c_; }
  std::span<cplx> raw() { return c_; }

 private:
  static std::size_t idx(unsigned l, unsigned m) {
    return std::size_t(l) * (l + 1) / 2 + m;
  }
  unsigned degree_ = 0;
  std::vector<cplx> c_;
};

/// Evaluate regular solid harmonics R_l^m(v) for all 0 <= m <= l <= degree.
Coeffs regular_harmonics(const Vec<3>& v, unsigned degree);

/// Evaluate irregular solid harmonics I_l^m(v), same layout.
Coeffs irregular_harmonics(const Vec<3>& v, unsigned degree);

/// Allocation-free variants writing into a caller-provided (reusable)
/// coefficient block -- the force-phase hot path.
void regular_harmonics_into(const Vec<3>& v, unsigned degree, Coeffs& out);
void irregular_harmonics_into(const Vec<3>& v, unsigned degree, Coeffs& out);

/// A 3-D multipole expansion of degree k about a given center.
class Expansion3 {
 public:
  Expansion3() = default;
  explicit Expansion3(unsigned degree, Vec<3> center = {})
      : center_(center), m_(degree) {}

  unsigned degree() const { return m_.degree(); }
  const Vec<3>& center() const { return center_; }
  double total_mass() const { return m_(0, 0).real(); }
  const Coeffs& coeffs() const { return m_; }
  Coeffs& coeffs() { return m_; }

  /// P2M: accumulate one source particle.
  void add_particle(const Vec<3>& pos, double mass);

  /// M2M: accumulate a child expansion translated to this center.
  void add_translated(const Expansion3& child);

  /// M2P: potential and acceleration at an external evaluation point.
  /// Valid when |target - center| exceeds the cluster radius.
  FieldSample<3> evaluate(const Vec<3>& target) const;

  /// Potential only (cheaper; the paper's Section 5.2 experiments compute
  /// potentials).
  double evaluate_potential(const Vec<3>& target) const;

  /// Number of real coefficients (communication payload size for a
  /// data-shipping scheme, Section 4.2.1).
  std::size_t real_coefficient_count() const {
    return 2 * m_.size();
  }

 private:
  Vec<3> center_{};
  Coeffs m_;
};

/// A 2-D multipole expansion: Phi(z) = Re[ Q log(z-c) - sum_k a_k/(z-c)^k ],
/// a_k = sum_j m_j (z_j - c)^k / k (Greengard's classic 2-D expansion).
/// Provided because the paper develops its formulations in 2-D; the test
/// suite uses it to cross-check dimension-generic tree logic.
class Expansion2 {
 public:
  Expansion2() = default;
  explicit Expansion2(unsigned degree, Vec<2> center = {})
      : center_(center), a_(degree + 1) {}

  unsigned degree() const {
    return a_.empty() ? 0 : static_cast<unsigned>(a_.size() - 1);
  }
  const Vec<2>& center() const { return center_; }
  double total_mass() const { return q_; }

  void add_particle(const Vec<2>& pos, double mass);
  void add_translated(const Expansion2& child);
  FieldSample<2> evaluate(const Vec<2>& target) const;
  double evaluate_potential(const Vec<2>& target) const {
    return evaluate(target).potential;
  }

  /// Serialization access (branch-node exchange).
  const std::vector<cplx>& series() const { return a_; }
  void restore(double q, std::vector<cplx> a) {
    q_ = q;
    a_ = std::move(a);
  }

 private:
  Vec<2> center_{};
  double q_ = 0.0;            ///< total mass
  std::vector<cplx> a_;       ///< a_[k], k >= 1 used (a_[0] unused)
};

/// Dimension-generic alias used by the tree layer.
template <std::size_t D>
using Expansion = std::conditional_t<D == 2, Expansion2, Expansion3>;

// -- inline point kernel ----------------------------------------------------

template <std::size_t D>
inline FieldSample<D> point_kernel(const Vec<D>& target, const Vec<D>& source,
                                   double mass, double eps) {
  const Vec<D> d = source - target;
  const double r2 = geom::norm2(d) + eps * eps;
  FieldSample<D> f;
  if (r2 <= 0.0) return f;
  const double rinv = 1.0 / std::sqrt(r2);
  if constexpr (D == 3) {
    f.potential = -mass * rinv;
    f.acc = (mass * rinv * rinv * rinv) * d;
  } else {
    // 2-D gravity: Phi = m log r, acc = -grad Phi = m d / r^2 toward source.
    f.potential = 0.5 * mass * std::log(r2);
    f.acc = (mass / r2) * d;
  }
  return f;
}

}  // namespace bh::multipole
