// hmatvec.hpp -- hierarchical kernel matrix-vector products.
//
// The paper's conclusion points at boundary element methods: "the boundary
// elements correspond to particles and the force model is defined by the
// Green's function of the integral equation" (Section 2), and the authors'
// companion paper [17] applies exactly these treecode formulations to
// parallel matrix-vector products. This module is that application: given
// points x_i and a kernel G, it evaluates
//
//     y_i = sum_{j != i} G(|x_i - x_j|) w_j
//
// in O(n log n) with the Barnes-Hut machinery, for *signed* weight vectors
// (boundary-element densities change sign, unlike masses). Signed weights
// break center-of-mass trees, so the apply uses the shift identity
//     y(w) = y(w - c 1) + c y(1),  c = min(w) - eps,
// running two positive-weight treecode passes; the geometry (and the all-
// ones pass) are cached across applies, which is what an iterative solver
// needs. A conjugate-gradient solver on top completes the BEM use case.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "geom/vec.hpp"
#include "model/particle.hpp"
#include "tree/bhtree.hpp"

namespace bh::bem {

using geom::Vec;

/// Kernels G(r) supported by the hierarchical apply. kLaplace is the 1/r
/// Green's function the paper's gravitational experiments use; kYukawa is
/// the screened e^{-kappa r}/r variant common in BEM (treated at monopole
/// level: the decay makes far clusters even more compressible).
enum class KernelKind : std::uint8_t { kLaplace, kYukawa };

struct MatVecOptions {
  double alpha = 0.5;      ///< Barnes-Hut acceptance parameter
  unsigned degree = 3;     ///< multipole degree (Laplace only; 0 = mono)
  unsigned leaf_capacity = 8;
  double yukawa_kappa = 0.5;  ///< screening parameter for kYukawa
  /// Diagonal term: A_ii = diagonal (the panel self-interaction in BEM
  /// discretizations; also what makes the system solvable by CG).
  double diagonal = 0.0;
};

/// O(n^2) dense reference (tests and small problems).
std::vector<double> dense_matvec(std::span<const Vec<3>> points,
                                 std::span<const double> weights,
                                 KernelKind kind,
                                 const MatVecOptions& opts = {});

/// Hierarchical kernel matrix with cached geometry.
class HierarchicalKernelMatrix {
 public:
  HierarchicalKernelMatrix(std::vector<Vec<3>> points, KernelKind kind,
                           MatVecOptions opts = {});

  std::size_t size() const { return points_.size(); }

  /// y = A w with A_ij = G(|x_i - x_j|) (zero diagonal). O(n log n).
  std::vector<double> apply(std::span<const double> weights) const;

  /// Solve A x = b by conjugate gradients using the fast apply. Returns
  /// the iterate and reports the achieved relative residual / iterations.
  struct SolveResult {
    std::vector<double> x;
    double relative_residual = 0.0;
    int iterations = 0;
    bool converged = false;
  };
  SolveResult solve_cg(std::span<const double> b, double tol = 1e-8,
                       int max_iter = 200) const;

 private:
  std::vector<Vec<3>> points_;
  KernelKind kind_;
  MatVecOptions opts_;
  /// Frozen tree geometry (centers from unit masses) + reusable particle
  /// storage; apply() only swaps masses in, keeping the operator linear.
  mutable model::ParticleSet<3> ps_;
  mutable tree::BhTree<3> tree_;
};

}  // namespace bh::bem
