#include "bem/hmatvec.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bh::bem {

namespace {

double kernel_value(KernelKind kind, double r, double kappa) {
  if (r <= 0.0) return 0.0;
  switch (kind) {
    case KernelKind::kLaplace:
      return 1.0 / r;
    case KernelKind::kYukawa:
      return std::exp(-kappa * r) / r;
  }
  return 0.0;
}

/// Monopole treecode pass for a general radial kernel: the alpha-MAC
/// decides clustering; accepted nodes contribute W * G(|x - com|).
std::vector<double> monopole_pass(const tree::BhTree<3>& t,
                                  const model::ParticleSet<3>& ps,
                                  KernelKind kind,
                                  const MatVecOptions& opts) {
  std::vector<double> y(ps.size(), 0.0);
  std::vector<std::int32_t> stack;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto target = ps.pos[i];
    double acc = 0.0;
    stack.assign(1, 0);
    while (!stack.empty()) {
      const auto ni = stack.back();
      stack.pop_back();
      const auto& n = t.nodes[static_cast<std::size_t>(ni)];
      if (n.count == 0) continue;
      const double dist = geom::norm(target - n.com);
      const bool accept = dist > 0.0 && (n.box.edge / dist) < opts.alpha &&
                          !n.box.contains(target);
      if (accept && !(n.is_leaf && n.count == 1)) {
        acc += n.mass * kernel_value(kind, dist, opts.yukawa_kappa);
        continue;
      }
      if (n.is_leaf) {
        for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
          const auto pj = t.perm[s];
          if (pj == i) continue;
          acc += ps.mass[pj] * kernel_value(
                                   kind, geom::norm(target - ps.pos[pj]),
                                   opts.yukawa_kappa);
        }
        continue;
      }
      for (auto c : n.child)
        if (c != tree::kNullNode) stack.push_back(c);
    }
    y[i] = acc;
  }
  return y;
}

}  // namespace

std::vector<double> dense_matvec(std::span<const Vec<3>> points,
                                 std::span<const double> weights,
                                 KernelKind kind, const MatVecOptions& opts) {
  assert(points.size() == weights.size());
  std::vector<double> y(points.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    double acc = opts.diagonal * weights[i];
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      acc += weights[j] * kernel_value(kind, geom::norm(points[i] - points[j]),
                                       opts.yukawa_kappa);
    }
    y[i] = acc;
  }
  return y;
}

HierarchicalKernelMatrix::HierarchicalKernelMatrix(std::vector<Vec<3>> points,
                                                   KernelKind kind,
                                                   MatVecOptions opts)
    : points_(std::move(points)), kind_(kind), opts_(opts) {
  if (points_.empty())
    throw std::invalid_argument("kernel matrix needs at least one point");
  // Freeze the geometry with unit masses: node centers become point
  // centroids, independent of any later weight vector, so apply() is an
  // exactly linear operator (a fixed matrix, as a Krylov solver requires).
  ps_.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i)
    ps_.push_back(points_[i], {}, 1.0, i);
  const unsigned degree = kind_ == KernelKind::kLaplace ? opts_.degree : 0;
  tree_ = tree::build_tree(ps_, ps_.bounding_cube(),
                           {.leaf_capacity = opts_.leaf_capacity,
                            .degree = degree});
}

std::vector<double> HierarchicalKernelMatrix::apply(
    std::span<const double> weights) const {
  assert(weights.size() == points_.size());
  // Load the signed weights as masses on the frozen geometry and rebuild
  // the (weight-linear) node aggregates about the fixed centers.
  for (std::size_t i = 0; i < ps_.size(); ++i) ps_.mass[i] = weights[i];
  tree::refresh_masses(tree_, ps_);

  std::vector<double> y(ps_.size(), 0.0);
  if (kind_ == KernelKind::kLaplace) {
    ps_.zero_accumulators();
    tree::compute_fields(tree_, ps_,
                         {.alpha = opts_.alpha,
                          .kind = tree::FieldKind::kPotential,
                          .use_expansions = tree_.has_expansions()});
    // Phi = -sum w / r, so the kernel sum is -Phi.
    for (std::size_t i = 0; i < ps_.size(); ++i) y[i] = -ps_.potential[i];
  } else {
    y = monopole_pass(tree_, ps_, kind_, opts_);
  }
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] += opts_.diagonal * weights[i];
  return y;
}

HierarchicalKernelMatrix::SolveResult HierarchicalKernelMatrix::solve_cg(
    std::span<const double> b, double tol, int max_iter) const {
  const std::size_t n = points_.size();
  assert(b.size() == n);
  SolveResult res;
  res.x.assign(n, 0.0);
  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rr += r[i] * r[i];
    bb += b[i] * b[i];
  }
  const double stop2 = tol * tol * std::max(bb, 1e-300);
  for (res.iterations = 0; res.iterations < max_iter; ++res.iterations) {
    if (rr <= stop2) {
      res.converged = true;
      break;
    }
    const auto Ap = apply(p);
    double pAp = 0.0;
    for (std::size_t i = 0; i < n; ++i) pAp += p[i] * Ap[i];
    if (pAp <= 0.0) break;  // lost positive-definiteness
    const double alpha = rr / pAp;
    double rr_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
      rr_new += r[i] * r[i];
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  res.relative_residual = std::sqrt(rr / std::max(bb, 1e-300));
  res.converged = res.converged || rr <= stop2;
  return res;
}

}  // namespace bh::bem
