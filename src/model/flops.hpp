// flops.hpp -- the paper's operation-count model (Section 5.2.1).
//
// "In our code, each particle-cluster interaction requires 13 + k^2 * 16
// floating point instructions, where k is the degree of polynomial used.
// The MAC routine requires 14 floating point instructions. The square root
// instruction is assumed to be a single floating point instruction."
//
// These counts drive the virtual-time machine model: the paper computes
// parallel efficiencies by projecting sequential time from per-interaction
// costs (Section 5.2.1), and we follow the identical methodology.
#pragma once

#include <cstdint>

namespace bh::model {

/// Flops for one multipole acceptance criterion evaluation.
inline constexpr std::uint64_t kMacFlops = 14;

/// Flops for one particle-cluster interaction with a degree-k expansion.
/// Degree 0 (monopole) degenerates to the 13-flop point-mass kernel plus the
/// k^2 term vanishing -- consistent with the paper's monopole experiments.
constexpr std::uint64_t interaction_flops(unsigned degree) {
  return 13 + std::uint64_t(16) * degree * degree;
}

/// Flops for one direct particle-particle interaction (same as a monopole
/// particle-cluster interaction).
inline constexpr std::uint64_t kDirectFlops = interaction_flops(0);

/// Work counters accumulated by every traversal; the product with a machine
/// model's seconds-per-flop gives the virtual compute time.
struct WorkCounter {
  std::uint64_t mac_evals = 0;
  std::uint64_t interactions = 0;      ///< particle-cluster interactions
  std::uint64_t direct_pairs = 0;      ///< particle-particle interactions
  unsigned degree = 0;                 ///< expansion degree in force phase

  constexpr std::uint64_t flops() const {
    return mac_evals * kMacFlops + interactions * interaction_flops(degree) +
           direct_pairs * kDirectFlops;
  }

  WorkCounter& operator+=(const WorkCounter& o) {
    mac_evals += o.mac_evals;
    interactions += o.interactions;
    direct_pairs += o.direct_pairs;
    return *this;
  }
};

}  // namespace bh::model
