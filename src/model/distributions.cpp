#include "model/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bh::model {

namespace {

/// Uniform point on the unit D-sphere surface.
template <std::size_t D>
geom::Vec<D> random_direction(Rng& rng) {
  std::normal_distribution<double> n01(0.0, 1.0);
  geom::Vec<D> v;
  double r2 = 0.0;
  do {
    for (std::size_t i = 0; i < D; ++i) v[i] = n01(rng);
    r2 = geom::norm2(v);
  } while (r2 < 1e-30);
  return v / std::sqrt(r2);
}

}  // namespace

template <std::size_t D>
ParticleSet<D> plummer(std::size_t n, Rng& rng, double scale_radius,
                       geom::Vec<D> center) {
  ParticleSet<D> s;
  s.reserve(n);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double m = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the inverse of the Plummer cumulative mass profile
    // M(r)/M = r^3 / (r^2 + a^2)^{3/2}  =>  r = a / sqrt(u^{-2/3} - 1).
    double u = u01(rng);
    // Clamp the tail: the Plummer profile formally extends to infinity;
    // production N-body codes cut it (here at ~22 scale radii, >99.9% mass).
    u = std::min(u, 0.9999);
    u = std::max(u, 1e-10);
    const double r =
        scale_radius / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    const geom::Vec<D> pos = center + r * random_direction<D>(rng);

    // Velocity: rejection-sample q = v/v_esc from g(q) = q^2 (1-q^2)^{7/2}
    // (Aarseth-Henon-Wielen), then scale by local escape velocity.
    double q = 0.0, g = 0.1;
    do {
      q = u01(rng);
      g = 0.1 * u01(rng);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc =
        std::sqrt(2.0) * std::pow(r * r + scale_radius * scale_radius, -0.25);
    const geom::Vec<D> vel = (q * vesc) * random_direction<D>(rng);

    s.push_back(pos, vel, m, i);
  }
  return s;
}

template <std::size_t D>
ParticleSet<D> gaussian_blob(std::size_t n, Rng& rng, geom::Vec<D> center,
                             double sigma, double mass_per_particle) {
  ParticleSet<D> s;
  s.reserve(n);
  std::normal_distribution<double> gpos(0.0, sigma);
  std::normal_distribution<double> gvel(0.0, 0.05 * sigma);
  const double m = mass_per_particle > 0.0 ? mass_per_particle
                                           : 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec<D> p = center, v{};
    for (std::size_t d = 0; d < D; ++d) {
      p[d] += gpos(rng);
      v[d] = gvel(rng);
    }
    s.push_back(p, v, m, i);
  }
  return s;
}

template <std::size_t D>
ParticleSet<D> gaussian_mixture(std::size_t n, Rng& rng, unsigned k,
                                geom::Box<D> domain, double sigma) {
  ParticleSet<D> s;
  s.reserve(n);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<geom::Vec<D>> centers(k);
  for (auto& c : centers) {
    for (std::size_t d = 0; d < D; ++d)
      // Keep blob centers away from the walls so +-3 sigma stays inside.
      c[d] = domain.lo[d] + domain.edge * (0.1 + 0.8 * u01(rng));
  }
  const double m = 1.0 / static_cast<double>(n);
  std::normal_distribution<double> gpos(0.0, sigma);
  std::normal_distribution<double> gvel(0.0, 0.05 * sigma);
  std::uint64_t pid = 0;
  for (unsigned b = 0; b < k; ++b) {
    const std::size_t cnt = n / k + (b < n % k ? 1 : 0);
    for (std::size_t i = 0; i < cnt; ++i) {
      geom::Vec<D> p = centers[b], v{};
      for (std::size_t d = 0; d < D; ++d) {
        p[d] += gpos(rng);
        v[d] = gvel(rng);
      }
      s.push_back(p, v, m, pid++);
    }
  }
  return s;
}

template <std::size_t D>
ParticleSet<D> gaussian_core_halo(std::size_t n, Rng& rng,
                                  geom::Vec<D> center, double sigma,
                                  double core_fraction, double core_shrink) {
  const auto n_core = static_cast<std::size_t>(
      static_cast<double>(n) * core_fraction);
  auto halo = gaussian_blob<D>(n - n_core, rng, center, sigma,
                               1.0 / static_cast<double>(n));
  const auto core = gaussian_blob<D>(n_core, rng, center,
                                     sigma / core_shrink,
                                     1.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < core.size(); ++i) halo.append_from(core, i);
  // Re-number ids so they stay unique and dense.
  for (std::size_t i = 0; i < halo.size(); ++i) halo.id[i] = i;
  return halo;
}

template <std::size_t D>
ParticleSet<D> uniform_box(std::size_t n, Rng& rng, geom::Box<D> domain) {
  ParticleSet<D> s;
  s.reserve(n);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double m = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    geom::Vec<D> p;
    for (std::size_t d = 0; d < D; ++d)
      p[d] = domain.lo[d] + domain.edge * u01(rng);
    s.push_back(p, {}, m, i);
  }
  return s;
}

// Explicit instantiations for the supported dimensions.
template ParticleSet<2> plummer<2>(std::size_t, Rng&, double, geom::Vec<2>);
template ParticleSet<3> plummer<3>(std::size_t, Rng&, double, geom::Vec<3>);
template ParticleSet<2> gaussian_blob<2>(std::size_t, Rng&, geom::Vec<2>,
                                         double, double);
template ParticleSet<3> gaussian_blob<3>(std::size_t, Rng&, geom::Vec<3>,
                                         double, double);
template ParticleSet<2> gaussian_mixture<2>(std::size_t, Rng&, unsigned,
                                            geom::Box<2>, double);
template ParticleSet<3> gaussian_mixture<3>(std::size_t, Rng&, unsigned,
                                            geom::Box<3>, double);
template ParticleSet<2> uniform_box<2>(std::size_t, Rng&, geom::Box<2>);
template ParticleSet<3> uniform_box<3>(std::size_t, Rng&, geom::Box<3>);
template ParticleSet<2> gaussian_core_halo<2>(std::size_t, Rng&, geom::Vec<2>,
                                              double, double, double);
template ParticleSet<3> gaussian_core_halo<3>(std::size_t, Rng&, geom::Vec<3>,
                                              double, double, double);

const std::vector<InstanceSpec>& paper_instances() {
  static const std::vector<InstanceSpec> kInstances = {
      // Table 1/2/3 nCUBE2 instances (Gaussian, monopole experiments).
      {"g_28131", 28131, 0.67, 0xB4001},
      {"g_160535", 160535, 0.67, 0xB4002},
      {"g_326214", 326214, 1.00, 0xB4003},
      {"g_657499", 657499, 1.00, 0xB4004},
      {"g_1192768", 1192768, 1.00, 0xB4005},
      // Table 5/6/7 CM5 instances (multipole experiments).
      {"p_63192", 63192, 0.67, 0xB4006},
      {"p_353992", 353992, 0.67, 0xB4007},
      // Table 4 irregularity study, 25,130 particles each.
      {"s_1g_a", 25130, 0.67, 0xB4008},
      {"s_1g_b", 25130, 0.67, 0xB4009},
      {"s_10g_a", 25130, 0.67, 0xB400A},
      {"s_10g_b", 25130, 0.67, 0xB400B},
  };
  return kInstances;
}

ParticleSet<3> make_instance(const std::string& name, double scale,
                             std::uint64_t seed_override) {
  const InstanceSpec* spec = nullptr;
  for (const auto& s : paper_instances())
    if (s.name == name) spec = &s;
  if (!spec) throw std::out_of_range("unknown paper instance: " + name);

  const auto n = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(spec->particles) * scale));
  Rng rng(seed_override ? seed_override : spec->seed);

  // The 100x100x100 simulation domain used by the s_* irregularity study
  // (Section 5.1.1); the big g_* instances use the same domain.
  const geom::Box<3> domain{{{0.0, 0.0, 0.0}}, 100.0};

  // "The variance of the distribution is such that most particles lie within
  // a 2x2x2 (high irregularity, *_a) or 4x4x4 (lower irregularity, *_b)
  // subdomain": take 3 sigma = half the subdomain edge.
  const double sigma_a = 2.0 / 6.0;  // 2x2x2 support
  const double sigma_b = 4.0 / 6.0;  // 4x4x4 support

  if (name == "s_1g_a") return gaussian_mixture<3>(n, rng, 1, domain, sigma_a);
  if (name == "s_1g_b") return gaussian_mixture<3>(n, rng, 1, domain, sigma_b);
  if (name == "s_10g_a")
    return gaussian_mixture<3>(n, rng, 10, domain, sigma_a);
  if (name == "s_10g_b")
    return gaussian_mixture<3>(n, rng, 10, domain, sigma_b);

  if (name[0] == 'p') {
    // Plummer instances: centrally concentrated (the defining irregularity)
    // but with a scale radius large enough that the halo spans the domain,
    // as it must for the paper's 256-processor runs to have parallel slack.
    return plummer<3>(n, rng, 4.0, domain.center());
  }

  // Gaussian g_* instances: g_1192768 "contains two Gaussian distributions"
  // (Section 5.1); the others use one. Each cloud is centrally condensed
  // (core + halo): the halo spans the domain, so the problem parallelizes,
  // while the dense core supplies the load irregularity that separates the
  // SPSA and SPDA schemes in the paper's Tables 1-3.
  // Each Gaussian cloud carries off-center condensations of different
  // scales (a halo plus three sub-cores), the multi-scale clumpiness real
  // astrophysical fields show. The small condensations put orders-of-
  // magnitude load variation between nearby clusters, which is what
  // separates the randomized SPSA scatter from SPDA's measured packing in
  // the paper's Tables 1-3.
  auto cloud = [&](std::size_t cnt, geom::Vec<3> center) {
    auto halo = gaussian_blob<3>(cnt - cnt * 2 / 5, rng, center, 13.0,
                                 1.0 / static_cast<double>(n));
    const struct {
      geom::Vec<3> off;
      double sigma;
      std::size_t share;  // fifths of the core 2/5
    } cores[3] = {{{{6.0, -4.0, 3.0}}, 2.6, 2},
                  {{{-8.0, 5.0, -2.0}}, 3.8, 2},
                  {{{2.0, 9.0, -7.0}}, 6.0, 1}};
    std::size_t left = cnt * 2 / 5;
    for (const auto& c : cores) {
      const std::size_t take = std::min(left, cnt * 2 / 5 * c.share / 5);
      const auto blob = gaussian_blob<3>(take, rng, center + c.off, c.sigma,
                                         1.0 / static_cast<double>(n));
      for (std::size_t i = 0; i < blob.size(); ++i) halo.append_from(blob, i);
      left -= take;
    }
    if (left > 0) {
      const auto blob = gaussian_blob<3>(left, rng, center, 13.0,
                                         1.0 / static_cast<double>(n));
      for (std::size_t i = 0; i < blob.size(); ++i) halo.append_from(blob, i);
    }
    return halo;
  };
  model::ParticleSet<3> out;
  if (name == "g_1192768") {
    out = cloud(n / 2, {{35.0, 40.0, 55.0}});
    const auto b = cloud(n - n / 2, {{68.0, 60.0, 45.0}});
    for (std::size_t i = 0; i < b.size(); ++i) out.append_from(b, i);
  } else {
    out = cloud(n, {{47.0, 52.0, 49.0}});
  }
  for (std::size_t i = 0; i < out.size(); ++i) out.id[i] = i;
  return out;
}

}  // namespace bh::model
