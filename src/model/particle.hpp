// particle.hpp -- particle representation.
//
// The simulation state is a structure-of-arrays ParticleSet: positions,
// velocities, masses, plus accumulators for force/potential. SoA keeps the
// force loops vectorizable and lets the parallel formulations ship only the
// fields they need (function shipping sends just coordinates, Section 3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec.hpp"

namespace bh::model {

using geom::Vec;

/// Structure-of-arrays particle container.
template <std::size_t D>
struct ParticleSet {
  std::vector<Vec<D>> pos;
  std::vector<Vec<D>> vel;
  std::vector<double> mass;
  std::vector<Vec<D>> acc;        ///< force accumulator (per unit mass)
  std::vector<double> potential;  ///< potential accumulator
  std::vector<std::uint64_t> id;  ///< stable global identifier

  std::size_t size() const { return pos.size(); }
  bool empty() const { return pos.empty(); }

  void resize(std::size_t n) {
    pos.resize(n);
    vel.resize(n);
    mass.resize(n, 0.0);
    acc.resize(n);
    potential.resize(n, 0.0);
    id.resize(n);
  }

  void clear() {
    pos.clear();
    vel.clear();
    mass.clear();
    acc.clear();
    potential.clear();
    id.clear();
  }

  void reserve(std::size_t n) {
    pos.reserve(n);
    vel.reserve(n);
    mass.reserve(n);
    acc.reserve(n);
    potential.reserve(n);
    id.reserve(n);
  }

  void push_back(const Vec<D>& p, const Vec<D>& v, double m,
                 std::uint64_t pid) {
    pos.push_back(p);
    vel.push_back(v);
    mass.push_back(m);
    acc.push_back({});
    potential.push_back(0.0);
    id.push_back(pid);
  }

  /// Append particle i of another set (used when redistributing particles
  /// between processors after load balancing).
  void append_from(const ParticleSet& o, std::size_t i) {
    push_back(o.pos[i], o.vel[i], o.mass[i], o.id[i]);
  }

  void zero_accumulators() {
    for (auto& a : acc) a = {};
    for (auto& p : potential) p = 0.0;
  }

  double total_mass() const {
    double m = 0.0;
    for (double mi : mass) m += mi;
    return m;
  }

  geom::Box<D> bounding_cube() const {
    return geom::bounding_cube<D, double>({pos.data(), pos.size()});
  }
};

using ParticleSet2 = ParticleSet<2>;
using ParticleSet3 = ParticleSet<3>;

/// One particle's worth of plain data, used as a message payload.
template <std::size_t D>
struct ParticleRecord {
  Vec<D> pos;
  Vec<D> vel;
  double mass;
  std::uint64_t id;
};

template <std::size_t D>
ParticleRecord<D> record_of(const ParticleSet<D>& s, std::size_t i) {
  return {s.pos[i], s.vel[i], s.mass[i], s.id[i]};
}

template <std::size_t D>
void push_record(ParticleSet<D>& s, const ParticleRecord<D>& r) {
  s.push_back(r.pos, r.vel, r.mass, r.id);
}

}  // namespace bh::model
