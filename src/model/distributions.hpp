// distributions.hpp -- initial-condition generators for the paper's
// experimental instances (Section 5).
//
// The paper evaluates Gaussian and Plummer distributions "of varying
// irregularity": g_n (one or two Gaussians), p_n (Plummer spheres), and the
// four 25,130-particle irregularity studies s_1g_a/b and s_10g_a/b (1 or 10
// Gaussians, high or low variance, in a 100x100x100 domain).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "model/particle.hpp"

namespace bh::model {

/// Deterministic RNG used by all generators; every instance is reproducible
/// from its seed.
using Rng = std::mt19937_64;

/// Plummer sphere: the standard astrophysical test distribution
/// (Aarseth, Henon & Wielen 1974 sampling). Positions follow the Plummer
/// density profile rho(r) ~ (1 + r^2/a^2)^(-5/2); velocities are sampled
/// from the isotropic distribution function so the model starts in virial
/// equilibrium. Total mass is 1, scale radius `a`.
template <std::size_t D>
ParticleSet<D> plummer(std::size_t n, Rng& rng, double scale_radius = 1.0,
                       geom::Vec<D> center = {});

/// Single 3-D Gaussian blob: positions ~ N(center, sigma^2 I), cold start
/// (small random velocities). Matches the paper's s_1g_* instances where
/// "most particles lie within a 2x2x2 (or 4x4x4) subdomain": sigma is chosen
/// so +-3 sigma spans the quoted subdomain edge.
template <std::size_t D>
ParticleSet<D> gaussian_blob(std::size_t n, Rng& rng, geom::Vec<D> center,
                             double sigma, double mass_per_particle = -1.0);

/// Mixture of `k` Gaussian blobs centered uniformly at random inside
/// `domain`, each with the given sigma. The paper's s_10g_* instances use
/// k = 10 in a 100^3 domain; its large g_* instances contain one or two
/// Gaussians.
template <std::size_t D>
ParticleSet<D> gaussian_mixture(std::size_t n, Rng& rng, unsigned k,
                                geom::Box<D> domain, double sigma);

/// Uniform distribution in a box -- the "easy" regular case used as a
/// control in tests and ablations.
template <std::size_t D>
ParticleSet<D> uniform_box(std::size_t n, Rng& rng, geom::Box<D> domain);

/// Centrally condensed cloud: a wide Gaussian halo with `core_fraction` of
/// the particles drawn from a core shrunk by `core_shrink`. This is the
/// multi-scale irregularity astrophysical clouds actually show -- dense
/// enough in the middle that static scatter decompositions develop load
/// imbalance, which is the regime the paper's g_* experiments probe.
template <std::size_t D>
ParticleSet<D> gaussian_core_halo(std::size_t n, Rng& rng,
                                  geom::Vec<D> center, double sigma,
                                  double core_fraction = 0.35,
                                  double core_shrink = 6.0);

/// Named instances from the paper's evaluation section. `scale` in (0, 1]
/// shrinks the particle count proportionally (shape-preserving) so the
/// benches run quickly by default; scale = 1 reproduces the paper's counts.
struct InstanceSpec {
  std::string name;        ///< e.g. "g_326214", "p_353992", "s_10g_a"
  std::size_t particles;   ///< paper's particle count
  double alpha;            ///< alpha used for this instance in the paper
  std::uint64_t seed;
};

/// Catalogue of every instance named in Tables 1-7.
const std::vector<InstanceSpec>& paper_instances();

/// Build a named instance (scaled particle count). Throws std::out_of_range
/// for unknown names.
ParticleSet<3> make_instance(const std::string& name, double scale = 1.0,
                             std::uint64_t seed_override = 0);

}  // namespace bh::model
