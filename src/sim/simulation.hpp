// simulation.hpp -- multi-step N-body drivers.
//
// SerialSimulation: the reference single-node treecode (build tree, compute
// forces, leapfrog) used by the quickstart example and the accuracy studies.
//
// ParallelNbody: the full parallel time-stepping loop of Fig. 4 -- per step:
// distributed tree construction, function-shipping force phase, particle
// advance, particle migration, and periodic load re-balancing. Runs inside
// an SPMD body (one instance per rank).
#pragma once

#include <functional>

#include "mp/runtime.hpp"
#include "parallel/formulations.hpp"
#include "sim/integrator.hpp"
#include "tree/bhtree.hpp"

namespace bh::sim {

/// Single-node Barnes-Hut simulation.
template <std::size_t D>
class SerialSimulation {
 public:
  struct Options {
    double alpha = 0.67;
    unsigned degree = 0;
    unsigned leaf_capacity = 8;
    double softening = 1e-3;
    /// Fixed domain box; when unset (edge <= 0) the bounding cube of the
    /// current positions is recomputed every step.
    geom::Box<D> domain{};
    /// Force traversal: blocked pipeline (default) or walker oracle.
    tree::TraversalMode traversal = tree::TraversalMode::kBlocked;
  };

  SerialSimulation(model::ParticleSet<D> particles, Options opts);

  /// One leapfrog step of size dt (forces are recomputed mid-step).
  void step(double dt);

  /// Recompute accelerations/potentials for the current positions.
  model::WorkCounter compute_forces();

  const model::ParticleSet<D>& particles() const { return ps_; }
  model::ParticleSet<D>& particles() { return ps_; }
  Energies<D> energies() const { return measure_energies(ps_); }
  double time() const { return time_; }
  const tree::BhTree<D>& last_tree() const { return tree_; }

 private:
  geom::Box<D> box() const;

  model::ParticleSet<D> ps_;
  Options opts_;
  tree::BhTree<D> tree_;
  double time_ = 0.0;
};

/// One rank's share of a parallel multi-step simulation (Fig. 4 loop).
template <std::size_t D>
class ParallelNbody {
 public:
  struct Options {
    par::StepOptions step;       ///< scheme, alpha, degree, clusters, ...
    double dt = 1e-3;
    int rebalance_every = 1;     ///< re-balance period in steps (0 = never)
  };

  /// Collective: distributes `global` according to the scheme.
  ParallelNbody(mp::Communicator& comm, geom::Box<D> domain,
                const model::ParticleSet<D>& global, Options opts);

  /// Advance `steps` leapfrog steps. Collective.
  void evolve(int steps);

  /// Global conserved quantities (collective; same value on every rank).
  Energies<D> energies() const;

  /// Total particles across ranks (collective).
  std::size_t total_particles() const;

  par::ParallelSimulation<D>& formulation() { return sim_; }
  const model::ParticleSet<D>& local_particles() const {
    return sim_.particles();
  }
  double time() const { return time_; }
  const par::StepResult<D>& last_step() const { return last_; }

 private:
  mp::Communicator& comm_;
  par::ParallelSimulation<D> sim_;
  Options opts_;
  double time_ = 0.0;
  int steps_done_ = 0;
  par::StepResult<D> last_{};
};

}  // namespace bh::sim
