#include "sim/simulation.hpp"

namespace bh::sim {

template <std::size_t D>
SerialSimulation<D>::SerialSimulation(model::ParticleSet<D> particles,
                                      Options opts)
    : ps_(std::move(particles)), opts_(opts) {
  compute_forces();
}

template <std::size_t D>
geom::Box<D> SerialSimulation<D>::box() const {
  return opts_.domain.edge > 0.0 ? opts_.domain : ps_.bounding_cube();
}

template <std::size_t D>
model::WorkCounter SerialSimulation<D>::compute_forces() {
  ps_.zero_accumulators();
  tree_ = tree::build_tree(ps_, box(),
                           {.leaf_capacity = opts_.leaf_capacity,
                            .degree = opts_.degree});
  return tree::compute_fields(
      tree_, ps_,
      {.alpha = opts_.alpha,
       .softening = opts_.softening,
       .kind = tree::FieldKind::kBoth,
       .use_expansions = opts_.degree > 0,
       .mode = opts_.traversal});
}

template <std::size_t D>
void SerialSimulation<D>::step(double dt) {
  // Kick-drift-kick with accelerations already valid for the current
  // positions (constructor / previous step left them fresh).
  kick(ps_, dt / 2.0);
  drift(ps_, dt);
  compute_forces();
  kick(ps_, dt / 2.0);
  time_ += dt;
}

template <std::size_t D>
ParallelNbody<D>::ParallelNbody(mp::Communicator& comm, geom::Box<D> domain,
                                const model::ParticleSet<D>& global,
                                Options opts)
    : comm_(comm), sim_(comm, domain, opts.step), opts_(opts) {
  // Forces must be valid before the first kick.
  sim_.distribute(global);
  last_ = sim_.step();
}

template <std::size_t D>
void ParallelNbody<D>::evolve(int steps) {
  auto& ps = sim_.particles();
  for (int s = 0; s < steps; ++s) {
    kick(ps, opts_.dt / 2.0);
    drift(ps, opts_.dt);
    // Re-home drifted particles, then (periodically) re-balance using the
    // loads recorded by the previous force phase.
    sim_.migrate();
    if (opts_.rebalance_every > 0 &&
        (steps_done_ + 1) % opts_.rebalance_every == 0) {
      sim_.rebalance();
    }
    last_ = sim_.step();
    kick(sim_.particles(), opts_.dt / 2.0);
    time_ += opts_.dt;
    ++steps_done_;
  }
}

template <std::size_t D>
Energies<D> ParallelNbody<D>::energies() const {
  const auto local = measure_energies(sim_.particles());
  Energies<D> g;
  g.kinetic = comm_.all_reduce_sum(local.kinetic);
  g.potential = comm_.all_reduce_sum(local.potential);
  for (std::size_t a = 0; a < D; ++a)
    g.momentum[a] = comm_.all_reduce_sum(local.momentum[a]);
  return g;
}

template <std::size_t D>
std::size_t ParallelNbody<D>::total_particles() const {
  return static_cast<std::size_t>(comm_.all_reduce_sum(
      static_cast<long long>(sim_.particles().size())));
}

template class SerialSimulation<2>;
template class SerialSimulation<3>;
template class ParallelNbody<2>;
template class ParallelNbody<3>;

}  // namespace bh::sim
