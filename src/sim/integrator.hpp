// integrator.hpp -- leapfrog (kick-drift-kick) time integration and energy
// diagnostics.
//
// The paper's simulation "computes the positions and velocities at each
// subsequent time-step" (Section 5); KDK leapfrog is the standard
// symplectic integrator for collisionless N-body work and is what the
// examples and multi-step drivers use.
#pragma once

#include "geom/vec.hpp"
#include "model/particle.hpp"

namespace bh::sim {

using geom::Vec;
using model::ParticleSet;

/// v += a * dt for every particle (accelerations from the accumulators).
template <std::size_t D>
void kick(ParticleSet<D>& ps, double dt) {
  for (std::size_t i = 0; i < ps.size(); ++i) ps.vel[i] += dt * ps.acc[i];
}

/// x += v * dt for every particle.
template <std::size_t D>
void drift(ParticleSet<D>& ps, double dt) {
  for (std::size_t i = 0; i < ps.size(); ++i) ps.pos[i] += dt * ps.vel[i];
}

/// Conserved quantities of the current state. `potential` uses the
/// accumulated per-particle potentials (sum m_i phi_i / 2 -- each pair is
/// counted twice across the accumulators).
template <std::size_t D>
struct Energies {
  double kinetic = 0.0;
  double potential = 0.0;
  Vec<D> momentum{};

  double total() const { return kinetic + potential; }
};

template <std::size_t D>
Energies<D> measure_energies(const ParticleSet<D>& ps) {
  Energies<D> e;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    e.kinetic += 0.5 * ps.mass[i] * geom::norm2(ps.vel[i]);
    e.potential += 0.5 * ps.mass[i] * ps.potential[i];
    e.momentum += ps.mass[i] * ps.vel[i];
  }
  return e;
}

}  // namespace bh::sim
