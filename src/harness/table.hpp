// table.hpp -- plain-text table formatting for the bench harness.
//
// Every bench binary regenerates one of the paper's tables; this formatter
// prints aligned rows comparable side-by-side with the published ones, plus
// a CSV emitter for figure series (Fig. 9).
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace bh::harness {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < w.size(); ++i)
        w[i] = std::max(w[i], cells[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        os << std::left << std::setw(static_cast<int>(w[i]) + 2)
           << (i < cells.size() ? cells[i] : "");
      }
      os << '\n';
    };
    line(header_);
    std::string rule;
    for (std::size_t i = 0; i < w.size(); ++i)
      rule += std::string(w[i] + 2, '-');
    os << rule << '\n';
    for (const auto& r : rows_) line(r);
  }

  /// Write the same data as CSV (for plotting figure series).
  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i)
        f << (i ? "," : "") << cells[i];
      f << '\n';
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bh::harness
