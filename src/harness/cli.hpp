// cli.hpp -- tiny flag parser shared by bench and example binaries.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms. Every
// binary declares its flags up front; an undeclared flag is an error (exit
// code 2 with the flag table on stderr) instead of being silently ignored,
// so a typo like --procss can no longer quietly run the default
// configuration. `--help` prints describe() and exits 0.
//
// Four flags are built in for every binary: --help, and the shared
// observability outputs --trace=PATH (Chrome-trace JSON of the run),
// --metrics=PATH (structured metrics JSON) and --profile[=PATH] (wall-clock
// profile, bh.prof.v1 + folded stacks; PATH defaults to prof.json); see
// obs/capture.hpp for the glue that consumes them.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace bh::harness {

/// Declaration of one accepted flag. `arg` is the placeholder shown in
/// --help ("" for boolean flags); defaults live at the get() call sites.
struct Flag {
  std::string name;
  std::string arg;
  std::string help;
};

class Cli {
 public:
  /// Parse argv against the declared flags (plus the built-ins --help,
  /// --trace, --metrics). Prints help and exits 0 on --help; prints the
  /// offending name and the flag table and exits 2 on an undeclared flag.
  Cli(int argc, char** argv, std::string about, std::vector<Flag> flags)
      : about_(std::move(about)), flags_(std::move(flags)) {
    flags_.push_back({"trace", "PATH", "write a Chrome-trace JSON of the run"});
    flags_.push_back({"metrics", "PATH", "write structured metrics JSON"});
    flags_.push_back({"profile", "[PATH]",
                      "wall-clock profile: bh.prof.v1 JSON + PATH.folded "
                      "stacks [prof.json]"});
    flags_.push_back({"help", "", "print this message and exit"});
    const std::string prog =
        argc > 0 ? std::string(argv[0]) : std::string("prog");
    parse(argc, argv);
    if (has("help")) {
      std::fputs(describe(prog).c_str(), stdout);
      std::exit(0);
    }
    for (const auto& [key, value] : kv_) {
      if (known(key)) continue;
      std::fprintf(stderr, "%s: unknown flag --%s\n\n%s", prog.c_str(),
                   key.c_str(), describe(prog).c_str());
      std::exit(2);
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  double get(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::stod(it->second);
  }
  long get(const std::string& key, long def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::stol(it->second);
  }
  int get(const std::string& key, int def) const {
    return static_cast<int>(get(key, static_cast<long>(def)));
  }
  bool get(const std::string& key, bool def) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// The flag table shown by --help and on an unknown-flag error.
  std::string describe(const std::string& prog) const {
    std::string out = "usage: " + prog + " [--flag[=value] ...]\n";
    if (!about_.empty()) out += "\n" + about_ + "\n";
    out += "\nflags:\n";
    std::size_t width = 0;
    auto label = [](const Flag& f) {
      return "--" + f.name + (f.arg.empty() ? "" : " " + f.arg);
    };
    for (const auto& f : flags_) width = std::max(width, label(f).size());
    for (const auto& f : flags_) {
      std::string l = label(f);
      out += "  " + l + std::string(width - l.size() + 2, ' ') + f.help +
             "\n";
    }
    return out;
  }

 private:
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(std::move(a));
        continue;
      }
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        kv_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[a] = argv[++i];
      } else {
        kv_[a] = "1";  // boolean flag
      }
    }
  }

  bool known(const std::string& key) const {
    for (const auto& f : flags_)
      if (f.name == key) return true;
    return false;
  }

  std::string about_;
  std::vector<Flag> flags_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace bh::harness
