// cli.hpp -- tiny flag parser shared by bench and example binaries.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms; every
// binary documents its flags via describe().
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bh::harness {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positional_.push_back(std::move(a));
        continue;
      }
      a = a.substr(2);
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        kv_[a.substr(0, eq)] = a.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[a] = argv[++i];
      } else {
        kv_[a] = "1";  // boolean flag
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  double get(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::stod(it->second);
  }
  long get(const std::string& key, long def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::stol(it->second);
  }
  int get(const std::string& key, int def) const {
    return static_cast<int>(get(key, static_cast<long>(def)));
  }
  bool get(const std::string& key, bool def) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace bh::harness
