// validate.hpp -- runtime SPMD protocol validator for bh::mp.
//
// MPI (and this runtime) leave whole classes of SPMD protocol errors
// undefined: ranks invoking collectives in different orders or with
// mismatched types, programs deadlocking in recv with nothing in flight,
// messages delivered but never consumed, phase timers opened and never
// closed. Each of those is silent until a large run hangs or produces wrong
// forces. The validator is a debug layer -- enabled per run via
// RunOptions{.validate = true} on run_spmd -- that turns every such
// violation into a structured ProtocolError naming the offending rank(s)
// and call site instead of a hang or corruption.
//
// What it checks:
//  * Collective consistency: at every rendezvous, all ranks must present
//    the same collective kind, the same element size, and (for fixed-size
//    collectives) the same byte count, at the same per-rank call index.
//    Divergent ranks are reported against the rank-0 baseline.
//  * Deadlock: a watchdog thread observes per-rank blocking state and a
//    global progress counter; when every live rank has been blocked
//    (recv or collective) with no progress for watchdog_seconds, the run
//    is aborted with a per-rank state dump (blocked src/tag, vtime, last
//    phase, queued mail) instead of hanging the test suite.
//  * Rank exit hygiene: a rank returning with unconsumed messages in its
//    mailbox, or with phase_begin() calls never closed by phase_end(),
//    fails with a diagnostic naming the leaked (src, tag) pairs / phases.
//  * Tag registry: every point-to-point send is cross-checked against the
//    central protocol registry (mp/protocol.hpp) -- the same declaration
//    the static checker (tools/bh_protocheck) verifies at compile sites.
//    A tag that is neither a registered protocol tag nor inside the scratch
//    range is rejected before the message is enqueued.
//
// The validator is shared by all rank threads of one run; every hook is
// thread-safe. Hooks may be invoked while the caller holds a mailbox or
// rendezvous-board lock, so the validator never calls back into the
// runtime while holding its own mutex.
//
// Both mailbox pop paths -- try_recv (physical arrival order) and
// try_recv_ordered (deterministic rank-then-tag order, used by the
// parallel/ship engines) -- report through the same on_consume hook, so
// message-leak accounting is identical regardless of which drain order an
// engine uses.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace bh::mp {

/// An SPMD protocol violation: wrong collective order, deadlock, message
/// leak, unbalanced phases, or an out-of-range argument. The what() string
/// names the offending rank(s).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

class Validator {
 public:
  /// What a rank claims to be doing at a collective rendezvous.
  struct CollCall {
    const char* kind = "";      ///< "barrier", "all_gather", ...
    std::size_t elem_size = 0;  ///< sizeof(T) of the typed payload
    std::size_t bytes = 0;      ///< this rank's contribution, in bytes
  };

  /// `on_deadlock` is invoked (from the watchdog thread, with no validator
  /// lock held) with the full diagnostic when a deadlock is declared; it
  /// must abort the run so blocked ranks wake and rethrow.
  Validator(int nprocs, double watchdog_seconds,
            std::function<void(const std::string&)> on_deadlock);
  ~Validator();

  void start_watchdog();
  void stop_watchdog();

  // -- point-to-point hooks ---------------------------------------------
  /// Registry cross-check for one send, called *before* the message is
  /// enqueued: returns "" when `tag` is declared in mp/protocol.hpp (or
  /// lies in the scratch range), else the full diagnostic. Pure; takes no
  /// lock.
  static std::string check_send(int rank, int dst, int tag);
  void on_send(int dst);
  void on_consume(int rank);
  void on_recv_block(int rank, int src, int tag, double vtime);
  void on_recv_unblock(int rank);

  // -- collective hooks ---------------------------------------------------
  void on_collective_enter(int rank, const CollCall& call, double vtime);
  /// Called by the last rank to arrive at a rendezvous: returns "" when all
  /// ranks presented consistent calls, else the full mismatch diagnostic.
  std::string check_round();
  void on_collective_exit(int rank);

  // -- phase hooks --------------------------------------------------------
  void on_phase(int rank, const std::string& name);

  // -- exit hooks ---------------------------------------------------------
  void on_rank_finish(int rank);
  /// Throws ProtocolError when a rank exits with unconsumed mail
  /// (`leftover` holds the queued (src, tag) pairs) or open phases.
  void check_rank_exit(int rank,
                       const std::vector<std::pair<int, int>>& leftover,
                       const std::vector<std::string>& open_phases);

  /// Per-rank state table (used in deadlock dumps).
  std::string dump();

 private:
  enum class State : std::uint8_t { kRunning, kRecv, kCollective, kFinished };
  struct Rank {
    State state = State::kRunning;
    int want_src = 0;           ///< recv selector while blocked
    int want_tag = 0;
    double vtime = 0.0;         ///< virtual clock at the last block point
    std::string last_phase;     ///< most recent phase_begin name
    long long coll_index = 0;   ///< collectives entered so far
    CollCall coll;              ///< current/most recent collective call
    std::size_t mailbox = 0;    ///< queued-message estimate
  };

  void watchdog_main();
  std::string dump_locked() const;
  static std::string describe(const Rank& r);

  const int p_;
  const double watchdog_seconds_;
  const std::function<void(const std::string&)> on_deadlock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Rank> ranks_;
  std::uint64_t progress_ = 0;
  bool stop_ = false;
  std::thread watchdog_;
};

}  // namespace detail
}  // namespace bh::mp
