// validate.cpp -- SPMD protocol validator internals.
//
// All per-rank state lives behind one mutex; hooks are cheap (a few field
// writes) and only taken when RunOptions::validate is set, so the fast path
// of the runtime is untouched. The watchdog polls a progress counter that
// every send, consume, collective release and rank exit bumps: a deadlock
// is declared only after every live rank has been observed blocked across a
// full watchdog window with the counter frozen, which cannot happen in a
// live program (any wake-up path bumps the counter first).
#include "mp/validate.hpp"

#include <chrono>
#include <sstream>

#include "mp/protocol.hpp"

namespace bh::mp::detail {

namespace {

std::string coll_str(const Validator::CollCall& c) {
  std::ostringstream os;
  os << c.kind << "(elem=" << c.elem_size << ", bytes=" << c.bytes << ")";
  return os.str();
}

std::string sel_str(int v) {
  return v < 0 ? std::string("any") : std::to_string(v);
}

}  // namespace

Validator::Validator(int nprocs, double watchdog_seconds,
                     std::function<void(const std::string&)> on_deadlock)
    : p_(nprocs),
      watchdog_seconds_(watchdog_seconds),
      on_deadlock_(std::move(on_deadlock)),
      ranks_(static_cast<std::size_t>(nprocs)) {}

Validator::~Validator() { stop_watchdog(); }

void Validator::start_watchdog() {
  if (watchdog_seconds_ <= 0.0 || watchdog_.joinable()) return;
  watchdog_ = std::thread([this] { watchdog_main(); });
}

void Validator::stop_watchdog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::string Validator::check_send(int rank, int dst, int tag) {
  if (proto::is_declared_tag(tag)) return {};
  std::ostringstream os;
  os << "bh::mp validator: rank " << rank << " sent tag " << tag
     << " to rank " << dst
     << ": tag not declared in mp/protocol.hpp (register a TagSpec, or use "
        "a scratch tag in ["
     << proto::kScratchTagFirst << ", " << proto::kScratchTagLast
     << "] for tests)";
  return os.str();
}

void Validator::on_send(int dst) {
  std::lock_guard<std::mutex> lk(mu_);
  ++ranks_[static_cast<std::size_t>(dst)].mailbox;
  ++progress_;
}

void Validator::on_consume(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  if (r.mailbox > 0) --r.mailbox;
  ++progress_;
}

void Validator::on_recv_block(int rank, int src, int tag, double vtime) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  r.state = State::kRecv;
  r.want_src = src;
  r.want_tag = tag;
  r.vtime = vtime;
}

void Validator::on_recv_unblock(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].state = State::kRunning;
}

void Validator::on_collective_enter(int rank, const CollCall& call,
                                    double vtime) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& r = ranks_[static_cast<std::size_t>(rank)];
  r.state = State::kCollective;
  r.coll = call;
  r.vtime = vtime;
  ++r.coll_index;
}

std::string Validator::check_round() {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& base = ranks_[0];
  std::vector<int> divergent;
  for (int i = 1; i < p_; ++i) {
    const auto& r = ranks_[static_cast<std::size_t>(i)];
    const bool fixed_size = std::string_view(base.coll.kind) != "all_gatherv" &&
                            std::string_view(base.coll.kind) != "all_to_all";
    if (r.coll_index != base.coll_index ||
        std::string_view(r.coll.kind) != base.coll.kind ||
        r.coll.elem_size != base.coll.elem_size ||
        (fixed_size && r.coll.bytes != base.coll.bytes))
      divergent.push_back(i);
  }
  if (divergent.empty()) return {};
  std::ostringstream os;
  os << "bh::mp validator: collective mismatch at rendezvous:\n";
  for (int i = 0; i < p_; ++i) {
    const auto& r = ranks_[static_cast<std::size_t>(i)];
    os << "  rank " << i << ": call #" << r.coll_index << " "
       << coll_str(r.coll);
    for (int d : divergent)
      if (d == i) os << "  <-- diverges from rank 0";
    os << "\n";
  }
  os << "divergent rank(s):";
  for (int d : divergent) os << " " << d;
  return os.str();
}

void Validator::on_collective_exit(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].state = State::kRunning;
  ++progress_;
}

void Validator::on_phase(int rank, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].last_phase = name;
  ++progress_;
}

void Validator::on_rank_finish(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].state = State::kFinished;
  ++progress_;
}

void Validator::check_rank_exit(
    int rank, const std::vector<std::pair<int, int>>& leftover,
    const std::vector<std::string>& open_phases) {
  if (leftover.empty() && open_phases.empty()) return;
  std::ostringstream os;
  os << "bh::mp validator: rank " << rank << " exited dirty:";
  if (!leftover.empty()) {
    os << " " << leftover.size() << " unconsumed message(s) in mailbox [";
    for (std::size_t i = 0; i < leftover.size(); ++i) {
      if (i) os << ", ";
      if (i == 8) {
        os << "...";
        break;
      }
      os << "(src=" << leftover[i].first << ", tag=" << leftover[i].second
         << ")";
    }
    os << "]";
  }
  if (!open_phases.empty()) {
    os << " dangling phase_begin without phase_end: [";
    for (std::size_t i = 0; i < open_phases.size(); ++i)
      os << (i ? ", " : "") << open_phases[i];
    os << "]";
  }
  throw ProtocolError(os.str());
}

std::string Validator::describe(const Rank& r) {
  std::ostringstream os;
  switch (r.state) {
    case State::kRunning:
      os << "running";
      break;
    case State::kRecv:
      os << "blocked in recv(src=" << sel_str(r.want_src)
         << ", tag=" << sel_str(r.want_tag) << ")";
      break;
    case State::kCollective:
      os << "blocked in collective #" << r.coll_index << " "
         << coll_str(r.coll);
      break;
    case State::kFinished:
      os << "finished";
      break;
  }
  os << ", vtime=" << r.vtime << ", mailbox=" << r.mailbox << ", last_phase="
     << (r.last_phase.empty() ? "-" : r.last_phase);
  return os.str();
}

std::string Validator::dump_locked() const {
  std::ostringstream os;
  for (int i = 0; i < p_; ++i)
    os << "  rank " << i << ": "
       << describe(ranks_[static_cast<std::size_t>(i)]) << "\n";
  return os.str();
}

std::string Validator::dump() {
  std::lock_guard<std::mutex> lk(mu_);
  return dump_locked();
}

void Validator::watchdog_main() {
  using clock = std::chrono::steady_clock;
  const auto poll = std::chrono::milliseconds(50);
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t last_progress = progress_;
  auto stall_start = clock::now();
  while (!stop_) {
    cv_.wait_for(lk, poll);
    if (stop_) return;
    const auto now = clock::now();
    if (progress_ != last_progress) {
      last_progress = progress_;
      stall_start = now;
      continue;
    }
    bool any_live = false;
    bool all_blocked = true;
    for (const auto& r : ranks_) {
      if (r.state == State::kFinished) continue;
      any_live = true;
      if (r.state == State::kRunning) all_blocked = false;
    }
    if (!any_live || !all_blocked) {
      stall_start = now;
      continue;
    }
    if (std::chrono::duration<double>(now - stall_start).count() <
        watchdog_seconds_)
      continue;
    std::string msg =
        "bh::mp validator: deadlock detected -- every live rank blocked "
        "with no progress for " +
        std::to_string(watchdog_seconds_) + "s; per-rank state:\n" +
        dump_locked();
    lk.unlock();
    on_deadlock_(msg);
    return;
  }
}

}  // namespace bh::mp::detail
