// runtime.hpp -- an SPMD message-passing runtime with virtual time.
//
// Ranks run as threads inside one process; the API is deliberately MPI-like
// (point-to-point send/recv with tags, plus the collectives the paper's
// formulations use: barrier, all-to-all broadcast, all-to-all personalized
// communication, all-reduce). Every rank carries a *virtual clock*: compute
// advances it through advance_flops(), and every communication operation
// advances it according to the MachineModel's (t_s, t_w) cost formulas. The
// maximum clock over ranks at the end of a run is the modeled parallel
// runtime on the target machine (nCUBE2 / CM5 / modern cluster).
//
// Usage requirements (as in MPI):
//  * all ranks must invoke collectives in the same order;
//  * message payloads must be trivially copyable types.
#pragma once

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "mp/machine.hpp"

namespace bh::obs {
class Tracer;       // obs/trace.hpp -- per-rank event recorder
class RankTracer;
}  // namespace bh::obs

namespace bh::mp {

/// Wildcard selectors for recv/probe.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// An in-flight message.
struct Message {
  int src = 0;
  int tag = 0;
  double sent_vtime = 0.0;
  std::vector<std::byte> payload;
};

/// Per-rank statistics collected during a run.
struct RankStats {
  double vtime = 0.0;                       ///< final virtual clock
  std::uint64_t flops = 0;                  ///< counted floating point ops
  std::uint64_t bytes_sent = 0;             ///< point-to-point payload bytes
  std::uint64_t messages_sent = 0;          ///< point-to-point messages
  std::uint64_t collective_bytes = 0;       ///< bytes contributed to colls
  /// Virtual seconds this rank spent blocked in collectives waiting for the
  /// last rank to arrive -- pure idle time, the modeled machine doing
  /// nothing. The paper's per-phase efficiency losses are mostly this.
  double coll_wait = 0.0;
  /// Virtual seconds of modeled collective transfer after the last arrival
  /// (the (t_s, t_w) cost of the operation itself; identical on all ranks).
  double coll_cost = 0.0;
  /// Virtual seconds blocking receives advanced this rank's clock to a
  /// message's arrival time -- idle spent waiting for point-to-point data.
  double recv_wait = 0.0;
  /// Heap allocations performed on this rank's thread during the run
  /// (obs/memstat.hpp) -- the machine-independent allocator-pressure axis
  /// of the bench registry.
  std::uint64_t allocs = 0;
  std::map<std::string, double> phase_vtime;  ///< virtual seconds per phase
  /// Named engine-level event counters (e.g. the data-shipping node cache's
  /// "dataship.fetch_requests"). Engines publish here at phase end; the
  /// metrics writer emits them per rank under "counters" in bh.metrics.v1.
  std::map<std::string, std::uint64_t> counters;
  /// Payload bytes addressed from this rank to each destination rank
  /// (size = communicator size): point-to-point sends per destination,
  /// all-to-all personalized per destination, and broadcast-style
  /// collectives (gather / reduce) counted once per peer. Row r of
  /// RunReport::comm_matrix().
  std::vector<std::uint64_t> bytes_to;
};

/// Load-balance statistics over ranks (the paper's efficiency methodology:
/// the slowest rank sets the parallel time, so max/mean is the direct
/// efficiency loss attributable to imbalance).
struct Imbalance {
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  /// >= 1.0; exactly 1.0 when perfectly balanced (or when there is no
  /// work at all).
  double max_over_mean() const { return mean > 0.0 ? max / mean : 1.0; }

  /// Compute over an arbitrary per-rank sample.
  static Imbalance over(const std::vector<double>& v) {
    Imbalance im;
    if (v.empty()) return im;
    double sum = 0.0;
    for (double x : v) {
      im.max = std::max(im.max, x);
      sum += x;
    }
    im.mean = sum / static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - im.mean) * (x - im.mean);
    im.stddev = std::sqrt(var / static_cast<double>(v.size()));
    return im;
  }
};

/// Aggregated result of one SPMD run.
struct RunReport {
  std::vector<RankStats> ranks;

  /// Modeled parallel runtime: the slowest rank's clock.
  double parallel_time() const {
    double t = 0.0;
    for (const auto& r : ranks) t = std::max(t, r.vtime);
    return t;
  }
  std::uint64_t total_flops() const {
    std::uint64_t f = 0;
    for (const auto& r : ranks) f += r.flops;
    return f;
  }
  std::uint64_t total_ptp_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.bytes_sent;
    return b;
  }
  std::uint64_t total_collective_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.collective_bytes;
    return b;
  }
  /// Max over ranks of the virtual time spent in `phase`.
  double phase_time(const std::string& phase) const {
    double t = 0.0;
    for (const auto& r : ranks) {
      auto it = r.phase_vtime.find(phase);
      if (it != r.phase_vtime.end()) t = std::max(t, it->second);
    }
    return t;
  }
  /// Per-rank idle time (collective wait + point-to-point recv wait) as an
  /// Imbalance: `mean` is the average virtual time a rank spent waiting on
  /// peers, `max` the worst rank's.
  Imbalance idle() const {
    std::vector<double> v;
    v.reserve(ranks.size());
    for (const auto& r : ranks) v.push_back(r.coll_wait + r.recv_wait);
    return Imbalance::over(v);
  }
  /// Load balance of the whole run, over per-rank final virtual clocks.
  Imbalance imbalance() const {
    std::vector<double> v;
    v.reserve(ranks.size());
    for (const auto& r : ranks) v.push_back(r.vtime);
    return Imbalance::over(v);
  }
  /// Load balance of one phase, over per-rank virtual time spent in it
  /// (ranks that never entered the phase contribute 0).
  Imbalance phase_imbalance(const std::string& phase) const {
    std::vector<double> v;
    v.reserve(ranks.size());
    for (const auto& r : ranks) {
      auto it = r.phase_vtime.find(phase);
      v.push_back(it == r.phase_vtime.end() ? 0.0 : it->second);
    }
    return Imbalance::over(v);
  }
  /// Every phase name that appears on any rank, sorted.
  std::vector<std::string> phase_names() const {
    std::map<std::string, int> seen;
    for (const auto& r : ranks)
      for (const auto& [name, t] : r.phase_vtime) seen[name] = 1;
    std::vector<std::string> out;
    out.reserve(seen.size());
    for (const auto& [name, one] : seen) out.push_back(name);
    return out;
  }
  /// p x p communication matrix: [src][dst] payload bytes (see
  /// RankStats::bytes_to for what is counted).
  std::vector<std::vector<std::uint64_t>> comm_matrix() const {
    const std::size_t p = ranks.size();
    std::vector<std::vector<std::uint64_t>> m(
        p, std::vector<std::uint64_t>(p, 0));
    for (std::size_t r = 0; r < p; ++r)
      for (std::size_t d = 0; d < ranks[r].bytes_to.size() && d < p; ++d)
        m[r][d] = ranks[r].bytes_to[d];
    return m;
  }
};

namespace detail {
struct Shared;  // runtime-internal shared state
}

/// Options for run_spmd.
struct RunOptions {
  /// Enable the SPMD protocol validator (mp/validate.hpp): cross-rank
  /// collective order/kind/element-size checks at every rendezvous, a
  /// deadlock watchdog that dumps per-rank state instead of hanging,
  /// message-leak / phase-balance checks at rank exit, and a tag-registry
  /// check rejecting any send whose tag is not declared in mp/protocol.hpp
  /// (scratch range excepted). Violations surface as ProtocolError from
  /// run_spmd.
  bool validate = false;
  /// Wall-clock seconds of global inactivity -- every live rank blocked,
  /// no message or collective progress -- before the watchdog declares
  /// deadlock and aborts the run. Only meaningful with validate = true.
  double watchdog_seconds = 2.0;
  /// Opt-in event tracing (obs/trace.hpp): every send/recv, collective
  /// enter/exit, phase boundary and flop batch is recorded into the given
  /// Tracer's per-rank buffers. The Tracer must outlive run_spmd; reusing
  /// it across runs concatenates their timelines. Null = no tracing and
  /// zero overhead (the hot paths test one pointer).
  obs::Tracer* trace = nullptr;
};

/// Number of control-network style shared counters available to a program
/// (the CM5 exposed exactly this kind of global-combine hardware).
inline constexpr int kSharedCounters = 16;

/// Handle a rank uses to communicate. Not copyable; one per rank thread.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }
  const MachineModel& machine() const;

  // -- virtual clock --------------------------------------------------------
  double vtime() const { return vtime_; }
  void advance_flops(std::uint64_t n);
  void advance_seconds(double s) { vtime_ += s; }

  /// Count flops (stats + trace) *without* advancing the clock; returns
  /// their modeled seconds. Deterministic request/serve engines accrue
  /// service work through this and fold the total into the clock at a
  /// fixed control-flow point (see parallel/ship/progress.hpp), so the
  /// clock never depends on where thread scheduling placed the service.
  double accrue_flops(std::uint64_t n);

  /// Modeled software send overhead of one message on this machine
  /// (the t_s every send_bytes charges; zero on the ideal topology).
  double send_overhead() const;

  /// Attribute virtual time to a named phase between begin/end.
  void phase_begin(const std::string& name);
  void phase_end(const std::string& name);

  // -- point-to-point -------------------------------------------------------
  /// Send a message. `not_before` (virtual seconds) lower-bounds the send
  /// timestamp: a server stamping a reply with "request arrival + service
  /// time" models interleaved service without dragging its own clock.
  void send_bytes(int dst, int tag, std::span<const std::byte> bytes,
                  double not_before = 0.0);

  /// Send with an exact timestamp, bypassing this rank's clock. Used by
  /// request/reply servers: a reply leaves at the *service frontier*
  /// max(previous frontier, request arrival) + service time, which models
  /// prompt interleaved servicing regardless of where the server's main
  /// loop happens to stand. The service work still lands on the server's
  /// own clock (advance_flops, or accrue_flops + a later fold), so its
  /// completion time reflects the work.
  ///
  /// With charge_overhead = false the sender's clock is left untouched:
  /// the t_s was (or will be) charged elsewhere at a deterministic point
  /// -- at bin-seal time for deferred bins, or accrued as service cost for
  /// replies -- so the send itself must not leak the thread-scheduling-
  /// dependent moment it physically happens into virtual time.
  void send_bytes_stamped(int dst, int tag, std::span<const std::byte> bytes,
                          double stamp, bool charge_overhead = true);
  template <typename T>
  void send_stamped(int dst, int tag, std::span<const T> items,
                    double stamp, bool charge_overhead = true) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes_stamped(dst, tag,
                       {reinterpret_cast<const std::byte*>(items.data()),
                        items.size() * sizeof(T)},
                       stamp, charge_overhead);
  }
  /// Blocking receive matching (src, tag); wildcards allowed. Advances the
  /// virtual clock to the message's arrival time (you waited for it).
  Message recv_any(int src = kAnySource, int tag = kAnyTag);
  /// Non-blocking receive; std::nullopt when no matching message is queued.
  /// With advance_clock = false the clock is left alone -- use
  /// arrival_time() and advance_to() when the data is consumed with
  /// computation/communication overlap (asynchronous bins, Section 3.2);
  /// the consumer then folds the arrival into its clock at the point where
  /// it actually must have the data.
  std::optional<Message> try_recv(int src = kAnySource, int tag = kAnyTag,
                                  bool advance_clock = true);

  /// Deterministic ordered poll: like try_recv, but instead of popping the
  /// earliest *physical* arrival it pops the queued match with the lowest
  /// (source rank, tag) pair, FIFO within a pair. Engines that must be
  /// bit-reproducible drain their mailboxes through this so the service
  /// order never depends on thread scheduling (ship::Progress). The
  /// validator sees the same on_consume hook as try_recv, and the tracer
  /// records the same recv event.
  std::optional<Message> try_recv_ordered(int src = kAnySource,
                                          int tag = kAnyTag,
                                          bool advance_clock = true);

  /// Virtual time at which `m` became available at this rank.
  double arrival_time(const Message& m) const;

  /// Advance the clock to at least `t` (no-op when already past it).
  void advance_to(double t) { vtime_ = std::max(vtime_, t); }

  /// Structured protocol abort for engine-detected violations (e.g. an
  /// uncached remote node in the data-shipping engine). Records `msg` as
  /// the run's abort reason -- with the validator's per-rank state dump
  /// appended when supervision is on -- wakes every rank blocked in a recv
  /// or collective so the whole run terminates with the diagnostic instead
  /// of one thread crashing while its peers deadlock, and throws
  /// ProtocolError on this thread.
  [[noreturn]] void protocol_abort(const std::string& msg);

  template <typename T>
  void send(int dst, int tag, std::span<const T> items,
            double not_before = 0.0) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               {reinterpret_cast<const std::byte*>(items.data()),
                items.size() * sizeof(T)},
               not_before);
  }
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send<T>(dst, tag, std::span<const T>(&v, 1));
  }

  template <typename T>
  static std::vector<T> unpack(const Message& m) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(m.payload.size() / sizeof(T));
    std::memcpy(out.data(), m.payload.data(), out.size() * sizeof(T));
    return out;
  }

  // -- collectives ----------------------------------------------------------
  void barrier();

  /// All-to-all broadcast (allgather) of one value per rank.
  template <typename T>
  std::vector<T> all_gather(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto blobs = collective(CollKind::kGather, sizeof(T), as_blob(&v, 1));
    std::vector<T> out(size_);
    for (int r = 0; r < size_; ++r)
      std::memcpy(&out[r], blobs[r].data(), sizeof(T));
    return out;
  }

  /// All-to-all broadcast of a variable-length contribution per rank;
  /// returns per-rank vectors (the paper's branch-node exchange).
  template <typename T>
  std::vector<std::vector<T>> all_gatherv(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto blobs = collective(CollKind::kGatherV, sizeof(T),
                            as_blob(items.data(), items.size()));
    std::vector<std::vector<T>> out(size_);
    for (int r = 0; r < size_; ++r) out[r] = from_blob<T>(blobs[r]);
    return out;
  }

  /// All-to-all personalized communication: element [d] of `outbox` goes to
  /// rank d; returns inbox where element [s] came from rank s
  /// (the paper's particle-redistribution primitive, Section 3.3.3).
  template <typename T>
  std::vector<std::vector<T>> all_to_all(
      const std::vector<std::vector<T>>& outbox) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> out(size_);
    for (int d = 0; d < size_; ++d)
      out[d] = as_blob(outbox[d].data(), outbox[d].size());
    auto blobs = personalized(sizeof(T), std::move(out));
    std::vector<std::vector<T>> in(size_);
    for (int s = 0; s < size_; ++s) in[s] = from_blob<T>(blobs[s]);
    return in;
  }

  /// All-reduce with an arbitrary associative op (applied in rank order, so
  /// results are deterministic).
  template <typename T, typename Op>
  T all_reduce(const T& v, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto blobs = collective(CollKind::kReduce, sizeof(T), as_blob(&v, 1));
    T acc;
    std::memcpy(&acc, blobs[0].data(), sizeof(T));
    for (int r = 1; r < size_; ++r) {
      T x;
      std::memcpy(&x, blobs[r].data(), sizeof(T));
      acc = op(acc, x);
    }
    return acc;
  }
  template <typename T>
  T all_reduce_sum(const T& v) {
    return all_reduce(v, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T all_reduce_max(const T& v) {
    return all_reduce(v, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T all_reduce_min(const T& v) {
    return all_reduce(v, [](T a, T b) { return a < b ? a : b; });
  }

  /// Exclusive prefix sum over ranks (used to place costzones boundaries).
  template <typename T>
  T exclusive_scan_sum(const T& v) {
    auto all = all_gather(v);
    T acc{};
    for (int r = 0; r < rank_; ++r) acc = acc + all[r];
    return acc;
  }

  // -- control network ------------------------------------------------------
  /// Shared atomic counters, modeling CM5-style control-network combines;
  /// used for the monotone termination vote in the force phase.
  std::atomic<long long>& shared_counter(int id);

  // -- stats ----------------------------------------------------------------
  RankStats& stats() { return stats_; }

  // -- tracing ---------------------------------------------------------------
  /// This rank's event recorder, or null when the run is not traced.
  /// Formulations use it to annotate RPC traffic and decomposition events
  /// (guard every use: `if (auto* t = comm.tracer()) ...`).
  obs::RankTracer* tracer() const { return tracer_; }

 private:
  friend struct detail::Shared;
  friend RunReport run_spmd(int, const MachineModel&, const RunOptions&,
                            const std::function<void(Communicator&)>&);

  enum class CollKind { kBarrier, kGather, kGatherV, kReduce };

  Communicator(detail::Shared& shared, int rank, int size)
      : shared_(shared), rank_(rank), size_(size) {
    stats_.bytes_to.assign(static_cast<std::size_t>(size), 0);
  }
  Communicator(const Communicator&) = delete;

  /// Deposit one blob, get everyone's blobs, clocks advanced per `kind`.
  /// `elem_size` is sizeof(T) of the typed payload, recorded for the
  /// validator's cross-rank consistency check.
  std::vector<std::vector<std::byte>> collective(
      CollKind kind, std::size_t elem_size, std::vector<std::byte> contribution);
  /// Deposit p blobs (one per destination), get the p blobs destined here.
  std::vector<std::vector<std::byte>> personalized(
      std::size_t elem_size, std::vector<std::vector<std::byte>> out);

  /// Validator-only end-of-rank hygiene checks (message leaks, open
  /// phases); throws ProtocolError. No-op when validation is off or the
  /// run is already aborting.
  void finalize_checks();

  template <typename T>
  static std::vector<std::byte> as_blob(const T* p, std::size_t n) {
    std::vector<std::byte> b(n * sizeof(T));
    if (n) std::memcpy(b.data(), p, b.size());
    return b;
  }
  template <typename T>
  static std::vector<T> from_blob(const std::vector<std::byte>& b) {
    std::vector<T> v(b.size() / sizeof(T));
    if (!v.empty()) std::memcpy(v.data(), b.data(), b.size());
    return v;
  }

  detail::Shared& shared_;
  int rank_;
  int size_;
  double vtime_ = 0.0;
  RankStats stats_;
  std::map<std::string, double> phase_start_;
  obs::RankTracer* tracer_ = nullptr;
};

/// Run `body` as an SPMD program on `nprocs` ranks over the given machine
/// model. Blocks until every rank returns; rethrows the first rank
/// exception, if any. Thread-safe to call from one thread at a time.
/// With opts.validate the run is supervised by the SPMD protocol validator
/// (mp/validate.hpp) and protocol violations surface as ProtocolError.
RunReport run_spmd(int nprocs, const MachineModel& machine,
                   const RunOptions& opts,
                   const std::function<void(Communicator&)>& body);

inline RunReport run_spmd(int nprocs, const MachineModel& machine,
                          const std::function<void(Communicator&)>& body) {
  return run_spmd(nprocs, machine, RunOptions{}, body);
}

}  // namespace bh::mp
