// wire.hpp -- minimal byte-stream serialization for variable-layout
// messages (used by the data-shipping node-fetch protocol, whose replies mix
// child summaries, leaf particle data and degree-dependent expansion
// coefficients in one payload).
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace bh::mp {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }

  template <typename T>
  void put_span(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(items.size());
    const auto off = buf_.size();
    buf_.resize(off + items.size_bytes());
    if (!items.empty())
      std::memcpy(buf_.data() + off, items.data(), items.size_bytes());
  }

  std::span<const std::byte> bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size())
      throw std::out_of_range("ByteReader: truncated message");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    if (pos_ + n * sizeof(T) > bytes_.size())
      throw std::out_of_range("ByteReader: truncated vector");
    std::vector<T> out(n);
    if (n) std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace bh::mp
