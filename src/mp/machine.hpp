// machine.hpp -- virtual-time machine models.
//
// The paper evaluates on a 256-processor nCUBE2 (hypercube network) and a
// 256-processor CM5 (fat tree + dedicated control network). Neither machine
// exists here, so the runtime carries a *virtual clock* per rank: compute
// advances it by counted flops x seconds-per-flop (using the paper's own
// per-interaction flop counts, Section 5.2.1), and communication advances it
// by classic (t_s, t_w) cost formulas for the relevant topology (Kumar,
// Grama, Gupta & Karypis [20], the paper's own reference for its collective
// operations). This mirrors the paper's methodology -- it, too, projects
// sequential times from per-interaction costs because the large instances
// cannot run on one node.
//
// All costs are in seconds of virtual time. Message volumes are in bytes.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace bh::mp {

/// Interconnect topology, selecting the collective cost formulas.
enum class Topology : std::uint8_t {
  kHypercube,  ///< nCUBE2-style: store-and-forward d-cube
  kFatTree,    ///< CM5-style: full-bisection data net + fast control net
  kIdeal,      ///< zero-cost communication (algorithm-only studies)
};

/// Cost model of one machine.
struct MachineModel {
  std::string name = "ideal";
  Topology topology = Topology::kIdeal;
  double t_flop = 0.0;     ///< seconds per floating point operation
  double t_s = 0.0;        ///< message startup latency (s)
  double t_w = 0.0;        ///< per-byte transfer time (s)
  double t_h = 0.0;        ///< per-hop time (s), hypercube only
  double t_sync = 0.0;     ///< barrier/control-network latency (s)

  static double log2p(int p) { return p > 1 ? std::log2(double(p)) : 0.0; }

  /// Point-to-point message of `bytes` over `hops` links.
  double ptp(std::size_t bytes, int hops = 1) const {
    if (topology == Topology::kIdeal) return 0.0;
    return t_s + t_w * double(bytes) + t_h * double(hops);
  }

  /// All-to-all broadcast (allgather): every rank contributes `bytes`,
  /// every rank ends with all p contributions.
  /// Hypercube: t_s log p + t_w m (p-1).  Fat tree: same volume bound.
  double all_to_all_broadcast(int p, std::size_t bytes) const {
    if (topology == Topology::kIdeal || p <= 1) return 0.0;
    return t_s * log2p(p) + t_w * double(bytes) * double(p - 1);
  }

  /// All-to-all personalized: every rank sends a distinct `bytes_each` to
  /// every other rank. Hypercube (store-and-forward, Kumar et al. Ch. 3):
  /// (t_s + t_w m p / 2) log p.  Fat tree (full bisection): direct
  /// exchanges, (t_s + t_w m)(p - 1).
  double all_to_all_personalized(int p, std::size_t bytes_each) const {
    if (topology == Topology::kIdeal || p <= 1) return 0.0;
    if (topology == Topology::kHypercube)
      return (t_s + t_w * double(bytes_each) * double(p) / 2.0) * log2p(p);
    return (t_s + t_w * double(bytes_each)) * double(p - 1);
  }

  /// All-reduce of `bytes`. Hypercube: (t_s + t_w m) log p. CM5's control
  /// network performs small reductions in near-constant time.
  double all_reduce(int p, std::size_t bytes) const {
    if (topology == Topology::kIdeal || p <= 1) return 0.0;
    if (topology == Topology::kFatTree && bytes <= 64)
      return t_sync;
    return (t_s + t_w * double(bytes)) * log2p(p);
  }

  double barrier(int p) const {
    if (topology == Topology::kIdeal || p <= 1) return 0.0;
    if (topology == Topology::kFatTree) return t_sync;
    return t_s * log2p(p);
  }

  /// One-to-all broadcast of `bytes`.
  double broadcast(int p, std::size_t bytes) const {
    if (topology == Topology::kIdeal || p <= 1) return 0.0;
    return (t_s + t_w * double(bytes)) * log2p(p);
  }

  double flops(std::uint64_t n) const { return t_flop * double(n); }

  // -- presets --------------------------------------------------------------

  /// nCUBE2: ~0.4 Mflop/s sustained per node on this kernel class,
  /// t_s ~ 150 us, ~1 us/byte links, hypercube routing.
  static MachineModel ncube2() {
    return {"nCUBE2", Topology::kHypercube,
            /*t_flop=*/2.5e-6, /*t_s=*/150e-6, /*t_w=*/1.0e-6,
            /*t_h=*/5e-6, /*t_sync=*/0.0};
  }

  /// CM5: ~5 Mflop/s sustained per (scalar) node, t_s ~ 86 us,
  /// ~0.12 us/byte data network, microsecond-class control network.
  static MachineModel cm5() {
    return {"CM5", Topology::kFatTree,
            /*t_flop=*/2.0e-7, /*t_s=*/86e-6, /*t_w=*/0.12e-6,
            /*t_h=*/0.0, /*t_sync=*/6e-6};
  }

  /// A present-day commodity cluster (for the "current machines" discussion
  /// in the paper's conclusions): much faster compute *and* network, with a
  /// higher compute/communication ratio.
  static MachineModel cluster() {
    return {"cluster", Topology::kFatTree,
            /*t_flop=*/2.0e-10, /*t_s=*/2e-6, /*t_w=*/1e-10,
            /*t_h=*/0.0, /*t_sync=*/1e-6};
  }

  /// Zero-cost communication: isolates algorithmic load balance.
  static MachineModel ideal() { return {}; }
};

}  // namespace bh::mp
