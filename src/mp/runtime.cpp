// runtime.cpp -- SPMD engine internals.
//
// Ranks are threads; each owns a mailbox (mutex + condition variable +
// deque). Collectives rendezvous on a single generation-managed board: every
// rank deposits its contribution, the last arrival prices the operation with
// the MachineModel formula and releases everyone with a synchronized virtual
// clock -- exactly the semantics of a blocking collective on a real MPP.
//
// With RunOptions::validate set, a shared Validator (mp/validate.hpp)
// observes every send, recv block, collective rendezvous and rank exit;
// lock order is always {mailbox | board} -> validator, and the validator's
// deadlock callback runs with no validator lock held, so supervision adds
// no lock cycles.
#include "mp/runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/gray.hpp"
#include "mp/validate.hpp"
#include "obs/memstat.hpp"
#include "obs/trace.hpp"

namespace bh::mp {

namespace detail {

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> q;
};

struct Shared {
  MachineModel machine;
  int p = 1;

  std::vector<std::unique_ptr<Mailbox>> mail;

  // Collective rendezvous board.
  std::mutex cmu;
  std::condition_variable ccv;
  int arrived = 0;
  int readers = 0;
  bool read_phase = false;
  Communicator::CollKind kind{};
  bool kind_personalized = false;
  std::vector<std::vector<std::vector<std::byte>>> contrib;  // [rank][slot]
  std::vector<double> vt_in;
  double vt_out = 0.0;
  double vt_peak = 0.0;  ///< slowest arrival of the current round

  // Abort propagation: a throwing rank must not deadlock the others. When
  // the abort originates in the validator, abort_reason carries the
  // diagnostic so every blocked rank rethrows it as a ProtocolError.
  std::atomic<bool> aborted{false};
  std::mutex abort_mu;
  std::string abort_reason;

  // Protocol supervision; null unless RunOptions::validate.
  std::unique_ptr<Validator> validator;

  std::atomic<long long> counters[kSharedCounters];

  explicit Shared(const MachineModel& m, int nprocs) : machine(m), p(nprocs) {
    mail.reserve(p);
    for (int i = 0; i < p; ++i) mail.push_back(std::make_unique<Mailbox>());
    contrib.resize(p);
    vt_in.resize(p, 0.0);
    for (auto& c : counters) c.store(0);
  }

  void abort_all() {
    aborted.store(true);
    {
      std::lock_guard<std::mutex> lk(cmu);
      ccv.notify_all();
    }
    for (auto& mb : mail) {
      std::lock_guard<std::mutex> lk(mb->mu);
      mb->cv.notify_all();
    }
  }

  /// Record a validator diagnostic and wake every blocked rank. Callable
  /// from the watchdog thread; must not be invoked while holding any
  /// runtime or validator lock.
  void fail_async(const std::string& msg) {
    {
      std::lock_guard<std::mutex> lk(abort_mu);
      if (abort_reason.empty()) abort_reason = msg;
    }
    abort_all();
  }

  /// fail_async + throw, for violations detected on a rank thread.
  [[noreturn]] void fail_protocol(const std::string& msg) {
    fail_async(msg);
    throw ProtocolError(msg);
  }

  [[noreturn]] void throw_aborted() {
    {
      std::lock_guard<std::mutex> lk(abort_mu);
      if (!abort_reason.empty()) throw ProtocolError(abort_reason);
    }
    throw std::runtime_error("bh::mp run aborted by a peer rank failure");
  }

  int hops(int a, int b) const {
    if (machine.topology == Topology::kHypercube)
      return static_cast<int>(geom::hypercube_hops(
          static_cast<unsigned>(a), static_cast<unsigned>(b)));
    return 1;
  }

  static const char* kind_name(Communicator::CollKind k) {
    switch (k) {
      case Communicator::CollKind::kBarrier:
        return "barrier";
      case Communicator::CollKind::kGather:
        return "all_gather";
      case Communicator::CollKind::kGatherV:
        return "all_gatherv";
      case Communicator::CollKind::kReduce:
        return "all_reduce";
    }
    return "?";
  }
};

}  // namespace detail

const MachineModel& Communicator::machine() const { return shared_.machine; }

void Communicator::advance_flops(std::uint64_t n) {
  vtime_ += shared_.machine.flops(n);
  stats_.flops += n;
  if (tracer_) tracer_->flops(n, vtime_);
}

double Communicator::accrue_flops(std::uint64_t n) {
  stats_.flops += n;
  if (tracer_) tracer_->flops(n, vtime_);
  return shared_.machine.flops(n);
}

double Communicator::send_overhead() const {
  return shared_.machine.topology == Topology::kIdeal ? 0.0
                                                      : shared_.machine.t_s;
}

void Communicator::phase_begin(const std::string& name) {
  phase_start_[name] = vtime_;
  if (auto* v = shared_.validator.get()) v->on_phase(rank_, name);
  if (tracer_) tracer_->phase_begin(name, vtime_);
}

void Communicator::phase_end(const std::string& name) {
  auto it = phase_start_.find(name);
  if (it == phase_start_.end())
    throw ProtocolError("bh::mp: rank " + std::to_string(rank_) +
                        " called phase_end(\"" + name +
                        "\") without a matching phase_begin");
  stats_.phase_vtime[name] += vtime_ - it->second;
  phase_start_.erase(it);
  if (tracer_) tracer_->phase_end(name, vtime_);
}

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> bytes,
                              double not_before) {
  if (dst < 0 || dst >= size_)
    throw std::out_of_range("bh::mp: rank " + std::to_string(rank_) +
                            " sent to rank " + std::to_string(dst) +
                            " outside communicator of size " +
                            std::to_string(size_));
  if (shared_.aborted.load(std::memory_order_relaxed))
    shared_.throw_aborted();
  if (shared_.validator) {
    auto diag = detail::Validator::check_send(rank_, dst, tag);
    if (!diag.empty()) shared_.fail_protocol(diag);
  }
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  // Sender pays the software send overhead; transit time is charged to the
  // receiver relative to this timestamp.
  vtime_ += shared_.machine.topology == Topology::kIdeal
                ? 0.0
                : shared_.machine.t_s;
  m.sent_vtime = std::max(vtime_, not_before);
  stats_.bytes_sent += bytes.size();
  ++stats_.messages_sent;
  stats_.bytes_to[static_cast<std::size_t>(dst)] += bytes.size();
  if (tracer_) tracer_->send(dst, tag, bytes.size(), vtime_);
  auto& mb = *shared_.mail[dst];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.q.push_back(std::move(m));
  }
  mb.cv.notify_all();
  if (auto* v = shared_.validator.get()) v->on_send(dst);
}

void Communicator::send_bytes_stamped(int dst, int tag,
                                      std::span<const std::byte> bytes,
                                      double stamp, bool charge_overhead) {
  if (dst < 0 || dst >= size_)
    throw std::out_of_range("bh::mp: rank " + std::to_string(rank_) +
                            " sent (stamped) to rank " + std::to_string(dst) +
                            " outside communicator of size " +
                            std::to_string(size_));
  if (shared_.aborted.load(std::memory_order_relaxed))
    shared_.throw_aborted();
  if (shared_.validator) {
    auto diag = detail::Validator::check_send(rank_, dst, tag);
    if (!diag.empty()) shared_.fail_protocol(diag);
  }
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  // The sender still pays its software overhead on its own clock, unless
  // the caller already charged it at a deterministic control-flow point.
  if (charge_overhead) vtime_ += send_overhead();
  m.sent_vtime = stamp;
  stats_.bytes_sent += bytes.size();
  ++stats_.messages_sent;
  stats_.bytes_to[static_cast<std::size_t>(dst)] += bytes.size();
  if (tracer_) tracer_->send(dst, tag, bytes.size(), vtime_);
  auto& mb = *shared_.mail[dst];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.q.push_back(std::move(m));
  }
  mb.cv.notify_all();
  if (auto* v = shared_.validator.get()) v->on_send(dst);
}

namespace {

bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

}  // namespace

Message Communicator::recv_any(int src, int tag) {
  auto* val = shared_.validator.get();
  auto& mb = *shared_.mail[rank_];
  std::unique_lock<std::mutex> lk(mb.mu);
  for (;;) {
    if (shared_.aborted.load(std::memory_order_relaxed))
      shared_.throw_aborted();
    for (auto it = mb.q.begin(); it != mb.q.end(); ++it) {
      if (!matches(*it, src, tag)) continue;
      Message m = std::move(*it);
      mb.q.erase(it);
      lk.unlock();
      if (val) {
        val->on_recv_unblock(rank_);
        val->on_consume(rank_);
      }
      const double arrived =
          m.sent_vtime +
          shared_.machine.ptp(m.payload.size(), shared_.hops(m.src, rank_));
      stats_.recv_wait += std::max(0.0, arrived - vtime_);
      vtime_ = std::max(vtime_, arrived);
      if (tracer_) tracer_->recv(m.src, m.tag, m.payload.size(), vtime_);
      return m;
    }
    if (val) val->on_recv_block(rank_, src, tag, vtime_);
    mb.cv.wait(lk);
    if (val) val->on_recv_unblock(rank_);
  }
}

std::optional<Message> Communicator::try_recv(int src, int tag,
                                              bool advance_clock) {
  auto& mb = *shared_.mail[rank_];
  std::unique_lock<std::mutex> lk(mb.mu);
  if (shared_.aborted.load(std::memory_order_relaxed))
    shared_.throw_aborted();
  for (auto it = mb.q.begin(); it != mb.q.end(); ++it) {
    if (!matches(*it, src, tag)) continue;
    Message m = std::move(*it);
    mb.q.erase(it);
    lk.unlock();
    if (auto* v = shared_.validator.get()) v->on_consume(rank_);
    if (advance_clock) {
      stats_.recv_wait += std::max(0.0, arrival_time(m) - vtime_);
      vtime_ = std::max(vtime_, arrival_time(m));
    }
    // Recorded at the consuming rank's *current* clock (not the arrival
    // stamp) so per-rank event times stay monotone under async absorption.
    if (tracer_) tracer_->recv(m.src, m.tag, m.payload.size(), vtime_);
    return m;
  }
  return std::nullopt;
}

std::optional<Message> Communicator::try_recv_ordered(int src, int tag,
                                                      bool advance_clock) {
  auto& mb = *shared_.mail[rank_];
  std::unique_lock<std::mutex> lk(mb.mu);
  if (shared_.aborted.load(std::memory_order_relaxed))
    shared_.throw_aborted();
  // Scan the whole queue for the lowest (src, tag) match; the deque is in
  // physical arrival order, so the first hit with the winning pair is also
  // the FIFO-oldest message of that pair.
  auto best = mb.q.end();
  for (auto it = mb.q.begin(); it != mb.q.end(); ++it) {
    if (!matches(*it, src, tag)) continue;
    if (best == mb.q.end() || it->src < best->src ||
        (it->src == best->src && it->tag < best->tag))
      best = it;
  }
  if (best == mb.q.end()) return std::nullopt;
  Message m = std::move(*best);
  mb.q.erase(best);
  lk.unlock();
  if (auto* v = shared_.validator.get()) v->on_consume(rank_);
  if (advance_clock) {
    stats_.recv_wait += std::max(0.0, arrival_time(m) - vtime_);
    vtime_ = std::max(vtime_, arrival_time(m));
  }
  if (tracer_) tracer_->recv(m.src, m.tag, m.payload.size(), vtime_);
  return m;
}

double Communicator::arrival_time(const Message& m) const {
  return m.sent_vtime + shared_.machine.ptp(m.payload.size(),
                                            shared_.hops(m.src, rank_));
}

void Communicator::barrier() {
  (void)collective(CollKind::kBarrier, 0, {});
}

std::vector<std::vector<std::byte>> Communicator::collective(
    CollKind kind, std::size_t elem_size, std::vector<std::byte> contribution) {
  auto& s = shared_;
  auto* val = s.validator.get();
  if (val)
    val->on_collective_enter(
        rank_, {detail::Shared::kind_name(kind), elem_size,
                contribution.size()},
        vtime_);
  if (tracer_)
    tracer_->coll_begin(detail::Shared::kind_name(kind), contribution.size(),
                        vtime_);
  // Broadcast-style collectives deliver this rank's contribution to every
  // peer; count it once per peer in the communication matrix.
  if (kind != CollKind::kBarrier && !contribution.empty())
    for (int r = 0; r < size_; ++r)
      if (r != rank_)
        stats_.bytes_to[static_cast<std::size_t>(r)] += contribution.size();
  std::unique_lock<std::mutex> lk(s.cmu);
  s.ccv.wait(lk, [&] { return !s.read_phase || s.aborted.load(); });
  if (s.aborted.load()) s.throw_aborted();

  stats_.collective_bytes += contribution.size();
  s.contrib[rank_].clear();
  s.contrib[rank_].push_back(std::move(contribution));
  s.vt_in[rank_] = vtime_;
  s.kind = kind;
  s.kind_personalized = false;

  if (++s.arrived == s.p) {
    if (val) {
      auto diag = val->check_round();
      if (!diag.empty()) {
        lk.unlock();
        s.fail_protocol(diag);
      }
    }
    // Price the operation: slowest arrival plus the collective's cost.
    // Variable-size gathers are priced at the volume-equivalent uniform
    // contribution (every rank must receive the total payload either way;
    // pricing at the max contribution would overcharge skewed gathers).
    double vt = 0.0;
    std::size_t m = 0, total = 0;
    for (int r = 0; r < s.p; ++r) {
      vt = std::max(vt, s.vt_in[r]);
      m = std::max(m, s.contrib[r][0].size());
      total += s.contrib[r][0].size();
    }
    double cost = 0.0;
    switch (kind) {
      case CollKind::kBarrier:
        cost = s.machine.barrier(s.p);
        break;
      case CollKind::kGather:
      case CollKind::kGatherV:
        cost = s.machine.all_to_all_broadcast(
            s.p, (total + static_cast<std::size_t>(s.p) - 1) /
                     static_cast<std::size_t>(s.p));
        break;
      case CollKind::kReduce:
        cost = s.machine.all_reduce(s.p, m);
        break;
    }
    s.vt_peak = vt;
    s.vt_out = vt + cost;
    s.read_phase = true;
    s.readers = 0;
    s.ccv.notify_all();
  } else {
    s.ccv.wait(lk, [&] { return s.read_phase || s.aborted.load(); });
    if (s.aborted.load()) s.throw_aborted();
  }

  std::vector<std::vector<std::byte>> result(s.p);
  for (int r = 0; r < s.p; ++r) result[r] = s.contrib[r][0];
  // Split this rank's time in the collective into pure idle (waiting for
  // the slowest arrival) and the modeled cost of the operation itself.
  stats_.coll_wait += std::max(0.0, s.vt_peak - vtime_);
  stats_.coll_cost += s.vt_out - s.vt_peak;
  vtime_ = s.vt_out;
  if (++s.readers == s.p) {
    s.arrived = 0;
    s.read_phase = false;
    s.ccv.notify_all();
  }
  lk.unlock();
  if (val) val->on_collective_exit(rank_);
  if (tracer_) tracer_->coll_end(vtime_);
  return result;
}

std::vector<std::vector<std::byte>> Communicator::personalized(
    std::size_t elem_size, std::vector<std::vector<std::byte>> out) {
  auto& s = shared_;
  if (static_cast<int>(out.size()) != s.p)
    throw std::invalid_argument(
        "bh::mp: all_to_all outbox has " + std::to_string(out.size()) +
        " destinations; communicator size is " + std::to_string(s.p));
  auto* val = s.validator.get();
  std::size_t total_out = 0;
  for (const auto& b : out) total_out += b.size();
  if (val)
    val->on_collective_enter(rank_, {"all_to_all", elem_size, total_out},
                             vtime_);
  if (tracer_) tracer_->coll_begin("all_to_all", total_out, vtime_);
  for (int d = 0; d < size_; ++d)
    stats_.bytes_to[static_cast<std::size_t>(d)] +=
        out[static_cast<std::size_t>(d)].size();
  std::unique_lock<std::mutex> lk(s.cmu);
  s.ccv.wait(lk, [&] { return !s.read_phase || s.aborted.load(); });
  if (s.aborted.load()) s.throw_aborted();

  stats_.collective_bytes += total_out;
  s.contrib[rank_] = std::move(out);
  s.vt_in[rank_] = vtime_;
  s.kind_personalized = true;

  if (++s.arrived == s.p) {
    if (val) {
      auto diag = val->check_round();
      if (!diag.empty()) {
        lk.unlock();
        s.fail_protocol(diag);
      }
    }
    double vt = 0.0;
    std::size_t total = 0;
    for (int r = 0; r < s.p; ++r) {
      vt = std::max(vt, s.vt_in[r]);
      for (const auto& b : s.contrib[r]) total += b.size();
    }
    // Price the exchange at its volume-equivalent uniform payload: real
    // exchanges here are sparse (a few heavy pairs), and the closed-form
    // hypercube bound priced at the *max* pair would overcharge by orders
    // of magnitude.
    const std::size_t pairs = static_cast<std::size_t>(s.p) * s.p;
    const std::size_t m_eq = (total + pairs - 1) / pairs;
    s.vt_peak = vt;
    s.vt_out = vt + s.machine.all_to_all_personalized(s.p, m_eq);
    s.read_phase = true;
    s.readers = 0;
    s.ccv.notify_all();
  } else {
    s.ccv.wait(lk, [&] { return s.read_phase || s.aborted.load(); });
    if (s.aborted.load()) s.throw_aborted();
  }

  std::vector<std::vector<std::byte>> in(s.p);
  for (int src = 0; src < s.p; ++src) in[src] = s.contrib[src][rank_];
  stats_.coll_wait += std::max(0.0, s.vt_peak - vtime_);
  stats_.coll_cost += s.vt_out - s.vt_peak;
  vtime_ = s.vt_out;
  if (++s.readers == s.p) {
    s.arrived = 0;
    s.read_phase = false;
    s.ccv.notify_all();
  }
  lk.unlock();
  if (val) val->on_collective_exit(rank_);
  if (tracer_) tracer_->coll_end(vtime_);
  return in;
}

std::atomic<long long>& Communicator::shared_counter(int id) {
  if (id < 0 || id >= kSharedCounters)
    throw std::out_of_range("bh::mp: shared_counter(" + std::to_string(id) +
                            ") outside [0, " +
                            std::to_string(kSharedCounters) + ")");
  return shared_.counters[id];
}

void Communicator::protocol_abort(const std::string& msg) {
  std::string full = "rank " + std::to_string(rank_) + ": " + msg;
  if (auto* v = shared_.validator.get()) full += "\n" + v->dump();
  shared_.fail_protocol(full);
}

void Communicator::finalize_checks() {
  auto* val = shared_.validator.get();
  if (!val || shared_.aborted.load(std::memory_order_relaxed)) return;
  std::vector<std::pair<int, int>> leftover;
  {
    auto& mb = *shared_.mail[rank_];
    std::lock_guard<std::mutex> lk(mb.mu);
    for (const auto& m : mb.q) leftover.emplace_back(m.src, m.tag);
  }
  std::vector<std::string> open;
  open.reserve(phase_start_.size());
  for (const auto& [name, t0] : phase_start_) open.push_back(name);
  val->check_rank_exit(rank_, leftover, open);
}

RunReport run_spmd(int nprocs, const MachineModel& machine,
                   const RunOptions& opts,
                   const std::function<void(Communicator&)>& body) {
  if (nprocs < 1) throw std::invalid_argument("nprocs must be >= 1");
  detail::Shared shared(machine, nprocs);
  if (opts.trace) opts.trace->begin_run(nprocs);
  if (opts.validate) {
    shared.validator = std::make_unique<detail::Validator>(
        nprocs, opts.watchdog_seconds,
        [&shared](const std::string& msg) { shared.fail_async(msg); });
    shared.validator->start_watchdog();
  }

  RunReport report;
  report.ranks.resize(nprocs);

  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      const std::uint64_t allocs0 = obs::memstat::thread_allocs();
      Communicator comm(shared, r, nprocs);
      if (opts.trace) comm.tracer_ = &opts.trace->rank(r);
      try {
        body(comm);
        comm.finalize_checks();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        shared.abort_all();
      }
      if (shared.validator) shared.validator->on_rank_finish(r);
      if (comm.tracer_) comm.tracer_->flush(comm.vtime());
      comm.stats().vtime = comm.vtime();
      comm.stats().allocs = obs::memstat::thread_allocs() - allocs0;
      report.ranks[r] = std::move(comm.stats());
    });
  }
  for (auto& t : threads) t.join();
  if (shared.validator) shared.validator->stop_watchdog();
  if (first_error) std::rethrow_exception(first_error);
  return report;
}

}  // namespace bh::mp
