// runtime.cpp -- SPMD engine internals.
//
// Ranks are threads; each owns a mailbox (mutex + condition variable +
// deque). Collectives rendezvous on a single generation-managed board: every
// rank deposits its contribution, the last arrival prices the operation with
// the MachineModel formula and releases everyone with a synchronized virtual
// clock -- exactly the semantics of a blocking collective on a real MPP.
#include "mp/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "geom/gray.hpp"

namespace bh::mp {

namespace detail {

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> q;
};

struct Shared {
  MachineModel machine;
  int p = 1;

  std::vector<std::unique_ptr<Mailbox>> mail;

  // Collective rendezvous board.
  std::mutex cmu;
  std::condition_variable ccv;
  int arrived = 0;
  int readers = 0;
  bool read_phase = false;
  Communicator::CollKind kind{};
  bool kind_personalized = false;
  std::vector<std::vector<std::vector<std::byte>>> contrib;  // [rank][slot]
  std::vector<double> vt_in;
  double vt_out = 0.0;

  // Abort propagation: a throwing rank must not deadlock the others.
  std::atomic<bool> aborted{false};

  std::atomic<long long> counters[kSharedCounters];

  explicit Shared(const MachineModel& m, int nprocs) : machine(m), p(nprocs) {
    mail.reserve(p);
    for (int i = 0; i < p; ++i) mail.push_back(std::make_unique<Mailbox>());
    contrib.resize(p);
    vt_in.resize(p, 0.0);
    for (auto& c : counters) c.store(0);
  }

  void abort_all() {
    aborted.store(true);
    {
      std::lock_guard<std::mutex> lk(cmu);
      ccv.notify_all();
    }
    for (auto& mb : mail) {
      std::lock_guard<std::mutex> lk(mb->mu);
      mb->cv.notify_all();
    }
  }

  [[noreturn]] static void throw_aborted() {
    throw std::runtime_error("bh::mp run aborted by a peer rank failure");
  }

  int hops(int a, int b) const {
    if (machine.topology == Topology::kHypercube)
      return static_cast<int>(geom::hypercube_hops(
          static_cast<unsigned>(a), static_cast<unsigned>(b)));
    return 1;
  }
};

}  // namespace detail

const MachineModel& Communicator::machine() const { return shared_.machine; }

void Communicator::advance_flops(std::uint64_t n) {
  vtime_ += shared_.machine.flops(n);
  stats_.flops += n;
}

void Communicator::phase_begin(const std::string& name) {
  phase_start_[name] = vtime_;
}

void Communicator::phase_end(const std::string& name) {
  auto it = phase_start_.find(name);
  if (it == phase_start_.end()) return;
  stats_.phase_vtime[name] += vtime_ - it->second;
  phase_start_.erase(it);
}

void Communicator::send_bytes(int dst, int tag,
                              std::span<const std::byte> bytes,
                              double not_before) {
  assert(dst >= 0 && dst < size_);
  if (shared_.aborted.load(std::memory_order_relaxed))
    detail::Shared::throw_aborted();
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  // Sender pays the software send overhead; transit time is charged to the
  // receiver relative to this timestamp.
  vtime_ += shared_.machine.topology == Topology::kIdeal
                ? 0.0
                : shared_.machine.t_s;
  m.sent_vtime = std::max(vtime_, not_before);
  stats_.bytes_sent += bytes.size();
  ++stats_.messages_sent;
  auto& mb = *shared_.mail[dst];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.q.push_back(std::move(m));
  }
  mb.cv.notify_all();
}

void Communicator::send_bytes_stamped(int dst, int tag,
                                       std::span<const std::byte> bytes,
                                       double stamp) {
  assert(dst >= 0 && dst < size_);
  if (shared_.aborted.load(std::memory_order_relaxed))
    detail::Shared::throw_aborted();
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(bytes.begin(), bytes.end());
  // The sender still pays its software overhead on its own clock.
  vtime_ += shared_.machine.topology == Topology::kIdeal
                ? 0.0
                : shared_.machine.t_s;
  m.sent_vtime = stamp;
  stats_.bytes_sent += bytes.size();
  ++stats_.messages_sent;
  auto& mb = *shared_.mail[dst];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.q.push_back(std::move(m));
  }
  mb.cv.notify_all();
}

namespace {

bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

}  // namespace

Message Communicator::recv_any(int src, int tag) {
  auto& mb = *shared_.mail[rank_];
  std::unique_lock<std::mutex> lk(mb.mu);
  for (;;) {
    if (shared_.aborted.load(std::memory_order_relaxed))
      detail::Shared::throw_aborted();
    for (auto it = mb.q.begin(); it != mb.q.end(); ++it) {
      if (!matches(*it, src, tag)) continue;
      Message m = std::move(*it);
      mb.q.erase(it);
      lk.unlock();
      vtime_ = std::max(
          vtime_, m.sent_vtime + shared_.machine.ptp(
                                     m.payload.size(),
                                     shared_.hops(m.src, rank_)));
      return m;
    }
    mb.cv.wait(lk);
  }
}

std::optional<Message> Communicator::try_recv(int src, int tag,
                                              bool advance_clock) {
  auto& mb = *shared_.mail[rank_];
  std::unique_lock<std::mutex> lk(mb.mu);
  if (shared_.aborted.load(std::memory_order_relaxed))
    detail::Shared::throw_aborted();
  for (auto it = mb.q.begin(); it != mb.q.end(); ++it) {
    if (!matches(*it, src, tag)) continue;
    Message m = std::move(*it);
    mb.q.erase(it);
    lk.unlock();
    if (advance_clock) vtime_ = std::max(vtime_, arrival_time(m));
    return m;
  }
  return std::nullopt;
}

double Communicator::arrival_time(const Message& m) const {
  return m.sent_vtime + shared_.machine.ptp(m.payload.size(),
                                            shared_.hops(m.src, rank_));
}

void Communicator::barrier() {
  (void)collective(CollKind::kBarrier, {});
}

std::vector<std::vector<std::byte>> Communicator::collective(
    CollKind kind, std::vector<std::byte> contribution) {
  auto& s = shared_;
  std::unique_lock<std::mutex> lk(s.cmu);
  s.ccv.wait(lk, [&] { return !s.read_phase || s.aborted.load(); });
  if (s.aborted.load()) detail::Shared::throw_aborted();

  stats_.collective_bytes += contribution.size();
  s.contrib[rank_].clear();
  s.contrib[rank_].push_back(std::move(contribution));
  s.vt_in[rank_] = vtime_;
  s.kind = kind;
  s.kind_personalized = false;

  if (++s.arrived == s.p) {
    // Price the operation: slowest arrival plus the collective's cost.
    // Variable-size gathers are priced at the volume-equivalent uniform
    // contribution (every rank must receive the total payload either way;
    // pricing at the max contribution would overcharge skewed gathers).
    double vt = 0.0;
    std::size_t m = 0, total = 0;
    for (int r = 0; r < s.p; ++r) {
      vt = std::max(vt, s.vt_in[r]);
      m = std::max(m, s.contrib[r][0].size());
      total += s.contrib[r][0].size();
    }
    double cost = 0.0;
    switch (kind) {
      case CollKind::kBarrier:
        cost = s.machine.barrier(s.p);
        break;
      case CollKind::kGather:
        cost = s.machine.all_to_all_broadcast(
            s.p, (total + static_cast<std::size_t>(s.p) - 1) /
                     static_cast<std::size_t>(s.p));
        break;
      case CollKind::kReduce:
        cost = s.machine.all_reduce(s.p, m);
        break;
    }
    s.vt_out = vt + cost;
    s.read_phase = true;
    s.readers = 0;
    s.ccv.notify_all();
  } else {
    s.ccv.wait(lk, [&] { return s.read_phase || s.aborted.load(); });
    if (s.aborted.load()) detail::Shared::throw_aborted();
  }

  std::vector<std::vector<std::byte>> result(s.p);
  for (int r = 0; r < s.p; ++r) result[r] = s.contrib[r][0];
  vtime_ = s.vt_out;
  if (++s.readers == s.p) {
    s.arrived = 0;
    s.read_phase = false;
    s.ccv.notify_all();
  }
  return result;
}

std::vector<std::vector<std::byte>> Communicator::personalized(
    std::vector<std::vector<std::byte>> out) {
  auto& s = shared_;
  assert(static_cast<int>(out.size()) == s.p);
  std::unique_lock<std::mutex> lk(s.cmu);
  s.ccv.wait(lk, [&] { return !s.read_phase || s.aborted.load(); });
  if (s.aborted.load()) detail::Shared::throw_aborted();

  for (const auto& b : out) stats_.collective_bytes += b.size();
  s.contrib[rank_] = std::move(out);
  s.vt_in[rank_] = vtime_;
  s.kind_personalized = true;

  if (++s.arrived == s.p) {
    double vt = 0.0;
    std::size_t total = 0;
    for (int r = 0; r < s.p; ++r) {
      vt = std::max(vt, s.vt_in[r]);
      for (const auto& b : s.contrib[r]) total += b.size();
    }
    // Price the exchange at its volume-equivalent uniform payload: real
    // exchanges here are sparse (a few heavy pairs), and the closed-form
    // hypercube bound priced at the *max* pair would overcharge by orders
    // of magnitude.
    const std::size_t pairs = static_cast<std::size_t>(s.p) * s.p;
    const std::size_t m_eq = (total + pairs - 1) / pairs;
    s.vt_out = vt + s.machine.all_to_all_personalized(s.p, m_eq);
    s.read_phase = true;
    s.readers = 0;
    s.ccv.notify_all();
  } else {
    s.ccv.wait(lk, [&] { return s.read_phase || s.aborted.load(); });
    if (s.aborted.load()) detail::Shared::throw_aborted();
  }

  std::vector<std::vector<std::byte>> in(s.p);
  for (int src = 0; src < s.p; ++src) in[src] = s.contrib[src][rank_];
  vtime_ = s.vt_out;
  if (++s.readers == s.p) {
    s.arrived = 0;
    s.read_phase = false;
    s.ccv.notify_all();
  }
  return in;
}

std::atomic<long long>& Communicator::shared_counter(int id) {
  assert(id >= 0 && id < kSharedCounters);
  return shared_.counters[id];
}

RunReport run_spmd(int nprocs, const MachineModel& machine,
                   const std::function<void(Communicator&)>& body) {
  if (nprocs < 1) throw std::invalid_argument("nprocs must be >= 1");
  detail::Shared shared(machine, nprocs);

  RunReport report;
  report.ranks.resize(nprocs);

  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(shared, r, nprocs);
      try {
        body(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        shared.abort_all();
      }
      comm.stats().vtime = comm.vtime();
      report.ranks[r] = std::move(comm.stats());
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return report;
}

}  // namespace bh::mp
