// protocol.hpp -- the central SPMD message-protocol registry.
//
// Every point-to-point tag the system uses, its wire/trace name, its payload
// element type and its direction are declared here, in one place, instead of
// scattered per-engine constants. Three consumers read the registry:
//
//  * The engines (parallel/funcship.cpp, parallel/dataship.cpp) use the tag
//    constants at their send/recv sites and register the wire names with the
//    tracer via name_all_tags().
//  * The runtime validator (mp/validate.cpp) rejects any send whose tag is
//    neither a registered protocol tag nor inside the scratch range -- live
//    traffic is cross-checked against the same declaration the static
//    checker reads.
//  * tools/bh_protocheck parses this header (lexically -- keep the table a
//    flat literal, one entry per line) and statically checks every
//    send*/recv* call site in src/ against it: raw integer tags, tags sent
//    but never received, payload-type mismatches at typed send sites.
//
// Adding a message to the system therefore means: add one TagSpec row here,
// then use the constant at the call sites. A raw literal tag, or a constant
// declared elsewhere, is a bh_protocheck finding and fails CI.
//
// The scratch range [kScratchTagFirst, kScratchTagLast] is reserved for
// tests and ad-hoc experiments (like MPI applications reserving low tag
// space); scratch tags pass the runtime registry check but carry no payload
// or direction contract. Production code in src/ must not use them -- the
// static checker flags raw literals at call sites either way.
#pragma once

#include <cstdint>

namespace bh::mp::proto {

/// Who initiates a message with this tag.
enum class Dir : std::uint8_t {
  kRequest,   ///< any rank -> owner of the addressed data (RPC request half)
  kReply,     ///< owner -> requester (RPC reply half)
  kOneWay,    ///< fire-and-forget; no paired reply
  kReserved,  ///< allocated, not currently on the wire (kept stable so old
              ///< traces and wire captures keep decoding)
};

// -- tag space ---------------------------------------------------------------

/// Scratch tags for tests and ad-hoc experiments; never used by src/.
inline constexpr int kScratchTagFirst = 0;
inline constexpr int kScratchTagLast = 63;

/// Function-shipping force phase (Section 3.2): particle coordinates out,
/// accumulated subtree fields back.
inline constexpr int kTagFuncRequest = 100;
inline constexpr int kTagFuncReply = 101;

/// Data-shipping force phase (Sections 3.2, 4.2): node-children fetch RPC.
inline constexpr int kTagFetch = 110;
inline constexpr int kTagNodeData = 111;
/// Historical explicit-termination tag; superseded by the shared-counter
/// vote (parallel/ship/termination.hpp). Kept reserved so old traces decode.
inline constexpr int kTagDataShipDone = 112;
/// Async node-cache protocol (DESIGN.md section 14): one request names a
/// list of subtree roots plus depth/count bounds; the reply is a MultiData-
/// style pack of node records covering the bounded subtrees in one message.
inline constexpr int kTagFetchPack = 113;
inline constexpr int kTagNodePack = 114;

/// One registered message tag. `payload` is the element-type base name a
/// typed send site must use ("bytes" = opaque ByteWriter stream, exempt from
/// the static payload check).
struct TagSpec {
  int tag;
  const char* name;     ///< wire/trace name (Tracer tag registry)
  const char* payload;  ///< payload element type base name
  Dir dir;
};

// The table bh_protocheck parses: keep it a flat literal, one entry per
// line, constants (not numbers) in the first column.
// clang-format off
inline constexpr TagSpec kTags[] = {
    {kTagFuncRequest,  "funcship.request",   "ShipItem",  Dir::kRequest},
    {kTagFuncReply,    "funcship.reply",     "ReplyItem", Dir::kReply},
    {kTagFetch,        "dataship.fetch",      "uint64_t",  Dir::kRequest},
    {kTagNodeData,     "dataship.node_data",  "bytes",     Dir::kReply},
    {kTagDataShipDone, "dataship.done",       "bytes",     Dir::kReserved},
    {kTagFetchPack,    "dataship.fetch_pack", "bytes",     Dir::kRequest},
    {kTagNodePack,     "dataship.node_pack",  "bytes",     Dir::kReply},
};
// clang-format on

// -- phase names -------------------------------------------------------------
// The named phases of the paper's formulations (Table 3 rows). Declared
// here so phase_begin/phase_end call sites, the trace tooling and the bench
// emitters all agree on the strings.

inline constexpr const char* kPhaseLocalBuild = "local tree construction";
inline constexpr const char* kPhaseTreeMerge = "tree merging";
inline constexpr const char* kPhaseBroadcast = "all-to-all broadcast";
inline constexpr const char* kPhaseForce = "force computation";
inline constexpr const char* kPhaseLoadBalance = "load balancing";

inline constexpr const char* kPhases[] = {
    kPhaseLocalBuild, kPhaseTreeMerge, kPhaseBroadcast,
    kPhaseForce,      kPhaseLoadBalance,
};

// -- lookup ------------------------------------------------------------------

constexpr bool is_scratch_tag(int tag) {
  return tag >= kScratchTagFirst && tag <= kScratchTagLast;
}

/// Registry row for `tag`, or nullptr when unregistered.
constexpr const TagSpec* find_tag(int tag) {
  for (const auto& s : kTags)
    if (s.tag == tag) return &s;
  return nullptr;
}

/// True when `tag` may legally appear on the wire: a registered protocol
/// tag or a scratch tag. The runtime validator enforces this on every send.
constexpr bool is_declared_tag(int tag) {
  return is_scratch_tag(tag) || find_tag(tag) != nullptr;
}

/// Register every tag's wire name with a tracer (obs::RankTracer or
/// anything exposing name_tag(int, std::string_view)).
template <typename RankTracerT>
void name_all_tags(RankTracerT& t) {
  for (const auto& s : kTags) t.name_tag(s.tag, s.name);
}

namespace detail {
constexpr bool tags_unique_and_outside_scratch() {
  for (std::size_t i = 0; i < sizeof(kTags) / sizeof(kTags[0]); ++i) {
    if (is_scratch_tag(kTags[i].tag)) return false;
    for (std::size_t j = i + 1; j < sizeof(kTags) / sizeof(kTags[0]); ++j)
      if (kTags[i].tag == kTags[j].tag) return false;
  }
  return true;
}
}  // namespace detail
static_assert(detail::tags_unique_and_outside_scratch(),
              "mp/protocol.hpp: tag values must be unique and outside the "
              "scratch range");

}  // namespace bh::mp::proto
