// vec.hpp -- small fixed-dimension vector used throughout the library.
//
// The paper illustrates its schemes in 2-D and evaluates them in 3-D; the
// whole library is therefore dimension-generic over D in {2, 3}.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace bh::geom {

/// Fixed-size Cartesian vector. Aggregate, trivially copyable, usable in
/// messages sent through the bh::mp runtime without serialization glue.
template <std::size_t D, typename T = double>
struct Vec {
  static_assert(D == 2 || D == 3, "Barnes-Hut domains are 2-D or 3-D");
  using value_type = T;
  static constexpr std::size_t dim = D;

  std::array<T, D> c{};

  constexpr T& operator[](std::size_t i) { return c[i]; }
  constexpr const T& operator[](std::size_t i) const { return c[i]; }

  constexpr T x() const { return c[0]; }
  constexpr T y() const { return c[1]; }
  constexpr T z() const
    requires(D == 3)
  {
    return c[2];
  }

  constexpr Vec& operator+=(const Vec& o) {
    for (std::size_t i = 0; i < D; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr Vec& operator-=(const Vec& o) {
    for (std::size_t i = 0; i < D; ++i) c[i] -= o.c[i];
    return *this;
  }
  constexpr Vec& operator*=(T s) {
    for (std::size_t i = 0; i < D; ++i) c[i] *= s;
    return *this;
  }
  constexpr Vec& operator/=(T s) {
    for (std::size_t i = 0; i < D; ++i) c[i] /= s;
    return *this;
  }

  friend constexpr Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend constexpr Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend constexpr Vec operator*(Vec a, T s) { return a *= s; }
  friend constexpr Vec operator*(T s, Vec a) { return a *= s; }
  friend constexpr Vec operator/(Vec a, T s) { return a /= s; }
  friend constexpr Vec operator-(Vec a) { return a *= T(-1); }

  friend constexpr bool operator==(const Vec&, const Vec&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Vec& v) {
    os << '(';
    for (std::size_t i = 0; i < D; ++i) os << (i ? "," : "") << v.c[i];
    return os << ')';
  }
};

template <std::size_t D, typename T>
constexpr T dot(const Vec<D, T>& a, const Vec<D, T>& b) {
  T s{};
  for (std::size_t i = 0; i < D; ++i) s += a[i] * b[i];
  return s;
}

template <std::size_t D, typename T>
constexpr T norm2(const Vec<D, T>& v) {
  return dot(v, v);
}

template <std::size_t D, typename T>
T norm(const Vec<D, T>& v) {
  return std::sqrt(norm2(v));
}

/// Component-wise minimum / maximum (used by bounding-box accumulation).
template <std::size_t D, typename T>
constexpr Vec<D, T> cmin(const Vec<D, T>& a, const Vec<D, T>& b) {
  Vec<D, T> r;
  for (std::size_t i = 0; i < D; ++i) r[i] = a[i] < b[i] ? a[i] : b[i];
  return r;
}

template <std::size_t D, typename T>
constexpr Vec<D, T> cmax(const Vec<D, T>& a, const Vec<D, T>& b) {
  Vec<D, T> r;
  for (std::size_t i = 0; i < D; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
  return r;
}

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;

/// Cross product, 3-D only.
template <typename T>
constexpr Vec<3, T> cross(const Vec<3, T>& a, const Vec<3, T>& b) {
  return {{a[1] * b[2] - a[2] * b[1],  //
           a[2] * b[0] - a[0] * b[2],  //
           a[0] * b[1] - a[1] * b[0]}};
}

}  // namespace bh::geom
