// gray.hpp -- Gray-code modular assignment of cluster grids to processors.
//
// The SPSA formulation (Section 3.3.1) maps subdomain (i, j) of an r = m x m
// cluster grid to processor (gray(i, d/2), gray(j, d/2)) on a d-dimensional
// hypercube, so neighbouring subdomains land on neighbouring processors
// ("modular scatter decomposition", Nicol & Saltz [19]). We implement the
// 2-D mapping from the paper and its natural 3-D extension.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace bh::geom {

/// pth entry of the reflected binary Gray code on q bits.
constexpr std::uint32_t gray(std::uint32_t p, unsigned q) {
  const std::uint32_t mask = q >= 32 ? ~0u : ((1u << q) - 1u);
  p &= mask;
  return p ^ (p >> 1);
}

/// Inverse Gray code: index of codeword g in the q-bit Gray sequence.
constexpr std::uint32_t gray_inverse(std::uint32_t g, unsigned q) {
  const std::uint32_t mask = q >= 32 ? ~0u : ((1u << q) - 1u);
  g &= mask;
  std::uint32_t p = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) p ^= p >> shift;
  return p & mask;
}

/// Number of bits needed to index `n` items (n must be a power of two).
constexpr unsigned log2_exact(std::uint64_t n) {
  unsigned b = 0;
  while ((std::uint64_t(1) << b) < n) ++b;
  return b;
}

constexpr bool is_pow2(std::uint64_t n) { return n && !(n & (n - 1)); }

/// SPSA modular assignment: cluster grid index -> processor id.
///
/// The cluster grid has m^D clusters (m a power of two) and there are
/// p = 2^d processors (d divisible by D so the processor hypercube splits
/// evenly across axes, as in the paper's gray(i,d/2), gray(j,d/2)).
/// When m^D > p, each processor receives m^D / p clusters; the mapping
/// tiles the Gray-coded processor grid periodically so that adjacent
/// clusters still go to hypercube-adjacent processors.
template <std::size_t D>
struct GrayClusterMap {
  unsigned m_per_axis = 1;       ///< clusters per axis (power of two)
  unsigned procs_per_axis = 1;   ///< processors per axis (power of two)
  unsigned bits_per_axis = 0;    ///< log2(procs_per_axis)

  constexpr GrayClusterMap() = default;

  /// m: clusters per axis, p: total processor count (power of 2^D multiple).
  constexpr GrayClusterMap(unsigned m, unsigned p) : m_per_axis(m) {
    // Split p's bits as evenly as possible over the D axes.
    const unsigned d = log2_exact(p);
    unsigned base = d / static_cast<unsigned>(D);
    unsigned extra = d % static_cast<unsigned>(D);
    // Axis 0 gets the leftover bits; for the paper's square/cubic grids
    // extra == 0.
    bits_per_axis = base;
    procs_per_axis = 1u << base;
    extra_bits_ = extra;
  }

  /// Processor id for cluster grid coordinate g (one entry per axis).
  constexpr unsigned proc_of(const std::array<std::uint32_t, D>& g) const {
    unsigned id = 0;
    unsigned shift = 0;
    for (std::size_t a = 0; a < D; ++a) {
      unsigned bits = bits_per_axis + (a == 0 ? extra_bits_ : 0u);
      const std::uint32_t within = g[a] % (1u << bits);
      id |= gray(within, bits) << shift;
      shift += bits;
    }
    return id;
  }

  constexpr unsigned total_procs() const {
    return 1u << (bits_per_axis * static_cast<unsigned>(D) + extra_bits_);
  }

 private:
  unsigned extra_bits_ = 0;
};

/// Hamming distance between two processor ids = hop count on a hypercube.
constexpr unsigned hypercube_hops(unsigned a, unsigned b) {
  unsigned x = a ^ b, h = 0;
  while (x) {
    h += x & 1u;
    x >>= 1;
  }
  return h;
}

}  // namespace bh::geom
