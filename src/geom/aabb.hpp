// aabb.hpp -- axis-aligned boxes and the recursive 2^D subdivision that
// underlies quad/oct-trees and the paper's cluster grids.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <span>

#include "geom/vec.hpp"

namespace bh::geom {

/// Axis-aligned box given by its minimum corner and edge length (boxes in a
/// Barnes-Hut tree are always cubical: the root is the cubical hull of the
/// domain and children halve every edge).
template <std::size_t D, typename T = double>
struct Box {
  Vec<D, T> lo{};
  T edge{};  ///< edge length (same along every axis)

  constexpr Vec<D, T> center() const {
    Vec<D, T> c = lo;
    for (std::size_t i = 0; i < D; ++i) c[i] += edge / T(2);
    return c;
  }

  constexpr Vec<D, T> hi() const {
    Vec<D, T> h = lo;
    for (std::size_t i = 0; i < D; ++i) h[i] += edge;
    return h;
  }

  /// Half-open containment test: lo <= p < lo+edge on every axis. Half-open
  /// boxes make the 2^D children of a box a *partition*, so every particle
  /// lands in exactly one child.
  constexpr bool contains(const Vec<D, T>& p) const {
    for (std::size_t i = 0; i < D; ++i)
      if (p[i] < lo[i] || p[i] >= lo[i] + edge) return false;
    return true;
  }

  /// Index in [0, 2^D) of the child octant containing p; bit i of the result
  /// is set when p is in the upper half along axis i.
  constexpr unsigned octant_of(const Vec<D, T>& p) const {
    unsigned q = 0;
    const Vec<D, T> c = center();
    for (std::size_t i = 0; i < D; ++i)
      if (p[i] >= c[i]) q |= 1u << i;
    return q;
  }

  /// Child box for octant q (bit i of q selects the upper half on axis i).
  constexpr Box child(unsigned q) const {
    assert(q < (1u << D));
    Box b{lo, edge / T(2)};
    for (std::size_t i = 0; i < D; ++i)
      if (q & (1u << i)) b.lo[i] += b.edge;
    return b;
  }

  friend constexpr bool operator==(const Box&, const Box&) = default;
};

using Box2 = Box<2>;
using Box3 = Box<3>;

/// Smallest cubical box enclosing all points, inflated slightly so that the
/// half-open containment test holds for the maximal coordinates too.
template <std::size_t D, typename T>
Box<D, T> bounding_cube(std::span<const Vec<D, T>> pts) {
  Box<D, T> b;
  if (pts.empty()) {
    b.edge = T(1);
    return b;
  }
  Vec<D, T> mn = pts[0], mx = pts[0];
  for (const auto& p : pts) {
    mn = cmin(mn, p);
    mx = cmax(mx, p);
  }
  T edge{};
  for (std::size_t i = 0; i < D; ++i) edge = std::max(edge, mx[i] - mn[i]);
  if (edge <= T(0)) edge = T(1);
  // Inflate by 1 ulp-ish factor so points on the max face stay inside the
  // half-open box.
  edge *= T(1) + T(16) * std::numeric_limits<T>::epsilon();
  // Center the cube on the data.
  const T half = edge / T(2);
  for (std::size_t i = 0; i < D; ++i)
    b.lo[i] = (mn[i] + mx[i]) / T(2) - half;
  b.edge = edge;
  return b;
}

}  // namespace bh::geom
