// hilbert.hpp -- Peano-Hilbert ordering.
//
// Section 3.3.2 notes that SPDA can use "Morton ordering (or Peano-Hilbert
// ordering)" for assigning clusters to processors, and Section 3.3.3 cites
// Singh et al.'s observation that ordering the children of each tree node
// appropriately makes costzones partitions spatially contiguous. The Hilbert
// curve is the canonical such ordering; we provide 2-D and 3-D indices.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace bh::geom {

/// Hilbert index of 2-D grid point (x, y) on a 2^order x 2^order grid.
/// Classic Lam & Shapiro iterative algorithm.
constexpr std::uint64_t hilbert_index_2d(std::uint32_t x, std::uint32_t y,
                                         unsigned order) {
  std::uint64_t rx = 0, ry = 0, d = 0;
  for (std::uint64_t s = std::uint64_t(1) << (order - 1); s > 0; s >>= 1) {
    rx = (x & s) ? 1 : 0;
    ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s - 1 - x);
        y = static_cast<std::uint32_t>(s - 1 - y);
      }
      const std::uint32_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

namespace detail {

// 3-D Hilbert curve via state tables (Butz/Moore construction). State
// encodes the orientation of the curve within the current octant.
// hilbert3_order[state][zyx octant] = position along the curve;
// hilbert3_next[state][zyx octant] = child state.
inline constexpr std::uint8_t h3_order[12][8] = {
    {0, 1, 3, 2, 7, 6, 4, 5}, {0, 7, 1, 6, 3, 4, 2, 5},
    {0, 3, 7, 4, 1, 2, 6, 5}, {2, 3, 1, 0, 5, 4, 6, 7},
    {4, 3, 5, 2, 7, 0, 6, 1}, {6, 5, 1, 2, 7, 4, 0, 3},
    {4, 7, 3, 0, 5, 6, 2, 1}, {6, 7, 5, 4, 1, 0, 2, 3},
    {2, 5, 3, 4, 1, 6, 0, 7}, {2, 1, 5, 6, 3, 0, 4, 7},
    {4, 5, 7, 6, 3, 2, 0, 1}, {6, 1, 7, 0, 5, 2, 4, 3}};

inline constexpr std::uint8_t h3_next[12][8] = {
    {1, 2, 3, 2, 4, 5, 3, 5},    {2, 6, 0, 7, 8, 8, 0, 7},
    {0, 9, 10, 9, 1, 1, 11, 11}, {6, 0, 6, 11, 9, 0, 9, 8},
    {11, 11, 0, 7, 5, 9, 0, 7},  {4, 4, 8, 8, 0, 6, 10, 6},
    {5, 7, 5, 3, 1, 1, 11, 11},  {6, 1, 6, 10, 9, 4, 9, 10},
    {10, 3, 1, 1, 10, 3, 5, 9},  {4, 4, 8, 8, 2, 7, 2, 3},
    {7, 2, 11, 2, 7, 5, 8, 5},   {10, 3, 2, 6, 10, 3, 4, 4}};

}  // namespace detail

/// Hilbert index of 3-D grid point on a 2^order grid per axis.
constexpr std::uint64_t hilbert_index_3d(std::uint32_t x, std::uint32_t y,
                                         std::uint32_t z, unsigned order) {
  std::uint64_t d = 0;
  unsigned state = 0;
  for (int lvl = static_cast<int>(order) - 1; lvl >= 0; --lvl) {
    const unsigned oct = ((z >> lvl & 1u) << 2) | ((y >> lvl & 1u) << 1) |
                         (x >> lvl & 1u);
    d = (d << 3) | detail::h3_order[state][oct];
    state = detail::h3_next[state][oct];
  }
  return d;
}

/// Dimension-generic front end used by the decomposition code.
template <std::size_t D>
constexpr std::uint64_t hilbert_index(const std::array<std::uint32_t, D>& g,
                                      unsigned order) {
  if constexpr (D == 2)
    return hilbert_index_2d(g[0], g[1], order);
  else
    return hilbert_index_3d(g[0], g[1], g[2], order);
}

}  // namespace bh::geom
