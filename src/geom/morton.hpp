// morton.hpp -- Morton (Z-order) keys.
//
// The SPDA formulation (Section 3.3.2 of the paper) assigns clusters to
// processors along a Morton ordering of the cluster grid; Warren & Salmon's
// hashed octree (the data-shipping comparator, Section 4.2.3) keys tree nodes
// by the Morton code of their box. Both uses are served here.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#include "geom/aabb.hpp"
#include "geom/vec.hpp"

namespace bh::geom {

namespace detail {

/// Spread the low 21 bits of x so each lands every third bit (3-D interleave).
constexpr std::uint64_t spread3(std::uint64_t x) {
  x &= 0x1fffff;  // 21 bits
  x = (x | (x << 32)) & 0x001f00000000ffff;
  x = (x | (x << 16)) & 0x001f0000ff0000ff;
  x = (x | (x << 8)) & 0x100f00f00f00f00f;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3;
  x = (x | (x << 2)) & 0x1249249249249249;
  return x;
}

/// Inverse of spread3: compact every third bit into the low 21 bits.
constexpr std::uint64_t compact3(std::uint64_t x) {
  x &= 0x1249249249249249;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
  x = (x | (x >> 4)) & 0x100f00f00f00f00f;
  x = (x | (x >> 8)) & 0x001f0000ff0000ff;
  x = (x | (x >> 16)) & 0x001f00000000ffff;
  x = (x | (x >> 32)) & 0x1fffff;
  return x;
}

/// Spread the low 32 bits of x to every second bit (2-D interleave).
constexpr std::uint64_t spread2(std::uint64_t x) {
  x &= 0xffffffff;
  x = (x | (x << 16)) & 0x0000ffff0000ffff;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ff;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0f;
  x = (x | (x << 2)) & 0x3333333333333333;
  x = (x | (x << 1)) & 0x5555555555555555;
  return x;
}

constexpr std::uint64_t compact2(std::uint64_t x) {
  x &= 0x5555555555555555;
  x = (x | (x >> 1)) & 0x3333333333333333;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0f;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ff;
  x = (x | (x >> 8)) & 0x0000ffff0000ffff;
  x = (x | (x >> 16)) & 0xffffffff;
  return x;
}

}  // namespace detail

/// Maximum refinement level representable in a 64-bit *node* key (one
/// sentinel bit + D bits per level), which also bounds point Morton keys so
/// the two agree everywhere: 31 levels in 2-D, 21 in 3-D.
template <std::size_t D>
constexpr unsigned morton_max_level = (D == 2) ? 31 : 21;

/// Interleave D integer grid coordinates into a Morton key. Bit i of
/// coordinate axis a ends up at bit i*D + a, matching Box::octant_of's
/// convention (axis 0 is the least significant bit of an octant index).
template <std::size_t D>
constexpr std::uint64_t morton_encode(const std::array<std::uint64_t, D>& g) {
  if constexpr (D == 2)
    return detail::spread2(g[0]) | (detail::spread2(g[1]) << 1);
  else
    return detail::spread3(g[0]) | (detail::spread3(g[1]) << 1) |
           (detail::spread3(g[2]) << 2);
}

template <std::size_t D>
constexpr std::array<std::uint64_t, D> morton_decode(std::uint64_t key) {
  if constexpr (D == 2)
    return {detail::compact2(key), detail::compact2(key >> 1)};
  else
    return {detail::compact3(key), detail::compact3(key >> 1),
            detail::compact3(key >> 2)};
}

/// Quantize a point inside `root` onto a 2^level grid per axis.
template <std::size_t D, typename T>
constexpr std::array<std::uint64_t, D> quantize(const Vec<D, T>& p,
                                                const Box<D, T>& root,
                                                unsigned level) {
  const std::uint64_t n = std::uint64_t(1) << level;
  std::array<std::uint64_t, D> g{};
  for (std::size_t i = 0; i < D; ++i) {
    T t = (p[i] - root.lo[i]) / root.edge;  // in [0,1)
    if (t < T(0)) t = T(0);
    auto gi = static_cast<std::uint64_t>(t * T(n));
    if (gi >= n) gi = n - 1;
    g[i] = gi;
  }
  return g;
}

/// Morton key of a point at a given refinement level.
template <std::size_t D, typename T>
constexpr std::uint64_t morton_key(const Vec<D, T>& p, const Box<D, T>& root,
                                   unsigned level = morton_max_level<D>) {
  return morton_encode<D>(quantize(p, root, level));
}

/// Warren-Salmon style *node* key: the path from the root (one octant digit
/// per level) prefixed with a sentinel 1-bit so that keys of boxes at
/// different depths never collide. The root box has key 1.
template <std::size_t D>
struct NodeKey {
  std::uint64_t v = 1;

  constexpr NodeKey child(unsigned octant) const {
    return {(v << D) | octant};
  }
  constexpr NodeKey parent() const { return {v >> D}; }
  constexpr bool is_root() const { return v == 1; }

  constexpr unsigned level() const {
    unsigned lev = 0;
    for (std::uint64_t k = v; k > 1; k >>= D) ++lev;
    return lev;
  }

  /// True when this key is an ancestor of (or equal to) `other`.
  constexpr bool ancestor_of(NodeKey other) const {
    const unsigned la = level(), lb = other.level();
    if (la > lb) return false;
    return (other.v >> (D * (lb - la))) == v;
  }

  friend constexpr bool operator==(NodeKey, NodeKey) = default;
  friend constexpr auto operator<=>(NodeKey, NodeKey) = default;
};

/// Node key of the level-`level` box containing point p. The octant digits
/// of the path are exactly the Morton digits of the quantized point.
template <std::size_t D, typename T>
constexpr NodeKey<D> node_key_of(const Vec<D, T>& p, const Box<D, T>& root,
                                 unsigned level) {
  const std::uint64_t m = morton_key(p, root, level);
  return {(std::uint64_t(1) << (D * level)) | m};
}

/// Reconstruct the box identified by a node key, given the root box.
template <std::size_t D, typename T>
constexpr Box<D, T> box_of_key(NodeKey<D> key, const Box<D, T>& root) {
  // Extract octant digits from most significant to least.
  Box<D, T> b = root;
  const unsigned lev = key.level();
  for (unsigned l = lev; l > 0; --l) {
    const unsigned oct =
        static_cast<unsigned>((key.v >> (D * (l - 1))) & ((1u << D) - 1));
    b = b.child(oct);
  }
  return b;
}

}  // namespace bh::geom
