// pack.hpp -- the subtree-pack wire format of the async node cache
// (DESIGN.md section 14).
//
// The seed data-shipping engine answered one fetch with one node's children
// -- k levels of a remote subtree cost k round-trips, each a full modeled
// latency. A pack reply collapses that: the owner answers one request with a
// depth-/count-bounded breadth-first slice of the requested subtrees in a
// single message (ParaTreeT's MultiData idea). Each record is self-locating
// -- it carries its Morton node key, and geom::box_of_key reconstructs its
// box from the key and the root box alone -- so the receiver can absorb
// records in any order without parent-before-child constraints.
//
// Request wire ("bytes", mp::proto::kTagFetchPack):
//   u32 depth | span<u64> root keys
// Reply wire ("bytes", mp::proto::kTagNodePack):
//   span<u64> echoed root keys | u64 record count | per record:
//     NodeRecord | span<ParticleRecord> (leaf payload, empty for internal)
//     | span<double> (expansion coefficients, present when degree > 0)
//
// Frontier contract: a packed internal node either has *all* of its
// children's records in the same pack (kids_packed = 1) or none of them
// (kids_packed = 0, a frontier node a later request may re-root at). The
// children of a *requested root* are always packed regardless of the count
// budget: a reply that answered a miss without making the missed node
// expandable would make the requester re-send the identical fetch forever.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/morton.hpp"
#include "model/particle.hpp"
#include "mp/wire.hpp"
#include "parallel/branch.hpp"
#include "tree/bhtree.hpp"

namespace bh::par::cache {

/// Bounds of one pack reply. `depth` is measured below each requested root;
/// `max_nodes` caps the total records of the reply (the O(k^2) multipole
/// payload rides on every record, so an unbounded pack would trade the
/// latency win for a bandwidth loss).
struct PackLimits {
  unsigned depth = 3;
  unsigned max_nodes = 2048;
};

/// Fixed-size header of one packed node; variable payloads follow.
template <std::size_t D>
struct NodeRecord {
  std::uint64_t key = 0;  ///< NodeKey<D>::v -- locates box and parent
  double mass = 0.0;
  geom::Vec<D> com{};
  double rmax = 0.0;
  std::uint32_t count = 0;
  std::uint8_t is_leaf = 0;
  std::uint8_t child_mask = 0;   ///< which octants exist on the owner
  std::uint8_t kids_packed = 0;  ///< all children records are in this pack
  std::uint8_t pad_ = 0;
};

/// Client half of the request wire.
inline void write_pack_request(mp::ByteWriter& w, std::uint32_t depth,
                               std::span<const std::uint64_t> roots) {
  w.put(depth);
  w.put_span<std::uint64_t>(roots);
}

struct PackRequest {
  std::uint32_t depth = 0;
  std::vector<std::uint64_t> roots;
};

inline PackRequest read_pack_request(std::span<const std::byte> payload) {
  mp::ByteReader r(payload);
  PackRequest q;
  q.depth = r.get<std::uint32_t>();
  q.roots = r.get_vector<std::uint64_t>();
  return q;
}

/// Owner half: append the pack reply for `root_nodes` (indices into
/// `tree.nodes`, already resolved and validated by the caller) to `w`.
/// Returns the number of records packed. Breadth-first from the roots, so
/// the count budget is spent on the levels closest to where the requester
/// stalled.
template <std::size_t D>
std::uint64_t pack_subtrees(const tree::BhTree<D>& tree,
                            const model::ParticleSet<D>& ps,
                            std::span<const std::uint64_t> root_keys,
                            std::span<const std::int32_t> root_nodes,
                            PackLimits lim, mp::ByteWriter& w) {
  struct Item {
    std::int32_t ni;
    unsigned depth;
    std::uint8_t kids_packed = 0;
  };
  // The plan doubles as the BFS queue; records are emitted in plan order.
  std::vector<Item> plan;
  plan.reserve(root_nodes.size());
  for (const auto ni : root_nodes) plan.push_back({ni, 0});
  const std::size_t n_roots = plan.size();
  for (std::size_t qi = 0; qi < plan.size(); ++qi) {
    const auto& n = tree.nodes[static_cast<std::size_t>(plan[qi].ni)];
    if (n.is_leaf) continue;
    unsigned n_kids = 0;
    for (const auto c : n.child)
      if (c != tree::kNullNode) ++n_kids;
    const bool is_root = qi < n_roots;
    if (!is_root && plan[qi].depth >= lim.depth) continue;
    if (!is_root && plan.size() + n_kids > lim.max_nodes) continue;
    plan[qi].kids_packed = 1;
    for (const auto c : n.child)
      if (c != tree::kNullNode) plan.push_back({c, plan[qi].depth + 1});
  }

  w.put_span<std::uint64_t>(root_keys);
  w.put(static_cast<std::uint64_t>(plan.size()));
  const unsigned degree = tree.degree;
  const std::size_t stride = expansion_stride<D>(degree);
  std::vector<model::ParticleRecord<D>> recs;
  std::vector<double> coeffs(stride);
  for (const auto& item : plan) {
    const auto& n = tree.nodes[static_cast<std::size_t>(item.ni)];
    NodeRecord<D> rec;
    rec.key = n.key.v;
    rec.mass = n.mass;
    rec.com = n.com;
    rec.rmax = n.rmax;
    rec.count = n.count;
    rec.is_leaf = n.is_leaf ? 1 : 0;
    for (unsigned d = 0; d < (1u << D); ++d)
      if (n.child[d] != tree::kNullNode) rec.child_mask |= 1u << d;
    rec.kids_packed = item.kids_packed;
    w.put(rec);
    recs.clear();
    if (n.is_leaf) {
      recs.reserve(n.count);
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        recs.push_back(model::record_of(ps, tree.perm[s]));
    }
    w.put_span<model::ParticleRecord<D>>(recs);
    if (degree > 0) {
      // The multipole series is the payload whose size grows as O(k^2)
      // (Section 4.2.1); it travels once per record instead of once per
      // child-fetch round-trip.
      pack_expansion<D>(tree.expansions[static_cast<std::size_t>(item.ni)],
                        coeffs.data());
      w.put_span<double>(coeffs);
    }
  }
  return plan.size();
}

}  // namespace bh::par::cache
