// node_cache.hpp -- the per-rank software cache of remote tree nodes
// (DESIGN.md section 14).
//
// Warren & Salmon style: remote nodes are keyed by their Morton node keys in
// a hash table and kept for the remainder of the force phase. On top of the
// plain key -> node map this layer adds the async machinery the
// continuation-based traversal needs:
//
//  * request coalescing -- at most one in-flight fetch per key. The first
//    requester sends; later requesters attach their continuation to the
//    pending entry and suspend, sending nothing.
//  * suspend/resume bookkeeping -- each pending key carries the FIFO list of
//    suspended continuations to resume once the key's pack is absorbed.
//  * pack absorption -- decode a subtree-pack reply (cache/pack.hpp) into
//    the map. Records are self-locating (box from key + root box), so a pack
//    can be absorbed regardless of what is already cached; overlapping
//    records only ever *upgrade* an entry (children_fetched is sticky).
//
// Determinism: the pending and resolved tables are ordered maps iterated in
// key order, and waiter lists are appended in program order, so the resume
// schedule of a round is a pure function of the traversal -- never of the
// physical order replies surfaced in (the determinism argument for
// coalesced stamps, DESIGN.md section 14).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parallel/cache/pack.hpp"

namespace bh::par::cache {

/// One remote node materialized in the local cache ("hash function based on
/// Morton keys that map nodes of the tree into a memory").
template <std::size_t D>
struct CachedNode {
  double mass = 0.0;
  geom::Vec<D> com{};
  double rmax = 0.0;
  std::uint32_t count = 0;
  bool is_leaf = false;
  bool children_fetched = false;
  std::uint8_t child_mask = 0;  ///< which octants exist (after fetch)
  geom::Box<D> box{};
  int owner = -1;
  std::vector<model::ParticleRecord<D>> leaf_particles;
  multipole::Expansion<D> exp;
};

template <std::size_t D>
class NodeCache {
 public:
  /// Outcome of absorbing one pack reply.
  struct Absorbed {
    std::uint64_t records = 0;  ///< node records decoded into the map
    std::uint64_t resolved = 0; ///< pending keys this reply settled
  };

  // -- the key -> node map ---------------------------------------------------

  CachedNode<D>* find(std::uint64_t key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  CachedNode<D>& at(std::uint64_t key) { return map_.at(key); }

  void put(std::uint64_t key, CachedNode<D> c) {
    map_.insert_or_assign(key, std::move(c));
  }

  std::size_t size() const { return map_.size(); }

  // -- request coalescing ----------------------------------------------------

  /// Register continuation `waiter` as suspended on `key`. Returns true when
  /// this is the first request for the key -- the caller must send the fetch
  /// -- and false when an in-flight fetch already covers it (coalesced).
  bool request(std::uint64_t key, std::uint32_t waiter) {
    auto [it, fresh] = pending_.try_emplace(key);
    it->second.push_back(waiter);
    return fresh;
  }

  /// Register an in-flight fetch for `key` with no waiting continuation
  /// (a prefetch): traversals that touch the key before the pack lands
  /// coalesce onto it instead of re-requesting.
  void mark_pending(std::uint64_t key) { pending_.try_emplace(key); }

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }

  // -- pack absorption -------------------------------------------------------

  /// Decode one pack reply into the map. `root_box` locates every record's
  /// box from its key alone; `src` becomes the owner of every absorbed
  /// node. Echoed roots with pending waiters move to the resolved table.
  /// Throws std::out_of_range on a truncated payload (the caller converts
  /// that into a structured protocol abort).
  Absorbed absorb(std::span<const std::byte> payload, int src,
                  const geom::Box<D>& root_box, unsigned degree) {
    mp::ByteReader r(payload);
    const auto roots = r.get_vector<std::uint64_t>();
    const auto n_records = r.get<std::uint64_t>();
    const std::size_t stride = expansion_stride<D>(degree);
    Absorbed out;
    for (std::uint64_t i = 0; i < n_records; ++i) {
      const auto rec = r.get<NodeRecord<D>>();
      auto leaf = r.get_vector<model::ParticleRecord<D>>();
      CachedNode<D>& c = map_[rec.key];
      c.mass = rec.mass;
      c.com = rec.com;
      c.rmax = rec.rmax;
      c.count = rec.count;
      c.is_leaf = rec.is_leaf != 0;
      c.child_mask = rec.child_mask;
      // Sticky: a record at another pack's frontier must not downgrade an
      // entry whose children an earlier pack already delivered.
      c.children_fetched |= rec.is_leaf != 0 || rec.kids_packed != 0;
      c.box = geom::box_of_key(geom::NodeKey<D>{rec.key}, root_box);
      c.owner = src;
      c.leaf_particles = std::move(leaf);
      if (degree > 0) {
        const auto coeffs = r.get_vector<double>();
        c.exp = stride && coeffs.size() == stride
                    ? unpack_expansion<D>(coeffs.data(), degree, c.com,
                                          c.mass)
                    : multipole::Expansion<D>(degree, c.com);
      }
      ++out.records;
    }
    for (const auto root : roots) {
      auto it = pending_.find(root);
      if (it == pending_.end()) continue;
      resolved_[root] = std::move(it->second);
      pending_.erase(it);
      ++out.resolved;
    }
    return out;
  }

  // -- suspend/resume --------------------------------------------------------

  /// Hand over this round's resolved keys and their waiter lists, ascending
  /// in key, FIFO within a key (the deterministic resume schedule).
  std::map<std::uint64_t, std::vector<std::uint32_t>> take_resolved() {
    return std::exchange(resolved_, {});
  }

 private:
  std::unordered_map<std::uint64_t, CachedNode<D>> map_;
  /// In-flight fetches: key -> suspended continuations, in request order.
  std::map<std::uint64_t, std::vector<std::uint32_t>> pending_;
  /// Absorbed-but-not-yet-resumed keys of the current round.
  std::map<std::uint64_t, std::vector<std::uint32_t>> resolved_;
};

}  // namespace bh::par::cache
