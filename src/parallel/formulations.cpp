#include "parallel/formulations.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hpp"

namespace bh::par {

namespace {

/// Wire record for exchanging measured loads of owned clusters/branches.
struct LoadRecord {
  std::uint64_t index;
  std::uint64_t load;
};

/// Wire record for a located costzones boundary.
struct BoundaryRecord {
  std::uint32_t boundary;  ///< boundary index i (zone i starts here)
  std::uint64_t cell;      ///< max-refinement Morton cell
};

template <std::size_t D>
std::uint64_t cell_of(const geom::Vec<D>& p, const geom::Box<D>& domain) {
  return geom::morton_key(p, domain, geom::morton_max_level<D>);
}

template <std::size_t D>
constexpr std::uint64_t cell_limit() {
  return std::uint64_t(1) << (D * geom::morton_max_level<D>);
}

}  // namespace

template <std::size_t D>
ParallelSimulation<D>::ParallelSimulation(mp::Communicator& comm,
                                          geom::Box<D> domain,
                                          const StepOptions& opts)
    : comm_(comm), domain_(domain), opts_(opts) {
  if (opts_.scheme != Scheme::kDPDA) {
    grid_ = ClusterGrid<D>(domain_, opts_.clusters_per_axis);
    if (opts_.scheme == Scheme::kSPSA) {
      cluster_owner_ = spsa_assignment(grid_, comm_.size());
    } else {
      // First step: no load information yet; SPDA starts from an
      // equal-count Morton split of the clusters.
      std::vector<std::uint64_t> ones(grid_.count(), 1);
      cluster_owner_ = spda_assignment(grid_, ones, comm_.size(), opts_.curve);
    }
  }
}

template <std::size_t D>
void ParallelSimulation<D>::distribute(const model::ParticleSet<D>& global) {
  if (opts_.scheme == Scheme::kDPDA)
    distribute_costzones(global);
  else
    distribute_static(global);
}

template <std::size_t D>
void ParallelSimulation<D>::distribute_static(
    const model::ParticleSet<D>& global) {
  local_.clear();
  for (std::size_t i = 0; i < global.size(); ++i) {
    const auto c = grid_.cluster_of(global.pos[i]);
    if (cluster_owner_[c] == comm_.rank()) local_.append_from(global, i);
  }
  keys_.clear();
  key_loads_.clear();
  for (std::size_t c = 0; c < grid_.count(); ++c) {
    if (cluster_owner_[c] == comm_.rank()) {
      keys_.push_back(grid_.key_of(c));
      key_loads_.push_back(0);
    }
  }
}

template <std::size_t D>
void ParallelSimulation<D>::distribute_costzones(
    const model::ParticleSet<D>& global) {
  // Equal-count Morton split as the bootstrap decomposition; measured loads
  // refine it at the first rebalance().
  std::vector<std::uint64_t> cells(global.size());
  for (std::size_t i = 0; i < global.size(); ++i)
    cells[i] = cell_of(global.pos[i], domain_);
  std::vector<std::uint64_t> sorted = cells;
  std::sort(sorted.begin(), sorted.end());

  const int p = comm_.size();
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(p) + 1, 0);
  bounds[static_cast<std::size_t>(p)] = cell_limit<D>();
  for (int r = 1; r < p; ++r) {
    const std::size_t at = global.size() * static_cast<std::size_t>(r) /
                           static_cast<std::size_t>(p);
    bounds[static_cast<std::size_t>(r)] =
        sorted.empty() ? 0 : sorted[std::min(at, sorted.size() - 1)];
  }
  for (int r = 1; r <= p; ++r)  // enforce monotonicity
    bounds[static_cast<std::size_t>(r)] = std::max(
        bounds[static_cast<std::size_t>(r)], bounds[static_cast<std::size_t>(r - 1)]);

  zone_bounds_ = bounds;
  local_.clear();
  const auto lo = bounds[static_cast<std::size_t>(comm_.rank())];
  const auto hi = bounds[static_cast<std::size_t>(comm_.rank()) + 1];
  for (std::size_t i = 0; i < global.size(); ++i)
    if (cells[i] >= lo && cells[i] < hi) local_.append_from(global, i);
  adopt_zone_boundaries(bounds);
}

template <std::size_t D>
void ParallelSimulation<D>::adopt_zone_boundaries(
    const std::vector<std::uint64_t>& bounds) {
  zone_bounds_ = bounds;
  keys_.clear();
  key_loads_.clear();
  const auto lo = bounds[static_cast<std::size_t>(comm_.rank())];
  const auto hi = bounds[static_cast<std::size_t>(comm_.rank()) + 1];
  if (lo >= hi) return;  // empty zone
  const unsigned L = geom::morton_max_level<D>;
  const std::uint64_t base = std::uint64_t(1) << (D * L);
  const geom::NodeKey<D> first{base | lo};
  const geom::NodeKey<D> last{base | (hi - 1)};
  keys_ = cover_keys<D>(first, last);
  key_loads_.assign(keys_.size(), 0);
}

template <std::size_t D>
StepResult<D> ParallelSimulation<D>::step() {
  local_.zero_accumulators();
  dtree_ = build_dist_tree<D>(comm_, local_, keys_, key_loads_, domain_,
                              {.leaf_capacity = opts_.leaf_capacity,
                               .degree = opts_.degree,
                               .replicate_top = opts_.replicate_top,
                               .lookup = opts_.branch_lookup});

  comm_.phase_begin(kPhaseForce);
  ForceOptions fopts;
  fopts.alpha = opts_.alpha;
  fopts.kind = opts_.kind;
  fopts.softening = opts_.softening;
  fopts.bin_size = opts_.bin_size;
  fopts.bin_hard_cap = opts_.bin_hard_cap;
  fopts.record_load = true;
  fopts.traversal = opts_.traversal;
  fopts.leaf_size = static_cast<int>(opts_.leaf_capacity);
  const auto force = compute_forces_funcship<D>(comm_, dtree_, fopts);
  comm_.phase_end(kPhaseForce);

  // Keep the (re-ordered) particles with their accumulated fields.
  local_ = dtree_.particles;

  // Measure per-owned-branch loads for the next decomposition.
  StepResult<D> res;
  res.force = force;
  res.local_particles = local_.size();
  res.branches_total = dtree_.branches.size();
  key_loads_.assign(keys_.size(), 0);
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    const auto b = dtree_.directory.find(keys_[k]);
    assert(b >= 0);
    key_loads_[k] = dtree_.branch_load(static_cast<std::size_t>(b));
    res.local_load += key_loads_[k];
    ++res.branches_owned;
  }
  stepped_ = true;
  return res;
}

template <std::size_t D>
void ParallelSimulation<D>::rebalance() {
  if (!stepped_ || opts_.scheme == Scheme::kSPSA) return;
  comm_.phase_begin(kPhaseLoadBalance);
  if (opts_.scheme == Scheme::kSPDA)
    rebalance_spda();
  else
    rebalance_dpda();
  comm_.phase_end(kPhaseLoadBalance);
}

template <std::size_t D>
void ParallelSimulation<D>::rebalance_spda() {
  // Gather measured per-cluster loads ("After an iteration, a processor
  // computes the load in each of its clusters", Section 3.3.2).
  std::vector<LoadRecord> mine(keys_.size());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    // Owned keys are cluster keys; recover the linear cluster index.
    // Clusters are level-`grid.level()` boxes; decode the key's Morton path.
    const std::uint64_t path =
        keys_[k].v & ((std::uint64_t(1) << (D * grid_.level())) - 1);
    const auto g = geom::morton_decode<D>(path);
    std::size_t idx = 0;
    for (std::size_t a = D; a-- > 0;) idx = idx * grid_.per_axis() + g[a];
    mine[k] = {idx, key_loads_[k]};
  }
  const auto gathered = comm_.all_gatherv<LoadRecord>(mine);
  std::vector<std::uint64_t> loads(grid_.count(), 0);
  for (const auto& per_rank : gathered)
    for (const auto& lr : per_rank) loads[lr.index] = lr.load;

  cluster_owner_ =
      spda_assignment(grid_, loads, comm_.size(), opts_.curve);

  // Move particles to their clusters' new owners.
  std::vector<int> dest(local_.size());
  for (std::size_t i = 0; i < local_.size(); ++i)
    dest[i] = cluster_owner_[grid_.cluster_of(local_.pos[i])];
  exchange_by_owner(dest);

  keys_.clear();
  key_loads_.clear();
  for (std::size_t c = 0; c < grid_.count(); ++c) {
    if (cluster_owner_[c] == comm_.rank()) {
      keys_.push_back(grid_.key_of(c));
      key_loads_.push_back(loads[c]);
    }
  }
  if (auto* t = comm_.tracer())
    t->instant("lb.clusters_owned", keys_.size(), comm_.vtime());
}

template <std::size_t D>
void ParallelSimulation<D>::rebalance_dpda() {
  // 1. Gather per-branch loads; every rank holds the same sorted branch
  //    list, so (index, load) pairs suffice ("the loads at branch nodes are
  //    broadcast to all processors using a single all-to-all broadcast").
  std::vector<LoadRecord> mine;
  for (std::size_t b = 0; b < dtree_.branches.size(); ++b)
    if (dtree_.is_mine(b))
      mine.push_back({b, dtree_.branch_load(b)});
  const auto gathered = comm_.all_gatherv<LoadRecord>(mine);
  std::vector<std::uint64_t> loads(dtree_.branches.size(), 0);
  for (const auto& per_rank : gathered)
    for (const auto& lr : per_rank) loads[lr.index] = lr.load;

  std::uint64_t total = 0;
  for (auto l : loads) total += l;
  const int p = comm_.size();
  if (total == 0) return;  // nothing measured; keep the decomposition

  // 2. Prefix over branches; boundary i (i = 1..p-1) at load i * W / p.
  //    The rank owning the containing branch locates the boundary cell by
  //    an in-order walk of its subtree.
  std::vector<std::uint64_t> prefix(loads.size() + 1, 0);
  for (std::size_t b = 0; b < loads.size(); ++b)
    prefix[b + 1] = prefix[b] + loads[b];

  std::vector<BoundaryRecord> located;
  for (int i = 1; i < p; ++i) {
    // ceil-free target: zone i starts once cumulative load reaches target.
    const std::uint64_t target =
        (total * static_cast<std::uint64_t>(i)) / static_cast<std::uint64_t>(p);
    // Find the branch whose load interval contains `target`.
    const auto it =
        std::upper_bound(prefix.begin() + 1, prefix.end(), target);
    const auto b = static_cast<std::size_t>(it - prefix.begin() - 1);
    if (b >= dtree_.branches.size() || !dtree_.is_mine(b)) continue;

    // Walk the owned subtree in Morton (in-order) order, accumulating node
    // loads; the boundary falls at the particle where the running total
    // crosses (target - prefix[b]).
    const std::uint64_t within = target - prefix[b];
    std::uint64_t cum = 0;
    bool placed = false;
    std::uint64_t cell = 0;
    auto walk = [&](auto&& self, std::int32_t ni) -> void {
      if (placed) return;
      const auto& n = dtree_.tree.nodes[static_cast<std::size_t>(ni)];
      if (!n.is_leaf) {
        cum += n.load;  // interactions computed against this internal node
        for (auto c : n.child) {
          if (c != tree::kNullNode) self(self, c);
          if (placed) return;
        }
        return;
      }
      // Spread the leaf's load over its particles.
      const std::uint64_t per =
          n.count ? std::max<std::uint64_t>(1, n.load / n.count) : 0;
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        cum += per;
        if (cum >= within) {
          const auto pi = dtree_.tree.perm[s];
          cell = cell_of(dtree_.particles.pos[pi], domain_) + 1;
          placed = true;
          return;
        }
      }
    };
    walk(walk, dtree_.branch_node[b]);
    if (!placed) {
      // Crossing fell past the last particle: boundary at the end of the
      // branch's cell range.
      const auto key = geom::NodeKey<D>{dtree_.branches[b].key};
      const unsigned L = geom::morton_max_level<D>;
      const unsigned lev = key.level();
      const std::uint64_t path =
          key.v & ((std::uint64_t(1) << (D * lev)) - 1);
      cell = (path + 1) << (D * (L - lev));
    }
    located.push_back({static_cast<std::uint32_t>(i), cell});
  }

  // 3. Assemble the global boundary list.
  const auto all_located = comm_.all_gatherv<BoundaryRecord>(located);
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(p) + 1, 0);
  bounds[static_cast<std::size_t>(p)] = cell_limit<D>();
  for (const auto& per_rank : all_located)
    for (const auto& br : per_rank) bounds[br.boundary] = br.cell;
  for (int r = 1; r <= p; ++r)
    bounds[static_cast<std::size_t>(r)] =
        std::max(bounds[static_cast<std::size_t>(r)],
                 bounds[static_cast<std::size_t>(r - 1)]);

  // 4. Ship particles to their zones (single all-to-all personalized
  //    communication) and adopt the new covering subtrees.
  std::vector<int> dest(local_.size());
  for (std::size_t i = 0; i < local_.size(); ++i) {
    const auto c = cell_of(local_.pos[i], domain_);
    const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), c);
    dest[i] = static_cast<int>(it - bounds.begin() - 1);
    dest[i] = std::min(dest[i], p - 1);
  }
  if (auto* t = comm_.tracer())
    t->instant("lb.boundaries_located", located.size(), comm_.vtime());
  exchange_by_owner(dest);
  adopt_zone_boundaries(bounds);
}

template <std::size_t D>
void ParallelSimulation<D>::migrate() {
  const int p = comm_.size();
  std::vector<int> dest(local_.size());
  if (opts_.scheme == Scheme::kDPDA) {
    for (std::size_t i = 0; i < local_.size(); ++i) {
      const auto c = cell_of(local_.pos[i], domain_);
      const auto it =
          std::upper_bound(zone_bounds_.begin() + 1, zone_bounds_.end(), c);
      dest[i] = std::min(static_cast<int>(it - zone_bounds_.begin() - 1),
                         p - 1);
    }
  } else {
    for (std::size_t i = 0; i < local_.size(); ++i)
      dest[i] = cluster_owner_[grid_.cluster_of(local_.pos[i])];
  }
  exchange_by_owner(dest);
}

template <std::size_t D>
void ParallelSimulation<D>::exchange_by_owner(
    const std::vector<int>& dest_of_local) {
  std::vector<std::vector<model::ParticleRecord<D>>> outbox(
      static_cast<std::size_t>(comm_.size()));
  for (std::size_t i = 0; i < local_.size(); ++i)
    outbox[static_cast<std::size_t>(dest_of_local[i])].push_back(
        model::record_of(local_, i));
  if (auto* t = comm_.tracer()) {
    std::size_t moved = 0;
    for (int r = 0; r < comm_.size(); ++r)
      if (r != comm_.rank()) moved += outbox[static_cast<std::size_t>(r)].size();
    t->instant("lb.particles_migrated", moved, comm_.vtime());
  }
  const auto inbox = comm_.all_to_all(outbox);
  local_.clear();
  for (const auto& per_rank : inbox)
    for (const auto& rec : per_rank) model::push_record(local_, rec);
}

template <std::size_t D>
std::vector<double> ParallelSimulation<D>::gather_potentials() const {
  struct IdPot {
    std::uint64_t id;
    double pot;
  };
  std::vector<IdPot> mine(local_.size());
  for (std::size_t i = 0; i < local_.size(); ++i)
    mine[i] = {local_.id[i], local_.potential[i]};
  const auto all = comm_.all_gatherv<IdPot>(mine);
  std::size_t n = 0;
  for (const auto& v : all) n += v.size();
  std::vector<double> out(n, 0.0);
  for (const auto& v : all)
    for (const auto& ip : v) out.at(ip.id) = ip.pot;
  return out;
}

template <std::size_t D>
std::vector<geom::Vec<D>> ParallelSimulation<D>::gather_accelerations()
    const {
  struct IdAcc {
    std::uint64_t id;
    geom::Vec<D> acc;
  };
  std::vector<IdAcc> mine(local_.size());
  for (std::size_t i = 0; i < local_.size(); ++i)
    mine[i] = {local_.id[i], local_.acc[i]};
  const auto all = comm_.all_gatherv<IdAcc>(mine);
  std::size_t n = 0;
  for (const auto& v : all) n += v.size();
  std::vector<geom::Vec<D>> out(n);
  for (const auto& v : all)
    for (const auto& ia : v) out.at(ia.id) = ia.acc;
  return out;
}

template class ParallelSimulation<2>;
template class ParallelSimulation<3>;

}  // namespace bh::par
