// funcship.hpp -- the function-shipping force phase (Section 3.2).
//
// When a particle's traversal halts at a remote branch node, the particle's
// *coordinates* are shipped to the processor that owns the branch; that
// processor computes the interaction of the entire subtree with the particle
// and ships the accumulated potential/acceleration back. Coordinates are
// batched into fixed-size bins (the paper uses ~100 particles) to amortize
// start-up latency, and at most one bin may be outstanding per
// source-destination pair -- when a second bin fills first, the sender must
// stop local work and service remote requests (flow control + working-set
// bound, Sections 3.2 and 4.2.4).
#pragma once

#include <cstdint>

#include "mp/protocol.hpp"
#include "mp/runtime.hpp"
#include "parallel/dtree.hpp"

namespace bh::par {

// Message tags of the force phase live in the central protocol registry:
// mp::proto::kTagFuncRequest / kTagFuncReply (mp/protocol.hpp).

/// Remote-node cache mode of the data-shipping engine (DESIGN.md section
/// 14): the async continuation-based cache with request coalescing and
/// subtree-pack replies (default), or the blocking one-fetch-at-a-time RPC
/// retained as its parity oracle (--node-cache sync).
enum class NodeCacheMode : std::uint8_t { kSync, kAsync };

struct ForceOptions {
  double alpha = 0.67;
  tree::FieldKind kind = tree::FieldKind::kBoth;
  double softening = 0.0;
  /// Particles per bin before it is shipped (paper: "we typically collect
  /// 100 particles before communicating them").
  int bin_size = 100;
  /// Working-set bound (Section 4.2.4): maximum items buffered per
  /// destination -- open bin plus sealed-but-unshipped bins -- before the
  /// rank must stop local work and serve remote requests. <= 0 selects the
  /// default of ship::kDefaultHardCapBins (4) * bin_size, the constant
  /// previously hard-coded in the engine.
  int bin_hard_cap = 0;
  /// Record per-node interaction loads (needed by SPDA/DPDA balancing).
  bool record_load = true;
  /// Poll for incoming work every this many local traversals.
  int poll_interval = 16;
  /// Shared-counter id used for the termination vote.
  int done_counter = 0;
  /// Force-phase traversal: the blocked sort-then-interact pipeline
  /// (default) or the per-particle walker kept as its parity oracle. Both
  /// replay the identical virtual-time schedule (DESIGN.md section 13).
  tree::TraversalMode traversal = tree::TraversalMode::kBlocked;
  /// Leaf bucket size the tree was built with; caps the target-block width
  /// at min(leaf_size, multipole::kBlockWidth). <= 0 uses the full block
  /// width.
  int leaf_size = 0;
  /// Data-shipping only: remote-node cache mode (--node-cache sync|async).
  NodeCacheMode node_cache = NodeCacheMode::kAsync;
  /// Data-shipping only: subtree-pack depth below a missed node (clamped to
  /// >= 1 -- a reply that left the missed node unexpandable would make the
  /// requester re-send the identical fetch forever).
  int pack_depth = 3;
  /// Data-shipping only: top-tree prefetch depth below each remote branch
  /// node, requested in bulk (one message per remote owner) before the
  /// traversal starts. 0 disables the prefetch.
  int prefetch_depth = 2;
  /// Record cap per pack reply (bandwidth guard: the O(k^2) multipole
  /// payload rides on every record). Requested roots' children are always
  /// packed regardless.
  int pack_max_nodes = 2048;
};

/// Per-rank outcome of the force phase.
template <std::size_t D>
struct ForceResult {
  model::WorkCounter local_work;    ///< traversals of this rank's particles
  model::WorkCounter shipped_work;  ///< work served for other ranks
  std::uint64_t items_shipped = 0;  ///< particle-coordinates sent away
  std::uint64_t items_served = 0;   ///< shipped particles processed here
  std::uint64_t bins_sent = 0;
  std::uint64_t stalls = 0;  ///< times a full bin had to wait (flow control)
};

/// Run the function-shipping force phase over a built distributed tree.
/// Fills dt.particles' accumulators (per opts.kind) and, when
/// opts.record_load, the per-node load counters used by the next step's
/// load balancing. Collective: every rank must call it.
template <std::size_t D>
ForceResult<D> compute_forces_funcship(mp::Communicator& comm,
                                       DistTree<D>& dt,
                                       const ForceOptions& opts);

}  // namespace bh::par
