// decomposition.hpp -- domain decomposition and processor assignment.
//
// The paper's three formulations differ exactly here (Section 3.3):
//  * SPSA: static r = m^D cluster grid, Gray-code modular assignment.
//  * SPDA: the same static grid, but clusters are assigned to processors in
//    contiguous runs of the Morton ordering, with run boundaries chosen from
//    measured per-cluster load after each time-step.
//  * DPDA: no grid at all -- the global tree itself is split by interaction
//    counts (an efficient message-passing Costzones), producing per-rank
//    Morton key ranges whose covering subtrees become the branch nodes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/gray.hpp"
#include "geom/hilbert.hpp"
#include "geom/morton.hpp"
#include "model/particle.hpp"

namespace bh::par {

using geom::Box;
using geom::NodeKey;
using geom::Vec;

/// The static r = m^D cluster grid used by SPSA and SPDA. `m` must be a
/// power of two so that every cluster is a node of the global tree.
template <std::size_t D>
class ClusterGrid {
 public:
  ClusterGrid() = default;
  ClusterGrid(Box<D> domain, unsigned m_per_axis);

  unsigned per_axis() const { return m_; }
  unsigned level() const { return level_; }  ///< tree level of clusters
  std::size_t count() const { return total_; }
  const Box<D>& domain() const { return domain_; }

  /// Cluster (row-major linear) index containing a point.
  std::size_t cluster_of(const Vec<D>& p) const;

  /// Grid coordinate of a linear index.
  std::array<std::uint32_t, D> coord_of(std::size_t idx) const;

  /// Tree node key of cluster `idx` (clusters are level-`level()` boxes).
  NodeKey<D> key_of(std::size_t idx) const;

  /// Morton number of cluster `idx` (position in the Z-order of the grid).
  std::uint64_t morton_of(std::size_t idx) const;

  /// Hilbert index of cluster `idx` (the Peano-Hilbert alternative the
  /// paper mentions for SPDA).
  std::uint64_t hilbert_of(std::size_t idx) const;

  Box<D> box_of(std::size_t idx) const;

 private:
  Box<D> domain_{};
  unsigned m_ = 1;
  unsigned level_ = 0;
  std::size_t total_ = 1;
};

/// Space-filling-curve choice for SPDA cluster ordering.
enum class CurveKind : std::uint8_t { kMorton, kHilbert };

/// SPSA: map every cluster to a processor with the Gray-code modular
/// assignment (Section 3.3.1). Returns owner[cluster_index].
template <std::size_t D>
std::vector<int> spsa_assignment(const ClusterGrid<D>& grid, int nprocs);

/// SPDA: clusters sorted along a space-filling curve, then cut into p
/// contiguous runs of approximately equal load (Section 3.3.2: processors
/// import/export clusters across Morton-neighbors until each holds ~W/p).
/// `loads[c]` is the measured load of cluster c from the previous step (use
/// all-ones for the first step). Returns owner[cluster_index].
template <std::size_t D>
std::vector<int> spda_assignment(const ClusterGrid<D>& grid,
                                 std::span<const std::uint64_t> loads,
                                 int nprocs,
                                 CurveKind curve = CurveKind::kMorton);

/// Greedy balanced cut of an ordered load sequence into p contiguous runs:
/// boundaries at multiples of W/p (the costzones rule). Returns, for each
/// run r, the first index of run r; size p+1 with sentinel at the end.
std::vector<std::size_t> balanced_cuts(std::span<const std::uint64_t> loads,
                                       int nprocs);

/// Load-imbalance ratio: max over processors of (owned load) / (W / p).
double imbalance(std::span<const std::uint64_t> loads,
                 std::span<const int> owner, int nprocs);

/// Minimal set of tree-node keys covering the Morton key range
/// [first, last] at `level` granularity -- the maximal subtrees fully inside
/// a costzones zone. `first`/`last` are *node keys at max refinement level*;
/// the result keys have varying levels (coarse in the middle of the range,
/// fine at its edges).
template <std::size_t D>
std::vector<NodeKey<D>> cover_keys(NodeKey<D> first, NodeKey<D> last);

}  // namespace bh::par
