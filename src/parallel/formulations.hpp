// formulations.hpp -- the paper's three parallel formulations, as a driver
// that owns a rank's particles across time-steps:
//
//  * SPSA (Section 3.3.1): static cluster grid, Gray-code modular
//    assignment, no load balancing (balance comes from scatter).
//  * SPDA (Section 3.3.2): static cluster grid, clusters re-assigned along
//    the Morton (or Peano-Hilbert) ordering after every step using measured
//    per-cluster loads.
//  * DPDA (Section 3.3.3): dynamic costzones partition of the global tree
//    by recorded interaction counts; zones are Morton ranges of the domain
//    whose covering subtrees become the branch nodes.
//
// All three share the distributed tree construction and the
// function-shipping force engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mp/runtime.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/dtree.hpp"
#include "parallel/funcship.hpp"

namespace bh::par {

enum class Scheme : std::uint8_t { kSPSA, kSPDA, kDPDA };

struct StepOptions {
  Scheme scheme = Scheme::kSPDA;
  /// Clusters per axis for the static grid (SPSA/SPDA); power of two.
  unsigned clusters_per_axis = 8;
  CurveKind curve = CurveKind::kMorton;  ///< SPDA ordering curve
  double alpha = 0.67;
  unsigned degree = 0;
  unsigned leaf_capacity = 8;
  tree::FieldKind kind = tree::FieldKind::kBoth;
  double softening = 0.0;
  int bin_size = 100;
  /// Per-destination buffered-item cap for the force phase; <= 0 selects
  /// the engine default (see ForceOptions::bin_hard_cap).
  int bin_hard_cap = 0;
  bool replicate_top = true;
  LookupKind branch_lookup = LookupKind::kHash;
  /// Force-phase traversal (see ForceOptions::traversal); leaf_capacity
  /// doubles as the blocked pipeline's leaf bucket / block-width cap.
  tree::TraversalMode traversal = tree::TraversalMode::kBlocked;
};

/// Per-step, per-rank outcome (phase virtual times live in the
/// Communicator's RankStats; aggregate after run_spmd).
template <std::size_t D>
struct StepResult {
  ForceResult<D> force;
  std::size_t local_particles = 0;
  std::size_t branches_total = 0;
  std::size_t branches_owned = 0;
  std::uint64_t local_load = 0;  ///< node loads recorded on this rank
};

/// One rank's view of a multi-step parallel Barnes-Hut simulation.
template <std::size_t D>
class ParallelSimulation {
 public:
  ParallelSimulation(mp::Communicator& comm, geom::Box<D> domain,
                     const StepOptions& opts);

  /// Take ownership of this rank's share of a (replicated) global particle
  /// set according to the scheme's initial decomposition. Collective.
  void distribute(const model::ParticleSet<D>& global);

  /// Build the distributed tree and run the force phase. Collective.
  /// Accumulators of the local particles are zeroed first.
  StepResult<D> step();

  /// Re-balance ownership using the loads recorded by the last step()
  /// and move particles accordingly (no-op for SPSA). Collective.
  void rebalance();

  /// Re-home particles that moved out of their owners' subdomains during
  /// time integration, keeping the current ownership map ("there is a
  /// significant exchange of particles between processors" in early
  /// iterations, Section 5.1). Collective.
  void migrate();

  /// Local particles (valid after distribute/step/rebalance).
  model::ParticleSet<D>& particles() { return local_; }
  const model::ParticleSet<D>& particles() const { return local_; }

  /// Distributed tree from the last step().
  const DistTree<D>& dist_tree() const { return dtree_; }

  /// Gather a global field vector indexed by particle id. Collective;
  /// every rank returns the full vector (size = total particle count).
  std::vector<double> gather_potentials() const;
  std::vector<Vec<D>> gather_accelerations() const;

  const std::vector<geom::NodeKey<D>>& owned_keys() const { return keys_; }

 private:
  void distribute_static(const model::ParticleSet<D>& global);
  void distribute_costzones(const model::ParticleSet<D>& global);
  void rebalance_spda();
  void rebalance_dpda();
  void exchange_by_owner(const std::vector<int>& dest_of_local);
  void adopt_zone_boundaries(const std::vector<std::uint64_t>& boundaries);

  mp::Communicator& comm_;
  geom::Box<D> domain_;
  StepOptions opts_;
  ClusterGrid<D> grid_;                    // SPSA / SPDA
  std::vector<int> cluster_owner_;         // SPSA / SPDA (size r)
  std::vector<std::uint64_t> zone_bounds_; // DPDA (size p+1, morton cells)
  model::ParticleSet<D> local_;
  std::vector<geom::NodeKey<D>> keys_;     // owned branch keys
  std::vector<std::uint64_t> key_loads_;   // last step's load per owned key
  DistTree<D> dtree_;
  bool stepped_ = false;
};

}  // namespace bh::par
