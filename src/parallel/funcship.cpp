#include "parallel/funcship.hpp"

#include <cassert>
#include <thread>

#include "obs/trace.hpp"

namespace bh::par {

namespace {

/// One shipped particle: coordinates + the branch it must interact with +
/// the requester's slot for routing the answer back. "All of this
/// information, the particle coordinates and the key, are placed in a bin
/// meant for the remote processor." (Section 3.2)
template <std::size_t D>
struct ShipItem {
  Vec<D> pos;
  std::uint64_t branch_key;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

/// One computed answer: the accumulated field of the entire remote subtree.
template <std::size_t D>
struct ReplyItem {
  double potential;
  Vec<D> acc;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

template <std::size_t D>
class Engine {
 public:
  Engine(mp::Communicator& comm, DistTree<D>& dt, const ForceOptions& opts)
      : comm_(comm), dt_(dt), opts_(opts), bins_(comm.size()),
        outstanding_(comm.size(), 0) {
    topts_.alpha = opts.alpha;
    topts_.softening = opts.softening;
    topts_.kind = opts.kind;
    topts_.use_expansions = dt.tree.has_expansions();
    topts_.record_load = opts.record_load;
    if (auto* t = comm_.tracer()) {
      t->name_tag(kTagRequest, "funcship.request");
      t->name_tag(kTagReply, "funcship.reply");
    }
  }

  ForceResult<D> run() {
    auto& ps = dt_.particles;
    auto& tree = dt_.tree;
    std::vector<tree::RemoteHit<D>> hits;
    int since_poll = 0;

    for (std::uint32_t s = 0; s < tree.perm.size(); ++s) {
      const auto pi = tree.perm[s];
      hits.clear();
      auto r = tree::evaluate_partial(tree, ps, 0, ps.pos[pi], ps.id[pi],
                                      topts_, hits,
                                      opts_.record_load ? &tree : nullptr);
      apply(pi, r.field);
      result_.local_work += r.work;
      comm_.advance_flops(r.work.flops());

      for (const auto& h : hits) {
        assert(h.owner != comm_.rank());
        auto& bin = bins_[static_cast<std::size_t>(h.owner)];
        bin.push_back(ShipItem<D>{ps.pos[pi], h.key.v, pi, 0});
        ++pending_;
        ++result_.items_shipped;
        if (static_cast<int>(bin.size()) >= opts_.bin_size)
          flush(h.owner, /*may_defer=*/true);
      }
      if (++since_poll >= opts_.poll_interval) {
        poll();
        since_poll = 0;
      }
    }

    // Flush partial bins.
    for (int d = 0; d < comm_.size(); ++d)
      if (!bins_[static_cast<std::size_t>(d)].empty()) flush(d);

    // Wait for all our answers while serving everyone else. From here on
    // the rank has no local work left, so reply arrivals are genuine waits.
    while (pending_ > 0) {
      if (!poll(/*blocking_on_reply=*/true)) std::this_thread::yield();
    }
    // All asynchronously absorbed data must have arrived by now.
    comm_.advance_to(horizon_);

    // Monotone termination vote: once a rank is done it only *serves*; it
    // can never create new requests, so the counter is safe.
    auto& done = comm_.shared_counter(opts_.done_counter);
    done.fetch_add(1);
    while (done.load() < comm_.size()) {
      if (!poll(true)) std::this_thread::yield();
    }
    // Drain any requests that arrived before the last rank voted.
    while (poll()) {
    }
    comm_.barrier();
    done.store(0);  // reset for the next phase (post-barrier: all passed)
    comm_.barrier();
    return result_;
  }

 private:
  void apply(std::uint32_t pi, const multipole::FieldSample<D>& f) {
    auto& ps = dt_.particles;
    if (opts_.kind != tree::FieldKind::kPotential) ps.acc[pi] += f.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[pi] += f.potential;
  }

  /// Ship the bin for `dst`, respecting the one-outstanding-bin rule:
  /// "if a second bin destined for processor j fills up ... processor i
  /// must stop processing local nodes and process outstanding nodes
  /// received from other processors."
  ///
  /// With may_defer, a full bin whose predecessor is still outstanding is
  /// left to grow (shipped from absorb() when the ack arrives) and the rank
  /// keeps traversing other particles; it truly blocks -- stopping local
  /// work to serve remote work -- only at the hard memory cap that keeps
  /// bins fixed-size (the working-set bound of Section 4.2.4).
  void flush(int dst, bool may_defer = false) {
    auto& bin = bins_[static_cast<std::size_t>(dst)];
    if (bin.empty()) return;
    if (outstanding_[static_cast<std::size_t>(dst)] >= 1) {
      const int hard_cap = 4 * opts_.bin_size;
      if (may_defer && static_cast<int>(bin.size()) < hard_cap) return;
      ++result_.stalls;
      if (auto* t = comm_.tracer())
        t->instant("funcship.stall", bin.size(), comm_.vtime());
      while (outstanding_[static_cast<std::size_t>(dst)] >= 1) {
        if (!poll(/*blocking_on_reply=*/true)) std::this_thread::yield();
      }
      // absorb() runs inside that poll and may have flushed this very bin
      // reentrantly (deferred-bin path); shipping the now-empty bin would
      // produce an empty reply, which carries no items, decrements nothing,
      // and can therefore outlive the termination vote as a stray message.
      if (bin.empty()) return;
    }
    comm_.send<ShipItem<D>>(dst, kTagRequest, bin);
    ++outstanding_[static_cast<std::size_t>(dst)];
    ++result_.bins_sent;
    bin.clear();
  }

  /// Service one incoming message if any; returns true when progress was
  /// made. Requests pin the clock to their arrival (work cannot be served
  /// before it arrives). Replies are pure data: while the rank still has
  /// local work they are absorbed with overlap (only the *data horizon* is
  /// recorded); once the rank is blocked -- a flow-control stall or the
  /// final drain -- a reply arrival is a genuine wait and advances the
  /// clock.
  bool poll(bool blocking_on_reply = false) {
    auto m = comm_.try_recv(mp::kAnySource, mp::kAnyTag,
                            /*advance_clock=*/false);
    if (!m) return false;
    const double arr = comm_.arrival_time(*m);
    if (m->tag == kTagRequest) {
      serve(*m);
    } else {
      if (blocking_on_reply)
        comm_.advance_to(arr);
      else
        horizon_ = std::max(horizon_, arr);
      absorb(*m);
    }
    return true;
  }

  /// Compute the shipped interactions: each item interacts with the entire
  /// subtree rooted at the named branch node -- all of which is local here.
  void serve(const mp::Message& m) {
    const auto items = mp::Communicator::unpack<ShipItem<D>>(m);
    // Service time accrues on this rank's clock (it is real work), but the
    // reply is stamped no earlier than "request arrival + service time":
    // on the real machine the request is handled at the owner's next poll,
    // interleaved with -- not ahead of -- its local traversals.
    const double arr = comm_.arrival_time(m);
    const double t0 = comm_.vtime();
    std::vector<ReplyItem<D>> replies;
    replies.reserve(items.size());
    for (const auto& it : items) {
      const auto b = dt_.directory.find(geom::NodeKey<D>{it.branch_key});
      if (b < 0 || !dt_.is_mine(static_cast<std::size_t>(b)))
        throw std::logic_error("shipped work for a branch not owned here");
      const auto node = dt_.branch_node[static_cast<std::size_t>(b)];
      auto r = tree::evaluate_subtree(
          dt_.tree, dt_.particles, node, it.pos, tree::kNoSelf, topts_,
          opts_.record_load ? &dt_.tree : nullptr);
      result_.shipped_work += r.work;
      comm_.advance_flops(r.work.flops());
      replies.push_back(
          ReplyItem<D>{r.field.potential, r.field.acc, it.slot, 0});
      ++result_.items_served;
    }
    const double service = comm_.vtime() - t0;
    if (auto* t = comm_.tracer())
      t->instant("funcship.serve", items.size(), comm_.vtime());
    serve_frontier_ = std::max(serve_frontier_, arr) + service;
    comm_.send_stamped<ReplyItem<D>>(m.src, kTagReply, replies,
                                     serve_frontier_);
  }

  /// Integrate answers; the reply also acknowledges the bin (flow control).
  void absorb(const mp::Message& m) {
    const auto items = mp::Communicator::unpack<ReplyItem<D>>(m);
    for (const auto& it : items) {
      multipole::FieldSample<D> f{it.potential, it.acc};
      apply(it.slot, f);
    }
    pending_ -= static_cast<std::int64_t>(items.size());
    assert(pending_ >= 0);
    --outstanding_[static_cast<std::size_t>(m.src)];
    assert(outstanding_[static_cast<std::size_t>(m.src)] >= 0);
    // A deferred bin for this destination can ship now.
    if (static_cast<int>(bins_[static_cast<std::size_t>(m.src)].size()) >=
        opts_.bin_size)
      flush(m.src);
  }

  mp::Communicator& comm_;
  DistTree<D>& dt_;
  ForceOptions opts_;
  tree::TraversalOptions topts_;
  std::vector<std::vector<ShipItem<D>>> bins_;
  std::vector<int> outstanding_;
  std::int64_t pending_ = 0;
  double horizon_ = 0.0;  ///< latest async data arrival (virtual time)
  double serve_frontier_ = 0.0;  ///< service pipeline clock (see serve())
  ForceResult<D> result_;
};

}  // namespace

template <std::size_t D>
ForceResult<D> compute_forces_funcship(mp::Communicator& comm,
                                       DistTree<D>& dt,
                                       const ForceOptions& opts) {
  Engine<D> e(comm, dt, opts);
  return e.run();
}

template ForceResult<2> compute_forces_funcship<2>(mp::Communicator&,
                                                   DistTree<2>&,
                                                   const ForceOptions&);
template ForceResult<3> compute_forces_funcship<3>(mp::Communicator&,
                                                   DistTree<3>&,
                                                   const ForceOptions&);

}  // namespace bh::par
