#include "parallel/funcship.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/prof/prof.hpp"
#include "obs/trace.hpp"
#include "parallel/ship/binset.hpp"
#include "parallel/ship/progress.hpp"
#include "parallel/ship/termination.hpp"

namespace bh::par {

namespace proto = bh::mp::proto;

namespace {

/// One shipped particle: coordinates + the branch it must interact with +
/// the requester's slot for routing the answer back. "All of this
/// information, the particle coordinates and the key, are placed in a bin
/// meant for the remote processor." (Section 3.2)
template <std::size_t D>
struct ShipItem {
  Vec<D> pos;
  std::uint64_t branch_key;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

/// One computed answer: the accumulated field of the entire remote subtree.
template <std::size_t D>
struct ReplyItem {
  double potential;
  Vec<D> acc;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

/// Function-shipping engine on the deterministic ship substrate
/// (parallel/ship/): BinSet owns the bin/flow-control/working-set policy,
/// Progress owns ordered draining, per-source reply lanes and the service
/// fold, Termination owns the monotone vote. Everything that feeds virtual
/// time -- bin contents, seal charges, ship stamps, reply stamps, stall
/// waits, the service fold -- is a pure function of the traversal and the
/// machine model, so two runs with the same seed produce bit-identical
/// modeled times (DESIGN.md section 9).
template <std::size_t D>
class Engine {
 public:
  Engine(mp::Communicator& comm, DistTree<D>& dt, const ForceOptions& opts)
      : comm_(comm), dt_(dt), opts_(opts),
        bins_(static_cast<std::size_t>(comm.size()), opts.bin_size,
              opts.bin_hard_cap),
        progress_(comm),
        ack_arr_(static_cast<std::size_t>(comm.size()), 0.0),
        ack_pending_(static_cast<std::size_t>(comm.size()), 0) {
    topts_.alpha = opts.alpha;
    topts_.softening = opts.softening;
    topts_.kind = opts.kind;
    topts_.use_expansions = dt.tree.has_expansions();
    topts_.record_load = opts.record_load;
    topts_.mode = opts.traversal;
    if (opts_.traversal == tree::TraversalMode::kBlocked) {
      // One SoA gather shared by the local loop and the serve path. Two
      // evaluators: a serve can interrupt the local loop at a poll point
      // while the current block's results are still being folded, so the
      // two paths must not share scratch state.
      src_.gather(dt_.tree, dt_.particles);
      local_eval_.emplace(dt_.tree, dt_.particles, src_, topts_);
      serve_eval_.emplace(dt_.tree, dt_.particles, src_, topts_);
    }
    if (auto* t = comm_.tracer()) proto::name_all_tags(*t);
  }

  ForceResult<D> run() {
    int since_poll = 0;

    {
      // Wall-clock attribution: the local alpha-MAC walk. Nested serve /
      // kernel regions opened while draining bank their own intervals, so
      // this region's wall time is the *exclusive* local traversal cost.
      BH_PROF_REGION("force.traverse");
      if (opts_.traversal == tree::TraversalMode::kBlocked)
        run_local_blocked(since_poll);
      else
        run_local_walker(since_poll);
    }

    BH_PROF_REGION("ship.drain");
    // Seal the partial bins at this deterministic point (charging their
    // send overhead now), then ship everything under flow control while
    // absorbing all outstanding answers.
    for (int d = 0; d < comm_.size(); ++d) {
      if (bins_.seal_open(d, comm_.vtime() + comm_.send_overhead())) {
        comm_.advance_seconds(comm_.send_overhead());
        ship_ready(d);
      }
    }
    while (pending_ > 0) {
      if (!drain_one()) std::this_thread::yield();
      release_eager();
    }
    // All asynchronously absorbed data must have arrived by now; the
    // horizon also covers the acks that released the last bins.
    progress_.wait_until(progress_.horizon());

    // Monotone termination vote: once a rank is done it only *serves*; it
    // can never create new requests, so the counter is safe.
    ship::Termination term(comm_, opts_.done_counter);
    term.vote_and_drain([this] { return drain_one(); });
    // Every serve this rank will perform has happened; fold their accrued
    // cost into the clock before the closing barrier so the rank's phase
    // time reflects all the work it did.
    progress_.fold();
    term.finish();
    return result_;
  }

 private:
  void apply(std::uint32_t pi, const multipole::FieldSample<D>& f) {
    auto& ps = dt_.particles;
    if (opts_.kind != tree::FieldKind::kPotential) ps.acc[pi] += f.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[pi] += f.potential;
  }

  /// Per-lane bookkeeping shared by both local loops: fold one particle's
  /// result into the clock and the bins at the exact schedule points the
  /// walker uses (advance, push hits in walk order, poll). Keeping this
  /// sequence identical is what makes walker and blocked runs produce
  /// byte-identical registries.
  void fold_local(std::uint32_t pi, const multipole::FieldSample<D>& field,
                  const model::WorkCounter& work,
                  const std::vector<tree::RemoteHit<D>>& hits,
                  int& since_poll) {
    apply(pi, field);
    result_.local_work += work;
    comm_.advance_flops(work.flops());
    for (const auto& h : hits) {
      assert(h.owner != comm_.rank());
      push(h.owner, ShipItem<D>{dt_.particles.pos[pi], h.key.v, pi, 0});
    }
    if (++since_poll >= opts_.poll_interval) {
      while (drain_one()) {
      }
      release_gated();
      since_poll = 0;
    }
  }

  void run_local_walker(int& since_poll) {
    auto& ps = dt_.particles;
    auto& tree = dt_.tree;
    std::vector<tree::RemoteHit<D>> hits;
    for (std::uint32_t s = 0; s < tree.perm.size(); ++s) {
      const auto pi = tree.perm[s];
      hits.clear();
      auto r = tree::evaluate_partial(tree, ps, 0, ps.pos[pi], ps.id[pi],
                                      topts_, hits,
                                      opts_.record_load ? &tree : nullptr);
      obs::prof::count_flops(r.work.flops());
      obs::prof::count_bytes(tree::traversal_bytes<D>(r.work));
      fold_local(pi, r.field, r.work, hits, since_poll);
    }
  }

  void run_local_blocked(int& since_poll) {
    auto& ps = dt_.particles;
    auto& tree = dt_.tree;
    const unsigned cap =
        opts_.leaf_size > 0
            ? std::min<unsigned>(static_cast<unsigned>(opts_.leaf_size),
                                 multipole::kBlockWidth)
            : multipole::kBlockWidth;
    std::array<Vec<D>, multipole::kBlockWidth> targets;
    std::array<std::uint64_t, multipole::kBlockWidth> ids{};
    // Blocks cover tree.perm in slot order, so the lane-by-lane fold below
    // visits particles in exactly the walker's order. The evaluator banks
    // kernel flops into kernel.p2p / kernel.m2p and the MAC share into the
    // enclosing force.traverse region.
    for (const auto& b : tree::make_slot_blocks(tree, cap)) {
      for (std::uint32_t l = 0; l < b.width; ++l) {
        const auto pi = tree.perm[b.first + l];
        targets[l] = ps.pos[pi];
        ids[l] = ps.id[pi];
      }
      local_eval_->run(0, targets.data(), ids.data(), b.width,
                       /*allow_remote=*/true,
                       opts_.record_load ? &tree : nullptr);
      for (std::uint32_t l = 0; l < b.width; ++l) {
        const auto pi = tree.perm[b.first + l];
        fold_local(pi, local_eval_->field(l), local_eval_->work(l),
                   local_eval_->hits(l), since_poll);
      }
    }
  }

  /// Buffer one item for dst; seal/ship/stall per the BinSet policy. The
  /// send overhead of a sealing bin is charged here -- the deterministic
  /// point where the bin is handed to the comm subsystem -- regardless of
  /// when flow control lets it physically leave.
  void push(int dst, const ShipItem<D>& item) {
    ++pending_;
    ++result_.items_shipped;
    const auto ev =
        bins_.push(dst, item, comm_.vtime() + comm_.send_overhead());
    if (ev == ship::BinSet<ShipItem<D>>::Event::kNone) return;
    comm_.advance_seconds(comm_.send_overhead());
    release_gated(dst);
    ship_ready(dst);
    if (ev == ship::BinSet<ShipItem<D>>::Event::kStall &&
        bins_.buffered(dst) >= bins_.hard_cap())
      stall(dst);
  }

  /// Ship dst's front sealed bin if flow control allows.
  void ship_ready(int dst) {
    const auto* ready = bins_.ready(dst);
    if (!ready) return;
    const double stamp = bins_.ship_stamp(dst);
    auto sealed = bins_.take_ready(dst);
    comm_.send_stamped<ShipItem<D>>(dst, proto::kTagFuncRequest, sealed.items,
                                    stamp, /*charge_overhead=*/false);
    ++result_.bins_sent;
  }

  /// Working-set stall (Section 4.2.4): the buffer for dst is full and its
  /// oldest bin is still unacknowledged, so the rank must stop local work
  /// and serve remote requests until the ack arrives. Only a *modeled*
  /// wait (ack arrival still in this rank's virtual future) counts as a
  /// stall; a physically late ack that already arrived in virtual time
  /// costs nothing on the modeled machine.
  void stall(int dst) {
    while (bins_.outstanding(dst)) {
      if (ack_pending_[static_cast<std::size_t>(dst)]) {
        const double arr = ack_arr_[static_cast<std::size_t>(dst)];
        if (arr > comm_.vtime()) {
          ++result_.stalls;
          if (auto* t = comm_.tracer())
            t->instant("funcship.stall", bins_.buffered(dst), comm_.vtime());
          progress_.wait_until(arr);
        }
        commit_ack(dst);
        break;
      }
      if (!drain_one()) std::this_thread::yield();
    }
  }

  /// Release flow control for acks whose modeled arrival the rank's clock
  /// has reached (during traversal, an ack absorbed "from the future" must
  /// not unblock shipping before it would have arrived on the machine).
  void release_gated() {
    for (int d = 0; d < comm_.size(); ++d) release_gated(d);
  }
  void release_gated(int dst) {
    if (ack_pending_[static_cast<std::size_t>(dst)] &&
        ack_arr_[static_cast<std::size_t>(dst)] <= comm_.vtime())
      commit_ack(dst);
  }
  /// Post-traversal: the rank is only waiting, so every recorded ack
  /// releases immediately (the final horizon wait accounts for arrivals).
  void release_eager() {
    for (int d = 0; d < comm_.size(); ++d)
      if (ack_pending_[static_cast<std::size_t>(d)]) commit_ack(d);
  }
  void commit_ack(int dst) {
    ack_pending_[static_cast<std::size_t>(dst)] = 0;
    if (bins_.ack(dst, ack_arr_[static_cast<std::size_t>(dst)]))
      ship_ready(dst);
  }

  /// Handle one incoming message in deterministic order; returns true when
  /// progress was made. Only the two registered force-phase tags are legal
  /// here; anything else (e.g. a message leaked by an earlier phase) is a
  /// protocol violation, not data.
  bool drain_one() {
    auto m = progress_.next();
    if (!m) return false;
    if (m->tag == proto::kTagFuncRequest)
      serve(*m);
    else if (m->tag == proto::kTagFuncReply)
      absorb(*m);
    else
      throw std::logic_error(
          "funcship: unexpected message (src=" + std::to_string(m->src) +
          ", tag=" + std::to_string(m->tag) + ") in the force phase");
    return true;
  }

  /// Compute the shipped interactions: each item interacts with the entire
  /// subtree rooted at the named branch node -- all of which is local here.
  /// The service cost accrues off-clock (folded before the closing
  /// barrier); the reply is stamped from this requester's service lane,
  /// pinned to the request's arrival.
  void serve(const mp::Message& m) {
    BH_PROF_REGION("ship.serve");
    const auto items = mp::Communicator::unpack<ShipItem<D>>(m);
    const double arr = comm_.arrival_time(m);
    std::uint64_t batch_flops = 0;
    std::vector<ReplyItem<D>> replies;
    if (opts_.traversal == tree::TraversalMode::kBlocked) {
      serve_blocked(items, batch_flops, replies);
    } else {
      replies.reserve(items.size());
      // The shipped batch is the one place the walker's interaction kernels
      // run in bulk against a fixed local subtree, so it gets its own
      // roofline row (monopole vs degree-k picks the row name). The blocked
      // path instead banks into kernel.p2p / kernel.m2p via the evaluator.
      obs::prof::Region kernel_region(topts_.use_expansions
                                          ? "kernel.degree_k"
                                          : "kernel.monopole");
      model::WorkCounter batch_work;
      for (const auto& it : items) {
        const auto node = branch_subtree(it.branch_key);
        auto r = tree::evaluate_subtree(
            dt_.tree, dt_.particles, node, it.pos, tree::kNoSelf, topts_,
            opts_.record_load ? &dt_.tree : nullptr);
        result_.shipped_work += r.work;
        batch_flops += r.work.flops();
        batch_work += r.work;
        batch_work.degree = r.work.degree;
        replies.push_back(
            ReplyItem<D>{r.field.potential, r.field.acc, it.slot, 0});
        ++result_.items_served;
      }
      obs::prof::count_flops(batch_flops);
      obs::prof::count_bytes(tree::traversal_bytes<D>(batch_work));
    }
    const double stamp = progress_.serve(m.src, arr, batch_flops);
    if (auto* t = comm_.tracer())
      t->instant("funcship.serve", items.size(), comm_.vtime());
    comm_.send_stamped<ReplyItem<D>>(m.src, proto::kTagFuncReply, replies,
                                     stamp, /*charge_overhead=*/false);
  }

  /// Resolve a shipped branch key to the local subtree root it names,
  /// rejecting keys this rank does not own (protocol violation).
  std::int32_t branch_subtree(std::uint64_t branch_key) const {
    const auto b = dt_.directory.find(geom::NodeKey<D>{branch_key});
    if (b < 0 || !dt_.is_mine(static_cast<std::size_t>(b)))
      throw std::logic_error("shipped work for a branch not owned here");
    return dt_.branch_node[static_cast<std::size_t>(b)];
  }

  /// Blocked service: group the bin's items by branch key (first-appearance
  /// order), evaluate each group in target blocks against the branch's
  /// local subtree, and write replies back in item order. Every per-item
  /// work counter equals the walker's, so the summed batch_flops -- the
  /// only number that feeds the requester's virtual time -- is unchanged.
  void serve_blocked(const std::vector<ShipItem<D>>& items,
                     std::uint64_t& batch_flops,
                     std::vector<ReplyItem<D>>& replies) {
    replies.resize(items.size());
    struct Group {
      std::uint64_t key;
      std::int32_t node;
      std::vector<std::uint32_t> idx;
    };
    std::vector<Group> groups;  // few distinct branches per bin
    const auto n_items = static_cast<std::uint32_t>(items.size());
    for (std::uint32_t i = 0; i < n_items; ++i) {
      const auto key = items[i].branch_key;
      Group* g = nullptr;
      for (auto& cand : groups)
        if (cand.key == key) {
          g = &cand;
          break;
        }
      if (!g) {
        groups.push_back({key, branch_subtree(key), {}});
        g = &groups.back();
      }
      g->idx.push_back(i);
    }
    std::array<Vec<D>, multipole::kBlockWidth> targets;
    std::array<std::uint64_t, multipole::kBlockWidth> ids{};
    for (const auto& g : groups) {
      for (std::size_t off = 0; off < g.idx.size();
           off += multipole::kBlockWidth) {
        const std::size_t w =
            std::min(multipole::kBlockWidth, g.idx.size() - off);
        for (std::size_t l = 0; l < w; ++l) {
          targets[l] = items[g.idx[off + l]].pos;
          ids[l] = tree::kNoSelf;
        }
        serve_eval_->run(g.node, targets.data(), ids.data(), w,
                         /*allow_remote=*/false,
                         opts_.record_load ? &dt_.tree : nullptr);
        for (std::size_t l = 0; l < w; ++l) {
          const auto& wk = serve_eval_->work(l);
          result_.shipped_work += wk;
          batch_flops += wk.flops();
          const auto it_idx = g.idx[off + l];
          const auto f = serve_eval_->field(l);
          replies[it_idx] =
              ReplyItem<D>{f.potential, f.acc, items[it_idx].slot, 0};
          ++result_.items_served;
        }
      }
    }
  }

  /// Integrate answers; the reply also acknowledges the bin (flow
  /// control). Only the bookkeeping happens here -- the release is
  /// committed at a gated (traversal) or eager (drain) checkpoint, so the
  /// physically-timed moment of absorption never reaches virtual time.
  void absorb(const mp::Message& m) {
    const auto items = mp::Communicator::unpack<ReplyItem<D>>(m);
    for (const auto& it : items) {
      multipole::FieldSample<D> f{it.potential, it.acc};
      apply(it.slot, f);
    }
    pending_ -= static_cast<std::int64_t>(items.size());
    assert(pending_ >= 0);
    const double arr = comm_.arrival_time(m);
    progress_.note_arrival(arr);
    assert(!ack_pending_[static_cast<std::size_t>(m.src)]);
    ack_pending_[static_cast<std::size_t>(m.src)] = 1;
    ack_arr_[static_cast<std::size_t>(m.src)] = arr;
  }

  mp::Communicator& comm_;
  DistTree<D>& dt_;
  ForceOptions opts_;
  tree::TraversalOptions topts_;
  tree::SlotSources<D> src_;  ///< slot-ordered SoA gather (blocked mode)
  std::optional<tree::BlockedEval<D>> local_eval_;
  std::optional<tree::BlockedEval<D>> serve_eval_;
  ship::BinSet<ShipItem<D>> bins_;
  ship::Progress progress_;
  std::vector<double> ack_arr_;       ///< recorded ack arrival per dst
  std::vector<std::uint8_t> ack_pending_;  ///< ack recorded, not committed
  std::int64_t pending_ = 0;
  ForceResult<D> result_;
};

}  // namespace

template <std::size_t D>
ForceResult<D> compute_forces_funcship(mp::Communicator& comm,
                                       DistTree<D>& dt,
                                       const ForceOptions& opts) {
  Engine<D> e(comm, dt, opts);
  return e.run();
}

template ForceResult<2> compute_forces_funcship<2>(mp::Communicator&,
                                                   DistTree<2>&,
                                                   const ForceOptions&);
template ForceResult<3> compute_forces_funcship<3>(mp::Communicator&,
                                                   DistTree<3>&,
                                                   const ForceOptions&);

}  // namespace bh::par
