#include "parallel/funcship.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/prof/prof.hpp"
#include "obs/trace.hpp"
#include "parallel/ship/binset.hpp"
#include "parallel/ship/progress.hpp"
#include "parallel/ship/termination.hpp"

namespace bh::par {

namespace proto = bh::mp::proto;

namespace {

/// One shipped particle: coordinates + the branch it must interact with +
/// the requester's slot for routing the answer back. "All of this
/// information, the particle coordinates and the key, are placed in a bin
/// meant for the remote processor." (Section 3.2)
template <std::size_t D>
struct ShipItem {
  Vec<D> pos;
  std::uint64_t branch_key;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

/// One computed answer: the accumulated field of the entire remote subtree.
template <std::size_t D>
struct ReplyItem {
  double potential;
  Vec<D> acc;
  std::uint32_t slot;
  std::uint32_t pad_ = 0;
};

/// Function-shipping engine on the deterministic ship substrate
/// (parallel/ship/): BinSet owns the bin/flow-control/working-set policy,
/// Progress owns ordered draining, per-source reply lanes and the service
/// fold, Termination owns the monotone vote. Everything that feeds virtual
/// time -- bin contents, seal charges, ship stamps, reply stamps, stall
/// waits, the service fold -- is a pure function of the traversal and the
/// machine model, so two runs with the same seed produce bit-identical
/// modeled times (DESIGN.md section 9).
template <std::size_t D>
class Engine {
 public:
  Engine(mp::Communicator& comm, DistTree<D>& dt, const ForceOptions& opts)
      : comm_(comm), dt_(dt), opts_(opts),
        bins_(static_cast<std::size_t>(comm.size()), opts.bin_size,
              opts.bin_hard_cap),
        progress_(comm),
        ack_arr_(static_cast<std::size_t>(comm.size()), 0.0),
        ack_pending_(static_cast<std::size_t>(comm.size()), 0) {
    topts_.alpha = opts.alpha;
    topts_.softening = opts.softening;
    topts_.kind = opts.kind;
    topts_.use_expansions = dt.tree.has_expansions();
    topts_.record_load = opts.record_load;
    if (auto* t = comm_.tracer()) proto::name_all_tags(*t);
  }

  ForceResult<D> run() {
    auto& ps = dt_.particles;
    auto& tree = dt_.tree;
    std::vector<tree::RemoteHit<D>> hits;
    int since_poll = 0;

    {
      // Wall-clock attribution: the local alpha-MAC walk. Nested serve /
      // kernel regions opened while draining bank their own intervals, so
      // this region's wall time is the *exclusive* local traversal cost.
      BH_PROF_REGION("force.traverse");
      for (std::uint32_t s = 0; s < tree.perm.size(); ++s) {
        const auto pi = tree.perm[s];
        hits.clear();
        auto r = tree::evaluate_partial(tree, ps, 0, ps.pos[pi], ps.id[pi],
                                        topts_, hits,
                                        opts_.record_load ? &tree : nullptr);
        apply(pi, r.field);
        result_.local_work += r.work;
        comm_.advance_flops(r.work.flops());
        obs::prof::count_flops(r.work.flops());
        obs::prof::count_bytes(tree::traversal_bytes<D>(r.work));

        for (const auto& h : hits) {
          assert(h.owner != comm_.rank());
          push(h.owner, ShipItem<D>{ps.pos[pi], h.key.v, pi, 0});
        }
        if (++since_poll >= opts_.poll_interval) {
          while (drain_one()) {
          }
          release_gated();
          since_poll = 0;
        }
      }
    }

    BH_PROF_REGION("ship.drain");
    // Seal the partial bins at this deterministic point (charging their
    // send overhead now), then ship everything under flow control while
    // absorbing all outstanding answers.
    for (int d = 0; d < comm_.size(); ++d) {
      if (bins_.seal_open(d, comm_.vtime() + comm_.send_overhead())) {
        comm_.advance_seconds(comm_.send_overhead());
        ship_ready(d);
      }
    }
    while (pending_ > 0) {
      if (!drain_one()) std::this_thread::yield();
      release_eager();
    }
    // All asynchronously absorbed data must have arrived by now; the
    // horizon also covers the acks that released the last bins.
    progress_.wait_until(progress_.horizon());

    // Monotone termination vote: once a rank is done it only *serves*; it
    // can never create new requests, so the counter is safe.
    ship::Termination term(comm_, opts_.done_counter);
    term.vote_and_drain([this] { return drain_one(); });
    // Every serve this rank will perform has happened; fold their accrued
    // cost into the clock before the closing barrier so the rank's phase
    // time reflects all the work it did.
    progress_.fold();
    term.finish();
    return result_;
  }

 private:
  void apply(std::uint32_t pi, const multipole::FieldSample<D>& f) {
    auto& ps = dt_.particles;
    if (opts_.kind != tree::FieldKind::kPotential) ps.acc[pi] += f.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[pi] += f.potential;
  }

  /// Buffer one item for dst; seal/ship/stall per the BinSet policy. The
  /// send overhead of a sealing bin is charged here -- the deterministic
  /// point where the bin is handed to the comm subsystem -- regardless of
  /// when flow control lets it physically leave.
  void push(int dst, const ShipItem<D>& item) {
    ++pending_;
    ++result_.items_shipped;
    const auto ev =
        bins_.push(dst, item, comm_.vtime() + comm_.send_overhead());
    if (ev == ship::BinSet<ShipItem<D>>::Event::kNone) return;
    comm_.advance_seconds(comm_.send_overhead());
    release_gated(dst);
    ship_ready(dst);
    if (ev == ship::BinSet<ShipItem<D>>::Event::kStall &&
        bins_.buffered(dst) >= bins_.hard_cap())
      stall(dst);
  }

  /// Ship dst's front sealed bin if flow control allows.
  void ship_ready(int dst) {
    const auto* ready = bins_.ready(dst);
    if (!ready) return;
    const double stamp = bins_.ship_stamp(dst);
    auto sealed = bins_.take_ready(dst);
    comm_.send_stamped<ShipItem<D>>(dst, proto::kTagFuncRequest, sealed.items,
                                    stamp, /*charge_overhead=*/false);
    ++result_.bins_sent;
  }

  /// Working-set stall (Section 4.2.4): the buffer for dst is full and its
  /// oldest bin is still unacknowledged, so the rank must stop local work
  /// and serve remote requests until the ack arrives. Only a *modeled*
  /// wait (ack arrival still in this rank's virtual future) counts as a
  /// stall; a physically late ack that already arrived in virtual time
  /// costs nothing on the modeled machine.
  void stall(int dst) {
    while (bins_.outstanding(dst)) {
      if (ack_pending_[static_cast<std::size_t>(dst)]) {
        const double arr = ack_arr_[static_cast<std::size_t>(dst)];
        if (arr > comm_.vtime()) {
          ++result_.stalls;
          if (auto* t = comm_.tracer())
            t->instant("funcship.stall", bins_.buffered(dst), comm_.vtime());
          progress_.wait_until(arr);
        }
        commit_ack(dst);
        break;
      }
      if (!drain_one()) std::this_thread::yield();
    }
  }

  /// Release flow control for acks whose modeled arrival the rank's clock
  /// has reached (during traversal, an ack absorbed "from the future" must
  /// not unblock shipping before it would have arrived on the machine).
  void release_gated() {
    for (int d = 0; d < comm_.size(); ++d) release_gated(d);
  }
  void release_gated(int dst) {
    if (ack_pending_[static_cast<std::size_t>(dst)] &&
        ack_arr_[static_cast<std::size_t>(dst)] <= comm_.vtime())
      commit_ack(dst);
  }
  /// Post-traversal: the rank is only waiting, so every recorded ack
  /// releases immediately (the final horizon wait accounts for arrivals).
  void release_eager() {
    for (int d = 0; d < comm_.size(); ++d)
      if (ack_pending_[static_cast<std::size_t>(d)]) commit_ack(d);
  }
  void commit_ack(int dst) {
    ack_pending_[static_cast<std::size_t>(dst)] = 0;
    if (bins_.ack(dst, ack_arr_[static_cast<std::size_t>(dst)]))
      ship_ready(dst);
  }

  /// Handle one incoming message in deterministic order; returns true when
  /// progress was made. Only the two registered force-phase tags are legal
  /// here; anything else (e.g. a message leaked by an earlier phase) is a
  /// protocol violation, not data.
  bool drain_one() {
    auto m = progress_.next();
    if (!m) return false;
    if (m->tag == proto::kTagFuncRequest)
      serve(*m);
    else if (m->tag == proto::kTagFuncReply)
      absorb(*m);
    else
      throw std::logic_error(
          "funcship: unexpected message (src=" + std::to_string(m->src) +
          ", tag=" + std::to_string(m->tag) + ") in the force phase");
    return true;
  }

  /// Compute the shipped interactions: each item interacts with the entire
  /// subtree rooted at the named branch node -- all of which is local here.
  /// The service cost accrues off-clock (folded before the closing
  /// barrier); the reply is stamped from this requester's service lane,
  /// pinned to the request's arrival.
  void serve(const mp::Message& m) {
    BH_PROF_REGION("ship.serve");
    const auto items = mp::Communicator::unpack<ShipItem<D>>(m);
    const double arr = comm_.arrival_time(m);
    std::uint64_t batch_flops = 0;
    std::vector<ReplyItem<D>> replies;
    replies.reserve(items.size());
    {
      // The shipped batch is the one place the interaction kernels run in
      // bulk against a fixed local subtree, so it gets its own roofline row
      // (monopole vs degree-k picks the row name).
      obs::prof::Region kernel_region(topts_.use_expansions
                                          ? "kernel.degree_k"
                                          : "kernel.monopole");
      model::WorkCounter batch_work;
      for (const auto& it : items) {
        const auto b = dt_.directory.find(geom::NodeKey<D>{it.branch_key});
        if (b < 0 || !dt_.is_mine(static_cast<std::size_t>(b)))
          throw std::logic_error("shipped work for a branch not owned here");
        const auto node = dt_.branch_node[static_cast<std::size_t>(b)];
        auto r = tree::evaluate_subtree(
            dt_.tree, dt_.particles, node, it.pos, tree::kNoSelf, topts_,
            opts_.record_load ? &dt_.tree : nullptr);
        result_.shipped_work += r.work;
        batch_flops += r.work.flops();
        batch_work += r.work;
        batch_work.degree = r.work.degree;
        replies.push_back(
            ReplyItem<D>{r.field.potential, r.field.acc, it.slot, 0});
        ++result_.items_served;
      }
      obs::prof::count_flops(batch_flops);
      obs::prof::count_bytes(tree::traversal_bytes<D>(batch_work));
    }
    const double stamp = progress_.serve(m.src, arr, batch_flops);
    if (auto* t = comm_.tracer())
      t->instant("funcship.serve", items.size(), comm_.vtime());
    comm_.send_stamped<ReplyItem<D>>(m.src, proto::kTagFuncReply, replies,
                                     stamp, /*charge_overhead=*/false);
  }

  /// Integrate answers; the reply also acknowledges the bin (flow
  /// control). Only the bookkeeping happens here -- the release is
  /// committed at a gated (traversal) or eager (drain) checkpoint, so the
  /// physically-timed moment of absorption never reaches virtual time.
  void absorb(const mp::Message& m) {
    const auto items = mp::Communicator::unpack<ReplyItem<D>>(m);
    for (const auto& it : items) {
      multipole::FieldSample<D> f{it.potential, it.acc};
      apply(it.slot, f);
    }
    pending_ -= static_cast<std::int64_t>(items.size());
    assert(pending_ >= 0);
    const double arr = comm_.arrival_time(m);
    progress_.note_arrival(arr);
    assert(!ack_pending_[static_cast<std::size_t>(m.src)]);
    ack_pending_[static_cast<std::size_t>(m.src)] = 1;
    ack_arr_[static_cast<std::size_t>(m.src)] = arr;
  }

  mp::Communicator& comm_;
  DistTree<D>& dt_;
  ForceOptions opts_;
  tree::TraversalOptions topts_;
  ship::BinSet<ShipItem<D>> bins_;
  ship::Progress progress_;
  std::vector<double> ack_arr_;       ///< recorded ack arrival per dst
  std::vector<std::uint8_t> ack_pending_;  ///< ack recorded, not committed
  std::int64_t pending_ = 0;
  ForceResult<D> result_;
};

}  // namespace

template <std::size_t D>
ForceResult<D> compute_forces_funcship(mp::Communicator& comm,
                                       DistTree<D>& dt,
                                       const ForceOptions& opts) {
  Engine<D> e(comm, dt, opts);
  return e.run();
}

template ForceResult<2> compute_forces_funcship<2>(mp::Communicator&,
                                                   DistTree<2>&,
                                                   const ForceOptions&);
template ForceResult<3> compute_forces_funcship<3>(mp::Communicator&,
                                                   DistTree<3>&,
                                                   const ForceOptions&);

}  // namespace bh::par
