// dtree.hpp -- distributed tree construction (Section 3.1).
//
// Each rank owns a set of *branch* subdomains (tree-node keys). It builds a
// local Barnes-Hut subtree per owned branch, the ranks exchange branch
// summaries (mass, center of mass, particle count, load, multipole
// coefficients) with a single all-to-all broadcast, and every rank then
// reconstructs the top of the global tree above the branch nodes. The
// result, per rank, is one spliced tree: accurate top levels + full local
// subtrees + remote branch nodes as traversal-halting leaves ("each
// processor has an accurate representation of the top few levels of the
// global tree and of everything lying beneath its branch nodes").
#pragma once

#include <span>
#include <vector>

#include "mp/protocol.hpp"
#include "mp/runtime.hpp"
#include "parallel/branch.hpp"
#include "tree/bhtree.hpp"

namespace bh::par {

// Phase names used for virtual-time attribution (Table 3 rows) live in the
// central protocol registry; re-exported here because the phase structure is
// part of the distributed-tree API.
using mp::proto::kPhaseBroadcast;
using mp::proto::kPhaseForce;
using mp::proto::kPhaseLoadBalance;
using mp::proto::kPhaseLocalBuild;
using mp::proto::kPhaseTreeMerge;

struct DistTreeOptions {
  unsigned leaf_capacity = 1;
  unsigned degree = 0;        ///< 0 = monopole
  /// Section 3.1.1 (true): every rank recomputes the top redundantly after
  /// the broadcast. Section 3.1.2 (false): designated ranks compute parents
  /// once and the result is broadcast (modeled as rank-0 compute + bcast);
  /// only the virtual-time attribution differs, the tree is identical.
  bool replicate_top = true;
  /// Modeled construction cost: flops charged per particle per tree level.
  unsigned build_flops_per_level = 10;
  /// Branch directory implementation (Section 4.2.3 ablation).
  LookupKind lookup = LookupKind::kHash;
};

/// The per-rank distributed tree.
template <std::size_t D>
struct DistTree {
  /// Local particles, re-grouped by owned branch (tree.perm indexes this).
  model::ParticleSet<D> particles;
  /// Spliced tree: top + local subtrees + remote branch leaves.
  tree::BhTree<D> tree;
  /// All branch records, globally, in Morton (in-order) key order.
  std::vector<BranchWire<D>> branches;
  /// Node index in `tree` of each branch (aligned with `branches`).
  std::vector<std::int32_t> branch_node;
  /// Key -> index into `branches`.
  BranchDirectory<D> directory;

  int my_rank = 0;

  bool is_mine(std::size_t branch_idx) const {
    return branches[branch_idx].owner == my_rank;
  }

  /// Sum of this rank's recorded node loads under branch `b` after a force
  /// phase ("this variable is summed up along the tree", Section 3.3.3).
  std::uint64_t branch_load(std::size_t b) const;

  /// Total number of locally owned particles.
  std::size_t local_particles() const { return particles.size(); }
};

/// Collectively build the distributed tree. Every rank passes its local
/// particles, the branch keys it owns and (optionally) the per-branch loads
/// measured in the previous step. The union of all owned keys must tile the
/// domain disjointly; every local particle must lie in one owned branch.
/// Throws std::invalid_argument on ownership violations.
template <std::size_t D>
DistTree<D> build_dist_tree(mp::Communicator& comm,
                            const model::ParticleSet<D>& local,
                            std::span<const geom::NodeKey<D>> owned_keys,
                            std::span<const std::uint64_t> owned_loads,
                            geom::Box<D> domain, const DistTreeOptions& opts);

}  // namespace bh::par
