// binset.hpp -- per-destination request bins with deterministic shipping.
//
// The function-shipping engine batches shipped work into fixed-size bins
// (Section 3.2: "we typically collect 100 particles before communicating
// them") under the one-outstanding-bin flow-control rule and the
// working-set memory bound of Section 4.2.4. BinSet centralizes that
// policy for every engine that bins requests, and makes it *deterministic*:
//
//  * Bins are sealed at exactly `bin_size` items. A sealed bin's contents
//    are therefore a pure function of the traversal order -- unlike the
//    seed engines' grow-until-acked deferred bins, whose contents depended
//    on when the acknowledging reply physically surfaced in the mailbox.
//  * The modeled send overhead (t_s) is charged when a bin *seals* (a
//    deterministic point in the traversal), not when it physically ships.
//    The ship itself is stamped max(seal vtime, previous bin's ack
//    arrival): identical whether the ack was absorbed early or late, so
//    virtual time never sees thread scheduling.
//  * At most one bin per destination is outstanding (flow control), and at
//    most hard_cap items per destination are buffered (working-set bound).
//    Sealing a bin that would exceed the cap reports kStall: the engine
//    must stop local work and serve remote requests until an ack frees a
//    slot -- exactly the paper's "processor i must stop processing local
//    nodes" rule.
//
// BinSet is pure bookkeeping: it never touches the Communicator. The
// engine performs the sends, which keeps the class independently testable
// (tests/ship_test.cpp) and reusable by future batched/hybrid schemes.
//
// Reentrancy contract (the PR-1 empty-bin bug class, fixed once here): an
// ack may arrive while the engine is blocked inside a stall for the same
// destination. ready() returns a sealed bin at most once -- take_ready()
// pops it and marks the destination outstanding atomically -- so a
// reentrant flush can never ship the same (or an empty) bin twice.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <vector>

namespace bh::par::ship {

/// Default working-set cap, in units of bin_size (Section 4.2.4 sizes the
/// per-pair buffer memory at a small constant multiple of one bin).
inline constexpr int kDefaultHardCapBins = 4;

template <typename Item>
class BinSet {
 public:
  /// A sealed, fixed-size batch awaiting shipment.
  struct Sealed {
    std::vector<Item> items;
    double seal_vtime = 0.0;  ///< rank clock when the bin sealed
  };

  /// What a push did to the destination's bin state.
  enum class Event {
    kNone,    ///< item buffered; open bin still below bin_size
    kSealed,  ///< open bin just sealed (charge t_s now; try ship_ready)
    kStall    ///< sealed *and* the buffer hit hard_cap: serve until acked
  };

  /// hard_cap <= 0 selects the default working-set bound of
  /// kDefaultHardCapBins * bin_size items per destination.
  BinSet(std::size_t nranks, int bin_size, int hard_cap = 0)
      : bin_size_(bin_size > 0 ? bin_size : 1),
        hard_cap_(hard_cap > 0 ? hard_cap
                               : kDefaultHardCapBins *
                                     (bin_size > 0 ? bin_size : 1)),
        dst_(nranks) {}

  int bin_size() const { return bin_size_; }
  int hard_cap() const { return hard_cap_; }

  /// Append one item to dst's open bin. `now` is the rank's current
  /// virtual clock; it becomes the seal stamp when this push seals the
  /// bin. The caller must charge the send overhead on its clock whenever
  /// the result is not kNone (the bin is handed to the comm subsystem at
  /// this deterministic point, even if it ships later).
  Event push(int dst, const Item& item, double now) {
    auto& d = dst_[static_cast<std::size_t>(dst)];
    d.open.push_back(item);
    if (static_cast<int>(d.open.size()) < bin_size_) return Event::kNone;
    seal(d, now);
    return buffered(d) >= hard_cap_ ? Event::kStall : Event::kSealed;
  }

  /// Seal dst's open bin regardless of size (end-of-traversal partial
  /// flush). No-op on an empty open bin. The caller charges t_s iff this
  /// returns true.
  bool seal_open(int dst, double now) {
    auto& d = dst_[static_cast<std::size_t>(dst)];
    if (d.open.empty()) return false;
    seal(d, now);
    return true;
  }

  /// The next sealed bin dst may ship under flow control, or nullptr when
  /// none is sealed or one is already outstanding.
  const Sealed* ready(int dst) const {
    const auto& d = dst_[static_cast<std::size_t>(dst)];
    if (d.outstanding || d.sealed.empty()) return nullptr;
    return &d.sealed.front();
  }

  /// Deterministic ship stamp for dst's front sealed bin: the bin leaves
  /// when both it is sealed *and* the previous bin's ack has arrived,
  /// whichever is later in virtual time.
  double ship_stamp(int dst) const {
    const auto& d = dst_[static_cast<std::size_t>(dst)];
    assert(!d.sealed.empty());
    return d.sealed.front().seal_vtime > d.last_ack_arrival
               ? d.sealed.front().seal_vtime
               : d.last_ack_arrival;
  }

  /// Pop the ready bin and mark dst outstanding. Call only after ready()
  /// returned non-null; the returned batch is the caller's to ship.
  Sealed take_ready(int dst) {
    auto& d = dst_[static_cast<std::size_t>(dst)];
    assert(!d.outstanding && !d.sealed.empty());
    Sealed s = std::move(d.sealed.front());
    d.sealed.pop_front();
    d.outstanding = true;
    return s;
  }

  /// The ack (reply) for dst's outstanding bin arrived at virtual time
  /// `arrival`; clears flow control. Returns true when another sealed bin
  /// is now free to ship -- the deferred-flush path.
  bool ack(int dst, double arrival) {
    auto& d = dst_[static_cast<std::size_t>(dst)];
    assert(d.outstanding);
    d.outstanding = false;
    d.last_ack_arrival = arrival;
    return !d.sealed.empty();
  }

  bool outstanding(int dst) const {
    return dst_[static_cast<std::size_t>(dst)].outstanding;
  }
  /// Items buffered for dst (open + sealed), the working-set measure.
  int buffered(int dst) const {
    return buffered(dst_[static_cast<std::size_t>(dst)]);
  }
  /// True when dst holds no open items, no sealed bins, and no
  /// outstanding bin.
  bool idle(int dst) const {
    const auto& d = dst_[static_cast<std::size_t>(dst)];
    return d.open.empty() && d.sealed.empty() && !d.outstanding;
  }

 private:
  struct Dst {
    std::vector<Item> open;
    std::deque<Sealed> sealed;
    bool outstanding = false;
    double last_ack_arrival = 0.0;
  };

  static int buffered(const Dst& d) {
    std::size_t n = d.open.size();
    for (const auto& s : d.sealed) n += s.items.size();
    return static_cast<int>(n);
  }

  void seal(Dst& d, double now) {
    Sealed s;
    s.items = std::move(d.open);
    s.seal_vtime = now;
    d.open.clear();
    d.sealed.push_back(std::move(s));
  }

  int bin_size_;
  int hard_cap_;
  std::vector<Dst> dst_;
};

}  // namespace bh::par::ship
