// progress.hpp -- deterministic service scheduling for request/serve
// engines (the shared skeleton of funcship and dataship).
//
// The modeled virtual time of the seed engines depended on thread
// scheduling in three ways, each of which Progress removes:
//
//  1. *Service order.* Incoming messages were popped in physical arrival
//     order; Progress drains through Communicator::try_recv_ordered
//     (lowest (rank, tag) first, FIFO within a pair), so the order in
//     which queued work is handled is reproducible.
//  2. *Service clocks.* Replies were stamped from a single global
//     serve-frontier whose value depended on the cross-source interleave
//     of serves. Progress keeps one service lane per requesting rank:
//     lane[src] = max(lane[src], request arrival) + service time. Flow
//     control (one outstanding bin per pair; one outstanding RPC per rank
//     in dataship) makes each pair's request stream sequential, so each
//     lane's fold is over a fixed sequence no matter when the requests
//     physically surfaced. Request arrivals still pin the lane -- work
//     cannot be served before it arrives (Section 3.2 semantics).
//  3. *Server compute.* Serving advanced the server's own clock at the
//     physically-timed poll where the request happened to be handled,
//     which leaked into every later send stamp of that rank. Progress
//     accrues service cost as integer flop/send *counts* (order-
//     independent sums) and folds the modeled total into the clock once,
//     at a deterministic control-flow point (fold(), called before the
//     phase's closing barrier, when the set of serves performed is the
//     same in every run). The server's completion time still reflects all
//     work it did -- the paper's load-balance accounting is preserved --
//     it just no longer depends on *when* the work was interleaved.
//
// Async data arrivals (replies consumed with compute/communication
// overlap) fold into a horizon, a running max that is order-independent;
// wait_until() charges genuine waits to the clock and the recv_wait stat.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mp/runtime.hpp"

namespace bh::par::ship {

class Progress {
 public:
  explicit Progress(mp::Communicator& comm)
      : comm_(comm), lane_(static_cast<std::size_t>(comm.size()), 0.0) {}

  // -- ordered drain --------------------------------------------------------
  /// Pop the next queued message in deterministic (rank, tag) order, clock
  /// untouched. std::nullopt when the mailbox has no match.
  std::optional<mp::Message> next(int src = mp::kAnySource,
                                  int tag = mp::kAnyTag) {
    return comm_.try_recv_ordered(src, tag, /*advance_clock=*/false);
  }

  /// Virtual time at which `m` became available here.
  double arrival(const mp::Message& m) const { return comm_.arrival_time(m); }

  // -- per-source service lanes ---------------------------------------------
  /// Account one served request from `src`: `service_flops` of compute
  /// plus one reply send. Returns the deterministic reply stamp
  /// max(lane[src], request arrival) + service, and accrues the service
  /// cost (flops + t_s) for the final fold. Ship the reply with
  /// send_stamped(..., stamp, /*charge_overhead=*/false).
  double serve(int src, double request_arrival, std::uint64_t service_flops) {
    const double cost =
        comm_.accrue_flops(service_flops) + comm_.send_overhead();
    accrued_fold_flops_ += service_flops;
    ++accrued_sends_;
    auto& lane = lane_[static_cast<std::size_t>(src)];
    lane = (lane > request_arrival ? lane : request_arrival) + cost;
    return lane;
  }

  // -- async data horizon -----------------------------------------------------
  /// Record an asynchronously absorbed arrival (order-independent max).
  void note_arrival(double arr) {
    if (arr > horizon_) horizon_ = arr;
  }
  double horizon() const { return horizon_; }

  /// Block the modeled clock until `t` (a message arrival the rank
  /// genuinely waited for); charges the wait to the recv_wait stat.
  void wait_until(double t) {
    if (t > comm_.vtime())
      comm_.stats().recv_wait += t - comm_.vtime();
    comm_.advance_to(t);
  }

  // -- service fold -----------------------------------------------------------
  /// Fold every accrued service cost into the rank clock. Call exactly
  /// once per phase, at a point where the set of serves performed is
  /// deterministic -- after the termination vote's final drain, before
  /// the closing barrier. (Flop counts were already recorded by
  /// accrue_flops; this only moves the clock.)
  void fold() {
    // Accrued as integer counts so the fold is bit-identical regardless
    // of the floating-point order the serves happened in.
    comm_.advance_seconds(comm_.machine().flops(accrued_fold_flops_) +
                          static_cast<double>(accrued_sends_) *
                              comm_.send_overhead());
    accrued_fold_flops_ = 0;
    accrued_sends_ = 0;
  }

  /// Accrue off-clock compute that has no reply attached (e.g. absorbing
  /// shipped answers): recorded in the flop stats now, folded into the
  /// clock at fold().
  void accrue(std::uint64_t n) {
    comm_.accrue_flops(n);
    accrued_fold_flops_ += n;
  }

 private:
  friend class ProgressTestPeer;

  mp::Communicator& comm_;
  std::vector<double> lane_;  ///< per-source service pipeline clocks
  double horizon_ = 0.0;
  std::uint64_t accrued_fold_flops_ = 0;
  std::uint64_t accrued_sends_ = 0;
};

}  // namespace bh::par::ship
