// termination.hpp -- the monotone termination vote of the force phases.
//
// Both shipping engines end the same way: a rank with no local work left
// votes on a CM5-style shared control-network counter, then keeps *serving*
// incoming requests until every rank has voted. The vote is monotone --
// once a rank votes it can only serve, never create new requests -- so the
// counter never needs to be decremented mid-phase and the protocol cannot
// livelock. A final drain then consumes any requests that arrived before
// the last vote, and a barrier pair resets the counter for the next phase.
//
// Previously this sequence was inlined in funcship (and approximated in
// dataship); Termination is the single copy both engines (and future
// hybrid/batched schemes) share.
#pragma once

#include <thread>

#include "mp/runtime.hpp"

namespace bh::par::ship {

class Termination {
 public:
  /// `counter` is the shared-counter id used for the vote
  /// (ForceOptions::done_counter).
  Termination(mp::Communicator& comm, int counter)
      : comm_(comm), done_(comm.shared_counter(counter)) {}

  /// Vote, then serve until every rank has voted, then drain stragglers.
  /// `poll` must serve at most one incoming message and return whether it
  /// made progress; it must not create new requests (monotonicity). After
  /// vote_and_drain returns, every request this rank will ever receive in
  /// this phase has been served.
  template <typename PollFn>
  void vote_and_drain(PollFn&& poll) {
    done_.fetch_add(1);
    while (done_.load() < comm_.size()) {
      if (!poll()) std::this_thread::yield();
    }
    // Drain requests that arrived before the last rank voted.
    while (poll()) {
    }
  }

  /// Synchronize and reset the counter for the next phase. The first
  /// barrier guarantees every rank is past the vote before any rank
  /// resets; the second guarantees no rank re-enters a vote while a peer
  /// still reads the counter.
  void finish() {
    comm_.barrier();
    done_.store(0);
    comm_.barrier();
  }

 private:
  mp::Communicator& comm_;
  std::atomic<long long>& done_;
};

}  // namespace bh::par::ship
