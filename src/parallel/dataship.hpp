// dataship.hpp -- the data-shipping comparator (Sections 3.2 and 4.2).
//
// "The four children of node B are fetched to processor 0 and the processor
// then applies the multipole acceptance criterion to each of these and
// possibly requests for more nodes. This is referred to as the data-shipping
// paradigm and is consistent with the owner-computes rule. Previously
// existing parallel formulations are based on the data-shipping paradigm."
//
// This engine implements exactly that, in the style of Warren & Salmon's
// hashed octree: remote nodes are fetched on demand, keyed by their Morton
// node keys, and cached in a local hash table for the remainder of the
// step. The paper's Section 4.2 arguments -- communication volume growing
// as O(k^2) with multipole degree, hash-table addressing of arbitrary
// nodes, working-set growth -- all become measurable against the
// function-shipping engine on identical inputs.
#pragma once

#include "parallel/dtree.hpp"
#include "parallel/funcship.hpp"

namespace bh::par {

// Message tags of the node-fetch protocol live in the central protocol
// registry: mp::proto::kTagFetch / kTagNodeData / kTagDataShipDone
// (mp/protocol.hpp).

/// Per-rank outcome of a data-shipping force phase.
template <std::size_t D>
struct DataShipResult {
  model::WorkCounter work;
  std::uint64_t nodes_fetched = 0;    ///< remote node records received
  std::uint64_t fetch_requests = 0;   ///< request messages sent
  std::uint64_t cache_hits = 0;       ///< remote nodes reused from cache
  std::uint64_t hash_probes = 0;      ///< cache lookups (addressing cost)
  // Async node-cache counters (DESIGN.md section 14); all zero under
  // --node-cache sync.
  std::uint64_t coalesced = 0;        ///< requests attached to an in-flight fetch
  std::uint64_t prefetched_nodes = 0; ///< records delivered by the top-tree prefetch
  std::uint64_t suspends = 0;         ///< continuations parked at a cache miss
  std::uint64_t resumes = 0;          ///< continuations resumed by an absorbed pack
};

/// Data-shipping force phase over the same distributed tree the
/// function-shipping engine uses. Fills dt.particles' accumulators; the
/// result must agree with compute_forces_funcship to floating-point
/// accumulation order. Collective.
template <std::size_t D>
DataShipResult<D> compute_forces_dataship(mp::Communicator& comm,
                                          DistTree<D>& dt,
                                          const ForceOptions& opts);

}  // namespace bh::par
