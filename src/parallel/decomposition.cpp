#include "parallel/decomposition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace bh::par {

template <std::size_t D>
ClusterGrid<D>::ClusterGrid(Box<D> domain, unsigned m_per_axis)
    : domain_(domain), m_(m_per_axis) {
  if (!geom::is_pow2(m_))
    throw std::invalid_argument("clusters per axis must be a power of two");
  level_ = geom::log2_exact(m_);
  total_ = 1;
  for (std::size_t i = 0; i < D; ++i) total_ *= m_;
}

template <std::size_t D>
std::size_t ClusterGrid<D>::cluster_of(const Vec<D>& p) const {
  const auto g = geom::quantize(p, domain_, level_);
  std::size_t idx = 0;
  for (std::size_t a = D; a-- > 0;) idx = idx * m_ + g[a];
  return idx;
}

template <std::size_t D>
std::array<std::uint32_t, D> ClusterGrid<D>::coord_of(std::size_t idx) const {
  std::array<std::uint32_t, D> g{};
  for (std::size_t a = 0; a < D; ++a) {
    g[a] = static_cast<std::uint32_t>(idx % m_);
    idx /= m_;
  }
  return g;
}

template <std::size_t D>
NodeKey<D> ClusterGrid<D>::key_of(std::size_t idx) const {
  const auto g = coord_of(idx);
  std::array<std::uint64_t, D> g64{};
  for (std::size_t a = 0; a < D; ++a) g64[a] = g[a];
  const std::uint64_t m = geom::morton_encode<D>(g64);
  return {(std::uint64_t(1) << (D * level_)) | m};
}

template <std::size_t D>
std::uint64_t ClusterGrid<D>::morton_of(std::size_t idx) const {
  const auto g = coord_of(idx);
  std::array<std::uint64_t, D> g64{};
  for (std::size_t a = 0; a < D; ++a) g64[a] = g[a];
  return geom::morton_encode<D>(g64);
}

template <std::size_t D>
std::uint64_t ClusterGrid<D>::hilbert_of(std::size_t idx) const {
  return geom::hilbert_index<D>(coord_of(idx), level_);
}

template <std::size_t D>
Box<D> ClusterGrid<D>::box_of(std::size_t idx) const {
  return geom::box_of_key(key_of(idx), domain_);
}

template <std::size_t D>
std::vector<int> spsa_assignment(const ClusterGrid<D>& grid, int nprocs) {
  geom::GrayClusterMap<D> map(grid.per_axis(),
                              static_cast<unsigned>(nprocs));
  std::vector<int> owner(grid.count());
  for (std::size_t c = 0; c < grid.count(); ++c)
    // The Gray map targets the enclosing power-of-two hypercube; fold onto
    // the actual processor count (identity when nprocs is a power of two,
    // the paper's machine sizes).
    owner[c] = static_cast<int>(map.proc_of(grid.coord_of(c))) % nprocs;
  return owner;
}

std::vector<std::size_t> balanced_cuts(std::span<const std::uint64_t> loads,
                                       int nprocs) {
  const std::size_t n = loads.size();
  std::uint64_t total = 0;
  for (auto l : loads) total += l;
  std::vector<std::size_t> cut(static_cast<std::size_t>(nprocs) + 1, n);
  cut[0] = 0;
  if (total == 0) {  // no load information: equal-count runs
    for (int r = 1; r < nprocs; ++r)
      cut[static_cast<std::size_t>(r)] =
          n * static_cast<std::size_t>(r) / static_cast<std::size_t>(nprocs);
    return cut;
  }
  // Boundary r targets prefix load r * W / p (Section 3.3.3: load
  // boundaries 0, W/p, 2W/p, ...); the cut lands on whichever side of the
  // crossing cluster is closer to the target, halving the worst-case
  // overshoot of a first-reach rule.
  std::uint64_t prefix = 0;
  int r = 1;
  for (std::size_t i = 0; i < n && r < nprocs; ++i) {
    const std::uint64_t before = prefix;
    prefix += loads[i];
    while (r < nprocs &&
           prefix * static_cast<std::uint64_t>(nprocs) >=
               static_cast<std::uint64_t>(r) * total) {
      const std::uint64_t target =
          total * static_cast<std::uint64_t>(r) /
          static_cast<std::uint64_t>(nprocs);
      const bool closer_before =
          target - before < prefix - target && before > 0;
      cut[static_cast<std::size_t>(r++)] = closer_before ? i : i + 1;
    }
  }
  // Rounding down can make cuts non-monotone in degenerate cases; repair.
  for (int i = 1; i <= nprocs; ++i)
    cut[static_cast<std::size_t>(i)] = std::max(
        cut[static_cast<std::size_t>(i)], cut[static_cast<std::size_t>(i - 1)]);
  return cut;
}

template <std::size_t D>
std::vector<int> spda_assignment(const ClusterGrid<D>& grid,
                                 std::span<const std::uint64_t> loads,
                                 int nprocs, CurveKind curve) {
  assert(loads.size() == grid.count());
  // Order clusters along the chosen space-filling curve. This ordering is
  // fixed across iterations (the paper sorts once and keeps the list).
  std::vector<std::size_t> order(grid.count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> rankkey(grid.count());
  for (std::size_t c = 0; c < grid.count(); ++c)
    rankkey[c] = curve == CurveKind::kMorton ? grid.morton_of(c)
                                             : grid.hilbert_of(c);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rankkey[a] < rankkey[b];
  });

  std::vector<std::uint64_t> ordered_loads(grid.count());
  for (std::size_t i = 0; i < order.size(); ++i)
    ordered_loads[i] = loads[order[i]];
  const auto cut = balanced_cuts(ordered_loads, nprocs);

  std::vector<int> owner(grid.count(), 0);
  for (int r = 0; r < nprocs; ++r)
    for (std::size_t i = cut[r]; i < cut[r + 1]; ++i)
      owner[order[i]] = r;
  return owner;
}

double imbalance(std::span<const std::uint64_t> loads,
                 std::span<const int> owner, int nprocs) {
  assert(loads.size() == owner.size());
  std::vector<std::uint64_t> per(static_cast<std::size_t>(nprocs), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    per[static_cast<std::size_t>(owner[i])] += loads[i];
    total += loads[i];
  }
  if (total == 0) return 1.0;
  const double ideal = static_cast<double>(total) / nprocs;
  std::uint64_t mx = 0;
  for (auto l : per) mx = std::max(mx, l);
  return static_cast<double>(mx) / ideal;
}

template <std::size_t D>
std::vector<NodeKey<D>> cover_keys(NodeKey<D> first, NodeKey<D> last) {
  std::vector<NodeKey<D>> out;
  const unsigned L = first.level();
  assert(last.level() == L);
  const std::uint64_t base = std::uint64_t(1) << (D * L);
  std::uint64_t lo = first.v & (base - 1);
  const std::uint64_t hi = last.v & (base - 1);
  if (lo > hi) return out;
  while (lo <= hi) {
    // Largest aligned block starting at lo that fits inside [lo, hi].
    unsigned h = 0;
    while (h < L) {
      const std::uint64_t size = std::uint64_t(1) << (D * (h + 1));
      if (lo % size != 0 || lo + size - 1 > hi) break;
      ++h;
    }
    const std::uint64_t size = std::uint64_t(1) << (D * h);
    out.push_back(NodeKey<D>{(base >> (D * h)) | (lo >> (D * h))});
    if (hi - lo < size) break;  // avoid overflow at the top of the range
    lo += size;
  }
  return out;
}

#define BH_INSTANTIATE(D)                                                  \
  template class ClusterGrid<D>;                                           \
  template std::vector<int> spsa_assignment<D>(const ClusterGrid<D>&,      \
                                               int);                       \
  template std::vector<int> spda_assignment<D>(                            \
      const ClusterGrid<D>&, std::span<const std::uint64_t>, int,          \
      CurveKind);                                                          \
  template std::vector<NodeKey<D>> cover_keys<D>(NodeKey<D>, NodeKey<D>);

BH_INSTANTIATE(2)
BH_INSTANTIATE(3)
#undef BH_INSTANTIATE

}  // namespace bh::par
