#include "parallel/dataship.hpp"

#include <thread>
#include <unordered_map>

#include "mp/wire.hpp"
#include "obs/prof/prof.hpp"
#include "obs/trace.hpp"
#include "parallel/ship/progress.hpp"
#include "parallel/ship/termination.hpp"

namespace bh::par {

namespace proto = bh::mp::proto;

namespace {

/// Wire header of one fetched child node.
template <std::size_t D>
struct ChildHeader {
  std::uint64_t key;
  double mass;
  Vec<D> com;
  double rmax;
  std::uint32_t count;
  std::uint8_t is_leaf;
  std::uint8_t pad_[3] = {};
};

/// One remote node materialized in the local cache ("hash function based on
/// Morton keys that map nodes of the tree into a memory").
template <std::size_t D>
struct CachedNode {
  double mass = 0.0;
  Vec<D> com{};
  double rmax = 0.0;
  std::uint32_t count = 0;
  bool is_leaf = false;
  bool children_fetched = false;
  std::uint8_t child_mask = 0;  ///< which octants exist (after fetch)
  geom::Box<D> box{};
  int owner = -1;
  std::vector<model::ParticleRecord<D>> leaf_particles;
  multipole::Expansion<D> exp;
};

template <std::size_t D>
class Engine {
 public:
  Engine(mp::Communicator& comm, DistTree<D>& dt, const ForceOptions& opts)
      : comm_(comm), dt_(dt), opts_(opts), progress_(comm) {
    if (auto* t = comm_.tracer()) proto::name_all_tags(*t);
    topts_.alpha = opts.alpha;
    topts_.softening = opts.softening;
    topts_.kind = opts.kind;
    topts_.use_expansions = dt.tree.has_expansions();
    topts_.record_load = false;
    result_.work.degree = topts_.use_expansions ? dt.tree.degree : 0;
    // Seed the cache with the (replicated) remote branch nodes.
    for (std::size_t b = 0; b < dt_.branches.size(); ++b) {
      if (dt_.is_mine(b)) continue;
      const auto ni = dt_.branch_node[b];
      const auto& n = dt_.tree.nodes[static_cast<std::size_t>(ni)];
      CachedNode<D> c;
      c.mass = n.mass;
      c.com = n.com;
      c.rmax = n.rmax;
      c.count = n.count;
      c.is_leaf = false;
      c.box = n.box;
      c.owner = n.owner;
      if (dt_.tree.has_expansions())
        c.exp = dt_.tree.expansions[static_cast<std::size_t>(ni)];
      cache_.emplace(n.key.v, std::move(c));
    }
  }

  DataShipResult<D> run() {
    {
      // Exclusive wall attribution: fetch serving nests its own region, so
      // this one reads as pure client-side traversal + kernel time.
      BH_PROF_REGION("force.traverse");
      for (std::uint32_t s = 0; s < dt_.tree.perm.size(); ++s) {
        const auto pi = dt_.tree.perm[s];
        traverse(pi);
        // Keep serving fetches so peers are never starved.
        while (poll()) {
        }
      }
      obs::prof::count_flops(result_.work.flops());
      obs::prof::count_bytes(tree::traversal_bytes<D>(result_.work));
    }
    BH_PROF_REGION("ship.drain");
    // Monotone termination vote on the shared ship substrate; the accrued
    // service costs fold into the clock once every fetch this rank will
    // ever serve has been served (deterministic final clock).
    ship::Termination term(comm_, opts_.done_counter);
    term.vote_and_drain([this] { return poll(); });
    progress_.fold();
    term.finish();
    return result_;
  }

 private:
  struct Frame {
    bool remote;
    std::int32_t ni;
    std::uint64_t key;
  };

  void traverse(std::uint32_t pi) {
    auto& ps = dt_.particles;
    const Vec<D> target = ps.pos[pi];
    const std::uint64_t self = ps.id[pi];
    multipole::FieldSample<D> field;

    std::vector<Frame> stack;
    stack.push_back({false, 0, 0});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (!f.remote) {
        const auto& n = dt_.tree.nodes[static_cast<std::size_t>(f.ni)];
        if (n.count == 0 && !n.is_remote) continue;
        const double dist = geom::norm(target - n.com);
        ++result_.work.mac_evals;
        bool accept = dist > 0.0 &&
                      (n.box.edge / dist) < opts_.alpha &&
                      !n.box.contains(target);
        if (accept && topts_.use_expansions && dist <= n.rmax * 1.001)
          accept = false;  // expansion divergence guard (see tree layer)
        if (accept && !(n.is_leaf && n.count == 1)) {
          if (topts_.use_expansions) {
            const auto& e =
                dt_.tree.expansions[static_cast<std::size_t>(f.ni)];
            if (opts_.kind == tree::FieldKind::kPotential)
              field.potential += e.evaluate_potential(target);
            else
              field += e.evaluate(target);
          } else {
            field +=
                multipole::point_kernel<D>(target, n.com, n.mass,
                                           opts_.softening);
          }
          ++result_.work.interactions;
          continue;
        }
        if (n.is_remote) {
          // Owner-computes becomes fetch-and-compute: descend through the
          // cached image of the remote subtree.
          stack.push_back({true, -1, n.key.v});
          continue;
        }
        if (n.is_leaf) {
          for (std::uint32_t t = n.first; t < n.first + n.count; ++t) {
            const auto pj = dt_.tree.perm[t];
            if (ps.id[pj] == self) continue;
            field += multipole::point_kernel<D>(target, ps.pos[pj],
                                                ps.mass[pj],
                                                opts_.softening);
            ++result_.work.direct_pairs;
          }
          continue;
        }
        for (const auto c : n.child)
          if (c != tree::kNullNode) stack.push_back({false, c, 0});
        continue;
      }

      // Remote frame: the node lives in the cache.
      ++result_.hash_probes;
      auto it = cache_.find(f.key);
      if (it == cache_.end())
        throw std::logic_error("data-ship: uncached remote node");
      CachedNode<D>& cn = it->second;
      if (cn.count == 0) continue;
      const double dist = geom::norm(target - cn.com);
      ++result_.work.mac_evals;
      bool accept = dist > 0.0 &&
                    (cn.box.edge / dist) < opts_.alpha &&
                    !cn.box.contains(target);
      if (accept && topts_.use_expansions && dist <= cn.rmax * 1.001)
        accept = false;
      if (accept && !(cn.is_leaf && cn.count == 1)) {
        if (topts_.use_expansions) {
          if (opts_.kind == tree::FieldKind::kPotential)
            field.potential += cn.exp.evaluate_potential(target);
          else
            field += cn.exp.evaluate(target);
        } else {
          field += multipole::point_kernel<D>(target, cn.com, cn.mass,
                                              opts_.softening);
        }
        ++result_.work.interactions;
        continue;
      }
      if (cn.is_leaf) {
        for (const auto& rec : cn.leaf_particles) {
          field += multipole::point_kernel<D>(target, rec.pos, rec.mass,
                                              opts_.softening);
          ++result_.work.direct_pairs;
        }
        continue;
      }
      if (!cn.children_fetched) {
        fetch_children(f.key, cn.owner);
        // The map may have rehashed; re-find.
        it = cache_.find(f.key);
        it->second.children_fetched = true;
        if (it->second.is_leaf) {
          // The node turned out to be a leaf on its owner (a small branch
          // subtree); revisit it to take the leaf path.
          stack.push_back(f);
          continue;
        }
      } else {
        ++result_.cache_hits;
      }
      const geom::NodeKey<D> key{f.key};
      for (unsigned d = 0; d < (1u << D); ++d)
        if (it->second.child_mask & (1u << d))
          stack.push_back({true, -1, key.child(d).v});
    }

    if (opts_.kind != tree::FieldKind::kPotential) ps.acc[pi] += field.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[pi] += field.potential;
    comm_.advance_flops(result_.work.flops() - flops_charged_);
    flops_charged_ = result_.work.flops();
  }

  /// Blocking RPC: request the children of `key` from `owner` and insert
  /// them into the cache; serves incoming fetches while waiting. The wait
  /// charges the clock to the reply's modeled arrival -- a deterministic
  /// stamp from the owner's service lane -- never to the physical moment
  /// the reply surfaced.
  void fetch_children(std::uint64_t key, int owner) {
    comm_.send_value(owner, proto::kTagFetch, key);
    ++result_.fetch_requests;
    for (;;) {
      auto m = progress_.next();
      if (!m) {
        std::this_thread::yield();
        continue;
      }
      if (m->tag == proto::kTagFetch) {
        serve_fetch(*m);
        continue;
      }
      // Our reply: a blocking RPC with one fetch outstanding at a time, so
      // the only legitimate non-fetch arrival is the owner's kTagNodeData.
      // Anything else is a protocol violation -- e.g. a message leaked by
      // an earlier phase -- and must not be fed to the wire parser as if
      // it were node data.
      if (m->src != owner || m->tag != proto::kTagNodeData)
        throw std::logic_error(
            "data-ship: unexpected message (src=" + std::to_string(m->src) +
            ", tag=" + std::to_string(m->tag) + ") while awaiting children " +
            "of key " + std::to_string(key) + " from rank " +
            std::to_string(owner));
      progress_.wait_until(comm_.arrival_time(*m));
      absorb_children(key, owner, *m);
      return;
    }
  }

  void absorb_children(std::uint64_t parent_key, int owner,
                       const mp::Message& m) {
    mp::ByteReader r(m.payload);
    const auto mask = r.get<std::uint8_t>();
    const auto self_is_leaf = r.get<std::uint8_t>();
    auto& pn = cache_.at(parent_key);
    pn.child_mask = mask;
    if (self_is_leaf) {
      pn.is_leaf = true;
      pn.leaf_particles = r.get_vector<model::ParticleRecord<D>>();
      ++result_.nodes_fetched;
      return;
    }
    const unsigned degree = dt_.tree.degree;
    const std::size_t stride = expansion_stride<D>(degree);
    for (unsigned d = 0; d < (1u << D); ++d) {
      if (!(mask & (1u << d))) continue;
      const auto h = r.get<ChildHeader<D>>();
      CachedNode<D> c;
      c.mass = h.mass;
      c.com = h.com;
      c.rmax = h.rmax;
      c.count = h.count;
      c.is_leaf = h.is_leaf != 0;
      c.box = pn.box.child(d);
      c.owner = owner;
      c.leaf_particles = r.get_vector<model::ParticleRecord<D>>();
      if (degree > 0) {
        const auto coeffs = r.get_vector<double>();
        c.exp = stride && coeffs.size() == stride
                    ? unpack_expansion<D>(coeffs.data(), degree, c.com,
                                          c.mass)
                    : multipole::Expansion<D>(degree, c.com);
      }
      cache_[h.key] = std::move(c);
      ++result_.nodes_fetched;
    }
  }

  bool poll() {
    auto m = progress_.next(mp::kAnySource, proto::kTagFetch);
    if (!m) return false;
    serve_fetch(*m);
    return true;
  }

  /// Answer one fetch. The reply is stamped from the requester's service
  /// lane (pinned to the request's arrival); the send overhead accrues for
  /// the end-of-phase fold rather than hitting the clock at this
  /// physically-timed poll, so the server's own send stamps stay
  /// schedule-independent.
  void serve_fetch(const mp::Message& m) {
    BH_PROF_REGION("ship.serve");
    const double arr = comm_.arrival_time(m);
    const auto key = mp::Communicator::unpack<std::uint64_t>(m)[0];
    const auto ni = dt_.tree.find(geom::NodeKey<D>{key});
    if (ni == tree::kNullNode)
      throw std::logic_error("data-ship: fetch for unknown node");
    const auto& n = dt_.tree.nodes[static_cast<std::size_t>(ni)];
    mp::ByteWriter w;
    std::uint8_t mask = 0;
    for (unsigned d = 0; d < (1u << D); ++d)
      if (n.child[d] != tree::kNullNode) mask |= 1u << d;
    w.put(mask);
    // A leaf has no children to hand out; the requester gets the leaf's
    // particle data instead (arises when an entire branch subtree is one
    // leaf).
    w.put(static_cast<std::uint8_t>(n.is_leaf ? 1 : 0));
    if (n.is_leaf) {
      std::vector<model::ParticleRecord<D>> recs;
      recs.reserve(n.count);
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        recs.push_back(model::record_of(dt_.particles, dt_.tree.perm[s]));
      w.put_span<model::ParticleRecord<D>>(recs);
      comm_.send_bytes_stamped(m.src, proto::kTagNodeData, w.bytes(),
                               progress_.serve(m.src, arr, 0),
                               /*charge_overhead=*/false);
      return;
    }
    const unsigned degree = dt_.tree.degree;
    const std::size_t stride = expansion_stride<D>(degree);
    for (unsigned d = 0; d < (1u << D); ++d) {
      if (!(mask & (1u << d))) continue;
      const auto ci = n.child[d];
      const auto& c = dt_.tree.nodes[static_cast<std::size_t>(ci)];
      ChildHeader<D> h{c.key.v, c.mass, c.com, c.rmax, c.count,
                       static_cast<std::uint8_t>(c.is_leaf ? 1 : 0)};
      w.put(h);
      std::vector<model::ParticleRecord<D>> recs;
      if (c.is_leaf) {
        recs.reserve(c.count);
        for (std::uint32_t s = c.first; s < c.first + c.count; ++s) {
          const auto pi = dt_.tree.perm[s];
          recs.push_back(model::record_of(dt_.particles, pi));
        }
      }
      w.put_span<model::ParticleRecord<D>>(recs);
      if (degree > 0) {
        // The multipole series is the payload whose size grows as O(k^2)
        // (Section 4.2.1) -- the heart of the paradigm comparison.
        std::vector<double> coeffs(stride);
        pack_expansion<D>(dt_.tree.expansions[static_cast<std::size_t>(ci)],
                          coeffs.data());
        w.put_span<double>(coeffs);
      }
    }
    if (auto* t = comm_.tracer())
      t->instant("dataship.serve", w.bytes().size(), comm_.vtime());
    obs::prof::count_bytes(w.bytes().size());
    comm_.send_bytes_stamped(m.src, proto::kTagNodeData, w.bytes(),
                             progress_.serve(m.src, arr, 0),
                             /*charge_overhead=*/false);
  }

  mp::Communicator& comm_;
  DistTree<D>& dt_;
  ForceOptions opts_;
  tree::TraversalOptions topts_;
  std::unordered_map<std::uint64_t, CachedNode<D>> cache_;
  ship::Progress progress_;
  DataShipResult<D> result_;
  std::uint64_t flops_charged_ = 0;
};

}  // namespace

template <std::size_t D>
DataShipResult<D> compute_forces_dataship(mp::Communicator& comm,
                                          DistTree<D>& dt,
                                          const ForceOptions& opts) {
  Engine<D> e(comm, dt, opts);
  return e.run();
}

template DataShipResult<2> compute_forces_dataship<2>(mp::Communicator&,
                                                      DistTree<2>&,
                                                      const ForceOptions&);
template DataShipResult<3> compute_forces_dataship<3>(mp::Communicator&,
                                                      DistTree<3>&,
                                                      const ForceOptions&);

}  // namespace bh::par
