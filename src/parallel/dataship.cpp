#include "parallel/dataship.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <thread>

#include "mp/wire.hpp"
#include "obs/prof/prof.hpp"
#include "obs/trace.hpp"
#include "parallel/cache/node_cache.hpp"
#include "parallel/ship/progress.hpp"
#include "parallel/ship/termination.hpp"

namespace bh::par {

namespace proto = bh::mp::proto;

namespace {

using cache::CachedNode;

/// Wire header of one fetched child node (sync single-node protocol).
template <std::size_t D>
struct ChildHeader {
  std::uint64_t key;
  double mass;
  Vec<D> com;
  double rmax;
  std::uint32_t count;
  std::uint8_t is_leaf;
  std::uint8_t pad_[3] = {};
};

template <std::size_t D>
class Engine {
 public:
  Engine(mp::Communicator& comm, DistTree<D>& dt, const ForceOptions& opts)
      : comm_(comm), dt_(dt), opts_(opts), progress_(comm) {
    if (auto* t = comm_.tracer()) proto::name_all_tags(*t);
    topts_.alpha = opts.alpha;
    topts_.softening = opts.softening;
    topts_.kind = opts.kind;
    topts_.use_expansions = dt.tree.has_expansions();
    topts_.record_load = false;
    result_.work.degree = topts_.use_expansions ? dt.tree.degree : 0;
    inflight_.assign(static_cast<std::size_t>(comm_.size()), 0);
    prefetch_inflight_.assign(static_cast<std::size_t>(comm_.size()), 0);
    // Seed the cache with the (replicated) remote branch nodes.
    for (std::size_t b = 0; b < dt_.branches.size(); ++b) {
      if (dt_.is_mine(b)) continue;
      const auto ni = dt_.branch_node[b];
      const auto& n = dt_.tree.nodes[static_cast<std::size_t>(ni)];
      CachedNode<D> c;
      c.mass = n.mass;
      c.com = n.com;
      c.rmax = n.rmax;
      c.count = n.count;
      c.is_leaf = false;
      c.box = n.box;
      c.owner = n.owner;
      if (dt_.tree.has_expansions())
        c.exp = dt_.tree.expansions[static_cast<std::size_t>(ni)];
      cache_.put(n.key.v, std::move(c));
    }
  }

  DataShipResult<D> run() {
    {
      // Exclusive wall attribution: fetch serving nests its own region, so
      // this one reads as pure client-side traversal + kernel time.
      BH_PROF_REGION("force.traverse");
      if (opts_.node_cache == NodeCacheMode::kAsync)
        run_async();
      else
        run_sync();
      obs::prof::count_flops(result_.work.flops());
      obs::prof::count_bytes(tree::traversal_bytes<D>(result_.work));
    }
    BH_PROF_REGION("ship.drain");
    // Monotone termination vote on the shared ship substrate; the accrued
    // service costs fold into the clock once every fetch this rank will
    // ever serve has been served (deterministic final clock).
    ship::Termination term(comm_, opts_.done_counter);
    term.vote_and_drain([this] { return poll(); });
    progress_.fold();
    term.finish();
    export_counters();
    return result_;
  }

 private:
  struct Frame {
    bool remote;
    std::int32_t ni;
    std::uint64_t key;
  };

  /// Marker `ni` of a remote frame re-pushed at a suspension point: on
  /// resume the pack below `key` has been absorbed, so the frame expands
  /// the node's children without recounting the probe and MAC already
  /// charged before the suspend (keeps work counters bit-identical to the
  /// sync oracle, which also evaluates the MAC exactly once on this path).
  static constexpr std::int32_t kPostFetch = -2;

  /// One suspended particle traversal: the field accumulated so far plus
  /// the explicit descent stack to resume from.
  struct Cont {
    std::uint32_t pi = 0;
    multipole::FieldSample<D> field;
    std::vector<Frame> stack;
  };

  // ---- the traversal core, shared by both cache modes --------------------
  //
  // Field accumulation order within a particle is a pure function of the
  // stack discipline below, and both modes use it unchanged -- which is
  // why async fields are bit-identical to the sync oracle's at any p.

  void local_frame(const Frame& f, const Vec<D>& target, std::uint64_t self,
                   multipole::FieldSample<D>& field,
                   std::vector<Frame>& stack) {
    const auto& n = dt_.tree.nodes[static_cast<std::size_t>(f.ni)];
    if (n.count == 0 && !n.is_remote) return;
    const double dist = geom::norm(target - n.com);
    ++result_.work.mac_evals;
    bool accept = dist > 0.0 &&
                  (n.box.edge / dist) < opts_.alpha &&
                  !n.box.contains(target);
    if (accept && topts_.use_expansions && dist <= n.rmax * 1.001)
      accept = false;  // expansion divergence guard (see tree layer)
    if (accept && !(n.is_leaf && n.count == 1)) {
      if (topts_.use_expansions) {
        const auto& e = dt_.tree.expansions[static_cast<std::size_t>(f.ni)];
        if (opts_.kind == tree::FieldKind::kPotential)
          field.potential += e.evaluate_potential(target);
        else
          field += e.evaluate(target);
      } else {
        field += multipole::point_kernel<D>(target, n.com, n.mass,
                                            opts_.softening);
      }
      ++result_.work.interactions;
      return;
    }
    if (n.is_remote) {
      // Owner-computes becomes fetch-and-compute: descend through the
      // cached image of the remote subtree.
      stack.push_back({true, -1, n.key.v});
      return;
    }
    if (n.is_leaf) {
      auto& ps = dt_.particles;
      for (std::uint32_t t = n.first; t < n.first + n.count; ++t) {
        const auto pj = dt_.tree.perm[t];
        if (ps.id[pj] == self) continue;
        field += multipole::point_kernel<D>(target, ps.pos[pj], ps.mass[pj],
                                            opts_.softening);
        ++result_.work.direct_pairs;
      }
      return;
    }
    for (const auto c : n.child)
      if (c != tree::kNullNode) stack.push_back({false, c, 0});
  }

  enum class RemoteVisit { kDone, kMiss };

  /// Visit one cached remote node. kMiss means the traversal needs the
  /// node's children and they are not cached yet; the caller decides
  /// whether to block (sync) or suspend (async). All counting up to that
  /// decision lives here so the two modes cannot drift apart.
  RemoteVisit remote_frame(const Frame& f, const Vec<D>& target,
                           multipole::FieldSample<D>& field,
                           std::vector<Frame>& stack) {
    ++result_.hash_probes;
    CachedNode<D>* cn = cache_.find(f.key);
    if (!cn)
      comm_.protocol_abort("data-ship: uncached remote node " +
                           std::to_string(f.key));
    if (cn->count == 0) return RemoteVisit::kDone;
    const double dist = geom::norm(target - cn->com);
    ++result_.work.mac_evals;
    bool accept = dist > 0.0 &&
                  (cn->box.edge / dist) < opts_.alpha &&
                  !cn->box.contains(target);
    if (accept && topts_.use_expansions && dist <= cn->rmax * 1.001)
      accept = false;
    if (accept && !(cn->is_leaf && cn->count == 1)) {
      if (topts_.use_expansions) {
        if (opts_.kind == tree::FieldKind::kPotential)
          field.potential += cn->exp.evaluate_potential(target);
        else
          field += cn->exp.evaluate(target);
      } else {
        field += multipole::point_kernel<D>(target, cn->com, cn->mass,
                                            opts_.softening);
      }
      ++result_.work.interactions;
      return RemoteVisit::kDone;
    }
    if (cn->is_leaf) {
      for (const auto& rec : cn->leaf_particles) {
        field += multipole::point_kernel<D>(target, rec.pos, rec.mass,
                                            opts_.softening);
        ++result_.work.direct_pairs;
      }
      return RemoteVisit::kDone;
    }
    if (!cn->children_fetched) return RemoteVisit::kMiss;
    ++result_.cache_hits;
    push_remote_children(f.key, cn->child_mask, stack);
    return RemoteVisit::kDone;
  }

  /// Direct sum over a fetched leaf's particles, after a miss revealed
  /// the node is a leaf on its owner. The MAC that triggered the fetch
  /// already rejected this node, and the absorb reproduces its record
  /// bitwise, so re-deciding is pointless: both modes evaluate straight
  /// from the particles with no extra probe or MAC. (A recount here would
  /// also break parity -- sync revisits once per fetch, but a coalesced
  /// async waiter would revisit once per *waiter*.)
  void remote_leaf_eval(const CachedNode<D>& cn, const Vec<D>& target,
                        multipole::FieldSample<D>& field) {
    for (const auto& rec : cn.leaf_particles) {
      field += multipole::point_kernel<D>(target, rec.pos, rec.mass,
                                          opts_.softening);
      ++result_.work.direct_pairs;
    }
  }

  void push_remote_children(std::uint64_t key_v, std::uint8_t mask,
                            std::vector<Frame>& stack) {
    const geom::NodeKey<D> key{key_v};
    for (unsigned d = 0; d < (1u << D); ++d)
      if (mask & (1u << d)) stack.push_back({true, -1, key.child(d).v});
  }

  // ---- sync mode: blocking RPC, one fetch at a time (parity oracle) ------

  void run_sync() {
    for (std::uint32_t s = 0; s < dt_.tree.perm.size(); ++s) {
      const auto pi = dt_.tree.perm[s];
      traverse(pi);
      // Keep serving fetches so peers are never starved.
      while (poll()) {
      }
    }
  }

  void traverse(std::uint32_t pi) {
    auto& ps = dt_.particles;
    const Vec<D> target = ps.pos[pi];
    const std::uint64_t self = ps.id[pi];
    multipole::FieldSample<D> field;

    std::vector<Frame> stack;
    stack.push_back({false, 0, 0});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (!f.remote) {
        local_frame(f, target, self, field, stack);
        continue;
      }
      if (remote_frame(f, target, field, stack) == RemoteVisit::kMiss) {
        fetch_children(f.key, cache_.at(f.key).owner);
        CachedNode<D>& cn = cache_.at(f.key);
        cn.children_fetched = true;
        if (cn.is_leaf) {
          remote_leaf_eval(cn, target, field);
          continue;
        }
        push_remote_children(f.key, cn.child_mask, stack);
      }
    }

    if (opts_.kind != tree::FieldKind::kPotential) ps.acc[pi] += field.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[pi] += field.potential;
    comm_.advance_flops(result_.work.flops() - flops_charged_);
    flops_charged_ = result_.work.flops();
  }

  /// Blocking RPC: request the children of `key` from `owner` and insert
  /// them into the cache; serves incoming fetches while waiting. The wait
  /// charges the clock to the reply's modeled arrival -- a deterministic
  /// stamp from the owner's service lane -- never to the physical moment
  /// the reply surfaced.
  void fetch_children(std::uint64_t key, int owner) {
    comm_.send_value(owner, proto::kTagFetch, key);
    ++result_.fetch_requests;
    for (;;) {
      auto m = progress_.next();
      if (!m) {
        std::this_thread::yield();
        continue;
      }
      if (m->tag == proto::kTagFetch) {
        serve_fetch(*m);
        continue;
      }
      // Our reply: a blocking RPC with one fetch outstanding at a time, so
      // the only legitimate non-fetch arrival is the owner's kTagNodeData.
      // Anything else is a protocol violation -- e.g. a message leaked by
      // an earlier phase -- and must not be fed to the wire parser as if
      // it were node data.
      if (m->src != owner || m->tag != proto::kTagNodeData)
        comm_.protocol_abort(
            "data-ship: unexpected message (src=" + std::to_string(m->src) +
            ", tag=" + std::to_string(m->tag) + ") while awaiting children " +
            "of key " + std::to_string(key) + " from rank " +
            std::to_string(owner));
      progress_.wait_until(comm_.arrival_time(*m));
      absorb_children(key, owner, *m);
      return;
    }
  }

  void absorb_children(std::uint64_t parent_key, int owner,
                       const mp::Message& m) {
    mp::ByteReader r(m.payload);
    const auto mask = r.get<std::uint8_t>();
    const auto self_is_leaf = r.get<std::uint8_t>();
    auto& pn = cache_.at(parent_key);
    pn.child_mask = mask;
    if (self_is_leaf) {
      pn.is_leaf = true;
      pn.leaf_particles = r.get_vector<model::ParticleRecord<D>>();
      ++result_.nodes_fetched;
      return;
    }
    const unsigned degree = dt_.tree.degree;
    const std::size_t stride = expansion_stride<D>(degree);
    for (unsigned d = 0; d < (1u << D); ++d) {
      if (!(mask & (1u << d))) continue;
      const auto h = r.get<ChildHeader<D>>();
      CachedNode<D> c;
      c.mass = h.mass;
      c.com = h.com;
      c.rmax = h.rmax;
      c.count = h.count;
      c.is_leaf = h.is_leaf != 0;
      c.box = pn.box.child(d);
      c.owner = owner;
      c.leaf_particles = r.get_vector<model::ParticleRecord<D>>();
      if (degree > 0) {
        const auto coeffs = r.get_vector<double>();
        c.exp = stride && coeffs.size() == stride
                    ? unpack_expansion<D>(coeffs.data(), degree, c.com,
                                          c.mass)
                    : multipole::Expansion<D>(degree, c.com);
      }
      cache_.put(h.key, std::move(c));
      ++result_.nodes_fetched;
    }
  }

  // ---- async mode: prefetch + coalesced packs + continuations ------------

  void run_async() {
    prefetch();
    for (std::uint32_t s = 0; s < dt_.tree.perm.size(); ++s) {
      const auto id = make_cont(dt_.tree.perm[s]);
      step(id);
      // Keep serving fetches so peers are never starved.
      while (poll()) {
      }
    }
    // Resolution rounds: pull in every outstanding pack, then resume the
    // parked continuations in ascending-key, FIFO-within-key order -- a
    // schedule that depends only on the traversal, never on reply timing.
    while (cache_.has_pending()) {
      drain_replies();
      for (auto& [key, waiters] : cache_.take_resolved()) {
        (void)key;
        for (const auto id : waiters) {
          ++result_.resumes;
          step(id);
          while (poll()) {
          }
        }
      }
    }
  }

  /// Request the top `prefetch_depth` levels of every remote owner's
  /// branch subtrees in one pack per owner, before any particle traverses
  /// (Section 4.2.4's working set is front-loaded into p-1 messages). The
  /// requests are fire-and-forget: the roots are marked pending so early
  /// traversals coalesce onto them, and the packs are absorbed in the
  /// resolution rounds after local work has overlapped the transfer --
  /// blocking on them here would serialize the biggest messages of the
  /// phase into pure recv_wait.
  void prefetch() {
    if (opts_.prefetch_depth <= 0) return;
    // Conservative MAC prune (the locally essential set of Section 4.2): a
    // branch root that provably passes the opening criterion for *every*
    // local target is evaluated straight from its replicated branch record
    // and never opened, so packing its subtree would be pure over-fetch.
    // The test is against the local targets' bounding box; wrongly keeping
    // a root costs bytes, wrongly skipping one costs a single on-demand
    // miss, and the computed fields depend on neither.
    const auto& ps = dt_.particles;
    const bool have_targets = !dt_.tree.perm.empty();
    Vec<D> tlo{}, thi{};
    if (have_targets) {
      tlo = thi = ps.pos[dt_.tree.perm[0]];
      for (const auto pi : dt_.tree.perm)
        for (std::size_t d = 0; d < D; ++d) {
          tlo[d] = std::min(tlo[d], ps.pos[pi][d]);
          thi[d] = std::max(thi[d], ps.pos[pi][d]);
        }
    }
    const auto may_open = [&](const tree::Node<D>& n) {
      if (!have_targets) return false;
      for (std::size_t d = 0; d < D; ++d)
        if (thi[d] < n.box.lo[d] || tlo[d] >= n.box.lo[d] + n.box.edge)
          goto disjoint;
      return true;  // a target may sit inside the node's box
    disjoint:
      double d2 = 0.0;
      for (std::size_t d = 0; d < D; ++d) {
        const double dd = n.com[d] < tlo[d]   ? tlo[d] - n.com[d]
                          : n.com[d] > thi[d] ? n.com[d] - thi[d]
                                              : 0.0;
        d2 += dd * dd;
      }
      const double mind = std::sqrt(d2);
      if (mind <= 0.0) return true;
      if (!(n.box.edge / mind < opts_.alpha)) return true;
      if (topts_.use_expansions && mind <= n.rmax * 1.001) return true;
      return false;
    };
    std::vector<std::vector<std::uint64_t>> roots(
        static_cast<std::size_t>(comm_.size()));
    for (std::size_t b = 0; b < dt_.branches.size(); ++b) {
      if (dt_.is_mine(b)) continue;
      const auto& bw = dt_.branches[b];
      const auto ni = dt_.branch_node[b];
      if (!may_open(dt_.tree.nodes[static_cast<std::size_t>(ni)])) continue;
      roots[static_cast<std::size_t>(bw.owner)].push_back(bw.key);
    }
    for (int o = 0; o < comm_.size(); ++o) {
      auto& r = roots[static_cast<std::size_t>(o)];
      if (r.empty()) continue;
      send_pack_request(o, static_cast<std::uint32_t>(opts_.prefetch_depth),
                        r);
      ++prefetch_inflight_[static_cast<std::size_t>(o)];
      for (const auto key : r) cache_.mark_pending(key);
    }
  }

  void send_pack_request(int owner, std::uint32_t depth,
                         std::span<const std::uint64_t> roots) {
    mp::ByteWriter w;
    cache::write_pack_request(w, depth, roots);
    comm_.send_bytes(owner, proto::kTagFetchPack, w.bytes());
    ++result_.fetch_requests;
    ++inflight_[static_cast<std::size_t>(owner)];
  }

  /// Pop every outstanding pack reply, serving peers while waiting.
  /// Replies are absorbed per owner in ascending rank order and FIFO
  /// within an owner (the mailbox preserves per-pair order), so cache
  /// state after a drain is deterministic.
  void drain_replies() {
    for (int o = 0; o < comm_.size(); ++o) {
      while (inflight_[static_cast<std::size_t>(o)] > 0) {
        auto m = progress_.next(o, proto::kTagNodePack);
        if (!m) {
          if (!poll()) std::this_thread::yield();
          continue;
        }
        progress_.wait_until(comm_.arrival_time(*m));
        absorb_pack(*m);
      }
    }
  }

  void absorb_pack(const mp::Message& m) {
    // The reply lane from an owner is FIFO against this rank's request
    // order, and the prefetch request (if any) was the first one sent to
    // that owner -- so the leading prefetch_inflight_ replies are the
    // prefetch packs, deterministically.
    auto& pre = prefetch_inflight_[static_cast<std::size_t>(m.src)];
    const bool prefetching = pre > 0;
    if (prefetching) --pre;
    try {
      const auto a =
          cache_.absorb(m.payload, m.src, dt_.tree.root_box, dt_.tree.degree);
      result_.nodes_fetched += a.records;
      if (prefetching) result_.prefetched_nodes += a.records;
    } catch (const std::out_of_range& e) {
      comm_.protocol_abort(std::string("data-ship: malformed node pack: ") +
                           e.what());
    }
    --inflight_[static_cast<std::size_t>(m.src)];
  }

  std::uint32_t make_cont(std::uint32_t pi) {
    std::uint32_t id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(conts_.size());
      conts_.emplace_back();
    }
    Cont& c = conts_[id];
    c.pi = pi;
    c.field = {};
    c.stack.clear();
    c.stack.push_back({false, 0, 0});
    return id;
  }

  /// Advance continuation `id` until its particle finishes (accumulators
  /// written, flops charged, id recycled) or it suspends at a cache miss.
  /// Returns true when the particle finished.
  bool step(std::uint32_t id) {
    Cont& cont = conts_[id];
    auto& ps = dt_.particles;
    const Vec<D> target = ps.pos[cont.pi];
    const std::uint64_t self = ps.id[cont.pi];
    while (!cont.stack.empty()) {
      const Frame f = cont.stack.back();
      cont.stack.pop_back();
      if (!f.remote) {
        local_frame(f, target, self, cont.field, cont.stack);
        continue;
      }
      if (f.ni == kPostFetch) {
        // Resumed: the pack rooted at f.key has been absorbed (requested
        // roots' children are always packed, so the node is expandable).
        CachedNode<D>* cn = cache_.find(f.key);
        if (!cn)
          comm_.protocol_abort("data-ship: resumed node " +
                               std::to_string(f.key) + " not in cache");
        if (cn->is_leaf) {
          remote_leaf_eval(*cn, target, cont.field);
          continue;
        }
        push_remote_children(f.key, cn->child_mask, cont.stack);
        continue;
      }
      if (remote_frame(f, target, cont.field, cont.stack) ==
          RemoteVisit::kMiss) {
        // Suspend: park the continuation on the key. The first requester
        // sends one pack fetch; later ones coalesce onto it.
        ++result_.suspends;
        cont.stack.push_back({true, kPostFetch, f.key});
        const int owner = cache_.at(f.key).owner;
        if (cache_.request(f.key, id)) {
          const std::uint64_t root = f.key;
          send_pack_request(
              owner,
              static_cast<std::uint32_t>(std::max(1, opts_.pack_depth)),
              std::span<const std::uint64_t>(&root, 1));
        } else {
          ++result_.coalesced;
        }
        return false;
      }
    }

    if (opts_.kind != tree::FieldKind::kPotential)
      ps.acc[cont.pi] += cont.field.acc;
    if (opts_.kind != tree::FieldKind::kForce)
      ps.potential[cont.pi] += cont.field.potential;
    comm_.advance_flops(result_.work.flops() - flops_charged_);
    flops_charged_ = result_.work.flops();
    free_ids_.push_back(id);
    return true;
  }

  // ---- serving -----------------------------------------------------------

  bool poll() {
    if (auto m = progress_.next(mp::kAnySource, proto::kTagFetch)) {
      serve_fetch(*m);
      return true;
    }
    if (auto m = progress_.next(mp::kAnySource, proto::kTagFetchPack)) {
      serve_pack(*m);
      return true;
    }
    return false;
  }

  /// Answer one fetch. The reply is stamped from the requester's service
  /// lane (pinned to the request's arrival); the send overhead accrues for
  /// the end-of-phase fold rather than hitting the clock at this
  /// physically-timed poll, so the server's own send stamps stay
  /// schedule-independent.
  void serve_fetch(const mp::Message& m) {
    BH_PROF_REGION("ship.serve");
    const double arr = comm_.arrival_time(m);
    const auto key = mp::Communicator::unpack<std::uint64_t>(m)[0];
    const auto ni = dt_.tree.find(geom::NodeKey<D>{key});
    if (ni == tree::kNullNode)
      comm_.protocol_abort("data-ship: fetch for unknown node " +
                           std::to_string(key));
    const auto& n = dt_.tree.nodes[static_cast<std::size_t>(ni)];
    mp::ByteWriter w;
    std::uint8_t mask = 0;
    for (unsigned d = 0; d < (1u << D); ++d)
      if (n.child[d] != tree::kNullNode) mask |= 1u << d;
    w.put(mask);
    // A leaf has no children to hand out; the requester gets the leaf's
    // particle data instead (arises when an entire branch subtree is one
    // leaf).
    w.put(static_cast<std::uint8_t>(n.is_leaf ? 1 : 0));
    if (n.is_leaf) {
      std::vector<model::ParticleRecord<D>> recs;
      recs.reserve(n.count);
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        recs.push_back(model::record_of(dt_.particles, dt_.tree.perm[s]));
      w.put_span<model::ParticleRecord<D>>(recs);
      comm_.send_bytes_stamped(m.src, proto::kTagNodeData, w.bytes(),
                               progress_.serve(m.src, arr, 0),
                               /*charge_overhead=*/false);
      return;
    }
    const unsigned degree = dt_.tree.degree;
    const std::size_t stride = expansion_stride<D>(degree);
    for (unsigned d = 0; d < (1u << D); ++d) {
      if (!(mask & (1u << d))) continue;
      const auto ci = n.child[d];
      const auto& c = dt_.tree.nodes[static_cast<std::size_t>(ci)];
      ChildHeader<D> h{c.key.v, c.mass, c.com, c.rmax, c.count,
                       static_cast<std::uint8_t>(c.is_leaf ? 1 : 0)};
      w.put(h);
      std::vector<model::ParticleRecord<D>> recs;
      if (c.is_leaf) {
        recs.reserve(c.count);
        for (std::uint32_t s = c.first; s < c.first + c.count; ++s) {
          const auto pi = dt_.tree.perm[s];
          recs.push_back(model::record_of(dt_.particles, pi));
        }
      }
      w.put_span<model::ParticleRecord<D>>(recs);
      if (degree > 0) {
        // The multipole series is the payload whose size grows as O(k^2)
        // (Section 4.2.1) -- the heart of the paradigm comparison.
        std::vector<double> coeffs(stride);
        pack_expansion<D>(dt_.tree.expansions[static_cast<std::size_t>(ci)],
                          coeffs.data());
        w.put_span<double>(coeffs);
      }
    }
    if (auto* t = comm_.tracer())
      t->instant("dataship.serve", w.bytes().size(), comm_.vtime());
    obs::prof::count_bytes(w.bytes().size());
    comm_.send_bytes_stamped(m.src, proto::kTagNodeData, w.bytes(),
                             progress_.serve(m.src, arr, 0),
                             /*charge_overhead=*/false);
  }

  /// Answer one pack fetch: every requested root plus the depth-/count-
  /// bounded subtrees below them, in one MultiData-style reply. Stamped
  /// from the requester's service lane exactly like serve_fetch.
  void serve_pack(const mp::Message& m) {
    BH_PROF_REGION("ship.serve");
    const double arr = comm_.arrival_time(m);
    cache::PackRequest req;
    try {
      req = cache::read_pack_request(m.payload);
    } catch (const std::out_of_range& e) {
      comm_.protocol_abort(std::string("data-ship: malformed pack fetch: ") +
                           e.what());
    }
    std::vector<std::int32_t> nis;
    nis.reserve(req.roots.size());
    for (const auto key : req.roots) {
      const auto ni = dt_.tree.find(geom::NodeKey<D>{key});
      if (ni == tree::kNullNode)
        comm_.protocol_abort("data-ship: pack fetch for unknown node " +
                             std::to_string(key));
      nis.push_back(ni);
    }
    cache::PackLimits lim;
    lim.depth = std::max(1u, req.depth);
    lim.max_nodes =
        static_cast<unsigned>(std::max(1, opts_.pack_max_nodes));
    mp::ByteWriter w;
    pack_subtrees<D>(dt_.tree, dt_.particles, req.roots, nis, lim, w);
    if (auto* t = comm_.tracer())
      t->instant("dataship.serve_pack", w.bytes().size(), comm_.vtime());
    obs::prof::count_bytes(w.bytes().size());
    comm_.send_bytes_stamped(m.src, proto::kTagNodePack, w.bytes(),
                             progress_.serve(m.src, arr, 0),
                             /*charge_overhead=*/false);
  }

  /// Publish the cache counters to the rank's stats so the metrics layer
  /// (bh.metrics.v1) and the bench emitter can report cache efficiency.
  void export_counters() {
    auto& cs = comm_.stats().counters;
    const auto bump = [&cs](const char* k, std::uint64_t v) {
      if (v) cs[k] += v;
    };
    bump("dataship.fetch_requests", result_.fetch_requests);
    bump("dataship.nodes_fetched", result_.nodes_fetched);
    bump("dataship.cache_hits", result_.cache_hits);
    bump("dataship.hash_probes", result_.hash_probes);
    bump("dataship.coalesced", result_.coalesced);
    bump("dataship.prefetched_nodes", result_.prefetched_nodes);
    bump("dataship.suspends", result_.suspends);
    bump("dataship.resumes", result_.resumes);
  }

  mp::Communicator& comm_;
  DistTree<D>& dt_;
  ForceOptions opts_;
  tree::TraversalOptions topts_;
  cache::NodeCache<D> cache_;
  ship::Progress progress_;
  DataShipResult<D> result_;
  std::uint64_t flops_charged_ = 0;
  /// Outstanding pack replies expected per owner rank (async mode).
  std::vector<int> inflight_;
  /// How many of the leading replies from each owner are prefetch packs
  /// (used only to attribute the prefetched_nodes counter).
  std::vector<int> prefetch_inflight_;
  /// Continuation slab; ids are recycled through free_ids_ so waiter lists
  /// stay small integers.
  std::vector<Cont> conts_;
  std::vector<std::uint32_t> free_ids_;
};

}  // namespace

template <std::size_t D>
DataShipResult<D> compute_forces_dataship(mp::Communicator& comm,
                                          DistTree<D>& dt,
                                          const ForceOptions& opts) {
  Engine<D> e(comm, dt, opts);
  return e.run();
}

template DataShipResult<2> compute_forces_dataship<2>(mp::Communicator&,
                                                      DistTree<2>&,
                                                      const ForceOptions&);
template DataShipResult<3> compute_forces_dataship<3>(mp::Communicator&,
                                                      DistTree<3>&,
                                                      const ForceOptions&);

}  // namespace bh::par
