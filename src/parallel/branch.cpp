#include "parallel/branch.hpp"

#include <cstring>

namespace bh::par {

template <>
void pack_expansion<3>(const multipole::Expansion3& e, double* out) {
  const auto raw = e.coeffs().raw();
  static_assert(sizeof(multipole::cplx) == 2 * sizeof(double));
  std::memcpy(out, raw.data(), raw.size() * sizeof(multipole::cplx));
}

template <>
void pack_expansion<2>(const multipole::Expansion2& e, double* out) {
  const auto& a = e.series();
  // a[0] is unused by the series; ship a[1..degree].
  for (std::size_t k = 1; k < a.size(); ++k) {
    out[2 * (k - 1)] = a[k].real();
    out[2 * (k - 1) + 1] = a[k].imag();
  }
}

template <>
multipole::Expansion3 unpack_expansion<3>(const double* in, unsigned degree,
                                          const Vec<3>& center,
                                          double /*mass*/) {
  multipole::Expansion3 e(degree, center);
  auto raw = e.coeffs().raw();
  std::memcpy(static_cast<void*>(raw.data()), in,
              raw.size() * sizeof(multipole::cplx));
  return e;
}

template <>
multipole::Expansion2 unpack_expansion<2>(const double* in, unsigned degree,
                                          const Vec<2>& center, double mass) {
  multipole::Expansion2 e(degree, center);
  std::vector<multipole::cplx> a(degree + 1);
  for (unsigned k = 1; k <= degree; ++k)
    a[k] = {in[2 * (k - 1)], in[2 * (k - 1) + 1]};
  e.restore(mass, std::move(a));
  return e;
}

template class BranchDirectory<2>;
template class BranchDirectory<3>;

}  // namespace bh::par
