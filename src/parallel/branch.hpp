// branch.hpp -- branch nodes: the ownership boundary of the distributed tree.
//
// "The shaded nodes in the tree represent the processor domains at the
// coarsest level. These nodes are referred to as branch nodes." (Section
// 3.1.1). Branch summaries are what the all-to-all broadcast moves between
// processors; the BranchDirectory is the fast key -> node lookup the paper
// describes in Section 4.2.3, in both variants it compares (hashed keys vs.
// a sorted table searched by binary search).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/morton.hpp"
#include "geom/vec.hpp"
#include "multipole/expansion.hpp"

namespace bh::par {

using geom::NodeKey;
using geom::Vec;

/// Fixed-size, trivially-copyable wire record for one branch node; multipole
/// coefficients (variable size, degree-dependent) travel in a parallel
/// double array with a fixed per-branch stride.
template <std::size_t D>
struct BranchWire {
  std::uint64_t key = 0;      ///< NodeKey<D>::v
  std::int32_t owner = -1;
  std::uint32_t count = 0;    ///< particles in the subtree
  double mass = 0.0;
  Vec<D> com{};
  double rmax = 0.0;          ///< cluster radius about the COM
  std::uint64_t load = 0;     ///< interactions recorded last step
};

/// Number of doubles per branch needed to ship a degree-k expansion.
/// 3-D: complex triangular coefficients; 2-D: total mass + k complex terms.
template <std::size_t D>
constexpr std::size_t expansion_stride(unsigned degree) {
  if (degree == 0) return 0;
  if constexpr (D == 3)
    return std::size_t(degree + 1) * (degree + 2);  // 2 * tri(degree+1)
  else
    return 2 * std::size_t(degree);
}

/// Serialize a branch expansion into `out` (exactly expansion_stride
/// doubles).
template <std::size_t D>
void pack_expansion(const multipole::Expansion<D>& e, double* out);

/// Rebuild an expansion about `center` from packed doubles. `mass` is the
/// branch's total mass (carried separately in BranchWire; the 2-D series
/// does not embed it).
template <std::size_t D>
multipole::Expansion<D> unpack_expansion(const double* in, unsigned degree,
                                         const Vec<D>& center, double mass);

/// Branch-node key directory (Section 4.2.3). The paper implements both a
/// hash table and a sorted table with binary search and finds their
/// performance indistinguishable; we keep both and ablate the claim.
enum class LookupKind : std::uint8_t { kHash, kSortedTable };

template <std::size_t D>
class BranchDirectory {
 public:
  BranchDirectory() = default;

  explicit BranchDirectory(LookupKind kind) : kind_(kind) {}

  void insert(NodeKey<D> key, std::int32_t value) {
    entries_.push_back({key.v, value});
    sorted_ = false;
  }

  /// Must be called after the last insert and before the first find.
  void seal() {
    if (kind_ == LookupKind::kHash) {
      map_.reserve(entries_.size() * 2);
      for (const auto& e : entries_) map_.emplace(e.key, e.value);
    } else {
      std::sort(entries_.begin(), entries_.end(),
                [](const Entry& a, const Entry& b) { return a.key < b.key; });
    }
    sorted_ = true;
  }

  /// Node index for a key; -1 when absent. `probes` (optional) counts
  /// comparison steps for the ablation bench.
  std::int32_t find(NodeKey<D> key, std::uint64_t* probes = nullptr) const {
    if (kind_ == LookupKind::kHash) {
      if (probes) ++*probes;
      auto it = map_.find(key.v);
      return it == map_.end() ? -1 : it->second;
    }
    auto lo = entries_.begin();
    auto hi = entries_.end();
    while (lo < hi) {
      if (probes) ++*probes;
      auto mid = lo + (hi - lo) / 2;
      if (mid->key < key.v)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo != entries_.end() && lo->key == key.v) return lo->value;
    return -1;
  }

  std::size_t size() const { return entries_.size(); }
  bool sealed() const { return sorted_; }
  LookupKind kind() const { return kind_; }

 private:
  struct Entry {
    std::uint64_t key;
    std::int32_t value;
  };
  LookupKind kind_ = LookupKind::kHash;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::int32_t> map_;
  bool sorted_ = false;
};

}  // namespace bh::par
