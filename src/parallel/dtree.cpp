#include "parallel/dtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/prof/prof.hpp"

namespace bh::par {

namespace {

/// Range of maximum-refinement Morton cells covered by a node key.
template <std::size_t D>
struct CellRange {
  std::uint64_t first;
  std::uint64_t count;
};

template <std::size_t D>
CellRange<D> cell_range(geom::NodeKey<D> key) {
  const unsigned L = geom::morton_max_level<D>;
  const unsigned lev = key.level();
  const std::uint64_t path = key.v & ((std::uint64_t(1) << (D * lev)) - 1);
  const unsigned shift = D * (L - lev);
  return {path << shift, std::uint64_t(1) << shift};
}

/// Recursive top-tree builder over the sorted branch array.
template <std::size_t D>
struct TopBuilder {
  DistTree<D>& dt;
  const std::vector<tree::BhTree<D>>& local_subtrees;  // per owned branch
  const std::vector<int>& owned_index;  // branches[i] -> local subtree idx
  geom::Box<D> domain;
  unsigned degree;
  std::vector<std::int32_t> top_nodes;  // creation order

  /// Splice local subtree `s` (for branch b) under parent; returns the
  /// spliced root's node index in dt.tree.
  std::int32_t splice(std::size_t b, int s, std::int32_t parent) {
    auto& tree = dt.tree;
    const auto& sub = local_subtrees[static_cast<std::size_t>(s)];
    const auto node_off = static_cast<std::int32_t>(tree.nodes.size());
    const auto perm_off = static_cast<std::uint32_t>(tree.perm.size());
    const geom::NodeKey<D> bkey{dt.branches[b].key};
    const unsigned blev = bkey.level();

    for (const auto& n : sub.nodes) {
      tree::Node<D> m = n;
      m.parent = n.parent == tree::kNullNode ? parent : n.parent + node_off;
      for (auto& c : m.child)
        if (c != tree::kNullNode) c += node_off;
      m.first += perm_off;
      // Re-key: prepend the branch path to the subtree-relative path.
      const unsigned rlev = n.key.level();
      const std::uint64_t rpath =
          n.key.v & ((std::uint64_t(1) << (D * rlev)) - 1);
      m.key.v = (bkey.v << (D * rlev)) | rpath;
      (void)blev;
      tree.nodes.push_back(m);
    }
    for (auto s2 : sub.perm) tree.perm.push_back(s2 + perm_off);
    if (degree > 0)
      for (const auto& e : sub.expansions) tree.expansions.push_back(e);
    return node_off;
  }

  std::int32_t build(std::size_t lo, std::size_t hi, geom::NodeKey<D> key,
                     geom::Box<D> box, std::int32_t parent) {
    auto& tree = dt.tree;
    if (hi - lo == 1 && dt.branches[lo].key == key.v) {
      const auto& bw = dt.branches[lo];
      std::int32_t idx;
      if (owned_index[lo] >= 0) {
        idx = splice(lo, owned_index[lo], parent);
      } else {
        idx = static_cast<std::int32_t>(tree.nodes.size());
        tree.nodes.emplace_back();
        auto& n = tree.nodes.back();
        n.box = box;
        n.key = key;
        n.parent = parent;
        n.count = bw.count;
        n.mass = bw.mass;
        n.com = bw.count ? bw.com : box.center();
        n.rmax = bw.rmax;
        n.owner = bw.owner;
        n.is_remote = true;
        if (degree > 0) tree.expansions.emplace_back(degree, n.com);
      }
      dt.branch_node[lo] = idx;
      return idx;
    }

    // Internal top node.
    const auto idx = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes.back().box = box;
    tree.nodes.back().key = key;
    tree.nodes.back().parent = parent;
    if (degree > 0) tree.expansions.emplace_back(degree, box.center());
    top_nodes.push_back(idx);

    std::size_t cur = lo;
    for (unsigned d = 0; d < (1u << D); ++d) {
      const auto ckey = key.child(d);
      const auto cr = cell_range(ckey);
      // Branches are sorted by first cell; collect those inside this child.
      std::size_t end = cur;
      while (end < hi) {
        const auto br = cell_range(geom::NodeKey<D>{dt.branches[end].key});
        if (br.first >= cr.first + cr.count) break;
        if (br.first < cr.first)
          throw std::invalid_argument(
              "branch keys do not tile the domain disjointly");
        ++end;
      }
      if (end == cur) continue;
      const auto c = build(cur, end, ckey, box.child(d), idx);
      tree.nodes[idx].child[d] = c;
      cur = end;
    }
    if (cur != hi)
      throw std::invalid_argument("branch keys escape their parent box");
    return idx;
  }
};

/// Flops for one M2M or COM combination step during the top rebuild --
/// used only for virtual time, mirroring the paper's "redundant computation
/// but relatively small overhead" (Section 3.1.1).
inline std::uint64_t top_combine_flops(unsigned degree) {
  const std::uint64_t coeffs =
      degree ? std::uint64_t(degree + 1) * (degree + 2) : 2;
  return 10 + coeffs * coeffs / 2;
}

}  // namespace

template <std::size_t D>
std::uint64_t DistTree<D>::branch_load(std::size_t b) const {
  const auto root = branch_node[b];
  if (root == tree::kNullNode || branches[b].owner != my_rank) return 0;
  // The spliced subtree occupies a contiguous node range starting at root;
  // walk it with an explicit stack to stay robust to interleavings.
  std::uint64_t sum = 0;
  std::vector<std::int32_t> stack{root};
  while (!stack.empty()) {
    const auto ni = stack.back();
    stack.pop_back();
    const auto& n = tree.nodes[ni];
    sum += n.load;
    for (auto c : n.child)
      if (c != tree::kNullNode) stack.push_back(c);
  }
  return sum;
}

template <std::size_t D>
DistTree<D> build_dist_tree(mp::Communicator& comm,
                            const model::ParticleSet<D>& local,
                            std::span<const geom::NodeKey<D>> owned_keys,
                            std::span<const std::uint64_t> owned_loads,
                            geom::Box<D> domain,
                            const DistTreeOptions& opts) {
  DistTree<D> dt;
  dt.my_rank = comm.rank();
  const unsigned degree = opts.degree;

  // ---- Phase 1: local subtree per owned branch -----------------------------
  comm.phase_begin(kPhaseLocalBuild);
  const std::size_t nb = owned_keys.size();
  std::vector<geom::Box<D>> boxes(nb);
  for (std::size_t b = 0; b < nb; ++b)
    boxes[b] = geom::box_of_key(owned_keys[b], domain);

  // Group local particles by owned branch: binary-search the particle's
  // maximum-refinement Morton cell in the sorted owned cell ranges.
  struct OwnedRange {
    std::uint64_t first, count;
    std::uint32_t b;
  };
  std::vector<OwnedRange> ranges(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    const auto cr = cell_range(owned_keys[b]);
    ranges[b] = {cr.first, cr.count, static_cast<std::uint32_t>(b)};
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const OwnedRange& a, const OwnedRange& c) {
              return a.first < c.first;
            });
  std::vector<std::vector<std::uint32_t>> members(nb);
  for (std::size_t i = 0; i < local.size(); ++i) {
    const std::uint64_t cell =
        geom::morton_key(local.pos[i], domain, geom::morton_max_level<D>);
    auto it = std::upper_bound(ranges.begin(), ranges.end(), cell,
                               [](std::uint64_t c, const OwnedRange& r) {
                                 return c < r.first;
                               });
    if (it == ranges.begin() || cell >= (it - 1)->first + (it - 1)->count)
      throw std::invalid_argument(
          "local particle outside every owned branch subdomain");
    members[(it - 1)->b].push_back(static_cast<std::uint32_t>(i));
  }

  std::vector<tree::BhTree<D>> subtrees(nb);
  std::vector<model::ParticleSet<D>> subparts(nb);
  std::uint64_t build_flops = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    auto& sp = subparts[b];
    sp.reserve(members[b].size());
    for (auto i : members[b]) sp.append_from(local, i);
    subtrees[b] = tree::build_tree(
        sp, boxes[b],
        {.leaf_capacity = opts.leaf_capacity,
         .max_level = geom::morton_max_level<D> - owned_keys[b].level(),
         .degree = degree,
         .collapse = false});
    const double depth =
        sp.size() > 1 ? std::log2(static_cast<double>(sp.size())) / D + 1.0
                      : 1.0;
    build_flops += static_cast<std::uint64_t>(
        static_cast<double>(sp.size()) * depth * opts.build_flops_per_level);
  }
  comm.advance_flops(build_flops);
  comm.phase_end(kPhaseLocalBuild);

  // ---- Phase 2: exchange branch summaries (all-to-all broadcast) -----------
  comm.phase_begin(kPhaseBroadcast);
  std::vector<BranchWire<D>> my_wires(nb);
  const std::size_t stride = expansion_stride<D>(degree);
  std::vector<double> my_coeffs(nb * stride, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    auto& w = my_wires[b];
    w.key = owned_keys[b].v;
    w.owner = comm.rank();
    const auto& root = subtrees[b].root();
    w.count = root.count;
    w.mass = root.mass;
    w.com = root.com;
    w.rmax = root.rmax;
    w.load = b < owned_loads.size() ? owned_loads[b] : 0;
    if (degree > 0 && !subtrees[b].expansions.empty())
      pack_expansion<D>(subtrees[b].expansions[0], &my_coeffs[b * stride]);
  }
  auto all_wires = comm.all_gatherv<BranchWire<D>>(my_wires);
  std::vector<std::vector<double>> all_coeffs;
  if (degree > 0) all_coeffs = comm.all_gatherv<double>(my_coeffs);
  comm.phase_end(kPhaseBroadcast);

  // ---- Phase 3: reconstruct the top of the global tree ---------------------
  comm.phase_begin(kPhaseTreeMerge);
  BH_PROF_REGION("tree.merge");
  // Flatten, remember which branch is ours (and which subtree it maps to).
  struct Tagged {
    BranchWire<D> w;
    int subtree = -1;  // >= 0 when owned by this rank
    const double* coeffs = nullptr;
  };
  std::vector<Tagged> tagged;
  for (int r = 0; r < comm.size(); ++r) {
    for (std::size_t i = 0; i < all_wires[static_cast<std::size_t>(r)].size();
         ++i) {
      Tagged t;
      t.w = all_wires[static_cast<std::size_t>(r)][i];
      if (degree > 0)
        t.coeffs = &all_coeffs[static_cast<std::size_t>(r)][i * stride];
      tagged.push_back(t);
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    return cell_range(geom::NodeKey<D>{a.w.key}).first <
           cell_range(geom::NodeKey<D>{b.w.key}).first;
  });
  // Match owned branches back to their subtree index by key.
  for (auto& t : tagged) {
    if (t.w.owner != comm.rank()) continue;
    for (std::size_t b = 0; b < nb; ++b)
      if (owned_keys[b].v == t.w.key) t.subtree = static_cast<int>(b);
    assert(t.subtree >= 0);
  }

  dt.branches.reserve(tagged.size());
  std::vector<int> owned_index;
  owned_index.reserve(tagged.size());
  for (const auto& t : tagged) {
    dt.branches.push_back(t.w);
    owned_index.push_back(t.subtree);
  }
  dt.branch_node.assign(dt.branches.size(), tree::kNullNode);

  dt.tree.root_box = domain;
  dt.tree.degree = degree;
  TopBuilder<D> tb{dt, subtrees, owned_index, domain, degree, {}};
  if (dt.branches.empty())
    throw std::invalid_argument("no branches: empty global decomposition");
  tb.build(0, dt.branches.size(), geom::NodeKey<D>{}, domain,
           tree::kNullNode);

  // Remote branch expansions from the wire coefficients.
  if (degree > 0) {
    for (std::size_t b = 0; b < dt.branches.size(); ++b) {
      if (owned_index[b] >= 0) continue;
      const auto ni = dt.branch_node[b];
      dt.tree.expansions[static_cast<std::size_t>(ni)] = unpack_expansion<D>(
          tagged[b].coeffs, degree, dt.tree.nodes[ni].com,
          dt.branches[b].mass);
    }
  }

  // Upward pass over the top nodes (reverse creation order = children first).
  std::uint64_t merge_flops = 0;
  for (auto it = tb.top_nodes.rbegin(); it != tb.top_nodes.rend(); ++it) {
    auto& n = dt.tree.nodes[static_cast<std::size_t>(*it)];
    n.mass = 0.0;
    n.count = 0;
    Vec<D> weighted{};
    for (auto c : n.child) {
      if (c == tree::kNullNode) continue;
      const auto& ch = dt.tree.nodes[static_cast<std::size_t>(c)];
      n.mass += ch.mass;
      n.count += ch.count;
      weighted += ch.mass * ch.com;
      merge_flops += top_combine_flops(degree);
    }
    n.com = n.mass > 0.0 ? weighted / n.mass : n.box.center();
    n.rmax = 0.0;
    for (auto c : n.child) {
      if (c == tree::kNullNode) continue;
      const auto& ch = dt.tree.nodes[static_cast<std::size_t>(c)];
      if (ch.count == 0) continue;
      n.rmax = std::max(n.rmax, geom::norm(ch.com - n.com) + ch.rmax);
    }
    if (degree > 0) {
      auto& e = dt.tree.expansions[static_cast<std::size_t>(*it)];
      e = multipole::Expansion<D>(degree, n.com);
      for (auto c : n.child)
        if (c != tree::kNullNode)
          e.add_translated(
              dt.tree.expansions[static_cast<std::size_t>(c)]);
    }
  }
  if (opts.replicate_top) {
    // Section 3.1.1: every rank recomputes the top redundantly.
    comm.advance_flops(merge_flops);
  } else {
    // Section 3.1.2: one rank computes; results reach the others with a
    // broadcast of the top-node records.
    if (comm.rank() == 0) comm.advance_flops(merge_flops);
    const std::size_t top_bytes =
        tb.top_nodes.size() *
        (sizeof(tree::Node<D>) + stride * sizeof(double));
    comm.advance_seconds(
        comm.machine().broadcast(comm.size(), top_bytes));
  }
  comm.phase_end(kPhaseTreeMerge);

  // ---- Final bookkeeping ----------------------------------------------------
  dt.directory = BranchDirectory<D>(opts.lookup);
  for (std::size_t b = 0; b < dt.branches.size(); ++b)
    dt.directory.insert(geom::NodeKey<D>{dt.branches[b].key},
                        static_cast<std::int32_t>(b));
  dt.directory.seal();

  // Assemble the reordered local particle set in splice order.
  // (splice appended per-branch perms in branch order; reproduce the same
  // concatenation of the per-branch particle sets.)
  for (std::size_t b = 0; b < dt.branches.size(); ++b) {
    const int s = owned_index[b];
    if (s < 0) continue;
    const auto& sp = subparts[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < sp.size(); ++i) dt.particles.append_from(sp, i);
  }

  return dt;
}

template struct DistTree<2>;
template struct DistTree<3>;
template DistTree<2> build_dist_tree<2>(mp::Communicator&,
                                        const model::ParticleSet<2>&,
                                        std::span<const geom::NodeKey<2>>,
                                        std::span<const std::uint64_t>,
                                        geom::Box<2>, const DistTreeOptions&);
template DistTree<3> build_dist_tree<3>(mp::Communicator&,
                                        const model::ParticleSet<3>&,
                                        std::span<const geom::NodeKey<3>>,
                                        std::span<const std::uint64_t>,
                                        geom::Box<3>, const DistTreeOptions&);

}  // namespace bh::par
