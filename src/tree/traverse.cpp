// traverse.cpp -- the alpha-MAC tree traversal (force / potential phase).
//
// For each evaluation point the walk starts at a subtree root and applies
// the Barnes-Hut multipole acceptance criterion: accept a node when
// (box edge) / (distance to the node's center of mass) < alpha; otherwise
// expand its children (Section 2). Accepted interactions use either the
// point-mass monopole kernel or the node's degree-k expansion. Remote branch
// nodes (parallel runs) halt the walk and are reported to the caller, which
// ships the particle to the owning processor (function shipping,
// Section 3.2).
#include <cassert>
#include <cmath>

#include "obs/prof/prof.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {

namespace {

template <std::size_t D>
struct Walker {
  const BhTree<D>& tree;
  const model::ParticleSet<D>& ps;
  const TraversalOptions& opts;
  Vec<D> target;
  std::uint64_t self_id;
  std::vector<RemoteHit<D>>* remote_hits;  // nullptr: remote nodes forbidden
  Node<D>* mut_nodes;                      // nullptr: don't record loads

  TraversalResult<D> run(std::int32_t start) {
    TraversalResult<D> r;
    if (start == kNullNode || tree.nodes.empty()) return r;
    // Explicit stack; tree depth is bounded by the Morton level cap but
    // sibling fan-out makes the worst case stack 2^D * depth.
    std::int32_t stack[(1u << D) * (geom::morton_max_level<D> + 2)];
    int top = 0;
    stack[top++] = start;
    while (top > 0) {
      const std::int32_t ni = stack[--top];
      const Node<D>& n = tree.nodes[ni];
      if (n.count == 0 && !n.is_remote) continue;

      // Multipole acceptance criterion (14 flops, Section 5.2.1). Branch
      // nodes owned by other processors are replicated locally (Section
      // 3.1.1), so the MAC is always evaluated locally -- only when it
      // fails at a remote branch node does the particle have to travel.
      const double dist = geom::norm(target - n.com);
      ++r.work.mac_evals;
      bool accept = dist > 0.0 && (n.box.edge / dist) < opts.alpha &&
                    !n.box.contains(target);
      // A degree-k expansion about the COM diverges inside the cluster
      // radius (the COM can sit near a box corner, putting particles up to
      // sqrt(D) edges away); fall through to the children in that case.
      if (accept && opts.use_expansions && tree.has_expansions() &&
          dist <= n.rmax * 1.001)
        accept = false;

      if (accept && !(n.is_leaf && n.count == 1)) {
        interact_node(ni, n, r);
        continue;
      }

      if (n.is_remote) {
        // The children of this branch node live on processor n.owner; the
        // computation is shipped there (function shipping, Section 3.2).
        assert(remote_hits != nullptr &&
               "remote node reached in a purely local traversal");
        remote_hits->push_back({n.key, n.owner});
        continue;
      }

      if (n.is_leaf) {
        interact_leaf_direct(n, r);
        continue;
      }
      for (const auto c : n.child)
        if (c != kNullNode) stack[top++] = c;
    }
    return r;
  }

  void interact_node(std::int32_t ni, const Node<D>& n,
                     TraversalResult<D>& r) {
    if (opts.use_expansions && tree.has_expansions()) {
      const auto& e = tree.expansions[ni];
      if (opts.kind == FieldKind::kPotential)
        r.field.potential += e.evaluate_potential(target);
      else
        r.field += e.evaluate(target);
    } else {
      r.field += multipole::point_kernel<D>(target, n.com, n.mass,
                                            opts.softening);
    }
    ++r.work.interactions;
    if (mut_nodes) ++mut_nodes[ni].load;
  }

  void interact_leaf_direct(const Node<D>& n, TraversalResult<D>& r) {
    std::uint64_t pairs = 0;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
      const auto pi = tree.perm[s];
      if (ps.id[pi] == self_id) continue;
      r.field += multipole::point_kernel<D>(target, ps.pos[pi], ps.mass[pi],
                                            opts.softening);
      ++pairs;
    }
    r.work.direct_pairs += pairs;
    if (mut_nodes) mut_nodes[&n - tree.nodes.data()].load += pairs;
  }
};

}  // namespace

template <std::size_t D>
TraversalResult<D> evaluate_subtree(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    BhTree<D>* mutable_tree) {
  Walker<D> w{tree,    ps,
              opts,    target,
              self_id, nullptr,
              (opts.record_load && mutable_tree) ? mutable_tree->nodes.data()
                                                 : nullptr};
  auto r = w.run(node);
  r.work.degree = (opts.use_expansions && tree.has_expansions())
                      ? tree.degree
                      : 0;
  return r;
}

template <std::size_t D>
TraversalResult<D> evaluate_partial(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    std::vector<RemoteHit<D>>& remote_hits,
                                    BhTree<D>* mutable_tree) {
  Walker<D> w{tree,    ps,
              opts,    target,
              self_id, &remote_hits,
              (opts.record_load && mutable_tree) ? mutable_tree->nodes.data()
                                                 : nullptr};
  auto r = w.run(node);
  r.work.degree = (opts.use_expansions && tree.has_expansions())
                      ? tree.degree
                      : 0;
  return r;
}

template <std::size_t D>
model::WorkCounter compute_fields(BhTree<D>& tree, model::ParticleSet<D>& ps,
                                  const TraversalOptions& opts) {
  BH_PROF_REGION("tree.traverse");
  model::WorkCounter total;
  total.degree =
      (opts.use_expansions && tree.has_expansions()) ? tree.degree : 0;
  // Morton (perm) order gives the best traversal locality.
  for (const auto pi : tree.perm) {
    auto r = evaluate_subtree(tree, ps, 0, ps.pos[pi], ps.id[pi], opts,
                              opts.record_load ? &tree : nullptr);
    if (opts.kind != FieldKind::kPotential) ps.acc[pi] += r.field.acc;
    if (opts.kind != FieldKind::kForce)
      ps.potential[pi] += r.field.potential;
    total.mac_evals += r.work.mac_evals;
    total.interactions += r.work.interactions;
    total.direct_pairs += r.work.direct_pairs;
  }
  obs::prof::count_flops(total.flops());
  obs::prof::count_bytes(traversal_bytes<D>(total));
  return total;
}

template <std::size_t D>
model::WorkCounter direct_sum(model::ParticleSet<D>& ps, FieldKind kind,
                              double softening) {
  BH_PROF_REGION("kernel.direct");
  const std::size_t n = ps.size();
  model::WorkCounter w;
  for (std::size_t i = 0; i < n; ++i) {
    multipole::FieldSample<D> f;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      f += multipole::point_kernel<D>(ps.pos[i], ps.pos[j], ps.mass[j],
                                      softening);
    }
    if (kind != FieldKind::kPotential) ps.acc[i] += f.acc;
    if (kind != FieldKind::kForce) ps.potential[i] += f.potential;
    w.direct_pairs += n - 1;
  }
  obs::prof::count_flops(w.flops());
  obs::prof::count_bytes(traversal_bytes<D>(w));
  return w;
}

double fractional_error(const std::vector<double>& approx,
                        const std::vector<double>& exact) {
  assert(approx.size() == exact.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double d = approx[i] - exact[i];
    num += d * d;
    den += exact[i] * exact[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

#define BH_INSTANTIATE(D)                                                     \
  template TraversalResult<D> evaluate_subtree<D>(                           \
      const BhTree<D>&, const model::ParticleSet<D>&, std::int32_t,          \
      const Vec<D>&, std::uint64_t, const TraversalOptions&, BhTree<D>*);    \
  template TraversalResult<D> evaluate_partial<D>(                           \
      const BhTree<D>&, const model::ParticleSet<D>&, std::int32_t,          \
      const Vec<D>&, std::uint64_t, const TraversalOptions&,                 \
      std::vector<RemoteHit<D>>&, BhTree<D>*);                               \
  template model::WorkCounter compute_fields<D>(BhTree<D>&,                  \
                                                model::ParticleSet<D>&,      \
                                                const TraversalOptions&);    \
  template model::WorkCounter direct_sum<D>(model::ParticleSet<D>&,          \
                                            FieldKind, double);

BH_INSTANTIATE(2)
BH_INSTANTIATE(3)
#undef BH_INSTANTIATE

}  // namespace bh::tree
