// traverse.cpp -- the alpha-MAC tree traversal (force / potential phase).
//
// For each evaluation point the walk starts at a subtree root and applies
// the Barnes-Hut multipole acceptance criterion: accept a node when
// (box edge) / (distance to the node's center of mass) < alpha; otherwise
// expand its children (Section 2). Accepted interactions use either the
// point-mass monopole kernel or the node's degree-k expansion. Remote branch
// nodes (parallel runs) halt the walk and are reported to the caller, which
// ships the particle to the owning processor (function shipping,
// Section 3.2).
#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "obs/prof/prof.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {

namespace {

template <std::size_t D>
struct Walker {
  const BhTree<D>& tree;
  const model::ParticleSet<D>& ps;
  const TraversalOptions& opts;
  Vec<D> target;
  std::uint64_t self_id;
  std::vector<RemoteHit<D>>* remote_hits;  // nullptr: remote nodes forbidden
  Node<D>* mut_nodes;                      // nullptr: don't record loads

  TraversalResult<D> run(std::int32_t start) {
    TraversalResult<D> r;
    if (start == kNullNode || tree.nodes.empty()) return r;
    // Explicit stack; tree depth is bounded by the Morton level cap but
    // sibling fan-out makes the worst case stack 2^D * depth.
    std::int32_t stack[(1u << D) * (geom::morton_max_level<D> + 2)];
    int top = 0;
    stack[top++] = start;
    while (top > 0) {
      const std::int32_t ni = stack[--top];
      const Node<D>& n = tree.nodes[ni];
      if (n.count == 0 && !n.is_remote) continue;

      // Multipole acceptance criterion (14 flops, Section 5.2.1). Branch
      // nodes owned by other processors are replicated locally (Section
      // 3.1.1), so the MAC is always evaluated locally -- only when it
      // fails at a remote branch node does the particle have to travel.
      const double dist = geom::norm(target - n.com);
      ++r.work.mac_evals;
      bool accept = dist > 0.0 && (n.box.edge / dist) < opts.alpha &&
                    !n.box.contains(target);
      // A degree-k expansion about the COM diverges inside the cluster
      // radius (the COM can sit near a box corner, putting particles up to
      // sqrt(D) edges away); fall through to the children in that case.
      if (accept && opts.use_expansions && tree.has_expansions() &&
          dist <= n.rmax * 1.001)
        accept = false;

      if (accept && !(n.is_leaf && n.count == 1)) {
        interact_node(ni, n, r);
        continue;
      }

      if (n.is_remote) {
        // The children of this branch node live on processor n.owner; the
        // computation is shipped there (function shipping, Section 3.2).
        assert(remote_hits != nullptr &&
               "remote node reached in a purely local traversal");
        remote_hits->push_back({n.key, n.owner});
        continue;
      }

      if (n.is_leaf) {
        interact_leaf_direct(n, r);
        continue;
      }
      for (const auto c : n.child)
        if (c != kNullNode) stack[top++] = c;
    }
    return r;
  }

  void interact_node(std::int32_t ni, const Node<D>& n,
                     TraversalResult<D>& r) {
    if (opts.use_expansions && tree.has_expansions()) {
      const auto& e = tree.expansions[ni];
      if (opts.kind == FieldKind::kPotential)
        r.field.potential += e.evaluate_potential(target);
      else
        r.field += e.evaluate(target);
    } else {
      r.field += multipole::point_kernel<D>(target, n.com, n.mass,
                                            opts.softening);
    }
    ++r.work.interactions;
    if (mut_nodes) ++mut_nodes[ni].load;
  }

  void interact_leaf_direct(const Node<D>& n, TraversalResult<D>& r) {
    std::uint64_t pairs = 0;
    for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
      const auto pi = tree.perm[s];
      if (ps.id[pi] == self_id) continue;
      r.field += multipole::point_kernel<D>(target, ps.pos[pi], ps.mass[pi],
                                            opts.softening);
      ++pairs;
    }
    r.work.direct_pairs += pairs;
    if (mut_nodes) mut_nodes[&n - tree.nodes.data()].load += pairs;
  }
};

}  // namespace

// -- blocked sort-then-interact pipeline ------------------------------------

template <std::size_t D>
void SlotSources<D>::gather(const BhTree<D>& tree,
                            const model::ParticleSet<D>& ps) {
  const std::size_t n = tree.perm.size();
  for (auto& row : pos) row.resize(n);
  mass.resize(n);
  id.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto pi = tree.perm[s];
    for (std::size_t a = 0; a < D; ++a) pos[a][s] = ps.pos[pi][a];
    mass[s] = ps.mass[pi];
    id[s] = ps.id[pi];
  }
}

template <std::size_t D>
std::vector<SlotBlock> make_slot_blocks(const BhTree<D>& tree,
                                        unsigned max_width) {
  const std::uint32_t cap = std::min<std::uint32_t>(
      max_width ? max_width : 1u,
      static_cast<std::uint32_t>(multipole::kBlockWidth));
#ifndef NDEBUG
  // Invariant the blocked pipeline rests on: the local leaves tile the
  // permuted slot range, so chunking [0, perm.size()) covers every local
  // particle exactly once.
  {
    std::vector<const Node<D>*> leaves;
    for (const auto& n : tree.nodes)
      if (n.is_leaf && !n.is_remote && n.count > 0) leaves.push_back(&n);
    std::sort(leaves.begin(), leaves.end(),
              [](const Node<D>* a, const Node<D>* b) {
                return a->first < b->first;
              });
    std::uint32_t covered = 0;
    for (const auto* n : leaves) {
      assert(n->first == covered && "local leaves must tile the slot range");
      covered = n->first + n->count;
    }
    assert(covered == tree.perm.size() &&
           "local leaves must cover every permuted slot");
  }
#endif
  // Blocks deliberately span leaf boundaries: Morton-adjacent leaves are
  // spatially adjacent, so their particles still share most of their
  // interaction lists, and full-width blocks keep every kernel lane doing
  // counted work. Per-lane MACs make any grouping correct; the grouping
  // only trades list sharing against lane occupancy.
  const auto n = static_cast<std::uint32_t>(tree.perm.size());
  std::vector<SlotBlock> blocks;
  blocks.reserve(n / cap + 1);
  for (std::uint32_t off = 0; off < n; off += cap)
    blocks.push_back({off, std::min(cap, n - off)});
  return blocks;
}

template <std::size_t D>
BlockedEval<D>::BlockedEval(const BhTree<D>& tree,
                            const model::ParticleSet<D>& ps,
                            const SlotSources<D>& src,
                            const TraversalOptions& opts)
    : tree_(tree), ps_(ps), src_(src), opts_(opts),
      use_expansions_(opts.use_expansions && tree.has_expansions()) {}

template <std::size_t D>
void BlockedEval<D>::run(std::int32_t start, const Vec<D>* targets,
                         const std::uint64_t* self_ids, std::size_t width,
                         bool allow_remote, BhTree<D>* mutable_tree) {
  namespace mk = bh::multipole;
  assert(width <= mk::kBlockWidth);
  approx_.clear();
  direct_.clear();
  for (auto& h : hits_) h.clear();
  work_.fill(model::WorkCounter{});
  blk_.reset(width);
  const unsigned deg = use_expansions_ ? tree_.degree : 0;
  for (std::size_t l = 0; l < width; ++l) {
    blk_.set_lane(l, targets[l], self_ids[l]);
    work_[l].degree = deg;
  }
  if (start == kNullNode || tree_.nodes.empty() || width == 0) return;
  (void)allow_remote;
  Node<D>* mut_nodes = (opts_.record_load && mutable_tree)
                           ? mutable_tree->nodes.data()
                           : nullptr;

  // Pass 1 -- list building. One frame per (node, active-lane mask); pushes
  // mirror the Walker's child order, so the subsequence of frames touching
  // any single lane is exactly that lane's solo DFS.
  struct Frame {
    std::int32_t node;
    mk::LaneMask mask;
  };
  Frame stack[(1u << D) * (geom::morton_max_level<D> + 2)];
  int top = 0;
  stack[top++] = {start, blk_.full_mask()};
  // Per-lane MAC/interaction tallies batched into flat arrays so the frame
  // loop never touches the strided WorkCounter structs; folded into work_
  // once after the walk. Lanes >= width always carry a zero mask bit, so
  // they tally nothing.
  std::array<std::uint64_t, mk::kBlockWidth> lane_macs{};
  std::array<std::uint64_t, mk::kBlockWidth> lane_inter{};
  constexpr double kMacBand = 1e-12;
  constexpr double kBandUp = 1.0 + kMacBand;
  constexpr double kBandDn = 1.0 - kMacBand;
  const double alpha2 = opts_.alpha * opts_.alpha;
  const std::uint64_t force_exact = opts_.alpha > 0.0 ? 0 : ~std::uint64_t{0};
  while (top > 0) {
    const Frame f = stack[--top];
    const Node<D>& n = tree_.nodes[f.node];
    if (n.count == 0 && !n.is_remote) continue;
    const std::uint64_t fm = f.mask;
#pragma omp simd
    for (std::size_t l = 0; l < mk::kBlockWidth; ++l)
      lane_macs[l] += (fm >> l) & 1u;

    // Lane square-distances and Box::contains in one fixed-width SoA sweep
    // (vectorizable). The r2 accumulation order matches geom::norm(t - com)
    // term for term, so r2 is exactly the value whose square root the
    // Walker feeds the MAC; contains is inlined as its two half-open
    // compares per axis, and evaluating it unconditionally instead of
    // behind the Walker's short-circuit cannot change any lane's outcome.
    // Lanes beyond `width` hold zeros and cost only dead arithmetic.
    std::array<double, mk::kBlockWidth> r2;
    r2.fill(0.0);
    std::array<std::uint64_t, mk::kBlockWidth> inside;
    inside.fill(1);
    for (std::size_t a = 0; a < D; ++a) {
      const double ca = n.com[a];
      const double lo = n.box.lo[a];
      const double hi = lo + n.box.edge;
#pragma omp simd
      for (std::size_t l = 0; l < mk::kBlockWidth; ++l) {
        const double p = blk_.pos[a][l];
        const double d = p - ca;
        r2[l] += d * d;
        inside[l] &= static_cast<std::uint64_t>(p >= lo) &
                     static_cast<std::uint64_t>(p < hi);
      }
    }
    // Squared-domain MAC prefilter. The Walker's tests are
    //   fl(edge / fl(sqrt(r2))) < alpha     and   fl(sqrt(r2)) > rthr
    // (rthr = rmax * 1.001; disarmed as -1 when expansions are off since
    // dist >= 0 always). Both are monotone in r2, so comparing alpha^2*r2
    // against edge^2 (resp. r2 against rthr^2) decides them without the
    // sqrt/div pair -- except within a relative band around equality where
    // rounding of the sqrt, the division, and the squarings could flip the
    // comparison. The band kMacBand = 1e-12 exceeds that accumulated
    // rounding slop (< ~10 ulp ~= 2e-15) by three orders of magnitude, so
    // a lane classified outside the band provably matches the Walker, and
    // any frame with an active lane inside the band falls back to the
    // exact sqrt/div evaluation. Infinities classify correctly (an
    // overflowing alpha^2*r2 means a far-away node whose ratio is ~0), a
    // degenerate edge == 0 lands in the band, i.e. on the exact path, and
    // a non-positive alpha (squaring would lose its sign) forces the exact
    // path outright.
    const double rthr = use_expansions_ ? n.rmax * 1.001 : -1.0;
    const double rt2 = use_expansions_ ? rthr * rthr : -1.0;
    const double e2 = n.box.edge * n.box.edge;
    const double e2_hi = e2 * kBandUp;  // alpha^2*r2 above: ratio < alpha
    const double e2_lo = e2 * kBandDn;  // alpha^2*r2 below: ratio >= alpha
    const double rt2_hi = rt2 * kBandUp;  // r2 above: dist > rthr
    const double rt2_lo = rt2 * kBandDn;  // r2 below: dist <= rthr
    std::uint64_t am = 0;
    std::uint64_t unc_any = force_exact & fm;
#pragma omp simd reduction(| : am, unc_any)
    for (std::size_t l = 0; l < mk::kBlockWidth; ++l) {
      const double t = alpha2 * r2[l];
      const std::uint64_t pos = static_cast<std::uint64_t>(r2[l] > 0.0);
      const std::uint64_t ratio_yes = static_cast<std::uint64_t>(t > e2_hi);
      const std::uint64_t ratio_no = static_cast<std::uint64_t>(t < e2_lo);
      const std::uint64_t rmax_yes =
          static_cast<std::uint64_t>(r2[l] > rt2_hi);
      const std::uint64_t rmax_no = static_cast<std::uint64_t>(r2[l] < rt2_lo);
      const std::uint64_t def_acc =
          pos & ratio_yes & rmax_yes & (inside[l] ^ 1u);
      const std::uint64_t def_rej =
          (pos ^ 1u) | ratio_no | rmax_no | inside[l];
      const std::uint64_t on = (fm >> l) & 1u;
      am |= (def_acc & on) << l;
      unc_any |= ((def_acc | def_rej) ^ 1u) & on;
    }
    if (unc_any) [[unlikely]] {
      // Exact path: replicate the Walker's sqrt/div evaluation for every
      // lane (IEEE-exact, so the accept decisions are bit-identical).
      am = 0;
      for (std::size_t l = 0; l < mk::kBlockWidth; ++l) {
        const double dist = std::sqrt(r2[l]);
        const double ratio = n.box.edge / dist;  // the walker's (edge/dist)
        const std::uint64_t a =
            static_cast<std::uint64_t>(dist > 0.0) &
            static_cast<std::uint64_t>(ratio < opts_.alpha) &
            (inside[l] ^ 1u) & static_cast<std::uint64_t>(dist > rthr);
        am |= (a & ((fm >> l) & 1u)) << l;
      }
    }
    const mk::LaneMask accept_mask = static_cast<mk::LaneMask>(am);
    mk::LaneMask interact = accept_mask;
    if (n.is_leaf && n.count == 1) interact = 0;  // singlet: direct instead
    if (interact) {
      approx_.push_back({n.com, n.mass, f.node, interact});
      const auto cnt = std::popcount(interact);
#pragma omp simd
      for (std::size_t l = 0; l < mk::kBlockWidth; ++l)
        lane_inter[l] += (static_cast<std::uint64_t>(interact) >> l) & 1u;
      if (mut_nodes) mut_nodes[f.node].load += static_cast<unsigned>(cnt);
    }
    const mk::LaneMask rest = f.mask & static_cast<mk::LaneMask>(~interact);
    if (!rest) continue;
    if (n.is_remote) {
      assert(allow_remote &&
             "remote node reached in a purely local traversal");
      for (std::size_t l = 0; l < width; ++l)
        if ((rest >> l) & 1u) hits_[l].push_back({n.key, n.owner});
      continue;
    }
    if (n.is_leaf) {
      direct_.push_back({n.first, n.count, f.node, rest});
      continue;
    }
    for (const auto c : n.child) {
      // Branch-free push: null children are written then overwritten (the
      // slot only advances for real ones), which trades 2^D data-dependent
      // branches per frame for 2^D unconditional stores. The prefetch warms
      // the child that the very next iteration pops.
      __builtin_prefetch(tree_.nodes.data() + (c != kNullNode ? c : 0));
      stack[top] = {c, rest};
      top += (c != kNullNode);
    }
  }
  for (std::size_t l = 0; l < width; ++l) {
    work_[l].mac_evals += lane_macs[l];
    work_[l].interactions += lane_inter[l];
  }

  // Pass 2 -- batch evaluation against the lists. Kernel flops/bytes are
  // banked in their own profiling regions; the MAC share stays with the
  // enclosing traversal region (the one open at the call site), so region
  // totals sum to exactly the walker's attribution.
  if (!approx_.empty()) {
    obs::prof::Region region("kernel.m2p");
    std::uint64_t n_inter = 0;
    if (use_expansions_) {
      const bool pot_only = opts_.kind == FieldKind::kPotential;
      for (const auto& e : approx_) {
        mk::m2p_expansion_block(blk_, tree_.expansions[
                                          static_cast<std::size_t>(e.node)],
                                e.mask, pot_only);
        n_inter += static_cast<std::uint64_t>(std::popcount(e.mask));
      }
    } else {
      n_inter = mk::m2p_monopole_list(blk_, approx_.data(), approx_.size(),
                                      opts_.softening);
    }
    obs::prof::count_flops(n_inter * model::interaction_flops(deg));
    obs::prof::count_bytes(
        n_inter * (deg ? sizeof(multipole::Expansion<D>) : 0));
  }
  if (!direct_.empty()) {
    obs::prof::Region region("kernel.p2p");
    const auto sv = src_.view();
    std::array<std::uint64_t, mk::kBlockWidth> lane_pairs{};
    std::uint64_t total_pairs = 0;
    if (mut_nodes) {
      // Load recording needs per-entry pair counts; off the diagnostic
      // path the whole list is handed to the kernel TU in one call.
      for (const auto& e : direct_) {
        const auto entry_pairs = mk::p2p_block(blk_, sv, e.first, e.count,
                                               e.mask, opts_.softening,
                                               lane_pairs);
        mut_nodes[e.node].load += entry_pairs;
        total_pairs += entry_pairs;
      }
    } else {
      total_pairs = mk::p2p_list(blk_, sv, direct_.data(), direct_.size(),
                                 opts_.softening, lane_pairs);
    }
    for (std::size_t l = 0; l < width; ++l)
      work_[l].direct_pairs += lane_pairs[l];
    obs::prof::count_flops(total_pairs * model::kDirectFlops);
    obs::prof::count_bytes(total_pairs * (sizeof(Vec<D>) + sizeof(double)));
  }
  std::uint64_t macs = 0;
  for (std::size_t l = 0; l < width; ++l) macs += work_[l].mac_evals;
  obs::prof::count_flops(macs * model::kMacFlops);
  obs::prof::count_bytes(macs * sizeof(Node<D>));
}

template <std::size_t D>
TraversalResult<D> evaluate_subtree(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    BhTree<D>* mutable_tree) {
  Walker<D> w{tree,    ps,
              opts,    target,
              self_id, nullptr,
              (opts.record_load && mutable_tree) ? mutable_tree->nodes.data()
                                                 : nullptr};
  auto r = w.run(node);
  r.work.degree = (opts.use_expansions && tree.has_expansions())
                      ? tree.degree
                      : 0;
  return r;
}

template <std::size_t D>
TraversalResult<D> evaluate_partial(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    std::vector<RemoteHit<D>>& remote_hits,
                                    BhTree<D>* mutable_tree) {
  Walker<D> w{tree,    ps,
              opts,    target,
              self_id, &remote_hits,
              (opts.record_load && mutable_tree) ? mutable_tree->nodes.data()
                                                 : nullptr};
  auto r = w.run(node);
  r.work.degree = (opts.use_expansions && tree.has_expansions())
                      ? tree.degree
                      : 0;
  return r;
}

template <std::size_t D>
model::WorkCounter compute_fields(BhTree<D>& tree, model::ParticleSet<D>& ps,
                                  const TraversalOptions& opts) {
  BH_PROF_REGION("tree.traverse");
  model::WorkCounter total;
  total.degree =
      (opts.use_expansions && tree.has_expansions()) ? tree.degree : 0;
  if (opts.mode == TraversalMode::kWalker) {
    // Morton (perm) order gives the best traversal locality.
    for (const auto pi : tree.perm) {
      auto r = evaluate_subtree(tree, ps, 0, ps.pos[pi], ps.id[pi], opts,
                                opts.record_load ? &tree : nullptr);
      if (opts.kind != FieldKind::kPotential) ps.acc[pi] += r.field.acc;
      if (opts.kind != FieldKind::kForce)
        ps.potential[pi] += r.field.potential;
      total.mac_evals += r.work.mac_evals;
      total.interactions += r.work.interactions;
      total.direct_pairs += r.work.direct_pairs;
    }
    obs::prof::count_flops(total.flops());
    obs::prof::count_bytes(traversal_bytes<D>(total));
    return total;
  }

  // Blocked pipeline: one SoA gather, then per-leaf target blocks in slot
  // order (the same particle order as the walker loop above). The evaluator
  // banks its own flop/byte attribution: kernels into kernel.p2p/kernel.m2p,
  // the MAC share into this tree.traverse region.
  SlotSources<D> src;
  src.gather(tree, ps);
  BlockedEval<D> ev(tree, ps, src, opts);
  std::array<Vec<D>, multipole::kBlockWidth> targets;
  std::array<std::uint64_t, multipole::kBlockWidth> ids{};
  for (const auto& b : make_slot_blocks(tree, multipole::kBlockWidth)) {
    for (std::uint32_t l = 0; l < b.width; ++l) {
      const auto pi = tree.perm[b.first + l];
      targets[l] = ps.pos[pi];
      ids[l] = ps.id[pi];
    }
    ev.run(0, targets.data(), ids.data(), b.width, /*allow_remote=*/false,
           opts.record_load ? &tree : nullptr);
    for (std::uint32_t l = 0; l < b.width; ++l) {
      const auto pi = tree.perm[b.first + l];
      const auto f = ev.field(l);
      if (opts.kind != FieldKind::kPotential) ps.acc[pi] += f.acc;
      if (opts.kind != FieldKind::kForce) ps.potential[pi] += f.potential;
      total += ev.work(l);
    }
  }
  return total;
}

template <std::size_t D>
model::WorkCounter direct_sum(model::ParticleSet<D>& ps, FieldKind kind,
                              double softening) {
  BH_PROF_REGION("kernel.direct");
  const std::size_t n = ps.size();
  model::WorkCounter w;
  for (std::size_t i = 0; i < n; ++i) {
    multipole::FieldSample<D> f;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      f += multipole::point_kernel<D>(ps.pos[i], ps.pos[j], ps.mass[j],
                                      softening);
    }
    if (kind != FieldKind::kPotential) ps.acc[i] += f.acc;
    if (kind != FieldKind::kForce) ps.potential[i] += f.potential;
    w.direct_pairs += n - 1;
  }
  obs::prof::count_flops(w.flops());
  obs::prof::count_bytes(traversal_bytes<D>(w));
  return w;
}

double fractional_error(const std::vector<double>& approx,
                        const std::vector<double>& exact) {
  assert(approx.size() == exact.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    const double d = approx[i] - exact[i];
    num += d * d;
    den += exact[i] * exact[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

#define BH_INSTANTIATE(D)                                                     \
  template TraversalResult<D> evaluate_subtree<D>(                           \
      const BhTree<D>&, const model::ParticleSet<D>&, std::int32_t,          \
      const Vec<D>&, std::uint64_t, const TraversalOptions&, BhTree<D>*);    \
  template TraversalResult<D> evaluate_partial<D>(                           \
      const BhTree<D>&, const model::ParticleSet<D>&, std::int32_t,          \
      const Vec<D>&, std::uint64_t, const TraversalOptions&,                 \
      std::vector<RemoteHit<D>>&, BhTree<D>*);                               \
  template model::WorkCounter compute_fields<D>(BhTree<D>&,                  \
                                                model::ParticleSet<D>&,      \
                                                const TraversalOptions&);    \
  template model::WorkCounter direct_sum<D>(model::ParticleSet<D>&,          \
                                            FieldKind, double);             \
  template struct SlotSources<D>;                                            \
  template std::vector<SlotBlock> make_slot_blocks<D>(const BhTree<D>&,      \
                                                      unsigned);             \
  template class BlockedEval<D>;

BH_INSTANTIATE(2)
BH_INSTANTIATE(3)
#undef BH_INSTANTIATE

}  // namespace bh::tree
