// bhtree.hpp -- the Barnes-Hut spatial tree (quad-tree in 2-D, oct-tree in
// 3-D) and its traversal interface.
//
// The layout is a flat node array (indices, not pointers): cheap to build,
// cache-friendly to traverse, and -- crucially for the parallel formulations
// -- nodes carry a NodeKey so any box can be named globally, branch nodes can
// be exchanged between processors, and children are laid out in Morton order
// so an in-order walk of the leaves is a Morton walk of space (Section 3.3.3
// relies on this for contiguous costzones partitions).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/morton.hpp"
#include "geom/vec.hpp"
#include "model/flops.hpp"
#include "model/particle.hpp"
#include "multipole/expansion.hpp"

namespace bh::tree {

using geom::Box;
using geom::NodeKey;
using geom::Vec;

inline constexpr std::int32_t kNullNode = -1;
inline constexpr std::int32_t kNoOwner = -1;

/// One tree node. `count`/`first` index the tree's Morton-ordered particle
/// permutation; internal nodes cover the concatenation of their children's
/// ranges.
template <std::size_t D>
struct Node {
  Box<D> box{};
  NodeKey<D> key{};
  std::int32_t parent = kNullNode;
  std::array<std::int32_t, (1u << D)> child{};  // kNullNode when absent
  std::uint32_t first = 0;  ///< first particle (permuted index)
  std::uint32_t count = 0;  ///< particles under this node
  double mass = 0.0;
  Vec<D> com{};             ///< center of mass
  /// Cluster radius about the COM: max distance from com to any particle
  /// under this node. A degree-k expansion about the COM converges only
  /// for evaluation distances > rmax, so the traversal refuses to use an
  /// expansion closer than that even when the alpha-MAC would accept.
  double rmax = 0.0;
  std::uint64_t load = 0;   ///< interactions charged to this node (Sec. 3.3)
  std::int32_t owner = kNoOwner;  ///< owning rank for remote branch nodes
  bool is_leaf = false;
  bool is_remote = false;   ///< true: subtree lives on processor `owner`

  Node() { child.fill(kNullNode); }
};

/// Tree build parameters.
struct BuildOptions {
  /// Leaf capacity `s` from Section 3.1: a box with more than s particles is
  /// split. The paper's construction uses small s (its examples use s = 2).
  unsigned leaf_capacity = 1;
  /// Maximum refinement level (bounded by the Morton key width).
  unsigned max_level = 0;  // 0 = use morton_max_level<D>
  /// Expansion degree: 0 = monopole only (Section 5.1 experiments),
  /// k >= 1 also builds degree-k multipole expansions (Section 5.2).
  unsigned degree = 0;
  /// Box collapsing (Section 2): descend chains of singly-occupied boxes
  /// without materializing them, bounding tree size for degenerate inputs.
  bool collapse = false;
};

/// Flat Barnes-Hut tree over a particle set. `perm[i]` maps a tree-order
/// slot to the original particle index; leaves own contiguous slot ranges in
/// Morton order.
template <std::size_t D>
struct BhTree {
  Box<D> root_box{};
  std::vector<Node<D>> nodes;             // nodes[0] is the root
  std::vector<std::uint32_t> perm;        // Morton-ordered particle indices
  std::vector<multipole::Expansion<D>> expansions;  // per node, if degree>0
  unsigned degree = 0;

  bool has_expansions() const { return !expansions.empty(); }
  std::size_t size() const { return nodes.size(); }
  const Node<D>& root() const { return nodes[0]; }

  /// Locate the node with the given key; kNullNode if not materialized.
  std::int32_t find(NodeKey<D> key) const;

  /// Clear per-node interaction loads before a force phase.
  void reset_loads() {
    for (auto& n : nodes) n.load = 0;
  }
};

/// Build a Barnes-Hut tree over `ps` inside `root_box` (use
/// ps.bounding_cube() when the domain box is not fixed). Runs the upward
/// (post-order) pass: mass, center of mass and -- when opts.degree > 0 --
/// multipole expansions about each node's center of mass.
template <std::size_t D>
BhTree<D> build_tree(const model::ParticleSet<D>& ps, Box<D> root_box,
                     const BuildOptions& opts = {});

/// What the traversal should accumulate.
enum class FieldKind : std::uint8_t {
  kPotential,  ///< scalar potential only (Section 5.2 experiments)
  kForce,      ///< acceleration only (Section 5.1 experiments)
  kBoth,
};

/// Traversal parameters: the alpha-MAC and kernel settings.
struct TraversalOptions {
  double alpha = 0.67;     ///< MAC: accept when edge / dist < alpha
  double softening = 0.0;  ///< Plummer softening for direct interactions
  FieldKind kind = FieldKind::kBoth;
  bool use_expansions = true;  ///< evaluate degree-k expansions when present
  bool record_load = false;    ///< bump node load counters (load balancing)
};

/// Outcome of traversing one subtree for one evaluation point: accumulated
/// field plus the work performed (drives the virtual-time machine model).
template <std::size_t D>
struct TraversalResult {
  multipole::FieldSample<D> field;
  model::WorkCounter work;
};

/// Memory traffic implied by a traversal's work counters: one node record
/// per MAC evaluation, position+mass per direct pair, one expansion per
/// accepted degree-k interaction. This is the deterministic `bytes` column
/// of the wall-clock profiler's roofline (obs/prof); flops come from
/// WorkCounter::flops() on the same counters.
template <std::size_t D>
constexpr std::uint64_t traversal_bytes(const model::WorkCounter& w) {
  return w.mac_evals * sizeof(Node<D>) +
         w.direct_pairs * (sizeof(Vec<D>) + sizeof(double)) +
         w.interactions *
             (w.degree ? sizeof(multipole::Expansion<D>) : 0);
}

/// Evaluate the field of the subtree rooted at `node` on `target`.
/// `self_id` excludes one particle id from direct sums (the target itself);
/// pass kNoSelf when evaluating at a detached point. This single routine
/// serves the serial code, the local part of the parallel traversal, and
/// the *shipped* computation a remote processor performs on behalf of a
/// particle it received (Section 3.2) -- remote traversal halts are
/// reported through `remote_hits` (see below).
inline constexpr std::uint64_t kNoSelf =
    std::numeric_limits<std::uint64_t>::max();

template <std::size_t D>
TraversalResult<D> evaluate_subtree(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    BhTree<D>* mutable_tree = nullptr);

/// A traversal halt at a remote branch node: the particle must be shipped to
/// `owner` to interact with the subtree named by `key`.
template <std::size_t D>
struct RemoteHit {
  NodeKey<D> key;
  std::int32_t owner;
};

/// As evaluate_subtree, but collects remote halts instead of asserting the
/// tree is fully local. Used by the parallel force phase.
template <std::size_t D>
TraversalResult<D> evaluate_partial(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    std::vector<RemoteHit<D>>& remote_hits,
                                    BhTree<D>* mutable_tree = nullptr);

/// Recompute node masses and multipole expansions from the particle set's
/// current masses, keeping the tree structure, node centers and radii
/// fixed. This makes the treecode an *exactly linear* operator in the
/// masses (weights may be signed) -- what the boundary-element matrix-
/// vector product needs so that Krylov solvers see one fixed matrix.
template <std::size_t D>
void refresh_masses(BhTree<D>& tree, const model::ParticleSet<D>& ps);

/// Serial Barnes-Hut: compute the field on every particle of `ps` in-place
/// (fills ps.acc / ps.potential per opts.kind). Returns total work.
template <std::size_t D>
model::WorkCounter compute_fields(BhTree<D>& tree, model::ParticleSet<D>& ps,
                                  const TraversalOptions& opts);

/// O(n^2) direct summation reference (fills accumulators; returns work).
template <std::size_t D>
model::WorkCounter direct_sum(model::ParticleSet<D>& ps, FieldKind kind,
                              double softening = 0.0);

/// Fractional error || x_k - x || / || x || between two potential vectors
/// (the paper's accuracy metric, Section 5.2.2).
double fractional_error(const std::vector<double>& approx,
                        const std::vector<double>& exact);

}  // namespace bh::tree
