// bhtree.hpp -- the Barnes-Hut spatial tree (quad-tree in 2-D, oct-tree in
// 3-D) and its traversal interface.
//
// The layout is a flat node array (indices, not pointers): cheap to build,
// cache-friendly to traverse, and -- crucially for the parallel formulations
// -- nodes carry a NodeKey so any box can be named globally, branch nodes can
// be exchanged between processors, and children are laid out in Morton order
// so an in-order walk of the leaves is a Morton walk of space (Section 3.3.3
// relies on this for contiguous costzones partitions).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/morton.hpp"
#include "geom/vec.hpp"
#include "model/flops.hpp"
#include "model/particle.hpp"
#include "multipole/expansion.hpp"
#include "multipole/kernels.hpp"

namespace bh::tree {

using geom::Box;
using geom::NodeKey;
using geom::Vec;

inline constexpr std::int32_t kNullNode = -1;
inline constexpr std::int32_t kNoOwner = -1;

/// One tree node. `count`/`first` index the tree's Morton-ordered particle
/// permutation; internal nodes cover the concatenation of their children's
/// ranges.
template <std::size_t D>
struct Node {
  Box<D> box{};
  NodeKey<D> key{};
  std::int32_t parent = kNullNode;
  std::array<std::int32_t, (1u << D)> child{};  // kNullNode when absent
  std::uint32_t first = 0;  ///< first particle (permuted index)
  std::uint32_t count = 0;  ///< particles under this node
  double mass = 0.0;
  Vec<D> com{};             ///< center of mass
  /// Cluster radius about the COM: max distance from com to any particle
  /// under this node. A degree-k expansion about the COM converges only
  /// for evaluation distances > rmax, so the traversal refuses to use an
  /// expansion closer than that even when the alpha-MAC would accept.
  double rmax = 0.0;
  std::uint64_t load = 0;   ///< interactions charged to this node (Sec. 3.3)
  std::int32_t owner = kNoOwner;  ///< owning rank for remote branch nodes
  bool is_leaf = false;
  bool is_remote = false;   ///< true: subtree lives on processor `owner`

  Node() { child.fill(kNullNode); }
};

/// Tree build parameters.
struct BuildOptions {
  /// Leaf capacity `s` from Section 3.1: a box with more than s particles is
  /// split. The paper's construction uses small s (its examples use s = 2).
  unsigned leaf_capacity = 1;
  /// Maximum refinement level (bounded by the Morton key width).
  unsigned max_level = 0;  // 0 = use morton_max_level<D>
  /// Expansion degree: 0 = monopole only (Section 5.1 experiments),
  /// k >= 1 also builds degree-k multipole expansions (Section 5.2).
  unsigned degree = 0;
  /// Box collapsing (Section 2): descend chains of singly-occupied boxes
  /// without materializing them, bounding tree size for degenerate inputs.
  bool collapse = false;
};

/// Flat Barnes-Hut tree over a particle set. `perm[i]` maps a tree-order
/// slot to the original particle index; leaves own contiguous slot ranges in
/// Morton order.
template <std::size_t D>
struct BhTree {
  Box<D> root_box{};
  std::vector<Node<D>> nodes;             // nodes[0] is the root
  std::vector<std::uint32_t> perm;        // Morton-ordered particle indices
  std::vector<multipole::Expansion<D>> expansions;  // per node, if degree>0
  unsigned degree = 0;

  bool has_expansions() const { return !expansions.empty(); }
  std::size_t size() const { return nodes.size(); }
  const Node<D>& root() const { return nodes[0]; }

  /// Locate the node with the given key; kNullNode if not materialized.
  std::int32_t find(NodeKey<D> key) const;

  /// Clear per-node interaction loads before a force phase.
  void reset_loads() {
    for (auto& n : nodes) n.load = 0;
  }
};

/// Build a Barnes-Hut tree over `ps` inside `root_box` (use
/// ps.bounding_cube() when the domain box is not fixed). Runs the upward
/// (post-order) pass: mass, center of mass and -- when opts.degree > 0 --
/// multipole expansions about each node's center of mass.
template <std::size_t D>
BhTree<D> build_tree(const model::ParticleSet<D>& ps, Box<D> root_box,
                     const BuildOptions& opts = {});

/// What the traversal should accumulate.
enum class FieldKind : std::uint8_t {
  kPotential,  ///< scalar potential only (Section 5.2 experiments)
  kForce,      ///< acceleration only (Section 5.1 experiments)
  kBoth,
};

/// How the force phase traverses the tree. Both modes apply the identical
/// alpha-MAC per evaluation point and produce identical modeled work
/// counters (and hence identical virtual time); they differ only in memory
/// layout and wall-clock speed.
enum class TraversalMode : std::uint8_t {
  /// Per-particle recursive walk interleaving MAC and kernel evaluation.
  /// Retained as the parity oracle for the blocked pipeline.
  kWalker,
  /// Sort-then-interact: group up to multipole::kBlockWidth Morton-adjacent
  /// particles of one leaf into a target block, build the block's
  /// interaction lists (approx nodes + direct leaves) in one mask-steered
  /// walk, then evaluate the lists with SoA batch kernels.
  kBlocked,
};

/// Traversal parameters: the alpha-MAC and kernel settings.
struct TraversalOptions {
  double alpha = 0.67;     ///< MAC: accept when edge / dist < alpha
  double softening = 0.0;  ///< Plummer softening for direct interactions
  FieldKind kind = FieldKind::kBoth;
  bool use_expansions = true;  ///< evaluate degree-k expansions when present
  bool record_load = false;    ///< bump node load counters (load balancing)
  TraversalMode mode = TraversalMode::kBlocked;
};

/// Outcome of traversing one subtree for one evaluation point: accumulated
/// field plus the work performed (drives the virtual-time machine model).
template <std::size_t D>
struct TraversalResult {
  multipole::FieldSample<D> field;
  model::WorkCounter work;
};

/// Memory traffic implied by a traversal's work counters: one node record
/// per MAC evaluation, position+mass per direct pair, one expansion per
/// accepted degree-k interaction. This is the deterministic `bytes` column
/// of the wall-clock profiler's roofline (obs/prof); flops come from
/// WorkCounter::flops() on the same counters.
template <std::size_t D>
constexpr std::uint64_t traversal_bytes(const model::WorkCounter& w) {
  return w.mac_evals * sizeof(Node<D>) +
         w.direct_pairs * (sizeof(Vec<D>) + sizeof(double)) +
         w.interactions *
             (w.degree ? sizeof(multipole::Expansion<D>) : 0);
}

/// Evaluate the field of the subtree rooted at `node` on `target`.
/// `self_id` excludes one particle id from direct sums (the target itself);
/// pass kNoSelf when evaluating at a detached point. This single routine
/// serves the serial code, the local part of the parallel traversal, and
/// the *shipped* computation a remote processor performs on behalf of a
/// particle it received (Section 3.2) -- remote traversal halts are
/// reported through `remote_hits` (see below).
inline constexpr std::uint64_t kNoSelf =
    std::numeric_limits<std::uint64_t>::max();

template <std::size_t D>
TraversalResult<D> evaluate_subtree(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    BhTree<D>* mutable_tree = nullptr);

/// A traversal halt at a remote branch node: the particle must be shipped to
/// `owner` to interact with the subtree named by `key`.
template <std::size_t D>
struct RemoteHit {
  NodeKey<D> key;
  std::int32_t owner;
};

/// As evaluate_subtree, but collects remote halts instead of asserting the
/// tree is fully local. Used by the parallel force phase.
template <std::size_t D>
TraversalResult<D> evaluate_partial(const BhTree<D>& tree,
                                    const model::ParticleSet<D>& ps,
                                    std::int32_t node, const Vec<D>& target,
                                    std::uint64_t self_id,
                                    const TraversalOptions& opts,
                                    std::vector<RemoteHit<D>>& remote_hits,
                                    BhTree<D>* mutable_tree = nullptr);

/// Slot-ordered structure-of-arrays gather of a tree's particles: column
/// `s` holds the particle in permuted slot `s` (tree.perm[s]). Built once
/// per tree and shared by every BlockedEval over it, this is the contiguous
/// source layout the P2P batch kernel streams through -- a leaf's particles
/// are one dense range instead of a gather through perm.
template <std::size_t D>
struct SlotSources {
  std::array<std::vector<double>, D> pos;
  std::vector<double> mass;
  std::vector<std::uint64_t> id;

  void gather(const BhTree<D>& tree, const model::ParticleSet<D>& ps);

  multipole::SourceView<D> view() const {
    multipole::SourceView<D> v;
    for (std::size_t a = 0; a < D; ++a) v.pos[a] = pos[a].data();
    v.mass = mass.data();
    v.id = id.data();
    return v;
  }
};

/// One target block: `width` consecutive permuted slots starting at
/// `first`. Blocks may span leaf boundaries -- Morton-adjacent leaves are
/// spatially adjacent, so lanes still share most of their interaction
/// lists and every block stays at full kernel width. Walking the blocks
/// lane by lane is exactly a walk of tree.perm, which the parallel engine
/// relies on to replay the walker's virtual-time schedule bit-identically.
struct SlotBlock {
  std::uint32_t first = 0;
  std::uint32_t width = 0;
};

/// Partition the tree's local leaves into target blocks of at most
/// `max_width` (clamped to multipole::kBlockWidth) slots, in slot order.
template <std::size_t D>
std::vector<SlotBlock> make_slot_blocks(const BhTree<D>& tree,
                                        unsigned max_width);

/// The blocked sort-then-interact evaluator (TraversalMode::kBlocked).
/// One mask-steered walk per target block builds the block's interaction
/// lists -- approx entries (node + lane mask) and direct entries (leaf +
/// lane mask) -- evaluating the per-lane MAC with expressions identical to
/// the Walker's, so every lane's accept/descend decisions, work counters,
/// and remote-hit order match its solo walk exactly. The lists are then
/// evaluated with the SoA batch kernels (multipole/kernels.hpp) under
/// "kernel.p2p" / "kernel.m2p" profiling regions; MAC flops and node bytes
/// stay attributed to the enclosing traversal region.
template <std::size_t D>
class BlockedEval {
 public:
  /// `src` must be a gather of (tree, ps) and outlive the evaluator, as
  /// must `opts`.
  BlockedEval(const BhTree<D>& tree, const model::ParticleSet<D>& ps,
              const SlotSources<D>& src, const TraversalOptions& opts);

  /// Evaluate `width` (<= multipole::kBlockWidth) targets against the
  /// subtree rooted at `start`. When `allow_remote` is false, reaching a
  /// remote branch node is a logic error (purely local traversal); when
  /// true, per-lane remote hits are collected in the lane's walk order.
  /// Results are valid until the next run() on this evaluator.
  void run(std::int32_t start, const Vec<D>* targets,
           const std::uint64_t* self_ids, std::size_t width,
           bool allow_remote, BhTree<D>* mutable_tree);

  multipole::FieldSample<D> field(std::size_t lane) const {
    return blk_.field(lane);
  }
  const model::WorkCounter& work(std::size_t lane) const {
    return work_[lane];
  }
  const std::vector<RemoteHit<D>>& hits(std::size_t lane) const {
    return hits_[lane];
  }

 private:
  const BhTree<D>& tree_;
  const model::ParticleSet<D>& ps_;
  const SlotSources<D>& src_;
  const TraversalOptions& opts_;
  bool use_expansions_ = false;
  std::vector<multipole::ApproxItem<D>> approx_;
  std::vector<multipole::DirectItem> direct_;
  std::array<std::vector<RemoteHit<D>>, multipole::kBlockWidth> hits_;
  std::array<model::WorkCounter, multipole::kBlockWidth> work_{};
  multipole::TargetBlock<D> blk_;
};

/// Recompute node masses and multipole expansions from the particle set's
/// current masses, keeping the tree structure, node centers and radii
/// fixed. This makes the treecode an *exactly linear* operator in the
/// masses (weights may be signed) -- what the boundary-element matrix-
/// vector product needs so that Krylov solvers see one fixed matrix.
template <std::size_t D>
void refresh_masses(BhTree<D>& tree, const model::ParticleSet<D>& ps);

/// Serial Barnes-Hut: compute the field on every particle of `ps` in-place
/// (fills ps.acc / ps.potential per opts.kind). Returns total work.
template <std::size_t D>
model::WorkCounter compute_fields(BhTree<D>& tree, model::ParticleSet<D>& ps,
                                  const TraversalOptions& opts);

/// O(n^2) direct summation reference (fills accumulators; returns work).
template <std::size_t D>
model::WorkCounter direct_sum(model::ParticleSet<D>& ps, FieldKind kind,
                              double softening = 0.0);

/// Fractional error || x_k - x || / || x || between two potential vectors
/// (the paper's accuracy metric, Section 5.2.2).
double fractional_error(const std::vector<double>& approx,
                        const std::vector<double>& exact);

}  // namespace bh::tree
