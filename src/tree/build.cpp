// build.cpp -- Barnes-Hut tree construction (Section 3.1 serial core).
//
// Construction radix-sorts particles by Morton key once and then emits the
// tree level by level (breadth-first) over contiguous key ranges from an
// explicit work queue; children are emitted in Morton-digit order, so an
// in-order leaf walk is a Morton walk of space. Parents always precede
// their children in the node array (the upward passes rely on a reverse
// index sweep) and the root is node 0 (the distributed splice relies on
// that). The upward (post-order) pass computes mass, center of mass and,
// when requested, degree-k multipole expansions (P2M at leaves, M2M at
// internal nodes).
#include <algorithm>
#include <cassert>

#include "obs/prof/prof.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {

namespace {

/// Stable LSD radix sort of `perm` by 8-bit digits of keys[perm[i]].
/// Stability plus the identity-initialized permutation reproduces the
/// comparison sort it replaces exactly: keys ascending, ties by original
/// index ascending. Passes whose digit is constant across all keys (the
/// common case for the high bytes of shallow trees) are skipped.
void radix_sort_perm(std::vector<std::uint32_t>& perm,
                     const std::vector<std::uint64_t>& keys,
                     unsigned key_bits) {
  const std::size_t n = perm.size();
  if (n < 2) return;
  std::vector<std::uint32_t> scratch(n);
  for (unsigned shift = 0; shift < key_bits; shift += 8) {
    std::size_t count[256] = {};
    for (std::size_t i = 0; i < n; ++i)
      ++count[(keys[perm[i]] >> shift) & 0xffu];
    bool single_bucket = false;
    for (std::size_t b = 0; b < 256; ++b)
      if (count[b] == n) single_bucket = true;
    if (single_bucket) continue;
    std::size_t offset = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = offset;
      offset += c;
    }
    for (std::size_t i = 0; i < n; ++i)
      scratch[count[(keys[perm[i]] >> shift) & 0xffu]++] = perm[i];
    perm.swap(scratch);
  }
}

template <std::size_t D>
struct Builder {
  const BuildOptions& opts;
  BhTree<D>& tree;
  std::vector<std::uint64_t> keys;  // Morton key per original particle
  unsigned max_level;

  unsigned digit_at(std::uint64_t key, unsigned level) const {
    // Octant digit for tree level `level` (root children = level 0 digits).
    const unsigned shift = D * (max_level - 1 - level);
    return static_cast<unsigned>((key >> shift) & ((1u << D) - 1));
  }

  /// One pending node: a permuted slot range plus where it hangs.
  struct WorkItem {
    std::uint32_t lo, hi;
    Box<D> box;
    NodeKey<D> key;
    unsigned level;
    std::int32_t parent;  // kNullNode for the root
    std::uint8_t digit;   // child slot in the parent
  };

  /// Level-by-level emission from a FIFO work queue: each popped range
  /// becomes one contiguous node, links into its parent (already emitted),
  /// and enqueues its non-empty child ranges.
  void build(std::uint32_t n0, Box<D> root_box) {
    std::vector<WorkItem> queue;
    queue.reserve(64);
    queue.push_back({0, n0, root_box, NodeKey<D>{}, 0, kNullNode, 0});
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      WorkItem w = queue[qi];  // by value: push_back below may reallocate

      // Box collapsing: descend through levels where every particle falls
      // in one octant, without materializing the chain.
      if (opts.collapse) {
        while (w.hi - w.lo > opts.leaf_capacity && w.level < max_level) {
          const unsigned d0 = digit_at(keys[tree.perm[w.lo]], w.level);
          bool all_same = true;
          for (std::uint32_t i = w.lo + 1; i < w.hi; ++i) {
            if (digit_at(keys[tree.perm[i]], w.level) != d0) {
              all_same = false;
              break;
            }
          }
          if (!all_same) break;
          w.box = w.box.child(d0);
          w.key = w.key.child(d0);
          ++w.level;
        }
      }

      const auto idx = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      {
        Node<D>& n = tree.nodes.back();
        n.box = w.box;
        n.key = w.key;
        n.parent = w.parent;
        n.first = w.lo;
        n.count = w.hi - w.lo;
      }
      if (w.parent != kNullNode)
        tree.nodes[static_cast<std::size_t>(w.parent)].child[w.digit] = idx;

      if (w.hi - w.lo <= opts.leaf_capacity || w.level >= max_level) {
        tree.nodes[static_cast<std::size_t>(idx)].is_leaf = true;
        continue;
      }

      // Partition the (already Morton-sorted) range by this level's digit.
      std::array<std::uint32_t, (1u << D) + 1> cut{};
      cut[0] = w.lo;
      std::uint32_t pos = w.lo;
      for (unsigned d = 0; d + 1 < (1u << D); ++d) {
        while (pos < w.hi && digit_at(keys[tree.perm[pos]], w.level) <= d)
          ++pos;
        cut[d + 1] = pos;
      }
      cut[1u << D] = w.hi;

      for (unsigned d = 0; d < (1u << D); ++d) {
        if (cut[d] == cut[d + 1]) continue;
        queue.push_back({cut[d], cut[d + 1], w.box.child(d), w.key.child(d),
                         w.level + 1, idx, static_cast<std::uint8_t>(d)});
      }
    }
  }
};

/// Upward pass: children were created after their parents, so a reverse
/// index sweep visits every child before its parent.
template <std::size_t D>
void upward_pass(BhTree<D>& tree, const model::ParticleSet<D>& ps,
                 unsigned degree) {
  BH_PROF_REGION("tree.upward");
  auto& nodes = tree.nodes;
  // Mass, center of mass and cluster radius.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    if (n.is_leaf) {
      n.mass = 0.0;
      Vec<D> weighted{};
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        n.mass += ps.mass[pi];
        weighted += ps.mass[pi] * ps.pos[pi];
      }
      n.com = n.mass > 0.0 ? weighted / n.mass : n.box.center();
      n.rmax = 0.0;
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        n.rmax = std::max(n.rmax,
                          geom::norm(ps.pos[tree.perm[s]] - n.com));
    } else {
      n.mass = 0.0;
      Vec<D> weighted{};
      for (const auto c : n.child) {
        if (c == kNullNode) continue;
        n.mass += nodes[c].mass;
        weighted += nodes[c].mass * nodes[c].com;
      }
      n.com = n.mass > 0.0 ? weighted / n.mass : n.box.center();
      n.rmax = 0.0;
      for (const auto c : n.child) {
        if (c == kNullNode || nodes[c].count == 0) continue;
        n.rmax = std::max(n.rmax, geom::norm(nodes[c].com - n.com) +
                                      nodes[c].rmax);
      }
    }
  }

  if (degree == 0) return;
  tree.degree = degree;
  tree.expansions.clear();
  tree.expansions.reserve(nodes.size());
  for (const auto& n : nodes)
    tree.expansions.emplace_back(degree, n.com);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    auto& e = tree.expansions[i];
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        e.add_particle(ps.pos[pi], ps.mass[pi]);
      }
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) e.add_translated(tree.expansions[c]);
    }
  }
}

}  // namespace

template <std::size_t D>
BhTree<D> build_tree(const model::ParticleSet<D>& ps, Box<D> root_box,
                     const BuildOptions& opts) {
  BH_PROF_REGION("tree.build");
  BhTree<D> tree;
  tree.root_box = root_box;
  const std::size_t n = ps.size();
  tree.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    tree.perm[i] = static_cast<std::uint32_t>(i);

  Builder<D> b{opts, tree, {}, 0};
  b.max_level = opts.max_level ? opts.max_level : geom::morton_max_level<D>;
  b.keys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    b.keys[i] = geom::morton_key(ps.pos[i], root_box, b.max_level);
  radix_sort_perm(tree.perm, b.keys, D * b.max_level);

  tree.nodes.reserve(n > 8 ? 2 * n : 16);
  if (n > 0) {
    b.build(static_cast<std::uint32_t>(n), root_box);
  } else {
    tree.nodes.emplace_back();
    tree.nodes[0].box = root_box;
    tree.nodes[0].is_leaf = true;
  }
  upward_pass(tree, ps, opts.degree);
  // Roofline traffic annotation: the build's dominant memory movement is
  // the key/permutation sort plus one pass over the node array.
  obs::prof::count_bytes(
      tree.nodes.size() * sizeof(Node<D>) +
      n * (sizeof(std::uint64_t) + sizeof(std::uint32_t)));
  return tree;
}

template <std::size_t D>
void refresh_masses(BhTree<D>& tree, const model::ParticleSet<D>& ps) {
  auto& nodes = tree.nodes;
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    n.mass = 0.0;
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        n.mass += ps.mass[tree.perm[s]];
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) n.mass += nodes[c].mass;
    }
  }
  if (tree.degree == 0 || tree.expansions.empty()) return;
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    auto& e = tree.expansions[i];
    e = multipole::Expansion<D>(tree.degree, n.com);  // zero, same center
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        e.add_particle(ps.pos[pi], ps.mass[pi]);
      }
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) e.add_translated(tree.expansions[c]);
    }
  }
}

template void refresh_masses<2>(BhTree<2>&, const model::ParticleSet<2>&);
template void refresh_masses<3>(BhTree<3>&, const model::ParticleSet<3>&);

template <std::size_t D>
std::int32_t BhTree<D>::find(NodeKey<D> key) const {
  std::int32_t cur = nodes.empty() ? kNullNode : 0;
  while (cur != kNullNode) {
    const Node<D>& n = nodes[cur];
    if (n.key == key) return cur;
    if (!n.key.ancestor_of(key)) return kNullNode;
    std::int32_t next = kNullNode;
    for (const auto c : n.child) {
      if (c == kNullNode) continue;
      if (nodes[c].key == key || nodes[c].key.ancestor_of(key)) {
        next = c;
        break;
      }
    }
    cur = next;
  }
  return kNullNode;
}

template BhTree<2> build_tree<2>(const model::ParticleSet<2>&, Box<2>,
                                 const BuildOptions&);
template BhTree<3> build_tree<3>(const model::ParticleSet<3>&, Box<3>,
                                 const BuildOptions&);
template struct BhTree<2>;
template struct BhTree<3>;

}  // namespace bh::tree
