// build.cpp -- Barnes-Hut tree construction (Section 3.1 serial core).
//
// Construction sorts particles by Morton key once and then builds the tree
// top-down over contiguous key ranges; children are emitted in Morton-digit
// order, so an in-order leaf walk is a Morton walk of space. The upward
// (post-order) pass computes mass, center of mass and, when requested,
// degree-k multipole expansions (P2M at leaves, M2M at internal nodes).
#include <algorithm>
#include <cassert>

#include "obs/prof/prof.hpp"
#include "tree/bhtree.hpp"

namespace bh::tree {

namespace {

template <std::size_t D>
struct Builder {
  const model::ParticleSet<D>& ps;
  const BuildOptions& opts;
  BhTree<D>& tree;
  std::vector<std::uint64_t> keys;  // Morton key per original particle
  unsigned max_level;

  unsigned digit_at(std::uint64_t key, unsigned level) const {
    // Octant digit for tree level `level` (root children = level 0 digits).
    const unsigned shift = D * (max_level - 1 - level);
    return static_cast<unsigned>((key >> shift) & ((1u << D) - 1));
  }

  /// Recursively build over permuted slots [lo, hi). Returns node index.
  std::int32_t build(std::uint32_t lo, std::uint32_t hi, Box<D> box,
                     NodeKey<D> key, unsigned level, std::int32_t parent) {
    // Box collapsing: descend through levels where every particle falls in
    // one octant, without materializing the chain.
    if (opts.collapse) {
      while (hi - lo > opts.leaf_capacity && level < max_level) {
        const unsigned d0 = digit_at(keys[tree.perm[lo]], level);
        bool all_same = true;
        for (std::uint32_t i = lo + 1; i < hi; ++i) {
          if (digit_at(keys[tree.perm[i]], level) != d0) {
            all_same = false;
            break;
          }
        }
        if (!all_same) break;
        box = box.child(d0);
        key = key.child(d0);
        ++level;
      }
    }

    const auto idx = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.emplace_back();
    {
      Node<D>& n = tree.nodes.back();
      n.box = box;
      n.key = key;
      n.parent = parent;
      n.first = lo;
      n.count = hi - lo;
    }

    if (hi - lo <= opts.leaf_capacity || level >= max_level) {
      tree.nodes[idx].is_leaf = true;
      return idx;
    }

    // Partition the (already Morton-sorted) range by this level's digit.
    std::array<std::uint32_t, (1u << D) + 1> cut{};
    cut[0] = lo;
    std::uint32_t pos = lo;
    for (unsigned d = 0; d + 1 < (1u << D); ++d) {
      while (pos < hi && digit_at(keys[tree.perm[pos]], level) <= d) ++pos;
      cut[d + 1] = pos;
    }
    cut[1u << D] = hi;

    for (unsigned d = 0; d < (1u << D); ++d) {
      if (cut[d] == cut[d + 1]) continue;
      const std::int32_t c = build(cut[d], cut[d + 1], box.child(d),
                                   key.child(d), level + 1, idx);
      tree.nodes[idx].child[d] = c;
    }
    return idx;
  }
};

/// Upward pass: children were created after their parents, so a reverse
/// index sweep visits every child before its parent.
template <std::size_t D>
void upward_pass(BhTree<D>& tree, const model::ParticleSet<D>& ps,
                 unsigned degree) {
  BH_PROF_REGION("tree.upward");
  auto& nodes = tree.nodes;
  // Mass, center of mass and cluster radius.
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    if (n.is_leaf) {
      n.mass = 0.0;
      Vec<D> weighted{};
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        n.mass += ps.mass[pi];
        weighted += ps.mass[pi] * ps.pos[pi];
      }
      n.com = n.mass > 0.0 ? weighted / n.mass : n.box.center();
      n.rmax = 0.0;
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        n.rmax = std::max(n.rmax,
                          geom::norm(ps.pos[tree.perm[s]] - n.com));
    } else {
      n.mass = 0.0;
      Vec<D> weighted{};
      for (const auto c : n.child) {
        if (c == kNullNode) continue;
        n.mass += nodes[c].mass;
        weighted += nodes[c].mass * nodes[c].com;
      }
      n.com = n.mass > 0.0 ? weighted / n.mass : n.box.center();
      n.rmax = 0.0;
      for (const auto c : n.child) {
        if (c == kNullNode || nodes[c].count == 0) continue;
        n.rmax = std::max(n.rmax, geom::norm(nodes[c].com - n.com) +
                                      nodes[c].rmax);
      }
    }
  }

  if (degree == 0) return;
  tree.degree = degree;
  tree.expansions.clear();
  tree.expansions.reserve(nodes.size());
  for (const auto& n : nodes)
    tree.expansions.emplace_back(degree, n.com);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    auto& e = tree.expansions[i];
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        e.add_particle(ps.pos[pi], ps.mass[pi]);
      }
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) e.add_translated(tree.expansions[c]);
    }
  }
}

}  // namespace

template <std::size_t D>
BhTree<D> build_tree(const model::ParticleSet<D>& ps, Box<D> root_box,
                     const BuildOptions& opts) {
  BH_PROF_REGION("tree.build");
  BhTree<D> tree;
  tree.root_box = root_box;
  const std::size_t n = ps.size();
  tree.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    tree.perm[i] = static_cast<std::uint32_t>(i);

  Builder<D> b{ps, opts, tree, {}, 0};
  b.max_level = opts.max_level ? opts.max_level : geom::morton_max_level<D>;
  b.keys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    b.keys[i] = geom::morton_key(ps.pos[i], root_box, b.max_level);
  std::sort(tree.perm.begin(), tree.perm.end(),
            [&](std::uint32_t a, std::uint32_t c) {
              return b.keys[a] < b.keys[c] ||
                     (b.keys[a] == b.keys[c] && a < c);
            });

  tree.nodes.reserve(n > 8 ? 2 * n : 16);
  if (n > 0) {
    b.build(0, static_cast<std::uint32_t>(n), root_box, NodeKey<D>{}, 0,
            kNullNode);
  } else {
    tree.nodes.emplace_back();
    tree.nodes[0].box = root_box;
    tree.nodes[0].is_leaf = true;
  }
  upward_pass(tree, ps, opts.degree);
  // Roofline traffic annotation: the build's dominant memory movement is
  // the key/permutation sort plus one pass over the node array.
  obs::prof::count_bytes(
      tree.nodes.size() * sizeof(Node<D>) +
      n * (sizeof(std::uint64_t) + sizeof(std::uint32_t)));
  return tree;
}

template <std::size_t D>
void refresh_masses(BhTree<D>& tree, const model::ParticleSet<D>& ps) {
  auto& nodes = tree.nodes;
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    n.mass = 0.0;
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s)
        n.mass += ps.mass[tree.perm[s]];
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) n.mass += nodes[c].mass;
    }
  }
  if (tree.degree == 0 || tree.expansions.empty()) return;
  for (std::size_t i = nodes.size(); i-- > 0;) {
    Node<D>& n = nodes[i];
    auto& e = tree.expansions[i];
    e = multipole::Expansion<D>(tree.degree, n.com);  // zero, same center
    if (n.is_leaf) {
      for (std::uint32_t s = n.first; s < n.first + n.count; ++s) {
        const auto pi = tree.perm[s];
        e.add_particle(ps.pos[pi], ps.mass[pi]);
      }
    } else {
      for (const auto c : n.child)
        if (c != kNullNode) e.add_translated(tree.expansions[c]);
    }
  }
}

template void refresh_masses<2>(BhTree<2>&, const model::ParticleSet<2>&);
template void refresh_masses<3>(BhTree<3>&, const model::ParticleSet<3>&);

template <std::size_t D>
std::int32_t BhTree<D>::find(NodeKey<D> key) const {
  std::int32_t cur = nodes.empty() ? kNullNode : 0;
  while (cur != kNullNode) {
    const Node<D>& n = nodes[cur];
    if (n.key == key) return cur;
    if (!n.key.ancestor_of(key)) return kNullNode;
    std::int32_t next = kNullNode;
    for (const auto c : n.child) {
      if (c == kNullNode) continue;
      if (nodes[c].key == key || nodes[c].key.ancestor_of(key)) {
        next = c;
        break;
      }
    }
    cur = next;
  }
  return kNullNode;
}

template BhTree<2> build_tree<2>(const model::ParticleSet<2>&, Box<2>,
                                 const BuildOptions&);
template BhTree<3> build_tree<3>(const model::ParticleSet<3>&, Box<3>,
                                 const BuildOptions&);
template struct BhTree<2>;
template struct BhTree<3>;

}  // namespace bh::tree
