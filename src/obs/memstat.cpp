// memstat.cpp -- peak-RSS readout and the allocation-counting operator new.
#include "obs/memstat.hpp"

#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bh::obs::memstat {

namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

std::uint64_t thread_allocs() { return t_allocs; }

namespace detail {
void count_alloc() { ++t_allocs; }
}  // namespace detail

}  // namespace bh::obs::memstat

// Global operator new replacement: count, then defer to malloc. Matching
// deletes are replaced alongside (the standard requires replacing the full
// pair); frees are not counted -- the registry tracks allocation pressure,
// not live bytes. Aligned forms are intentionally left to the default
// implementation: nothing on our hot paths over-aligns, and the defaults do
// not route through these operators.
void* operator new(std::size_t size) {
  bh::obs::memstat::detail::count_alloc();
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  bh::obs::memstat::detail::count_alloc();
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
