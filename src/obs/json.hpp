// json.hpp -- tiny JSON writing helpers shared by the obs exporters.
//
// Only what the exporters need: string escaping per RFC 8259 and a double
// formatter that never emits the JSON-invalid tokens inf/nan. Kept header-
// only and dependency-free so both trace.cpp and metrics.cpp (and tests)
// can use it.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace bh::obs {

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Format a double as a JSON number using the shortest representation that
/// round-trips exactly (tries %.15g, %.16g, %.17g -- 17 significant digits
/// always suffice for IEEE binary64). JSON cannot represent inf/nan; those
/// become `null`, which every consumer treats as "not a number" instead of
/// silently reading a bogus 0.
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace bh::obs
