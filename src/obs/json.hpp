// json.hpp -- tiny JSON writing helpers shared by the obs exporters.
//
// Only what the exporters need: string escaping per RFC 8259 and a double
// formatter that never emits the JSON-invalid tokens inf/nan. Kept header-
// only and dependency-free so both trace.cpp and metrics.cpp (and tests)
// can use it.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace bh::obs {

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Format a double as a JSON number (inf/nan degrade to 0, which JSON
/// cannot represent; virtual times and stats are finite in practice).
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace bh::obs
