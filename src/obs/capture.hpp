// capture.hpp -- command-line glue between harness::Cli and the obs layer.
//
// Every bench/example binary accepts the built-in --trace=PATH and
// --metrics=PATH flags (declared by harness::Cli itself). A Capture reads
// them, hands the runtime a Tracer only when a trace was requested (so
// untraced runs stay zero-overhead), remembers the last RunReport for the
// metrics export, and writes both files at the end:
//
//   obs::Capture cap(cli);
//   cfg.tracer = cap.tracer();            // or RunOptions{.trace = ...}
//   auto out = run(...); cap.note_report(out.report);
//   cap.write();
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "harness/cli.hpp"
#include "mp/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bh::obs {

class Capture {
 public:
  explicit Capture(const harness::Cli& cli)
      : trace_path_(cli.get("trace", std::string())),
        metrics_path_(cli.get("metrics", std::string())) {}

  /// Tracer to pass into RunOptions/RunConfig; null when --trace (and
  /// --metrics, which reuses nothing from it) were not requested.
  Tracer* tracer() { return trace_path_.empty() ? nullptr : &tracer_; }

  /// Remember the run whose metrics --metrics should export (the last
  /// noted report wins; benches call this after every run_spmd).
  void note_report(const mp::RunReport& report) {
    if (!metrics_path_.empty()) report_ = report;
  }

  bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }

  /// Write the requested files; call once after the last run.
  void write() {
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      if (!os) throw std::runtime_error("cannot open " + trace_path_);
      tracer_.write_chrome_trace(os);
      std::printf("trace written to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      if (!report_) {
        std::fprintf(stderr,
                     "--metrics=%s requested but no parallel run was "
                     "recorded; nothing written\n",
                     metrics_path_.c_str());
        return;
      }
      std::ofstream os(metrics_path_);
      if (!os) throw std::runtime_error("cannot open " + metrics_path_);
      write_metrics_json(os, *report_);
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  Tracer tracer_;
  std::optional<mp::RunReport> report_;
};

}  // namespace bh::obs
