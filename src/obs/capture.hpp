// capture.hpp -- command-line glue between harness::Cli and the obs layer.
//
// Every bench/example binary accepts the built-in --trace=PATH,
// --metrics=PATH and --profile[=PATH] flags (declared by harness::Cli
// itself). A Capture reads them, hands the runtime a Tracer only when a
// trace was requested (so untraced runs stay zero-overhead), starts a
// wall-clock profiling session when --profile was given, remembers the last
// RunReport for the metrics export, and writes everything at the end:
//
//   obs::Capture cap(cli);
//   cfg.tracer = cap.tracer();            // or RunOptions{.trace = ...}
//   auto out = run(...); cap.note_report(out.report);
//   cap.write();
//
// --profile writes PATH (bh.prof.v1 JSON, default prof.json) plus
// PATH.folded (flamegraph-compatible folded stacks); when --trace is also
// active the sampler's stacks are spliced into the Chrome trace as a
// separate "wall-clock profiler" process track.
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "harness/cli.hpp"
#include "mp/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/prof.hpp"
#include "obs/trace.hpp"

namespace bh::obs {

class Capture {
 public:
  explicit Capture(const harness::Cli& cli)
      : trace_path_(cli.get("trace", std::string())),
        metrics_path_(cli.get("metrics", std::string())),
        prof_path_(cli.get("profile", std::string())) {
    // The boolean `--profile` form parses as "1": fill in the default name.
    if (prof_path_ == "1") prof_path_ = "prof.json";
    if (!prof_path_.empty()) prof::enable();
  }

  /// Tracer to pass into RunOptions/RunConfig; null when --trace (and
  /// --metrics, which reuses nothing from it) were not requested.
  Tracer* tracer() { return trace_path_.empty() ? nullptr : &tracer_; }

  /// Remember the run whose metrics --metrics should export (the last
  /// noted report wins; benches call this after every run_spmd).
  void note_report(const mp::RunReport& report) {
    if (!metrics_path_.empty()) report_ = report;
  }

  bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty() ||
           !prof_path_.empty();
  }

  /// Write the requested files; call once after the last run.
  void write() {
    std::string prof_events;
    if (!prof_path_.empty()) {
      prof::disable();
      const auto rep = prof::snapshot();
      {
        std::ofstream os(prof_path_);
        if (!os) throw std::runtime_error("cannot open " + prof_path_);
        prof::write_prof_json(os, rep);
      }
      {
        std::ofstream os(prof_path_ + ".folded");
        if (!os)
          throw std::runtime_error("cannot open " + prof_path_ + ".folded");
        os << prof::folded_text(rep);
      }
      prof_events = prof::chrome_sample_events(rep);
      std::printf("profile written to %s (+%s.folded): %zu regions, "
                  "%llu samples, counters: %s\n",
                  prof_path_.c_str(), prof_path_.c_str(), rep.regions.size(),
                  static_cast<unsigned long long>(rep.samples),
                  rep.counters.c_str());
    }
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      if (!os) throw std::runtime_error("cannot open " + trace_path_);
      tracer_.write_chrome_trace(os, prof_events);
      std::printf("trace written to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      if (!report_) {
        std::fprintf(stderr,
                     "--metrics=%s requested but no parallel run was "
                     "recorded; nothing written\n",
                     metrics_path_.c_str());
        return;
      }
      std::ofstream os(metrics_path_);
      if (!os) throw std::runtime_error("cannot open " + metrics_path_);
      write_metrics_json(os, *report_);
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string prof_path_;
  Tracer tracer_;
  std::optional<mp::RunReport> report_;
};

}  // namespace bh::obs
