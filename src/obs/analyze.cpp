// analyze.cpp -- trace/bench analysis: idle attribution, critical path,
// run-vs-run diff.
#include "obs/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>

namespace bh::obs::analyze {

namespace {

/// One collective occurrence on one rank.
struct Coll {
  double begin = 0.0;
  double end = 0.0;
  std::string kind;
};

/// Step function "which phase is open at virtual time t" for one rank.
/// Nested phases report the innermost.
struct PhaseTimeline {
  /// (time, phase-name) state changes; "" = no phase open.
  std::vector<std::pair<double, std::string>> steps;

  std::string at(double t) const {
    std::string cur;
    for (const auto& [vt, name] : steps) {
      if (vt > t) break;
      cur = name;
    }
    return cur;
  }

  /// Split (a, b] into sub-segments labeled by the open phase.
  void split(int rank, double a, double b,
             std::vector<Segment>& out) const {
    if (b <= a) return;
    // Collect change points strictly inside (a, b).
    std::vector<double> cuts{a};
    for (const auto& [vt, name] : steps)
      if (vt > a && vt < b) cuts.push_back(vt);
    cuts.push_back(b);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] <= cuts[i]) continue;
      std::string label = at(cuts[i]);
      if (label.empty()) label = "(untracked)";
      out.push_back(Segment{rank, std::move(label), cuts[i], cuts[i + 1]});
    }
  }
};

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Piecewise-linear cumulative-flops function of one rank, built from its
/// kFlops events (which carry running totals). The implicit origin (0, 0)
/// smears the first batch over the time it took to accumulate, exactly as
/// the batching smeared its recording.
struct FlopTimeline {
  std::vector<std::pair<double, double>> pts{{0.0, 0.0}};  // (vtime, cum)

  void add(double vt, double cum) { pts.emplace_back(vt, cum); }

  double cum_at(double t) const {
    if (t <= pts.front().first) return pts.front().second;
    if (t >= pts.back().first) return pts.back().second;
    auto hi = std::upper_bound(
        pts.begin(), pts.end(), t,
        [](double x, const std::pair<double, double>& p) {
          return x < p.first;
        });
    const auto lo = hi - 1;
    const double dt = hi->first - lo->first;
    if (dt <= 0.0) return hi->second;
    return lo->second + (hi->second - lo->second) * (t - lo->first) / dt;
  }
};

}  // namespace

const char* seg_kind_name(SegKind k) {
  switch (k) {
    case SegKind::kCompute: return "compute";
    case SegKind::kStall: return "stall";
    case SegKind::kComm: return "comm";
  }
  return "?";
}

TraceAnalysis analyze_trace(const Tracer& tracer) {
  TraceAnalysis an;
  an.nprocs = tracer.nprocs();
  an.ranks.resize(static_cast<std::size_t>(an.nprocs));

  std::vector<std::vector<Coll>> colls(static_cast<std::size_t>(an.nprocs));
  std::vector<PhaseTimeline> timelines(static_cast<std::size_t>(an.nprocs));
  std::vector<FlopTimeline> flopts(static_cast<std::size_t>(an.nprocs));

  for (int r = 0; r < an.nprocs; ++r) {
    const auto& rt = tracer.rank(r);
    auto& act = an.ranks[static_cast<std::size_t>(r)];
    std::vector<std::string> open_phases;                 // innermost last
    std::map<std::string, std::vector<double>> begin_at;  // per-name stack
    for (const auto& e : rt.events()) {
      act.final_vt = std::max(act.final_vt, e.vtime);
      switch (e.kind) {
        case EventKind::kPhaseBegin:
          open_phases.push_back(rt.name(e.name));
          begin_at[rt.name(e.name)].push_back(e.vtime);
          timelines[static_cast<std::size_t>(r)].steps.emplace_back(
              e.vtime, open_phases.back());
          break;
        case EventKind::kPhaseEnd: {
          const std::string& name = rt.name(e.name);
          auto& stack = begin_at[name];
          if (!stack.empty()) {
            act.phase_vtime[name] += e.vtime - stack.back();
            stack.pop_back();
          }
          if (!open_phases.empty() && open_phases.back() == name)
            open_phases.pop_back();
          timelines[static_cast<std::size_t>(r)].steps.emplace_back(
              e.vtime, open_phases.empty() ? std::string() : open_phases.back());
          break;
        }
        case EventKind::kCollBegin:
          colls[static_cast<std::size_t>(r)].push_back(
              Coll{e.vtime, e.vtime, rt.name(e.name)});
          break;
        case EventKind::kCollEnd:
          if (!colls[static_cast<std::size_t>(r)].empty())
            colls[static_cast<std::size_t>(r)].back().end = e.vtime;
          break;
        case EventKind::kSend:
          ++act.sends;
          break;
        case EventKind::kRecv:
          ++act.recvs;
          break;
        case EventKind::kInstant: {
          const std::string& name = rt.name(e.name);
          if (ends_with(name, ".stall")) {
            ++act.stall_events;
            act.stall_items += e.value;
          } else if (ends_with(name, ".serve")) {
            ++act.serve_events;
            act.serve_items += e.value;
          }
          break;
        }
        case EventKind::kFlops:
          flopts[static_cast<std::size_t>(r)].add(
              e.vtime, static_cast<double>(e.value));
          break;
      }
    }
    an.span = std::max(an.span, act.final_vt);
  }
  if (an.nprocs == 0) return an;

  // Cross-rank collective alignment: the k-th collective on every rank is
  // the same rendezvous (SPMD programs enter collectives in one global
  // order). Multi-scenario traces with varying processor counts break this;
  // detect and skip cross-rank attribution.
  std::size_t n_coll = colls[0].size();
  for (const auto& c : colls) {
    if (c.size() != n_coll) an.aligned = false;
    n_coll = std::min(n_coll, c.size());
  }

  std::vector<double> gate_vt(n_coll, 0.0);
  std::vector<int> gate_rank(n_coll, 0);
  std::vector<double> coll_end(n_coll, 0.0);
  if (an.aligned) {
    for (std::size_t k = 0; k < n_coll; ++k) {
      gate_vt[k] = colls[0][k].begin;
      gate_rank[k] = 0;
      for (int r = 0; r < an.nprocs; ++r) {
        const auto& c = colls[static_cast<std::size_t>(r)][k];
        if (c.begin > gate_vt[k]) {
          gate_vt[k] = c.begin;
          gate_rank[k] = r;
        }
        coll_end[k] = std::max(coll_end[k], c.end);
      }
      for (int r = 0; r < an.nprocs; ++r) {
        auto& act = an.ranks[static_cast<std::size_t>(r)];
        const auto& c = colls[static_cast<std::size_t>(r)][k];
        act.coll_wait += std::max(0.0, gate_vt[k] - c.begin);
        act.coll_cost += std::max(0.0, coll_end[k] - gate_vt[k]);
      }
    }
  }

  // Critical path: start at the slowest rank's last event and walk
  // backwards; every collective hands the path to the rank whose late
  // arrival gated it.
  int cur_rank = 0;
  for (int r = 1; r < an.nprocs; ++r)
    if (an.ranks[static_cast<std::size_t>(r)].final_vt >
        an.ranks[static_cast<std::size_t>(cur_rank)].final_vt)
      cur_rank = r;
  double cur_t = an.span;
  std::vector<Segment> path;  // built back-to-front
  if (an.aligned) {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(n_coll) - 1;
    while (k >= 0 && coll_end[static_cast<std::size_t>(k)] > cur_t) --k;
    while (k >= 0) {
      const auto ku = static_cast<std::size_t>(k);
      timelines[static_cast<std::size_t>(cur_rank)].split(
          cur_rank, coll_end[ku], cur_t, path);
      path.push_back(Segment{gate_rank[ku],
                             "collective " + colls[0][ku].kind, gate_vt[ku],
                             coll_end[ku]});
      cur_rank = gate_rank[ku];
      cur_t = gate_vt[ku];
      --k;
    }
  }
  timelines[static_cast<std::size_t>(cur_rank)].split(cur_rank, 0.0, cur_t,
                                                      path);
  // split() appends forward-in-time runs between backward jumps; sort once.
  std::sort(path.begin(), path.end(),
            [](const Segment& x, const Segment& y) { return x.t0 < y.t0; });

  // Flop-density attribution: split every non-collective segment at the
  // owning rank's flop-batch timestamps, attribute interpolated flops to
  // each piece, then classify against the path's peak density.
  std::vector<Segment> dense;
  dense.reserve(path.size());
  for (auto& seg : path) {
    if (starts_with(seg.label, "collective ")) {
      seg.kind = SegKind::kComm;
      seg.flops = 0.0;
      dense.push_back(std::move(seg));
      continue;
    }
    const auto& ft = flopts[static_cast<std::size_t>(seg.rank)];
    std::vector<double> cuts{seg.t0};
    for (const auto& [vt, cum] : ft.pts)
      if (vt > seg.t0 && vt < seg.t1) cuts.push_back(vt);
    cuts.push_back(seg.t1);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] <= cuts[i]) continue;
      Segment piece{seg.rank, seg.label, cuts[i], cuts[i + 1], 0.0,
                    SegKind::kCompute};
      piece.flops = ft.cum_at(piece.t1) - ft.cum_at(piece.t0);
      dense.push_back(std::move(piece));
    }
  }
  for (const auto& s : dense) {
    if (s.kind == SegKind::kComm) continue;
    an.peak_density = std::max(an.peak_density, s.density());
  }
  for (auto& s : dense) {
    if (s.kind == SegKind::kComm) continue;
    // With no flops traced anywhere the split above is a no-op and every
    // segment keeps the kCompute default (see SegKind docs).
    if (an.peak_density > 0.0 &&
        s.density() < kComputeDensityShare * an.peak_density)
      s.kind = SegKind::kStall;
  }
  an.critical_path = std::move(dense);

  StallStretch open;
  int open_widest_rank = -1;
  double open_widest_len = -1.0;
  auto close_stretch = [&] {
    if (open_widest_rank < 0) return;
    open.rank = open_widest_rank;
    an.stall_stretches.push_back(open);
    open_widest_rank = -1;
    open_widest_len = -1.0;
  };
  for (const auto& s : an.critical_path) {
    an.critical_by_label[s.label] += s.len();
    an.critical_by_kind[seg_kind_name(s.kind)] += s.len();
    an.path_flops += s.flops;
    if (s.kind != SegKind::kStall) {
      close_stretch();
      continue;
    }
    if (open_widest_rank >= 0 && s.t0 - open.t1 < 1e-12) {
      open.t1 = s.t1;  // contiguous: extend
    } else {
      close_stretch();
      open.t0 = s.t0;
      open.t1 = s.t1;
    }
    if (s.len() > open_widest_len) {
      open_widest_len = s.len();
      open_widest_rank = s.rank;
    }
  }
  close_stretch();
  std::sort(an.stall_stretches.begin(), an.stall_stretches.end(),
            [](const StallStretch& a, const StallStretch& b) {
              return a.len() > b.len();
            });
  return an;
}

void trace_from_json(const Json& doc, Tracer& out) {
  const Json& events = doc.at("traceEvents");
  int nprocs = 0;
  for (const Json& e : events.array()) {
    if (e.has("tid"))
      nprocs = std::max(nprocs, static_cast<int>(e.at("tid").number()) + 1);
  }
  if (nprocs == 0) throw JsonError("trace: no rank (tid) events");
  out.begin_run(nprocs);
  std::vector<std::uint64_t> flop_total(static_cast<std::size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r) out.rank(r).set_flop_batch(1);

  for (const Json& e : events.array()) {
    const std::string ph = e.at("ph").str();
    if (ph == "M") continue;  // metadata
    const int r = static_cast<int>(e.at("tid").number());
    auto& rt = out.rank(r);
    const double vt = e.at("ts").number() / 1e6;
    const Json& args = e.get("args");
    const std::string cat = e.get("cat").string_or("");
    if (cat == "phase") {
      if (ph == "B")
        rt.phase_begin(e.at("name").str(), vt);
      else
        rt.phase_end(e.at("name").str(), vt);
    } else if (cat == "collective") {
      if (ph == "B")
        rt.coll_begin(e.at("name").str(),
                      static_cast<std::uint64_t>(
                          args.get("bytes").number_or(0.0)),
                      vt);
      else
        rt.coll_end(vt);
    } else if (cat == "p2p") {
      const int peer = static_cast<int>(args.get("peer").number_or(-1.0));
      const auto bytes =
          static_cast<std::uint64_t>(args.get("bytes").number_or(0.0));
      // Tags may have been exported as registered names; analysis does not
      // need them back, so non-numeric labels degrade to -1.
      int tag = -1;
      const std::string tl = args.get("tag").string_or("");
      if (!tl.empty() &&
          tl.find_first_not_of("0123456789-") == std::string::npos)
        tag = std::atoi(tl.c_str());
      if (e.at("name").str() == "send")
        rt.send(peer, tag, bytes, vt);
      else
        rt.recv(peer, tag, bytes, vt);
    } else if (cat == "annotation") {
      rt.instant(e.at("name").str(),
                 static_cast<std::uint64_t>(args.get("count").number_or(0.0)),
                 vt);
    } else if (ph == "C") {
      const auto total =
          static_cast<std::uint64_t>(args.get("flops").number_or(0.0));
      const auto ru = static_cast<std::size_t>(r);
      if (total > flop_total[ru]) {
        rt.flops(total - flop_total[ru], vt);
        flop_total[ru] = total;
      }
    }
  }
}

// ---- bh.bench.v1 diff -----------------------------------------------------

namespace {

void check_bench_schema(const Json& doc, const char* which) {
  if (doc.get("schema").string_or("") != "bh.bench.v1")
    throw JsonError(std::string("diff: ") + which +
                    " is not a bh.bench.v1 document");
}

const Json* find_scenario(const Json& doc, const std::string& name) {
  for (const Json& s : doc.at("scenarios").array())
    if (s.get("name").string_or("") == name) return &s;
  return nullptr;
}

}  // namespace

BenchDiff diff_bench(const Json& a, const Json& b) {
  check_bench_schema(a, "A");
  check_bench_schema(b, "B");
  BenchDiff d;
  std::set<std::string> seen_a;
  for (const Json& sa : a.at("scenarios").array()) {
    const std::string name = sa.get("name").string_or("");
    seen_a.insert(name);
    const Json* sb = find_scenario(b, name);
    if (!sb) {
      d.only_a.push_back(name);
      continue;
    }
    ScenarioDiff sd;
    sd.name = name;
    sd.iter_a = sa.get("iter_time").number_or(0.0);
    sd.iter_b = sb->get("iter_time").number_or(0.0);
    sd.phases.push_back(PhaseDelta{"iter_time", sd.iter_a, sd.iter_b});
    if (sa.has("phases")) {
      for (const auto& [phase, va] : sa.at("phases").object()) {
        PhaseDelta pd;
        pd.phase = phase;
        pd.a = va.number_or(0.0);
        pd.b = sb->get("phases").get(phase).number_or(0.0);
        sd.phases.push_back(std::move(pd));
      }
    }
    d.scenarios.push_back(std::move(sd));
  }
  for (const Json& sb : b.at("scenarios").array()) {
    const std::string name = sb.get("name").string_or("");
    if (!seen_a.count(name)) d.only_b.push_back(name);
  }
  return d;
}

// ---- isoefficiency model fitting -------------------------------------------

namespace {

double f_plogp(double p) { return p > 1.0 ? p * std::log2(p) : 0.0; }
double f_p(double p) { return p; }
double f_p2(double p) { return p * p; }

/// One-parameter least squares of y ~ coeff * f(p) through the origin.
OverheadForm fit_form(const char* name, double (*f)(double),
                      const std::vector<OverheadPoint>& pts) {
  OverheadForm out;
  out.name = name;
  double sff = 0.0, sfy = 0.0, sy = 0.0, syy = 0.0;
  for (const auto& pt : pts) {
    const double fp = f(static_cast<double>(pt.procs));
    sff += fp * fp;
    sfy += fp * pt.overhead;
    sy += pt.overhead;
    syy += pt.overhead * pt.overhead;
  }
  out.coeff = sff > 0.0 ? sfy / sff : 0.0;
  const double ybar = pts.empty() ? 0.0 : sy / static_cast<double>(pts.size());
  double sst = 0.0;
  for (const auto& pt : pts) {
    const double r = pt.overhead - out.coeff * f(static_cast<double>(pt.procs));
    out.sse += r * r;
    sst += (pt.overhead - ybar) * (pt.overhead - ybar);
  }
  if (sst > 0.0)
    out.r2 = 1.0 - out.sse / sst;
  else  // degenerate family: exact fit or nothing to explain
    out.r2 = out.sse <= 1e-9 * std::max(1.0, syy) ? 1.0 : 0.0;
  return out;
}

}  // namespace

FamilyFit fit_family(std::string family, std::vector<OverheadPoint> points,
                     double dev_pct) {
  FamilyFit fit;
  fit.family = std::move(family);
  fit.points = std::move(points);
  std::sort(fit.points.begin(), fit.points.end(),
            [](const OverheadPoint& a, const OverheadPoint& b) {
              return a.procs != b.procs ? a.procs < b.procs
                                        : a.scenario < b.scenario;
            });
  fit.forms.push_back(fit_form("p log p", f_plogp, fit.points));
  fit.forms.push_back(fit_form("p", f_p, fit.points));
  fit.forms.push_back(fit_form("p^2", f_p2, fit.points));

  double best_sse = fit.forms[0].sse;
  std::size_t best = 0;
  for (std::size_t i = 1; i < fit.forms.size(); ++i)
    if (fit.forms[i].sse < best_sse) {
      best_sse = fit.forms[i].sse;
      best = i;
    }
  // Analytic prior: the paper predicts p log p; prefer it whenever it is
  // within 5% of the best SSE (this is also the tie-break for one-point
  // families, where every one-parameter form is exact).
  if (fit.forms[0].sse <= best_sse * 1.05 + 1e-12) best = 0;
  fit.chosen = fit.forms[best].name;
  fit.chosen_coeff = fit.forms[best].coeff;
  fit.chosen_r2 = fit.forms[best].r2;

  double (*fbest)(double) = best == 0 ? f_plogp : (best == 1 ? f_p : f_p2);
  for (const auto& pt : fit.points) {
    const double pred =
        fit.chosen_coeff * fbest(static_cast<double>(pt.procs));
    const double denom = std::max(std::abs(pred), 1e-12);
    const double pct = 100.0 * std::abs(pt.overhead - pred) / denom;
    if (pct > dev_pct) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: overhead %.6g vs predicted %.6g (%+.1f%%)",
                    pt.scenario.c_str(), pt.overhead, pred,
                    100.0 * (pt.overhead - pred) / denom);
      fit.deviations.push_back(buf);
    }
  }
  return fit;
}

std::vector<FamilyFit> fit_overheads(const Json& bench, double dev_pct) {
  if (bench.get("schema").string_or("") != "bh.bench.v1")
    throw JsonError("fit: not a bh.bench.v1 document");
  std::map<std::string, std::vector<OverheadPoint>> fams;
  for (const Json& s : bench.at("scenarios").array()) {
    const std::string scheme = s.get("scheme").string_or("?");
    if (scheme == "wall") continue;  // wall-clock micro rows: no model
    const std::string family =
        s.get("instance").string_or("?") + " " + scheme;
    OverheadPoint pt;
    pt.scenario = s.get("name").string_or("(unnamed)");
    pt.procs = static_cast<int>(s.get("procs").number_or(0.0));
    pt.n = static_cast<std::uint64_t>(s.get("n").number_or(0.0));
    pt.iter_time = s.get("iter_time").number_or(0.0);
    pt.efficiency = s.get("efficiency").number_or(0.0);
    pt.overhead = pt.procs * pt.iter_time * (1.0 - pt.efficiency);
    fams[family].push_back(std::move(pt));
  }

  std::vector<FamilyFit> out;
  out.reserve(fams.size());
  for (auto& [family, pts] : fams)
    out.push_back(fit_family(family, std::move(pts), dev_pct));
  return out;
}

std::pair<double, std::string> worst_regression(const BenchDiff& d,
                                                double abs_floor) {
  double worst = 0.0;
  std::string where;
  for (const auto& sd : d.scenarios) {
    for (const auto& pd : sd.phases) {
      if (pd.a < abs_floor) continue;
      if (pd.pct() > worst) {
        worst = pd.pct();
        where = sd.name + ": " + pd.phase;
      }
    }
  }
  return {worst, where};
}

// ---- bh.prof.v1 diff -------------------------------------------------------

namespace {

void check_prof_schema(const Json& doc, const char* which) {
  if (doc.get("schema").string_or("") != "bh.prof.v1")
    throw JsonError(std::string("diff: ") + which +
                    " is not a bh.prof.v1 document");
}

const Json* find_region(const Json& doc, const std::string& name) {
  for (const Json& r : doc.at("regions").array())
    if (r.get("name").string_or("") == name) return &r;
  return nullptr;
}

}  // namespace

ProfDiff diff_prof(const Json& a, const Json& b) {
  check_prof_schema(a, "A");
  check_prof_schema(b, "B");
  ProfDiff d;
  d.wall_a = a.get("wall_s").number_or(0.0);
  d.wall_b = b.get("wall_s").number_or(0.0);
  std::set<std::string> seen_a;
  for (const Json& ra : a.at("regions").array()) {
    const std::string name = ra.get("name").string_or("");
    seen_a.insert(name);
    const Json* rb = find_region(b, name);
    if (!rb) {
      d.only_a.push_back(name);
      continue;
    }
    ProfRegionDelta rd;
    rd.name = name;
    rd.wall_a = ra.get("wall_s").number_or(0.0);
    rd.wall_b = rb->get("wall_s").number_or(0.0);
    rd.flops_a = ra.get("flops").number_or(0.0);
    rd.flops_b = rb->get("flops").number_or(0.0);
    d.regions.push_back(std::move(rd));
  }
  for (const Json& rb : b.at("regions").array()) {
    const std::string name = rb.get("name").string_or("");
    if (!seen_a.count(name)) d.only_b.push_back(name);
  }
  return d;
}

std::pair<double, std::string> worst_prof_regression(const ProfDiff& d,
                                                     double abs_floor) {
  double worst = 0.0;
  std::string where;
  for (const auto& rd : d.regions) {
    if (rd.wall_a < abs_floor) continue;
    if (rd.pct() > worst) {
      worst = rd.pct();
      where = rd.name;
    }
  }
  return {worst, where};
}

}  // namespace bh::obs::analyze
