// analyze.hpp -- derived analysis over the obs exports (the consumer side).
//
// PR 2 taught every binary to *emit* traces and metrics; this module reads
// them back and computes what the paper's evaluation sections derive by
// hand: where processor idle time goes (collective wait vs point-to-point
// stalls, Sections 5.2-5.4), which rank gates each step (a virtual-time
// critical path across ranks), and how two runs of the same scenario differ
// (the regression gate behind scripts/bench_diff.py and CI's perf-smoke).
//
// Inputs:
//  * a live obs::Tracer (unit tests, in-process analysis), or
//  * a Chrome-trace JSON written by Tracer::write_chrome_trace, reloaded via
//    trace_from_json(), or
//  * two "bh.bench.v1" documents (bench/emit.hpp) for diff_bench().
//
// The cross-rank computations (collective wait attribution, critical path)
// assume an *aligned* trace: every rank participated in every collective,
// i.e. a single-scenario trace. Multi-scenario traces that reuse one Tracer
// across different processor counts (e.g. scaling_study) set
// `TraceAnalysis::aligned = false` and only per-rank numbers are reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/trace.hpp"

namespace bh::obs::analyze {

/// Everything one rank did, summarized from its event buffer.
struct RankActivity {
  double final_vt = 0.0;  ///< virtual time of the rank's last event
  /// Virtual seconds spent in collectives before the slowest rank arrived
  /// (pure idle; requires an aligned trace, else 0).
  double coll_wait = 0.0;
  /// Virtual seconds of modeled collective cost after the last arrival.
  double coll_cost = 0.0;
  std::map<std::string, double> phase_vtime;  ///< per-phase virtual seconds
  std::uint64_t stall_events = 0;  ///< "*.stall" instants (flow control)
  std::uint64_t stall_items = 0;   ///< items delayed across those stalls
  std::uint64_t serve_events = 0;  ///< "*.serve" instants (RPC service)
  std::uint64_t serve_items = 0;   ///< items served
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
};

/// Flop-density class of one critical-path segment. Collectives are
/// comm-bound by construction; everything else is classified by comparing
/// the segment's flop density (flops per virtual second, from the traced
/// flop batches) against the path's peak density: at least
/// kComputeDensityShare of the peak is compute-bound, below it the rank was
/// on the path but mostly idle -- stall-bound. Traces with no flop events
/// cannot distinguish the two and report everything non-collective as
/// compute-bound.
enum class SegKind : std::uint8_t { kCompute, kStall, kComm };

/// Density threshold (fraction of the path's peak flop density) separating
/// compute-bound from stall-bound segments.
inline constexpr double kComputeDensityShare = 0.1;

const char* seg_kind_name(SegKind k);

/// One segment of the critical path: on `rank`, from t0 to t1 virtual
/// seconds, doing `label` (a phase name, "collective <kind>", or
/// "(untracked)" for time outside any phase). Non-collective segments are
/// additionally split at the rank's flop-batch timestamps so that dense and
/// idle stretches inside one phase separate.
struct Segment {
  int rank = -1;
  std::string label;
  double t0 = 0.0;
  double t1 = 0.0;
  /// Flops attributed to [t0, t1] on `rank` (linear interpolation between
  /// the rank's cumulative flop-batch events; 0 for collectives).
  double flops = 0.0;
  SegKind kind = SegKind::kCompute;
  double len() const { return t1 - t0; }
  double density() const { return len() > 0.0 ? flops / len() : 0.0; }
};

/// A maximal run of time-contiguous stall-bound critical-path segments (the
/// "widest stall stretches" of the attribution report). `rank` is the rank
/// of the widest constituent segment.
struct StallStretch {
  int rank = -1;
  double t0 = 0.0;
  double t1 = 0.0;
  double len() const { return t1 - t0; }
};

/// Result of analyze_trace().
struct TraceAnalysis {
  int nprocs = 0;
  double span = 0.0;  ///< max event virtual time = modeled parallel time
  /// True when every rank recorded the same number of collectives (the
  /// precondition for cross-rank attribution; see file header).
  bool aligned = true;
  std::vector<RankActivity> ranks;
  /// Back-to-front walk from the slowest rank's last event, jumping to the
  /// gating rank at every collective. Segments are ascending in time and
  /// their lengths sum to `span` (aligned traces only).
  std::vector<Segment> critical_path;
  /// Σ segment length per label, for the attribution summary.
  std::map<std::string, double> critical_by_label;
  /// Σ segment length per flop-density class ("compute"/"stall"/"comm").
  std::map<std::string, double> critical_by_kind;
  /// Total flops executed on the critical path.
  double path_flops = 0.0;
  /// Peak flop density over the path's non-collective segments.
  double peak_density = 0.0;
  /// Contiguous stall-bound runs on the path, widest first.
  std::vector<StallStretch> stall_stretches;
};

TraceAnalysis analyze_trace(const Tracer& tracer);

/// Rebuild per-rank event buffers from a Chrome-trace JSON document
/// previously written by Tracer::write_chrome_trace. `out` must be freshly
/// constructed. Throws JsonError on documents that are not our exports.
void trace_from_json(const Json& doc, Tracer& out);

// ---- bh.bench.v1 comparison ----------------------------------------------

/// One phase's virtual time in runs A and B.
struct PhaseDelta {
  std::string phase;
  double a = 0.0;
  double b = 0.0;
  /// Percent change B vs A (positive = B slower); 0 when A is 0.
  double pct() const { return a > 0.0 ? 100.0 * (b - a) / a : 0.0; }
};

struct ScenarioDiff {
  std::string name;
  double iter_a = 0.0;
  double iter_b = 0.0;
  std::vector<PhaseDelta> phases;  ///< includes a synthetic "iter_time" row
};

struct BenchDiff {
  std::vector<ScenarioDiff> scenarios;  ///< matched by scenario name
  std::vector<std::string> only_a;      ///< scenarios missing from B
  std::vector<std::string> only_b;      ///< scenarios missing from A
};

/// Match two "bh.bench.v1" documents scenario-by-scenario.
/// Throws JsonError when either document has the wrong schema.
BenchDiff diff_bench(const Json& a, const Json& b);

/// Worst phase-time regression of B vs A in percent, over phases whose A
/// time is at least `abs_floor` virtual seconds (tiny phases jitter).
/// Returns {percent, "scenario: phase"}; {0, ""} when nothing regressed.
std::pair<double, std::string> worst_regression(const BenchDiff& d,
                                                double abs_floor);

// ---- bh.prof.v1 comparison -------------------------------------------------

/// One wall-clock region in profiles A and B, matched by name.
struct ProfRegionDelta {
  std::string name;
  double wall_a = 0.0;   ///< exclusive wall seconds in A
  double wall_b = 0.0;
  double flops_a = 0.0;  ///< annotated flops (0 when unannotated)
  double flops_b = 0.0;
  /// Percent wall change B vs A (positive = B slower); 0 when A is 0.
  double pct() const {
    return wall_a > 0.0 ? 100.0 * (wall_b - wall_a) / wall_a : 0.0;
  }
  /// Achieved flop/s in each run (0 without annotation or wall).
  double rate_a() const { return wall_a > 0.0 ? flops_a / wall_a : 0.0; }
  double rate_b() const { return wall_b > 0.0 ? flops_b / wall_b : 0.0; }
};

/// diff of two bh.prof.v1 documents (wall-clock profiles). Unlike
/// diff_bench's virtual times these are host-measured seconds, so the CI
/// gate around them needs a generous --gate and a --floor well above
/// scheduler jitter.
struct ProfDiff {
  double wall_a = 0.0;  ///< whole-process wall of each run
  double wall_b = 0.0;
  std::vector<ProfRegionDelta> regions;  ///< matched by name, A's order
  std::vector<std::string> only_a;       ///< regions missing from B
  std::vector<std::string> only_b;       ///< regions missing from A
};

/// Match two "bh.prof.v1" documents region-by-region.
/// Throws JsonError when either document has the wrong schema.
ProfDiff diff_prof(const Json& a, const Json& b);

/// Worst region wall regression of B vs A in percent, over regions whose A
/// wall is at least `abs_floor` seconds. Returns {percent, region name};
/// {0, ""} when nothing regressed.
std::pair<double, std::string> worst_prof_regression(const ProfDiff& d,
                                                     double abs_floor);

// ---- isoefficiency model fitting (paper Section 5) -------------------------
//
// The paper's analytic claim is that total parallel overhead grows as
// T_o ~ p log p for the costzones/hashed formulations, which makes the
// isoefficiency function O(p log p): the problem size W must grow as p log p
// to hold efficiency constant. fit_overheads() checks that claim against a
// bh.bench.v1 registry: scenarios are grouped into families (same instance
// and scheme, processor count varying), the measured overhead
// T_o = p * T_p - W = p * iter_time * (1 - efficiency) is extracted per
// point, and each family is least-squares fitted (through the origin)
// against the paper's p log p form plus the p and p^2 alternatives.

/// One scenario's contribution to a family fit.
struct OverheadPoint {
  std::string scenario;    ///< registry scenario name
  int procs = 0;
  std::uint64_t n = 0;     ///< particle count
  double iter_time = 0.0;  ///< modeled parallel time T_p
  double efficiency = 0.0;
  double overhead = 0.0;   ///< T_o = p * iter_time * (1 - efficiency)
};

/// Least-squares fit of T_o ~ coeff * f(p) for one candidate form.
struct OverheadForm {
  std::string name;    ///< "p log p", "p", or "p^2"
  double coeff = 0.0;  ///< least-squares coefficient through the origin
  double sse = 0.0;    ///< sum of squared residuals
  /// 1 - SSE/SST. Degenerate families (a single point, or identical
  /// overheads) have SST = 0; they report 1 when the fit is exact, else 0.
  double r2 = 0.0;
};

/// Fit result for one scenario family.
struct FamilyFit {
  std::string family;  ///< "<instance> <scheme>"
  std::vector<OverheadPoint> points;  ///< ascending in procs
  std::vector<OverheadForm> forms;    ///< p log p, p, p^2 (that order)
  /// Winning form: the smallest SSE, except that the paper's p log p form
  /// is preferred whenever its SSE is within 5% of the best (analytic
  /// prior; also the tie-break for degenerate one-point families, where
  /// every one-parameter form fits exactly).
  std::string chosen;
  double chosen_coeff = 0.0;
  double chosen_r2 = 0.0;
  /// Predicted-vs-measured deviation flags: points whose measured overhead
  /// differs from the chosen fit by more than the tolerance.
  std::vector<std::string> deviations;
};

/// Fit one family from raw points (sorted internally). The building block
/// behind fit_overheads(); bh_trend calls it per run column.
FamilyFit fit_family(std::string family, std::vector<OverheadPoint> points,
                     double dev_pct = 25.0);

/// Group a bh.bench.v1 document into families and fit each one. Scenarios
/// tagged with the "wall" scheme (wall-clock microbenchmarks) are skipped:
/// they have no modeled overhead. `dev_pct` is the predicted-vs-measured
/// deviation tolerance in percent. Throws JsonError on the wrong schema.
std::vector<FamilyFit> fit_overheads(const Json& bench, double dev_pct = 25.0);

}  // namespace bh::obs::analyze
