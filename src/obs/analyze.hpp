// analyze.hpp -- derived analysis over the obs exports (the consumer side).
//
// PR 2 taught every binary to *emit* traces and metrics; this module reads
// them back and computes what the paper's evaluation sections derive by
// hand: where processor idle time goes (collective wait vs point-to-point
// stalls, Sections 5.2-5.4), which rank gates each step (a virtual-time
// critical path across ranks), and how two runs of the same scenario differ
// (the regression gate behind scripts/bench_diff.py and CI's perf-smoke).
//
// Inputs:
//  * a live obs::Tracer (unit tests, in-process analysis), or
//  * a Chrome-trace JSON written by Tracer::write_chrome_trace, reloaded via
//    trace_from_json(), or
//  * two "bh.bench.v1" documents (bench/emit.hpp) for diff_bench().
//
// The cross-rank computations (collective wait attribution, critical path)
// assume an *aligned* trace: every rank participated in every collective,
// i.e. a single-scenario trace. Multi-scenario traces that reuse one Tracer
// across different processor counts (e.g. scaling_study) set
// `TraceAnalysis::aligned = false` and only per-rank numbers are reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/trace.hpp"

namespace bh::obs::analyze {

/// Everything one rank did, summarized from its event buffer.
struct RankActivity {
  double final_vt = 0.0;  ///< virtual time of the rank's last event
  /// Virtual seconds spent in collectives before the slowest rank arrived
  /// (pure idle; requires an aligned trace, else 0).
  double coll_wait = 0.0;
  /// Virtual seconds of modeled collective cost after the last arrival.
  double coll_cost = 0.0;
  std::map<std::string, double> phase_vtime;  ///< per-phase virtual seconds
  std::uint64_t stall_events = 0;  ///< "*.stall" instants (flow control)
  std::uint64_t stall_items = 0;   ///< items delayed across those stalls
  std::uint64_t serve_events = 0;  ///< "*.serve" instants (RPC service)
  std::uint64_t serve_items = 0;   ///< items served
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
};

/// One segment of the critical path: on `rank`, from t0 to t1 virtual
/// seconds, doing `label` (a phase name, "collective <kind>", or
/// "(untracked)" for time outside any phase).
struct Segment {
  int rank = -1;
  std::string label;
  double t0 = 0.0;
  double t1 = 0.0;
  double len() const { return t1 - t0; }
};

/// Result of analyze_trace().
struct TraceAnalysis {
  int nprocs = 0;
  double span = 0.0;  ///< max event virtual time = modeled parallel time
  /// True when every rank recorded the same number of collectives (the
  /// precondition for cross-rank attribution; see file header).
  bool aligned = true;
  std::vector<RankActivity> ranks;
  /// Back-to-front walk from the slowest rank's last event, jumping to the
  /// gating rank at every collective. Segments are ascending in time and
  /// their lengths sum to `span` (aligned traces only).
  std::vector<Segment> critical_path;
  /// Σ segment length per label, for the attribution summary.
  std::map<std::string, double> critical_by_label;
};

TraceAnalysis analyze_trace(const Tracer& tracer);

/// Rebuild per-rank event buffers from a Chrome-trace JSON document
/// previously written by Tracer::write_chrome_trace. `out` must be freshly
/// constructed. Throws JsonError on documents that are not our exports.
void trace_from_json(const Json& doc, Tracer& out);

// ---- bh.bench.v1 comparison ----------------------------------------------

/// One phase's virtual time in runs A and B.
struct PhaseDelta {
  std::string phase;
  double a = 0.0;
  double b = 0.0;
  /// Percent change B vs A (positive = B slower); 0 when A is 0.
  double pct() const { return a > 0.0 ? 100.0 * (b - a) / a : 0.0; }
};

struct ScenarioDiff {
  std::string name;
  double iter_a = 0.0;
  double iter_b = 0.0;
  std::vector<PhaseDelta> phases;  ///< includes a synthetic "iter_time" row
};

struct BenchDiff {
  std::vector<ScenarioDiff> scenarios;  ///< matched by scenario name
  std::vector<std::string> only_a;      ///< scenarios missing from B
  std::vector<std::string> only_b;      ///< scenarios missing from A
};

/// Match two "bh.bench.v1" documents scenario-by-scenario.
/// Throws JsonError when either document has the wrong schema.
BenchDiff diff_bench(const Json& a, const Json& b);

/// Worst phase-time regression of B vs A in percent, over phases whose A
/// time is at least `abs_floor` virtual seconds (tiny phases jitter).
/// Returns {percent, "scenario: phase"}; {0, ""} when nothing regressed.
std::pair<double, std::string> worst_regression(const BenchDiff& d,
                                                double abs_floor);

}  // namespace bh::obs::analyze
