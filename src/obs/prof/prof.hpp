// prof.hpp -- scoped wall-clock profiling regions, hardware counters, and
// roofline attribution (DESIGN.md section 12).
//
// Everything else in the obs layer accounts *virtual* time; this subsystem
// is the one place that measures the real machine. Hot paths are annotated
// with
//
//   BH_PROF_REGION("tree.traverse");          // scoped, nests per thread
//   prof::count_flops(work.flops());          // attributed to the innermost
//   prof::count_bytes(traffic_bytes(work));   // open region on this thread
//
// and a profiled run (harness --profile[=out.json], or prof::enable() by
// hand) aggregates, per region: call counts, exclusive wall time, hardware
// counters (cycles / instructions / LLC misses / branch misses via
// perf_event_open, or a steady-clock + allocator-counter software fallback
// when perf is denied -- see counters.hpp), and the annotated flop/byte
// totals that give each region its arithmetic intensity for the roofline.
//
// Attribution is *exclusive*: at every region boundary the thread's counter
// deltas are banked to the region that was innermost during the interval,
// so a serve loop nested inside a traversal shows up as its own row, not
// double-counted in the parent. Region names must be string literals (the
// sampler's signal handler stores the raw pointers; see sampler.hpp).
//
// When profiling is disabled (the default) a region costs one relaxed
// atomic load and count_flops/count_bytes cost the same -- cheap enough to
// leave compiled into the hot paths unconditionally.
//
// The exported bh.prof.v1 document keeps deterministic keys (region name,
// flops, bytes, arithmetic intensity) and host-measured keys (wall, cycles,
// samples, ...) on separate lines so the determinism CI job can strip the
// host lines and byte-compare the rest, exactly like bh.bench.v1's wall_*
// convention.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace bh::obs::prof {

namespace internal {
extern std::atomic<bool> g_enabled;
void* enter(const char* name);
void leave(void* state);
void add_flops(std::uint64_t n);
void add_bytes(std::uint64_t n);
/// Async-signal-safe: copy the calling thread's live region stack
/// (outermost first) into frames, clamped to max; returns the clamped
/// depth and writes the thread's stable tag. Used by the SIGPROF handler.
int capture_stack(const char** frames, int max, std::uint32_t* thread_tag);
}  // namespace internal

/// True while a profiling session is active (prof::enable .. disable).
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

struct Options {
  bool sampler = true;            ///< arm the SIGPROF sampling profiler
  double sample_interval_s = 1e-3;  ///< process-CPU time between samples
  std::size_t max_samples = 1u << 15;
};

/// Start a session. Idempotent; resolves the counter backend (hardware vs
/// software) once per process. Thread-safe, but the intended pattern is one
/// enable/disable pair per process driven by obs::Capture.
void enable(const Options& opts = {});

/// Stop the sampler and freeze the session clock. Regions still open on
/// other threads keep banking into their accumulators harmlessly.
void disable();

/// Clear all accumulated data (requires a disabled session). Threads seen
/// before keep their identity; tests call this between cases.
void reset();

void count_flops(std::uint64_t n);
void count_bytes(std::uint64_t n);

/// Scoped region. `name` MUST be a string literal (or otherwise immortal):
/// the profiler stores the pointer, and the signal handler reads it.
class Region {
 public:
  explicit Region(const char* name)
      : state_(enabled() ? internal::enter(name) : nullptr) {}
  ~Region() {
    if (state_) internal::leave(state_);
  }
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

 private:
  void* state_;
};

#define BH_PROF_CONCAT2(a, b) a##b
#define BH_PROF_CONCAT(a, b) BH_PROF_CONCAT2(a, b)
#define BH_PROF_REGION(name) \
  ::bh::obs::prof::Region BH_PROF_CONCAT(bh_prof_region_, __LINE__)(name)

/// Aggregated view of one region across all threads.
struct RegionReport {
  std::string name;
  std::uint64_t calls = 0;
  std::uint32_t threads = 0;
  double wall_s = 0.0;  ///< exclusive (self) wall time
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t allocs = 0;
  std::uint64_t flops = 0;  ///< from count_flops annotations (deterministic)
  std::uint64_t bytes = 0;  ///< from count_bytes annotations (deterministic)
};

struct SampleReport {
  double wall_s = 0.0;  ///< seconds since enable()
  std::uint32_t thread = 0;
  std::string stack;  ///< "outer;inner" folded form
};

/// In-process peaks for the roofline's ridge, calibrated once per process
/// by the same micro-kernel style loops micro_kernels times (an unrolled
/// multiply-add chain and a large-buffer memcpy sweep).
struct MachinePeaks {
  double flops_per_s = 0.0;
  double bytes_per_s = 0.0;
};
const MachinePeaks& machine_peaks();

struct Report {
  std::string counters;  ///< "hardware" | "software"
  double wall_s = 0.0;   ///< enable..disable (or ..now) span
  MachinePeaks peaks;
  std::vector<RegionReport> regions;  ///< sorted by name (deterministic)
  std::uint64_t samples = 0;
  std::uint64_t samples_dropped = 0;
  std::vector<std::pair<std::string, std::uint64_t>> folded;  ///< sorted
  std::vector<SampleReport> raw_samples;
};

/// Aggregate the session. Callable while enabled (live view) but normally
/// used after disable().
Report snapshot();

/// bh.prof.v1 writer (see DESIGN.md section 12 for the schema).
void write_prof_json(std::ostream& os, const Report& r);

/// Folded-stack export: one "frame;frame count" line per distinct stack,
/// ready for flamegraph.pl / speedscope / inferno.
std::string folded_text(const Report& r);

/// Chrome-trace event fragment (comma-separated objects, no brackets) that
/// Tracer::write_chrome_trace splices into its traceEvents array: the
/// sampler's stacks as instant events on a separate "wall-clock profiler"
/// pid whose time axis is wall microseconds since enable(). Empty when the
/// report has no samples.
std::string chrome_sample_events(const Report& r);

namespace testing {
/// Record a sample of the calling thread's region stack exactly as if
/// SIGPROF had fired here; lets tests exercise the ring and the folded
/// export without timing dependence.
void record_sample();
}  // namespace testing

}  // namespace bh::obs::prof
