// counters.hpp -- per-thread hardware performance counters for the wall-clock
// profiler, with an automatic software fallback.
//
// Hardware mode opens one perf_event fd *group* per thread (cycles leader +
// instructions + LLC misses + branch misses) so a region boundary costs a
// single read() syscall for all four values. The backend is resolved once
// per process by probing perf_event_open on the calling thread; EACCES /
// EPERM / ENOSYS (sealed CI containers, perf_event_paranoid >= 3, non-Linux
// hosts) all degrade to the software backend, which measures only monotonic
// wall time and the allocator counter from obs/memstat -- the flop/byte
// columns of bh.prof.v1 come from the explicit prof::count_flops /
// count_bytes annotations either way.
//
// BH_PROF_COUNTERS=software forces the fallback regardless of what the
// kernel would allow; tests use it to pin the CI-container code path.
#pragma once

#include <cstdint>

namespace bh::obs::prof {

/// One boundary snapshot. wall_ns and allocs are always filled; the four
/// hardware fields stay zero in software mode.
struct CounterSample {
  std::uint64_t wall_ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
};

enum class CounterBackend { kHardware, kSoftware };

/// Decide the process-wide backend: the BH_PROF_COUNTERS=software override
/// first, then a perf_event_open probe (opened and immediately closed).
CounterBackend resolve_backend();

/// "hardware" / "software" -- the value of bh.prof.v1's `counters` key.
const char* backend_name(CounterBackend b);

/// CLOCK_MONOTONIC in nanoseconds (async-signal-safe).
std::uint64_t monotonic_ns();

/// One thread's counter group. Must be constructed, read, and destroyed on
/// the owning thread (perf fds count the calling thread only).
class ThreadCounters {
 public:
  explicit ThreadCounters(CounterBackend backend);
  ~ThreadCounters();
  ThreadCounters(const ThreadCounters&) = delete;
  ThreadCounters& operator=(const ThreadCounters&) = delete;

  /// True when the perf group opened; a per-thread open failure after a
  /// successful probe degrades just this thread to software readings.
  bool hardware() const { return fd_ >= 0; }

  void read(CounterSample& out) const;

 private:
  int fd_ = -1;  // perf group leader; -1 in software mode
};

}  // namespace bh::obs::prof
