// sampler.hpp -- POSIX-timer sampling profiler over the prof region stacks.
//
// A CLOCK_PROCESS_CPUTIME_ID timer delivers SIGPROF at a fixed interval of
// *consumed CPU time*; the kernel hands the signal to some currently-running
// thread, which is exactly the sampling distribution a wall profiler wants.
// The handler copies that thread's live region stack (string-literal
// pointers maintained by prof::Region -- no unwinding, no malloc, no locks)
// into a slot of a lock-free ring. See DESIGN.md section 12 for the
// signal-safety rules this relies on.
//
// The ring keeps the first `capacity` samples and counts the overflow
// (`dropped`); at the default 1 kHz a 32768-slot ring covers half a minute
// of CPU burn, far beyond any bench in this repo.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace bh::obs::prof {

inline constexpr int kMaxSampleFrames = 16;

/// One captured stack: region names outermost-first. depth == 0 means the
/// sampled thread had no open region ("(no region)" in the folded export).
struct StackSample {
  std::uint64_t wall_ns = 0;
  std::uint32_t thread_tag = 0;
  std::uint32_t depth = 0;
  const char* frames[kMaxSampleFrames] = {};
};

/// Single-writer-per-slot MPSC ring. claim()/commit() are async-signal-safe
/// (one fetch_add, plain stores, one release store); the read side is only
/// valid after the timer is stopped.
class SampleRing {
 public:
  void init(std::size_t capacity);
  void reset();

  StackSample* claim();
  void commit(StackSample* s);

  std::size_t size() const;
  /// Committed sample i, or nullptr for a slot whose handler was still
  /// mid-write when the timer stopped.
  const StackSample* at(std::size_t i) const;
  std::uint64_t dropped() const { return dropped_.load(); }

 private:
  struct Slot {
    StackSample sample;
    std::atomic<std::uint32_t> ready{0};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t cap_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owns the SIGPROF disposition and the process-CPU interval timer.
class Sampler {
 public:
  /// Install the handler and arm the timer; false when the platform has no
  /// POSIX timers (non-Linux) or timer_create is refused.
  bool start(double interval_s, SampleRing* ring);
  void stop();

 private:
  bool running_ = false;
#ifdef __linux__
  void* timer_ = nullptr;  // timer_t smuggled through void* to keep the
                           // header free of <csignal>/<ctime>
#endif
};

}  // namespace bh::obs::prof
