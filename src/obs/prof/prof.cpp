// prof.cpp -- region bookkeeping, exclusive attribution, peak calibration,
// and the bh.prof.v1 / folded-stack / Chrome-fragment writers.
#include "obs/prof/prof.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "obs/prof/counters.hpp"
#include "obs/prof/sampler.hpp"

#ifndef BH_GIT_SHA
#define BH_GIT_SHA "unknown"
#endif

namespace bh::obs::prof {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

constexpr int kMaxDepth = 32;

/// Per-(thread, region) accumulator. The owner thread adds with relaxed
/// atomics; snapshot() reads them from another thread, so every field that
/// crosses threads is atomic.
struct Accum {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> llc_misses{0};
  std::atomic<std::uint64_t> branch_misses{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> bytes{0};

  bool touched() const {
    return calls.load() || wall_ns.load() || flops.load() || bytes.load();
  }
  void clear() {
    calls = 0;
    wall_ns = 0;
    cycles = 0;
    instructions = 0;
    llc_misses = 0;
    branch_misses = 0;
    allocs = 0;
    flops = 0;
    bytes = 0;
  }
};

struct Level {
  const char* name;
  Accum* accum;
};

/// One thread's profiling state. Created lazily on the thread's first
/// region/count while enabled; registered globally and *never freed* (the
/// thread-local pointer must stay valid for the thread's whole life), but
/// the perf fds are closed at thread exit so thread churn cannot exhaust
/// file descriptors.
struct ThreadState {
  std::uint32_t tag = 0;
  Level levels[kMaxDepth] = {};
  std::atomic<int> depth{0};  // read by the SIGPROF handler on this thread
  CounterSample last{};       // last boundary snapshot (owner only)
  Accum untracked;            // counts landed with no open region
  std::map<const char*, std::unique_ptr<Accum>> accums;  // guarded by mu
  std::mutex mu;  // protects accums' structure against snapshot()
  std::unique_ptr<ThreadCounters> counters;

  Accum* accum_for(const char* name) {
    std::lock_guard<std::mutex> lk(mu);
    auto& slot = accums[name];
    if (!slot) slot.reset(new Accum);
    return slot.get();
  }

  Accum* innermost() {
    const int d = depth.load(std::memory_order_relaxed);
    if (d <= 0) return &untracked;
    const int top = d <= kMaxDepth ? d - 1 : kMaxDepth - 1;
    return levels[top].accum;
  }
};

struct Global {
  std::mutex mu;
  std::vector<ThreadState*> states;  // owned, immortal (see ThreadState)
  std::uint32_t next_tag = 0;
  CounterBackend backend = CounterBackend::kSoftware;
  Options opts;
  std::uint64_t enable_ns = 0;
  std::uint64_t disable_ns = 0;
  SampleRing ring;
  Sampler sampler;
  bool sampler_running = false;
};

Global& g() {
  static Global* instance = new Global;  // immortal: threads may outlive main
  return *instance;
}

/// The signal-visible thread slot. It MUST be a trivially-constructed,
/// trivially-destructed thread_local: the SIGPROF handler reads it (via
/// capture_stack), and a C++ thread_local with a destructor is accessed
/// through the compiler's lazy-init wrapper, whose first call on a thread
/// registers that destructor with __cxa_thread_atexit -- which mallocs. A
/// signal landing on a thread that had never touched prof TLS while it sat
/// inside malloc would re-enter the allocator from the handler and
/// self-deadlock on the arena lock, wedging every other thread behind it
/// (observed as a whole-process futex pileup in the profiled SPMD benches).
/// A trivial thread_local compiles to a plain TP-relative load with no
/// wrapper, which is what makes reading it from the handler legal.
#if defined(__linux__) && (defined(__GNUC__) || defined(__clang__))
__attribute__((tls_model("initial-exec")))
#endif
thread_local ThreadState* t_state = nullptr;

/// Thread-exit cleanup for the perf fds (the state itself stays alive in
/// the global registry so late snapshots and in-flight signals stay
/// valid). Touched only from state() -- the ordinary, signal-free path --
/// so its __cxa_thread_atexit registration, and the malloc inside it,
/// happen at a safe time.
struct TlsCleanup {
  ~TlsCleanup() {
    if (ThreadState* dying = t_state) {
      t_state = nullptr;
      std::atomic_signal_fence(std::memory_order_seq_cst);
      dying->counters.reset();
    }
  }
};
thread_local TlsCleanup t_cleanup;

ThreadState* state() {
  if (t_state) return t_state;
  (void)&t_cleanup;  // register the exit cleanup outside signal context
  Global& G = g();
  auto st = std::make_unique<ThreadState>();
  {
    std::lock_guard<std::mutex> lk(G.mu);
    st->tag = G.next_tag++;
  }
  st->counters.reset(new ThreadCounters(G.backend));
  st->counters->read(st->last);
  ThreadState* raw = st.get();
  {
    std::lock_guard<std::mutex> lk(G.mu);
    G.states.push_back(st.release());
  }
  t_state = raw;
  return raw;
}

/// Bank the counter deltas since the last boundary into `a` and advance the
/// boundary. Called at every region enter/exit -- this is what makes the
/// attribution exclusive.
void bank(ThreadState* st, Accum* a) {
  CounterSample now;
  st->counters->read(now);
  const auto d = [](std::uint64_t b, std::uint64_t e) {
    return e >= b ? e - b : 0;
  };
  a->wall_ns.fetch_add(d(st->last.wall_ns, now.wall_ns),
                       std::memory_order_relaxed);
  a->cycles.fetch_add(d(st->last.cycles, now.cycles),
                      std::memory_order_relaxed);
  a->instructions.fetch_add(d(st->last.instructions, now.instructions),
                            std::memory_order_relaxed);
  a->llc_misses.fetch_add(d(st->last.llc_misses, now.llc_misses),
                          std::memory_order_relaxed);
  a->branch_misses.fetch_add(d(st->last.branch_misses, now.branch_misses),
                             std::memory_order_relaxed);
  a->allocs.fetch_add(d(st->last.allocs, now.allocs),
                      std::memory_order_relaxed);
  st->last = now;
}

}  // namespace

namespace internal {

void* enter(const char* name) {
  ThreadState* st = state();
  bank(st, st->innermost());
  const int d = st->depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) {
    st->levels[d] = Level{name, st->accum_for(name)};
    std::atomic_signal_fence(std::memory_order_release);
  }
  st->depth.store(d + 1, std::memory_order_relaxed);
  return st;
}

void leave(void* state) {
  auto* st = static_cast<ThreadState*>(state);
  const int d = st->depth.load(std::memory_order_relaxed) - 1;
  if (d < 0) return;
  st->depth.store(d, std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_release);
  if (d < kMaxDepth) {
    Accum* a = st->levels[d].accum;
    bank(st, a);
    a->calls.fetch_add(1, std::memory_order_relaxed);
  }
}

void add_flops(std::uint64_t n) {
  ThreadState* st = state();
  st->innermost()->flops.fetch_add(n, std::memory_order_relaxed);
}

void add_bytes(std::uint64_t n) {
  ThreadState* st = state();
  st->innermost()->bytes.fetch_add(n, std::memory_order_relaxed);
}

int capture_stack(const char** frames, int max, std::uint32_t* thread_tag) {
  ThreadState* st = t_state;
  if (!st) {
    *thread_tag = 0;
    return 0;
  }
  *thread_tag = st->tag;
  int d = st->depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d > kMaxDepth) d = kMaxDepth;
  if (d > max) d = max;
  for (int i = 0; i < d; ++i) frames[i] = st->levels[i].name;
  return d;
}

}  // namespace internal

void count_flops(std::uint64_t n) {
  if (enabled() && n) internal::add_flops(n);
}

void count_bytes(std::uint64_t n) {
  if (enabled() && n) internal::add_bytes(n);
}

void enable(const Options& opts) {
  Global& G = g();
  std::lock_guard<std::mutex> lk(G.mu);
  if (internal::g_enabled.load()) return;
  G.opts = opts;
  // BH_PROF_SAMPLER=off drops the SIGPROF sampler while keeping region
  // accounting and counters -- the escape hatch for environments where any
  // asynchronous signal is unwelcome (and a bisection lever for us).
  if (const char* env = std::getenv("BH_PROF_SAMPLER")) {
    const std::string v(env);
    if (v == "off" || v == "0" || v == "false") G.opts.sampler = false;
  }
  G.backend = resolve_backend();
  G.enable_ns = monotonic_ns();
  G.disable_ns = 0;
  G.ring.init(opts.max_samples);
  internal::g_enabled.store(true, std::memory_order_seq_cst);
  if (G.opts.sampler)
    G.sampler_running =
        G.sampler.start(G.opts.sample_interval_s, &G.ring);
}

void disable() {
  Global& G = g();
  std::lock_guard<std::mutex> lk(G.mu);
  if (!internal::g_enabled.load()) return;
  if (G.sampler_running) {
    G.sampler.stop();
    G.sampler_running = false;
  }
  internal::g_enabled.store(false, std::memory_order_seq_cst);
  G.disable_ns = monotonic_ns();
}

void reset() {
  Global& G = g();
  std::lock_guard<std::mutex> lk(G.mu);
  for (ThreadState* st : G.states) {
    std::lock_guard<std::mutex> slk(st->mu);
    for (auto& [name, a] : st->accums) a->clear();
    st->untracked.clear();
  }
  G.ring.reset();
  G.enable_ns = G.disable_ns = 0;
}

const MachinePeaks& machine_peaks() {
  static const MachinePeaks peaks = [] {
    MachinePeaks p;
    // Peak flop rate: four independent multiply-add chains, long enough to
    // dominate loop overhead; 8 flops per iteration.
    {
      volatile double sink = 0.0;
      double a0 = 1.0, a1 = 1.1, a2 = 1.2, a3 = 1.3;
      const double m = 1.0000001, c = 1e-9;
      std::uint64_t iters = 0;
      const auto t0 = monotonic_ns();
      std::uint64_t t1 = t0;
      while (t1 - t0 < 20'000'000ull) {  // ~20 ms
        for (int i = 0; i < 1'000'000; ++i) {
          a0 = a0 * m + c;
          a1 = a1 * m + c;
          a2 = a2 * m + c;
          a3 = a3 * m + c;
        }
        iters += 1'000'000;
        t1 = monotonic_ns();
      }
      sink = a0 + a1 + a2 + a3;
      (void)sink;
      p.flops_per_s = 8.0 * static_cast<double>(iters) /
                      (static_cast<double>(t1 - t0) * 1e-9);
    }
    // Peak memory bandwidth: memcpy sweep over buffers far beyond LLC;
    // count read + write traffic.
    {
      const std::size_t bytes = 32u << 20;
      std::vector<char> src(bytes, 1), dst(bytes, 0);
      std::uint64_t moved = 0;
      const auto t0 = monotonic_ns();
      std::uint64_t t1 = t0;
      while (t1 - t0 < 20'000'000ull) {
        std::memcpy(dst.data(), src.data(), bytes);
        volatile char sink = dst[bytes / 2];
        (void)sink;
        moved += 2ull * bytes;
        t1 = monotonic_ns();
      }
      p.bytes_per_s =
          static_cast<double>(moved) / (static_cast<double>(t1 - t0) * 1e-9);
    }
    return p;
  }();
  return peaks;
}

Report snapshot() {
  Global& G = g();
  std::lock_guard<std::mutex> lk(G.mu);
  Report r;
  r.counters = backend_name(G.backend);
  const std::uint64_t end = G.disable_ns ? G.disable_ns : monotonic_ns();
  r.wall_s = G.enable_ns && end > G.enable_ns
                 ? static_cast<double>(end - G.enable_ns) * 1e-9
                 : 0.0;
  r.peaks = machine_peaks();

  std::map<std::string, RegionReport> byname;
  auto merge = [&byname](const char* name, const Accum& a) {
    if (!a.touched()) return;
    RegionReport& out = byname[name];
    out.name = name;
    out.calls += a.calls.load();
    out.threads += 1;
    out.wall_s += static_cast<double>(a.wall_ns.load()) * 1e-9;
    out.cycles += a.cycles.load();
    out.instructions += a.instructions.load();
    out.llc_misses += a.llc_misses.load();
    out.branch_misses += a.branch_misses.load();
    out.allocs += a.allocs.load();
    out.flops += a.flops.load();
    out.bytes += a.bytes.load();
  };
  for (ThreadState* st : G.states) {
    std::lock_guard<std::mutex> slk(st->mu);
    for (const auto& [name, a] : st->accums) merge(name, *a);
    merge("(untracked)", st->untracked);
  }
  r.regions.reserve(byname.size());
  for (auto& [name, rep] : byname) r.regions.push_back(std::move(rep));

  std::map<std::string, std::uint64_t> folded;
  const std::size_t n = G.ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const StackSample* s = G.ring.at(i);
    if (!s) continue;
    std::string stack;
    for (std::uint32_t f = 0; f < s->depth; ++f) {
      if (f) stack += ';';
      stack += s->frames[f];
    }
    if (stack.empty()) stack = "(no region)";
    ++folded[stack];
    ++r.samples;
    SampleReport sr;
    sr.wall_s = s->wall_ns > G.enable_ns
                    ? static_cast<double>(s->wall_ns - G.enable_ns) * 1e-9
                    : 0.0;
    sr.thread = s->thread_tag;
    sr.stack = std::move(stack);
    r.raw_samples.push_back(std::move(sr));
  }
  r.samples_dropped = G.ring.dropped();
  r.folded.assign(folded.begin(), folded.end());
  return r;
}

namespace testing {

void record_sample() {
  Global& G = g();
  StackSample* s = G.ring.claim();
  if (!s) return;
  s->wall_ns = monotonic_ns();
  s->depth = static_cast<std::uint32_t>(
      internal::capture_stack(s->frames, kMaxSampleFrames, &s->thread_tag));
  G.ring.commit(s);
}

}  // namespace testing

void write_prof_json(std::ostream& os, const Report& r) {
  // Line layout contract (determinism CI): every host-measured quantity --
  // wall, machine peaks, sample counts, the second line of each region --
  // lives on a line matched by the strip() patterns in ci.yml; the
  // remaining lines are identical across identically-seeded runs.
  os << "{\n";
  os << "\"schema\": \"bh.prof.v1\",\n";
  os << "\"git_sha\": \"" << json_escape(BH_GIT_SHA) << "\",\n";
  os << "\"counters\": \"" << json_escape(r.counters) << "\",\n";
  os << "\"wall_s\": " << json_num(r.wall_s) << ",\n";
  os << "\"machine\": {\"peak_flops_per_s\": " << json_num(r.peaks.flops_per_s)
     << ", \"peak_bytes_per_s\": " << json_num(r.peaks.bytes_per_s) << "},\n";
  os << "\"samples\": {\"count\": " << r.samples
     << ", \"dropped\": " << r.samples_dropped << "},\n";
  os << "\"regions\": [";
  const double ridge = r.peaks.bytes_per_s > 0.0
                           ? r.peaks.flops_per_s / r.peaks.bytes_per_s
                           : 0.0;
  bool first = true;
  for (const auto& reg : r.regions) {
    os << (first ? "\n" : ",\n");
    first = false;
    const double ai = reg.bytes
                          ? static_cast<double>(reg.flops) /
                                static_cast<double>(reg.bytes)
                          : 0.0;
    const char* bound = "n/a";
    if (reg.flops && reg.bytes) bound = ai < ridge ? "memory" : "compute";
    else if (reg.flops) bound = "compute";
    os << "  {\"name\": \"" << json_escape(reg.name)
       << "\", \"flops\": " << reg.flops << ", \"bytes\": " << reg.bytes
       << ", \"arith_intensity\": " << json_num(ai) << ",\n";
    os << "   \"calls\": " << reg.calls << ", \"threads\": " << reg.threads
       << ", \"wall_s\": " << json_num(reg.wall_s)
       << ", \"cycles\": " << reg.cycles
       << ", \"instructions\": " << reg.instructions
       << ", \"llc_misses\": " << reg.llc_misses
       << ", \"branch_misses\": " << reg.branch_misses
       << ", \"allocs\": " << reg.allocs << ", \"flops_per_s\": "
       << json_num(reg.wall_s > 0.0
                       ? static_cast<double>(reg.flops) / reg.wall_s
                       : 0.0)
       << ", \"bound\": \"" << bound << "\"}";
  }
  os << "\n],\n";
  os << "\"folded\": [";
  first = true;
  for (const auto& [stack, count] : r.folded) {
    os << (first ? "" : ", ") << "\"" << json_escape(stack) << " "
       << count << "\"";
    first = false;
  }
  os << "]\n";
  os << "}\n";
}

std::string folded_text(const Report& r) {
  std::string out;
  for (const auto& [stack, count] : r.folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string chrome_sample_events(const Report& r) {
  if (r.raw_samples.empty()) return std::string();
  std::ostringstream os;
  os << R"({"name": "process_name", "ph": "M", "pid": 1, "args": )"
     << R"({"name": "wall-clock profiler, wall us"}})";
  std::vector<std::uint32_t> tids;
  for (const auto& s : r.raw_samples) tids.push_back(s.thread);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const auto t : tids)
    os << ",\n  "
       << R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << t
       << R"(, "args": {"name": "sampled thread )" << t << R"("}})";
  for (const auto& s : r.raw_samples) {
    const auto semi = s.stack.rfind(';');
    const std::string leaf =
        semi == std::string::npos ? s.stack : s.stack.substr(semi + 1);
    os << ",\n  "
       << R"({"name": ")" << json_escape(leaf)
       << R"(", "cat": "sample", "ph": "i", "s": "t", "pid": 1, "tid": )"
       << s.thread << R"(, "ts": )" << json_num(s.wall_s * 1e6)
       << R"(, "args": {"stack": ")" << json_escape(s.stack) << R"("}})";
  }
  return os.str();
}

}  // namespace bh::obs::prof
