// sampler.cpp -- SIGPROF handler, interval timer, and the sample ring.
//
// Signal-safety inventory for on_sigprof (DESIGN.md section 12): one
// relaxed fetch_add to claim a slot, plain stores of string-literal
// pointers copied out of the thread's region stack, clock_gettime (listed
// async-signal-safe by POSIX), one release store to commit. No locks, no
// allocation, and no lazily-initialized TLS: capture_stack reads a
// *trivial* thread_local pointer (null until the thread's first region).
// Trivial matters -- a thread_local with a destructor is read through a
// wrapper whose first call registers the destructor via
// __cxa_thread_atexit, which mallocs, and malloc inside a signal handler
// deadlocks against an interrupted allocation on the same arena.
#include "obs/prof/sampler.hpp"

#include <cerrno>

#include "obs/prof/counters.hpp"
#include "obs/prof/prof.hpp"

#ifdef __linux__
#include <csignal>
#include <ctime>
#endif

namespace bh::obs::prof {

void SampleRing::init(std::size_t capacity) {
  if (cap_ != capacity) {
    slots_.reset(new Slot[capacity]);
    cap_ = capacity;
  }
  reset();
}

void SampleRing::reset() {
  for (std::size_t i = 0; i < cap_; ++i) slots_[i].ready.store(0);
  head_.store(0);
  dropped_.store(0);
}

StackSample* SampleRing::claim() {
  if (cap_ == 0) return nullptr;
  const auto idx = head_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= cap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &slots_[idx].sample;
}

void SampleRing::commit(StackSample* s) {
  auto* slot = reinterpret_cast<Slot*>(s);  // sample is the first member
  slot->ready.store(1, std::memory_order_release);
}

std::size_t SampleRing::size() const {
  const auto h = head_.load(std::memory_order_acquire);
  return h < cap_ ? static_cast<std::size_t>(h) : cap_;
}

const StackSample* SampleRing::at(std::size_t i) const {
  if (i >= cap_) return nullptr;
  if (!slots_[i].ready.load(std::memory_order_acquire)) return nullptr;
  return &slots_[i].sample;
}

namespace {

SampleRing* g_ring = nullptr;  // set before the timer is armed

#ifdef __linux__
void on_sigprof(int) {
  const int saved_errno = errno;
  StackSample* s = g_ring ? g_ring->claim() : nullptr;
  if (s) {
    s->wall_ns = monotonic_ns();
    s->depth = static_cast<std::uint32_t>(
        internal::capture_stack(s->frames, kMaxSampleFrames, &s->thread_tag));
    g_ring->commit(s);
  }
  errno = saved_errno;
}
#endif

}  // namespace

bool Sampler::start(double interval_s, SampleRing* ring) {
#ifdef __linux__
  if (running_) return true;
  g_ring = ring;

  struct sigaction sa;
  sa.sa_handler = on_sigprof;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;

  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  timer_t t;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &t) != 0) return false;

  const auto secs = static_cast<time_t>(interval_s);
  const auto nsecs =
      static_cast<long>((interval_s - static_cast<double>(secs)) * 1e9);
  itimerspec its{};
  its.it_interval.tv_sec = secs;
  its.it_interval.tv_nsec = nsecs > 0 ? nsecs : 1;
  its.it_value = its.it_interval;
  if (timer_settime(t, 0, &its, nullptr) != 0) {
    timer_delete(t);
    return false;
  }
  static_assert(sizeof(timer_t) <= sizeof(void*),
                "timer_t must fit the opaque slot");
  timer_ = reinterpret_cast<void*&>(t);
  running_ = true;
  return true;
#else
  (void)interval_s;
  (void)ring;
  return false;
#endif
}

void Sampler::stop() {
#ifdef __linux__
  if (!running_) return;
  timer_t t;
  reinterpret_cast<void*&>(t) = timer_;
  timer_delete(t);
  running_ = false;
  // A signal already in flight on another thread finishes against the ring
  // (commit is the last store); readers skip any slot whose ready flag
  // never flipped, so no settling sleep is needed.
#endif
}

}  // namespace bh::obs::prof
