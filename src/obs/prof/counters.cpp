// counters.cpp -- perf_event_open plumbing and the software fallback.
#include "obs/prof/counters.hpp"

#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/memstat.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bh::obs::prof {

std::uint64_t monotonic_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

namespace {

#ifdef __linux__
/// Open one counter on the calling thread (pid=0, any cpu). Kernel and
/// hypervisor cycles are excluded so the probe succeeds at
/// perf_event_paranoid=2, the default on stock distro kernels.
int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}
#endif

}  // namespace

CounterBackend resolve_backend() {
  const char* env = std::getenv("BH_PROF_COUNTERS");
  if (env && std::strcmp(env, "software") == 0)
    return CounterBackend::kSoftware;
#ifdef __linux__
  const int fd =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd >= 0) {
    close(fd);
    return CounterBackend::kHardware;
  }
#endif
  return CounterBackend::kSoftware;
}

const char* backend_name(CounterBackend b) {
  return b == CounterBackend::kHardware ? "hardware" : "software";
}

ThreadCounters::ThreadCounters(CounterBackend backend) {
#ifdef __linux__
  if (backend != CounterBackend::kHardware) return;
  const int leader =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return;
  // Sibling order fixes the layout of the PERF_FORMAT_GROUP read buffer.
  const std::uint64_t siblings[] = {PERF_COUNT_HW_INSTRUCTIONS,
                                    PERF_COUNT_HW_CACHE_MISSES,
                                    PERF_COUNT_HW_BRANCH_MISSES};
  for (const auto config : siblings) {
    if (open_counter(PERF_TYPE_HARDWARE, config, leader) < 0) {
      close(leader);  // closing the leader tears down the whole group
      return;
    }
  }
  fd_ = leader;
#else
  (void)backend;
#endif
}

ThreadCounters::~ThreadCounters() {
#ifdef __linux__
  if (fd_ >= 0) close(fd_);
#endif
}

void ThreadCounters::read(CounterSample& out) const {
  out.wall_ns = monotonic_ns();
  out.allocs = memstat::thread_allocs();
  out.cycles = out.instructions = out.llc_misses = out.branch_misses = 0;
#ifdef __linux__
  if (fd_ < 0) return;
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
  std::uint64_t buf[1 + 4] = {};
  if (::read(fd_, buf, sizeof buf) < 0 || buf[0] != 4) return;
  out.cycles = buf[1];
  out.instructions = buf[2];
  out.llc_misses = buf[3];
  out.branch_misses = buf[4];
#endif
}

}  // namespace bh::obs::prof
