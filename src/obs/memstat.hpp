// memstat.hpp -- process/thread memory statistics for the bench registry.
//
// The paper's scale claims (Section 5) are about time *and* memory: the
// hashed/costzones formulations only work at 10^6 particles because no rank
// ever materializes the global tree. The bench registry records two memory
// axes per run:
//
//  * peak_rss_bytes() -- the process's high-water resident set, from
//    getrusage(RUSAGE_SELF). Process-wide by nature (ranks are threads), so
//    one number per run; host-dependent like wall_s and excluded from
//    determinism diffs.
//  * thread_allocs() -- heap allocations performed *by the calling thread*,
//    counted by the global operator new replacement in memstat.cpp. Ranks
//    are threads, so run_spmd snapshots the counter at rank entry/exit to
//    get a per-rank allocation count (RankStats::allocs) -- the
//    machine-independent proxy for allocator pressure on the hot paths.
//
// The operator new replacement is a thin counting shim over malloc with a
// thread-local relaxed counter: no locks, no measurable cost next to the
// allocation itself. It lives in the same TU as these accessors, so any
// binary that reads the counters links the shim too.
#pragma once

#include <cstdint>

namespace bh::obs::memstat {

/// Process peak resident set size in bytes (0 where unsupported).
std::uint64_t peak_rss_bytes();

/// Heap allocations made by the calling thread since it started.
std::uint64_t thread_allocs();

}  // namespace bh::obs::memstat
