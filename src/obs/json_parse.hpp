// json_parse.hpp -- a tiny JSON document parser for the obs consumers.
//
// PR 2 made every binary *emit* JSON (Chrome traces, bh.metrics.v1); this is
// the reading half: a dependency-free recursive-descent parser producing a
// small DOM, just enough for the analyzer (obs/analyze.hpp), the bh_analyze
// CLI and tests to load our own exports back. Strict RFC 8259 subset:
// objects, arrays, strings (with the escapes our writer emits), numbers,
// true/false/null. Duplicate object keys keep the last value.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bh::obs {

/// Parse failure; what() carries the byte offset and a short reason.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value. A `null` document is the default-constructed Json.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; throw JsonError on type mismatch.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const std::vector<Json>& array() const;
  const std::map<std::string, Json>& object() const;

  /// Object member by key; throws JsonError when absent or not an object.
  const Json& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool has(const std::string& key) const;
  /// Object member by key, or null when absent / not an object (for
  /// optional fields: `doc.get("seed").number_or(0)`).
  const Json& get(const std::string& key) const;
  /// Number coercions with a default for null/absent fields.
  double number_or(double def) const { return is_number() ? num_ : def; }
  std::string string_or(const std::string& def) const {
    return is_string() ? str_ : def;
  }

  /// Parse exactly one document (trailing garbage is an error).
  static Json parse(std::string_view text);
  /// Parse the contents of `path`; throws JsonError on I/O failure too.
  static Json parse_file(const std::string& path);

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace bh::obs
