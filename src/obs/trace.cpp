// trace.cpp -- Tracer bookkeeping and the Chrome/Perfetto exporter.
//
// Export format: the Trace Event JSON used by chrome://tracing and
// ui.perfetto.dev -- a {"traceEvents": [...]} object. All ranks share
// pid 0 ("bh::mp virtual time") and each rank is one thread track (tid =
// rank), named via thread_name metadata. The time axis is *virtual*
// microseconds (the MachineModel clock), so a trace of a 256-rank modeled
// run lines up with the paper's reported times; wall-clock seconds ride
// along in each event's args.
#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"

namespace bh::obs {

void Tracer::begin_run(int nprocs) {
  if (!epoch_set_) {
    epoch_ = std::chrono::steady_clock::now();
    epoch_set_ = true;
  }
  // Offset this run's virtual clock past everything recorded so far, so a
  // bench binary that traces several run_spmd calls gets one ordered
  // timeline instead of overlapping tracks.
  double last = 0.0;
  for (const auto& rt : ranks_)
    for (const auto& e : rt->events()) last = std::max(last, e.vtime);
  vt_offset_ = last;
  while (static_cast<int>(ranks_.size()) < nprocs)
    ranks_.push_back(std::unique_ptr<RankTracer>(new RankTracer(*this)));
}

bool Tracer::empty() const {
  for (const auto& rt : ranks_)
    if (!rt->events().empty()) return false;
  return true;
}

void Tracer::set_tag_name(int tag, std::string name) {
  std::lock_guard<std::mutex> lk(tag_mu_);
  tag_names_[tag] = std::move(name);
}

std::string Tracer::tag_name(int tag) const {
  std::lock_guard<std::mutex> lk(tag_mu_);
  auto it = tag_names_.find(tag);
  return it == tag_names_.end() ? std::string() : it->second;
}

double Tracer::wall_now() const {
  if (!epoch_set_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

namespace {

/// One trace-event line. `extra` is appended verbatim inside the object.
void emit(std::ostream& os, bool& first, const std::string& body) {
  if (!first) os << ",\n";
  first = false;
  os << "  " << body;
}

std::string tag_label(const Tracer& t, int tag) {
  const std::string n = t.tag_name(tag);
  return n.empty() ? std::to_string(tag) : n;
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  write_chrome_trace(os, std::string_view());
}

void Tracer::write_chrome_trace(std::ostream& os,
                                std::string_view extra_events) const {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  emit(os, first,
       R"({"name": "process_name", "ph": "M", "pid": 0, "args": )"
       R"({"name": "bh::mp virtual time"}})");
  for (int r = 0; r < nprocs(); ++r) {
    emit(os, first,
         R"({"name": "thread_name", "ph": "M", "pid": 0, "tid": )" +
             std::to_string(r) + R"(, "args": {"name": "rank )" +
             std::to_string(r) + R"("}})");
  }
  for (int r = 0; r < nprocs(); ++r) {
    const auto& rt = rank(r);
    const std::string tid = std::to_string(r);
    for (const auto& e : rt.events()) {
      const std::string ts = json_num(e.vtime * 1e6);
      const std::string wall = json_num(e.wtime);
      std::string body;
      switch (e.kind) {
        case EventKind::kPhaseBegin:
        case EventKind::kPhaseEnd:
          body = R"({"name": ")" + json_escape(rt.name(e.name)) +
                 R"(", "cat": "phase", "ph": ")" +
                 (e.kind == EventKind::kPhaseBegin ? "B" : "E") +
                 R"(", "pid": 0, "tid": )" + tid + R"(, "ts": )" + ts +
                 R"(, "args": {"wall_s": )" + wall + "}}";
          break;
        case EventKind::kCollBegin:
          body = R"({"name": ")" + json_escape(rt.name(e.name)) +
                 R"(", "cat": "collective", "ph": "B", "pid": 0, "tid": )" +
                 tid + R"(, "ts": )" + ts + R"(, "args": {"bytes": )" +
                 std::to_string(e.value) + R"(, "wall_s": )" + wall + "}}";
          break;
        case EventKind::kCollEnd:
          body = R"({"ph": "E", "cat": "collective", "pid": 0, "tid": )" +
                 tid + R"(, "ts": )" + ts + R"(, "args": {"wall_s": )" +
                 wall + "}}";
          break;
        case EventKind::kSend:
        case EventKind::kRecv:
          body = R"({"name": ")" +
                 std::string(e.kind == EventKind::kSend ? "send" : "recv") +
                 R"(", "cat": "p2p", "ph": "i", "s": "t", "pid": 0, )"
                 R"("tid": )" +
                 tid + R"(, "ts": )" + ts + R"(, "args": {"peer": )" +
                 std::to_string(e.peer) + R"(, "tag": ")" +
                 json_escape(tag_label(*this, e.tag)) + R"(", "bytes": )" +
                 std::to_string(e.value) + "}}";
          break;
        case EventKind::kFlops:
          body = R"({"name": "flops rank )" + tid +
                 R"(", "ph": "C", "pid": 0, "tid": )" + tid +
                 R"(, "ts": )" + ts + R"(, "args": {"flops": )" +
                 std::to_string(e.value) + "}}";
          break;
        case EventKind::kInstant:
          body = R"({"name": ")" + json_escape(rt.name(e.name)) +
                 R"(", "cat": "annotation", "ph": "i", "s": "t", "pid": 0, )"
                 R"("tid": )" +
                 tid + R"(, "ts": )" + ts + R"(, "args": {"count": )" +
                 std::to_string(e.value) + "}}";
          break;
      }
      emit(os, first, body);
    }
  }
  if (!extra_events.empty()) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << extra_events;
  }
  os << "\n]\n}\n";
}

std::string Tracer::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace bh::obs
