// metrics.cpp -- the "bh.metrics.v1" structured-metrics JSON writer.
#include "obs/metrics.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace bh::obs {

namespace {

void write_imbalance(std::ostream& os, const mp::Imbalance& im) {
  os << "{\"max\": " << json_num(im.max) << ", \"mean\": "
     << json_num(im.mean) << ", \"stddev\": " << json_num(im.stddev)
     << ", \"max_over_mean\": " << json_num(im.max_over_mean()) << "}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const mp::RunReport& report) {
  const auto phases = report.phase_names();
  os << "{\n";
  os << "\"schema\": \"bh.metrics.v1\",\n";
  os << "\"nprocs\": " << report.ranks.size() << ",\n";
  os << "\"parallel_time\": " << json_num(report.parallel_time()) << ",\n";
  os << "\"total_flops\": " << report.total_flops() << ",\n";
  os << "\"total_ptp_bytes\": " << report.total_ptp_bytes() << ",\n";
  os << "\"total_collective_bytes\": " << report.total_collective_bytes()
     << ",\n";

  os << "\"ranks\": [\n";
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const auto& rs = report.ranks[r];
    os << "  {\"rank\": " << r << ", \"vtime\": " << json_num(rs.vtime)
       << ", \"flops\": " << rs.flops << ", \"ptp_bytes\": " << rs.bytes_sent
       << ", \"ptp_messages\": " << rs.messages_sent
       << ", \"collective_bytes\": " << rs.collective_bytes
       << ", \"coll_wait\": " << json_num(rs.coll_wait)
       << ", \"coll_cost\": " << json_num(rs.coll_cost)
       << ", \"recv_wait\": " << json_num(rs.recv_wait)
       << ", \"phases\": {";
    bool first = true;
    for (const auto& [name, t] : rs.phase_vtime) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(name) << "\": " << json_num(t);
    }
    os << "}, \"counters\": {";
    first = true;
    for (const auto& [name, v] : rs.counters) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(name) << "\": " << v;
    }
    os << "}}" << (r + 1 < report.ranks.size() ? "," : "") << "\n";
  }
  os << "],\n";

  os << "\"comm_matrix\": [\n";
  const auto matrix = report.comm_matrix();
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    os << "  [";
    for (std::size_t d = 0; d < matrix[r].size(); ++d)
      os << matrix[r][d] << (d + 1 < matrix[r].size() ? ", " : "");
    os << "]" << (r + 1 < matrix.size() ? "," : "") << "\n";
  }
  os << "],\n";

  os << "\"idle\": ";
  write_imbalance(os, report.idle());
  os << ",\n";

  os << "\"imbalance\": {\n";
  os << "  \"vtime\": ";
  write_imbalance(os, report.imbalance());
  os << ",\n  \"phases\": {";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(phases[i]) << "\": ";
    write_imbalance(os, report.phase_imbalance(phases[i]));
  }
  os << "}\n}\n";
  os << "}\n";
}

std::string metrics_json(const mp::RunReport& report) {
  std::ostringstream os;
  write_metrics_json(os, report);
  return os.str();
}

}  // namespace bh::obs
