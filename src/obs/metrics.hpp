// metrics.hpp -- structured metrics export for bh::mp runs.
//
// The compact counterpart to the Chrome trace: one JSON document per run
// (schema "bh.metrics.v1") holding everything the paper's evaluation
// methodology needs -- per-rank and per-phase virtual time, flops,
// point-to-point and collective byte counts, the rank x rank communication
// matrix, and load-imbalance statistics (max / mean / stddev) overall and
// per phase. Bench tables and future perf PRs derive their numbers from
// this export instead of ad-hoc counters.
#pragma once

#include <ostream>
#include <string>

#include "mp/runtime.hpp"

namespace bh::obs {

/// Write the metrics document for `report` to `os`.
void write_metrics_json(std::ostream& os, const mp::RunReport& report);

std::string metrics_json(const mp::RunReport& report);

}  // namespace bh::obs
