// json_parse.cpp -- recursive-descent parser behind obs::Json.
#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bh::obs {

namespace {

const Json kNullJson{};

}  // namespace

bool Json::boolean() const {
  if (type_ != Type::kBool) throw JsonError("json: not a boolean");
  return bool_;
}

double Json::number() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return num_;
}

const std::string& Json::str() const {
  if (type_ != Type::kString) throw JsonError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::array() const {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  return arr_;
}

const std::map<std::string, Json>& Json::object() const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  auto it = obj_.find(key);
  if (it == obj_.end()) throw JsonError("json: missing key \"" + key + "\"");
  return it->second;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) != 0;
}

const Json& Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return kNullJson;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNullJson : it->second;
}

/// The parser proper. Tracks a byte offset for error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  Json parse_document() {
    ws();
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true", [](Json& j) {
          j.type_ = Json::Type::kBool;
          j.bool_ = true;
        });
      case 'f':
        return literal("false", [](Json& j) {
          j.type_ = Json::Type::kBool;
          j.bool_ = false;
        });
      case 'n':
        return literal("null", [](Json&) {});
      default:
        return number();
    }
  }

  template <typename Init>
  Json literal(std::string_view word, Init init) {
    if (s_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
    Json j;
    init(j);
    return j;
  }

  Json object() {
    expect('{');
    Json j;
    j.type_ = Json::Type::kObject;
    ws();
    if (eat('}')) return j;
    for (;;) {
      ws();
      Json key = string();
      ws();
      expect(':');
      ws();
      j.obj_[key.str_] = value();
      ws();
      if (eat('}')) return j;
      expect(',');
    }
  }

  Json array() {
    expect('[');
    Json j;
    j.type_ = Json::Type::kArray;
    ws();
    if (eat(']')) return j;
    for (;;) {
      ws();
      j.arr_.push_back(value());
      ws();
      if (eat(']')) return j;
      expect(',');
    }
  }

  Json string() {
    expect('"');
    Json j;
    j.type_ = Json::Type::kString;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control in string");
      if (c == '"') {
        ++pos_;
        return j;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) fail("truncated escape");
        switch (s_[pos_]) {
          case '"':
            j.str_ += '"';
            break;
          case '\\':
            j.str_ += '\\';
            break;
          case '/':
            j.str_ += '/';
            break;
          case 'b':
            j.str_ += '\b';
            break;
          case 'f':
            j.str_ += '\f';
            break;
          case 'n':
            j.str_ += '\n';
            break;
          case 'r':
            j.str_ += '\r';
            break;
          case 't':
            j.str_ += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                  !std::isxdigit(
                      static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(i)])))
                fail("bad \\u escape");
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              code = code * 16 +
                     static_cast<unsigned>(
                         std::isdigit(static_cast<unsigned char>(h))
                             ? h - '0'
                             : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // UTF-8 encode (surrogate pairs are not produced by our writer;
            // a lone surrogate is passed through as-is).
            if (code < 0x80) {
              j.str_ += static_cast<char>(code);
            } else if (code < 0x800) {
              j.str_ += static_cast<char>(0xC0 | (code >> 6));
              j.str_ += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              j.str_ += static_cast<char>(0xE0 | (code >> 12));
              j.str_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              j.str_ += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
        }
        ++pos_;
        continue;
      }
      j.str_ += c;
      ++pos_;
    }
    fail("unterminated string");
  }

  Json number() {
    const std::size_t start = pos_;
    eat('-');
    if (!digits()) fail("invalid number");
    if (eat('.') && !digits()) fail("invalid fraction");
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) fail("invalid exponent");
    }
    Json j;
    j.type_ = Json::Type::kNumber;
    j.num_ = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                         nullptr);
    return j;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw JsonError("json: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse(ss.str());
}

}  // namespace bh::obs
